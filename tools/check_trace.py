#!/usr/bin/env python3
"""Validate the observability artifacts written by --trace / --metrics.

Checks performed:

  trace file (Chrome trace_event JSON, chrome://tracing / Perfetto —
  single-process artifacts and `tacos_cli trace-merge` timelines alike):
    * the document parses as JSON and has the expected top-level shape
      (displayTimeUnit, otherData.droppedEvents, traceEvents list);
    * every event is a complete event ("ph":"X") carrying name, cat, ts,
      dur, pid, tid and an args object — or a process_name metadata
      record ("ph":"M"), the lane labels trace-merge emits;
    * no two process_name records claim the same pid with different
      labels (a duplicate pid would interleave two processes' spans
      into one lane and wreck the nesting check);
    * per (pid, tid) lane, events nest strictly: sorted by start time,
      each event either lies inside the currently open interval or
      begins at / after its end — partial overlaps mean the span stack
      was corrupted;
    * timestamps are non-negative and the stream is globally ts-sorted
      (what the exporters guarantee for viewers).

  metrics file (the registry's to_json()):
    * the document parses as JSON: {"metrics": [...]};
    * every entry has a name and a known type; histograms satisfy
      len(counts) == len(edges) + 1 (overflow cell last), strictly
      increasing edges, and sum(counts) == count;
    * with --strict-phases (meaningful for single-threaded runs, e.g.
      TACOS_THREADS=1 in CI): the self-times of all spans sum to ~100%
      of span.run.main.total_s — the "where did the time go" accounting
      docs/OBSERVABILITY.md describes telescopes with no gap.

Exit status 0 when everything holds, 1 with a message per violation.

  span presence (--require-span NAME, repeatable):
    * the trace contains at least one event with that exact name — how CI
      asserts that a code path (e.g. the multigrid preconditioner's
      thermal.mg.build / thermal.mg.cycle spans) actually ran.  In a
      merged timeline this looks across every process's shard.

  cross-process trace propagation (--require-shared-trace NAME NAME ...):
    * every named span is present, and at least one distributed trace id
      (the "trace" arg spans stamp when tracing is on) is shared by all
      of them — how CI asserts that e.g. a client call, the server's
      request handling, and the solve it triggered landed on one trace.

Usage:
  tools/check_trace.py --trace trace.json --metrics metrics.json \
      [--strict-phases] [--phase-tolerance 0.05] \
      [--require-span NAME ...] \
      [--require-shared-trace NAME NAME ...]
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def fail(errors, msg):
    errors.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def check_trace(path, errors, require_spans=(), require_shared_trace=()):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(errors, f"{path}: does not parse as JSON: {e}")
        return

    if doc.get("displayTimeUnit") != "ms":
        fail(errors, f"{path}: missing displayTimeUnit")
    dropped = doc.get("otherData", {}).get("droppedEvents")
    if not isinstance(dropped, int):
        fail(errors, f"{path}: otherData.droppedEvents missing")
    elif dropped > 0:
        print(f"note: {path}: {dropped} events were dropped (buffer cap)")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, f"{path}: traceEvents is not a list")
        return
    if not events:
        fail(errors, f"{path}: no trace events")
        return

    last_ts = -1
    by_lane = {}       # (pid, tid) -> [(ts, end, name)]
    process_names = {} # pid -> label (from "M" metadata records)
    spans = []         # complete events only
    for i, ev in enumerate(events):
        if ev.get("ph") == "M":
            # Metadata record (trace-merge's process_name lane labels).
            if ev.get("name") != "process_name":
                fail(errors, f"{path}: event {i} unknown metadata: {ev}")
                continue
            pid = ev.get("pid")
            label = ev.get("args", {}).get("name")
            if pid is None or not label:
                fail(errors, f"{path}: event {i} malformed process_name: "
                             f"{ev}")
                continue
            if pid in process_names and process_names[pid] != label:
                fail(errors, f"{path}: duplicate pid {pid}: claimed by "
                             f"'{process_names[pid]}' and '{label}'")
            process_names[pid] = label
            continue
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in ev]
        if missing:
            fail(errors, f"{path}: event {i} missing keys {missing}: {ev}")
            continue
        if ev["ph"] != "X":
            fail(errors, f"{path}: event {i} is not a complete event: {ev}")
            continue
        if not isinstance(ev["args"], dict):
            fail(errors, f"{path}: event {i} args is not an object")
        ts, dur = ev["ts"], ev["dur"]
        if ts < 0 or dur < 0:
            fail(errors, f"{path}: event {i} has negative ts/dur: {ev}")
        if ts < last_ts:
            fail(errors, f"{path}: events not sorted by ts at index {i}")
        last_ts = max(last_ts, ts)
        spans.append(ev)
        by_lane.setdefault((ev["pid"], ev["tid"]), []).append(
            (ts, ts + dur, ev["name"]))

    # Strict nesting per (pid, tid) lane: walk start-sorted events with a
    # stack of open interval ends.  A partial overlap (starts inside the
    # top interval but ends outside it) is a span-stack corruption.  Keying
    # by pid too keeps a merged multi-process timeline honest: two
    # processes' threads may share a tid, and their spans legitimately
    # interleave in time.
    for (pid, tid), evs in sorted(by_lane.items()):
        # Equal start times: the enclosing (longer) interval must be
        # visited first, so ties sort by descending end.
        evs.sort(key=lambda e: (e[0], -e[1]))
        stack = []
        for ts, end, name in evs:
            while stack and ts >= stack[-1][0]:
                stack.pop()
            if stack and end > stack[-1][0]:
                fail(
                    errors,
                    f"{path}: pid {pid} tid {tid}: '{name}' [{ts},{end}] "
                    f"partially overlaps enclosing '{stack[-1][1]}' (ends "
                    f"{stack[-1][0]})",
                )
            stack.append((end, name))

    n_pids = len({pid for pid, _ in by_lane})
    print(f"ok: {path}: {len(spans)} events on {len(by_lane)} lane(s) "
          f"across {n_pids} process(es), strictly nested per lane")

    seen = {ev.get("name") for ev in spans}
    for name in require_spans:
        if name in seen:
            print(f"ok: {path}: required span '{name}' present")
        else:
            fail(errors, f"{path}: required span '{name}' never emitted")

    if require_shared_trace:
        # Every named span must exist, and one distributed trace id must
        # run through all of them.
        ids_by_name = {name: set() for name in require_shared_trace}
        for ev in spans:
            name = ev.get("name")
            if name in ids_by_name and "trace" in ev.get("args", {}):
                ids_by_name[name].add(ev["args"]["trace"])
        ok = True
        for name, ids in ids_by_name.items():
            if not ids:
                fail(errors, f"{path}: no traced '{name}' span (is --trace "
                             f"on in every process?)")
                ok = False
        if ok:
            shared = set.intersection(*ids_by_name.values())
            if shared:
                print(f"ok: {path}: spans {sorted(ids_by_name)} share "
                      f"trace id(s) {sorted(shared)}")
            else:
                fail(errors, f"{path}: no single trace id runs through "
                             f"{sorted(ids_by_name)}: "
                             f"{ {n: sorted(s) for n, s in ids_by_name.items()} }")


def check_metrics(path, strict_phases, tolerance, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(errors, f"{path}: does not parse as JSON: {e}")
        return

    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        fail(errors, f"{path}: 'metrics' is not a list")
        return

    values = {}
    for i, m in enumerate(metrics):
        name, mtype = m.get("name"), m.get("type")
        if not name or mtype not in ("counter", "gauge", "histogram"):
            fail(errors, f"{path}: entry {i} malformed: {m}")
            continue
        if mtype == "histogram":
            edges, counts = m.get("edges", []), m.get("counts", [])
            if len(counts) != len(edges) + 1:
                fail(errors, f"{path}: '{name}': {len(counts)} counts for "
                             f"{len(edges)} edges (want edges+1)")
            if any(b <= a for a, b in zip(edges, edges[1:])):
                fail(errors, f"{path}: '{name}': edges not increasing")
            if sum(counts) != m.get("count"):
                fail(errors, f"{path}: '{name}': sum(counts)={sum(counts)} "
                             f"!= count={m.get('count')}")
        else:
            values[name] = m.get("value")

    root = values.get("span.run.main.total_s")
    self_sum = sum(v for n, v in values.items()
                   if n.startswith("span.") and n.endswith(".self_s"))
    if root:
        share = self_sum / root
        print(f"ok: {path}: {len(metrics)} metrics; span self-times cover "
              f"{share:.1%} of span.run.main.total_s ({root:.3f}s)")
        if strict_phases and abs(share - 1.0) > tolerance:
            fail(errors, f"{path}: per-phase self-times sum to {share:.1%} "
                         f"of the root span (want 100% +/- "
                         f"{tolerance:.0%}; single-threaded runs only)")
    else:
        print(f"ok: {path}: {len(metrics)} metrics (no root span recorded)")
        if strict_phases:
            fail(errors, f"{path}: --strict-phases set but "
                         f"span.run.main.total_s is absent")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", help="Chrome trace_event JSON to validate")
    ap.add_argument("--metrics", help="metrics JSON to validate")
    ap.add_argument("--strict-phases", action="store_true",
                    help="require span self-times to sum to ~100%% of the "
                         "root span (use on single-threaded runs)")
    ap.add_argument("--phase-tolerance", type=float, default=0.05,
                    help="allowed deviation for --strict-phases "
                         "(default 0.05)")
    ap.add_argument("--require-span", action="append", default=[],
                    metavar="NAME",
                    help="fail unless the trace contains an event with "
                         "this exact name (repeatable)")
    ap.add_argument("--require-shared-trace", nargs="+", default=[],
                    metavar="NAME",
                    help="fail unless every named span exists and at "
                         "least one distributed trace id is shared by "
                         "all of them")
    args = ap.parse_args()
    if not args.trace and not args.metrics:
        ap.error("give --trace and/or --metrics")
    if (args.require_span or args.require_shared_trace) and not args.trace:
        ap.error("--require-span/--require-shared-trace need --trace")

    errors = []
    if args.trace:
        check_trace(args.trace, errors, args.require_span,
                    args.require_shared_trace)
    if args.metrics:
        check_metrics(args.metrics, args.strict_phases,
                      args.phase_tolerance, errors)
    if errors:
        print(f"{len(errors)} check(s) failed", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
