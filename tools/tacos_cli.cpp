/// \file tacos_cli.cpp
/// \brief Command-line front end for the tacos library.
///
/// Subcommands:
///   list                                  — benchmarks and DVFS levels
///   evaluate  <bench> <n> <s1> <s2> <s3> <f_idx> <p>
///                                         — one organization end to end
///   baseline  <bench> [threshold]         — best 2D operating point
///   optimize  <bench> [alpha] [beta] [threshold]
///                                         — multi-start greedy (§III-D)
///   sweep     <bench> <n> [threshold]     — max IPS vs interposer size
///   cost      <n> <interposer_mm>         — Eq. (4) breakdown
///   batch     [alpha] [beta] [threshold] [grid] [step]
///                                         — optimize every benchmark
///                                           (durable: --run-dir/--resume;
///                                           offloadable: --remote=ADDR)
///   serve                                 — persistent evaluation server
///                                           (--socket=PATH | --port=N,
///                                           memo cache in --run-dir)
///   eval-remote <bench> <n> <s1> <s2> <s3> <f_idx> <p>
///                                         — one organization, evaluated
///                                           by the server (--remote=ADDR)
///   ping [--stats]                        — probe the server (--remote);
///                                           --stats scrapes its live
///                                           request metrics
///   trace-merge [run-dir]                 — merge per-process telemetry
///                                           shards into trace-merged.json
///                                           / metrics-merged.json
///   status [run-dir]                      — live run-status view: sweep
///                                           progress, worker leases,
///                                           merged health counters
///   fsck      [--fix]                     — validate (and optionally
///                                           repair) --run-dir's durable
///                                           files; exit 65 on damage
///
/// Every command prints plain text.  Exit-code discipline (see
/// src/common/errors.hpp): 0 success, 1 usage error, 2 generic
/// tacos::Error, 3 SolverError, 4 ThermalError, 5 EvalError, 6
/// ServiceError, 65 corrupt data found by fsck (EX_DATAERR), 70 other
/// std::exception, 75 interrupted (resumable).  Failures emit one
/// structured stderr line:
///   tacos-error kind=<class> code=<n>: <message>
///
/// Global options:
///   --threads=N          size of the evaluation thread pool
///   --fault-pcg-every=N  force PCG failure on every Nth solve (testing)
///   --fault-pcg-rungs=K  ladder rungs the fault survives (1..4, default 1)
///   --run-dir=DIR        journal completed batch tasks under DIR
///   --resume             replay DIR's journal instead of recomputing
///   --task-deadline=S    per-task wall-clock budget in seconds
///   --refine             adjoint-gradient spacing refinement of each
///                        16-chiplet grid winner (optimize/batch)
///   --refine-tol-mm=T    refinement stopping resolution (default 1e-3)
///   --metrics[=FILE]     write the metrics registry as JSON (defaults to
///                        metrics.json inside --run-dir)
///   --trace[=FILE]       write a Chrome trace_event JSON timeline
///                        (defaults to trace.json inside --run-dir); see
///                        docs/OBSERVABILITY.md
///
/// SIGINT/SIGTERM trip the global cancel token: batch runs stop
/// dispatching, drain in-flight tasks, flush the journal, and exit 75
/// (send the signal again to force-quit).  See docs/ROBUSTNESS.md.
///
/// Commands that run the thermal stack print the run's health summary
/// (recoveries, degradations, quarantines) to stderr afterwards.

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/errors.hpp"
#include "common/fsck.hpp"
#include "common/journal.hpp"
#include "common/lease.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/fabric.hpp"
#include "core/optimizer.hpp"
#include "cost/cost_model.hpp"
#include "obs/merge.hpp"
#include "obs/obs.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <unistd.h>
#endif

using namespace tacos;

namespace {

/// Fault-injection schedule from the --fault-* flags (off by default).
FaultPlan g_fault;

/// Durable-run knobs from --run-dir/--resume/--task-deadline.
std::string g_run_dir;
bool g_resume = false;
double g_task_deadline_s = 0.0;

/// Sweep-fabric knobs (batch only; docs/ROBUSTNESS.md "The sweep
/// fabric").  --workers=N forks N worker processes over the shared
/// --run-dir; --fabric-worker/--fabric-incarnation are the internal flags
/// the supervisor re-execs workers with (not for interactive use).
int g_workers = 0;
std::uint64_t g_lease_ttl_ms = 30'000;
int g_fabric_worker = -1;
int g_fabric_incarnation = 0;
/// Original command line, kept verbatim so the supervisor can re-exec
/// itself as workers.
std::vector<std::string> g_argv;

/// Steady-state PCG preconditioner from --precond (auto by default:
/// multigrid above ThermalModel's size threshold, Jacobi below).
PrecondKind g_precond = PrecondKind::kAuto;

/// Observability knobs from --metrics/--trace (docs/OBSERVABILITY.md).
obs::ObsOptions g_obs;

/// Evaluation-service knobs (docs/ROBUSTNESS.md "The evaluation
/// service").  --remote=ADDR points batch/eval-remote/ping at a running
/// `tacos_cli serve`; --socket/--port pick the serve transport; the rest
/// tune the client's retry/deadline behavior and the server's admission
/// control.
std::string g_remote;                  ///< --remote=ADDR (client side)
std::string g_socket;                  ///< serve: unix socket path
long g_port = -1;                      ///< serve: TCP port (-1 = unix)
std::size_t g_serve_threads = 2;       ///< serve: worker pool size
std::size_t g_serve_queue = 8;         ///< serve: admission queue bound
std::uint64_t g_remote_deadline_ms = 0;///< per-request transport deadline
int g_remote_attempts = 5;             ///< client retry budget
std::uint64_t g_serve_hold_ms = 0;     ///< --fault-serve-hold-ms (testing)

/// Evaluation fidelity from --fidelity (docs/PERFORMANCE.md): full runs
/// every candidate through the leakage fixed point; ladder screens through
/// surrogate → coarse → medium rungs first; auto picks per grid size.
FidelityMode g_fidelity = FidelityMode::kFull;
/// --surrogate-keep-frac: fraction of confident rejects audited anyway.
double g_keep_frac = 0.0;
/// --mg-mixed: float smoothing sweeps inside the MG preconditioner.
bool g_mg_mixed = false;

/// --refine: continuous adjoint-gradient spacing refinement of each grid
/// winner (docs/PERFORMANCE.md "Continuous spacing refinement").
bool g_refine = false;
/// --refine-tol-mm: spacing resolution at which the descent stops.
double g_refine_tol_mm = 1e-3;

/// Client options shared by every --remote consumer (defined with the
/// service commands below).
ClientOptions make_client_options();

int usage() {
  std::cerr <<
      "usage: tacos_cli [--threads=N] [--fault-pcg-every=N]"
      " [--fault-pcg-rungs=K]\n"
      "                 [--fault-leak-nonconverge] [--fault-coarse-every=N]\n"
      "                 [--run-dir=DIR] [--resume] [--task-deadline=S]\n"
      "                 [--workers=N] [--lease-ttl-ms=T]\n"
      "                 [--fault-worker-crash-after=K]"
      " [--fault-worker-crash-task=BENCH]\n"
      "                 [--fault-lease-stall-ms=T]\n"
      "                 [--precond=auto|jacobi|mg] [--mg-mixed]\n"
      "                 [--fidelity=auto|full|ladder]"
      " [--surrogate-keep-frac=F]\n"
      "                 [--refine] [--refine-tol-mm=T]\n"
      "                 [--remote=ADDR] [--remote-deadline-ms=T]"
      " [--remote-attempts=K]\n"
      "                 [--socket=PATH] [--port=N] [--serve-threads=N]\n"
      "                 [--serve-queue=N] [--fault-serve-hold-ms=T]\n"
      "                 [--metrics[=FILE]] [--trace[=FILE]]"
      " <command> [args]\n"
      "  list\n"
      "  evaluate <bench> <n:1|4|16> <s1> <s2> <s3> <f_idx:0-4> <p>\n"
      "  baseline <bench> [threshold_c=85]\n"
      "  optimize <bench> [alpha=1] [beta=0] [threshold_c=85]\n"
      "  sweep    <bench> <n:4|16> [threshold_c=85]\n"
      "  cost     <n:4|16> <interposer_mm>\n"
      "  batch    [alpha=1] [beta=0] [threshold_c=85] [grid=32]"
      " [step=0.5]\n"
      "  serve                 (requires --socket=PATH or --port=N,"
      " and --run-dir)\n"
      "  eval-remote <bench> <n> <s1> <s2> <s3> <f_idx> <p>"
      "   (requires --remote)\n"
      "  ping [--stats]        (requires --remote)\n"
      "  trace-merge [run-dir] (merge telemetry shards; or --run-dir)\n"
      "  status   [run-dir]    (live run-status view; or --run-dir)\n"
      "  fsck     [--fix]      (requires --run-dir)\n";
  return exit_code::kUsage;
}

Evaluator make_evaluator() {
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = 32;
  cfg.thermal.solve.fault = g_fault;
  cfg.thermal.solve.precond = g_precond;
  cfg.thermal.solve.mg_mixed_precision = g_mg_mixed;
  cfg.ladder.mode = g_fidelity;
  cfg.ladder.keep_frac = g_keep_frac;
  // Interactive commands honor Ctrl-C at solver granularity: the solve
  // aborts with CancelledError and the process exits 75.
  cfg.thermal.solve.cancel = &global_cancel_token();
  return Evaluator(cfg);
}

/// One-line health report after any command that ran the thermal stack.
/// The counters also land in the metrics artifact when --metrics is on.
void report_health(const Evaluator& eval) {
  std::cerr << eval.health().summary() << "\n";
  obs::record_run_health(eval.health());
}

int cmd_list() {
  TextTable t({"benchmark", "suite", "class", "P256_w", "sat_cores",
               "mem_frac"});
  for (const auto& b : benchmarks()) {
    t.add_row({std::string(b.name), std::string(b.suite),
               b.power_class == PowerClass::kHigh     ? "high"
               : b.power_class == PowerClass::kMedium ? "medium"
                                                      : "low",
               TextTable::fmt(b.power_256_w, 0), std::to_string(b.sat_cores),
               TextTable::fmt(b.mem_fraction, 2)});
  }
  t.print("benchmarks");
  TextTable d({"idx", "freq_mhz", "vdd"});
  for (std::size_t i = 0; i < kDvfsLevelCount; ++i)
    d.add_row({std::to_string(i), TextTable::fmt(kDvfsLevels[i].freq_mhz, 0),
               TextTable::fmt(kDvfsLevels[i].vdd, 2)});
  d.print("DVFS levels");
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& a) {
  if (a.size() != 7) return usage();
  Evaluator eval = make_evaluator();
  const BenchmarkProfile& bench = benchmark_by_name(a[0]);
  Organization org{std::stoi(a[1]),
                   Spacing{std::stod(a[2]), std::stod(a[3]), std::stod(a[4])},
                   std::stoul(a[5]), std::stoi(a[6])};
  const ThermalEval& te = eval.thermal_eval(org, bench);
  std::cout << "organization: n=" << org.n_chiplets << " s=("
            << org.spacing.s1 << "," << org.spacing.s2 << ","
            << org.spacing.s3 << ") f=" << level_of(org).freq_mhz
            << "MHz p=" << org.active_cores << "\n"
            << "interposer:   " << interposer_edge_of(org) << " mm\n"
            << "peak temp:    " << te.peak_c << " C (power "
            << te.total_power_w << " W, " << te.leak_iterations
            << " leakage iterations)\n"
            << "IPS:          " << eval.ips(org, bench) << "\n"
            << "cost:         $" << eval.cost(org) << " ("
            << eval.cost(org) / eval.cost_2d() << "x the 2D chip)\n";
  report_health(eval);
  return exit_code::kOk;
}

int cmd_baseline(const std::vector<std::string>& a) {
  if (a.empty()) return usage();
  Evaluator eval = make_evaluator();
  const BenchmarkProfile& bench = benchmark_by_name(a[0]);
  const double th = a.size() > 1 ? std::stod(a[1]) : 85.0;
  const BaselinePoint& b = eval.baseline_2d(bench, th);
  if (!b.feasible) {
    std::cout << "no feasible 2D operating point under " << th << " C\n";
    report_health(eval);
    return exit_code::kOk;
  }
  std::cout << "2D baseline for " << bench.name << " under " << th
            << " C: " << kDvfsLevels[b.dvfs_idx].freq_mhz << " MHz, "
            << b.active_cores << " cores, peak " << b.peak_c << " C, IPS "
            << b.ips << ", cost $" << eval.cost_2d() << "\n";
  report_health(eval);
  return exit_code::kOk;
}

int cmd_optimize(const std::vector<std::string>& a) {
  if (a.empty()) return usage();
  Evaluator eval = make_evaluator();
  const BenchmarkProfile& bench = benchmark_by_name(a[0]);
  OptimizerOptions opts;
  opts.alpha = a.size() > 1 ? std::stod(a[1]) : 1.0;
  opts.beta = a.size() > 2 ? std::stod(a[2]) : 0.0;
  opts.threshold_c = a.size() > 3 ? std::stod(a[3]) : 85.0;
  opts.refine = g_refine;
  opts.refine_tol_mm = g_refine_tol_mm;
  opts.cancel = &global_cancel_token();
  const OptResult r = optimize_greedy(eval, bench, opts);
  if (!r.found) {
    std::cout << "no feasible organization\n";
    report_health(eval);
    return exit_code::kOk;
  }
  std::cout << "optimum for " << bench.name << " (alpha=" << opts.alpha
            << ", beta=" << opts.beta << ", " << opts.threshold_c
            << " C):\n  n=" << r.org.n_chiplets << " s=(" << r.org.spacing.s1
            << "," << r.org.spacing.s2 << "," << r.org.spacing.s3 << ") "
            << level_of(r.org).freq_mhz << "MHz p=" << r.org.active_cores
            << "\n  interposer " << interposer_edge_of(r.org) << " mm, peak "
            << r.peak_c << " C, IPS " << r.ips << ", cost $" << r.cost
            << " (" << r.cost / eval.cost_2d() << "x)\n  objective "
            << r.objective << ", " << r.thermal_solves << " thermal solves\n";
  if (r.refined)
    std::cout << "  refined from grid s=(" << r.grid_spacing.s1 << ","
              << r.grid_spacing.s2 << "," << r.grid_spacing.s3 << ") peak "
              << r.peak_grid_c << " C in " << r.refine_steps << " step(s)\n";
  report_health(eval);
  return exit_code::kOk;
}

int cmd_sweep(const std::vector<std::string>& a) {
  if (a.size() < 2) return usage();
  Evaluator eval = make_evaluator();
  const BenchmarkProfile& bench = benchmark_by_name(a[0]);
  const int n = std::stoi(a[1]);
  OptimizerOptions opts;
  opts.threshold_c = a.size() > 2 ? std::stod(a[2]) : 85.0;
  Rng rng(opts.seed);
  const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
  TextTable t({"interposer_mm", "max_ips", "vs_2D", "org"});
  for (double w = 20.0; w <= 50.0 + 1e-9; w += 2.0) {
    const MaxIpsResult r = max_ips_at_interposer(eval, bench, n, w, opts,
                                                 rng);
    std::ostringstream org;
    if (r.found)
      org << level_of(r.org).freq_mhz << "MHz p=" << r.org.active_cores;
    t.add_row({TextTable::fmt(w, 0),
               r.found ? TextTable::fmt(r.ips, 0) : "none",
               r.found && base.feasible ? TextTable::fmt(r.ips / base.ips, 2)
                                        : "n/a",
               r.found ? org.str() : "-"});
  }
  t.print("max IPS vs interposer size (" + std::string(bench.name) + ", " +
          std::to_string(n) + " chiplets)");
  report_health(eval);
  return exit_code::kOk;
}

/// Durable batch optimization: optimize_greedy_batch over every
/// benchmark, wired to the write-ahead journal and the global cancel
/// token.  Stdout carries only deterministic result rows (table + CSV);
/// progress and health go to stderr — so a resumed run's stdout is
/// byte-identical to an uninterrupted one.
int cmd_batch(const std::vector<std::string>& a) {
  if (a.size() > 5) return usage();
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny =
      a.size() > 3 ? std::stoul(a[3]) : 32;
  cfg.thermal.solve.fault = g_fault;
  cfg.thermal.solve.precond = g_precond;
  cfg.thermal.solve.mg_mixed_precision = g_mg_mixed;
  cfg.ladder.mode = g_fidelity;
  cfg.ladder.keep_frac = g_keep_frac;
  OptimizerOptions opts;
  opts.alpha = !a.empty() ? std::stod(a[0]) : 1.0;
  opts.beta = a.size() > 1 ? std::stod(a[1]) : 0.0;
  opts.threshold_c = a.size() > 2 ? std::stod(a[2]) : 85.0;
  opts.step_mm = a.size() > 4 ? std::stod(a[4]) : 0.5;
  opts.refine = g_refine;
  opts.refine_tol_mm = g_refine_tol_mm;

  std::vector<std::string> names;
  for (const auto& b : benchmarks()) names.emplace_back(b.name);

  FabricOptions fab;
  fab.workers = g_workers;
  fab.lease_ttl_ms = g_lease_ttl_ms;
  fab.task_deadline_s = g_task_deadline_s;

  if (!g_remote.empty()) {
    // Offload every task to the evaluation service.  The hook slots in
    // underneath optimize_one_guarded, so journal replay, --resume and
    // the sweep fabric keep their exact semantics — fabric workers
    // inherit --remote through the re-exec'd command line and install
    // their own hook here.  One client (and one jitter seed) per worker
    // thread: the client is not thread-safe, and distinct seeds keep a
    // fleet's retries from synchronizing into a thundering herd.
    set_remote_optimize_hook([](const EvalConfig& config,
                                const std::string& bench,
                                const OptimizerOptions& o,
                                double task_deadline_s) {
      thread_local std::unique_ptr<EvalClient> client;
      if (!client) {
        ClientOptions copt = make_client_options();
        static std::atomic<std::uint64_t> next_seed{0};
        copt.backoff.seed =
            next_seed.fetch_add(1, std::memory_order_relaxed);
        client = std::make_unique<EvalClient>(copt);
      }
      return client->optimize(config, o, bench, task_deadline_s);
    });
    std::cerr << "[remote] offloading evaluation to " << g_remote << "\n";
  }

  if (g_fabric_worker >= 0) {
    // Worker process of a --workers=N sweep: run the claim → run →
    // publish loop against the shared run dir and exit.  The canonical
    // journal stays the supervisor's (it holds the lock); this process
    // journals into its own shard.
    if (g_run_dir.empty()) {
      std::cerr << "--fabric-worker requires --run-dir=DIR\n";
      return exit_code::kUsage;
    }
    const WorkerReport rep = run_fabric_worker(
        cfg, names, opts, g_run_dir, g_fabric_worker, g_fabric_incarnation,
        fab, g_fault, &global_cancel_token());
    std::cerr << "[fabric "
              << fabric_worker_name(g_fabric_worker, g_fabric_incarnation)
              << "] claimed " << rep.claimed << ", published "
              << rep.published << ", fenced " << rep.fenced << ", reclaimed "
              << rep.reclaims << "\n";
    return rep.interrupted ? exit_code::kInterrupted : exit_code::kOk;
  }

  std::unique_ptr<RunJournal> journal;
  if (!g_run_dir.empty()) {
    journal = std::make_unique<RunJournal>(g_run_dir);
    const RunJournal::LoadStats st = journal->load();
    if (st.dropped > 0)
      std::cerr << "[journal] dropped " << st.dropped
                << " torn/corrupt record(s); their tasks will be"
                   " recomputed\n";
    if (journal->size() > 0 && !g_resume) {
      std::cerr << "run directory " << g_run_dir
                << " already holds a journal (" << journal->task_count()
                << " completed task(s)); pass --resume to continue it or"
                   " use a fresh --run-dir\n";
      return exit_code::kUsage;
    }
    if (g_resume)
      std::cerr << "[journal] resuming: " << journal->task_count()
                << " task(s) already complete in " << g_run_dir << "\n";
  } else if (g_resume) {
    std::cerr << "--resume requires --run-dir=DIR\n";
    return exit_code::kUsage;
  }
  const RunControl run{journal.get(), &global_cancel_token(),
                       g_task_deadline_s};

  RunHealth fabric_health;
  if (g_workers > 0) {
    // Supervisor of a multi-process sweep: fork workers over the shared
    // run dir, ride out crashes, and merge the winning shard rows into
    // the canonical journal.  The optimize_greedy_batch call below then
    // replays that journal, so stdout is byte-identical to a
    // single-process run at any worker count.
    if (!journal) {
      std::cerr << "--workers requires --run-dir=DIR\n";
      return exit_code::kUsage;
    }
    const FabricReport fr =
        run_fabric_sweep(cfg, names, opts, *journal, g_run_dir, fab, g_argv,
                         &global_cancel_token());
    if (fr.interrupted) {
      std::cerr << "[fabric] interrupted; shards and lease log are on disk"
                   " — resume with --run-dir=" << g_run_dir
                << " --resume --workers=" << g_workers << "\n";
      return exit_code::kInterrupted;
    }
    std::cerr << "[fabric] merged " << fr.merged << " task(s) from "
              << g_workers << " worker(s); " << fr.health.summary() << "\n";
    fabric_health = fr.health;
  }

  EvalStats stats;
  const std::vector<OptResult> results =
      optimize_greedy_batch(cfg, names, opts, &stats, &run);

  TextTable t({"benchmark", "org", "interposer_mm", "peak_c", "ips",
               "cost", "objective", "status"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const OptResult& r = results[i];
    std::ostringstream org;
    if (r.found)
      org << "n=" << r.org.n_chiplets << " s=(" << r.org.spacing.s1 << ","
          << r.org.spacing.s2 << "," << r.org.spacing.s3 << ") "
          << level_of(r.org).freq_mhz << "MHz p=" << r.org.active_cores;
    std::string status = "ok";
    if (r.interrupted)
      status = "interrupted";
    else if (r.quarantined)
      status = r.diagnostic;
    else if (!r.found)
      status = "infeasible";
    t.add_row({names[i], r.found ? org.str() : "none",
               r.found ? TextTable::fmt(interposer_edge_of(r.org), 1) : "n/a",
               r.found ? TextTable::fmt(r.peak_c, 1) : "n/a",
               r.found ? TextTable::fmt(r.ips, 0) : "n/a",
               r.found ? TextTable::fmt(r.cost, 0) : "n/a",
               r.found ? TextTable::fmt(r.objective, 4) : "n/a", status});
  }
  std::ostringstream title;
  title << "batch optimize (alpha=" << opts.alpha << ", beta=" << opts.beta
        << ", " << opts.threshold_c << " C, grid "
        << cfg.thermal.grid_nx << ", step " << opts.step_mm << " mm)";
  t.print(title.str());
  std::cout << "\n-- CSV --\n" << t.to_csv();
  if (stats.ladder.any()) {
    const LadderStats& l = stats.ladder;
    std::cerr << "ladder: " << l.screened << " screened, " << l.rejected
              << " rejected, " << l.promoted << " promoted (" << l.audits
              << " audit(s)), " << l.surrogate_scores << " surrogate score(s)/"
              << l.surrogate_fits << " fit(s), " << l.coarse_solves
              << " coarse + " << l.medium_solves << " medium solve(s), "
              << l.coarse_failures + l.medium_failures << " rung failure(s)\n";
  }
  if (stats.refine.any()) {
    const RefineStats& rf = stats.refine;
    std::cerr << "refine: " << rf.attempted << " attempted, " << rf.steps
              << " accepted step(s)/" << rf.trials << " trial(s), "
              << rf.adjoint_solves << " adjoint solve(s)\n";
  }
  stats.health += fabric_health;  // supervisor-level counters, stderr only
  std::cerr << stats.health.summary() << "\n";
  obs::record_run_health(stats.health);
  if (run_interrupted()) {
    std::cerr << "[run] interrupted";
    if (journal)
      std::cerr << "; completed tasks are journaled — resume with"
                   " --run-dir=" << g_run_dir << " --resume";
    std::cerr << "\n";
    return exit_code::kInterrupted;
  }
  return exit_code::kOk;
}

ClientOptions make_client_options() {
  ClientOptions copt;
  copt.endpoint = parse_endpoint(g_remote);
  copt.max_attempts = g_remote_attempts;
  copt.request_deadline_ms = g_remote_deadline_ms;
  copt.cancel = &global_cancel_token();
  return copt;
}

/// Persistent evaluation server: listen, serve, drain on SIGINT/SIGTERM.
/// The memo cache lives in --run-dir, so a restarted server resumes with
/// every previously computed response intact.
int cmd_serve() {
  if (g_socket.empty() && g_port < 0) {
    std::cerr << "serve requires --socket=PATH or --port=N\n";
    return exit_code::kUsage;
  }
  if (g_run_dir.empty()) {
    std::cerr << "serve requires --run-dir=DIR (the memo cache lives"
                 " there)\n";
    return exit_code::kUsage;
  }
  ServerOptions sopt;
  if (g_port >= 0) {
    sopt.endpoint.tcp = true;
    sopt.endpoint.port = static_cast<std::uint16_t>(g_port);
  } else {
    sopt.endpoint.path = g_socket;
  }
  sopt.memo_dir = g_run_dir;
  sopt.threads = g_serve_threads;
  sopt.queue_capacity = g_serve_queue;
  sopt.fault_hold_ms = g_serve_hold_ms;
  const ServerStats st = serve_forever(sopt, &global_cancel_token());
  std::cerr << format_drain_summary(st) << "\n";
  // The only way out is a shutdown signal; like every interrupted run,
  // the server exits 75 — its durable state resumes on the next start.
  return exit_code::kInterrupted;
}

/// One organization evaluated by the server (the remote twin of
/// `evaluate`).  Fault plans are deliberately not forwarded: the server
/// computes under its own, clean configuration.
int cmd_eval_remote(const std::vector<std::string>& a) {
  if (a.size() != 7) return usage();
  if (g_remote.empty()) {
    std::cerr << "eval-remote requires --remote=ADDR\n";
    return exit_code::kUsage;
  }
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = 32;
  cfg.thermal.solve.precond = g_precond;
  cfg.thermal.solve.mg_mixed_precision = g_mg_mixed;
  cfg.ladder.mode = g_fidelity;
  cfg.ladder.keep_frac = g_keep_frac;
  const OptimizerOptions opts;
  const Organization org{
      std::stoi(a[1]),
      Spacing{std::stod(a[2]), std::stod(a[3]), std::stod(a[4])},
      std::stoul(a[5]), std::stoi(a[6])};
  EvalClient client(make_client_options());
  bool memo = false;
  const std::string payload = client.evaluate(cfg, opts, a[0], org, &memo);
  std::cout << payload;
  std::cerr << "[remote] " << (memo ? "memo hit" : "computed") << " via "
            << g_remote << " in " << client.last_attempts()
            << " attempt(s)\n";
  return exit_code::kOk;
}

/// Liveness probe (single attempt): exit 0 iff the server answers.  With
/// `--stats`, scrape and print the server's live request metrics instead.
int cmd_ping(const std::vector<std::string>& a) {
  bool stats = false;
  for (const std::string& s : a) {
    if (s == "--stats")
      stats = true;
    else
      return usage();
  }
  if (g_remote.empty()) {
    std::cerr << "ping requires --remote=ADDR\n";
    return exit_code::kUsage;
  }
  EvalClient client(make_client_options());
  if (stats) {
    const std::optional<std::string> payload = client.stats();
    if (!payload) {
      std::cerr << "no response from " << g_remote << "\n";
      return exit_code::kService;
    }
    std::cout << *payload;
    return exit_code::kOk;
  }
  if (client.ping()) {
    std::cout << "pong\n";
    return exit_code::kOk;
  }
  std::cerr << "no response from " << g_remote << "\n";
  return exit_code::kService;
}

/// The run dir a read-only telemetry command operates on: the positional
/// argument when given, else --run-dir.
std::string telemetry_dir(const std::vector<std::string>& a) {
  if (a.size() == 1) return a[0];
  if (a.empty()) return g_run_dir;
  return {};
}

/// Merge the per-process trace/metrics shards of a run directory into
/// `trace-merged.json` / `metrics-merged.json` (docs/OBSERVABILITY.md,
/// "Distributed tracing").  Read-only with respect to the run's durable
/// state; deterministic for a given shard set.
int cmd_trace_merge(const std::vector<std::string>& a) {
  const std::string dir = telemetry_dir(a);
  if (dir.empty()) {
    std::cerr << "trace-merge requires a run directory (argument or"
                 " --run-dir=DIR)\n";
    return exit_code::kUsage;
  }
  const obs::TraceMergeResult tr = obs::merge_trace_shards(dir);
  TextTable t({"shard", "pid", "process", "events", "state"});
  for (const obs::TraceShard& s : tr.shards)
    t.add_row({s.file, std::to_string(s.pid), s.label,
               std::to_string(s.events), s.torn ? "torn" : "complete"});
  t.print("trace shards in " + dir);
  if (tr.shards.empty()) {
    std::cerr << "trace-merge: no trace shards in " << dir << "\n";
  } else {
    write_file_atomic(dir + "/trace-merged.json", tr.json);
    std::cout << "merged " << tr.events << " event(s) from "
              << tr.shards.size() << " shard(s) into " << dir
              << "/trace-merged.json";
    if (tr.dropped > 0) std::cout << " (" << tr.dropped << " dropped)";
    std::cout << "\n";
  }
  const obs::MetricsMergeResult mr = obs::merge_metrics_shards(dir);
  if (!mr.shards.empty()) {
    write_file_atomic(dir + "/metrics-merged.json", mr.json);
    std::cout << "merged " << mr.series << " metric series from "
              << mr.shards.size() << " shard(s) into " << dir
              << "/metrics-merged.json\n";
  }
  return exit_code::kOk;
}

/// True when `pid` names a live process we may signal-probe.
bool pid_alive(long pid) {
#if defined(__unix__) || defined(__APPLE__)
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
#else
  (void)pid;
  return false;
#endif
}

/// Live run-status view: sweep progress, per-worker lease state, and the
/// merged health/service counters of a run directory.  Strictly read-only
/// — safe to point at a directory another process is actively writing —
/// and exits 0 on live, finished, and dead runs alike.
int cmd_status(const std::vector<std::string>& a) {
  const std::string dir = telemetry_dir(a);
  if (dir.empty()) {
    std::cerr << "status requires a run directory (argument or"
                 " --run-dir=DIR)\n";
    return exit_code::kUsage;
  }

  // Liveness: the canonical journal's lockfile holds its owner's pid.
  std::string state = "idle";
  long owner_pid = -1;
  {
    std::ifstream lock(dir + "/journal.jsonl.lock");
    if (lock) {
      lock >> owner_pid;
      state = pid_alive(owner_pid) ? "live" : "stale-lock";
    }
  }

  // Canonical journal: completed rows (read without locking).
  std::vector<std::pair<std::string, std::string>> rows;
  RunJournal::read_records(dir + "/journal.jsonl", &rows);
  std::size_t done_rows = 0, quarantine_rows = 0, meta_rows = 0;
  for (const auto& [id, payload] : rows) {
    (void)payload;
    if (id.rfind("meta:", 0) == 0)
      ++meta_rows;
    else if (id.rfind("quarantine:", 0) == 0)
      ++quarantine_rows;
    else
      ++done_rows;
  }

  // Lease log: the fabric's own view of task + worker state.
  LeaseTable leases(dir, /*read_only=*/true);
  leases.refresh();
  const std::vector<std::string> tasks = leases.task_ids();
  std::size_t lease_done = 0, lease_held = 0, lease_poisoned = 0,
              lease_open = 0, crashes = 0;
  std::map<std::string, std::pair<std::size_t, std::size_t>> workers;
  std::vector<std::string> held_lines;
  for (const std::string& id : tasks) {
    const LeaseState s = leases.state(id);
    crashes += s.crashes;
    switch (s.phase) {
      case LeaseState::Phase::kDone:
        ++lease_done;
        ++workers[s.done_worker].first;
        break;
      case LeaseState::Phase::kHeld: {
        ++lease_held;
        ++workers[s.holder].second;
        std::ostringstream h;
        h << "  held: " << id << " by " << s.holder;
        const std::uint64_t now = lease_now_ms();
        if (s.deadline_ms > now)
          h << " (lease expires in " << (s.deadline_ms - now) / 1000 << "s)";
        held_lines.push_back(h.str());
        break;
      }
      case LeaseState::Phase::kPoisoned: ++lease_poisoned; break;
      case LeaseState::Phase::kFree: ++lease_open; break;
    }
  }
  const bool finished =
      !tasks.empty() && lease_held == 0 && lease_open == 0;
  if (state == "idle" && (finished || (tasks.empty() && done_rows > 0)))
    state = "finished";

  std::cout << "run " << dir << ": " << state;
  if (owner_pid > 0 && state == "live")
    std::cout << " (journal held by pid " << owner_pid << ")";
  std::cout << "\n";
  std::cout << "journal: " << done_rows << " task row(s), " << quarantine_rows
            << " quarantine row(s), " << meta_rows << " meta row(s)\n";
  if (!tasks.empty()) {
    std::cout << "tasks: " << tasks.size() << " — " << lease_done << " done, "
              << lease_held << " held, " << lease_open << " open, "
              << lease_poisoned << " poisoned (" << crashes
              << " crash record(s), " << leases.replay_reclaims()
              << " reclaim(s))\n";
    for (const std::string& h : held_lines) std::cout << h << "\n";
    for (const auto& [name, counts] : workers) {
      std::cout << "  worker " << name << ": " << counts.first
                << " committed";
      if (counts.second > 0) std::cout << ", " << counts.second << " held";
      std::cout << "\n";
    }
  }

  // Merged telemetry: the counters of every metrics shard, summed.
  const std::map<std::string, double> counters = obs::merged_counters(dir);
  const auto get = [&](const char* name) -> double {
    const auto it = counters.find(name);
    return it == counters.end() ? 0.0 : it->second;
  };
  const double memo_hits = get("service.memo_hits");
  const double memo_misses = get("service.memo_misses");
  if (memo_hits + memo_misses > 0)
    std::cout << "memo: " << memo_hits << " hit(s) / " << memo_misses
              << " miss(es) ("
              << static_cast<int>(100.0 * memo_hits /
                                  (memo_hits + memo_misses))
              << "% hit rate)\n";
  bool counters_header = false;
  for (const auto& [name, value] : counters) {
    const bool interesting = name.rfind("service.", 0) == 0 ||
                             name.rfind("health.", 0) == 0 ||
                             name.rfind("surrogate.", 0) == 0 ||
                             name == "thermal.solves";
    if (!interesting) continue;
    if (!counters_header) {
      std::cout << "counters (merged from metrics shards):\n";
      counters_header = true;
    }
    std::cout << "  " << name << " " << value << "\n";
  }
  return exit_code::kOk;
}

/// Validate --run-dir's durable files; `--fix` repairs them in place.
int cmd_fsck(const std::vector<std::string>& a) {
  bool fix = false;
  for (const std::string& s : a) {
    if (s == "--fix")
      fix = true;
    else
      return usage();
  }
  if (g_run_dir.empty()) {
    std::cerr << "fsck requires --run-dir=DIR\n";
    return exit_code::kUsage;
  }
  const FsckReport rep = fsck_run_dir(g_run_dir, fix);
  TextTable t({"file", "kind", "valid", "corrupt", "torn_tail", "state"});
  for (const FsckFile& f : rep.files)
    t.add_row({f.name,
               f.advisory    ? "telemetry"
               : f.event_log ? "event-log"
                             : "journal",
               std::to_string(f.valid), std::to_string(f.corrupt),
               f.torn_tail ? "yes" : "no",
               f.fixed        ? "repaired"
               : f.corrupt == 0 ? "clean"
               : f.advisory   ? "advisory"
                              : "DAMAGED"});
  t.print("fsck " + g_run_dir);
  if (!rep.clean()) {
    std::cerr << "fsck: " << rep.total_corrupt()
              << " damaged line(s); rerun with --fix to truncate/repair\n";
    return exit_code::kDataErr;
  }
  std::cerr << "fsck: clean\n";
  return exit_code::kOk;
}

int cmd_cost(const std::vector<std::string>& a) {
  if (a.size() != 2) return usage();
  const int n = std::stoi(a[0]);
  const double w = std::stod(a[1]);
  const SystemSpec spec;
  const double edge = spec.chip_edge_mm() / (n == 4 ? 2 : 4);
  const CostBreakdown b = cost_breakdown_25d(n, edge * edge, w * w);
  const double c2d =
      single_chip_cost(spec.chip_edge_mm() * spec.chip_edge_mm());
  std::cout << n << " chiplets on a " << w << " mm interposer:\n"
            << "  chiplets:   $" << b.chiplets_total << " (" << b.chiplet_each
            << " each)\n  interposer: $" << b.interposer << "\n  bonding:    $"
            << b.bonding << " (yield factor " << b.bond_yield_factor << ")\n"
            << "  total:      $" << b.total << "  = "
            << b.total / c2d << "x the 2D chip ($" << c2d << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  int first = 1;
  // Global options, in any order before the command.  --threads=N sizes
  // the evaluation engine's pool (TACOS_THREADS is the equivalent knob);
  // the --fault-* flags arm the deterministic fault-injection plan that
  // every command's Evaluator inherits (docs/ROBUSTNESS.md).
  while (first < argc && std::string(argv[first]).rfind("--", 0) == 0) {
    const std::string flag = argv[first];
    if (flag.rfind("--threads=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 10);
      if (n < 1) return usage();
      ThreadPool::set_global_threads(static_cast<std::size_t>(n));
    } else if (flag.rfind("--fault-pcg-every=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 18);
      if (n < 1) return usage();
      g_fault.pcg_fail_every = static_cast<std::size_t>(n);
    } else if (flag.rfind("--fault-pcg-rungs=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 18);
      if (n < 1) return usage();
      g_fault.pcg_fail_rungs = static_cast<int>(n);
    } else if (flag == "--fault-leak-nonconverge") {
      g_fault.leak_force_nonconverge = true;
    } else if (flag.rfind("--fault-coarse-every=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 21);
      if (n < 1) return usage();
      g_fault.coarse_fail_every = static_cast<std::size_t>(n);
    } else if (flag.rfind("--fidelity=", 0) == 0) {
      const std::optional<FidelityMode> m =
          parse_fidelity_mode(flag.substr(11));
      if (!m) return usage();
      g_fidelity = *m;
    } else if (flag.rfind("--surrogate-keep-frac=", 0) == 0) {
      g_keep_frac = std::stod(flag.substr(22));
      if (!(g_keep_frac >= 0.0 && g_keep_frac <= 1.0)) return usage();
    } else if (flag == "--mg-mixed") {
      g_mg_mixed = true;
    } else if (flag == "--refine") {
      g_refine = true;
    } else if (flag.rfind("--refine-tol-mm=", 0) == 0) {
      g_refine_tol_mm = std::stod(flag.substr(16));
      if (!(g_refine_tol_mm > 0.0)) return usage();
    } else if (flag.rfind("--workers=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 10);
      if (n < 1) return usage();
      g_workers = static_cast<int>(n);
    } else if (flag.rfind("--lease-ttl-ms=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 15);
      if (n < 1) return usage();
      g_lease_ttl_ms = static_cast<std::uint64_t>(n);
    } else if (flag.rfind("--fault-worker-crash-after=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 27);
      if (n < 1) return usage();
      g_fault.worker_crash_after = static_cast<std::size_t>(n);
    } else if (flag.rfind("--fault-worker-crash-task=", 0) == 0) {
      g_fault.worker_crash_task = flag.substr(26);
      if (g_fault.worker_crash_task.empty()) return usage();
    } else if (flag.rfind("--fault-lease-stall-ms=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 23);
      if (n < 1) return usage();
      g_fault.lease_stall_ms = static_cast<std::uint64_t>(n);
    } else if (flag.rfind("--fabric-worker=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 16);
      if (n < 0) return usage();
      g_fabric_worker = static_cast<int>(n);
    } else if (flag.rfind("--fabric-incarnation=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 21);
      if (n < 0) return usage();
      g_fabric_incarnation = static_cast<int>(n);
    } else if (flag.rfind("--remote=", 0) == 0) {
      g_remote = flag.substr(9);
      if (g_remote.empty()) return usage();
    } else if (flag.rfind("--remote-deadline-ms=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 21);
      if (n < 1) return usage();
      g_remote_deadline_ms = static_cast<std::uint64_t>(n);
    } else if (flag.rfind("--remote-attempts=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 18);
      if (n < 1) return usage();
      g_remote_attempts = static_cast<int>(n);
    } else if (flag.rfind("--socket=", 0) == 0) {
      g_socket = flag.substr(9);
      if (g_socket.empty()) return usage();
    } else if (flag.rfind("--port=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 7);
      if (n < 0 || n > 65535) return usage();
      g_port = n;
    } else if (flag.rfind("--serve-threads=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 16);
      if (n < 1) return usage();
      g_serve_threads = static_cast<std::size_t>(n);
    } else if (flag.rfind("--serve-queue=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 14);
      if (n < 1) return usage();
      g_serve_queue = static_cast<std::size_t>(n);
    } else if (flag.rfind("--fault-serve-hold-ms=", 0) == 0) {
      const long n = std::atol(flag.c_str() + 22);
      if (n < 1) return usage();
      g_serve_hold_ms = static_cast<std::uint64_t>(n);
    } else if (flag.rfind("--run-dir=", 0) == 0) {
      g_run_dir = flag.substr(10);
    } else if (flag == "--resume") {
      g_resume = true;
    } else if (flag.rfind("--task-deadline=", 0) == 0) {
      g_task_deadline_s = std::stod(flag.substr(16));
    } else if (flag.rfind("--precond=", 0) == 0) {
      if (!parse_precond_name(flag.substr(10), &g_precond)) return usage();
    } else if (g_obs.parse_flag(flag)) {
      // consumed by the observability layer
    } else {
      return usage();
    }
    ++first;
  }
  if (argc - first < 1) return usage();
  g_argv.assign(argv, argv + argc);
  const std::string cmd = argv[first];
  if (g_fabric_worker >= 0) {
    // Fabric workers publish per-process telemetry shards — shard-suffix
    // redirection forces trace-w<k>.json / metrics-w<k>.json inside the
    // run dir, so N workers never clobber the supervisor's artifacts and
    // `tacos_cli trace-merge` can join them into one timeline.
    g_obs.shard_suffix = "w" + std::to_string(g_fabric_worker);
  } else if (cmd == "serve") {
    // The server is its own shard ("trace-serve.json") for the same
    // reason: it often shares a run dir with the sweep that drives it.
    g_obs.shard_suffix = "serve";
  } else if (cmd == "status" || cmd == "trace-merge") {
    // Read-only commands must not create, preload, or republish telemetry
    // artifacts in a directory they merely inspect.
    g_obs = obs::ObsOptions{};
  }
  g_obs.finalize(g_run_dir, g_resume);
  install_signal_handlers();
  std::vector<std::string> args(argv + first + 1, argv + argc);
  int rc;
  try {
    // Root span: every hot-path span nests under run.main, so per-phase
    // self-times in the metrics artifact sum to ~the command's wall time.
    static obs::SpanSite root_site("run.main", "run");
    obs::TraceSpan root(root_site);
    root.arg("cmd", cmd);
    if (cmd == "list") rc = cmd_list();
    else if (cmd == "evaluate") rc = cmd_evaluate(args);
    else if (cmd == "baseline") rc = cmd_baseline(args);
    else if (cmd == "optimize") rc = cmd_optimize(args);
    else if (cmd == "sweep") rc = cmd_sweep(args);
    else if (cmd == "cost") rc = cmd_cost(args);
    else if (cmd == "batch") rc = cmd_batch(args);
    else if (cmd == "serve") rc = cmd_serve();
    else if (cmd == "eval-remote") rc = cmd_eval_remote(args);
    else if (cmd == "ping") rc = cmd_ping(args);
    else if (cmd == "trace-merge") rc = cmd_trace_merge(args);
    else if (cmd == "status") rc = cmd_status(args);
    else if (cmd == "fsck") rc = cmd_fsck(args);
    else rc = usage();
  } catch (const std::exception& e) {
    // One structured line per failure, one exit code per error class, so
    // scripts can branch on the failure kind without parsing messages.
    std::cerr << diagnostic_line(e) << "\n";
    rc = exit_code_for(e);
  }
  if (g_obs.any()) g_obs.publish();
  return rc;
}
