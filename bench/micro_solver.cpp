/// Google-benchmark microbenchmarks of the thermal substrate (E12):
/// conductance-matrix assembly, cold and warm steady-state solves across
/// grid resolutions, and a full leakage-fixed-point evaluation.  These
/// quantify the per-simulation cost that the paper's 180k-CPU-hour
/// exhaustive-search estimate is built on.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/leakage.hpp"
#include "obs/obs.hpp"
#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "thermal/grid_model.hpp"

namespace {

using namespace tacos;

/// Preconditioner every benchmarked solve uses (--precond=auto|jacobi|mg).
PrecondKind g_precond = PrecondKind::kAuto;

ThermalConfig config_for(std::size_t n) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = n;
  c.solve.precond = g_precond;
  return c;
}

PowerMap uniform_power(const ChipletLayout& l, double total_w) {
  PowerMap p;
  for (const auto& c : l.chiplets()) p.add(c.rect, total_w / l.chiplet_count());
  return p;
}

void BM_ModelAssembly(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ThermalModel model(l, stack, cfg);
    benchmark::DoNotOptimize(model.node_count());
  }
}
BENCHMARK(BM_ModelAssembly)->Arg(16)->Arg(32)->Arg(64);

void BM_ColdSolve(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  const PowerMap p = uniform_power(l, 300.0);
  for (auto _ : state) {
    ThermalModel model(l, stack, cfg);  // fresh model -> cold start
    benchmark::DoNotOptimize(model.solve(p).peak_c);
  }
}
BENCHMARK(BM_ColdSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_WarmSolve(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  ThermalModel model(l, stack, cfg);
  PowerMap p = uniform_power(l, 300.0);
  model.solve(p);
  double w = 300.0;
  for (auto _ : state) {
    w = (w == 300.0) ? 303.0 : 300.0;  // small perturbation, warm restart
    benchmark::DoNotOptimize(model.solve(uniform_power(l, w)).peak_c);
  }
}
BENCHMARK(BM_WarmSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_LeakageFixedPoint(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const BenchmarkProfile& bench = benchmark_by_name("cholesky");
  const PowerModelParams pm;
  std::vector<int> active(256);
  for (int i = 0; i < 256; ++i) active[static_cast<std::size_t>(i)] = i;
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ThermalModel model(l, stack, cfg);
    const LeakageResult r = run_leakage_fixed_point(
        model, l, bench, kDvfsLevels[0], active, pm);
    benchmark::DoNotOptimize(r.peak_c);
  }
}
BENCHMARK(BM_LeakageFixedPoint)->Arg(24)->Arg(32);

/// CI smoke check (--selftest[=GRID], default 64 — the paper's
/// resolution): cold-solve the 16-chiplet layout with Jacobi and with
/// multigrid, then assert that (a) both converge, (b) multigrid needs at
/// least 3x fewer PCG iterations, and (c) the temperature fields agree to
/// well within solver tolerance.  Returns a process exit code.
int run_selftest(std::size_t grid) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const PowerMap p = uniform_power(l, 300.0);

  struct Run {
    PrecondKind kind;
    SolveResult sr;
    std::vector<double> tile_temps;
  } runs[2] = {{PrecondKind::kJacobi, {}, {}},
               {PrecondKind::kMultigrid, {}, {}}};
  for (Run& r : runs) {
    ThermalConfig cfg;
    cfg.grid_nx = cfg.grid_ny = grid;
    cfg.solve.precond = r.kind;
    ThermalModel model(l, stack, cfg);  // fresh model -> cold start
    r.sr = model.solve(p).solve_info;
    r.tile_temps = model.tile_temperatures();
  }

  double max_diff_c = 0.0;
  for (std::size_t i = 0; i < runs[0].tile_temps.size(); ++i)
    max_diff_c = std::max(
        max_diff_c, std::abs(runs[0].tile_temps[i] - runs[1].tile_temps[i]));
  const double ratio =
      static_cast<double>(runs[0].sr.iterations) /
      static_cast<double>(std::max<std::size_t>(1, runs[1].sr.iterations));

  std::printf(
      "[selftest] grid=%zu jacobi_iters=%zu mg_iters=%zu ratio=%.2f "
      "max_tile_diff_c=%.3g\n",
      grid, runs[0].sr.iterations, runs[1].sr.iterations, ratio, max_diff_c);
  bool ok = true;
  if (!runs[0].sr.converged || !runs[1].sr.converged) {
    std::fprintf(stderr, "[selftest] FAIL: a solve did not converge\n");
    ok = false;
  }
  if (ratio < 3.0) {
    std::fprintf(stderr,
                 "[selftest] FAIL: multigrid iteration reduction %.2fx < 3x\n",
                 ratio);
    ok = false;
  }
  if (!(max_diff_c < 1e-4)) {
    std::fprintf(stderr,
                 "[selftest] FAIL: preconditioners disagree by %.3g C\n",
                 max_diff_c);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

// Expanded BENCHMARK_MAIN: the observability flags (--metrics[=FILE],
// --trace[=FILE]) plus --precond= and --selftest[=GRID] are stripped
// before google-benchmark sees argv, and the artifacts are published
// after the run — so the solver microbenchmarks can be profiled with the
// same flags as every other bench main.
int main(int argc, char** argv) {
  tacos::obs::ObsOptions obs_opts;
  bool selftest = false;
  std::size_t selftest_grid = 64;
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--precond=", 0) == 0) {
      if (!tacos::parse_precond_name(arg.substr(10), &g_precond)) {
        std::fprintf(stderr, "bad --precond value (want auto|jacobi|mg)\n");
        return 1;
      }
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg.rfind("--selftest=", 0) == 0) {
      selftest = true;
      selftest_grid = std::stoul(arg.substr(11));
    } else if (!obs_opts.parse_flag(argv[i])) {
      kept.push_back(argv[i]);
    }
  }
  obs_opts.finalize();
  if (selftest) {
    const int rc = run_selftest(selftest_grid);
    if (obs_opts.any()) obs_opts.publish();
    return rc;
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (obs_opts.any()) obs_opts.publish();
  return 0;
}
