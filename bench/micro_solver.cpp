/// Google-benchmark microbenchmarks of the thermal substrate (E12):
/// conductance-matrix assembly, cold and warm steady-state solves across
/// grid resolutions, and a full leakage-fixed-point evaluation.  These
/// quantify the per-simulation cost that the paper's 180k-CPU-hour
/// exhaustive-search estimate is built on.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/leakage.hpp"
#include "obs/obs.hpp"
#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "thermal/grid_model.hpp"

namespace {

using namespace tacos;

ThermalConfig config_for(std::size_t n) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = n;
  return c;
}

PowerMap uniform_power(const ChipletLayout& l, double total_w) {
  PowerMap p;
  for (const auto& c : l.chiplets()) p.add(c.rect, total_w / l.chiplet_count());
  return p;
}

void BM_ModelAssembly(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ThermalModel model(l, stack, cfg);
    benchmark::DoNotOptimize(model.node_count());
  }
}
BENCHMARK(BM_ModelAssembly)->Arg(16)->Arg(32)->Arg(64);

void BM_ColdSolve(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  const PowerMap p = uniform_power(l, 300.0);
  for (auto _ : state) {
    ThermalModel model(l, stack, cfg);  // fresh model -> cold start
    benchmark::DoNotOptimize(model.solve(p).peak_c);
  }
}
BENCHMARK(BM_ColdSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_WarmSolve(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  ThermalModel model(l, stack, cfg);
  PowerMap p = uniform_power(l, 300.0);
  model.solve(p);
  double w = 300.0;
  for (auto _ : state) {
    w = (w == 300.0) ? 303.0 : 300.0;  // small perturbation, warm restart
    benchmark::DoNotOptimize(model.solve(uniform_power(l, w)).peak_c);
  }
}
BENCHMARK(BM_WarmSolve)->Arg(16)->Arg(32)->Arg(64);

void BM_LeakageFixedPoint(benchmark::State& state) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const BenchmarkProfile& bench = benchmark_by_name("cholesky");
  const PowerModelParams pm;
  std::vector<int> active(256);
  for (int i = 0; i < 256; ++i) active[static_cast<std::size_t>(i)] = i;
  const ThermalConfig cfg = config_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ThermalModel model(l, stack, cfg);
    const LeakageResult r = run_leakage_fixed_point(
        model, l, bench, kDvfsLevels[0], active, pm);
    benchmark::DoNotOptimize(r.peak_c);
  }
}
BENCHMARK(BM_LeakageFixedPoint)->Arg(24)->Arg(32);

}  // namespace

// Expanded BENCHMARK_MAIN: the observability flags (--metrics[=FILE],
// --trace[=FILE]) are stripped before google-benchmark sees argv, and the
// artifacts are published after the run — so the solver microbenchmarks
// can be profiled with the same flags as every other bench main.
int main(int argc, char** argv) {
  tacos::obs::ObsOptions obs_opts;
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (!obs_opts.parse_flag(argv[i])) kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  obs_opts.finalize();
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (obs_opts.any()) obs_opts.publish();
  return 0;
}
