/// Reproduces the §III-A network-power statements (E11): the electrical
/// mesh consumes ~3.9 W in the single-chip system and up to ~8.4 W in the
/// 2.5D system, with interposer-link drivers sized for single-cycle
/// propagation (Fig. 2 model).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  const auto opts = tacos::benchmain::options_from_args(argc, argv);
  return tacos::benchmain::run("Electrical mesh network power",
                               [&] { return tacos::network_power_table(opts); });
}
