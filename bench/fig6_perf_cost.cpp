/// Reproduces Fig. 6: maximum IPS and cost of 2.5D systems (normalized to
/// the single chip) under the 85C threshold across interposer sizes, for
/// the representative low/medium/high-power benchmarks (E5).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::Harness harness(argc, argv);
  const auto& opts = harness.options();
  std::vector<std::string> reps;
  for (auto name : tacos::representative_benchmarks())
    reps.emplace_back(name);
  tacos::RunHealth health;
  const int rc = tacos::benchmain::run(
      "Fig. 6: max IPS and cost vs interposer size",
      [&] { return tacos::fig6_perf_cost_table(opts, reps, &health); });
  tacos::benchmain::report_health("fig6", health);
  return harness.finish(rc);
}
