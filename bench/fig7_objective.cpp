/// Reproduces Fig. 7: minimum Eq. (5) objective value across interposer
/// sizes for (alpha, beta) in {(0,1), (1,0), (0.5,0.5)}, for the
/// representative benchmarks (E6).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::Harness harness(argc, argv);
  const auto& opts = harness.options();
  std::vector<std::string> reps;
  for (auto name : tacos::representative_benchmarks())
    reps.emplace_back(name);
  tacos::RunHealth health;
  const int rc = tacos::benchmain::run(
      "Fig. 7: objective value vs interposer size",
      [&] { return tacos::fig7_objective_table(opts, reps, &health); });
  tacos::benchmain::report_health("fig7", health);
  return harness.finish(rc);
}
