/// Extension experiment (paper §IV, final paragraph): multi-application
/// chiplet organization.  A fixed placement must serve a mix of
/// applications, each running at its own best (f, p).  Compares the
/// paper's three designer strategies — worst-case, average-case and
/// weighted-average — on a high/medium/low-power mix.
#include <sstream>

#include "bench_main.hpp"
#include "core/multiapp.hpp"

namespace {

tacos::TextTable multiapp_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  // Mix: mostly cholesky (frequent), some hpccg, occasional canneal.
  const std::vector<AppWeight> mix = {
      {"cholesky", 0.6}, {"hpccg", 0.3}, {"canneal", 0.1}};

  TextTable t({"strategy", "alpha/beta", "n", "spacing(s1 s2 s3)",
               "interposer_mm", "cost_norm", "per_app_ips_vs_2D"});
  struct Case {
    MultiAppStrategy strategy;
    const char* name;
    double alpha, beta;
  };
  const std::vector<Case> cases = {
      {MultiAppStrategy::kWeighted, "weighted", 1.0, 0.0},
      {MultiAppStrategy::kWeighted, "weighted", 0.5, 0.5},
      {MultiAppStrategy::kAverage, "average", 0.5, 0.5},
      {MultiAppStrategy::kWorstCase, "worst-case", 1.0, 0.0},
  };
  for (const Case& c : cases) {
    Evaluator eval(opts.eval_config());
    OptimizerOptions oo = opts.optimizer_options(c.alpha, c.beta);
    oo.step_mm = 2.0;  // placement enumeration granularity
    oo.starts = 4;
    const MultiAppResult r =
        optimize_multiapp(eval, mix, c.strategy, oo);
    std::ostringstream ab, sp, apps;
    ab << c.alpha << "/" << c.beta;
    if (r.found) {
      sp << "(" << r.spacing.s1 << " " << r.spacing.s2 << " "
         << r.spacing.s3 << ")";
      for (const auto& a : r.apps)
        apps << a.benchmark << "=" << TextTable::fmt(a.ips_vs_2d, 2) << " ";
    }
    t.add_row({c.name, ab.str(),
               r.found ? std::to_string(r.n_chiplets) : "-",
               r.found ? sp.str() : "none",
               r.found ? TextTable::fmt(r.interposer_mm, 1) : "-",
               r.found ? TextTable::fmt(r.cost_norm, 3) : "-",
               r.found ? apps.str() : "-"});
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: multi-application organization strategies",
      [&] { return multiapp_table(opts); });
}
