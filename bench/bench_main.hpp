#pragma once
/// \file bench_main.hpp
/// \brief Shared scaffolding for the experiment-reproduction binaries.
///
/// Every bench binary regenerates one table/figure from the paper and
/// prints (a) the aligned text table and (b) the same rows as CSV, so the
/// output can be redirected straight into a plotting script.  An optional
/// first argument overrides the thermal grid resolution (e.g.
/// `./fig5_spacing_sweep 64` for paper-resolution grids).
///
/// Durable runs: `--run-dir=DIR` journals every completed task so a killed
/// sweep can be restarted with `--resume` (journaled tasks replay instead
/// of recomputing — output is byte-identical to an uninterrupted run);
/// `--task-deadline=SECONDS` bounds each task's wall clock; SIGINT/SIGTERM
/// drain in-flight tasks, flush the journal, and exit with code 75
/// (resumable).  See docs/ROBUSTNESS.md.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/errors.hpp"
#include "core/experiments.hpp"
#include "obs/obs.hpp"

namespace tacos::benchmain {

/// The process's observability configuration: every entry path (Harness
/// or options_from_args) parses into this one instance, and run() /
/// report_health() / Harness::finish() publish from it.
inline obs::ObsOptions& obs_options() {
  static obs::ObsOptions o;
  return o;
}

/// Parse the optional grid-resolution argument plus the observability
/// flags (`--metrics[=FILE]`, `--trace[=FILE]`) and the steady-state
/// preconditioner override (`--precond={auto,jacobi,mg}`).
inline ExperimentOptions options_from_args(int argc, char** argv,
                                           ExperimentOptions defaults = {}) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs_options().parse_flag(arg)) continue;
    if (arg.rfind("--precond=", 0) == 0) {
      if (!parse_precond_name(arg.substr(10), &defaults.precond)) {
        std::cerr << "bad --precond value (want auto|jacobi|mg): " << arg
                  << '\n';
        std::exit(EXIT_FAILURE);
      }
      continue;
    }
    if (arg == "--refine") {
      defaults.refine = true;
      continue;
    }
    if (arg.rfind("--refine-tol-mm=", 0) == 0) {
      defaults.refine_tol_mm = std::stod(arg.substr(16));
      if (!(defaults.refine_tol_mm > 0.0)) {
        std::cerr << "bad --refine-tol-mm value (want > 0): " << arg << '\n';
        std::exit(EXIT_FAILURE);
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\nusage: " << argv[0]
                << " [grid] [--precond=auto|jacobi|mg]"
                   " [--refine] [--refine-tol-mm=T]"
                << obs::ObsOptions::usage() << '\n';
      std::exit(EXIT_FAILURE);
    }
    defaults.grid = static_cast<std::size_t>(std::stoul(arg));
  }
  obs_options().finalize();
  return defaults;
}

/// Print a runner's RunHealth next to its results (stderr, one line), so
/// redirected table output stays clean while recoveries/quarantines are
/// still visible on the console.  See docs/ROBUSTNESS.md.  The counters
/// also land in the metrics artifact (re-published so the final file
/// carries them).
inline void report_health(const std::string& title, const RunHealth& h) {
  std::cerr << "[" << title << "] " << h.summary() << '\n';
  obs::record_run_health(h);
  if (obs_options().any()) obs_options().publish();
}

/// Print an experiment table in both human and CSV form with timing.
template <typename Fn>
int run(const std::string& title, Fn&& make_table) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    // Root span: every other span nests under run.main, so per-phase
    // self-times in the metrics artifact sum to ~the root's total.
    static obs::SpanSite root_site("run.main", "run");
    const TextTable table = [&] {
      obs::TraceSpan root(root_site);
      return make_table();
    }();
    table.print(title);
    std::cout << "\n-- CSV --\n" << table.to_csv();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "\n[" << title << "] completed in " << table.row_count()
              << " rows, " << secs << " s\n";
    if (obs_options().any()) obs_options().publish();
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    if (obs_options().any()) obs_options().publish();
    return EXIT_FAILURE;
  }
}

/// Durable-run scaffolding for the experiment binaries: parses
/// `--run-dir=DIR`, `--resume`, `--task-deadline=SECONDS`, and the
/// optional positional grid override; installs the SIGINT/SIGTERM
/// handlers; and wires the write-ahead journal and the global cancel
/// token into `ExperimentOptions::run`.
class Harness {
 public:
  Harness(int argc, char** argv, ExperimentOptions defaults = {})
      : opts_(defaults) {
    std::string run_dir;
    bool resume = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--run-dir=", 0) == 0) {
        run_dir = arg.substr(10);
      } else if (arg == "--resume") {
        resume = true;
      } else if (arg.rfind("--task-deadline=", 0) == 0) {
        opts_.run.task_deadline_s = std::stod(arg.substr(16));
      } else if (arg.rfind("--precond=", 0) == 0) {
        if (!parse_precond_name(arg.substr(10), &opts_.precond)) {
          std::cerr << "bad --precond value (want auto|jacobi|mg): " << arg
                    << '\n';
          std::exit(EXIT_FAILURE);
        }
      } else if (arg == "--refine") {
        opts_.refine = true;
      } else if (arg.rfind("--refine-tol-mm=", 0) == 0) {
        opts_.refine_tol_mm = std::stod(arg.substr(16));
        if (!(opts_.refine_tol_mm > 0.0)) {
          std::cerr << "bad --refine-tol-mm value (want > 0): " << arg
                    << '\n';
          std::exit(EXIT_FAILURE);
        }
      } else if (obs_options().parse_flag(arg)) {
        // consumed by the observability layer
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown flag: " << arg << "\nusage: " << argv[0]
                  << " [grid] [--run-dir=DIR [--resume]]"
                     " [--task-deadline=SECONDS] [--precond=auto|jacobi|mg]"
                     " [--refine] [--refine-tol-mm=T]"
                  << obs::ObsOptions::usage() << '\n';
        std::exit(EXIT_FAILURE);
      } else {
        opts_.grid = static_cast<std::size_t>(std::stoul(arg));
      }
    }
    if (resume && run_dir.empty()) {
      std::cerr << "--resume requires --run-dir=DIR\n";
      std::exit(EXIT_FAILURE);
    }
    if (!run_dir.empty()) {
      journal_ = std::make_unique<RunJournal>(run_dir);
      const RunJournal::LoadStats st = journal_->load();
      if (st.dropped > 0)
        std::cerr << "[journal] dropped " << st.dropped
                  << " torn/corrupt record(s) from " << journal_->path()
                  << "; their tasks will be recomputed\n";
      if (journal_->size() > 0 && !resume) {
        std::cerr << "run directory " << run_dir
                  << " already holds a journal (" << journal_->task_count()
                  << " completed task(s)); pass --resume to continue it or "
                     "use a fresh --run-dir\n";
        std::exit(EXIT_FAILURE);
      }
      if (resume)
        std::cerr << "[journal] resuming: " << journal_->task_count()
                  << " task(s) already complete in " << run_dir << '\n';
      opts_.run.journal = journal_.get();
    }
    // Observability artifacts live next to the journal: a resumed run
    // preloads and extends the same record.
    obs_options().finalize(run_dir, resume);
    install_signal_handlers();
    opts_.run.cancel = &global_cancel_token();
  }

  ExperimentOptions& options() { return opts_; }
  const ExperimentOptions& options() const { return opts_; }

  /// Map the table status to the run outcome: an interrupted run exits
  /// with the distinct resumable code (75) after telling the operator how
  /// to pick the sweep back up.
  int finish(int rc) const {
    // Final publish: the artifacts on disk reflect everything recorded up
    // to exit, including an interrupted run's partial record (which the
    // resumed run preloads and extends).
    if (obs_options().any()) obs_options().publish();
    if (run_interrupted()) {
      std::cerr << "[run] interrupted";
      if (journal_)
        std::cerr << "; completed tasks are journaled — resume with "
                     "--run-dir=" << journal_->dir() << " --resume";
      std::cerr << '\n';
      return exit_code::kInterrupted;
    }
    return rc;
  }

 private:
  ExperimentOptions opts_;
  std::unique_ptr<RunJournal> journal_;
};

}  // namespace tacos::benchmain
