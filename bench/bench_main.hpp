#pragma once
/// \file bench_main.hpp
/// \brief Shared scaffolding for the experiment-reproduction binaries.
///
/// Every bench binary regenerates one table/figure from the paper and
/// prints (a) the aligned text table and (b) the same rows as CSV, so the
/// output can be redirected straight into a plotting script.  An optional
/// first argument overrides the thermal grid resolution (e.g.
/// `./fig5_spacing_sweep 64` for paper-resolution grids).

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.hpp"

namespace tacos::benchmain {

/// Parse the optional grid-resolution argument.
inline ExperimentOptions options_from_args(int argc, char** argv,
                                           ExperimentOptions defaults = {}) {
  if (argc > 1) defaults.grid = static_cast<std::size_t>(std::stoul(argv[1]));
  return defaults;
}

/// Print a runner's RunHealth next to its results (stderr, one line), so
/// redirected table output stays clean while recoveries/quarantines are
/// still visible on the console.  See docs/ROBUSTNESS.md.
inline void report_health(const std::string& title, const RunHealth& h) {
  std::cerr << "[" << title << "] " << h.summary() << '\n';
}

/// Print an experiment table in both human and CSV form with timing.
template <typename Fn>
int run(const std::string& title, Fn&& make_table) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const TextTable table = make_table();
    table.print(title);
    std::cout << "\n-- CSV --\n" << table.to_csv();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "\n[" << title << "] completed in " << table.row_count()
              << " rows, " << secs << " s\n";
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
}

}  // namespace tacos::benchmain
