/// Reproduces Fig. 3(a): manufacturing cost of 2.5D systems vs interposer
/// size, normalized to the 18mm x 18mm single chip, for defect densities
/// 0.20 / 0.25 / 0.30 per cm^2 and 4 / 16 chiplets (E1 in DESIGN.md).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::options_from_args(argc, argv);  // obs flags only
  return tacos::benchmain::run("Fig. 3(a): 2.5D cost vs interposer size",
                               [] { return tacos::fig3a_cost_table(1.0); });
}
