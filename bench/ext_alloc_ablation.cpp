/// Extension experiment (design-choice ablation): the paper adopts the
/// MinTemp workload-allocation policy [20] without comparison.  This
/// bench re-runs the 2D baseline search and the iso-cost maximum-IPS
/// optimization under each allocation policy.  MinTemp's outward
/// chessboard spreading raises the 2D baseline (absolute IPS) the most;
/// once the 2.5D optimizer activates all 256 cores the policies converge
/// (every core is on), which is itself an interesting null result.
#include <sstream>

#include "bench_main.hpp"

namespace {

tacos::TextTable ablation_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  TextTable t({"benchmark", "policy", "2D_best", "2D_ips", "25D_ips",
               "25D_org"});
  for (const auto* bench_name : {"cholesky", "hpccg"}) {
    const BenchmarkProfile& bench = benchmark_by_name(bench_name);
    for (AllocPolicy policy :
         {AllocPolicy::kMinTemp, AllocPolicy::kCheckerboard,
          AllocPolicy::kRowMajor, AllocPolicy::kCenterFirst}) {
      EvalConfig cfg = opts.eval_config();
      cfg.policy = policy;
      Evaluator eval(cfg);
      const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
      OptimizerOptions oo = opts.optimizer_options(1.0, 0.0);
      Rng rng(opts.seed);
      // Iso-cost 16-chiplet interposer is ~42mm (cost crosses 1.0 there).
      const MaxIpsResult r =
          max_ips_at_interposer(eval, bench, 16, 42.0, oo, rng);
      std::ostringstream b2d;
      if (base.feasible)
        b2d << kDvfsLevels[base.dvfs_idx].freq_mhz << "MHz p="
            << base.active_cores;
      else
        b2d << "infeasible";
      std::ostringstream org;
      if (r.found)
        org << level_of(r.org).freq_mhz << "MHz p=" << r.org.active_cores;
      t.add_row({std::string(bench.name),
                 std::string(alloc_policy_name(policy)), b2d.str(),
                 base.feasible ? TextTable::fmt(base.ips, 0) : "n/a",
                 r.found ? TextTable::fmt(r.ips, 0) : "n/a",
                 r.found ? org.str() : "none"});
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: allocation-policy ablation (iso-cost max IPS)",
      [&] { return ablation_table(opts); });
}
