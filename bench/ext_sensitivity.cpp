/// Extension experiment (robustness ablation): the thermal calibration's
/// single free parameter is the convective heat-transfer coefficient h
/// (DESIGN.md).  This bench re-runs the iso-cost improvement study for
/// the representative benchmarks at h ± ~30% and with the leakage slope
/// halved/doubled — the paper's qualitative conclusions (large gains for
/// high-power benchmarks, saturation-limited gains for low-power ones)
/// must not hinge on the calibration point.
#include <sstream>

#include "bench_main.hpp"

namespace {

tacos::TextTable sensitivity_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  TextTable t({"variant", "benchmark", "2D_best", "improvement_pct"});

  struct Variant {
    std::string name;
    double h;
    double lambda;
  };
  const std::vector<Variant> variants = {
      {"baseline (h=2800, l=0.012)", 2800.0, 0.012},
      {"weak cooling (h=2000)", 2000.0, 0.012},
      {"strong cooling (h=3600)", 3600.0, 0.012},
      {"low leakage slope (l=0.006)", 2800.0, 0.006},
      {"high leakage slope (l=0.024)", 2800.0, 0.024},
  };
  for (const Variant& v : variants) {
    EvalConfig cfg = opts.eval_config();
    cfg.thermal.package.h_convection = v.h;
    cfg.power.lambda_per_k = v.lambda;
    Evaluator eval(cfg);
    for (auto name : representative_benchmarks()) {
      const BenchmarkProfile& bench = benchmark_by_name(name);
      const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
      OptimizerOptions oo = opts.optimizer_options(1.0, 0.0);
      Rng rng(opts.seed);
      // Iso-cost 16-chiplet interposer (~42 mm, h-independent).
      const MaxIpsResult r =
          max_ips_at_interposer(eval, bench, 16, 42.0, oo, rng);
      std::ostringstream b2d;
      if (base.feasible)
        b2d << kDvfsLevels[base.dvfs_idx].freq_mhz << "MHz p="
            << base.active_cores;
      else
        b2d << "infeasible";
      t.add_row({v.name, std::string(bench.name), b2d.str(),
                 r.found && base.feasible
                     ? TextTable::fmt((r.ips / base.ips - 1.0) * 100.0, 1)
                     : "n/a"});
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: calibration sensitivity of the iso-cost improvement",
      [&] { return sensitivity_table(opts); });
}
