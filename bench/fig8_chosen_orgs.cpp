/// Reproduces Fig. 8: the chiplet organization chosen for each benchmark
/// at (alpha, beta) = (1, 0) under 85C — 2D baseline operating point vs
/// the optimized 2.5D organization, improvement and cost (E7).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::Harness harness(argc, argv);
  const auto& opts = harness.options();
  tacos::RunHealth health;
  const int rc = tacos::benchmain::run(
      "Fig. 8: chosen chiplet organizations (alpha=1, beta=0)",
      [&] { return tacos::fig8_chosen_orgs_table(opts, &health); });
  tacos::benchmain::report_health("fig8", health);
  return harness.finish(rc);
}
