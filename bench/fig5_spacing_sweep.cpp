/// Reproduces Fig. 5: peak temperature vs uniform chiplet spacing for all
/// eight benchmarks with every core active at 1 GHz, for 4/16/64/256
/// chiplets; 0 mm is the single-chip baseline (E4).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::Harness harness(argc, argv);
  const auto& opts = harness.options();
  tacos::RunHealth health;
  const int rc = tacos::benchmain::run(
      "Fig. 5: peak temperature vs chiplet spacing",
      [&] { return tacos::fig5_spacing_table(opts, &health); });
  tacos::benchmain::report_health("fig5", health);
  return harness.finish(rc);
}
