/// Reproduces the in-text cost-model claims of §III-B/C (E3 in DESIGN.md):
/// the 27x single-chip cost blow-up, the 27%-cheaper 4-chiplet system, the
/// 30% interposer share, and the 30-42% / 36% minimal-interposer savings.
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::options_from_args(argc, argv);  // obs flags only
  return tacos::benchmain::run("In-text cost claims (paper vs model)",
                               [] { return tacos::cost_claims_table(); });
}
