/// Reproduces Fig. 3(b): peak temperature of 2.5D systems vs interposer
/// size for chiplet counts 2x2..10x10 and synthetic power densities
/// 0.5..2.0 W/mm^2, plus the "new 2D single chip" reference (E2).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::Harness harness(argc, argv);
  const auto& opts = harness.options();
  tacos::RunHealth health;
  const int rc = tacos::benchmain::run(
      "Fig. 3(b): peak temperature design-space exploration",
      [&] { return tacos::fig3b_thermal_table(opts, &health); });
  tacos::benchmain::report_health("fig3b", health);
  return harness.finish(rc);
}
