/// Reproduces the headline results (§V-B and the conclusion, E8): per-
/// benchmark performance improvement at iso-cost for thresholds 75/85/95/
/// 105 C (paper averages: 41/41/27/16 %), and the iso-performance cost
/// reduction (paper: 36 %).
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::benchmain::Harness harness(argc, argv);
  const auto& opts = harness.options();
  tacos::RunHealth h_impr, h_iso;
  int rc = tacos::benchmain::run(
      "Improvement at iso-cost across temperature thresholds",
      [&] { return tacos::improvement_summary_table(opts, &h_impr); });
  tacos::benchmain::report_health("improvement-summary", h_impr);
  rc |= tacos::benchmain::run(
      "Iso-performance minimum-cost organizations (85C)",
      [&] { return tacos::iso_performance_cost_table(opts, &h_iso); });
  tacos::benchmain::report_health("iso-performance", h_iso);
  return harness.finish(rc);
}
