/// Extension experiment: phase-resolved transient analysis.  The paper
/// sizes organizations against the worst-case steady state; real
/// workloads alternate compute and stall phases (Sniper's 1 ms stats,
/// §IV).  For each benchmark this bench runs a 30 s synthetic phase trace
/// on the Fig. 8 iso-cost organization and reports the transient peak vs
/// the steady-state peak — the steady-state methodology is conservative,
/// and the margin is the headroom a phase-aware controller could exploit.
#include "bench_main.hpp"
#include "core/leakage.hpp"
#include "core/trace_sim.hpp"
#include "materials/stack.hpp"

namespace {

tacos::TextTable trace_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  const SystemSpec spec;
  const PowerModelParams pm;
  std::vector<int> all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = i;

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = opts.grid;
  const ChipletLayout layout = make_uniform_layout(4, 6.0, spec);  // 16c, 40mm

  TextTable t({"benchmark", "mean_activity", "steady_peak_c",
               "trace_max_peak_c", "trace_mean_peak_c", "headroom_c",
               "time_above_85c_s"});
  for (const BenchmarkProfile& bench : benchmarks()) {
    ThermalModel model(layout, make_25d_stack(), cfg);
    const LeakageResult steady = run_leakage_fixed_point(
        model, layout, bench, kDvfsLevels[0], all, pm);
    // Start the trace from the mean-activity steady state... approximated
    // by resetting to ambient and letting a warm-up prefix settle.
    model.reset_to_ambient();
    const auto warmup = synthetic_trace(bench, 20.0, 0.25, opts.seed + 1);
    simulate_trace(model, layout, bench, kDvfsLevels[0], all, pm, warmup);
    const auto trace = synthetic_trace(bench, 30.0, 0.25, opts.seed);
    const TraceStats st = simulate_trace(model, layout, bench,
                                         kDvfsLevels[0], all, pm, trace);
    t.add_row({std::string(bench.name),
               TextTable::fmt(mean_activity(trace), 3),
               TextTable::fmt(steady.peak_c, 1),
               TextTable::fmt(st.max_peak_c, 1),
               TextTable::fmt(st.mean_peak_c, 1),
               TextTable::fmt(steady.peak_c - st.max_peak_c, 1),
               TextTable::fmt(st.time_above_threshold_s, 2)});
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: phase-trace transient vs steady-state sizing",
      [&] { return trace_table(opts); });
}
