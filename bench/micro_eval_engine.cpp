/// Micro-harness for the parallel evaluation engine (machine-readable).
///
/// Measures, at 1 / 2 / N pool threads:
///   * steady-state solver throughput (solves/sec, warm-started, on a
///     16-chiplet layout large enough to engage the parallel SpMV path);
///   * end-to-end multi-benchmark optimizer wall time (one optimize_greedy
///     per benchmark via optimize_greedy_batch, per-task Evaluator shards);
/// and verifies both are bit-identical across thread counts (the
/// deterministic-reduction contract of solvers.cpp).  A fidelity-ladder
/// A/B then reruns the paper's full greedy sweep (default 0.5 mm step)
/// in kFull and kLadder modes, asserting identical winners, counting the
/// full-resolution solves avoided, and checking the ladder is itself
/// bit-identical at every thread count.  A refinement A/B reruns the
/// default sweep with `--refine`, recording the adjoint-stage cost (extra
/// solves, wall) against the peak-temperature headroom it reclaims, and
/// asserting a refined winner is never worse than its grid winner.
///
/// Emits BENCH_eval_engine.json so the perf trajectory is tracked from
/// PR to PR.  Usage:
///
///   micro_eval_engine [out.json] [e2e_grid] [solver_grid]
///                     [--metrics[=FILE]] [--trace[=FILE]]
///
/// Defaults: BENCH_eval_engine.json, 24, 48.  Thread counts beyond the
/// machine's cores still run (the pool timeshares); speedups are whatever
/// the hardware gives — the JSON records hardware_concurrency so a reader
/// can judge.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/cancel.hpp"
#include "common/errors.hpp"
#include "common/thread_pool.hpp"
#include "core/optimizer.hpp"
#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "obs/merge.hpp"
#include "obs/obs.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "thermal/grid_model.hpp"

namespace {

using namespace tacos;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Exact (round-trippable) rendering, for fingerprints.
std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

PowerMap uniform_power(const ChipletLayout& l, double total_w) {
  PowerMap p;
  for (const auto& c : l.chiplets()) p.add(c.rect, total_w / l.chiplet_count());
  return p;
}

struct SolverRun {
  double solves_per_sec = 0.0;
  std::string fingerprint;  // exact tile temperatures of the last solve
};

/// Warm-started solves alternating between two power levels.
SolverRun run_solver_micro(std::size_t grid, int n_solves) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = grid;
  ThermalModel model(l, make_25d_stack(), cfg);
  model.solve(uniform_power(l, 300.0));  // warm-up (excluded from timing)
  const auto t0 = Clock::now();
  for (int i = 0; i < n_solves; ++i)
    model.solve(uniform_power(l, i % 2 == 0 ? 303.0 : 300.0));
  const double dt = seconds_since(t0);
  SolverRun out;
  out.solves_per_sec = n_solves / dt;
  std::ostringstream fp;
  for (double t : model.tile_temperatures()) fp << fmt_exact(t) << ";";
  out.fingerprint = fp.str();
  return out;
}

struct E2eRun {
  double wall_s = 0.0;
  EvalStats stats;
  std::string fingerprint;  // chosen orgs + objectives, all benchmarks
};

E2eRun run_e2e(std::size_t grid, const std::vector<std::string>& names,
               FidelityMode mode = FidelityMode::kFull, double step_mm = 2.0) {
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = grid;
  cfg.ladder.mode = mode;
  OptimizerOptions oo;
  oo.step_mm = step_mm;
  E2eRun out;
  const auto t0 = Clock::now();
  const std::vector<OptResult> results =
      optimize_greedy_batch(cfg, names, oo, &out.stats);
  out.wall_s = seconds_since(t0);
  std::ostringstream fp;
  for (const OptResult& r : results) {
    fp << r.found << "|" << r.org.n_chiplets << "|"
       << fmt_exact(r.org.spacing.s1) << "|" << fmt_exact(r.org.spacing.s2)
       << "|" << fmt_exact(r.org.spacing.s3) << "|" << r.org.dvfs_idx << "|"
       << r.org.active_cores << "|" << fmt_exact(r.objective) << "\n";
  }
  out.fingerprint = fp.str();
  return out;
}

/// Preconditioner A/B at the paper's full 64x64 resolution: one cold
/// solve of the 16-chiplet layout per preconditioner.  Demonstrates the
/// multigrid iteration-count win (the acceptance target is >= 3x) and
/// that both preconditioners land on the same temperatures.
struct PrecondAB {
  std::size_t grid = 64;
  std::size_t jacobi_iters = 0;
  std::size_t mg_iters = 0;
  std::size_t mg_levels = 0;
  double iters_ratio = 0.0;
  double max_tile_diff_c = 0.0;
  bool temps_match = false;
};

PrecondAB run_precond_ab(std::size_t grid) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const LayerStack stack = make_25d_stack();
  const PowerMap p = uniform_power(l, 300.0);
  PrecondAB out;
  out.grid = grid;
  std::vector<double> temps[2];
  for (int k = 0; k < 2; ++k) {
    ThermalConfig cfg;
    cfg.grid_nx = cfg.grid_ny = grid;
    cfg.solve.precond = k == 0 ? PrecondKind::kJacobi : PrecondKind::kMultigrid;
    ThermalModel model(l, stack, cfg);  // fresh -> cold start
    const SolveResult sr = model.solve(p).solve_info;
    temps[k] = model.tile_temperatures();
    if (k == 0) {
      out.jacobi_iters = sr.iterations;
    } else {
      out.mg_iters = sr.iterations;
      out.mg_levels = model.multigrid() ? model.multigrid()->level_count() : 0;
    }
  }
  for (std::size_t i = 0; i < temps[0].size(); ++i)
    out.max_tile_diff_c =
        std::max(out.max_tile_diff_c, std::abs(temps[0][i] - temps[1][i]));
  out.iters_ratio = static_cast<double>(out.jacobi_iters) /
                    static_cast<double>(std::max<std::size_t>(1, out.mg_iters));
  out.temps_match = out.max_tile_diff_c < 1e-4;
  return out;
}

/// Fidelity-ladder A/B on the paper's greedy sweep (all benchmarks, the
/// default 0.5 mm placement step).  The full-mode reference runs once at
/// one thread; the ladder runs at every thread count so the block also
/// certifies the ladder's cross-thread bit-identity.  The headline claims
/// — identical winners, >= 60% fewer full-resolution solves, >= 2x
/// end-to-end — are serial-work claims, so both sides of the speedup are
/// the 1-thread walls.
struct LadderAB {
  double full_wall_s = 0.0;
  double ladder_wall_s = 0.0;  // at 1 thread
  EvalStats full_stats;
  EvalStats ladder_stats;
  double solve_reduction = 0.0;
  double speedup = 0.0;
  bool winner_match = false;
  bool bit_identical = false;
};

LadderAB run_ladder_ab(std::size_t grid, const std::vector<std::string>& names,
                       const std::vector<std::size_t>& counts,
                       RunHealth* health) {
  constexpr double kPaperStep = 0.5;
  LadderAB out;
  ThreadPool::set_global_threads(1);
  std::cerr << "[micro_eval_engine] ladder A/B: full reference (step "
            << kPaperStep << ")...\n";
  const E2eRun full =
      run_e2e(grid, names, FidelityMode::kFull, kPaperStep);
  out.full_wall_s = full.wall_s;
  out.full_stats = full.stats;
  *health += full.stats.health;

  out.bit_identical = true;
  std::string fp0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ThreadPool::set_global_threads(counts[i]);
    std::cerr << "[micro_eval_engine] ladder A/B: ladder, threads="
              << counts[i] << "...\n";
    const E2eRun lad =
        run_e2e(grid, names, FidelityMode::kLadder, kPaperStep);
    *health += lad.stats.health;
    if (i == 0) {
      fp0 = lad.fingerprint;
      out.ladder_wall_s = lad.wall_s;
      out.ladder_stats = lad.stats;
      out.winner_match = lad.fingerprint == full.fingerprint;
    } else {
      out.bit_identical = out.bit_identical && lad.fingerprint == fp0;
    }
  }
  out.solve_reduction =
      1.0 - static_cast<double>(out.ladder_stats.solves) /
                static_cast<double>(std::max<std::size_t>(1, full.stats.solves));
  out.speedup = out.full_wall_s / std::max(1e-9, out.ladder_wall_s);
  return out;
}

/// Refinement A/B: the grid-only sweep vs the same sweep with the
/// adjoint-gradient continuous refinement stage (`--refine`).  Three
/// numbers matter: what the stage costs (extra solves — one adjoint per
/// gradient plus one forward verification per line-search trial — and
/// wall time), what it buys (peak-temperature reduction of the refined
/// winners, °C below the grid winner at the *same* frozen combination),
/// and the invariant that it can never make a winner worse.
struct RefineAB {
  double grid_wall_s = 0.0;
  double refine_wall_s = 0.0;
  EvalStats grid_stats;
  EvalStats refine_stats;
  std::size_t found = 0;
  std::size_t refined = 0;       ///< winners that moved off-grid
  double max_peak_drop_c = 0.0;  ///< largest grid-vs-refined peak gap
  double sum_peak_drop_c = 0.0;
  double extra_solve_frac = 0.0;  ///< (refine solves − grid solves)/grid
  bool never_worse = true;        ///< refined peak ≤ grid peak, always
};

RefineAB run_refine_ab(std::size_t grid, const std::vector<std::string>& names,
                       RunHealth* health) {
  ThreadPool::set_global_threads(1);  // serial-work claim, 1-thread walls
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = grid;
  OptimizerOptions oo;
  oo.step_mm = 2.0;
  RefineAB out;
  std::cerr << "[micro_eval_engine] refine A/B: grid reference...\n";
  auto t0 = Clock::now();
  const std::vector<OptResult> g =
      optimize_greedy_batch(cfg, names, oo, &out.grid_stats);
  out.grid_wall_s = seconds_since(t0);
  *health += out.grid_stats.health;

  std::cerr << "[micro_eval_engine] refine A/B: refined sweep...\n";
  oo.refine = true;
  t0 = Clock::now();
  const std::vector<OptResult> r =
      optimize_greedy_batch(cfg, names, oo, &out.refine_stats);
  out.refine_wall_s = seconds_since(t0);
  *health += out.refine_stats.health;

  for (std::size_t i = 0; i < r.size(); ++i) {
    if (!r[i].found) continue;
    ++out.found;
    // Refinement rides after the grid search, so the pre-refinement
    // winner must be exactly the grid-only sweep's.
    out.never_worse =
        out.never_worse && g[i].found &&
        r[i].org.n_chiplets == g[i].org.n_chiplets &&
        r[i].org.dvfs_idx == g[i].org.dvfs_idx &&
        r[i].org.active_cores == g[i].org.active_cores;
    if (!r[i].refined) {
      out.never_worse = out.never_worse && r[i].peak_c == g[i].peak_c;
      continue;
    }
    ++out.refined;
    const double drop = r[i].peak_grid_c - r[i].peak_c;
    out.never_worse = out.never_worse && drop > 0.0 &&
                      r[i].peak_grid_c == g[i].peak_c;
    out.max_peak_drop_c = std::max(out.max_peak_drop_c, drop);
    out.sum_peak_drop_c += drop;
  }
  out.extra_solve_frac =
      static_cast<double>(out.refine_stats.solves) /
          static_cast<double>(std::max<std::size_t>(1, out.grid_stats.solves)) -
      1.0;
  return out;
}

/// Evaluation-service round-trip costs: an in-process server on a Unix
/// socket, one real client.  Three numbers matter for sizing a remote
/// sweep: the pure transport/framing overhead (ping round-trips/sec),
/// the cold optimize RPC (compute dominates; its payload must be
/// byte-identical to the local journal line), and the warm memo-hit RPC
/// (the steady state of a long-lived server — cache lookup + framing).
struct ServiceBench {
  double ping_rps = 0.0;
  double cold_ms = 0.0;
  double warm_rps = 0.0;
  double stats_rps = 0.0;  ///< `stats` scrape round-trips/sec
  bool payload_matches_local = false;
  bool warm_all_memo_hits = false;
  bool stats_ok = false;  ///< scrape payload carried the expected series
  ServerStats stats;      ///< the server's drain statistics
};

ServiceBench run_service_bench(std::size_t grid) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "tacos_bench_svc").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  ServerOptions so;
  so.endpoint = parse_endpoint(dir + "/svc.sock");
  so.memo_dir = dir;
  so.threads = 2;
  so.queue_capacity = 16;
  CancelToken stop;
  ServerStats stats;
  std::thread server([&] { stats = serve_forever(so, &stop); });
  for (int i = 0; i < 500; ++i) {
    try {
      if (connect_endpoint(so.endpoint, 200).ok()) break;
    } catch (const ServiceError&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = grid;
  OptimizerOptions oo;
  oo.step_mm = 4.0;
  oo.starts = 3;
  const std::string bench = "cholesky";
  const TaskOutcome local = optimize_one_guarded(cfg, bench, oo, nullptr);
  const std::string oracle = encode_opt_result(local.result, local.stats);

  ClientOptions co;
  co.endpoint = so.endpoint;
  EvalClient client(co);
  ServiceBench out;

  constexpr int kPings = 200;
  for (int i = 0; i < 5; ++i) client.ping();  // warm-up
  auto t0 = Clock::now();
  for (int i = 0; i < kPings; ++i) client.ping();
  out.ping_rps = kPings / seconds_since(t0);

  t0 = Clock::now();
  bool memo_hit = false;
  const std::string cold = client.optimize(cfg, oo, bench, 0.0, &memo_hit);
  out.cold_ms = seconds_since(t0) * 1e3;
  out.payload_matches_local = !memo_hit && cold == oracle;

  constexpr int kWarm = 100;
  out.warm_all_memo_hits = true;
  t0 = Clock::now();
  for (int i = 0; i < kWarm; ++i) {
    const std::string warm = client.optimize(cfg, oo, bench, 0.0, &memo_hit);
    out.warm_all_memo_hits =
        out.warm_all_memo_hits && memo_hit && warm == oracle;
  }
  out.warm_rps = kWarm / seconds_since(t0);

  // The live metrics scrape (`stats` verb): cost of one observability
  // poll against a busy server, plus a sanity check that the payload
  // carries the per-request quantile histograms.
  constexpr int kStats = 50;
  out.stats_ok = true;
  t0 = Clock::now();
  for (int i = 0; i < kStats; ++i) {
    const std::optional<std::string> scrape = client.stats();
    out.stats_ok = out.stats_ok && scrape.has_value() &&
                   scrape->find("hist latency_ms") != std::string::npos &&
                   scrape->find("requests") != std::string::npos;
  }
  out.stats_rps = kStats / seconds_since(t0);

  stop.cancel();
  server.join();
  out.stats = stats;
  fs::remove_all(dir);
  return out;
}

/// Cross-process trace aggregation cost: synthetic worker shards in the
/// exporters' exact format (a supervisor + 8 workers, a few thousand
/// events each), merged with the same `obs::merge` path `tacos_cli
/// trace-merge` uses.  Reported as events merged per second, plus a
/// determinism check (two merges must agree byte for byte).
struct TelemetryBench {
  std::size_t shards = 0;
  std::size_t events = 0;
  double merge_ms = 0.0;
  double events_per_sec = 0.0;
  bool deterministic = false;
};

TelemetryBench run_telemetry_bench() {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "tacos_bench_trace_merge").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  constexpr int kWorkers = 8;
  constexpr int kEventsPerShard = 2000;
  const auto write_shard = [&](const std::string& file,
                               std::uint64_t epoch_ms) {
    std::ofstream os(dir + "/" + file, std::ios::binary);
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":0,"
       << "\"epochMs\":" << epoch_ms << "},\n\"traceEvents\":[\n";
    for (int i = 0; i < kEventsPerShard; ++i) {
      os << "{\"name\":\"thermal.solve\",\"cat\":\"thermal\",\"ph\":\"X\","
         << "\"ts\":" << i * 50 << ",\"dur\":40,\"pid\":0,\"tid\":"
         << i % 4 << ",\"args\":{}}" << (i + 1 < kEventsPerShard ? ",\n" : "\n");
    }
    os << "]}\n";
  };
  write_shard("trace.json", 1000);
  for (int k = 0; k < kWorkers; ++k)
    write_shard("trace-w" + std::to_string(k) + ".json", 1000 + k);

  TelemetryBench out;
  obs::merge_trace_shards(dir);  // warm-up (excluded from timing)
  const auto t0 = Clock::now();
  const obs::TraceMergeResult a = obs::merge_trace_shards(dir);
  out.merge_ms = seconds_since(t0) * 1e3;
  const obs::TraceMergeResult b = obs::merge_trace_shards(dir);
  out.shards = a.shards.size();
  out.events = a.events;
  out.events_per_sec = a.events / std::max(1e-9, out.merge_ms / 1e3);
  out.deterministic = a.json == b.json;
  fs::remove_all(dir);
  return out;
}

std::string json_map(const std::vector<std::size_t>& keys,
                     const std::vector<double>& vals) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < keys.size(); ++i)
    os << (i ? ", " : "") << "\"" << keys[i] << "\": " << fmt(vals[i]);
  os << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  obs::ObsOptions obs_opts;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs_opts.parse_flag(arg)) continue;
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\nusage: " << argv[0]
                << " [out.json] [e2e_grid] [solver_grid]"
                << obs::ObsOptions::usage() << "\n";
      return 1;
    }
    pos.push_back(arg);
  }
  obs_opts.finalize();
  const std::string out_path =
      !pos.empty() ? pos[0] : "BENCH_eval_engine.json";
  const std::size_t e2e_grid =
      pos.size() > 1 ? static_cast<std::size_t>(std::stoul(pos[1])) : 24;
  const std::size_t solver_grid =
      pos.size() > 2 ? static_cast<std::size_t>(std::stoul(pos[2])) : 48;

  const std::size_t hw = ThreadPool::default_thread_count();
  // Always measure 1 and 2; top out at the machine (or TACOS_THREADS),
  // but no lower than 4 so the headline "N threads" column exists even
  // when the harness is smoke-tested on a small box.
  std::vector<std::size_t> counts = {1, 2, std::max<std::size_t>(4, hw)};

  std::vector<std::string> names;
  for (const auto& b : benchmarks()) names.emplace_back(b.name);

  std::vector<double> solver_rates, e2e_walls;
  std::vector<std::size_t> e2e_solves;
  bool solver_identical = true, e2e_identical = true;
  std::string solver_fp0, e2e_fp0;
  RunHealth health;  // merged across every e2e run (all thread counts)

  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::size_t n = counts[i];
    ThreadPool::set_global_threads(n);
    std::cerr << "[micro_eval_engine] threads=" << n << " solver micro...\n";
    const SolverRun s = run_solver_micro(solver_grid, 40);
    solver_rates.push_back(s.solves_per_sec);
    if (i == 0)
      solver_fp0 = s.fingerprint;
    else
      solver_identical = solver_identical && s.fingerprint == solver_fp0;

    std::cerr << "[micro_eval_engine] threads=" << n << " e2e optimizer...\n";
    const E2eRun e = run_e2e(e2e_grid, names);
    e2e_walls.push_back(e.wall_s);
    e2e_solves.push_back(e.stats.solves);
    health += e.stats.health;
    if (i == 0)
      e2e_fp0 = e.fingerprint;
    else
      e2e_identical = e2e_identical && e.fingerprint == e2e_fp0;
  }
  ThreadPool::set_global_threads(hw);

  std::cerr << "[micro_eval_engine] preconditioner A/B (grid 64)...\n";
  const PrecondAB ab = run_precond_ab(64);

  const LadderAB lab = run_ladder_ab(e2e_grid, names, counts, &health);
  ThreadPool::set_global_threads(hw);

  const RefineAB rab = run_refine_ab(e2e_grid, names, &health);
  ThreadPool::set_global_threads(hw);

  std::cerr << "[micro_eval_engine] evaluation-service round-trips...\n";
  const ServiceBench svc = run_service_bench(e2e_grid);

  std::cerr << "[micro_eval_engine] trace-merge on synthetic shards...\n";
  const TelemetryBench tel = run_telemetry_bench();

  const double speedup = e2e_walls.front() / e2e_walls.back();
  const double solver_speedup = solver_rates.back() / solver_rates.front();

  // The health block carries the per-subsystem request counters too:
  // `service.*` from the in-process server's drain stats and `fabric.*`
  // mirrors of the sweep-fabric fields, prefixed like the live metrics
  // registry names so the trajectory tooling can join them.
  std::string health_json = health.to_json();
  {
    std::ostringstream extra;
    extra << ", \"service.requests\": " << svc.stats.requests
          << ", \"service.served_ok\": " << svc.stats.served_ok
          << ", \"service.memo_hits\": " << svc.stats.memo_hits
          << ", \"service.shed\": " << svc.stats.shed
          << ", \"service.deadline_expired\": " << svc.stats.deadline_expired
          << ", \"service.eval_errors\": " << svc.stats.eval_errors
          << ", \"service.protocol_errors\": " << svc.stats.protocol_errors
          << ", \"fabric.leases_reclaimed\": " << health.leases_reclaimed
          << ", \"fabric.worker_restarts\": " << health.worker_restarts
          << ", \"fabric.poison_tasks\": " << health.poison_tasks;
    health_json.insert(health_json.size() - 1, extra.str());
  }

  // Atomic publish: a crash mid-write must not leave a truncated JSON
  // that the perf-trajectory tooling would read as a (bogus) regression.
  AtomicFile out_file(out_path);
  std::ostream& os = out_file.stream();
  os << "{\n"
     << "  \"harness\": \"micro_eval_engine\",\n"
     << "  \"hardware_concurrency\": " << hw << ",\n"
     << "  \"thread_counts\": [";
  for (std::size_t i = 0; i < counts.size(); ++i)
    os << (i ? ", " : "") << counts[i];
  os << "],\n"
     << "  \"solver\": {\n"
     << "    \"grid\": " << solver_grid << ",\n"
     << "    \"solves_per_sec\": " << json_map(counts, solver_rates) << ",\n"
     << "    \"speedup_max_vs_1\": " << fmt(solver_speedup) << ",\n"
     << "    \"bit_identical\": " << (solver_identical ? "true" : "false")
     << "\n  },\n"
     << "  \"optimizer_e2e\": {\n"
     << "    \"grid\": " << e2e_grid << ",\n"
     << "    \"benchmarks\": " << names.size() << ",\n"
     << "    \"thermal_solves\": " << e2e_solves.front() << ",\n"
     << "    \"wall_s\": " << json_map(counts, e2e_walls) << ",\n"
     << "    \"speedup_max_vs_1\": " << fmt(speedup) << ",\n"
     << "    \"bit_identical\": " << (e2e_identical ? "true" : "false")
     << "\n  },\n"
     << "  \"preconditioner\": {\n"
     << "    \"grid\": " << ab.grid << ",\n"
     << "    \"jacobi_iters\": " << ab.jacobi_iters << ",\n"
     << "    \"mg_iters\": " << ab.mg_iters << ",\n"
     << "    \"iters_ratio\": " << fmt(ab.iters_ratio) << ",\n"
     << "    \"mg_levels\": " << ab.mg_levels << ",\n"
     << "    \"max_tile_diff_c\": " << fmt(ab.max_tile_diff_c) << ",\n"
     << "    \"temps_match\": " << (ab.temps_match ? "true" : "false")
     << "\n  },\n"
     << "  \"fidelity_ladder\": {\n"
     << "    \"grid\": " << e2e_grid << ",\n"
     << "    \"step_mm\": 0.5,\n"
     << "    \"full\": {\"wall_s\": " << fmt(lab.full_wall_s)
     << ", \"solves\": " << lab.full_stats.solves
     << ", \"evals\": " << lab.full_stats.evals << "},\n"
     << "    \"ladder\": {\"wall_s\": " << fmt(lab.ladder_wall_s)
     << ", \"solves\": " << lab.ladder_stats.solves
     << ", \"evals\": " << lab.ladder_stats.evals << "},\n"
     << "    \"screened\": " << lab.ladder_stats.ladder.screened << ",\n"
     << "    \"rejected\": " << lab.ladder_stats.ladder.rejected << ",\n"
     << "    \"promoted\": " << lab.ladder_stats.ladder.promoted << ",\n"
     << "    \"audits\": " << lab.ladder_stats.ladder.audits << ",\n"
     << "    \"surrogate_fits\": " << lab.ladder_stats.ladder.surrogate_fits
     << ",\n"
     << "    \"surrogate_scores\": "
     << lab.ladder_stats.ladder.surrogate_scores << ",\n"
     << "    \"coarse_solves\": " << lab.ladder_stats.ladder.coarse_solves
     << ",\n"
     << "    \"medium_solves\": " << lab.ladder_stats.ladder.medium_solves
     << ",\n"
     << "    \"full_solve_reduction\": " << fmt(lab.solve_reduction) << ",\n"
     << "    \"e2e_speedup_vs_full\": " << fmt(lab.speedup) << ",\n"
     << "    \"winner_match\": " << (lab.winner_match ? "true" : "false")
     << ",\n"
     << "    \"bit_identical_across_threads\": "
     << (lab.bit_identical ? "true" : "false") << "\n  },\n"
     << "  \"refine\": {\n"
     << "    \"grid\": " << e2e_grid << ",\n"
     << "    \"step_mm\": 2,\n"
     << "    \"grid_only\": {\"wall_s\": " << fmt(rab.grid_wall_s)
     << ", \"solves\": " << rab.grid_stats.solves << "},\n"
     << "    \"refined\": {\"wall_s\": " << fmt(rab.refine_wall_s)
     << ", \"solves\": " << rab.refine_stats.solves << "},\n"
     << "    \"winners_found\": " << rab.found << ",\n"
     << "    \"winners_refined\": " << rab.refined << ",\n"
     << "    \"attempted\": " << rab.refine_stats.refine.attempted << ",\n"
     << "    \"accepted_steps\": " << rab.refine_stats.refine.steps << ",\n"
     << "    \"trials\": " << rab.refine_stats.refine.trials << ",\n"
     << "    \"adjoint_solves\": " << rab.refine_stats.refine.adjoint_solves
     << ",\n"
     << "    \"extra_solve_frac\": " << fmt(rab.extra_solve_frac) << ",\n"
     << "    \"max_peak_drop_c\": " << fmt(rab.max_peak_drop_c) << ",\n"
     << "    \"sum_peak_drop_c\": " << fmt(rab.sum_peak_drop_c) << ",\n"
     << "    \"never_worse\": " << (rab.never_worse ? "true" : "false")
     << "\n  },\n"
     << "  \"service\": {\n"
     << "    \"grid\": " << e2e_grid << ",\n"
     << "    \"ping_round_trips_per_sec\": " << fmt(svc.ping_rps) << ",\n"
     << "    \"cold_optimize_ms\": " << fmt(svc.cold_ms) << ",\n"
     << "    \"warm_memo_hits_per_sec\": " << fmt(svc.warm_rps) << ",\n"
     << "    \"stats_scrapes_per_sec\": " << fmt(svc.stats_rps) << ",\n"
     << "    \"requests\": " << svc.stats.requests << ",\n"
     << "    \"memo_hits\": " << svc.stats.memo_hits << ",\n"
     << "    \"payload_matches_local\": "
     << (svc.payload_matches_local ? "true" : "false") << ",\n"
     << "    \"warm_all_memo_hits\": "
     << (svc.warm_all_memo_hits ? "true" : "false") << ",\n"
     << "    \"stats_ok\": " << (svc.stats_ok ? "true" : "false")
     << "\n  },\n"
     << "  \"telemetry\": {\n"
     << "    \"merge_shards\": " << tel.shards << ",\n"
     << "    \"merge_events\": " << tel.events << ",\n"
     << "    \"merge_ms\": " << fmt(tel.merge_ms) << ",\n"
     << "    \"merge_events_per_sec\": " << fmt(tel.events_per_sec) << ",\n"
     << "    \"merge_deterministic\": "
     << (tel.deterministic ? "true" : "false") << "\n  },\n"
     << "  \"health\": " << health_json << "\n}\n";
  out_file.commit();

  std::cout << "solver: " << fmt(solver_rates.front()) << " -> "
            << fmt(solver_rates.back()) << " solves/s ("
            << fmt(solver_speedup) << "x), bit_identical="
            << (solver_identical ? "yes" : "NO") << "\n"
            << "e2e optimizer (" << names.size() << " benchmarks): "
            << fmt(e2e_walls.front()) << " s -> " << fmt(e2e_walls.back())
            << " s (" << fmt(speedup) << "x at " << counts.back()
            << " threads), bit_identical=" << (e2e_identical ? "yes" : "NO")
            << "\n"
            << "preconditioner (grid " << ab.grid
            << "): jacobi=" << ab.jacobi_iters << " iters, mg=" << ab.mg_iters
            << " iters (" << fmt(ab.iters_ratio) << "x, " << ab.mg_levels
            << " levels), temps_match=" << (ab.temps_match ? "yes" : "NO")
            << "\n"
            << "fidelity ladder (step 0.5): " << fmt(lab.full_wall_s)
            << " s full -> " << fmt(lab.ladder_wall_s) << " s ladder ("
            << fmt(lab.speedup) << "x), full solves "
            << lab.full_stats.solves << " -> " << lab.ladder_stats.solves
            << " (-" << fmt(100.0 * lab.solve_reduction)
            << "%), winner_match=" << (lab.winner_match ? "yes" : "NO")
            << ", bit_identical=" << (lab.bit_identical ? "yes" : "NO")
            << "\n"
            << "refine (step 2): " << rab.refined << "/" << rab.found
            << " winners moved off-grid, peak drop max " << fmt(rab.max_peak_drop_c)
            << " C / sum " << fmt(rab.sum_peak_drop_c) << " C, "
            << rab.refine_stats.refine.adjoint_solves << " adjoint solve(s), +"
            << fmt(100.0 * rab.extra_solve_frac)
            << "% solves, never_worse=" << (rab.never_worse ? "yes" : "NO")
            << "\n"
            << "service: ping " << fmt(svc.ping_rps) << " rt/s, cold optimize "
            << fmt(svc.cold_ms) << " ms, warm memo " << fmt(svc.warm_rps)
            << " rt/s, stats scrape " << fmt(svc.stats_rps)
            << " rt/s, payload_match="
            << (svc.payload_matches_local ? "yes" : "NO") << ", all_memo_hits="
            << (svc.warm_all_memo_hits ? "yes" : "NO") << ", stats_ok="
            << (svc.stats_ok ? "yes" : "NO") << "\n"
            << "telemetry: merged " << tel.events << " events from "
            << tel.shards << " shards in " << fmt(tel.merge_ms) << " ms ("
            << fmt(tel.events_per_sec) << " ev/s), deterministic="
            << (tel.deterministic ? "yes" : "NO") << "\n"
            << "wrote " << out_path << "\n";
  std::cerr << "[micro_eval_engine] " << health.summary() << "\n";
  obs::record_run_health(health);
  if (obs_opts.any()) obs_opts.publish();
  return (solver_identical && e2e_identical && ab.temps_match &&
          lab.winner_match && lab.bit_identical && rab.never_worse &&
          svc.payload_matches_local && svc.warm_all_memo_hits &&
          svc.stats_ok && tel.deterministic)
             ? 0
             : 1;
}
