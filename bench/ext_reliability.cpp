/// Extension experiment (paper §V-B, last sentence): quantify the
/// reliability benefit of thermally-aware organization.  For each
/// benchmark, run the 2D baseline's best operating point on (a) the
/// single chip and (b) a spaced 16-chiplet system, and convert the
/// temperature drop into an Arrhenius lifetime factor (Ea = 0.7 eV).
#include <sstream>

#include "bench_main.hpp"
#include "core/evaluator.hpp"
#include "core/reliability.hpp"

namespace {

tacos::TextTable reliability_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  Evaluator eval(opts.eval_config());
  TextTable t({"benchmark", "operating_point", "2D_peak_c", "25D_peak_c",
               "delta_c", "lifetime_factor"});
  for (const BenchmarkProfile& bench : benchmarks()) {
    const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
    if (!base.feasible) {
      t.add_row({std::string(bench.name), "2D infeasible", "-", "-", "-",
                 "-"});
      continue;
    }
    // Same operating point, spaced 16-chiplet organization (4 mm uniform).
    const Organization org25{16, {4.0, 2.0, 4.0}, base.dvfs_idx,
                             base.active_cores};
    const double t25 = eval.thermal_eval(org25, bench).peak_c;
    std::ostringstream op;
    op << kDvfsLevels[base.dvfs_idx].freq_mhz << "MHz p="
       << base.active_cores;
    t.add_row({std::string(bench.name), op.str(),
               TextTable::fmt(base.peak_c, 1), TextTable::fmt(t25, 1),
               TextTable::fmt(base.peak_c - t25, 1),
               TextTable::fmt(mttf_factor(t25, base.peak_c), 2) + "x"});
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: lifetime benefit at the 2D operating point",
      [&] { return reliability_table(opts); });
}
