/// Extension experiment (not in the paper): computational sprinting on
/// 2.5D organizations.  The paper lists computational sprinting [7] as a
/// complementary dark-silicon technique; this bench quantifies the
/// complement — how long each organization can run ALL 256 cores at 1 GHz
/// from a cold start before crossing 85 C, and what power it can sustain
/// forever.  Chiplet spacing both raises the sustainable budget and
/// stretches the sprint.
#include <vector>

#include "bench_main.hpp"
#include "core/sprint.hpp"
#include "materials/stack.hpp"

namespace {

tacos::TextTable sprint_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  const SystemSpec spec;
  const PowerModelParams pm;
  std::vector<int> all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = i;

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = opts.grid;

  struct Config {
    std::string name;
    ChipletLayout layout;
    const LayerStack stack;
  };
  std::vector<Config> configs;
  configs.push_back({"2D single chip", make_single_chip_layout(spec),
                     make_2d_stack()});
  configs.push_back({"16c packed (20mm)", make_uniform_layout(4, 0.0, spec),
                     make_25d_stack()});
  configs.push_back({"16c g=4mm (32mm)", make_uniform_layout(4, 4.0, spec),
                     make_25d_stack()});
  configs.push_back({"16c g=10mm (50mm)", make_uniform_layout(4, 10.0, spec),
                     make_25d_stack()});

  TextTable t({"organization", "benchmark", "sprint_s_to_85C",
               "steady_peak_c", "sustainable"});
  for (const auto& bench_name : {"shock", "hpccg", "canneal"}) {
    const BenchmarkProfile& bench = benchmark_by_name(bench_name);
    for (const auto& c : configs) {
      ThermalModel model(c.layout, c.stack, cfg);
      // Steady-state peak at full tilt (sustainability check).
      const LeakageResult steady = run_leakage_fixed_point(
          model, c.layout, bench, kDvfsLevels[0], all, pm);
      model.reset_to_ambient();
      const SprintResult r = measure_sprint(model, c.layout, bench,
                                            kDvfsLevels[0], all, pm, 85.0,
                                            0.25, 120.0);
      t.add_row({c.name, std::string(bench.name),
                 r.sustainable ? ">120" : TextTable::fmt(r.duration_s, 2),
                 TextTable::fmt(steady.peak_c, 1),
                 steady.peak_c <= 85.0 ? "yes" : "no"});
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: computational sprinting across organizations",
      [&] { return sprint_table(opts); });
}
