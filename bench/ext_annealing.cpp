/// Extension experiment (design-choice ablation): the paper's multi-start
/// greedy vs a simulated-annealing search over the joint organization
/// space.  The greedy exploits that Eq. (5) is simulation-free per
/// combination (only Eq. (6) needs thermal solves); annealing pays a
/// solve per move.  This bench compares solution quality and simulation
/// budgets on identical evaluators.
#include <sstream>

#include "bench_main.hpp"
#include "core/annealing.hpp"

namespace {

tacos::TextTable annealing_table(const tacos::ExperimentOptions& opts) {
  using namespace tacos;
  TextTable t({"benchmark", "method", "objective", "ips_norm", "peak_c",
               "thermal_solves"});
  for (const auto* bench_name : {"cholesky", "canneal"}) {
    const BenchmarkProfile& bench = benchmark_by_name(bench_name);
    // Fresh evaluators so the two methods' solve counts are comparable.
    {
      Evaluator eval(opts.eval_config());
      const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
      eval.reset_stats();
      const OptResult g =
          optimize_greedy(eval, bench, opts.optimizer_options(1.0, 0.0));
      t.add_row({std::string(bench.name), "multi-start greedy",
                 g.found ? TextTable::fmt(g.objective, 4) : "none",
                 g.found && base.feasible
                     ? TextTable::fmt(g.ips / base.ips, 3)
                     : "n/a",
                 g.found ? TextTable::fmt(g.peak_c, 1) : "n/a",
                 std::to_string(g.thermal_solves)});
    }
    {
      Evaluator eval(opts.eval_config());
      const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
      eval.reset_stats();
      AnnealOptions ao;
      ao.alpha = 1.0;
      ao.beta = 0.0;
      ao.threshold_c = opts.threshold_c;
      ao.step_mm = opts.opt_step_mm;
      ao.iterations = 250;
      ao.seed = opts.seed;
      const OptResult a = optimize_annealing(eval, bench, ao);
      t.add_row({std::string(bench.name), "simulated annealing",
                 a.found ? TextTable::fmt(a.objective, 4) : "none",
                 a.found && base.feasible
                     ? TextTable::fmt(a.ips / base.ips, 3)
                     : "n/a",
                 a.found ? TextTable::fmt(a.peak_c, 1) : "n/a",
                 std::to_string(a.thermal_solves)});
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  const auto opts = tacos::benchmain::options_from_args(argc, argv, defaults);
  return tacos::benchmain::run(
      "Extension: multi-start greedy vs simulated annealing",
      [&] { return annealing_table(opts); });
}
