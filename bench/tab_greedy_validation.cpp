/// Reproduces the §III-D validation (E9): the multi-start greedy finds the
/// exhaustive-search optimum (paper: 99% of the time) at a small fraction
/// of the full design space's simulation cost (paper: 400x fewer).
/// Runs at a coarsened granularity so the oracle comparison stays cheap.
#include "bench_main.hpp"

int main(int argc, char** argv) {
  tacos::ExperimentOptions defaults;
  defaults.grid = 24;
  defaults.opt_step_mm = 2.0;
  defaults.w_step_mm = 2.0;
  tacos::benchmain::Harness harness(argc, argv, defaults);
  const auto& opts = harness.options();
  tacos::RunHealth health;
  const int rc = tacos::benchmain::run(
      "Greedy vs exhaustive validation",
      [&] { return tacos::greedy_validation_table(opts, &health); });
  tacos::benchmain::report_health("greedy-validation", health);
  return harness.finish(rc);
}
