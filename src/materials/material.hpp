#pragma once
/// \file material.hpp
/// \brief Thermal material properties and effective-medium mixing rules.
///
/// Conductivities are in W/(m·K).  Composite layers (microbump, TSV and C4
/// layers are copper structures embedded in epoxy or silicon) are modeled
/// as anisotropic effective media: vertically the metal pillars conduct in
/// parallel with the matrix (area-fraction-weighted arithmetic mean), while
/// laterally heat must cross matrix material between pillars, which the
/// series (harmonic) mean captures.  This matches how HotSpot users model
/// bump/TSV layers in 2.5D/3D stacks.

#include <numbers>
#include <string>

#include "common/check.hpp"

namespace tacos {

/// A (possibly anisotropic) thermal material.
struct Material {
  std::string name;
  double k_lateral = 0.0;   ///< in-plane thermal conductivity, W/(m·K)
  double k_vertical = 0.0;  ///< through-plane thermal conductivity, W/(m·K)
  double vol_heat_cap = 1.6e6;  ///< volumetric heat capacity, J/(m^3·K)

  /// Isotropic material helper.
  static Material iso(std::string name, double k, double cv = 1.6e6) {
    TACOS_CHECK(k > 0.0, "conductivity must be positive: " << name);
    TACOS_CHECK(cv > 0.0, "heat capacity must be positive: " << name);
    return Material{std::move(name), k, k, cv};
  }
};

/// Standard material set used by the Table I stack. Values are the widely
/// used HotSpot-style constants at operating temperature.
namespace materials {

inline Material silicon() { return Material::iso("silicon", 110.0, 1.63e6); }
inline Material copper() { return Material::iso("copper", 385.0, 3.45e6); }
/// Flip-chip underfill / inter-chiplet fill epoxy.
inline Material epoxy() { return Material::iso("epoxy", 0.9, 2.0e6); }
/// Thermal interface material (HotSpot default-style greased interface).
inline Material tim() { return Material::iso("TIM", 4.0, 2.0e6); }
/// FR-4 organic substrate.
inline Material fr4() { return Material::iso("FR-4", 0.3, 1.2e6); }
/// Still air (adiabatic-ish filler for regions outside a layer's extent).
inline Material air() { return Material::iso("air", 0.026, 1.2e3); }

}  // namespace materials

/// Area fraction covered by a square-pitch array of cylindrical pillars
/// (microbumps, TSVs, C4 bumps): pi * (d/2)^2 / pitch^2.
inline double pillar_area_fraction(double diameter, double pitch) {
  TACOS_CHECK(diameter > 0.0 && pitch > 0.0 && diameter <= pitch,
              "invalid pillar geometry: d=" << diameter << " pitch=" << pitch);
  const double r = diameter / 2.0;
  return std::numbers::pi * r * r / (pitch * pitch);
}

/// Effective anisotropic medium for metal pillars (fraction `frac`) in a
/// matrix material: vertical = parallel (arithmetic) mix, lateral = series
/// (harmonic) mix; heat capacity mixes by volume.
inline Material pillar_composite(std::string name, const Material& pillar,
                                 const Material& matrix, double frac) {
  TACOS_CHECK(frac >= 0.0 && frac <= 1.0, "fraction out of range: " << frac);
  const double kv =
      frac * pillar.k_vertical + (1.0 - frac) * matrix.k_vertical;
  const double kl =
      1.0 / (frac / pillar.k_lateral + (1.0 - frac) / matrix.k_lateral);
  const double cv =
      frac * pillar.vol_heat_cap + (1.0 - frac) * matrix.vol_heat_cap;
  return Material{std::move(name), kl, kv, cv};
}

}  // namespace tacos
