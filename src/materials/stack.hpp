#pragma once
/// \file stack.hpp
/// \brief The 2.5D package layer stack of Table I and the 2D baseline stack.
///
/// A LayerStack is an ordered list of layers from the organic substrate at
/// the bottom to the heat sink at the top.  Each layer has a thickness and
/// two materials: the material inside the "occupied" region (e.g. silicon
/// where a chiplet sits) and the fill material between occupied regions
/// (epoxy underfill between chiplets, per the paper's assembly description).
/// Which cells are "occupied" is decided per-layer by the floorplan module:
///   - chiplet / microbump layers: occupied under chiplets only;
///   - interposer / C4 / substrate layers: occupied across the full
///     interposer footprint;
///   - TIM: spans the interposer footprint (it sits under the spreader).
/// The spreader and heat sink are handled separately by the package model
/// because they are larger than the interposer footprint.

#include <string>
#include <vector>

#include "common/units.hpp"
#include "materials/material.hpp"

namespace tacos {

/// What part of the floorplan a layer's "occupied" material covers.
enum class LayerExtent {
  kChiplets,  ///< occupied only under chiplet rectangles (fill elsewhere)
  kFull,      ///< occupied across the full interposer footprint
};

/// One layer of the stack (bottom to top ordering inside LayerStack).
struct Layer {
  std::string name;
  double thickness_mm = 0.0;  ///< layer thickness in mm
  Material occupied;          ///< material inside the occupied region
  Material fill;              ///< material outside the occupied region
  LayerExtent extent = LayerExtent::kFull;
  bool heat_source = false;   ///< true for the active CMOS layer
};

/// Ordered stack, index 0 = bottom (substrate side).
struct LayerStack {
  std::vector<Layer> layers;

  /// Index of the heat-source (CMOS) layer.
  std::size_t source_layer() const;
  /// Total thickness in mm.
  double total_thickness() const;
};

/// Build the 2.5D stack of Table I:
///   substrate 200um FR-4 | C4 70um Cu/epoxy | interposer 110um Si+TSV |
///   microbump 10um Cu/epoxy | chiplet 150um Si (epoxy fill between
///   chiplets) | TIM 20um.
/// The spreader (1mm Cu) and heat sink (6.9mm Cu) are added by the package
/// model on top of this stack.
LayerStack make_25d_stack();

/// Build the 2D baseline stack: the chip sits directly on the organic
/// substrate with C4 bumps (paper §III-A):
///   substrate 200um FR-4 | C4 70um Cu/epoxy | chip 150um Si | TIM 20um.
LayerStack make_2d_stack();

/// Geometry of the vertical interconnect structures (Table I, bottom half).
struct BumpGeometry {
  double diameter_mm;
  double height_mm;
  double pitch_mm;
};

/// Microbumps: 25um diameter, 10um height, 50um pitch.
BumpGeometry microbump_geometry();
/// TSVs: 10um diameter, 100um height, 50um pitch.
BumpGeometry tsv_geometry();
/// C4 bumps: 250um diameter, 70um height, 600um pitch.
BumpGeometry c4_geometry();

/// Spreader and heat-sink conventions (paper §IV): spreader edge is 2x the
/// interposer edge, sink edge is 2x the spreader edge, thicknesses from
/// Table I, copper, and the convective heat-transfer coefficient is held
/// constant as the sink scales.
struct PackageConvention {
  double spreader_scale = 2.0;     ///< spreader edge / interposer edge
  double sink_scale = 2.0;         ///< sink edge / spreader edge
  double spreader_thickness_mm = 1.0;
  double sink_thickness_mm = 6.9;
  /// Convective heat-transfer coefficient, W/(m^2 K).  HotSpot's default
  /// package (r_convec = 0.1 K/W on a 60mm sink) corresponds to
  /// h ≈ 2800 W/(m^2 K); the paper keeps h constant while the sink scales
  /// with the interposer.  See DESIGN.md for the calibration rationale.
  double h_convection = 2800.0;
  double ambient_c = 45.0;         ///< ambient temperature, °C
};

}  // namespace tacos
