#include "materials/stack.hpp"

#include "common/check.hpp"

namespace tacos {

std::size_t LayerStack::source_layer() const {
  for (std::size_t i = 0; i < layers.size(); ++i)
    if (layers[i].heat_source) return i;
  TACOS_ASSERT(false, "stack has no heat-source layer");
  return 0;  // unreachable
}

double LayerStack::total_thickness() const {
  double t = 0.0;
  for (const auto& l : layers) t += l.thickness_mm;
  return t;
}

BumpGeometry microbump_geometry() {
  using namespace literals;
  return BumpGeometry{25_um, 10_um, 50_um};
}

BumpGeometry tsv_geometry() {
  using namespace literals;
  return BumpGeometry{10_um, 100_um, 50_um};
}

BumpGeometry c4_geometry() {
  using namespace literals;
  return BumpGeometry{250_um, 70_um, 600_um};
}

LayerStack make_25d_stack() {
  using namespace literals;
  const Material si = materials::silicon();
  const Material cu = materials::copper();
  const Material ep = materials::epoxy();

  const double f_ubump = pillar_area_fraction(microbump_geometry().diameter_mm,
                                              microbump_geometry().pitch_mm);
  const double f_tsv =
      pillar_area_fraction(tsv_geometry().diameter_mm, tsv_geometry().pitch_mm);
  const double f_c4 =
      pillar_area_fraction(c4_geometry().diameter_mm, c4_geometry().pitch_mm);

  LayerStack s;
  s.layers = {
      Layer{"substrate", 200_um, materials::fr4(), materials::fr4(),
            LayerExtent::kFull, false},
      Layer{"C4", 70_um, pillar_composite("C4 Cu/epoxy", cu, ep, f_c4),
            pillar_composite("C4 Cu/epoxy", cu, ep, f_c4), LayerExtent::kFull,
            false},
      Layer{"interposer", 110_um,
            pillar_composite("Si+TSV", cu, si, f_tsv),
            pillar_composite("Si+TSV", cu, si, f_tsv), LayerExtent::kFull,
            false},
      Layer{"microbump", 10_um,
            pillar_composite("ubump Cu/epoxy", cu, ep, f_ubump), ep,
            LayerExtent::kChiplets, false},
      Layer{"chiplet", 150_um, si, ep, LayerExtent::kChiplets, true},
      Layer{"TIM", 20_um, materials::tim(), materials::tim(),
            LayerExtent::kFull, false},
  };
  return s;
}

LayerStack make_2d_stack() {
  using namespace literals;
  const Material si = materials::silicon();
  const Material cu = materials::copper();
  const Material ep = materials::epoxy();
  const double f_c4 =
      pillar_area_fraction(c4_geometry().diameter_mm, c4_geometry().pitch_mm);

  LayerStack s;
  s.layers = {
      Layer{"substrate", 200_um, materials::fr4(), materials::fr4(),
            LayerExtent::kFull, false},
      Layer{"C4", 70_um, pillar_composite("C4 Cu/epoxy", cu, ep, f_c4),
            pillar_composite("C4 Cu/epoxy", cu, ep, f_c4), LayerExtent::kFull,
            false},
      // In the 2D baseline the "chiplet" layer is the monolithic die, which
      // covers the full footprint, so extent kFull is equivalent; we keep
      // kChiplets so the same grid builder code path is exercised.
      Layer{"chip", 150_um, si, ep, LayerExtent::kChiplets, true},
      Layer{"TIM", 20_um, materials::tim(), materials::tim(),
            LayerExtent::kFull, false},
  };
  return s;
}

}  // namespace tacos
