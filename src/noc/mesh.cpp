#include "noc/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "perf/ips_model.hpp"

namespace tacos {

namespace {

/// Center-to-center distance between two physically placed tiles.
double tile_distance_mm(const ChipletLayout& l, int ax, int ay, int bx,
                        int by) {
  const Point a = l.tile_rect(ax, ay).center();
  const Point b = l.tile_rect(bx, by).center();
  return std::hypot(a.x - b.x, a.y - b.y);
}

}  // namespace

MeshStructure analyze_mesh(const ChipletLayout& layout, const MeshParams&) {
  TACOS_CHECK(layout.has_tiles(),
              "mesh analysis needs a tiled layout (one router per tile)");
  const int n = layout.spec().tiles_per_side;
  MeshStructure s;
  s.router_count = n * n;
  double len_sum = 0.0;
  const auto visit = [&](int ax, int ay, int bx, int by) {
    if (layout.chiplet_of_tile(ax, ay) == layout.chiplet_of_tile(bx, by)) {
      ++s.onchip_links;
    } else {
      ++s.interposer_links;
      const double d = tile_distance_mm(layout, ax, ay, bx, by);
      len_sum += d;
      s.max_interposer_link_mm = std::max(s.max_interposer_link_mm, d);
    }
  };
  for (int ty = 0; ty < n; ++ty)
    for (int tx = 0; tx + 1 < n; ++tx) visit(tx, ty, tx + 1, ty);
  for (int ty = 0; ty + 1 < n; ++ty)
    for (int tx = 0; tx < n; ++tx) visit(tx, ty, tx, ty + 1);
  if (s.interposer_links > 0)
    s.avg_interposer_link_mm = len_sum / s.interposer_links;
  return s;
}

double network_power_w(const ChipletLayout& layout,
                       const BenchmarkProfile& bench, double freq_mhz,
                       double vdd, const MeshParams& p) {
  TACOS_CHECK(freq_mhz > 0 && vdd > 0, "bad operating point");
  const int n = layout.spec().tiles_per_side;
  const int cores = n * n;
  // Uniform-random traffic on an n×n mesh: average hop count 2n/3; each
  // flit also traverses hops+1 routers.
  const double avg_hops = 2.0 * n / 3.0;
  const double flits_per_s = cores * p.flits_per_core_per_cycle *
                             bench.net_activity * freq_mhz * 1e6;
  const double traversals_per_link =
      flits_per_s * avg_hops / (2.0 * n * (n - 1));  // links share load

  const double v_scale = (vdd / 0.9) * (vdd / 0.9);

  // Routers.
  double power = flits_per_s * (avg_hops + 1) *
                 p.router_energy_pj_per_flit * 1e-12 * v_scale;

  // Links: walk the mesh once, classifying each link.
  const double onchip_len = layout.spec().tile_edge_mm;
  const auto link_power = [&](int ax, int ay, int bx, int by) {
    if (layout.chiplet_of_tile(ax, ay) == layout.chiplet_of_tile(bx, by)) {
      return traversals_per_link * p.onchip_link_energy_pj_per_flit_mm *
             onchip_len * 1e-12 * v_scale;
    }
    // Interposer link: driver sized for single-cycle at the nominal
    // frequency (the paper sizes once, at design time).
    const double len = tile_distance_mm(layout, ax, ay, bx, by);
    const LinkDesign d = design_link(len, kNominalFreqMhz, p.link);
    const double e_flit_pj = d.energy_pj_per_bit * p.flit_width_bits;
    return traversals_per_link * e_flit_pj * 1e-12 * v_scale /
           (p.link.vdd * p.link.vdd / 0.81);  // energy already at link vdd
  };
  for (int ty = 0; ty < n; ++ty)
    for (int tx = 0; tx + 1 < n; ++tx) power += link_power(tx, ty, tx + 1, ty);
  for (int ty = 0; ty + 1 < n; ++ty)
    for (int tx = 0; tx < n; ++tx) power += link_power(tx, ty, tx, ty + 1);
  return power;
}

}  // namespace tacos
