#pragma once
/// \file mesh.hpp
/// \brief Electrical mesh NoC power model — the repository's DSENT
///        substitute (paper §III-A).
///
/// The example system uses a 16×16 electrical mesh with single-cycle
/// routers and single-cycle links.  Intra-chiplet hops use on-chiplet
/// wires; hops whose endpoints live on different chiplets are routed
/// through the interposer and modeled with the Fig. 2 link model
/// (noc/interposer_link.hpp), with the physical link length taken from
/// the actual chiplet separation in the layout — so wider chiplet spacing
/// costs proportionally more network power, which is exactly the
/// performance/power trade the paper describes ("we trade off network
/// power to match network performance"; ~3.9 W for the single-chip mesh,
/// up to ~8.4 W for the 2.5D mesh).

#include <vector>

#include "floorplan/layout.hpp"
#include "noc/interposer_link.hpp"
#include "perf/benchmark.hpp"

namespace tacos {

/// Mesh energy parameters (22nm-class, DSENT-flavored).
struct MeshParams {
  double flit_width_bits = 128.0;
  double router_energy_pj_per_flit = 6.0;  ///< per traversed router (128-bit)
  double onchip_link_energy_pj_per_flit_mm = 5.2;  ///< 128 bits of wire, per mm
  /// Average flits injected per core per cycle at activity factor 1.0.
  /// Calibrated so the single-chip mesh dissipates ≈3.9 W at nominal
  /// frequency/voltage and full activity (paper §III-A).
  double flits_per_core_per_cycle = 0.115;
  LinkParams link;  ///< interposer link electricals
};

/// Structural summary of the mesh mapped onto a layout.
struct MeshStructure {
  int router_count = 0;
  int onchip_links = 0;       ///< links between same-chiplet neighbours
  int interposer_links = 0;   ///< links crossing chiplet boundaries
  double avg_interposer_link_mm = 0.0;  ///< mean center-to-center length
  double max_interposer_link_mm = 0.0;
};

/// Count routers/links and measure interposer-link lengths for `layout`.
/// Requires the layout to carry tiles (every tile hosts one router).
MeshStructure analyze_mesh(const ChipletLayout& layout,
                           const MeshParams& p = {});

/// Total network power (W) for `bench` running at `freq_mhz` (voltage
/// `vdd`) on `layout`.  Interposer-link drivers are sized for single-cycle
/// propagation at the *nominal* frequency, as the paper does.
double network_power_w(const ChipletLayout& layout,
                       const BenchmarkProfile& bench, double freq_mhz,
                       double vdd, const MeshParams& p = {});

}  // namespace tacos
