#pragma once
/// \file interposer_link.hpp
/// \brief Inter-chiplet link electrical model (Fig. 2) — the repository's
///        HSpice substitute, based on the 2.5D interconnect model of
///        Karim et al. [23].
///
/// Topology (driver → receiver):
///   driver (sized CMOS inverter) → ESD pad → microbump (R, L) →
///   interposer RDL trace (distributed RLC, length = physical chiplet
///   separation) → microbump → ESD pad → receiver gate.
///
/// Instead of SPICE transient analysis we use first-order closed forms:
///   * propagation delay: 0.69 × Elmore delay of the RC ladder (the
///     inductances are small enough at these lengths that the response is
///     RC-dominated; they are retained in the parameters for completeness
///     and used in the damping sanity check);
///   * switching energy per bit: alpha * C_total * Vdd^2 with activity
///     factor alpha (a transition charges the full capacitance once).
///
/// The paper "sizes up the drivers to ensure single-cycle propagation
/// delay in the inter-chiplet links" — design_link() reproduces exactly
/// that loop: it returns the smallest integer driver size whose Elmore
/// delay meets the cycle time at the target frequency.

#include "common/check.hpp"

namespace tacos {

/// Electrical parameters of the Fig. 2 link model.
struct LinkParams {
  // 65nm passive-interposer RDL trace, per mm.
  double trace_r_ohm_per_mm = 1.0;
  double trace_c_pf_per_mm = 0.17;
  double trace_l_nh_per_mm = 0.50;
  // Pad / microbump parasitics (Fig. 2 values).
  double esd_c_pf = 0.50;          ///< ESD protection capacitance, each side
  double bump_r_ohm = 0.095;       ///< microbump resistance
  double bump_l_nh = 0.053;        ///< microbump inductance
  double bump_c_pf = 0.025;        ///< microbump capacitance
  // Driver/receiver.
  double driver_r_ohm_unit = 2000.0;  ///< output resistance of a 1x driver
  double driver_c_ff_unit = 1.5;      ///< input/self cap added per 1x of size
  double receiver_c_ff = 10.0;        ///< receiver gate capacitance
  double vdd = 0.9;                   ///< supply voltage (nominal DVFS level)
  double activity = 0.25;             ///< average transition probability/bit
  int max_driver_size = 512;          ///< sizing search bound
};

/// Result of sizing one link.
struct LinkDesign {
  int driver_size = 1;        ///< integer width multiplier of the driver
  double delay_ps = 0.0;      ///< 0.69 * Elmore delay with that driver
  double energy_pj_per_bit = 0.0;  ///< switching energy per transmitted bit
  double total_c_pf = 0.0;    ///< total switched capacitance
};

/// Elmore-based propagation delay (ps) for a link of `length_mm` driven by
/// a driver of integer size `driver_size`.
double link_delay_ps(double length_mm, int driver_size,
                     const LinkParams& p = {});

/// Switching energy per bit (pJ) for a link of `length_mm` with driver
/// size `driver_size` (includes driver self-capacitance).
double link_energy_pj(double length_mm, int driver_size,
                      const LinkParams& p = {});

/// Size the driver so the link propagates in a single cycle at
/// `freq_mhz`, reproducing the paper's driver-sizing step.  Throws
/// tacos::Error if no driver within p.max_driver_size meets timing.
LinkDesign design_link(double length_mm, double freq_mhz,
                       const LinkParams& p = {});

}  // namespace tacos
