#include "noc/interposer_link.hpp"

#include <cmath>

namespace tacos {

namespace {

/// Total switched capacitance in pF.
double total_cap_pf(double length_mm, int driver_size, const LinkParams& p) {
  return p.trace_c_pf_per_mm * length_mm + 2 * p.esd_c_pf + 2 * p.bump_c_pf +
         p.receiver_c_ff * 1e-3 + p.driver_c_ff_unit * driver_size * 1e-3;
}

}  // namespace

double link_delay_ps(double length_mm, int driver_size, const LinkParams& p) {
  TACOS_CHECK(length_mm >= 0, "negative link length");
  TACOS_CHECK(driver_size >= 1, "driver size must be >= 1");
  const double r_drv = p.driver_r_ohm_unit / driver_size;  // ohm
  const double r_trace = p.trace_r_ohm_per_mm * length_mm; // ohm
  const double c_trace = p.trace_c_pf_per_mm * length_mm;  // pF
  const double c_far = p.esd_c_pf + p.bump_c_pf + p.receiver_c_ff * 1e-3;
  const double c_all = total_cap_pf(length_mm, driver_size, p);
  // Elmore: driver sees everything; the distributed trace contributes
  // R_trace * (C_trace/2 + C_far); bump resistance sees downstream caps.
  const double elmore_ps =
      r_drv * c_all +
      2 * p.bump_r_ohm * (c_trace / 2 + c_far) +
      r_trace * (c_trace / 2 + c_far);
  return 0.69 * elmore_ps;  // ohm * pF = ps
}

double link_energy_pj(double length_mm, int driver_size, const LinkParams& p) {
  // E = alpha * C * Vdd^2 ; pF * V^2 = pJ.
  return p.activity * total_cap_pf(length_mm, driver_size, p) * p.vdd * p.vdd;
}

LinkDesign design_link(double length_mm, double freq_mhz, const LinkParams& p) {
  TACOS_CHECK(freq_mhz > 0, "frequency must be positive");
  const double period_ps = 1e6 / freq_mhz;
  for (int size = 1; size <= p.max_driver_size; size *= 2) {
    const double d = link_delay_ps(length_mm, size, p);
    if (d <= period_ps) {
      LinkDesign out;
      out.driver_size = size;
      out.delay_ps = d;
      out.energy_pj_per_bit = link_energy_pj(length_mm, size, p);
      out.total_c_pf = total_cap_pf(length_mm, size, p);
      return out;
    }
  }
  TACOS_CHECK(false, "no driver size up to "
                         << p.max_driver_size << "x meets single-cycle timing"
                         << " for a " << length_mm << "mm link at " << freq_mhz
                         << "MHz");
  return {};  // unreachable
}

}  // namespace tacos
