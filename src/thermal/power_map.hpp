#pragma once
/// \file power_map.hpp
/// \brief Heat-source description consumed by the thermal model.
///
/// A PowerMap is a list of rectangular heat sources (in the plane of the
/// CMOS layer) with their dissipation in watts.  The power and perf
/// modules produce per-tile maps for benchmark runs; the synthetic design
/// space studies (Fig. 3(b)) produce one uniform source per chiplet.

#include <vector>

#include "common/check.hpp"
#include "geom/rect.hpp"

namespace tacos {

/// One rectangular heat source on the active layer.
struct HeatSource {
  Rect rect;          ///< extent in the CMOS layer plane (mm)
  double watts = 0.0; ///< total power dissipated by this source
};

/// A set of heat sources; total() is the system power seen by the solver.
struct PowerMap {
  std::vector<HeatSource> sources;

  void add(const Rect& r, double watts) {
    TACOS_CHECK(watts >= 0.0, "heat source power cannot be negative");
    sources.push_back({r, watts});
  }

  double total() const {
    double t = 0.0;
    for (const auto& s : sources) t += s.watts;
    return t;
  }
};

}  // namespace tacos
