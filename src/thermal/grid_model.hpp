#pragma once
/// \file grid_model.hpp
/// \brief Steady-state 3D resistive thermal model of the 2.5D package
///        (the repository's HotSpot-grid-mode substitute).
///
/// Model structure
/// ---------------
/// Every layer of the stack (substrate → C4 → interposer → microbump →
/// chiplet → TIM for 2.5D; substrate → C4 → chip → TIM for the 2D
/// baseline), plus the copper heat spreader and heat sink, is discretized
/// on the same nx × ny grid covering the interposer footprint.  Grid cells
/// are connected by lateral (within-layer) and vertical (between-layer)
/// thermal conductances derived from each cell's effective material
/// (anisotropic where the layer is a Cu-pillar composite).
///
/// The spreader (edge = 2× interposer) and sink (edge = 2× spreader)
/// overhang the gridded footprint; the overhang is modeled HotSpot-style
/// with lumped peripheral nodes: four spreader-periphery quadrant rings,
/// four sink-inner-periphery rings (sink volume above the spreader
/// overhang) and four sink-outer-periphery rings (sink beyond the spreader
/// extent).  Every sink node — gridded or lumped — convects to ambient
/// through h · A, with the heat-transfer coefficient h held constant as
/// the package scales (paper §IV).  The bottom of the substrate is
/// adiabatic (HotSpot's default: no secondary heat path).
///
/// Solving G·T = P with the SPD conductance matrix G gives the
/// steady-state temperature field; the matrix depends only on geometry,
/// so one ThermalModel instance amortizes assembly over many power maps
/// (leakage iterations, optimizer probes), and consecutive solves warm-
/// start from the previous temperature field.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/run_health.hpp"
#include "floorplan/layout.hpp"
#include "geom/grid.hpp"
#include "linalg/csr.hpp"
#include "linalg/multigrid.hpp"
#include "linalg/solvers.hpp"
#include "materials/stack.hpp"
#include "thermal/power_map.hpp"

namespace tacos {

/// Thermal solver configuration.
struct ThermalConfig {
  std::size_t grid_nx = 64;  ///< grid resolution (paper uses 64 × 64)
  std::size_t grid_ny = 64;
  PackageConvention package;
  SolveOptions solve;
};

/// Result of a steady-state solve.
struct ThermalResult {
  double peak_c = 0.0;        ///< hottest silicon (chiplet-layer) cell, °C
  double peak_anywhere_c = 0.0;  ///< hottest node in the whole package, °C
  SolveResult solve_info;
};

/// Geometry-bound thermal model; reusable across power maps.
class ThermalModel {
 public:
  /// Build the conductance network for `layout` with the given `stack`
  /// (which must NOT include spreader/sink; those come from config.package).
  ThermalModel(const ChipletLayout& layout, const LayerStack& stack,
               const ThermalConfig& config);

  /// Solve the steady state for `power`.  On PCG non-convergence a
  /// recovery ladder is climbed before giving up: the pre-solve field is
  /// restored and the solve retried cold from ambient, then with a raised
  /// iteration cap, then with the Gauss-Seidel fallback solver.  Each
  /// escalation is counted in the ledger's RunHealth.  If every rung
  /// fails, the pre-solve temperature field is restored (no warm-start
  /// poisoning) and ThermalError is thrown; non-finite power input is
  /// rejected up front with ThermalError and leaves the field untouched.
  ThermalResult solve(const PowerMap& power);

  /// Share accounting with the caller: `ledger` (owned by the caller,
  /// e.g. an Evaluator shard) receives this model's solve indices and
  /// health counters.  nullptr reverts to the model's private ledger.
  void set_ledger(SolveLedger* ledger) { ledger_ = ledger; }

  /// Health counters of the active ledger (recoveries, failures).
  const RunHealth& health() const { return ledger().health; }

  /// Temperature of the CMOS layer averaged over each logical core tile,
  /// indexed [ty * tiles_per_side + tx].  Valid after solve(); requires
  /// the layout to carry tiles.  Used by the leakage fixed point.
  std::vector<double> tile_temperatures() const;

  /// Average CMOS-layer temperature over each chiplet, in layout chiplet
  /// order.  Valid after solve().
  std::vector<double> chiplet_temperatures() const;

  /// Temperature field of one grid layer (row-major, x fastest), °C.
  /// Layer indices follow the stack bottom→top, then spreader, then sink.
  std::vector<double> layer_field(std::size_t layer) const;

  /// Grid spec shared by all layers.
  const GridSpec& grid() const { return grid_; }
  /// Number of grid layers (stack + spreader + sink).
  std::size_t layer_count() const { return n_layers_; }
  /// Index of the CMOS (heat source) grid layer.
  std::size_t source_layer() const { return source_layer_; }
  /// Total number of unknowns in the linear system.
  std::size_t node_count() const { return matrix_.rows(); }

  /// Verify global energy balance of the last solve: returns
  /// |P_in - P_out_ambient| / P_in (should be ~solver tolerance).
  double energy_balance_error(const PowerMap& power) const;

  /// Fidelity-ladder rung 1: a single cheap peak-temperature estimate on
  /// the multigrid hierarchy's first Galerkin coarse operator (built on
  /// demand — no new assembly; at grid 24 the coarse system is 4× smaller
  /// than the fine one).  The fine RHS is restricted through the
  /// aggregation map and solved with Jacobi-PCG at a screening tolerance,
  /// warm-started from a per-model coarse field that persists across
  /// calls; the returned peak is the hottest majority-covered coarse cell
  /// of the CMOS layer.  Does NOT touch the temperature field, the main
  /// solve clock, or the recovery ladder; failures (including
  /// FaultPlan::coarse_fail_*) throw ThermalError, which the Evaluator
  /// treats as "promote to the next rung", never as a task failure.
  double coarse_peak_estimate(const PowerMap& power);

  // --- Transient simulation -------------------------------------------
  //
  // Every node carries a thermal capacitance C = c_v * volume; a backward
  // Euler step solves (G + C/dt) T_{n+1} = C/dt * T_n + P, which is
  // unconditionally stable and reuses the PCG machinery (the stepping
  // matrix is SPD with the same sparsity as G plus the diagonal).  The
  // temperature field persists across calls, so a sprint/rest schedule is
  // just a sequence of step_transient() calls with different power maps.

  /// Reset the temperature field to ambient (initial transient state).
  void reset_to_ambient();

  /// Advance the field by `dt_s` seconds under `power` (backward Euler).
  /// Returns the peak silicon temperature after the step.
  ThermalResult step_transient(const PowerMap& power, double dt_s);

  /// Current peak silicon temperature without solving anything.
  double current_peak_c() const;

  /// Total thermal capacitance of the package (J/K) — for tests.
  double total_capacitance() const;

  /// The preconditioner steady-state solves will use, with kAuto resolved:
  /// config.solve.precond if explicit, otherwise multigrid above a size
  /// threshold and Jacobi below it.  Transient steps always use Jacobi
  /// (the stepping matrix G + C/dt is a different operator than the
  /// hierarchy was built for).
  PrecondKind steady_precond() const;

  /// The lazily-built multigrid hierarchy, or nullptr if no steady-state
  /// solve has needed it yet.  Cached for the model's lifetime — the
  /// Evaluator's model LRU therefore caches hierarchy and model together.
  const MultigridPreconditioner* multigrid() const { return mg_.get(); }

  // --- Adjoint sensitivities (continuous spacing refinement) ----------
  //
  // T_peak = e_p^T T with K T = q, so dT_peak/dθ = λᵀ(∂q/∂θ) −
  // λᵀ(∂K/∂θ)T where K λ = e_p (K is symmetric) — one extra PCG solve
  // per gradient, reusing the model's preconditioner stack.  The only
  // θ-dependent conductances are those of kChiplets-extent layers, whose
  // per-cell conductivity interpolates occupied↔fill with the chiplet
  // coverage fraction; ∂K/∂θ therefore reduces to a sum over the edges of
  // those layers driven by d(cover)/dθ (src/thermal/adjoint.hpp assembles
  // that from the floorplan geometry).

  /// Outcome of one adjoint solve (adjoint_peak).
  struct AdjointInfo {
    std::size_t peak_node = 0;   ///< argmax node e_p selects
    std::size_t iterations = 0;  ///< PCG iterations consumed
  };

  /// Solve K λ = e_p for the peak-temperature adjoint at the last solved
  /// steady state, where e_p selects the same argmax cell make_result
  /// reports peak_c from (hottest majority-covered CMOS cell, falling
  /// back to the layer max).  Uses the same matrix, chunked kernels and
  /// (for large systems) multigrid preconditioner as the forward solve —
  /// bit-identical at any thread count — warm-started from the previous
  /// adjoint field.  Does NOT advance the solve ledger's clock or mutate
  /// the temperature field: fault-plan indices keep targeting forward
  /// solves only.  Throws ThermalError if PCG fails even after a cold
  /// restart.  The returned reference stays valid until the next call.
  const std::vector<double>& adjoint_peak(AdjointInfo* info = nullptr);

  /// Conductance term of the adjoint chain: −λᵀ(∂K/∂f)T · df where
  /// `dcover[i]` is the derivative of cell i's chiplet coverage fraction
  /// with respect to the spacing parameter.  Walks the lateral edges of
  /// every kChiplets-extent layer and the vertical edges touching one,
  /// differentiating each edge conductance g = 1/(r_a + r_b) through the
  /// half-cell slab resistances.  Requires solve() and adjoint_peak().
  double conductance_sensitivity(const std::vector<double>& dcover) const;

  /// Node id of CMOS-layer cell (ix, iy) — for λᵀ(∂q/∂θ) assembly, which
  /// rasterizes source-rect motion onto the source layer.
  std::size_t source_node(std::size_t ix, std::size_t iy) const {
    return node(source_layer_, ix, iy);
  }

 private:
  std::size_t node(std::size_t layer, std::size_t ix, std::size_t iy) const {
    return layer * grid_.cell_count() + grid_.index(ix, iy);
  }

  SolveLedger& ledger() { return ledger_ ? *ledger_ : own_ledger_; }
  const SolveLedger& ledger() const { return ledger_ ? *ledger_ : own_ledger_; }

  /// One steady-state attempt of the recovery ladder; honors the fault
  /// plan's forced failures for (solve_index, attempt).
  SolveResult attempt_solve(const std::vector<double>& rhs,
                            std::size_t solve_index, int attempt);

  /// Build (once) and return the multigrid hierarchy for steady solves.
  MultigridPreconditioner* multigrid_for_solve();

  GridSpec grid_;
  ThermalConfig config_;
  std::size_t n_layers_ = 0;       ///< gridded layers (stack + spreader + sink)
  std::size_t source_layer_ = 0;   ///< gridded index of the CMOS layer
  std::size_t n_grid_nodes_ = 0;
  // Lumped node ids (see .cpp): 4 spreader periphery, 4 sink inner, 4 outer.
  std::size_t first_lumped_ = 0;

  /// Rasterize `power` into a right-hand-side vector starting from base.
  std::vector<double> build_rhs(const PowerMap& power) const;
  /// Extract peak statistics from the current temperature field.
  ThermalResult make_result(const SolveResult& sr) const;

  CsrMatrix matrix_;
  std::vector<double> rhs_base_;     ///< ambient-injection part of the RHS
  std::vector<double> ambient_g_;    ///< per-node conductance to ambient (W/K)
  std::vector<double> capacitance_;  ///< per-node thermal capacitance (J/K)
  std::vector<double> temperatures_; ///< last solution (also warm start)
  std::vector<double> source_cover_; ///< chiplet coverage fraction per cell
  /// Per-gridded-layer material parameters retained for ∂K/∂f assembly:
  /// enough to recompute every cell conductivity (and its derivative in
  /// the coverage fraction) exactly as the constructor did.
  struct LayerSens {
    double thickness = 0.0;
    bool chiplet = false;  ///< LayerExtent::kChiplets (cover-dependent k)
    double k_lat_occ = 0.0, k_lat_fill = 0.0;
    double k_vert_occ = 0.0, k_vert_fill = 0.0;
  };
  std::vector<LayerSens> layer_sens_;
  std::vector<double> adjoint_;      ///< last adjoint solution (warm start)
  bool adjoint_valid_ = false;       ///< adjoint_ holds a converged solve
  CsrMatrix transient_matrix_;       ///< G + C/dt for the cached dt
  double transient_dt_s_ = 0.0;      ///< dt the cached matrix was built for
  // Tile rasterization cache: per tile, list of (cell, weight).
  std::vector<std::vector<std::pair<std::size_t, double>>> tile_cells_;
  std::vector<std::vector<std::pair<std::size_t, double>>> chiplet_cells_;
  bool solved_ = false;
  // Coarse-rung screening state (coarse_peak_estimate): warm-start field
  // and source-layer coverage on the first Galerkin coarse level.
  std::vector<double> coarse_temps_;
  std::vector<double> coarse_cover_;
  std::unique_ptr<MultigridPreconditioner> mg_;  ///< lazy; steady-state only
  SolveLedger* ledger_ = nullptr;  ///< external accounting (Evaluator shard)
  SolveLedger own_ledger_;         ///< fallback for standalone models
};

}  // namespace tacos
