#include "thermal/adjoint.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tacos {

double d_overlap_area(const Rect& cell, const Rect& r, double vx, double vy) {
  const double ox = std::min(cell.x2(), r.x2()) - std::max(cell.x, r.x);
  const double oy = std::min(cell.y2(), r.y2()) - std::max(cell.y, r.y);
  if (ox <= 0.0 || oy <= 0.0) return 0.0;
  // Overlap width is min(cell.x2, r.x2) - max(cell.x, r.x): each min/max
  // picks up r's velocity exactly when r's edge is the binding one.  Ties
  // (an edge of r flush with an edge of cell) take the cell branch, giving
  // the one-sided derivative from the interior.
  const double dox = vx * ((r.x2() < cell.x2() ? 1.0 : 0.0) -
                           (r.x > cell.x ? 1.0 : 0.0));
  const double doy = vy * ((r.y2() < cell.y2() ? 1.0 : 0.0) -
                           (r.y > cell.y ? 1.0 : 0.0));
  return dox * oy + ox * doy;
}

std::vector<double> cover_sensitivity(
    const GridSpec& grid, const ChipletLayout& layout,
    const std::vector<ChipletVelocity>& vel) {
  TACOS_CHECK(vel.size() == layout.chiplets().size(),
              "one velocity per chiplet required (got "
                  << vel.size() << " for " << layout.chiplets().size()
                  << " chiplets)");
  std::vector<double> dcover(grid.cell_count(), 0.0);
  const double inv_area = 1.0 / grid.cell_area();
  for (std::size_t ci = 0; ci < layout.chiplets().size(); ++ci) {
    const ChipletVelocity& v = vel[ci];
    if (v.vx == 0.0 && v.vy == 0.0) continue;
    const Rect& r = layout.chiplets()[ci].rect;
    // Interior cells (fully covered) contribute zero derivative; only the
    // boundary band matters, but rasterizing the whole rect is cheap and
    // keeps the loop trivially exact.
    grid.rasterize(r, [&](std::size_t ix, std::size_t iy, double) {
      const double d = d_overlap_area(grid.cell_rect(ix, iy), r, v.vx, v.vy);
      if (d != 0.0) dcover[grid.index(ix, iy)] += d * inv_area;
    });
  }
  return dcover;
}

double rhs_sensitivity(const ThermalModel& model,
                       const std::vector<double>& lambda, const PowerMap& pm,
                       const std::vector<int>& source_chiplet,
                       const std::vector<ChipletVelocity>& vel) {
  TACOS_CHECK(source_chiplet.size() == pm.sources.size(),
              "source ownership must be parallel to the power map (got "
                  << source_chiplet.size() << " owners for "
                  << pm.sources.size() << " sources)");
  const GridSpec& grid = model.grid();
  double acc = 0.0;
  for (std::size_t si = 0; si < pm.sources.size(); ++si) {
    const HeatSource& s = pm.sources[si];
    const int owner = source_chiplet[si];
    TACOS_CHECK(owner >= 0 && static_cast<std::size_t>(owner) < vel.size(),
                "source owner index " << owner << " out of range");
    const ChipletVelocity& v = vel[static_cast<std::size_t>(owner)];
    if ((v.vx == 0.0 && v.vy == 0.0) || s.watts == 0.0) continue;
    // rhs[node] = watts * overlap_area(cell, rect) / rect_area, so
    // d rhs[node]/dθ = watts/rect_area * d_overlap — the source area is
    // invariant under rigid translation.
    const double scale = s.watts / s.rect.area();
    grid.rasterize(s.rect, [&](std::size_t ix, std::size_t iy, double) {
      const double d = d_overlap_area(grid.cell_rect(ix, iy), s.rect, v.vx,
                                      v.vy);
      if (d != 0.0) acc += scale * lambda[model.source_node(ix, iy)] * d;
    });
  }
  return acc;
}

std::vector<ChipletVelocity> org16_spacing_velocities(
    const ChipletLayout& layout, int param) {
  TACOS_CHECK(layout.grid_r() == 4 && layout.chiplets().size() == 16,
              "spacing velocities are defined for the 16-chiplet "
              "organization only");
  TACOS_CHECK(param == 0 || param == 1,
              "param selects s1 (0) or s2 (1), got " << param);
  // make_org16_layout ring columns at fixed interposer edge B + 4w_c + 2l_g
  // with s3 = B - 2 s1 (Eq. 9):
  //   col0 = l_g                       -> d/ds1 = 0
  //   col1 = l_g + w_c + s1            -> d/ds1 = +1
  //   col2 = l_g + 2w_c + B - s1      -> d/ds1 = -1
  //   col3 = l_g + 3w_c + B           -> d/ds1 = 0
  // and the center 2x2 cluster at mid ± (s2 [+ w_c]) -> d/ds2 = ∓1.
  constexpr double ring_v[4] = {0.0, +1.0, -1.0, 0.0};
  std::vector<ChipletVelocity> vel(layout.chiplets().size());
  for (std::size_t ci = 0; ci < layout.chiplets().size(); ++ci) {
    const Chiplet& c = layout.chiplets()[ci];
    const int gi = c.grid_i, gj = c.grid_j;
    const bool center =
        (gi == 1 || gi == 2) && (gj == 1 || gj == 2);
    if (param == 0) {
      if (!center) vel[ci] = {ring_v[gi], ring_v[gj]};
    } else {
      if (center)
        vel[ci] = {gi == 1 ? -1.0 : +1.0, gj == 1 ? -1.0 : +1.0};
    }
  }
  return vel;
}

PowerMap translate_power_map(const PowerMap& pm,
                             const std::vector<int>& source_chiplet,
                             const ChipletLayout& from,
                             const ChipletLayout& to) {
  TACOS_CHECK(source_chiplet.size() == pm.sources.size(),
              "source ownership must be parallel to the power map");
  TACOS_CHECK(from.chiplets().size() == to.chiplets().size(),
              "layouts must have the same chiplet count");
  PowerMap out;
  out.sources.reserve(pm.sources.size());
  for (std::size_t si = 0; si < pm.sources.size(); ++si) {
    const HeatSource& s = pm.sources[si];
    const auto ci = static_cast<std::size_t>(source_chiplet[si]);
    TACOS_CHECK(ci < from.chiplets().size(),
                "source owner index " << ci << " out of range");
    const Rect& a = from.chiplets()[ci].rect;
    const Rect& b = to.chiplets()[ci].rect;
    out.add(Rect{s.rect.x + (b.x - a.x), s.rect.y + (b.y - a.y), s.rect.w,
                 s.rect.h},
            s.watts);
  }
  return out;
}

double peak_spacing_gradient(const ThermalModel& model,
                             const std::vector<double>& lambda,
                             const PowerMap& pm,
                             const std::vector<int>& source_chiplet,
                             const ChipletLayout& layout,
                             const std::vector<ChipletVelocity>& vel) {
  const std::vector<double> dcover =
      cover_sensitivity(model.grid(), layout, vel);
  // dT_peak/dθ = λᵀ(∂q/∂θ) − λᵀ(∂K/∂θ)T; conductance_sensitivity already
  // returns the −λᵀ(∂K/∂θ)T term with its sign folded in.
  return rhs_sensitivity(model, lambda, pm, source_chiplet, vel) +
         model.conductance_sensitivity(dcover);
}

}  // namespace tacos
