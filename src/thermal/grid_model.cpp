#include "thermal/grid_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/errors.hpp"
#include "obs/trace.hpp"

namespace tacos {

namespace {

/// Thermal resistance of a slab: length `len_mm` along the heat-flow
/// direction, cross-section `area_mm2`, conductivity k in W/(m·K).
/// Returns K/W.  (1e3 factor: mm/mm^2 = 1/mm = 1e3/m.)
double slab_resistance(double k, double len_mm, double area_mm2) {
  TACOS_ASSERT(k > 0 && area_mm2 > 0, "bad slab: k=" << k << " A=" << area_mm2);
  return len_mm / (k * area_mm2) * 1e3;
}

/// Convective conductance to ambient: h in W/(m^2 K), area in mm^2 → W/K.
double convection_conductance(double h, double area_mm2) {
  return h * area_mm2 * 1e-6;
}

/// Iteration-cap multiplier for the recovery ladder's raised-cap retry.
constexpr std::size_t kCapRaiseFactor = 4;

/// System size (unknowns) at which PrecondKind::kAuto selects the
/// multigrid preconditioner for steady-state solves.  Grid 32 at the
/// paper's layer stacks (32·32·8 + 12 = 8204 unknowns) is the smallest
/// production configuration and engages multigrid; the tiny grids the
/// unit tests use stay on Jacobi, whose setup is essentially free.
constexpr std::size_t kMultigridAutoThreshold = 8192;

}  // namespace

ThermalModel::ThermalModel(const ChipletLayout& layout, const LayerStack& stack,
                           const ThermalConfig& config)
    : grid_(layout.interposer(), config.grid_nx, config.grid_ny),
      config_(config) {
  TACOS_CHECK(!stack.layers.empty(), "empty layer stack");
  const std::size_t n_stack = stack.layers.size();
  n_layers_ = n_stack + 2;  // + spreader + sink
  source_layer_ = stack.source_layer();
  const std::size_t ncell = grid_.cell_count();
  n_grid_nodes_ = n_layers_ * ncell;
  first_lumped_ = n_grid_nodes_;
  const std::size_t n_nodes = n_grid_nodes_ + 12;

  // --- Per-cell chiplet coverage (for kChiplets layers and peak queries).
  source_cover_.assign(ncell, 0.0);
  for (const auto& c : layout.chiplets()) {
    grid_.rasterize(c.rect, [&](std::size_t ix, std::size_t iy, double frac) {
      source_cover_[grid_.index(ix, iy)] += frac;
    });
  }
  for (double& f : source_cover_) f = std::min(f, 1.0);

  // --- Effective per-cell conductivities for every gridded layer.
  const Material cu = materials::copper();
  std::vector<std::vector<double>> k_lat(n_layers_), k_vert(n_layers_);
  std::vector<double> thickness(n_layers_);
  for (std::size_t l = 0; l < n_stack; ++l) {
    const Layer& ly = stack.layers[l];
    thickness[l] = ly.thickness_mm;
    k_lat[l].resize(ncell);
    k_vert[l].resize(ncell);
    for (std::size_t i = 0; i < ncell; ++i) {
      const double f =
          ly.extent == LayerExtent::kChiplets ? source_cover_[i] : 1.0;
      k_lat[l][i] = f * ly.occupied.k_lateral + (1 - f) * ly.fill.k_lateral;
      k_vert[l][i] = f * ly.occupied.k_vertical + (1 - f) * ly.fill.k_vertical;
    }
  }
  const std::size_t spreader_l = n_stack;
  const std::size_t sink_l = n_stack + 1;
  thickness[spreader_l] = config_.package.spreader_thickness_mm;
  thickness[sink_l] = config_.package.sink_thickness_mm;
  k_lat[spreader_l].assign(ncell, cu.k_lateral);
  k_vert[spreader_l].assign(ncell, cu.k_vertical);
  k_lat[sink_l].assign(ncell, cu.k_lateral);
  k_vert[sink_l].assign(ncell, cu.k_vertical);

  // Retain the per-layer material parameters: ∂K/∂f assembly
  // (conductance_sensitivity) recomputes cell conductivities from
  // source_cover_ exactly as the loops above did.
  layer_sens_.resize(n_layers_);
  for (std::size_t l = 0; l < n_stack; ++l) {
    const Layer& ly = stack.layers[l];
    layer_sens_[l] = LayerSens{ly.thickness_mm,
                               ly.extent == LayerExtent::kChiplets,
                               ly.occupied.k_lateral, ly.fill.k_lateral,
                               ly.occupied.k_vertical, ly.fill.k_vertical};
  }
  for (const std::size_t l : {spreader_l, sink_l})
    layer_sens_[l] = LayerSens{thickness[l], false, cu.k_lateral,
                               cu.k_lateral, cu.k_vertical, cu.k_vertical};

  // --- Per-cell thermal capacitance (transient mode): C = c_v * volume.
  // 1e-9 converts mm^3 to m^3.
  capacitance_.assign(n_nodes, 0.0);
  {
    const double cell_vol_factor = grid_.cell_area() * 1e-9;
    for (std::size_t l = 0; l < n_stack; ++l) {
      const Layer& ly = stack.layers[l];
      for (std::size_t i = 0; i < ncell; ++i) {
        const double f =
            ly.extent == LayerExtent::kChiplets ? source_cover_[i] : 1.0;
        const double cv = f * ly.occupied.vol_heat_cap +
                          (1 - f) * ly.fill.vol_heat_cap;
        capacitance_[l * ncell + i] = cv * cell_vol_factor * ly.thickness_mm;
      }
    }
    for (std::size_t i = 0; i < ncell; ++i) {
      capacitance_[spreader_l * ncell + i] =
          cu.vol_heat_cap * cell_vol_factor *
          config_.package.spreader_thickness_mm;
      capacitance_[sink_l * ncell + i] =
          cu.vol_heat_cap * cell_vol_factor *
          config_.package.sink_thickness_mm;
    }
  }

  // --- Assemble the conductance network.
  CsrBuilder builder(n_nodes);
  ambient_g_.assign(n_nodes, 0.0);
  const double dx = grid_.dx(), dy = grid_.dy();
  const double cell_area = grid_.cell_area();

  // Lateral conductances inside each gridded layer.
  for (std::size_t l = 0; l < n_layers_; ++l) {
    const double t = thickness[l];
    for (std::size_t iy = 0; iy < grid_.ny(); ++iy) {
      for (std::size_t ix = 0; ix < grid_.nx(); ++ix) {
        const std::size_t c = grid_.index(ix, iy);
        if (ix + 1 < grid_.nx()) {
          const std::size_t e = grid_.index(ix + 1, iy);
          const double r = slab_resistance(k_lat[l][c], dx / 2, dy * t) +
                           slab_resistance(k_lat[l][e], dx / 2, dy * t);
          builder.add_conductance(node(l, ix, iy), node(l, ix + 1, iy), 1 / r);
        }
        if (iy + 1 < grid_.ny()) {
          const std::size_t nn = grid_.index(ix, iy + 1);
          const double r = slab_resistance(k_lat[l][c], dy / 2, dx * t) +
                           slab_resistance(k_lat[l][nn], dy / 2, dx * t);
          builder.add_conductance(node(l, ix, iy), node(l, ix, iy + 1), 1 / r);
        }
      }
    }
  }

  // Vertical conductances between consecutive gridded layers.
  for (std::size_t l = 0; l + 1 < n_layers_; ++l) {
    for (std::size_t iy = 0; iy < grid_.ny(); ++iy) {
      for (std::size_t ix = 0; ix < grid_.nx(); ++ix) {
        const std::size_t c = grid_.index(ix, iy);
        const double r =
            slab_resistance(k_vert[l][c], thickness[l] / 2, cell_area) +
            slab_resistance(k_vert[l + 1][c], thickness[l + 1] / 2, cell_area);
        builder.add_conductance(node(l, ix, iy), node(l + 1, ix, iy), 1 / r);
      }
    }
  }

  // --- Package periphery (lumped).  Ring widths from the scaling rules.
  const double w_int = grid_.domain().w;
  const double h_int = grid_.domain().h;
  const double sp_scale = config_.package.spreader_scale;
  const double sk_scale = config_.package.sink_scale;
  const double w_sp = w_int * sp_scale;                 // spreader edge
  const double w_sink = w_sp * sk_scale;                // sink edge
  const double ring_sp = (w_sp - w_int) / 2.0;          // spreader overhang
  const double ring_sink = (w_sink - w_sp) / 2.0;       // sink outer overhang
  const double t_sp = thickness[spreader_l];
  const double t_sink = thickness[sink_l];
  // Quadrant-ring segment areas (W, E, S, N segments are equal by symmetry).
  const double a_sp_per = (w_sp * w_sp - w_int * h_int) / 4.0;
  const double a_sink_outer = (w_sink * w_sink - w_sp * w_sp) / 4.0;

  // Lumped ids: 0..3 spreader periphery (W,E,S,N), 4..7 sink inner periphery,
  // 8..11 sink outer periphery.
  const auto sp_per = [&](int side) { return first_lumped_ + side; };
  const auto sink_in = [&](int side) { return first_lumped_ + 4 + side; };
  const auto sink_out = [&](int side) { return first_lumped_ + 8 + side; };

  // Degenerate packages (scale factors of 1, used by the 1D analytic
  // validation tests) have no overhang: skip the periphery entirely and
  // tie the unused lumped nodes weakly to ambient so the matrix stays SPD.
  const bool has_periphery = ring_sp > 1e-9 && ring_sink > 1e-9;
  if (!has_periphery) {
    for (int side = 0; side < 4; ++side) {
      ambient_g_[sp_per(side)] = 1e-6;
      ambient_g_[sink_in(side)] = 1e-6;
      ambient_g_[sink_out(side)] = 1e-6;
      capacitance_[sp_per(side)] = 1e-9;
      capacitance_[sink_in(side)] = 1e-9;
      capacitance_[sink_out(side)] = 1e-9;
    }
  }

  // Lateral: boundary grid cells ↔ periphery segments, for spreader & sink.
  // side 0 = west (ix=0), 1 = east, 2 = south (iy=0), 3 = north.
  const auto connect_boundary = [&](std::size_t layer, double t,
                                    double ring_w,
                                    const std::function<std::size_t(int)>& per) {
    for (std::size_t iy = 0; iy < grid_.ny(); ++iy) {
      const double rW =
          slab_resistance(cu.k_lateral, dx / 2, dy * t) +
          slab_resistance(cu.k_lateral, ring_w / 2, dy * t);
      builder.add_conductance(node(layer, 0, iy), per(0), 1 / rW);
      builder.add_conductance(node(layer, grid_.nx() - 1, iy), per(1), 1 / rW);
    }
    for (std::size_t ix = 0; ix < grid_.nx(); ++ix) {
      const double rS =
          slab_resistance(cu.k_lateral, dy / 2, dx * t) +
          slab_resistance(cu.k_lateral, ring_w / 2, dx * t);
      builder.add_conductance(node(layer, ix, 0), per(2), 1 / rS);
      builder.add_conductance(node(layer, ix, grid_.ny() - 1), per(3), 1 / rS);
    }
  };
  if (has_periphery) {
  connect_boundary(spreader_l, t_sp, ring_sp,
                   [&](int s) { return sp_per(s); });
  connect_boundary(sink_l, t_sink, ring_sp,
                   [&](int s) { return sink_in(s); });

  for (int side = 0; side < 4; ++side) {
    // Spreader periphery ↔ sink inner periphery (vertical, area = ring).
    const double r_vert =
        slab_resistance(cu.k_vertical, t_sp / 2, a_sp_per) +
        slab_resistance(cu.k_vertical, t_sink / 2, a_sp_per);
    builder.add_conductance(sp_per(side), sink_in(side), 1 / r_vert);

    // Sink inner ↔ sink outer periphery (lateral, radial flow).
    const double cross = w_sp * t_sink;  // segment side length × thickness
    const double r_lat = slab_resistance(
        cu.k_lateral, (ring_sp + ring_sink) / 2.0, cross);
    builder.add_conductance(sink_in(side), sink_out(side), 1 / r_lat);

    // Convection to ambient from both sink periphery rings.
    ambient_g_[sink_in(side)] =
        convection_conductance(config_.package.h_convection, a_sp_per);
    ambient_g_[sink_out(side)] =
        convection_conductance(config_.package.h_convection, a_sink_outer);

    // Thermal capacitance of the lumped copper periphery volumes.
    capacitance_[sp_per(side)] = cu.vol_heat_cap * a_sp_per * t_sp * 1e-9;
    capacitance_[sink_in(side)] = cu.vol_heat_cap * a_sp_per * t_sink * 1e-9;
    capacitance_[sink_out(side)] =
        cu.vol_heat_cap * a_sink_outer * t_sink * 1e-9;
  }
  }  // has_periphery

  // Convection from every sink grid cell.
  for (std::size_t iy = 0; iy < grid_.ny(); ++iy)
    for (std::size_t ix = 0; ix < grid_.nx(); ++ix)
      ambient_g_[node(sink_l, ix, iy)] =
          convection_conductance(config_.package.h_convection, cell_area);

  // Fold ambient conductances into the matrix diagonal and base RHS.
  rhs_base_.assign(n_nodes, 0.0);
  const double t_amb = config_.package.ambient_c;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    if (ambient_g_[i] > 0) {
      builder.add_conductance_to_reference(i, ambient_g_[i]);
      rhs_base_[i] = ambient_g_[i] * t_amb;
    }
  }

  matrix_ = builder.build();
  temperatures_.assign(n_nodes, t_amb);

  // --- Rasterization caches for tile / chiplet temperature queries.
  if (layout.has_tiles()) {
    const int n = layout.spec().tiles_per_side;
    tile_cells_.resize(static_cast<std::size_t>(n) * n);
    for (int ty = 0; ty < n; ++ty) {
      for (int tx = 0; tx < n; ++tx) {
        const Rect r = layout.tile_rect(tx, ty);
        auto& cells = tile_cells_[static_cast<std::size_t>(ty) * n + tx];
        double wsum = 0.0;
        grid_.rasterize(r, [&](std::size_t ix, std::size_t iy, double frac) {
          const double w = frac * cell_area / r.area();
          cells.emplace_back(node(source_layer_, ix, iy), w);
          wsum += w;
        });
        TACOS_ASSERT(wsum > 0.99, "tile (" << tx << "," << ty
                                           << ") not covered by grid");
        for (auto& [idx, w] : cells) w /= wsum;
      }
    }
  }
  chiplet_cells_.resize(layout.chiplets().size());
  for (std::size_t ci = 0; ci < layout.chiplets().size(); ++ci) {
    const Rect r = layout.chiplets()[ci].rect;
    double wsum = 0.0;
    grid_.rasterize(r, [&](std::size_t ix, std::size_t iy, double frac) {
      const double w = frac * cell_area / r.area();
      chiplet_cells_[ci].emplace_back(node(source_layer_, ix, iy), w);
      wsum += w;
    });
    TACOS_ASSERT(wsum > 0.99, "chiplet " << ci << " not covered by grid");
    for (auto& [idx, w] : chiplet_cells_[ci]) w /= wsum;
  }
}

std::vector<double> ThermalModel::build_rhs(const PowerMap& power) const {
  std::vector<double> rhs = rhs_base_;
  for (const auto& s : power.sources) {
    if (s.watts <= 0) continue;
    const double src_area = s.rect.area();
    TACOS_CHECK(src_area > 0, "zero-area heat source with positive power");
    double injected = 0.0;
    grid_.rasterize(s.rect, [&](std::size_t ix, std::size_t iy, double frac) {
      const double share = frac * grid_.cell_area() / src_area;
      rhs[node(source_layer_, ix, iy)] += s.watts * share;
      injected += s.watts * share;
    });
    TACOS_CHECK(injected > 0.999 * s.watts,
                "heat source extends outside the modeled domain (injected "
                    << injected << " of " << s.watts << " W)");
  }
  return rhs;
}

ThermalResult ThermalModel::make_result(const SolveResult& sr) const {
  ThermalResult out;
  out.solve_info = sr;
  double peak_cov = -1e300, peak_any_src = -1e300, peak_all = -1e300;
  const std::size_t base = source_layer_ * grid_.cell_count();
  for (std::size_t i = 0; i < grid_.cell_count(); ++i) {
    const double t = temperatures_[base + i];
    peak_any_src = std::max(peak_any_src, t);
    if (source_cover_[i] >= 0.5) peak_cov = std::max(peak_cov, t);
  }
  // Peak silicon temperature: prefer cells majority-covered by a chiplet
  // (partial cells mix chiplet and epoxy temperatures); fall back to the
  // layer max when the grid is too coarse for any cell to be half-covered.
  out.peak_c = peak_cov > -1e300 ? peak_cov : peak_any_src;
  for (double t : temperatures_) peak_all = std::max(peak_all, t);
  out.peak_anywhere_c = peak_all;
  return out;
}

const std::vector<double>& ThermalModel::adjoint_peak(AdjointInfo* info) {
  TACOS_CHECK(solved_, "adjoint_peak requires a solved steady state");
  static obs::SpanSite site("thermal.adjoint", "thermal");
  obs::TraceSpan span(site);

  // The adjoint right-hand side selects the argmax cell peak_c reports:
  // hottest majority-covered CMOS cell, falling back to the layer max
  // when the grid is too coarse for any cell to be half-covered.
  const std::size_t base = source_layer_ * grid_.cell_count();
  std::size_t peak = base;
  double best = -1e300;
  bool covered = false;
  for (std::size_t i = 0; i < grid_.cell_count(); ++i) {
    if (source_cover_[i] < 0.5) continue;
    covered = true;
    if (temperatures_[base + i] > best) {
      best = temperatures_[base + i];
      peak = base + i;
    }
  }
  if (!covered) {
    for (std::size_t i = 0; i < grid_.cell_count(); ++i) {
      if (temperatures_[base + i] > best) {
        best = temperatures_[base + i];
        peak = base + i;
      }
    }
  }

  std::vector<double> rhs(matrix_.rows(), 0.0);
  rhs[peak] = 1.0;
  if (adjoint_.size() != matrix_.rows()) {
    adjoint_.assign(matrix_.rows(), 0.0);
    adjoint_valid_ = false;
  }
  SolveOptions opts = config_.solve;
  // Fault schedules index *forward* solves; the adjoint neither consumes
  // the ledger's solve clock nor participates in injection, so fault-plan
  // targets stay stable whether or not refinement runs.
  opts.fault = {};
  if (steady_precond() == PrecondKind::kMultigrid)
    opts.preconditioner = multigrid_for_solve();

  const auto attempt = [&]() -> SolveResult {
    try {
      return solve_adjoint(matrix_, rhs, adjoint_, opts);
    } catch (const SolverError&) {
      return SolveResult{};
    }
  };
  SolveResult sr = attempt();
  if (!sr.converged) {
    // One cold restart: the warm-start field may belong to a different
    // layout state after heavy LRU churn.
    std::fill(adjoint_.begin(), adjoint_.end(), 0.0);
    sr = attempt();
  }
  if (!sr.converged) {
    adjoint_valid_ = false;
    throw ThermalError(ledger().solve_index, 1, sr.iterations,
                       sr.residual_norm, "adjoint solve did not converge");
  }
  adjoint_valid_ = true;
  if (info) {
    info->peak_node = peak;
    info->iterations = sr.iterations;
  }
  span.arg("iters", static_cast<std::int64_t>(sr.iterations));
  return adjoint_;
}

double ThermalModel::conductance_sensitivity(
    const std::vector<double>& dcover) const {
  TACOS_CHECK(solved_ && adjoint_valid_,
              "conductance_sensitivity requires solve() and adjoint_peak()");
  TACOS_CHECK(dcover.size() == grid_.cell_count(),
              "dcover must have one entry per grid cell");
  const double dx = grid_.dx(), dy = grid_.dy();
  const double cell_area = grid_.cell_area();

  // −λᵀ(∂K/∂f)T: every θ-dependent entry of K is an edge conductance
  // g = 1/(r_a + r_b) whose half-cell slab resistances move with the cell
  // conductivity k = f·k_occ + (1−f)·k_fill, so dr = −(r/k)·dk and
  // dg = −g²·(dr_a + dr_b); an edge contributes −dg(λ_a−λ_b)(T_a−T_b).
  double acc = 0.0;
  const auto edge = [&](std::size_t a, std::size_t b, double r_a, double dr_a,
                        double r_b, double dr_b) {
    const double g = 1.0 / (r_a + r_b);
    const double dg = -g * g * (dr_a + dr_b);
    acc -= dg * (adjoint_[a] - adjoint_[b]) *
           (temperatures_[a] - temperatures_[b]);
  };
  for (std::size_t l = 0; l < n_layers_; ++l) {
    const LayerSens& L = layer_sens_[l];
    if (L.chiplet) {
      // Lateral edges within a coverage-dependent layer.
      const double t = L.thickness;
      const double dk_lat = L.k_lat_occ - L.k_lat_fill;
      const auto k_lat_at = [&](std::size_t i) {
        const double f = source_cover_[i];
        return f * L.k_lat_occ + (1 - f) * L.k_lat_fill;
      };
      for (std::size_t iy = 0; iy < grid_.ny(); ++iy) {
        for (std::size_t ix = 0; ix < grid_.nx(); ++ix) {
          const std::size_t c = grid_.index(ix, iy);
          const double k_c = k_lat_at(c);
          if (ix + 1 < grid_.nx()) {
            const std::size_t e = grid_.index(ix + 1, iy);
            const double k_e = k_lat_at(e);
            const double r_c = slab_resistance(k_c, dx / 2, dy * t);
            const double r_e = slab_resistance(k_e, dx / 2, dy * t);
            edge(node(l, ix, iy), node(l, ix + 1, iy), r_c,
                 -r_c / k_c * dk_lat * dcover[c], r_e,
                 -r_e / k_e * dk_lat * dcover[e]);
          }
          if (iy + 1 < grid_.ny()) {
            const std::size_t nn = grid_.index(ix, iy + 1);
            const double k_n = k_lat_at(nn);
            const double r_c = slab_resistance(k_c, dy / 2, dx * t);
            const double r_n = slab_resistance(k_n, dy / 2, dx * t);
            edge(node(l, ix, iy), node(l, ix, iy + 1), r_c,
                 -r_c / k_c * dk_lat * dcover[c], r_n,
                 -r_n / k_n * dk_lat * dcover[nn]);
          }
        }
      }
    }
    // Vertical edges: only pairs touching a coverage-dependent layer.
    if (l + 1 >= n_layers_) continue;
    const LayerSens& U = layer_sens_[l + 1];
    if (!L.chiplet && !U.chiplet) continue;
    for (std::size_t iy = 0; iy < grid_.ny(); ++iy) {
      for (std::size_t ix = 0; ix < grid_.nx(); ++ix) {
        const std::size_t c = grid_.index(ix, iy);
        const double f_l = L.chiplet ? source_cover_[c] : 1.0;
        const double f_u = U.chiplet ? source_cover_[c] : 1.0;
        const double k_l = f_l * L.k_vert_occ + (1 - f_l) * L.k_vert_fill;
        const double k_u = f_u * U.k_vert_occ + (1 - f_u) * U.k_vert_fill;
        const double r_l = slab_resistance(k_l, L.thickness / 2, cell_area);
        const double r_u = slab_resistance(k_u, U.thickness / 2, cell_area);
        const double dr_l =
            L.chiplet ? -r_l / k_l * (L.k_vert_occ - L.k_vert_fill) * dcover[c]
                      : 0.0;
        const double dr_u =
            U.chiplet ? -r_u / k_u * (U.k_vert_occ - U.k_vert_fill) * dcover[c]
                      : 0.0;
        edge(node(l, ix, iy), node(l + 1, ix, iy), r_l, dr_l, r_u, dr_u);
      }
    }
  }
  return acc;
}

PrecondKind ThermalModel::steady_precond() const {
  switch (config_.solve.precond) {
    case PrecondKind::kJacobi: return PrecondKind::kJacobi;
    case PrecondKind::kMultigrid: return PrecondKind::kMultigrid;
    case PrecondKind::kAuto: break;
  }
  return matrix_.rows() >= kMultigridAutoThreshold ? PrecondKind::kMultigrid
                                                   : PrecondKind::kJacobi;
}

MultigridPreconditioner* ThermalModel::multigrid_for_solve() {
  if (!mg_) {
    static obs::SpanSite build_site("thermal.mg.build", "thermal");
    obs::TraceSpan span(build_site);
    const MultigridGeometry geom{grid_.nx(), grid_.ny(), n_layers_,
                                 matrix_.rows() - n_grid_nodes_};
    MultigridOptions mg_opts;
    mg_opts.mixed_precision = config_.solve.mg_mixed_precision;
    mg_ = std::make_unique<MultigridPreconditioner>(matrix_, geom, mg_opts);
    span.arg("levels", static_cast<std::int64_t>(mg_->level_count()));
    span.arg("rows", static_cast<std::int64_t>(matrix_.rows()));
    span.arg("coarse_rows", static_cast<std::int64_t>(
                                mg_->unknowns(mg_->level_count() - 1)));
  }
  return mg_.get();
}

SolveResult ThermalModel::attempt_solve(const std::vector<double>& rhs,
                                        std::size_t solve_index, int attempt) {
  SolveOptions opts = config_.solve;
  if (attempt == 2) opts.max_iterations *= kCapRaiseFactor;
  const bool forced_fail = opts.fault.pcg_should_fail(solve_index, attempt);
  if (forced_fail) {
    // A crippled run (two iterations, unreachable tolerance) stands in for
    // genuine divergence: it really mutates the iterate, so the restore
    // paths are exercised against a truly dirtied field.
    opts.max_iterations = std::min<std::size_t>(opts.max_iterations, 2);
    opts.rel_tolerance = 0.0;
  }
  // The multigrid hierarchy matches `matrix_`, so steady-state PCG rungs
  // inject it; the Gauss-Seidel rung (attempt 3) has no preconditioner.
  if (attempt != 3 && steady_precond() == PrecondKind::kMultigrid)
    opts.preconditioner = multigrid_for_solve();
  SolveResult sr = attempt == 3
                       ? solve_gauss_seidel(matrix_, rhs, temperatures_, opts)
                       : solve_pcg(matrix_, rhs, temperatures_, opts);
  if (forced_fail) sr.converged = false;
  return sr;
}

ThermalResult ThermalModel::solve(const PowerMap& power) {
  static obs::SpanSite solve_site("thermal.solve", "thermal");
  obs::TraceSpan span(solve_site);

  SolveLedger& led = ledger();
  const std::size_t idx = led.solve_index++;
  std::vector<double> rhs = build_rhs(power);
  if (config_.solve.fault.nan_rhs(idx))
    rhs[0] = std::numeric_limits<double>::quiet_NaN();
  // Input gate: reject non-finite power before the solver can smear it
  // through the warm-start field.  The field is untouched on this path.
  for (double v : rhs) {
    if (!std::isfinite(v)) {
      ++led.health.nonfinite_inputs;
      throw ThermalError(idx, 0, 0, 0.0,
                         "non-finite power input (rhs contains NaN/inf)");
    }
  }

  // Recovery ladder: warm start, then cold from ambient, then cold with a
  // raised iteration cap, then the Gauss-Seidel fallback.  A structural
  // solver breakdown (SolverError, e.g. a non-SPD pAp on a bad iterate)
  // escalates exactly like non-convergence.
  const std::vector<double> pre_solve = temperatures_;
  std::string last_error;
  // One span per ladder rung, so a trace shows exactly where the recovery
  // budget went for a misbehaving task.
  static obs::SpanSite rung_warm("thermal.rung.warm", "thermal");
  static obs::SpanSite rung_cold("thermal.rung.cold", "thermal");
  static obs::SpanSite rung_cap("thermal.rung.cap", "thermal");
  static obs::SpanSite rung_gs("thermal.rung.gs", "thermal");
  obs::SpanSite* const rung_sites[4] = {&rung_warm, &rung_cold, &rung_cap,
                                        &rung_gs};
  const auto try_attempt = [&](int attempt) {
    obs::TraceSpan rung(*rung_sites[attempt]);
    rung.arg("solve", static_cast<std::int64_t>(idx));
    try {
      return attempt_solve(rhs, idx, attempt);
    } catch (const SolverError& e) {
      last_error = e.what();
      return SolveResult{};
    }
  };

  SolveResult sr;
  try {
    sr = try_attempt(0);
    for (int attempt = 1; !sr.converged && attempt <= 3; ++attempt) {
      switch (attempt) {
        case 1: ++led.health.cold_restarts; break;
        case 2: ++led.health.cap_retries; break;
        default: ++led.health.gs_fallbacks; break;
      }
      // Discard the diverged iterate; every retry starts cold from ambient.
      std::fill(temperatures_.begin(), temperatures_.end(),
                config_.package.ambient_c);
      sr = try_attempt(attempt);
    }
  } catch (const CancelledError&) {
    // Cancellation is not a ladder rung: the abandoned attempt left a
    // partial iterate behind, so restore the last good field (the task may
    // be resumed, and a later solve must not warm-start from garbage).
    temperatures_ = pre_solve;
    throw;
  }
  if (!sr.converged) {
    ++led.health.solve_failures;
    temperatures_ = pre_solve;  // no warm-start poisoning for later solves
    throw ThermalError(
        idx, 4, sr.iterations, sr.residual_norm,
        last_error.empty()
            ? "solver did not converge after the full recovery ladder"
            : "recovery ladder exhausted; last solver error: " + last_error);
  }
  solved_ = true;
  if (obs::metrics_enabled()) {
    struct SolveMetrics {
      obs::Counter solves =
          obs::MetricsRegistry::global().counter("thermal.solves");
      obs::Histogram iters = obs::MetricsRegistry::global().histogram(
          "thermal.cg_iterations", obs::pow2_edges(1, 4096));
      obs::Histogram resid = obs::MetricsRegistry::global().histogram(
          "thermal.residual", obs::decade_edges(1e-12, 1.0));
    };
    static SolveMetrics m;
    m.solves.add();
    m.iters.observe(static_cast<double>(sr.iterations));
    m.resid.observe(sr.residual_norm);
  }
  span.arg("solve", static_cast<std::int64_t>(idx));
  span.arg("iters", static_cast<std::int64_t>(sr.iterations));
  return make_result(sr);
}

double ThermalModel::coarse_peak_estimate(const PowerMap& power) {
  static obs::SpanSite site("thermal.coarse", "thermal");
  obs::TraceSpan span(site);
  MultigridPreconditioner* const mg = multigrid_for_solve();
  SolveLedger& led = ledger();
  const std::size_t cidx = led.coarse_index++;
  span.arg("coarse_solve", static_cast<std::int64_t>(cidx));

  const std::vector<double> rhs = build_rhs(power);
  for (double v : rhs) {
    if (!std::isfinite(v))
      throw ThermalError(cidx, 0, 0, 0.0,
                         "non-finite power input to the coarse rung");
  }

  // The screening level: the first Galerkin coarse operator when the
  // hierarchy has one, the fine matrix itself otherwise (tiny test grids
  // that cannot be coarsened — the estimate is then simply a loose solve).
  const bool coarsened = mg->level_count() > 1;
  const CsrMatrix& Ac = mg->level_matrix(coarsened ? 1 : 0);
  std::vector<double> rc;
  if (coarsened) {
    const std::vector<std::size_t>& agg = mg->aggregates(0);
    rc.assign(Ac.rows(), 0.0);
    for (std::size_t i = 0; i < rhs.size(); ++i) rc[agg[i]] += rhs[i];
  } else {
    rc = rhs;
  }

  // Source-layer coverage on the screening level, built once per model:
  // coarse cover = mean fine cover over the aggregate, mirroring the
  // fine-level majority-coverage peak rule.
  const std::size_t cnx = mg->level_nx(coarsened ? 1 : 0);
  const std::size_t cny = mg->level_ny(coarsened ? 1 : 0);
  const std::size_t ccell = cnx * cny;
  if (coarse_cover_.empty()) {
    if (coarsened) {
      const std::vector<std::size_t>& agg = mg->aggregates(0);
      coarse_cover_.assign(ccell, 0.0);
      std::vector<double> counts(ccell, 0.0);
      const std::size_t fbase = source_layer_ * grid_.cell_count();
      const std::size_t cbase = source_layer_ * ccell;
      for (std::size_t i = 0; i < grid_.cell_count(); ++i) {
        const std::size_t c = agg[fbase + i] - cbase;
        coarse_cover_[c] += source_cover_[i];
        counts[c] += 1.0;
      }
      for (std::size_t c = 0; c < ccell; ++c) coarse_cover_[c] /= counts[c];
    } else {
      coarse_cover_ = source_cover_;
    }
  }

  if (coarse_temps_.size() != Ac.rows())
    coarse_temps_.assign(Ac.rows(), config_.package.ambient_c);

  SolveOptions opts = config_.solve;
  opts.preconditioner = nullptr;  // Jacobi inside solve_pcg; the hierarchy
  opts.precond = PrecondKind::kJacobi;  // belongs to the fine matrix
  // Screening accuracy: the estimate feeds a calibrated reject bound with
  // its own safety margin, so 1e-6 is plenty (and saves iterations).
  opts.rel_tolerance = std::max(opts.rel_tolerance, 1e-6);
  const bool forced_fail = opts.fault.coarse_should_fail(cidx);
  if (forced_fail) {
    opts.max_iterations = 2;
    opts.rel_tolerance = 0.0;
  }
  SolveResult sr = solve_pcg(Ac, rc, coarse_temps_, opts);
  if (forced_fail) sr.converged = false;
  if (!sr.converged) {
    // Reset the warm-start field: the failed iterate must not poison the
    // next screening solve.  No recovery ladder here — the caller's
    // recovery IS promotion to the next rung.
    std::fill(coarse_temps_.begin(), coarse_temps_.end(),
              config_.package.ambient_c);
    throw ThermalError(cidx, 1, sr.iterations, sr.residual_norm,
                       "coarse-rung screening solve did not converge");
  }
  span.arg("iters", static_cast<std::int64_t>(sr.iterations));

  double peak_cov = -1e300, peak_any = -1e300;
  const std::size_t cbase = source_layer_ * ccell;
  for (std::size_t c = 0; c < ccell; ++c) {
    const double t = coarse_temps_[cbase + c];
    peak_any = std::max(peak_any, t);
    if (coarse_cover_[c] >= 0.5) peak_cov = std::max(peak_cov, t);
  }
  return peak_cov > -1e300 ? peak_cov : peak_any;
}

void ThermalModel::reset_to_ambient() {
  std::fill(temperatures_.begin(), temperatures_.end(),
            config_.package.ambient_c);
  solved_ = true;  // the field is well-defined (ambient everywhere)
}

ThermalResult ThermalModel::step_transient(const PowerMap& power,
                                           double dt_s) {
  TACOS_CHECK(dt_s > 0, "transient step must be positive, got " << dt_s);
  if (dt_s != transient_dt_s_) {
    // Build (G + C/dt) once per step size: same off-diagonals as G, with
    // C/dt added on the diagonal.
    std::vector<std::size_t> row_ptr = matrix_.row_ptr();
    std::vector<std::size_t> col_idx = matrix_.col_idx();
    std::vector<double> values = matrix_.values();
    for (std::size_t i = 0; i < matrix_.rows(); ++i) {
      bool found = false;
      for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        if (col_idx[k] == i) {
          values[k] += capacitance_[i] / dt_s;
          found = true;
          break;
        }
      }
      TACOS_ASSERT(found, "row " << i << " has no diagonal entry");
    }
    transient_matrix_ = CsrMatrix(matrix_.rows(), std::move(row_ptr),
                                  std::move(col_idx), std::move(values));
    transient_dt_s_ = dt_s;
  }

  std::vector<double> rhs = build_rhs(power);
  for (std::size_t i = 0; i < rhs.size(); ++i)
    rhs[i] += capacitance_[i] / dt_s * temperatures_[i];
  // No recovery ladder here: the pre-step field *is* the simulation state,
  // and restarting a transient step from ambient would silently rewrite
  // history.  Restore the state and report instead.
  const std::vector<double> pre_step = temperatures_;
  SolveResult sr;
  try {
    // Transient steps always use the built-in Jacobi preconditioner: the
    // multigrid hierarchy is built for G, not for G + C/dt, and injecting
    // a mismatched hierarchy would break CG.  config_.solve carries a null
    // `preconditioner`, so no injection happens here even under
    // --precond=mg (which governs steady-state solves only).
    sr = solve_pcg(transient_matrix_, rhs, temperatures_, config_.solve);
  } catch (const CancelledError&) {
    temperatures_ = pre_step;  // cancelled mid-step: keep history intact
    throw;
  }
  if (!sr.converged) {
    ++ledger().health.solve_failures;
    temperatures_ = pre_step;
    throw ThermalError(ledger().solve_index, 1, sr.iterations,
                       sr.residual_norm,
                       "transient step did not converge (state restored)");
  }
  solved_ = true;
  return make_result(sr);
}

double ThermalModel::current_peak_c() const {
  TACOS_CHECK(solved_, "current_peak_c() before any solve or reset");
  return make_result(SolveResult{}).peak_c;
}

double ThermalModel::total_capacitance() const {
  double c = 0.0;
  for (double v : capacitance_) c += v;
  return c;
}

std::vector<double> ThermalModel::tile_temperatures() const {
  TACOS_CHECK(solved_, "tile_temperatures() before solve()");
  TACOS_CHECK(!tile_cells_.empty(), "layout carries no tiles");
  std::vector<double> out(tile_cells_.size(), 0.0);
  for (std::size_t t = 0; t < tile_cells_.size(); ++t)
    for (const auto& [idx, w] : tile_cells_[t]) out[t] += w * temperatures_[idx];
  return out;
}

std::vector<double> ThermalModel::chiplet_temperatures() const {
  TACOS_CHECK(solved_, "chiplet_temperatures() before solve()");
  std::vector<double> out(chiplet_cells_.size(), 0.0);
  for (std::size_t c = 0; c < chiplet_cells_.size(); ++c)
    for (const auto& [idx, w] : chiplet_cells_[c])
      out[c] += w * temperatures_[idx];
  return out;
}

std::vector<double> ThermalModel::layer_field(std::size_t layer) const {
  TACOS_CHECK(solved_, "layer_field() before solve()");
  TACOS_CHECK(layer < n_layers_, "layer " << layer << " out of range");
  const std::size_t base = layer * grid_.cell_count();
  return {temperatures_.begin() + static_cast<std::ptrdiff_t>(base),
          temperatures_.begin() +
              static_cast<std::ptrdiff_t>(base + grid_.cell_count())};
}

double ThermalModel::energy_balance_error(const PowerMap& power) const {
  TACOS_CHECK(solved_, "energy_balance_error() before solve()");
  const double p_in = power.total();
  if (p_in <= 0) return 0.0;
  double p_out = 0.0;
  for (std::size_t i = 0; i < ambient_g_.size(); ++i)
    p_out += ambient_g_[i] * (temperatures_[i] - config_.package.ambient_c);
  return std::abs(p_in - p_out) / p_in;
}

}  // namespace tacos
