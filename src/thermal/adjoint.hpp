#pragma once
/// \file adjoint.hpp
/// \brief Geometry chain of the adjoint spacing gradient: from rigid
///        chiplet motion to exact dT_peak/dθ.
///
/// The steady state solves K(θ) T = q(θ) where θ is a spacing parameter
/// of the Eq. 9 manifold.  With the peak selector e_p and the adjoint
/// K λ = e_p (K symmetric; ThermalModel::adjoint_peak), the exact
/// derivative is
///
///   dT_peak/dθ = λᵀ(∂q/∂θ) − λᵀ(∂K/∂θ)T.
///
/// Both partials flow through one scalar field: the per-cell chiplet
/// coverage fraction, whose derivative under rigid chiplet translation is
/// the derivative of a rectangle-overlap area (d_overlap_area — piecewise
/// linear in θ, so the chain is exact between the kinks where a chiplet
/// edge crosses a cell boundary).  The ∂K term is assembled by
/// ThermalModel::conductance_sensitivity from cover_sensitivity's per-cell
/// field; the ∂q term rasterizes each heat source's motion against the
/// adjoint field at *frozen* source watts.
///
/// Frozen watts: heat-source magnitudes themselves depend on geometry
/// (interposer mesh-link lengths feed network power) and on temperature
/// (leakage).  The gradient deliberately freezes both — it differentiates
/// the thermal operator at the current power map, which is the cheap and
/// stable descent direction; the refinement loop re-verifies every
/// accepted step with a full evaluation (leakage fixed point included),
/// so frozen-watts error can never contaminate a reported result.

#include <vector>

#include "floorplan/layout.hpp"
#include "geom/grid.hpp"
#include "thermal/grid_model.hpp"
#include "thermal/power_map.hpp"

namespace tacos {

/// Rigid translation velocity of one chiplet: mm of motion per unit
/// change of the spacing parameter θ.
struct ChipletVelocity {
  double vx = 0.0;
  double vy = 0.0;
};

/// d/dθ of the overlap area between the fixed `cell` and `r` translating
/// at (vx, vy).  Zero when the rectangles do not overlap; piecewise
/// constant in θ with kinks where an edge of `r` aligns with an edge of
/// `cell` (ties resolve deterministically; the gradient is one-sided
/// there).
double d_overlap_area(const Rect& cell, const Rect& r, double vx, double vy);

/// Per-grid-cell derivative of the chiplet coverage fraction under the
/// given per-chiplet velocities: dcover[i] = Σ_c d_overlap(cell_i,
/// rect_c)/cell_area.  Feeds ThermalModel::conductance_sensitivity.
std::vector<double> cover_sensitivity(const GridSpec& grid,
                                      const ChipletLayout& layout,
                                      const std::vector<ChipletVelocity>& vel);

/// λᵀ(∂q/∂θ) at frozen source watts: each source rect rides rigidly on
/// its chiplet (`source_chiplet`, from build_power_map), so its injected
/// power redistributes across grid cells as it moves.  `lambda` is the
/// adjoint field from ThermalModel::adjoint_peak.
double rhs_sensitivity(const ThermalModel& model,
                       const std::vector<double>& lambda, const PowerMap& pm,
                       const std::vector<int>& source_chiplet,
                       const std::vector<ChipletVelocity>& vel);

/// Chiplet velocities of the n=16 Eq. 9 manifold at fixed interposer
/// size.  `param` 0 differentiates in s1 *along the manifold* (s3 moves
/// by −2·ds1, so ring columns 1 and 2 translate by +1/−1 while the outer
/// columns stay pinned); `param` 1 differentiates in s2 (the four center
/// chiplets spread from the interposer midlines).  Velocities are read
/// from each chiplet's (grid_i, grid_j) identity, matching
/// make_org16_layout's placement formulas.
std::vector<ChipletVelocity> org16_spacing_velocities(
    const ChipletLayout& layout, int param);

/// Rebuild `pm` for a perturbed layout by translating every source
/// rigidly with its owning chiplet, keeping watts frozen — the finite-
/// difference twin of the frozen-watts gradient (used by tests and by any
/// caller comparing adjoint gradients against central differences).
PowerMap translate_power_map(const PowerMap& pm,
                             const std::vector<int>& source_chiplet,
                             const ChipletLayout& from,
                             const ChipletLayout& to);

/// Full chain: exact dT_peak/dθ at `model`'s current solved state, given
/// the adjoint field and the power map the state was solved with.
double peak_spacing_gradient(const ThermalModel& model,
                             const std::vector<double>& lambda,
                             const PowerMap& pm,
                             const std::vector<int>& source_chiplet,
                             const ChipletLayout& layout,
                             const std::vector<ChipletVelocity>& vel);

}  // namespace tacos
