#pragma once
/// \file cost_model.hpp
/// \brief Manufacturing cost model for 2.5D systems — Eqs. (1)–(4) of the
///        paper, following Stow et al. [10].
///
/// The model computes dies-per-wafer (Eq. 1), clustered-defect yield
/// (Eq. 2), per-die cost for CMOS chiplets and the passive interposer
/// (Eq. 3), and the assembled 2.5D system cost including bonding yield
/// (Eq. 4).  Parameters default to Table II's values.
///
/// Unit note: Table II prints the defect density as "0.25/mm^2", but
/// Eq. (2) only reproduces the paper's in-text numbers (27x cost increase
/// for growing a single chip from 20mm to 40mm; 30–42% cost saving at the
/// minimal interposer; interposer ≈ 30% of 2.5D system cost) when D0 is in
/// defects/cm^2 — the unit Stow et al. use.  This model therefore takes D0
/// in cm^-2.  See DESIGN.md §1.

#include "common/check.hpp"

namespace tacos {

/// Parameters of the cost model (Table II defaults).
struct CostParams {
  double wafer_diameter_mm = 300.0;      ///< φ_wafer (CMOS)
  double wafer_diameter_int_mm = 300.0;  ///< φ_wafer_int (interposer)
  double defect_density_cm2 = 0.25;      ///< D0, defects per cm^2
  double clustering_alpha = 3.0;         ///< α, defect clustering parameter
  double interposer_yield = 0.98;        ///< Y_int [26]
  double wafer_cost = 5000.0;            ///< C_wafer, $ per CMOS wafer [25]
  double wafer_cost_int = 500.0;         ///< C_wafer_int, $ per interposer wafer
  double bond_yield = 0.99;              ///< Y_bond per chiplet bond [10]
  /// Per-chiplet bonding cost [27].  Not stated numerically in the paper;
  /// calibrated (see DESIGN.md) so the 16-chiplet minimal-interposer system
  /// achieves the paper's 36% cost saving.
  double bond_cost = 0.13;

  void validate() const {
    TACOS_CHECK(wafer_diameter_mm > 0 && wafer_diameter_int_mm > 0,
                "wafer diameters must be positive");
    TACOS_CHECK(defect_density_cm2 >= 0, "defect density cannot be negative");
    TACOS_CHECK(clustering_alpha > 0, "alpha must be positive");
    TACOS_CHECK(interposer_yield > 0 && interposer_yield <= 1 &&
                    bond_yield > 0 && bond_yield <= 1,
                "yields must be in (0, 1]");
  }
};

/// Eq. (1): gross dies per wafer for die area `die_area_mm2` on a wafer of
/// diameter `wafer_diameter_mm` (area term minus edge-loss term).
double dies_per_wafer(double die_area_mm2, double wafer_diameter_mm);

/// Eq. (2): negative-binomial (clustered-defect) die yield.
double cmos_yield(double die_area_mm2, const CostParams& p = {});

/// Eq. (3), CMOS branch: cost of one known-good CMOS die of the given area.
double cmos_die_cost(double die_area_mm2, const CostParams& p = {});

/// Eq. (3), interposer branch: cost of one passive interposer die.
double interposer_cost(double interposer_area_mm2, const CostParams& p = {});

/// Cost of the 2D baseline: a single monolithic chip (Eq. 3 applied to the
/// full chip area).
double single_chip_cost(double chip_area_mm2, const CostParams& p = {});

/// Eq. (4): assembled 2.5D system cost — n chiplets of area
/// `chiplet_area_mm2` bonded to an interposer of area `interposer_area_mm2`,
/// divided by the compound bonding yield Y_bond^n (known good dies).
double system_cost_25d(int n_chiplets, double chiplet_area_mm2,
                       double interposer_area_mm2, const CostParams& p = {});

/// Full cost breakdown, for reporting and examples.
struct CostBreakdown {
  double chiplet_each = 0.0;    ///< one CMOS chiplet, $
  double chiplets_total = 0.0;  ///< all n chiplets, $
  double interposer = 0.0;      ///< interposer die, $
  double bonding = 0.0;         ///< n * bond_cost, $
  double bond_yield_factor = 0.0;  ///< Y_bond^n
  double total = 0.0;           ///< Eq. (4) result, $
};

CostBreakdown cost_breakdown_25d(int n_chiplets, double chiplet_area_mm2,
                                 double interposer_area_mm2,
                                 const CostParams& p = {});

}  // namespace tacos
