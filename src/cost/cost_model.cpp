#include "cost/cost_model.hpp"

#include <cmath>
#include <numbers>

namespace tacos {

double dies_per_wafer(double die_area_mm2, double wafer_diameter_mm) {
  TACOS_CHECK(die_area_mm2 > 0, "die area must be positive");
  const double r = wafer_diameter_mm / 2.0;
  const double n = std::numbers::pi * r * r / die_area_mm2 -
                   std::numbers::pi * wafer_diameter_mm /
                       std::sqrt(2.0 * die_area_mm2);
  TACOS_CHECK(n >= 1.0, "die of " << die_area_mm2
                                  << " mm^2 does not fit the wafer");
  return n;
}

double cmos_yield(double die_area_mm2, const CostParams& p) {
  p.validate();
  // Eq. (2) with D0 in cm^-2 (see file comment): A * D0 needs area in cm^2.
  const double area_cm2 = die_area_mm2 / 100.0;
  return std::pow(
      1.0 + area_cm2 * p.defect_density_cm2 / p.clustering_alpha,
      -p.clustering_alpha);
}

double cmos_die_cost(double die_area_mm2, const CostParams& p) {
  return p.wafer_cost /
         (dies_per_wafer(die_area_mm2, p.wafer_diameter_mm) *
          cmos_yield(die_area_mm2, p));
}

double interposer_cost(double interposer_area_mm2, const CostParams& p) {
  p.validate();
  return p.wafer_cost_int /
         (dies_per_wafer(interposer_area_mm2, p.wafer_diameter_int_mm) *
          p.interposer_yield);
}

double single_chip_cost(double chip_area_mm2, const CostParams& p) {
  return cmos_die_cost(chip_area_mm2, p);
}

CostBreakdown cost_breakdown_25d(int n_chiplets, double chiplet_area_mm2,
                                 double interposer_area_mm2,
                                 const CostParams& p) {
  TACOS_CHECK(n_chiplets >= 1, "need at least one chiplet");
  CostBreakdown b;
  b.chiplet_each = cmos_die_cost(chiplet_area_mm2, p);
  b.chiplets_total = n_chiplets * b.chiplet_each;
  b.interposer = interposer_cost(interposer_area_mm2, p);
  b.bonding = n_chiplets * p.bond_cost;
  b.bond_yield_factor = std::pow(p.bond_yield, n_chiplets);
  b.total =
      (b.chiplets_total + b.interposer + b.bonding) / b.bond_yield_factor;
  return b;
}

double system_cost_25d(int n_chiplets, double chiplet_area_mm2,
                       double interposer_area_mm2, const CostParams& p) {
  return cost_breakdown_25d(n_chiplets, chiplet_area_mm2, interposer_area_mm2,
                            p)
      .total;
}

}  // namespace tacos
