#pragma once
/// \file metrics.hpp
/// \brief Lock-cheap metrics registry: counters, gauges and fixed-bucket
///        histograms with per-thread shards merged at scrape.
///
/// The evaluation engine's hot path must pay (near) nothing for
/// instrumentation when it is off and almost nothing when it is on, so the
/// registry follows the same pattern as EvalStats / RunHealth: every
/// thread writes into its **own shard** (guarded by a mutex that is never
/// contended on the write path — only the scraper ever takes somebody
/// else's shard lock) and shards are **merged at scrape time** in shard-
/// creation order.  Counter and histogram-bucket merges are integer /
/// exact-double sums, so scraped totals are identical at any thread count;
/// gauges are last-writer-wins via a global sequence clock.
///
/// Everything is gated on one process-wide flag: when
/// `metrics_enabled() == false` (the default), `add()` / `set()` /
/// `observe()` are a single relaxed atomic load and a branch.  Handles
/// (`Counter`, `Gauge`, `Histogram`) are cheap value types resolved once —
/// instrumentation sites cache them in function-local statics.
///
/// Exporters: `to_text()` for consoles, `to_json()` for tooling (one
/// metric per line — the strict line format `preload_from_json` parses
/// back so a resumed `--run-dir` sweep accumulates into the same
/// observability record; see docs/OBSERVABILITY.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tacos::obs {

/// Process-wide metrics switch (off by default; near-zero disabled cost).
bool metrics_enabled();
void set_metrics_enabled(bool on);

class MetricsRegistry;

/// Monotonic counter handle.  Copyable; valid as long as its registry.
class Counter {
 public:
  Counter() = default;
  /// No-op when metrics are disabled.
  void add(double v = 1.0);

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t id_ = 0;
};

/// Last-writer-wins gauge handle.
class Gauge {
 public:
  Gauge() = default;
  void set(double v);

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t id_ = 0;
};

/// Fixed-bucket histogram handle.  A value lands in the first bucket whose
/// upper edge is >= value (`le` semantics); values above the last edge
/// land in the implicit overflow bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::size_t id) : reg_(reg), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t id_ = 0;
};

/// Power-of-two bucket edges: first, first*2, ... up to and including the
/// first value >= last.
std::vector<double> pow2_edges(double first, double last);
/// Decade bucket edges: first, first*10, ... up to >= last.
std::vector<double> decade_edges(double first, double last);

/// Scraped state of one histogram.
struct HistogramSnapshot {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;  ///< edges.size() + 1 (overflow last)
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Merged view of every metric, in registration order per type.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumentation site uses.
  static MetricsRegistry& global();

  /// Handle registration (idempotent by name; thread-safe).  Registering
  /// an existing name returns the same underlying metric; a histogram
  /// re-registered with different edges keeps the original edges.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> edges);

  /// Merge every thread's shard (shard-creation order) into one snapshot.
  MetricsSnapshot snapshot() const;

  /// Human-readable export (one metric per line).
  std::string to_text() const;
  /// Machine-readable export: `{"metrics":[` one JSON object per line
  /// `]}`.  Strict line format — `preload_from_json` parses it back.
  std::string to_json() const;

  /// Accumulate a previous run's `to_json()` output into a dedicated
  /// preload shard, so the next export carries old + new totals (the
  /// `--run-dir` resume path).  Unknown lines are skipped; returns the
  /// number of metrics loaded.
  std::size_t preload_from_json(const std::string& json);

  /// Zero every shard's values (definitions and handles stay valid).
  void reset_values();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct HistCells {
    std::vector<std::uint64_t> counts;  // sized edges+1 on first touch
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  /// One thread's private slice of every metric.  The owning thread locks
  /// `mu` on every write; only the scraper ever contends.
  struct Shard {
    std::mutex mu;
    std::vector<double> counters;
    std::vector<double> gauge_vals;
    std::vector<std::uint64_t> gauge_seq;
    std::vector<HistCells> hists;
  };

  Shard& shard_for_this_thread();
  Shard& preload_shard();

  void counter_add(std::size_t id, double v);
  void gauge_set(std::size_t id, double v);
  void hist_observe(std::size_t id, double v);

  const std::uint64_t uid_;  ///< distinguishes registries in thread caches

  mutable std::mutex mu_;  ///< guards definitions and the shard list
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  /// Deque: element addresses stay stable across registrations, so the
  /// observe path can read edges without holding the registry lock.
  std::deque<std::vector<double>> hist_edges_;
  std::map<std::string, std::size_t> counter_ids_, gauge_ids_, hist_ids_;
  std::vector<std::unique_ptr<Shard>> shards_;  // scrape merges in this order
  Shard* preload_shard_ = nullptr;              // owned via shards_

  std::atomic<std::uint64_t> gauge_clock_{0};  ///< last-writer-wins ordering
};

}  // namespace tacos::obs
