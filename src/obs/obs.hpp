#pragma once
/// \file obs.hpp
/// \brief Front door of the instrumentation layer: flag parsing, artifact
///        publication, and RunHealth -> metrics bridging.
///
/// Every entry point (tacos_cli and each bench main) owns one `ObsOptions`
/// and feeds it its argv:
///
///   obs::ObsOptions obs;
///   for (each arg) if (obs.parse_flag(arg)) continue;
///   obs.finalize(run_dir, resume);   // default paths, enable, preload
///   ... run ...
///   obs.publish();                   // AtomicFile into --run-dir
///
/// `--metrics[=FILE]` and `--trace[=FILE]` are off by default; bare forms
/// default to `metrics.json` / `trace.json` inside `--run-dir` (next to
/// the journal) or the working directory without one.  On `--resume` the
/// previous artifacts are preloaded once at startup, so `publish()` writes
/// one continuous observability record per run directory no matter how
/// many times the sweep was interrupted.  See docs/OBSERVABILITY.md.

#include <string>

#include "common/run_health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tacos::obs {

/// Per-process observability configuration, parsed from the command line.
struct ObsOptions {
  bool metrics = false;      ///< `--metrics` seen
  bool trace = false;        ///< `--trace` seen
  std::string metrics_path;  ///< explicit `=FILE`, else set by finalize()
  std::string trace_path;

  /// When non-empty, this process is one shard of a multi-process run
  /// (e.g. "w0" for fabric worker slot 0, "serve" for the server):
  /// finalize() forces the artifact paths to `metrics-<suffix>.json` /
  /// `trace-<suffix>.json` inside the run dir — overriding even explicit
  /// `=FILE` paths inherited through a re-exec'd argv, so a worker can
  /// never clobber the supervisor's artifact — and always preloads, so a
  /// restarted incarnation splices onto its predecessor's shard.
  /// `tacos_cli trace-merge` joins the shards into one timeline.
  std::string shard_suffix;

  /// Trace context inherited from a parent process (the internal
  /// `--trace-ctx=<trace>:<span>` flag fabric supervisors pass to
  /// workers); applied as the process ambient context by finalize().
  TraceContext inherited_ctx;

  /// Consume one argv token; returns false when the flag isn't ours.
  bool parse_flag(const std::string& arg);

  /// Usage fragment for --help text.
  static const char* usage() { return " [--metrics[=FILE]] [--trace[=FILE]]"; }

  /// Resolve default paths (into `run_dir` when given), flip the global
  /// enable switches, and — when `resume` is set — preload the previous
  /// artifacts so the next publish() extends them.  Call exactly once,
  /// after flag parsing and before any instrumented work.
  void finalize(const std::string& run_dir = "", bool resume = false);

  /// Atomically write the enabled artifacts.  Best-effort: failures are
  /// reported on stderr, never thrown (publication must not turn a
  /// finished sweep into a failed one).  Returns true when everything
  /// requested was written.
  bool publish() const;

  bool any() const { return metrics || trace; }
};

/// Record a run's RunHealth counters into the global registry as
/// `health.<field>` counters, so the metrics artifact carries the same
/// ledger the console summary prints.  Call once per run with the final
/// merged health (counters add — resumed runs accumulate across restarts
/// via the preloaded artifact).
void record_run_health(const RunHealth& h);

}  // namespace tacos::obs
