#pragma once
/// \file trace.hpp
/// \brief Structured tracing: RAII spans on thread-local stacks, exported
///        as Chrome `trace_event` JSON (chrome://tracing / Perfetto).
///
/// Every instrumentation point declares one function-local `SpanSite`
/// (static — resolved once) and opens a `TraceSpan` on it.  When both
/// tracing and metrics are off the span constructor is two relaxed atomic
/// loads and a branch; nothing is allocated.  When on, the span:
///
///  * pushes itself on a thread-local stack so nesting is tracked,
///  * on destruction emits one complete ("ph":"X") Chrome trace event into
///    the calling thread's private buffer (merged at export — same
///    contention-free pattern as the metrics shards), and
///  * feeds the metrics registry with three counters per site —
///    `span.<name>.total_s` (inclusive), `span.<name>.self_s` (exclusive:
///    duration minus time spent in child spans) and `span.<name>.calls` —
///    so the metrics file alone answers "where did the time go": the
///    self-times of all spans under a root span sum to ~the root's total.
///
/// Export format (strict, line-oriented — `Tracer::preload` parses it back
/// so a resumed `--run-dir` sweep appends to the same trace):
///
///   {"displayTimeUnit":"ms","otherData":{"droppedEvents":N},
///   "traceEvents":[
///   {"name":"...","cat":"...","ph":"X","ts":1,"dur":2,"pid":0,"tid":1,"args":{}},
///   ...
///   ]}
///
/// Timestamps are microseconds on the process steady clock; on resume the
/// clock is offset past the previous run's last event so the spliced
/// timeline stays monotonic in the viewer.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tacos::obs {

/// Process-wide tracing switch (off by default; near-zero disabled cost).
bool trace_enabled();
void set_trace_enabled(bool on);

/// A trace/span-id pair identifying "who asked for this work".  A zero
/// trace id means "untraced": codecs omit the pair entirely so untraced
/// artifacts stay byte-identical to pre-trace-context builds.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext& o) const {
    return trace_id == o.trace_id && span_id == o.span_id;
  }
};

/// The context new spans (and outgoing requests) should chain from, in
/// priority order: the innermost open traced span on this thread, then the
/// thread ambient set by `ScopedTraceContext` (if no traced span opened
/// since it was installed), then the process ambient.  Returns a zero
/// context when tracing is disabled — callers need no extra guard.
TraceContext current_trace_context();

/// Process ambient context.  Set explicitly in child processes (fabric
/// workers receive the supervisor's context via an internal `--trace-ctx`
/// flag); lazily minted from pid + clock the first time a traced span needs
/// a trace id.  Trace ids never reach journals, so the mint being
/// non-deterministic is harmless.
TraceContext process_trace_context();
void set_process_trace_context(const TraceContext& ctx);

/// Render "trace:span" as zero-padded hex (the `--trace-ctx=` wire form)
/// and parse it back.  parse accepts only the exact emitted form.
std::string trace_context_string(const TraceContext& ctx);
bool parse_trace_context(const std::string& s, TraceContext* out);

/// RAII thread-ambient context: while alive (and until a traced span opens
/// under it), `current_trace_context()` returns `ctx`.  The server installs
/// one per request so the handler's spans chain to the caller.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
  std::size_t prev_depth_ = 0;
};

class TraceSpan;

/// Collects finished span events in per-thread buffers; merged at export.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every TraceSpan emits into.
  static Tracer& global();

  /// Microseconds since tracer construction (plus any resume offset).
  std::uint64_t now_us() const;

  /// Append one complete ("X") event to the calling thread's buffer.
  /// `args_json` is the inner object body without braces (may be empty).
  void emit_complete(const char* name, const char* cat, std::uint64_t ts_us,
                     std::uint64_t dur_us, const std::string& args_json);

  /// Full Chrome trace_event JSON document (see file header for format).
  std::string to_json() const;

  /// Splice a previous run's `to_json()` output in front of this run's
  /// events and shift our clock past its last event (the `--run-dir`
  /// resume path).  Returns the number of events loaded.
  std::size_t preload(const std::string& json);

  /// Events currently buffered (preloaded + new, excluding dropped).
  std::size_t event_count() const;
  /// Events discarded because the buffer cap was reached.
  std::uint64_t dropped_events() const;

  /// Wall-clock milliseconds (Unix epoch) corresponding to `ts == 0`;
  /// exported as `otherData.epochMs` so `obs::merge` can align shards
  /// emitted by different processes onto one timeline.  On preload the
  /// spliced file's epoch is adopted, so resumed timelines keep one base.
  std::uint64_t wall_epoch_ms() const;

  /// Drop every buffered event and reset the clock offset (tests).
  void reset();

  /// Buffer cap: beyond this many events new ones are counted as dropped
  /// so a runaway sweep cannot exhaust memory through its own trace.
  static constexpr std::size_t kMaxEvents = 1u << 21;

 private:
  /// One thread's private event buffer.  The owning thread locks `mu` on
  /// every emit; only the exporter ever contends.
  struct ThreadBuf {
    std::mutex mu;
    std::uint32_t tid = 0;  ///< small sequential id, stable per thread
    std::vector<std::string> lines;
    std::uint64_t dropped = 0;
  };

  ThreadBuf& buf_for_this_thread();

  const std::uint64_t uid_;  ///< distinguishes tracers in thread caches
  const std::uint64_t epoch_ns_;

  mutable std::mutex mu_;  ///< guards bufs_ and the preload state
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::vector<std::string> preloaded_lines_;
  std::uint64_t preloaded_dropped_ = 0;

  std::atomic<std::uint64_t> ts_offset_us_{0};  ///< resume splice shift
  std::atomic<std::size_t> approx_events_{0};
  std::atomic<std::uint64_t> wall_epoch_ms_{0};  ///< wall clock at ts == 0
};

/// One named instrumentation point.  Declare as a function-local static so
/// the metric handles resolve once:
///
///   static obs::SpanSite site("thermal.solve", "thermal");
///   obs::TraceSpan span(site);
///   span.arg("rung", rung_name);
class SpanSite {
 public:
  explicit SpanSite(const char* name, const char* cat = "tacos")
      : name_(name), cat_(cat) {}
  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  const char* name() const { return name_; }
  const char* cat() const { return cat_; }

 private:
  friend class TraceSpan;
  void resolve_metrics();  ///< lazy, once; registers the three counters

  const char* name_;
  const char* cat_;
  std::once_flag once_;
  Counter total_s_, self_s_, calls_;
};

/// RAII span: times a scope, tracks nesting per thread, emits the trace
/// event and site metrics on destruction.  Inert (and cheap) when both
/// tracing and metrics are disabled.
class TraceSpan {
 public:
  explicit TraceSpan(SpanSite& site);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when this span is recording (either backend enabled at entry).
  bool active() const { return active_; }

  /// This span's identity in the distributed trace ({0,0} when the trace
  /// backend was off at entry).  Hand it to outgoing work (lease claims,
  /// service requests) so child processes chain to this span.
  TraceContext context() const { return {trace_id_, span_id_}; }

  /// Attach a key/value to the trace event's `args` object.  No-ops when
  /// inactive or when only metrics are enabled (args exist only in the
  /// trace); call sites don't need their own guards.
  void arg(const char* key, const std::string& value);
  void arg(const char* key, const char* value);
  void arg(const char* key, double value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, int value) { arg(key, static_cast<std::int64_t>(value)); }
  void arg(const char* key, std::size_t value) {
    arg(key, static_cast<std::int64_t>(value));
  }

 private:
  friend TraceContext current_trace_context();

  SpanSite* site_ = nullptr;
  bool active_ = false;
  bool tracing_ = false;  ///< trace backend was on at entry
  std::uint64_t t0_us_ = 0;
  std::uint64_t children_us_ = 0;  ///< children add their duration here
  std::uint64_t trace_id_ = 0;     ///< inherited from the parent context
  std::uint64_t span_id_ = 0;      ///< minted per span when tracing
  std::uint64_t parent_span_ = 0;  ///< parent context's span id (0 = root)
  std::string args_;               ///< inner JSON body, comma-joined
};

/// Append `"key":"escaped"` (comma-prefixed if needed) to an args body.
void append_json_kv(std::string& body, const char* key, const std::string& value);
void append_json_kv(std::string& body, const char* key, double value);
void append_json_kv(std::string& body, const char* key, std::int64_t value);

}  // namespace tacos::obs
