#include "obs/merge.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace tacos::obs {

namespace {

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extract the raw text of `"key":<value>` from one line of our own strict
/// trace format (value ends at the next top-level ',' or '}').  Also
/// reports the value's [begin, end) span for in-place rewriting.
bool find_raw_span(const std::string& line, const char* key, std::string* out,
                   std::size_t* begin, std::size_t* end) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  int depth = 0;
  bool in_str = false;
  std::size_t stop = pos;
  for (; stop < line.size(); ++stop) {
    const char c = line[stop];
    if (in_str) {
      if (c == '\\') {
        ++stop;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (depth == 0) break;
      --depth;
    } else if (c == ',' && depth == 0) {
      break;
    }
  }
  *out = line.substr(pos, stop - pos);
  if (begin) *begin = pos;
  if (end) *end = stop;
  return true;
}

bool find_raw(const std::string& line, const char* key, std::string* out) {
  return find_raw_span(line, key, out, nullptr, nullptr);
}

/// Replace the raw value of a numeric field in place; false when absent.
bool replace_num_field(std::string* line, const char* key,
                       std::uint64_t value) {
  std::string raw;
  std::size_t begin = 0, end = 0;
  if (!find_raw_span(*line, key, &raw, &begin, &end)) return false;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  line->replace(begin, end - begin, buf);
  return true;
}

/// One parsed shard, events still as raw JSON lines.
struct ParsedShard {
  TraceShard info;
  std::uint64_t epoch_ms = 0;
  std::uint64_t dropped = 0;
  std::vector<std::string> lines;
};

/// Tolerant line-wise parse of one shard: every complete event line is
/// kept; a missing "]}" terminator flags the shard torn.
ParsedShard parse_shard(const std::string& dir_path, TraceShard info) {
  ParsedShard out;
  out.info = std::move(info);
  const std::string body = read_whole_file(dir_path + "/" + out.info.file);
  std::string raw;
  if (find_raw(body, "epochMs", &raw))
    out.epoch_ms = std::strtoull(raw.c_str(), nullptr, 10);
  if (find_raw(body, "droppedEvents", &raw))
    out.dropped = std::strtoull(raw.c_str(), nullptr, 10);

  const std::string open = "\"traceEvents\":[";
  std::size_t pos = body.find(open);
  if (pos == std::string::npos) {
    out.info.torn = true;
    return out;
  }
  pos += open.size();
  bool terminated = false;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    const bool complete_line = eol != std::string::npos;
    if (!complete_line) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.back() == ',' || line.back() == '\r' ||
                             line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == ']') {
      terminated = true;
      break;
    }
    if (line[0] != '{' || line.back() != '}') continue;  // torn fragment
    if (!complete_line) continue;  // unterminated final line: drop it
    out.lines.push_back(std::move(line));
  }
  out.info.torn = !terminated;
  out.info.events = out.lines.size();
  return out;
}

/// Stable shard identity: which files we merge and the pid each one gets.
/// Worker k keeps pid 2+k no matter which other shards exist, so reruns
/// and resumed runs agree on process naming.
bool classify_trace_shard(const std::string& name, TraceShard* out) {
  if (name == "trace.json") {
    *out = {name, "supervisor", 0, 0, false};
    return true;
  }
  if (name == "trace-serve.json") {
    *out = {name, "server", 1, 0, false};
    return true;
  }
  const std::string worker_prefix = "trace-w";
  if (name.rfind(worker_prefix, 0) == 0 &&
      name.size() > worker_prefix.size() + 5 &&
      name.compare(name.size() - 5, 5, ".json") == 0) {
    const std::string idx =
        name.substr(worker_prefix.size(),
                    name.size() - worker_prefix.size() - 5);
    if (idx.empty() ||
        idx.find_first_not_of("0123456789") != std::string::npos)
      return false;
    const unsigned long k = std::strtoul(idx.c_str(), nullptr, 10);
    *out = {name, "worker w" + idx, static_cast<std::uint32_t>(2 + k), 0,
            false};
    return true;
  }
  return false;
}

bool is_metrics_shard(const std::string& name) {
  if (name == "metrics.json" || name == "metrics-serve.json") return true;
  const std::string worker_prefix = "metrics-w";
  if (name.rfind(worker_prefix, 0) == 0 &&
      name.size() > worker_prefix.size() + 5 &&
      name.compare(name.size() - 5, 5, ".json") == 0) {
    const std::string idx =
        name.substr(worker_prefix.size(),
                    name.size() - worker_prefix.size() - 5);
    return !idx.empty() &&
           idx.find_first_not_of("0123456789") == std::string::npos;
  }
  return false;
}

std::vector<std::string> list_dir(const std::string& run_dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(run_dir, ec)) {
    if (entry.is_regular_file(ec)) names.push_back(entry.path().filename());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

TraceMergeResult merge_trace_shards(const std::string& run_dir) {
  TraceMergeResult result;
  std::vector<ParsedShard> shards;
  for (const std::string& name : list_dir(run_dir)) {
    TraceShard info;
    if (!classify_trace_shard(name, &info)) continue;
    shards.push_back(parse_shard(run_dir, std::move(info)));
  }
  std::sort(shards.begin(), shards.end(),
            [](const ParsedShard& a, const ParsedShard& b) {
              return a.info.pid < b.info.pid;
            });

  // Common wall-clock base: the earliest shard epoch.  Shards without an
  // epoch (torn before the header, or older format) keep their raw clock.
  std::uint64_t base_ms = 0;
  bool have_base = false;
  for (const ParsedShard& s : shards) {
    if (s.epoch_ms == 0) continue;
    if (!have_base || s.epoch_ms < base_ms) {
      base_ms = s.epoch_ms;
      have_base = true;
    }
  }

  struct Ev {
    std::uint64_t ts = 0;
    std::uint32_t pid = 0;
    std::uint64_t tid = 0;
    std::string line;
  };
  std::vector<Ev> events;
  for (ParsedShard& s : shards) {
    const std::uint64_t shift_us =
        (s.epoch_ms != 0 && have_base) ? (s.epoch_ms - base_ms) * 1000u : 0u;
    for (std::string& line : s.lines) {
      Ev ev;
      ev.pid = s.info.pid;
      std::string raw;
      if (find_raw(line, "ts", &raw))
        ev.ts = std::strtoull(raw.c_str(), nullptr, 10) + shift_us;
      if (find_raw(line, "tid", &raw))
        ev.tid = std::strtoull(raw.c_str(), nullptr, 10);
      replace_num_field(&line, "ts", ev.ts);
      replace_num_field(&line, "pid", s.info.pid);
      ev.line = std::move(line);
      events.push_back(std::move(ev));
    }
    result.dropped += s.dropped;
    result.shards.push_back(s.info);
  }
  std::stable_sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.pid != b.pid) return a.pid < b.pid;
    return a.tid < b.tid;
  });
  result.events = events.size();

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, result.dropped);
  out += buf;
  out += ",\"epochMs\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, base_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"mergedShards\":%zu",
                result.shards.size());
  out += buf;
  out += "},\n\"traceEvents\":[\n";
  bool first = true;
  // process_name metadata first: the viewer labels each shard's lane.
  for (const TraceShard& s : result.shards) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":";
    std::snprintf(buf, sizeof(buf), "%u", s.pid);
    out += buf;
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    out += s.label;  // labels are our own fixed strings; no escaping needed
    out += "\"}}";
  }
  for (const Ev& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += e.line;
  }
  out += "\n]}\n";
  result.json = std::move(out);
  return result;
}

MetricsMergeResult merge_metrics_shards(const std::string& run_dir) {
  MetricsMergeResult result;
  MetricsRegistry reg;
  for (const std::string& name : list_dir(run_dir)) {
    if (!is_metrics_shard(name)) continue;
    const std::string body = read_whole_file(run_dir + "/" + name);
    if (body.empty()) continue;
    result.series += reg.preload_from_json(body);
    result.shards.push_back(name);
  }
  result.json = reg.to_json();
  return result;
}

std::map<std::string, double> merged_counters(const std::string& run_dir) {
  MetricsRegistry reg;
  for (const std::string& name : list_dir(run_dir)) {
    if (!is_metrics_shard(name)) continue;
    const std::string body = read_whole_file(run_dir + "/" + name);
    if (!body.empty()) reg.preload_from_json(body);
  }
  std::map<std::string, double> out;
  for (const auto& [name, value] : reg.snapshot().counters) out[name] = value;
  return out;
}

}  // namespace tacos::obs
