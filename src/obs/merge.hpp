#pragma once
/// \file merge.hpp
/// \brief Cross-process telemetry aggregation: join the per-process trace
///        and metrics shards of a run directory into single artifacts.
///
/// A multi-process run (`--workers=N` fabric, `tacos_cli serve`) leaves one
/// trace/metrics shard per process in the run dir, each published whole via
/// AtomicFile:
///
///   trace.json          the supervisor (or a single-process run)
///   trace-serve.json    the evaluation service
///   trace-w<k>.json     fabric worker slot k (all incarnations spliced)
///   metrics[-...].json  the matching metrics shards
///
/// `merge_trace_shards` rewrites them onto one Perfetto/chrome://tracing
/// timeline: every shard gets a *stable* pid (supervisor 0, server 1,
/// worker k at 2+k — independent of which shards exist), a `process_name`
/// metadata record, and its timestamps shifted onto a common wall-clock
/// base using each shard's `otherData.epochMs`.  Parsing is tolerant: a
/// truncated shard (crashed process, torn copy) contributes every complete
/// event line it has and is flagged `torn`, never fatal.  The output is a
/// pure function of the shard bytes — byte-deterministic across reruns.
///
/// `merge_metrics_shards` sums the metrics shards (counters and histogram
/// cells add; gauges resolve last-shard-wins in sorted file order) into one
/// registry JSON, and `merged_counters` exposes the summed counters as a
/// map — the feed for `tacos_cli status`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tacos::obs {

/// One trace shard discovered (and parsed) in a run directory.
struct TraceShard {
  std::string file;    ///< file name within the run dir
  std::string label;   ///< process label shown in the viewer
  std::uint32_t pid = 0;  ///< stable pid in the merged timeline
  std::size_t events = 0; ///< complete event lines contributed
  bool torn = false;      ///< terminator missing (truncated shard)
};

struct TraceMergeResult {
  std::string json;           ///< merged Chrome trace document
  std::vector<TraceShard> shards;
  std::size_t events = 0;     ///< total events in the merged timeline
  std::uint64_t dropped = 0;  ///< summed droppedEvents across shards
};

/// Merge every trace shard found directly in `run_dir`.  Returns an empty
/// `shards` list (and a valid empty document) when none exist.
TraceMergeResult merge_trace_shards(const std::string& run_dir);

struct MetricsMergeResult {
  std::string json;                 ///< merged registry JSON
  std::vector<std::string> shards;  ///< shard file names, sorted
  std::size_t series = 0;           ///< metric series loaded across shards
};

/// Sum every metrics shard found directly in `run_dir`.
MetricsMergeResult merge_metrics_shards(const std::string& run_dir);

/// The summed counters of every metrics shard in `run_dir`, by name.
std::map<std::string, double> merged_counters(const std::string& run_dir);

}  // namespace tacos::obs
