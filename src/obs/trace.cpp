#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tacos::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// splitmix64: cheap bijective mixer, used to mint well-spread trace and
/// span ids (never zero — zero means "untraced").
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// %.17g renders a double so it round-trips through strtod exactly.
std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Extract the raw text of `"key":<value>` from one JSON line of our own
/// strict format; value ends at the next top-level ',' or '}'.
bool find_raw(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  int depth = 0;
  bool in_str = false;
  std::size_t end = pos;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (in_str) {
      if (c == '\\') {
        ++end;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      if (depth == 0) break;
      --depth;
    } else if (c == ',' && depth == 0) {
      break;
    }
  }
  *out = line.substr(pos, end - pos);
  return true;
}

// ---- Thread-local caches -------------------------------------------------
//
// Same scheme as the metrics shards: each thread caches (tracer uid ->
// ThreadBuf*).  Uids are never reused, so a cache entry can never alias a
// buffer of a newer tracer after the old one is destroyed.

std::atomic<std::uint64_t> g_tracer_uid{1};

struct BufCacheEntry {
  std::uint64_t uid;
  void* buf;
};
thread_local std::vector<BufCacheEntry> t_buf_cache;

// ---- Thread-local span stack --------------------------------------------

thread_local std::vector<TraceSpan*> t_span_stack;

// ---- Trace context -------------------------------------------------------

/// Process ambient: {trace id, span id} this process's root spans chain to.
/// Set once by `--trace-ctx` in children; minted lazily otherwise.
std::atomic<std::uint64_t> g_proc_trace_id{0};
std::atomic<std::uint64_t> g_proc_span_id{0};

/// Span ids mix a per-process salt with a sequence number so ids from
/// concurrently tracing processes (fabric workers, the server) do not
/// collide when their shards are merged onto one timeline.
std::atomic<std::uint64_t> g_span_seq{0};

std::uint64_t process_salt() {
  static const std::uint64_t salt =
      mix64(static_cast<std::uint64_t>(::getpid()) ^ steady_ns());
  return salt;
}

std::uint64_t mint_span_id() {
  const std::uint64_t id = mix64(
      process_salt() ^ (g_span_seq.fetch_add(1, std::memory_order_relaxed) + 1));
  return id != 0 ? id : 1;
}

/// Thread ambient (installed by ScopedTraceContext) plus the span-stack
/// depth at install time: the ambient wins only until a traced span opens
/// under it, after which the innermost span carries the chain.
thread_local TraceContext t_ambient;
thread_local std::size_t t_ambient_depth = 0;

}  // namespace

bool trace_enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }
void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

TraceContext process_trace_context() {
  return {g_proc_trace_id.load(std::memory_order_relaxed),
          g_proc_span_id.load(std::memory_order_relaxed)};
}

void set_process_trace_context(const TraceContext& ctx) {
  g_proc_trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  g_proc_span_id.store(ctx.span_id, std::memory_order_relaxed);
}

TraceContext current_trace_context() {
  if (!trace_enabled()) return {};
  if (t_ambient.valid() && t_span_stack.size() <= t_ambient_depth) {
    return t_ambient;
  }
  // Innermost *traced* span; metrics-only spans sit on the stack too but
  // carry no ids, so skip them.
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if ((*it)->trace_id_ != 0) return {(*it)->trace_id_, (*it)->span_id_};
  }
  if (t_ambient.valid()) return t_ambient;
  std::uint64_t trace = g_proc_trace_id.load(std::memory_order_relaxed);
  if (trace == 0) {
    // Lazily mint the process trace id.  Ids never touch journals, so the
    // mint being time-dependent cannot perturb determinism guarantees.
    std::uint64_t minted = mix64(process_salt() ^ 0x74616373u);
    if (minted == 0) minted = 1;
    std::uint64_t expected = 0;
    if (!g_proc_trace_id.compare_exchange_strong(expected, minted,
                                                std::memory_order_relaxed)) {
      minted = expected;  // another thread minted first; share its id
    }
    trace = minted;
  }
  return {trace, g_proc_span_id.load(std::memory_order_relaxed)};
}

std::string trace_context_string(const TraceContext& ctx) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 ":%016" PRIx64, ctx.trace_id,
                ctx.span_id);
  return buf;
}

bool parse_trace_context(const std::string& s, TraceContext* out) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  char* end = nullptr;
  const std::uint64_t trace = std::strtoull(s.c_str(), &end, 16);
  if (end != s.c_str() + colon) return false;
  const std::uint64_t span = std::strtoull(s.c_str() + colon + 1, &end, 16);
  if (end != s.c_str() + s.size()) return false;
  out->trace_id = trace;
  out->span_id = span;
  return true;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) {
  prev_ = t_ambient;
  prev_depth_ = t_ambient_depth;
  t_ambient = ctx;
  t_ambient_depth = t_span_stack.size();
}

ScopedTraceContext::~ScopedTraceContext() {
  t_ambient = prev_;
  t_ambient_depth = prev_depth_;
}

void append_json_kv(std::string& body, const char* key, const std::string& value) {
  if (!body.empty()) body += ',';
  body += '"';
  append_escaped(body, key);
  body += "\":\"";
  append_escaped(body, value.c_str());
  body += '"';
}

void append_json_kv(std::string& body, const char* key, double value) {
  if (!body.empty()) body += ',';
  body += '"';
  append_escaped(body, key);
  body += "\":";
  body += fmt_num(value);
}

void append_json_kv(std::string& body, const char* key, std::int64_t value) {
  if (!body.empty()) body += ',';
  body += '"';
  append_escaped(body, key);
  body += "\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  body += buf;
}

// ---- Tracer --------------------------------------------------------------

Tracer::Tracer()
    : uid_(g_tracer_uid.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(steady_ns()) {
  wall_epoch_ms_.store(wall_ms(), std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000u +
         ts_offset_us_.load(std::memory_order_relaxed);
}

Tracer::ThreadBuf& Tracer::buf_for_this_thread() {
  for (const BufCacheEntry& e : t_buf_cache) {
    if (e.uid == uid_) return *static_cast<ThreadBuf*>(e.buf);
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<std::uint32_t>(bufs_.size());
  ThreadBuf* raw = buf.get();
  bufs_.push_back(std::move(buf));
  t_buf_cache.push_back({uid_, raw});
  return *raw;
}

void Tracer::emit_complete(const char* name, const char* cat,
                           std::uint64_t ts_us, std::uint64_t dur_us,
                           const std::string& args_json) {
  ThreadBuf& buf = buf_for_this_thread();
  if (approx_events_.load(std::memory_order_relaxed) >= kMaxEvents) {
    std::lock_guard<std::mutex> lk(buf.mu);
    ++buf.dropped;
    return;
  }
  approx_events_.fetch_add(1, std::memory_order_relaxed);

  std::string line;
  line.reserve(96 + args_json.size());
  line += "{\"name\":\"";
  append_escaped(line, name);
  line += "\",\"cat\":\"";
  append_escaped(line, cat);
  line += "\",\"ph\":\"X\",\"ts\":";
  char buf_num[32];
  std::snprintf(buf_num, sizeof(buf_num), "%" PRIu64, ts_us);
  line += buf_num;
  line += ",\"dur\":";
  std::snprintf(buf_num, sizeof(buf_num), "%" PRIu64, dur_us);
  line += buf_num;
  line += ",\"pid\":0,\"tid\":";
  std::snprintf(buf_num, sizeof(buf_num), "%u", buf.tid);
  line += buf_num;
  line += ",\"args\":{";
  line += args_json;
  line += "}}";

  std::lock_guard<std::mutex> lk(buf.mu);
  buf.lines.push_back(std::move(line));
}

std::string Tracer::to_json() const {
  // Snapshot under the registry lock, then each buffer under its own.
  std::vector<std::string> preloaded;
  std::uint64_t dropped = 0;
  struct Ev {
    std::uint64_t ts;
    std::uint32_t tid;
    const std::string* line;
  };
  std::vector<Ev> events;
  std::vector<std::vector<std::string>> copies;
  {
    std::lock_guard<std::mutex> lk(mu_);
    preloaded = preloaded_lines_;
    dropped = preloaded_dropped_;
    copies.reserve(bufs_.size());
    for (const auto& b : bufs_) {
      std::lock_guard<std::mutex> blk(b->mu);
      dropped += b->dropped;
      copies.push_back(b->lines);
    }
    for (std::size_t i = 0; i < copies.size(); ++i) {
      for (const std::string& line : copies[i]) {
        std::string raw;
        std::uint64_t ts = 0;
        if (find_raw(line, "ts", &raw)) {
          ts = std::strtoull(raw.c_str(), nullptr, 10);
        }
        events.push_back({ts, static_cast<std::uint32_t>(i), &line});
      }
    }
  }
  // Viewers prefer a time-sorted stream; ties broken by thread for
  // deterministic output.
  std::stable_sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.tid < b.tid;
  });

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":";
  char buf_num[32];
  std::snprintf(buf_num, sizeof(buf_num), "%" PRIu64, dropped);
  out += buf_num;
  out += ",\"epochMs\":";
  std::snprintf(buf_num, sizeof(buf_num), "%" PRIu64,
                wall_epoch_ms_.load(std::memory_order_relaxed));
  out += buf_num;
  out += "},\n\"traceEvents\":[\n";
  bool first = true;
  // Preloaded events first: they predate this run's (shifted) clock.
  for (const std::string& line : preloaded) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  }
  for (const Ev& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += *e.line;
  }
  out += "\n]}\n";
  return out;
}

std::size_t Tracer::preload(const std::string& json) {
  const std::string open = "\"traceEvents\":[";
  std::size_t pos = json.find(open);
  if (pos == std::string::npos) return 0;
  pos += open.size();

  std::vector<std::string> lines;
  std::uint64_t max_end_us = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    // Strip a trailing comma (the line separator in our format).
    while (!line.empty() && (line.back() == ',' || line.back() == '\r' ||
                             line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == ']') break;  // "]}" terminator
    if (line[0] != '{') continue;
    std::string raw;
    std::uint64_t ts = 0, dur = 0;
    if (find_raw(line, "ts", &raw)) ts = std::strtoull(raw.c_str(), nullptr, 10);
    if (find_raw(line, "dur", &raw)) dur = std::strtoull(raw.c_str(), nullptr, 10);
    max_end_us = std::max(max_end_us, ts + dur);
    lines.push_back(std::move(line));
  }

  std::uint64_t dropped = 0;
  {
    std::string raw;
    if (find_raw(json, "droppedEvents", &raw)) {
      dropped = std::strtoull(raw.c_str(), nullptr, 10);
    }
    // Keep the spliced file's wall-clock base: its events keep their old
    // timestamps, so ts == 0 still means the original epoch.
    if (find_raw(json, "epochMs", &raw)) {
      const std::uint64_t epoch = std::strtoull(raw.c_str(), nullptr, 10);
      if (epoch != 0) wall_epoch_ms_.store(epoch, std::memory_order_relaxed);
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  for (std::string& line : lines) {
    preloaded_lines_.push_back(std::move(line));
  }
  preloaded_dropped_ += dropped;
  approx_events_.fetch_add(lines.size(), std::memory_order_relaxed);
  if (max_end_us > 0) {
    // Shift this run's clock past the spliced history (plus a visible gap)
    // so the resumed timeline stays monotonic in the viewer.
    ts_offset_us_.store(max_end_us + 1000, std::memory_order_relaxed);
  }
  return lines.size();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = preloaded_lines_.size();
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->lines.size();
  }
  return n;
}

std::uint64_t Tracer::wall_epoch_ms() const {
  return wall_epoch_ms_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t n = preloaded_dropped_;
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->dropped;
  }
  return n;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& b : bufs_) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->lines.clear();
    b->dropped = 0;
  }
  preloaded_lines_.clear();
  preloaded_dropped_ = 0;
  ts_offset_us_.store(0, std::memory_order_relaxed);
  approx_events_.store(0, std::memory_order_relaxed);
  wall_epoch_ms_.store(wall_ms(), std::memory_order_relaxed);
}

// ---- SpanSite / TraceSpan ------------------------------------------------

void SpanSite::resolve_metrics() {
  std::call_once(once_, [this] {
    MetricsRegistry& reg = MetricsRegistry::global();
    const std::string base = std::string("span.") + name_;
    total_s_ = reg.counter(base + ".total_s");
    self_s_ = reg.counter(base + ".self_s");
    calls_ = reg.counter(base + ".calls");
  });
}

TraceSpan::TraceSpan(SpanSite& site) {
  tracing_ = trace_enabled();
  const bool metrics = metrics_enabled();
  if (!tracing_ && !metrics) return;
  site_ = &site;
  active_ = true;
  if (metrics) site.resolve_metrics();
  if (tracing_) {
    // Chain to whatever context is current *before* we join the stack.
    const TraceContext parent = current_trace_context();
    trace_id_ = parent.trace_id;
    parent_span_ = parent.span_id;
    span_id_ = mint_span_id();
  }
  t0_us_ = Tracer::global().now_us();
  t_span_stack.push_back(this);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t t1 = Tracer::global().now_us();
  const std::uint64_t dur = t1 >= t0_us_ ? t1 - t0_us_ : 0;
  // Strict RAII nesting per thread: we are the stack top.
  if (!t_span_stack.empty() && t_span_stack.back() == this) {
    t_span_stack.pop_back();
  }
  if (!t_span_stack.empty()) {
    t_span_stack.back()->children_us_ += dur;
  }
  if (metrics_enabled() && site_ != nullptr) {
    site_->resolve_metrics();
    const std::uint64_t self =
        dur >= children_us_ ? dur - children_us_ : 0;
    site_->total_s_.add(static_cast<double>(dur) * 1e-6);
    site_->self_s_.add(static_cast<double>(self) * 1e-6);
    site_->calls_.add(1.0);
  }
  if (tracing_ && trace_enabled()) {
    if (trace_id_ != 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id_);
      append_json_kv(args_, "trace", std::string(buf));
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, span_id_);
      append_json_kv(args_, "span", std::string(buf));
      if (parent_span_ != 0) {
        std::snprintf(buf, sizeof(buf), "%016" PRIx64, parent_span_);
        append_json_kv(args_, "parent", std::string(buf));
      }
    }
    Tracer::global().emit_complete(site_->name(), site_->cat(), t0_us_, dur,
                                   args_);
  }
}

void TraceSpan::arg(const char* key, const std::string& value) {
  if (!active_ || !tracing_) return;
  append_json_kv(args_, key, value);
}
void TraceSpan::arg(const char* key, const char* value) {
  if (!active_ || !tracing_) return;
  append_json_kv(args_, key, std::string(value));
}
void TraceSpan::arg(const char* key, double value) {
  if (!active_ || !tracing_) return;
  append_json_kv(args_, key, value);
}
void TraceSpan::arg(const char* key, std::int64_t value) {
  if (!active_ || !tracing_) return;
  append_json_kv(args_, key, value);
}

}  // namespace tacos::obs
