#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tacos::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

std::atomic<std::uint64_t> g_registry_uid{1};

/// Exact (round-trippable) rendering for exported values.
std::string fmt_g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Per-thread cache of (registry uid -> shard).  Registry uids are never
/// reused, so a stale entry for a destroyed registry can never alias a new
/// one; the vector stays tiny (one entry per registry a thread touches).
struct ShardCache {
  std::vector<std::pair<std::uint64_t, void*>> entries;
};
thread_local ShardCache t_shard_cache;

/// Strict field extraction from our own JSON line format.  Returns false
/// when `key` is absent.
bool find_raw(const std::string& line, const std::string& key,
              std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  int depth = 0;
  bool in_str = false;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (in_str) {
      if (c == '\\')
        ++end;
      else if (c == '"')
        in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') {
      if (depth == 0) break;
      --depth;
    }
    if (c == ',' && depth == 0) break;
  }
  *out = line.substr(begin, end - begin);
  return true;
}

bool parse_number_list(const std::string& raw, std::vector<double>* out) {
  out->clear();
  std::size_t at = raw.find('[');
  const std::size_t close = raw.rfind(']');
  if (at == std::string::npos || close == std::string::npos) return false;
  ++at;
  while (at < close) {
    char* end = nullptr;
    const double v = std::strtod(raw.c_str() + at, &end);
    if (end == raw.c_str() + at) return false;
    out->push_back(v);
    at = static_cast<std::size_t>(end - raw.c_str());
    while (at < close && (raw[at] == ',' || raw[at] == ' ')) ++at;
  }
  return true;
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

std::vector<double> pow2_edges(double first, double last) {
  std::vector<double> e;
  for (double v = first; ; v *= 2.0) {
    e.push_back(v);
    if (v >= last) break;
  }
  return e;
}

std::vector<double> decade_edges(double first, double last) {
  std::vector<double> e;
  for (double v = first; ; v *= 10.0) {
    e.push_back(v);
    if (v >= last) break;
  }
  return e;
}

void Counter::add(double v) {
  if (reg_ && metrics_enabled()) reg_->counter_add(id_, v);
}

void Gauge::set(double v) {
  if (reg_ && metrics_enabled()) reg_->gauge_set(id_, v);
}

void Histogram::observe(double v) {
  if (reg_ && metrics_enabled()) reg_->hist_observe(id_, v);
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = counter_ids_.try_emplace(name, counter_names_.size());
  if (inserted) counter_names_.push_back(name);
  return Counter(this, it->second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = gauge_ids_.try_emplace(name, gauge_names_.size());
  if (inserted) gauge_names_.push_back(name);
  return Gauge(this, it->second);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> edges) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = hist_ids_.try_emplace(name, hist_names_.size());
  if (inserted) {
    hist_names_.push_back(name);
    std::sort(edges.begin(), edges.end());
    hist_edges_.push_back(std::move(edges));
  }
  return Histogram(this, it->second);
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() {
  for (const auto& [uid, ptr] : t_shard_cache.entries)
    if (uid == uid_) return *static_cast<Shard*>(ptr);
  std::lock_guard<std::mutex> lk(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* s = shards_.back().get();
  t_shard_cache.entries.emplace_back(uid_, s);
  return *s;
}

MetricsRegistry::Shard& MetricsRegistry::preload_shard() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!preload_shard_) {
    shards_.push_back(std::make_unique<Shard>());
    preload_shard_ = shards_.back().get();
  }
  return *preload_shard_;
}

void MetricsRegistry::counter_add(std::size_t id, double v) {
  Shard& s = shard_for_this_thread();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.counters.size() <= id) s.counters.resize(id + 1, 0.0);
  s.counters[id] += v;
}

void MetricsRegistry::gauge_set(std::size_t id, double v) {
  Shard& s = shard_for_this_thread();
  const std::uint64_t seq =
      gauge_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.gauge_vals.size() <= id) {
    s.gauge_vals.resize(id + 1, 0.0);
    s.gauge_seq.resize(id + 1, 0);
  }
  s.gauge_vals[id] = v;
  s.gauge_seq[id] = seq;
}

void MetricsRegistry::hist_observe(std::size_t id, double v) {
  std::vector<double> const* edges;
  {
    std::lock_guard<std::mutex> lk(mu_);
    edges = &hist_edges_[id];
  }
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(edges->begin(), edges->end(), v) - edges->begin());
  // `le` semantics: a value equal to an edge belongs to that edge's bucket.
  const std::size_t le_bucket =
      (bucket > 0 && (*edges)[bucket - 1] == v) ? bucket - 1 : bucket;
  Shard& s = shard_for_this_thread();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.hists.size() <= id) s.hists.resize(id + 1);
  HistCells& h = s.hists[id];
  if (h.counts.empty()) h.counts.assign(edges->size() + 1, 0);
  h.counts[le_bucket] += 1;
  h.sum += v;
  h.count += 1;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lk(mu_);
  out.counters.reserve(counter_names_.size());
  for (const std::string& n : counter_names_) out.counters.emplace_back(n, 0.0);
  std::vector<std::pair<double, std::uint64_t>> gauges(gauge_names_.size(),
                                                       {0.0, 0});
  out.histograms.reserve(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    HistogramSnapshot h;
    h.edges = hist_edges_[i];
    h.counts.assign(h.edges.size() + 1, 0);
    out.histograms.emplace_back(hist_names_[i], std::move(h));
  }
  // Merge shards in creation order (deterministic for integer sums; gauges
  // pick the write with the highest global sequence).
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> slk(s.mu);
    for (std::size_t i = 0; i < s.counters.size(); ++i)
      out.counters[i].second += s.counters[i];
    for (std::size_t i = 0; i < s.gauge_vals.size(); ++i)
      if (s.gauge_seq[i] > gauges[i].second)
        gauges[i] = {s.gauge_vals[i], s.gauge_seq[i]};
    for (std::size_t i = 0; i < s.hists.size(); ++i) {
      const HistCells& h = s.hists[i];
      if (h.counts.empty()) continue;
      HistogramSnapshot& dst = out.histograms[i].second;
      for (std::size_t b = 0; b < h.counts.size(); ++b)
        dst.counts[b] += h.counts[b];
      dst.sum += h.sum;
      dst.count += h.count;
    }
  }
  out.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    out.gauges.emplace_back(gauge_names_[i], gauges[i].first);
  return out;
}

std::string MetricsRegistry::to_text() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : s.counters)
    os << name << " " << fmt_g17(v) << "\n";
  for (const auto& [name, v] : s.gauges)
    os << name << " " << fmt_g17(v) << " (gauge)\n";
  for (const auto& [name, h] : s.histograms) {
    os << name << " count=" << h.count << " sum=" << fmt_g17(h.sum);
    if (h.count > 0)
      os << " mean=" << fmt_g17(h.sum / static_cast<double>(h.count));
    os << " buckets[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) os << " ";
      if (b < h.edges.size())
        os << "le" << fmt_g17(h.edges[b]) << ":" << h.counts[b];
      else
        os << "inf:" << h.counts[b];
    }
    os << "]\n";
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (const auto& [name, v] : s.counters) {
    sep();
    os << "{\"name\":\"" << name << "\",\"type\":\"counter\",\"value\":"
       << fmt_g17(v) << "}";
  }
  for (const auto& [name, v] : s.gauges) {
    sep();
    os << "{\"name\":\"" << name << "\",\"type\":\"gauge\",\"value\":"
       << fmt_g17(v) << "}";
  }
  for (const auto& [name, h] : s.histograms) {
    sep();
    os << "{\"name\":\"" << name << "\",\"type\":\"histogram\",\"edges\":[";
    for (std::size_t b = 0; b < h.edges.size(); ++b)
      os << (b ? "," : "") << fmt_g17(h.edges[b]);
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b)
      os << (b ? "," : "") << h.counts[b];
    os << "],\"sum\":" << fmt_g17(h.sum) << ",\"count\":" << h.count << "}";
  }
  os << "\n]}\n";
  return os.str();
}

std::size_t MetricsRegistry::preload_from_json(const std::string& json) {
  std::size_t loaded = 0;
  std::size_t pos = 0;
  while (pos < json.size()) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("{\"name\":\"", 0) != 0) continue;
    std::string name_raw, type_raw, value_raw;
    if (!find_raw(line, "name", &name_raw) ||
        !find_raw(line, "type", &type_raw))
      continue;
    // Metric names are emitted unescaped (they contain no JSON-special
    // characters by construction); strip the surrounding quotes.
    if (name_raw.size() < 2 || name_raw.front() != '"') continue;
    const std::string name = name_raw.substr(1, name_raw.size() - 2);
    if (type_raw == "\"counter\"") {
      if (!find_raw(line, "value", &value_raw)) continue;
      const std::size_t id = counter(name).id_;
      Shard& s = preload_shard();
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.counters.size() <= id) s.counters.resize(id + 1, 0.0);
      s.counters[id] += std::strtod(value_raw.c_str(), nullptr);
      ++loaded;
    } else if (type_raw == "\"gauge\"") {
      if (!find_raw(line, "value", &value_raw)) continue;
      const std::size_t id = gauge(name).id_;
      Shard& s = preload_shard();
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.gauge_vals.size() <= id) {
        s.gauge_vals.resize(id + 1, 0.0);
        s.gauge_seq.resize(id + 1, 0);
      }
      // Preload takes a normal sequence number; it happens at startup, so
      // any later live write of the same gauge overrides it at scrape.
      s.gauge_vals[id] = std::strtod(value_raw.c_str(), nullptr);
      s.gauge_seq[id] = gauge_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
      ++loaded;
    } else if (type_raw == "\"histogram\"") {
      std::string edges_raw, counts_raw, sum_raw, count_raw;
      std::vector<double> edges, counts;
      if (!find_raw(line, "edges", &edges_raw) ||
          !find_raw(line, "counts", &counts_raw) ||
          !find_raw(line, "sum", &sum_raw) ||
          !find_raw(line, "count", &count_raw))
        continue;
      if (!parse_number_list(edges_raw, &edges) ||
          !parse_number_list(counts_raw, &counts))
        continue;
      if (counts.size() != edges.size() + 1) continue;
      const std::size_t id = histogram(name, edges).id_;
      std::vector<double> reg_edges;
      {
        std::lock_guard<std::mutex> lk(mu_);
        reg_edges = hist_edges_[id];
      }
      if (reg_edges != edges) continue;  // edge mismatch: skip, don't corrupt
      Shard& s = preload_shard();
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.hists.size() <= id) s.hists.resize(id + 1);
      HistCells& h = s.hists[id];
      if (h.counts.empty()) h.counts.assign(edges.size() + 1, 0);
      for (std::size_t b = 0; b < counts.size(); ++b)
        h.counts[b] += static_cast<std::uint64_t>(counts[b]);
      h.sum += std::strtod(sum_raw.c_str(), nullptr);
      h.count += static_cast<std::uint64_t>(
          std::strtoull(count_raw.c_str(), nullptr, 10));
      ++loaded;
    }
  }
  return loaded;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> slk(s.mu);
    std::fill(s.counters.begin(), s.counters.end(), 0.0);
    std::fill(s.gauge_vals.begin(), s.gauge_vals.end(), 0.0);
    std::fill(s.gauge_seq.begin(), s.gauge_seq.end(), 0);
    for (HistCells& h : s.hists) {
      std::fill(h.counts.begin(), h.counts.end(), 0);
      h.sum = 0.0;
      h.count = 0;
    }
  }
}

}  // namespace tacos::obs
