#include "obs/obs.hpp"

#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>

#include "common/atomic_file.hpp"

namespace tacos::obs {

namespace {

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string join_dir(const std::string& dir, const char* file) {
  if (dir.empty()) return file;
  if (dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

}  // namespace

bool ObsOptions::parse_flag(const std::string& arg) {
  if (arg == "--metrics") {
    metrics = true;
    return true;
  }
  if (arg.rfind("--metrics=", 0) == 0) {
    metrics = true;
    metrics_path = arg.substr(10);
    return true;
  }
  if (arg == "--trace") {
    trace = true;
    return true;
  }
  if (arg.rfind("--trace=", 0) == 0) {
    trace = true;
    trace_path = arg.substr(8);
    return true;
  }
  if (arg.rfind("--trace-ctx=", 0) == 0) {
    // Internal (supervisor -> worker) flag; a malformed value is ignored
    // rather than fatal — it only degrades trace attribution.
    TraceContext ctx;
    if (parse_trace_context(arg.substr(12), &ctx)) inherited_ctx = ctx;
    return true;
  }
  return false;
}

void ObsOptions::finalize(const std::string& run_dir, bool resume) {
  if (!shard_suffix.empty()) {
    // A shard process writes its own per-process artifacts, full stop:
    // explicit paths (inherited via re-exec) are overridden, and the shard
    // always splices onto a predecessor incarnation's file.
    if (metrics)
      metrics_path = join_dir(run_dir, ("metrics-" + shard_suffix + ".json").c_str());
    if (trace)
      trace_path = join_dir(run_dir, ("trace-" + shard_suffix + ".json").c_str());
    resume = true;
  }
  if (metrics && metrics_path.empty())
    metrics_path = join_dir(run_dir, "metrics.json");
  if (trace && trace_path.empty()) trace_path = join_dir(run_dir, "trace.json");

  if (metrics) set_metrics_enabled(true);
  if (trace) set_trace_enabled(true);
  if (inherited_ctx.valid()) set_process_trace_context(inherited_ctx);

  if (!resume) return;
  // Preload once at startup: publish() then rewrites one continuous
  // record (old + new) per run directory, idempotently.
  if (metrics) {
    const std::string prev = read_whole_file(metrics_path);
    if (!prev.empty()) {
      const std::size_t n = MetricsRegistry::global().preload_from_json(prev);
      if (n > 0)
        std::cerr << "[obs] resuming metrics record " << metrics_path << " ("
                  << n << " metric(s))\n";
    }
  }
  if (trace) {
    const std::string prev = read_whole_file(trace_path);
    if (!prev.empty()) {
      const std::size_t n = Tracer::global().preload(prev);
      if (n > 0)
        std::cerr << "[obs] resuming trace record " << trace_path << " (" << n
                  << " event(s))\n";
    }
  }
}

bool ObsOptions::publish() const {
  bool ok = true;
  const auto write = [&ok](const std::string& path, const std::string& body,
                           const char* what) {
    try {
      write_file_atomic(path, body);
      // publish() runs at several checkpoints (after the table, after the
      // health report, at finish); note each artifact once, not per write.
      static std::mutex noted_mu;
      static std::set<std::string> noted;
      bool first = false;
      {
        std::lock_guard<std::mutex> lk(noted_mu);
        first = noted.insert(path).second;
      }
      if (first) std::cerr << "[obs] wrote " << what << " to " << path << '\n';
    } catch (const std::exception& e) {
      std::cerr << "[obs] failed to write " << what << " to " << path << ": "
                << e.what() << '\n';
      ok = false;
    }
  };
  if (metrics && !metrics_path.empty())
    write(metrics_path, MetricsRegistry::global().to_json(), "metrics");
  if (trace && !trace_path.empty())
    write(trace_path, Tracer::global().to_json(), "trace");
  return ok;
}

void record_run_health(const RunHealth& h) {
  if (!metrics_enabled()) return;
  MetricsRegistry& reg = MetricsRegistry::global();
  const auto rec = [&reg](const char* name, std::size_t v) {
    if (v > 0) reg.counter(name).add(static_cast<double>(v));
  };
  rec("health.cold_restarts", h.cold_restarts);
  rec("health.cap_retries", h.cap_retries);
  rec("health.gs_fallbacks", h.gs_fallbacks);
  rec("health.solve_failures", h.solve_failures);
  rec("health.nonfinite_inputs", h.nonfinite_inputs);
  rec("health.leak_nonconverged", h.leak_nonconverged);
  rec("health.quarantined", h.quarantined);
  rec("health.timeouts", h.timeouts);
  rec("health.cancelled", h.cancelled);
  rec("health.leases_reclaimed", h.leases_reclaimed);
  rec("health.worker_restarts", h.worker_restarts);
  rec("health.poison_tasks", h.poison_tasks);
}

}  // namespace tacos::obs
