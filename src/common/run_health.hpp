#pragma once
/// \file run_health.hpp
/// \brief Mergeable health counters for fault-tolerant evaluation runs.
///
/// Every escalation of the thermal solver's recovery ladder (see
/// grid_model.cpp and docs/ROBUSTNESS.md), every honest degradation (a
/// leakage fixed point that ran out of iterations) and every quarantined
/// task is counted here, so a batch run can report *how* it survived, not
/// just that it did.  Like EvalStats, RunHealth merges with operator+= at
/// the join of parallel drivers (one instance per task shard, combined in
/// input order — deterministic at any thread count).

#include <cstddef>
#include <sstream>
#include <string>

namespace tacos {

/// Counters of recoveries, degradations and failures during a run.
struct RunHealth {
  std::size_t cold_restarts = 0;     ///< ladder rung 1: retried from ambient
  std::size_t cap_retries = 0;       ///< ladder rung 2: raised iteration cap
  std::size_t gs_fallbacks = 0;      ///< ladder rung 3: Gauss-Seidel fallback
  std::size_t solve_failures = 0;    ///< ladder exhausted (ThermalError thrown)
  std::size_t nonfinite_inputs = 0;  ///< non-finite power rejected pre-solve
  std::size_t leak_nonconverged = 0; ///< leakage fixed points that hit max_iters
  std::size_t quarantined = 0;       ///< tasks isolated by a batch driver
  std::size_t timeouts = 0;          ///< tasks that exceeded their deadline
  std::size_t cancelled = 0;         ///< tasks abandoned by an interrupted run

  // Sweep-fabric counters (src/core/fabric.hpp), populated by the
  // supervisor's run-level health only — per-task journal records never
  // carry them, which keeps the journal byte-format (and byte-identity
  // between fabric and single-process runs) unchanged.
  std::size_t leases_reclaimed = 0;  ///< expired/released leases taken over
  std::size_t worker_restarts = 0;   ///< crashed workers respawned
  std::size_t poison_tasks = 0;      ///< tasks quarantined for killing workers

  /// Total extra solve attempts spent recovering.
  std::size_t retries() const {
    return cold_restarts + cap_retries + gs_fallbacks;
  }

  /// True when nothing had to be recovered, degraded or quarantined.
  bool clean() const {
    return retries() == 0 && solve_failures == 0 && nonfinite_inputs == 0 &&
           leak_nonconverged == 0 && quarantined == 0 && timeouts == 0 &&
           cancelled == 0 && leases_reclaimed == 0 && worker_restarts == 0 &&
           poison_tasks == 0;
  }

  RunHealth& operator+=(const RunHealth& o) {
    cold_restarts += o.cold_restarts;
    cap_retries += o.cap_retries;
    gs_fallbacks += o.gs_fallbacks;
    solve_failures += o.solve_failures;
    nonfinite_inputs += o.nonfinite_inputs;
    leak_nonconverged += o.leak_nonconverged;
    quarantined += o.quarantined;
    timeouts += o.timeouts;
    cancelled += o.cancelled;
    leases_reclaimed += o.leases_reclaimed;
    worker_restarts += o.worker_restarts;
    poison_tasks += o.poison_tasks;
    return *this;
  }

  /// One-line summary for drivers and the CLI, e.g.
  /// "health: 3 cold restarts, 1 cap retry, 2 quarantined".
  std::string summary() const {
    if (clean()) return "health: clean";
    std::ostringstream os;
    os << "health:";
    const char* sep = " ";
    const auto field = [&](std::size_t v, const char* name) {
      if (v == 0) return;
      os << sep << v << ' ' << name;
      sep = ", ";
    };
    field(cold_restarts, "cold restart(s)");
    field(cap_retries, "cap retry(ies)");
    field(gs_fallbacks, "GS fallback(s)");
    field(solve_failures, "solve failure(s)");
    field(nonfinite_inputs, "non-finite input(s)");
    field(leak_nonconverged, "leakage non-convergence(s)");
    field(quarantined, "quarantined task(s)");
    field(timeouts, "timeout(s)");
    field(cancelled, "cancelled task(s)");
    field(leases_reclaimed, "lease(s) reclaimed");
    field(worker_restarts, "worker restart(s)");
    field(poison_tasks, "poison task(s)");
    return os.str();
  }

  /// One-object JSON rendering for the BENCH_*.json emitters and the
  /// observability exporters: health travels with the timings it explains.
  std::string to_json() const {
    std::ostringstream os;
    os << "{\"cold_restarts\": " << cold_restarts
       << ", \"cap_retries\": " << cap_retries
       << ", \"gs_fallbacks\": " << gs_fallbacks
       << ", \"solve_failures\": " << solve_failures
       << ", \"nonfinite_inputs\": " << nonfinite_inputs
       << ", \"leak_nonconverged\": " << leak_nonconverged
       << ", \"quarantined\": " << quarantined
       << ", \"timeouts\": " << timeouts << ", \"cancelled\": " << cancelled
       << ", \"leases_reclaimed\": " << leases_reclaimed
       << ", \"worker_restarts\": " << worker_restarts
       << ", \"poison_tasks\": " << poison_tasks << "}";
    return os.str();
  }
};

/// Shared accounting a ThermalModel writes into: the running solve index
/// (the fault plan's clock) and the health counters.  An Evaluator shard
/// owns one ledger for all models it builds, so solve indices are stable
/// per shard — and therefore per task — regardless of model-cache churn or
/// thread count.  A standalone ThermalModel falls back to a private ledger.
struct SolveLedger {
  std::size_t solve_index = 0;  ///< next steady-state solve's 0-based index
  /// Next coarse-rung screening solve's 0-based index (the fidelity
  /// ladder's own fault clock — kept separate so screening never shifts
  /// the full-solve indices FaultPlan::pcg_fail_at targets).
  std::size_t coarse_index = 0;
  RunHealth health;
};

}  // namespace tacos
