#pragma once
/// \file thread_pool.hpp
/// \brief Work-queue thread pool with `parallel_for` / `parallel_map`.
///
/// The evaluation engine parallelizes two very different loop shapes:
///
///   * coarse, embarrassingly-parallel outer loops (one optimizer run per
///     benchmark, one sweep point per task) where each task owns its own
///     `Evaluator` shard, and
///   * fine-grained inner loops (row-partitioned SpMV and fused CG vector
///     kernels) that run *inside* those tasks.
///
/// Both shapes go through the same pool.  The design choices that make
/// this safe and deterministic:
///
///   * **Caller participates.**  `parallel_for` never blocks waiting for a
///     worker: the calling thread drains chunks from the same atomic
///     cursor as the workers.  A nested `parallel_for` issued from a
///     worker thread therefore always completes (worst case the caller
///     runs every chunk itself) — no deadlock, no oversubscription
///     beyond the pool size.
///   * **Fixed chunking.**  Chunk boundaries depend only on (n, grain),
///     never on the number of threads, so per-chunk partial results can
///     be reduced in chunk order to give bit-identical answers at any
///     thread count (see solvers.cpp).
///   * **Exceptions propagate, none silently.**  The first exception
///     thrown by any chunk is captured and rethrown on the calling thread
///     after the loop drains; later chunk exceptions are counted, and the
///     rethrown message notes how many were suppressed so a multi-chunk
///     failure is never mistaken for a single one.
///
/// The global pool size defaults to `std::thread::hardware_concurrency()`
/// and can be overridden with the `TACOS_THREADS` environment variable or
/// `ThreadPool::set_global_threads()` (the knob the bench harness and the
/// determinism tests turn).

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace tacos {

class ThreadPool {
 public:
  /// A pool of `threads` logical execution lanes.  One lane is the caller
  /// itself, so `threads == 1` spawns no OS threads at all and every
  /// parallel_for degenerates to the serial loop (same chunking, same
  /// reduction order).
  explicit ThreadPool(std::size_t threads)
      : n_lanes_(threads == 0 ? 1 : threads) {
    // Resolve every metric handle before spawning workers.  Touching the
    // registry here also forces its magic static to complete construction
    // first, so it is destroyed after every pool — worker-loop metric
    // updates can never outlive it.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.gauge("pool.threads").set(static_cast<double>(n_lanes_));
    tasks_enqueued_ = reg.counter("pool.tasks_enqueued");
    queue_depth_ = reg.gauge("pool.queue_depth");
    worker_tasks_.reserve(n_lanes_ - 1);
    for (std::size_t t = 0; t + 1 < n_lanes_; ++t)
      worker_tasks_.push_back(reg.counter(
          "pool.worker." + std::to_string(t) + ".tasks_executed"));
    workers_.reserve(n_lanes_ - 1);
    for (std::size_t t = 0; t + 1 < n_lanes_; ++t)
      workers_.emplace_back([this, t] { worker_loop(t); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the participating caller).
  std::size_t thread_count() const { return n_lanes_; }

  /// The process-wide pool.  Sized from TACOS_THREADS if set, otherwise
  /// hardware_concurrency().  Construction is thread-safe; resizing via
  /// set_global_threads() is not (call it from a single thread between
  /// parallel regions, as the bench harness does).
  static ThreadPool& global() {
    std::lock_guard<std::mutex> lk(global_mu());
    auto& p = global_slot();
    if (!p) p = std::make_unique<ThreadPool>(default_thread_count());
    return *p;
  }

  /// Replace the global pool with one of `threads` lanes.  Must not be
  /// called while a parallel region is running.
  static void set_global_threads(std::size_t threads) {
    std::lock_guard<std::mutex> lk(global_mu());
    global_slot() = std::make_unique<ThreadPool>(threads == 0 ? 1 : threads);
  }

  /// Pool size implied by the environment (TACOS_THREADS) or hardware.
  static std::size_t default_thread_count() {
    if (const char* env = std::getenv("TACOS_THREADS")) {
      const long v = std::atol(env);
      if (v >= 1) return static_cast<std::size_t>(v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<std::size_t>(hc);
  }

  /// Run `fn(begin, end)` over every chunk of `[0, n)` with fixed chunk
  /// size `grain` (the last chunk may be short).  Chunk boundaries are
  /// independent of the thread count.  Blocks until all chunks are done;
  /// rethrows the first chunk exception.
  template <typename Fn>
  void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
    if (n == 0) return;
    TACOS_CHECK(grain > 0, "parallel_for grain must be positive");
    const std::size_t n_chunks = (n + grain - 1) / grain;

    // Serial fast path: one lane, or a single chunk — run inline (still
    // per-chunk, so reductions see the same boundaries).
    if (n_lanes_ == 1 || n_chunks == 1) {
      for (std::size_t c = 0; c < n_chunks; ++c)
        fn(c * grain, std::min(n, (c + 1) * grain));
      return;
    }

    struct Job {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::atomic<std::size_t> error_count{0};
      std::size_t n = 0, grain = 0, n_chunks = 0;
      std::function<void(std::size_t, std::size_t)> body;
      std::mutex err_mu;
      std::exception_ptr error;
      // Completion latch: whoever finishes the last chunk signals the
      // (possibly sleeping) caller.  Kept separate from err_mu so error
      // capture never contends with completion.
      std::mutex done_mu;
      std::condition_variable done_cv;
      bool all_done = false;
    };
    auto job = std::make_shared<Job>();
    job->n = n;
    job->grain = grain;
    job->n_chunks = n_chunks;
    job->body = std::ref(fn);

    const auto drain = [](Job& j) {
      std::size_t c;
      while ((c = j.next.fetch_add(1, std::memory_order_relaxed)) <
             j.n_chunks) {
        try {
          j.body(c * j.grain, std::min(j.n, (c + 1) * j.grain));
        } catch (...) {
          j.error_count.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lk(j.err_mu);
          if (!j.error) j.error = std::current_exception();
        }
        if (j.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            j.n_chunks) {
          // Last chunk overall (not necessarily ours): wake the caller.
          std::lock_guard<std::mutex> lk(j.done_mu);
          j.all_done = true;
          j.done_cv.notify_all();
        }
      }
    };

    // Offer the job to up to (chunks - 1) workers; the caller drains too.
    const std::size_t helpers = std::min(n_lanes_ - 1, n_chunks - 1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (std::size_t t = 0; t < helpers; ++t)
        queue_.emplace_back([job, drain] { drain(*job); });
      tasks_enqueued_.add(static_cast<double>(helpers));
      queue_depth_.set(static_cast<double>(queue_.size()));
    }
    cv_.notify_all();

    drain(*job);
    // All chunks are claimed once the caller's drain returns; wait for the
    // in-flight ones (claimed by workers) to finish.  Spin briefly for the
    // fine-grained kernels (an in-flight SpMV chunk finishes in
    // microseconds), then sleep on the completion latch: busy-yielding
    // through a multi-second optimizer task would have the caller's lane
    // compete with the workers for cores — on machines with fewer cores
    // than lanes that made 4-thread coarse runs *slower* than 1-thread.
    for (int spin = 0;
         spin < 128 && job->done.load(std::memory_order_acquire) < n_chunks;
         ++spin)
      std::this_thread::yield();
    if (job->done.load(std::memory_order_acquire) < n_chunks) {
      std::unique_lock<std::mutex> lk(job->done_mu);
      job->done_cv.wait(lk, [&] { return job->all_done; });
    }
    if (job->error) {
      const std::size_t n_errors =
          job->error_count.load(std::memory_order_relaxed);
      if (n_errors > 1) {
        // Surface the suppressed failures: rethrow the first exception
        // with the count appended (for non-std exceptions, the count
        // cannot be attached, so the original propagates unchanged).
        try {
          std::rethrow_exception(job->error);
        } catch (const std::exception& e) {
          throw Error(std::string(e.what()) + " [parallel_for: " +
                      std::to_string(n_errors - 1) +
                      " additional chunk exception(s) suppressed]");
        } catch (...) {
          throw;
        }
      }
      std::rethrow_exception(job->error);
    }
  }

  /// Apply `fn` to every element of `items`, returning results in input
  /// order.  Each element is its own chunk (coarse tasks).  The result
  /// type must be default-constructible and movable.
  template <typename T, typename Fn>
  auto parallel_map(const std::vector<T>& items, Fn&& fn)
      -> std::vector<decltype(fn(items[0]))> {
    std::vector<decltype(fn(items[0]))> out(items.size());
    parallel_for(items.size(), 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = fn(items[i]);
    });
    return out;
  }

 private:
  void worker_loop(std::size_t worker_index) {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        queue_depth_.set(static_cast<double>(queue_.size()));
      }
      task();
      worker_tasks_[worker_index].add();
    }
  }

  static std::mutex& global_mu() {
    static std::mutex m;
    return m;
  }
  static std::unique_ptr<ThreadPool>& global_slot() {
    static std::unique_ptr<ThreadPool> p;
    return p;
  }

  const std::size_t n_lanes_;
  // Pool utilization metrics (no-ops while metrics are disabled): helper
  // jobs offered / drained and the instantaneous queue depth.  Handles are
  // resolved once in the constructor; worker_tasks_ is immutable after it.
  obs::Counter tasks_enqueued_;
  obs::Gauge queue_depth_;
  std::vector<obs::Counter> worker_tasks_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace tacos
