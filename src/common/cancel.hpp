#pragma once
/// \file cancel.hpp
/// \brief Cooperative cancellation: cancel tokens, per-task deadlines and
///        the process-wide signal-driven shutdown token.
///
/// A `CancelToken` is polled at the natural checkpoints of the evaluation
/// stack — every PCG / Gauss-Seidel iteration (via `SolveOptions::cancel`)
/// and every combination / descent move of the greedy optimizer — so a
/// batch task can be stopped mid-solve within milliseconds without any
/// preemption machinery.  Tokens chain: a per-task token carries that
/// task's wall-clock budget and points at a parent (typically the global
/// signal token), so one poll observes both "this task ran too long" and
/// "the whole run was interrupted".
///
/// `poll()` reports cancellation by throwing `CancelledError`, which
/// deliberately does NOT derive from `tacos::Error`: the quarantine
/// catches in the batch drivers and the recovery ladder's
/// `catch (const SolverError&)` must not swallow it, or a Ctrl-C would be
/// misfiled as one more quarantined row.  The durable batch layer
/// (`optimize_greedy_batch`, `durable_rows_map`) is the only place that
/// catches it, converting a deadline overrun into a `timeout:` row and an
/// interrupt into an unjournaled, resumable task.
///
/// See docs/ROBUSTNESS.md ("Checkpoint/resume, deadlines, and shutdown").

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tacos {

/// Thrown by CancelToken::poll() when cancellation is observed.  Not a
/// tacos::Error on purpose (see file comment).
class CancelledError : public std::exception {
 public:
  enum class Reason {
    kInterrupt,  ///< run-level cancel (signal or caller); task is resumable
    kDeadline,   ///< this task exceeded its wall-clock budget
  };

  CancelledError(Reason reason, double elapsed_s, double budget_s)
      : reason_(reason), elapsed_s_(elapsed_s), budget_s_(budget_s) {
    char buf[160];
    if (reason == Reason::kDeadline) {
      std::snprintf(buf, sizeof buf,
                    "timeout: task exceeded its %.3g s deadline (ran %.2f s)",
                    budget_s, elapsed_s);
    } else {
      std::snprintf(buf, sizeof buf,
                    "cancelled: run interrupted after %.2f s (resumable)",
                    elapsed_s);
    }
    message_ = buf;
  }

  Reason reason() const { return reason_; }
  double elapsed_s() const { return elapsed_s_; }
  double budget_s() const { return budget_s_; }
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  Reason reason_;
  double elapsed_s_ = 0.0;
  double budget_s_ = 0.0;
  std::string message_;
};

/// A cancellation flag plus an optional wall-clock deadline, with parent
/// chaining.  cancel() may be called from any thread (and from a signal
/// handler: it is a single lock-free atomic store); cancelled()/poll() are
/// cheap enough for per-iteration use.
class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: cancellation of `parent` (at any chain depth) is
  /// observed by this token too.  `parent` must outlive the child.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip this token.  Async-signal-safe.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm a wall-clock budget of `budget_s` seconds starting now
  /// (`budget_s <= 0` disarms).
  void set_deadline(double budget_s) {
    budget_s_ = budget_s;
    start_ = std::chrono::steady_clock::now();
  }

  /// Seconds since construction (or the last set_deadline()).
  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// True when this token or any ancestor was cancel()ed.
  bool interrupted() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ && parent_->interrupted());
  }

  /// True when an armed deadline has passed.
  bool expired() const { return budget_s_ > 0 && elapsed_s() > budget_s_; }

  /// True when work under this token should stop for any reason.
  bool cancelled() const { return interrupted() || expired(); }

  /// Throw CancelledError if cancelled.  An interrupt outranks a deadline:
  /// a run-level stop must stay resumable, not be misfiled as a timeout.
  void poll() const {
    if (interrupted())
      throw CancelledError(CancelledError::Reason::kInterrupt, elapsed_s(),
                           budget_s_);
    if (expired())
      throw CancelledError(CancelledError::Reason::kDeadline, elapsed_s(),
                           budget_s_);
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  double budget_s_ = 0.0;
};

/// The process-wide token tripped by SIGINT/SIGTERM.  Batch drivers chain
/// their per-task tokens off it.
inline CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

namespace detail {
inline std::atomic<int>& signal_hits() {
  static std::atomic<int> hits{0};
  return hits;
}

/// Handler body: only async-signal-safe operations (atomic stores,
/// write(2), _Exit).  First signal trips the global token so drivers drain
/// and journal; a second signal hard-exits with the conventional 128+sig.
inline void on_shutdown_signal(int sig) {
  const int nth = signal_hits().fetch_add(1, std::memory_order_relaxed) + 1;
  if (nth >= 2) {
#if defined(__unix__) || defined(__APPLE__)
    constexpr char kMsg[] = "\n[tacos] second signal: hard exit\n";
    [[maybe_unused]] ssize_t ignored =
        ::write(STDERR_FILENO, kMsg, sizeof kMsg - 1);
#endif
    std::_Exit(128 + sig);
  }
  global_cancel_token().cancel();
#if defined(__unix__) || defined(__APPLE__)
  constexpr char kMsg[] =
      "\n[tacos] interrupt: draining in-flight tasks, flushing journal "
      "(signal again to force quit)\n";
  [[maybe_unused]] ssize_t ignored =
      ::write(STDERR_FILENO, kMsg, sizeof kMsg - 1);
#endif
}
}  // namespace detail

/// Install the SIGINT/SIGTERM graceful-shutdown handlers.  Idempotent;
/// call early in main() (before any parallel region) so the function-local
/// statics are constructed outside signal context.
inline void install_signal_handlers() {
  global_cancel_token();    // force construction on the main thread
  detail::signal_hits();
  std::signal(SIGINT, &detail::on_shutdown_signal);
  std::signal(SIGTERM, &detail::on_shutdown_signal);
}

/// True once a shutdown signal has been received (the "print the
/// interrupted-resumable notice and exit 75" predicate for mains).
inline bool run_interrupted() { return global_cancel_token().interrupted(); }

}  // namespace tacos
