#pragma once
/// \file hash.hpp
/// \brief Stable content hashing for cache keys and idempotency tokens.
///
/// FNV-1a (64-bit) over raw bytes: simple, dependency-free, and — unlike
/// std::hash — specified, so a hash written into a cross-run artifact (the
/// evaluation service's memo cache, a client's idempotency key) means the
/// same thing to every build on every platform.  Not cryptographic; these
/// keys only have to be collision-sparse and stable, and every cached
/// payload is still CRC-checked independently (src/common/journal.hpp).

#include <cstdint>
#include <cstdio>
#include <string>

namespace tacos {

/// 64-bit FNV-1a of `len` bytes.
inline std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x00000100000001B3ull;
  }
  return h;
}

inline std::uint64_t fnv1a64(const std::string& s) {
  return fnv1a64(s.data(), s.size());
}

/// Canonical 16-digit lower-case hex rendering (cache-key spelling).
inline std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace tacos
