#include "common/journal.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace tacos {

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

bool json_unescape(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out->push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        unsigned v = 0;
        for (int k = 1; k <= 4; ++k) {
          const char c = s[i + static_cast<std::size_t>(k)];
          v <<= 4;
          if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
          else return false;
        }
        if (v > 0xFF) return false;  // we only ever emit \u00XX
        out->push_back(static_cast<char>(v));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default:  // unknown escape: keep verbatim (escape_field never emits it)
        out.push_back('\\');
        out.push_back(s[i]);
    }
  }
  return out;
}

namespace {

/// CRC input: the raw (unescaped) id and payload, separated by a byte that
/// json_escape can never leave unescaped ambiguity around.
std::string crc_input(const std::string& id, const std::string& payload) {
  std::string s;
  s.reserve(id.size() + payload.size() + 1);
  s += id;
  s += '\x1f';
  s += payload;
  return s;
}

/// Scan a JSON string literal starting at s[pos] (just after the opening
/// quote); sets `end` to the index of the closing quote.  Returns false if
/// the line ends before the string does (a truncated record).
bool scan_string(const std::string& s, std::size_t pos, std::size_t* end) {
  bool escaped = false;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (escaped) {
      escaped = false;
    } else if (s[i] == '\\') {
      escaped = true;
    } else if (s[i] == '"') {
      *end = i;
      return true;
    }
  }
  return false;
}

bool expect(const std::string& s, std::size_t* pos, const char* lit) {
  const std::size_t n = std::char_traits<char>::length(lit);
  if (s.compare(*pos, n, lit) != 0) return false;
  *pos += n;
  return true;
}

}  // namespace

std::string format_journal_line(const std::string& id,
                                const std::string& payload) {
  std::ostringstream os;
  os << "{\"task\":\"" << json_escape(id) << "\",\"crc\":"
     << crc32(crc_input(id, payload)) << ",\"data\":\""
     << json_escape(payload) << "\"}";
  return os.str();
}

bool parse_journal_line(const std::string& line, std::string* id,
                        std::string* payload) {
  std::size_t pos = 0;
  if (!expect(line, &pos, "{\"task\":\"")) return false;
  std::size_t end = 0;
  if (!scan_string(line, pos, &end)) return false;
  std::string raw_id = line.substr(pos, end - pos);
  pos = end + 1;
  if (!expect(line, &pos, ",\"crc\":")) return false;
  std::uint64_t crc = 0;
  std::size_t digits = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    crc = crc * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    if (crc > 0xFFFFFFFFull) return false;
    ++pos;
    ++digits;
  }
  if (digits == 0) return false;
  if (!expect(line, &pos, ",\"data\":\"")) return false;
  if (!scan_string(line, pos, &end)) return false;
  std::string raw_payload = line.substr(pos, end - pos);
  pos = end + 1;
  if (!expect(line, &pos, "}") || pos != line.size()) return false;

  if (!json_unescape(raw_id, id)) return false;
  if (!json_unescape(raw_payload, payload)) return false;
  return crc32(crc_input(*id, *payload)) == static_cast<std::uint32_t>(crc);
}

RunJournal::RunJournal(std::string dir, std::string filename)
    : dir_(std::move(dir)), filename_(std::move(filename)) {
  TACOS_CHECK(!dir_.empty(), "run directory must not be empty");
  TACOS_CHECK(!filename_.empty(), "journal filename must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  TACOS_CHECK(!ec, "cannot create run directory " << dir_ << ": "
                                                  << ec.message());
  acquire_lockfile();
}

RunJournal::~RunJournal() { release_lockfile(); }

std::string RunJournal::path() const { return dir_ + "/" + filename_; }

RunJournal::LoadStats RunJournal::read_records(
    const std::string& path,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  LoadStats stats;
  std::ifstream in(path);
  if (!in.good()) return stats;  // fresh run directory
  std::map<std::string, std::size_t> seen;
  std::string line;
  bool torn = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string id, payload;
    if (torn || !parse_journal_line(line, &id, &payload)) {
      // First tear (truncated tail, corrupted CRC, hand-edited line):
      // everything from here on is untrusted and will be recomputed.
      torn = true;
      ++stats.dropped;
      continue;
    }
    if (seen.count(id)) continue;  // duplicate id: first record wins
    seen.emplace(id, out->size());
    out->emplace_back(std::move(id), std::move(payload));
    ++stats.loaded;
  }
  return stats;
}

RunJournal::LoadStats RunJournal::load() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, std::string>> records;
  const LoadStats stats = read_records(path(), &records);
  records_ = std::move(records);
  index_.clear();
  for (std::size_t i = 0; i < records_.size(); ++i)
    index_.emplace(records_[i].first, i);
  return stats;
}

void RunJournal::bind_meta(const std::string& key, const std::string& value) {
  const std::string id = "meta:" + key;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      TACOS_CHECK(records_[it->second].second == value,
                  "run directory " << dir_ << " belongs to a different sweep: "
                                   << key << " was '"
                                   << records_[it->second].second
                                   << "', this run has '" << value << "'"
                                   << " (use a fresh --run-dir)");
      return;
    }
  }
  append(id, value);
}

std::size_t RunJournal::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

std::size_t RunJournal::task_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [id, payload] : records_)
    if (id.rfind("meta:", 0) != 0) ++n;
  return n;
}

bool RunJournal::has(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.count(id) != 0;
}

std::optional<std::string> RunJournal::find(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second].second;
}

void RunJournal::append(const std::string& id, const std::string& payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (index_.count(id)) return;  // idempotent (resume re-runs are no-ops)
  index_.emplace(id, records_.size());
  records_.emplace_back(id, payload);
  rewrite_locked();
}

void RunJournal::rewrite_locked() {
  // Whole-file rewrite through the atomic helper: the published journal is
  // always a prefix-complete, checksummed snapshot.  O(records²) bytes over
  // a run's lifetime — irrelevant at sweep scale (tens of tasks), and the
  // price of never exposing a half-appended line.
  AtomicFile out(path());
  for (const auto& [id, payload] : records_)
    out.stream() << format_journal_line(id, payload) << '\n';
  out.commit();
}

void RunJournal::acquire_lockfile() {
#if defined(__unix__) || defined(__APPLE__)
  const std::string lock = path() + ".lock";
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string pid = std::to_string(::getpid()) + "\n";
      [[maybe_unused]] ssize_t n = ::write(fd, pid.data(), pid.size());
      ::close(fd);
      locked_ = true;
      return;
    }
    if (errno != EEXIST) return;  // unlockable filesystem: proceed unlocked
    long owner = 0;
    {
      std::ifstream in(lock);
      in >> owner;
    }
    if (owner <= 0) {
      // Mid-creation by another process, or debris with no pid: give the
      // writer one beat, then treat the lock as stale.
      if (attempt < 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
    } else if (owner != static_cast<long>(::getpid()) &&
               !(::kill(static_cast<pid_t>(owner), 0) == -1 &&
                 errno == ESRCH)) {
      // A live process (or one we cannot signal, which still proves
      // existence) owns this journal: fail fast instead of interleaving.
      throw Error("run journal " + path() + " is locked by live process " +
                  std::to_string(owner) +
                  " (two sweeps must not share one journal file; use the"
                  " --workers fabric or a fresh --run-dir)");
    }
    // Stale (dead pid) or our own pid (same-process reopen, which the
    // in-memory mutex already serializes): take the lock over.
    ::unlink(lock.c_str());
  }
  throw Error("run journal " + path() +
              " lockfile thrashing: could not acquire " + lock);
#endif
}

void RunJournal::release_lockfile() {
#if defined(__unix__) || defined(__APPLE__)
  if (!locked_) return;
  locked_ = false;
  const std::string lock = path() + ".lock";
  long owner = 0;
  {
    std::ifstream in(lock);
    in >> owner;
  }
  // Only remove a lock that is still ours: a same-pid takeover (see
  // acquire) may have re-issued it to a newer instance.
  if (owner == static_cast<long>(::getpid())) ::unlink(lock.c_str());
#endif
}

}  // namespace tacos
