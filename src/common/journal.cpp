#include "common/journal.hpp"

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"

namespace tacos {

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

bool json_unescape(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out->push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'u': {
        if (i + 4 >= s.size()) return false;
        unsigned v = 0;
        for (int k = 1; k <= 4; ++k) {
          const char c = s[i + static_cast<std::size_t>(k)];
          v <<= 4;
          if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
          else return false;
        }
        if (v > 0xFF) return false;  // we only ever emit \u00XX
        out->push_back(static_cast<char>(v));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return true;
}

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default:  // unknown escape: keep verbatim (escape_field never emits it)
        out.push_back('\\');
        out.push_back(s[i]);
    }
  }
  return out;
}

namespace {

/// CRC input: the raw (unescaped) id and payload, separated by a byte that
/// json_escape can never leave unescaped ambiguity around.
std::string crc_input(const std::string& id, const std::string& payload) {
  std::string s;
  s.reserve(id.size() + payload.size() + 1);
  s += id;
  s += '\x1f';
  s += payload;
  return s;
}

std::string format_record(const std::string& id, const std::string& payload) {
  std::ostringstream os;
  os << "{\"task\":\"" << json_escape(id) << "\",\"crc\":"
     << crc32(crc_input(id, payload)) << ",\"data\":\""
     << json_escape(payload) << "\"}";
  return os.str();
}

/// Scan a JSON string literal starting at s[pos] (just after the opening
/// quote); sets `end` to the index of the closing quote.  Returns false if
/// the line ends before the string does (a truncated record).
bool scan_string(const std::string& s, std::size_t pos, std::size_t* end) {
  bool escaped = false;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (escaped) {
      escaped = false;
    } else if (s[i] == '\\') {
      escaped = true;
    } else if (s[i] == '"') {
      *end = i;
      return true;
    }
  }
  return false;
}

bool expect(const std::string& s, std::size_t* pos, const char* lit) {
  const std::size_t n = std::char_traits<char>::length(lit);
  if (s.compare(*pos, n, lit) != 0) return false;
  *pos += n;
  return true;
}

/// Strict parse of one journal line; returns false on any deviation from
/// the exact format format_record emits (including a bad CRC).
bool parse_record(const std::string& line, std::string* id,
                  std::string* payload) {
  std::size_t pos = 0;
  if (!expect(line, &pos, "{\"task\":\"")) return false;
  std::size_t end = 0;
  if (!scan_string(line, pos, &end)) return false;
  std::string raw_id = line.substr(pos, end - pos);
  pos = end + 1;
  if (!expect(line, &pos, ",\"crc\":")) return false;
  std::uint64_t crc = 0;
  std::size_t digits = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    crc = crc * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    if (crc > 0xFFFFFFFFull) return false;
    ++pos;
    ++digits;
  }
  if (digits == 0) return false;
  if (!expect(line, &pos, ",\"data\":\"")) return false;
  if (!scan_string(line, pos, &end)) return false;
  std::string raw_payload = line.substr(pos, end - pos);
  pos = end + 1;
  if (!expect(line, &pos, "}") || pos != line.size()) return false;

  if (!json_unescape(raw_id, id)) return false;
  if (!json_unescape(raw_payload, payload)) return false;
  return crc32(crc_input(*id, *payload)) == static_cast<std::uint32_t>(crc);
}

}  // namespace

RunJournal::RunJournal(std::string dir) : dir_(std::move(dir)) {
  TACOS_CHECK(!dir_.empty(), "run directory must not be empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  TACOS_CHECK(!ec, "cannot create run directory " << dir_ << ": "
                                                  << ec.message());
}

std::string RunJournal::path() const { return dir_ + "/journal.jsonl"; }

RunJournal::LoadStats RunJournal::load() {
  std::lock_guard<std::mutex> lk(mu_);
  records_.clear();
  index_.clear();
  LoadStats stats;
  std::ifstream in(path());
  if (!in.good()) return stats;  // fresh run directory
  std::string line;
  bool torn = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string id, payload;
    if (torn || !parse_record(line, &id, &payload)) {
      // First tear (truncated tail, corrupted CRC, hand-edited line):
      // everything from here on is untrusted and will be recomputed.
      torn = true;
      ++stats.dropped;
      continue;
    }
    if (index_.count(id)) continue;  // duplicate id: first record wins
    index_.emplace(id, records_.size());
    records_.emplace_back(std::move(id), std::move(payload));
    ++stats.loaded;
  }
  return stats;
}

void RunJournal::bind_meta(const std::string& key, const std::string& value) {
  const std::string id = "meta:" + key;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      TACOS_CHECK(records_[it->second].second == value,
                  "run directory " << dir_ << " belongs to a different sweep: "
                                   << key << " was '"
                                   << records_[it->second].second
                                   << "', this run has '" << value << "'"
                                   << " (use a fresh --run-dir)");
      return;
    }
  }
  append(id, value);
}

std::size_t RunJournal::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

std::size_t RunJournal::task_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& [id, payload] : records_)
    if (id.rfind("meta:", 0) != 0) ++n;
  return n;
}

bool RunJournal::has(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return index_.count(id) != 0;
}

std::optional<std::string> RunJournal::find(const std::string& id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second].second;
}

void RunJournal::append(const std::string& id, const std::string& payload) {
  std::lock_guard<std::mutex> lk(mu_);
  if (index_.count(id)) return;  // idempotent (resume re-runs are no-ops)
  index_.emplace(id, records_.size());
  records_.emplace_back(id, payload);
  rewrite_locked();
}

void RunJournal::rewrite_locked() {
  // Whole-file rewrite through the atomic helper: the published journal is
  // always a prefix-complete, checksummed snapshot.  O(records²) bytes over
  // a run's lifetime — irrelevant at sweep scale (tens of tasks), and the
  // price of never exposing a half-appended line.
  AtomicFile out(path());
  for (const auto& [id, payload] : records_)
    out.stream() << format_record(id, payload) << '\n';
  out.commit();
}

}  // namespace tacos
