#pragma once
/// \file atomic_file.hpp
/// \brief Crash-safe whole-file writes: temp file + flush + fsync + rename.
///
/// Every result-file writer in the tree (the run journal, the HotSpot
/// exporters, the bench JSON emitters) goes through this helper so a crash
/// or a full disk mid-write can never leave a silently truncated file that
/// looks complete: readers only ever see either the previous content or
/// the fully written new content, because the publish step is a single
/// `rename(2)` within the same directory.  On POSIX the temp file is
/// fsync'd before the rename (so the published path can never hold
/// empty/partial data after a power loss) and the containing directory is
/// fsync'd after it (best-effort) so the rename itself is durable.
///
/// Usage:
///
///   AtomicFile out(path);
///   out.stream() << ...;
///   out.commit();   // flush, verify stream state, close, fsync, rename
///
/// commit() throws tacos::Error if any write failed (the stream went bad)
/// or the rename itself fails; the destructor removes an uncommitted temp
/// file, so an exception unwinding past an AtomicFile leaves no debris and
/// — crucially — leaves any previous version of the file untouched.

#include <fstream>
#include <string>

namespace tacos {

/// A file being written to `<path>.tmp`, published to `<path>` on commit().
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;
  /// Movable so factory helpers can build-and-return one; the moved-from
  /// object is marked committed (nothing left to clean up).
  AtomicFile(AtomicFile&& other) noexcept
      : path_(std::move(other.path_)),
        tmp_path_(std::move(other.tmp_path_)),
        out_(std::move(other.out_)),
        committed_(other.committed_) {
    other.committed_ = true;
  }
  AtomicFile& operator=(AtomicFile&&) = delete;

  /// The stream to write through.  Valid until commit().
  std::ostream& stream() { return out_; }

  /// Flush, verify every prior write succeeded, close and atomically
  /// publish.  Throws tacos::Error on any failure (temp file removed).
  void commit();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// Convenience: atomically replace `path` with `content`.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace tacos
