#pragma once
/// \file check.hpp
/// \brief Lightweight precondition / invariant checking for the tacos library.
///
/// All public entry points of the library validate their inputs with
/// TACOS_CHECK and raise tacos::Error (derived from std::runtime_error) on
/// violation.  Internal invariants that indicate programming errors use
/// TACOS_ASSERT, which is compiled in all build types: the library is a
/// research artifact and silent corruption of results is far worse than the
/// negligible runtime cost of the checks.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tacos {

/// Exception type thrown by all tacos precondition and invariant failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace tacos

/// Validate a caller-supplied precondition; throws tacos::Error with a
/// formatted message on failure.  `msg` may use stream syntax:
///   TACOS_CHECK(x > 0, "x must be positive, got " << x);
#define TACOS_CHECK(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream tacos_check_os_;                                    \
      tacos_check_os_ << msg; /* NOLINT */                                   \
      ::tacos::detail::raise_check_failure("precondition", #expr, __FILE__,  \
                                           __LINE__, tacos_check_os_.str()); \
    }                                                                        \
  } while (false)

/// Validate an internal invariant (logic error if violated). Always active.
#define TACOS_ASSERT(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream tacos_check_os_;                                    \
      tacos_check_os_ << msg; /* NOLINT */                                   \
      ::tacos::detail::raise_check_failure("invariant", #expr, __FILE__,     \
                                           __LINE__, tacos_check_os_.str()); \
    }                                                                        \
  } while (false)
