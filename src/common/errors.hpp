#pragma once
/// \file errors.hpp
/// \brief Structured error taxonomy for the evaluation stack.
///
/// Every failure the stack can recover from — or at least report honestly —
/// has a dedicated exception type carrying machine-readable context, so
/// batch drivers can quarantine the failing task with a diagnostic instead
/// of aborting the whole sweep, and the CLI can map each failure class to a
/// distinct exit code:
///
///   SolverError   — a linear solve violated its contract (dimension
///                   mismatch, non-SPD matrix) or diverged irrecoverably;
///                   carries solver name, iterations and final residual.
///   ThermalError  — ThermalModel::solve exhausted its recovery ladder or
///                   was handed non-finite power input; carries the solve
///                   index, ladder attempts, iterations and residual.
///   EvalError     — an Evaluator query failed; wraps the underlying error
///                   with the organization (layout key, DVFS level, active
///                   cores) and benchmark that triggered it.
///   ServiceError  — the evaluation service (src/service/) failed a
///                   request: connection loss, a corrupt/incompatible
///                   frame, explicit load-shedding (`overloaded`), a
///                   request deadline, or a server-side shutdown.  Carries
///                   the failure kind and whether a retry can succeed —
///                   the client's backoff loop branches on retryable().
///
/// See docs/ROBUSTNESS.md for the recovery ladder and quarantine policy.

#include <cstddef>
#include <exception>
#include <sstream>
#include <string>

#include "common/cancel.hpp"
#include "common/check.hpp"

namespace tacos {

/// Process exit codes used by tools/tacos_cli.cpp (and documented there):
/// one per error class, so scripts can distinguish a usage mistake from a
/// solver breakdown without parsing stderr.
namespace exit_code {
inline constexpr int kOk = 0;       ///< success
inline constexpr int kUsage = 1;    ///< bad command line / user input
inline constexpr int kError = 2;    ///< generic tacos::Error
inline constexpr int kSolver = 3;   ///< SolverError
inline constexpr int kThermal = 4;  ///< ThermalError
inline constexpr int kEval = 5;     ///< EvalError
inline constexpr int kService = 6;  ///< ServiceError (evaluation service)
/// Corrupt on-disk state found (and not repaired) by `tacos_cli fsck`.
/// 65 = EX_DATAERR: the input data was damaged, not the program.
inline constexpr int kDataErr = 65;
inline constexpr int kUnknown = 70; ///< non-tacos std::exception
/// Run interrupted by SIGINT/SIGTERM but left in a resumable state
/// (journal flushed; rerun with --resume).  75 = EX_TEMPFAIL: "transient
/// failure, retry later" — exactly the resume semantics.
inline constexpr int kInterrupted = 75;
}  // namespace exit_code

/// A linear solve failed its contract or diverged irrecoverably.
class SolverError : public Error {
 public:
  SolverError(std::string solver, std::size_t iterations, double residual,
              const std::string& detail)
      : Error(format(solver, iterations, residual, detail)),
        solver_(std::move(solver)),
        iterations_(iterations),
        residual_(residual) {}

  const std::string& solver() const { return solver_; }
  std::size_t iterations() const { return iterations_; }
  double residual() const { return residual_; }

 private:
  static std::string format(const std::string& solver, std::size_t iterations,
                            double residual, const std::string& detail) {
    std::ostringstream os;
    os << "solver failure [" << solver << ", " << iterations
       << " iterations, residual " << residual << "]: " << detail;
    return os.str();
  }

  std::string solver_;
  std::size_t iterations_ = 0;
  double residual_ = 0.0;
};

/// ThermalModel::solve could not produce a converged temperature field
/// (recovery ladder exhausted) or was given non-finite power input.
class ThermalError : public Error {
 public:
  ThermalError(std::size_t solve_index, int attempts, std::size_t iterations,
               double residual, const std::string& detail)
      : Error(format(solve_index, attempts, iterations, residual, detail)),
        solve_index_(solve_index),
        attempts_(attempts),
        iterations_(iterations),
        residual_(residual) {}

  std::size_t solve_index() const { return solve_index_; }
  /// Ladder attempts consumed (1 = first try only, 4 = full ladder).
  int attempts() const { return attempts_; }
  std::size_t iterations() const { return iterations_; }
  double residual() const { return residual_; }

 private:
  static std::string format(std::size_t solve_index, int attempts,
                            std::size_t iterations, double residual,
                            const std::string& detail) {
    std::ostringstream os;
    os << "thermal solve #" << solve_index << " failed after " << attempts
       << " attempt(s) [" << iterations << " iterations, residual " << residual
       << "]: " << detail;
    return os.str();
  }

  std::size_t solve_index_ = 0;
  int attempts_ = 0;
  std::size_t iterations_ = 0;
  double residual_ = 0.0;
};

/// An Evaluator query failed; adds the organization and benchmark that
/// triggered the underlying error.
class EvalError : public Error {
 public:
  EvalError(std::string layout_key, std::string benchmark,
            std::size_t dvfs_idx, int active_cores, const std::string& cause)
      : Error(format(layout_key, benchmark, dvfs_idx, active_cores, cause)),
        layout_key_(std::move(layout_key)),
        benchmark_(std::move(benchmark)),
        dvfs_idx_(dvfs_idx),
        active_cores_(active_cores) {}

  /// Quantized layout identity, e.g. "n=16 s=(0.50 1.00 2.50)".
  const std::string& layout_key() const { return layout_key_; }
  const std::string& benchmark() const { return benchmark_; }
  std::size_t dvfs_idx() const { return dvfs_idx_; }
  int active_cores() const { return active_cores_; }

 private:
  static std::string format(const std::string& layout_key,
                            const std::string& benchmark, std::size_t dvfs_idx,
                            int active_cores, const std::string& cause) {
    std::ostringstream os;
    os << "evaluation failed [" << layout_key << ", bench=" << benchmark
       << ", f_idx=" << dvfs_idx << ", p=" << active_cores << "]: " << cause;
    return os.str();
  }

  std::string layout_key_;
  std::string benchmark_;
  std::size_t dvfs_idx_ = 0;
  int active_cores_ = 0;
};

/// The evaluation service failed a request (src/service/).  `kind()`
/// classifies the failure; `retryable()` is the client contract: true
/// means a fresh attempt against the same (or a restarted) server can
/// succeed — connection loss, shedding, deadlines and drains are
/// transient by design, while a protocol violation (corrupt or
/// version-mismatched frame) or a server-reported evaluation failure
/// will repeat identically and must surface immediately.
class ServiceError : public Error {
 public:
  enum class Kind {
    kConnection,  ///< connect/read/write failed or the peer vanished
    kProtocol,    ///< malformed, checksum-failing or wrong-version frame
    kOverloaded,  ///< server shed the request (admission queue full)
    kDeadline,    ///< request exceeded its deadline (queue or in-flight)
    kShutdown,    ///< server is draining; no new work accepted
    kRemote,      ///< server-side evaluation failed (non-retryable)
  };

  ServiceError(Kind kind, const std::string& detail)
      : Error(format(kind, detail)), kind_(kind) {}

  Kind kind() const { return kind_; }

  /// Stable wire tag for this kind (error frames carry it verbatim).
  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::kConnection: return "connection";
      case Kind::kProtocol: return "protocol";
      case Kind::kOverloaded: return "overloaded";
      case Kind::kDeadline: return "deadline";
      case Kind::kShutdown: return "shutdown";
      case Kind::kRemote: return "remote";
    }
    return "unknown";
  }

  /// True when a backoff-and-retry can succeed (see class comment).
  bool retryable() const {
    return kind_ == Kind::kConnection || kind_ == Kind::kOverloaded ||
           kind_ == Kind::kDeadline || kind_ == Kind::kShutdown;
  }

 private:
  static std::string format(Kind kind, const std::string& detail) {
    std::ostringstream os;
    os << "service failure [" << kind_name(kind) << "]: " << detail;
    return os.str();
  }

  Kind kind_;
};

/// Short class tag for structured diagnostics ("solver", "thermal", ...).
inline const char* error_kind(const std::exception& e) {
  if (dynamic_cast<const CancelledError*>(&e)) return "interrupted";
  if (dynamic_cast<const ServiceError*>(&e)) return "service";
  if (dynamic_cast<const EvalError*>(&e)) return "eval";
  if (dynamic_cast<const ThermalError*>(&e)) return "thermal";
  if (dynamic_cast<const SolverError*>(&e)) return "solver";
  if (dynamic_cast<const Error*>(&e)) return "tacos";
  return "unknown";
}

/// Exit code for `e` under the CLI's exit-code discipline.
inline int exit_code_for(const std::exception& e) {
  if (dynamic_cast<const CancelledError*>(&e)) return exit_code::kInterrupted;
  if (dynamic_cast<const ServiceError*>(&e)) return exit_code::kService;
  if (dynamic_cast<const EvalError*>(&e)) return exit_code::kEval;
  if (dynamic_cast<const ThermalError*>(&e)) return exit_code::kThermal;
  if (dynamic_cast<const SolverError*>(&e)) return exit_code::kSolver;
  if (dynamic_cast<const Error*>(&e)) return exit_code::kError;
  return exit_code::kUnknown;
}

/// One-line structured diagnostic for stderr:
///   tacos-error kind=thermal code=4: <what>
inline std::string diagnostic_line(const std::exception& e) {
  std::ostringstream os;
  os << "tacos-error kind=" << error_kind(e) << " code=" << exit_code_for(e)
     << ": " << e.what();
  return os.str();
}

}  // namespace tacos
