#include "common/fsck.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"
#include "common/journal.hpp"
#include "common/lease.hpp"

namespace tacos {

namespace {

namespace fs = std::filesystem;

/// Split a file into complete lines plus an unterminated tail (if any).
/// Returns false when the file does not exist.
bool read_lines(const std::string& path, std::vector<std::string>* lines,
                bool* unterminated) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  *unterminated = false;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      lines->push_back(content.substr(pos));
      *unterminated = true;
      break;
    }
    lines->push_back(content.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return true;
}

void rewrite(const std::string& path, const std::vector<std::string>& lines) {
  AtomicFile out(path);
  for (const std::string& l : lines) out.stream() << l << '\n';
  out.commit();
}

}  // namespace

FsckFile fsck_journal_file(const std::string& path, bool fix) {
  FsckFile f;
  f.name = fs::path(path).filename().string();
  std::vector<std::string> lines;
  bool unterminated = false;
  if (!read_lines(path, &lines, &unterminated)) return f;
  // Strict prefix: the first line that fails the CRC'd parse (or the
  // unterminated tail) invalidates everything after it — exactly what
  // RunJournal::load silently drops on the next --resume.
  std::vector<std::string> valid_lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string id, payload;
    const bool torn = unterminated && i + 1 == lines.size();
    if (torn || !parse_journal_line(lines[i], &id, &payload)) {
      f.corrupt = lines.size() - i;
      f.torn_tail = true;
      break;
    }
    ++f.valid;
    valid_lines.push_back(lines[i]);
  }
  if (fix && f.corrupt > 0) {
    rewrite(path, valid_lines);
    f.fixed = true;
  }
  return f;
}

FsckFile fsck_lease_file(const std::string& path, bool fix) {
  FsckFile f;
  f.name = fs::path(path).filename().string();
  f.event_log = true;
  std::vector<std::string> lines;
  bool unterminated = false;
  if (!read_lines(path, &lines, &unterminated)) return f;
  // Event-log semantics: every complete line stands on its own, so
  // corruption anywhere is skipped (and counted) without condemning what
  // follows.  An unterminated final line is a writer caught mid-append.
  std::vector<std::string> valid_lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    LeaseRecord rec;
    const bool torn = unterminated && i + 1 == lines.size();
    if (torn || !decode_lease_record(lines[i], &rec)) {
      ++f.corrupt;
      if (i + 1 == lines.size()) f.torn_tail = true;
      continue;
    }
    ++f.valid;
    valid_lines.push_back(lines[i]);
  }
  if (fix && f.corrupt > 0) {
    rewrite(path, valid_lines);
    f.fixed = true;
  }
  return f;
}

FsckFile fsck_telemetry_file(const std::string& path) {
  FsckFile f;
  f.name = fs::path(path).filename().string();
  f.advisory = true;
  std::vector<std::string> lines;
  bool unterminated = false;
  if (!read_lines(path, &lines, &unterminated)) return f;
  const bool is_trace = f.name.rfind("trace", 0) == 0;
  // Shards are line-oriented by construction: one `{...}` object per
  // event/metric line between the opening `...:[` and the `]` terminator.
  // Count complete objects; a missing terminator is the signature of a
  // process that died mid-publish (or a torn copy).
  bool in_body = false;
  bool terminated = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    while (!line.empty() && (line.back() == ',' || line.back() == '\r' ||
                             line.back() == ' '))
      line.pop_back();
    if (!in_body) {
      if (line.find(is_trace ? "\"traceEvents\":[" : "\"metrics\":[") !=
          std::string::npos)
        in_body = true;
      continue;
    }
    if (line.empty()) continue;
    if (line[0] == ']') {
      terminated = true;
      break;
    }
    const bool torn = unterminated && i + 1 == lines.size();
    if (!torn && line[0] == '{' && line.back() == '}')
      ++f.valid;
    else
      ++f.corrupt;
  }
  if (!terminated) {
    ++f.corrupt;
    f.torn_tail = true;
  }
  return f;
}

FsckReport fsck_run_dir(const std::string& dir, bool fix) {
  TACOS_CHECK(fs::is_directory(dir),
              "fsck: run directory '" << dir << "' does not exist");
  FsckReport report;
  const auto add = [&](const FsckFile& f) {
    if (f.valid > 0 || f.corrupt > 0) report.files.push_back(f);
  };
  add(fsck_journal_file(dir + "/journal.jsonl", fix));
  // Shard journals in slot order, so reports are deterministic.
  std::vector<std::string> shards;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-w", 0) == 0 &&
        name.size() > 13 &&  // "shard-w" + k + ".jsonl"
        name.compare(name.size() - 6, 6, ".jsonl") == 0)
      shards.push_back(entry.path().string());
  }
  std::sort(shards.begin(), shards.end());
  for (const std::string& s : shards) add(fsck_journal_file(s, fix));
  add(fsck_journal_file(dir + "/memo.jsonl", fix));
  add(fsck_lease_file(dir + "/leases.jsonl", fix));
  // Telemetry artifacts (advisory): trace/metrics shards and merges.
  std::vector<std::string> telemetry;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if ((name.rfind("trace", 0) == 0 || name.rfind("metrics", 0) == 0) &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0)
      telemetry.push_back(entry.path().string());
  }
  std::sort(telemetry.begin(), telemetry.end());
  for (const std::string& t : telemetry) add(fsck_telemetry_file(t));
  return report;
}

}  // namespace tacos
