#pragma once
/// \file fault_plan.hpp
/// \brief Deterministic fault injection for the solver → evaluator stack.
///
/// Exercising the recovery ladder and the quarantine machinery should not
/// require contriving pathological geometries.  A FaultPlan rides inside
/// SolveOptions (and therefore inside ThermalConfig / EvalConfig) and
/// forces specific failures at specific points of a run:
///
///   * PCG non-convergence on the Nth solve (or every Nth solve), for the
///     first `pcg_fail_rungs` attempts of the recovery ladder — rungs = 1
///     exercises the cold restart, 4 exhausts the ladder and triggers
///     quarantine;
///   * a NaN injected into the solver's right-hand side on the Nth solve
///     (equivalent to a corrupted power map), exercising the non-finite
///     input gate;
///   * leakage fixed-point non-convergence (the loop runs its full
///     iteration budget and reports converged = false).
///
/// Solve indices are counted per SolveLedger — one per Evaluator shard —
/// so an injected plan fires at the same logical points at any thread
/// count, which is what the quarantine determinism tests rely on.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace tacos {

/// Deterministic fault-injection schedule (all faults off by default).
struct FaultPlan {
  static constexpr std::size_t kNever =
      std::numeric_limits<std::size_t>::max();

  /// Force PCG non-convergence on this 0-based solve index.
  std::size_t pcg_fail_at = kNever;
  /// Force PCG non-convergence on every solve with index % N == N - 1
  /// (0 = off).  N = 20 fails 5% of solves.
  std::size_t pcg_fail_every = 0;
  /// How many ladder attempts the fault survives: 1 = only the warm first
  /// try (the cold restart recovers), 2 = also the cold restart, 3 = also
  /// the raised-cap retry, >= 4 = the whole ladder (quarantine).
  int pcg_fail_rungs = 1;

  /// Inject a NaN into the right-hand side of this 0-based solve index
  /// (a corrupted power map reaching the solver).
  std::size_t nan_rhs_at = kNever;

  /// Skip the leakage fixed point's convergence test, so every evaluation
  /// runs max_leak_iters iterations and reports converged = false.
  bool leak_force_nonconverge = false;

  /// --- Worker-level faults (consumed by the sweep fabric, never by the
  /// solver stack; see src/core/fabric.hpp).  All are armed only in a
  /// worker's first incarnation: the supervisor strips them from restart
  /// command lines, so an injected crash fires once per worker, the way a
  /// real OOM-kill would.
  /// Crash the worker process (SIGKILL to self) immediately after
  /// *claiming* its Kth task, 1-based (0 = off) — the lease is live and
  /// the result unpublished, exactly the window a real crash leaves.
  std::size_t worker_crash_after = 0;
  /// Crash the worker whenever it claims this task id — unlike
  /// worker_crash_after this survives restarts (the flag is re-armed per
  /// claim of the named task), so two incarnations die on it and the
  /// supervisor's poison-task detection trips.
  std::string worker_crash_task;
  /// Stall (sleep) for this many ms after the first claim of worker index
  /// 0, incarnation 0 — a deterministic zombie: with a lease TTL shorter
  /// than the stall, the lease expires, another worker reclaims at a
  /// higher epoch, and the woken zombie's publish must be fenced off.
  std::uint64_t lease_stall_ms = 0;

  /// Force the fidelity ladder's coarse-rung screening solve to fail on
  /// this 0-based coarse-solve index / on every Nth coarse solve (0 =
  /// off).  Coarse solves have their own ledger clock (SolveLedger::
  /// coarse_index) so these faults never shift the full-solve indices the
  /// knobs above target.  A failed coarse rung is not an error: the
  /// Evaluator promotes the candidate to the next rung, where the full
  /// solve's recovery ladder applies as usual.
  std::size_t coarse_fail_at = kNever;
  std::size_t coarse_fail_every = 0;

  bool enabled() const {
    return pcg_fail_at != kNever || pcg_fail_every != 0 ||
           nan_rhs_at != kNever || leak_force_nonconverge ||
           coarse_fail_at != kNever || coarse_fail_every != 0;
  }

  /// Any worker-level (fabric) fault armed?
  bool worker_faults_enabled() const {
    return worker_crash_after != 0 || !worker_crash_task.empty() ||
           lease_stall_ms != 0;
  }

  /// Should ladder attempt `attempt` (0 = warm first try) of solve
  /// `solve_index` be forced to fail?
  bool pcg_should_fail(std::size_t solve_index, int attempt) const {
    const bool targeted =
        solve_index == pcg_fail_at ||
        (pcg_fail_every != 0 &&
         solve_index % pcg_fail_every == pcg_fail_every - 1);
    return targeted && attempt < pcg_fail_rungs;
  }

  /// Should solve `solve_index` receive a NaN right-hand side?
  bool nan_rhs(std::size_t solve_index) const {
    return solve_index == nan_rhs_at;
  }

  /// Should coarse-rung screening solve `coarse_index` be forced to fail?
  bool coarse_should_fail(std::size_t coarse_index) const {
    return coarse_index == coarse_fail_at ||
           (coarse_fail_every != 0 &&
            coarse_index % coarse_fail_every == coarse_fail_every - 1);
  }
};

}  // namespace tacos
