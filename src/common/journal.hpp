#pragma once
/// \file journal.hpp
/// \brief Write-ahead run journal: one checksummed JSONL record per
///        completed batch task, atomically published, tolerant to a torn
///        tail — the substrate of `--run-dir` / `--resume`.
///
/// Record format (one per line, strict — we only ever parse our own
/// output):
///
///   {"task":"<json-escaped id>","crc":<uint32>,"data":"<json-escaped
///    payload>"}
///
/// The CRC-32 (IEEE 802.3) covers the raw bytes `id + '\x1f' + payload`,
/// so a record whose line survived intact but whose content was corrupted
/// is rejected, not replayed.  `load()` stops at the first truncated or
/// corrupt record and reports how many lines were dropped: everything
/// before the tear is trusted (each append rewrote the whole file through
/// AtomicFile, so a tear can only be the product of manual editing or a
/// dying filesystem — and even then the damage is contained).
///
/// Reserved ids: records whose id starts with "meta:" pin the sweep
/// configuration (see bind_meta) and are not tasks.
///
/// See docs/ROBUSTNESS.md ("Checkpoint/resume, deadlines, and shutdown").

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.hpp"

namespace tacos {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `len` bytes.
std::uint32_t crc32(const void* data, std::size_t len);
inline std::uint32_t crc32(const std::string& s) {
  return crc32(s.data(), s.size());
}

/// Minimal JSON string escaping (backslash, quote, control characters).
std::string json_escape(const std::string& s);
/// Inverse of json_escape; returns false on a malformed escape.
bool json_unescape(const std::string& s, std::string* out);

/// Line-oriented field escaping for record payloads: `\\`, `\t`, `\n`,
/// `\r` — lets multi-line / tab-separated structures nest inside a
/// payload line.
std::string escape_field(const std::string& s);
std::string unescape_field(const std::string& s);

/// One checksummed record line in the journal's on-disk format (no
/// trailing newline) — shared with the lease log (`src/common/lease.hpp`),
/// which appends the same format under O_APPEND.
std::string format_journal_line(const std::string& id,
                                const std::string& payload);
/// Strict inverse of format_journal_line, including the CRC check.
bool parse_journal_line(const std::string& line, std::string* id,
                        std::string* payload);

/// The write-ahead journal of one run directory.
///
/// Opening a journal acquires `<file>.lock` next to it (`O_CREAT|O_EXCL`,
/// POSIX): two unrelated processes pointing at the same file fail fast
/// instead of silently interleaving whole-file rewrites.  The lock holds
/// the owner's pid; a lock left behind by a dead process (SIGKILL, OOM) —
/// or by this same process, which serializes its own appends internally —
/// is taken over.  The multi-process sweep fabric never contends here:
/// each worker journals to its own shard file (see src/core/fabric.hpp).
class RunJournal {
 public:
  /// Opens (creating the directory if needed) `<dir>/<filename>` and
  /// acquires its lockfile.  Throws tacos::Error when another live
  /// process holds the lock.
  explicit RunJournal(std::string dir,
                      std::string filename = "journal.jsonl");
  ~RunJournal();
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  const std::string& dir() const { return dir_; }
  std::string path() const;

  struct LoadStats {
    std::size_t loaded = 0;   ///< intact records replayed
    std::size_t dropped = 0;  ///< lines discarded at/after the first tear
  };
  /// Replay the journal file from disk (tolerant; see file comment).
  /// Call once before the first append/find.
  LoadStats load();

  /// Read a journal file without opening (or locking) it: the shard-merge
  /// path of the sweep fabric.  Same tolerant tear semantics as load().
  static LoadStats read_records(
      const std::string& path,
      std::vector<std::pair<std::string, std::string>>* out);

  /// Pin one dimension of the sweep configuration: records
  /// `meta:<key> -> value` on first call, and on resume throws
  /// tacos::Error if the journaled value differs — a run directory must
  /// not silently mix rows from two different sweep configurations.
  void bind_meta(const std::string& key, const std::string& value);

  /// Number of records (tasks + metas).
  std::size_t size() const;
  /// Number of task records (non-meta).
  std::size_t task_count() const;

  bool has(const std::string& id) const;
  /// Payload of record `id`, or nullopt.  Returned by value, copied under
  /// the journal lock: concurrent append() calls reallocate the internal
  /// record storage, so no reference into it can safely be exposed.
  std::optional<std::string> find(const std::string& id) const;

  /// Append a record and atomically publish the journal.  Thread-safe;
  /// idempotent (an existing id is kept, not overwritten).
  void append(const std::string& id, const std::string& payload);

 private:
  void rewrite_locked();
  void acquire_lockfile();
  void release_lockfile();

  std::string dir_;
  std::string filename_;
  bool locked_ = false;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::string>> records_;
  std::map<std::string, std::size_t> index_;
};

/// Durable-execution controls threaded through every batch driver.  All
/// three are optional and independent: journal-only gives checkpointing,
/// cancel-only gives graceful shutdown, deadline-only gives budgets.
struct RunControl {
  RunJournal* journal = nullptr;       ///< checkpoint store (may be null)
  const CancelToken* cancel = nullptr; ///< run-level stop (may be null)
  double task_deadline_s = 0.0;        ///< per-task wall budget (0 = none)
};

}  // namespace tacos
