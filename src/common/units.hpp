#pragma once
/// \file units.hpp
/// \brief Unit conventions and physical constants used throughout tacos.
///
/// The library uses a single consistent unit system:
///   - length:       millimetres (mm)  — floorplans, interposer sizes
///   - thickness:    millimetres (mm)  — layer stack (Table I values converted)
///   - area:         mm^2
///   - power:        watts (W)
///   - temperature:  degrees Celsius (°C)
///   - thermal conductivity: W/(m·K)   — standard materials-science unit;
///     conversion to the mm-based resistor network happens in one place
///     (thermal/grid_model.cpp).
///   - frequency:    MHz
///   - voltage:      volts (V)
///   - cost:         US dollars ($)
///
/// Helper literals make intent explicit at call sites, e.g. `20_um`.

namespace tacos {

/// Metres per millimetre (for converting conductivities into the mm grid).
inline constexpr double kMetersPerMm = 1e-3;

/// Convert micrometres to the library's canonical millimetres.
constexpr double um_to_mm(double um) { return um * 1e-3; }

namespace literals {
/// User-defined literal: micrometres expressed in mm, e.g. `150_um == 0.150`.
constexpr double operator""_um(long double v) {
  return static_cast<double>(v) * 1e-3;
}
constexpr double operator""_um(unsigned long long v) {
  return static_cast<double>(v) * 1e-3;
}
/// User-defined literal: millimetres (identity, for symmetry/readability).
constexpr double operator""_mm(long double v) { return static_cast<double>(v); }
constexpr double operator""_mm(unsigned long long v) {
  return static_cast<double>(v);
}
}  // namespace literals

}  // namespace tacos
