#pragma once
/// \file table.hpp
/// \brief Aligned text-table formatter used by the experiment harnesses.
///
/// Every bench binary reproduces a table or figure from the paper; this
/// helper renders the rows both as an aligned human-readable table and as
/// CSV (one line per row) so the output can be piped straight into a
/// plotting script.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace tacos {

/// A simple column-aligned table with a title, headers and string cells.
/// Numeric cells are formatted by the caller (see TextTable::fmt).
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    TACOS_CHECK(!headers_.empty(), "table needs at least one column");
  }

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells) {
    TACOS_CHECK(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
    rows_.push_back(std::move(cells));
  }

  /// Format a double with fixed precision — convenience for add_row.
  static std::string fmt(double v, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Render as an aligned text table.
  std::string to_text() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
           << row[c];
      }
      os << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
      total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
  }

  /// Render as CSV (headers + rows).  Cells containing commas, quotes or
  /// newlines are quoted per RFC 4180.
  std::string to_csv() const {
    std::ostringstream os;
    auto emit_cell = [&](const std::string& cell) {
      if (cell.find_first_of(",\"\n") == std::string::npos) {
        os << cell;
        return;
      }
      os << '"';
      for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    };
    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) os << ',';
        emit_cell(row[c]);
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return os.str();
  }

  /// Print the table (text form) with a title banner to `out`.
  void print(const std::string& title, std::ostream& out = std::cout) const {
    out << "\n== " << title << " ==\n" << to_text();
  }

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tacos
