#pragma once
/// \file fsck.hpp
/// \brief Offline validation (and optional repair) of a run directory's
///        durable files — the salvage entry point behind `tacos_cli fsck`.
///
/// A `--run-dir` accumulates several kinds of checksummed JSONL:
///
///   * whole-file-rewrite journals (`journal.jsonl`, `shard-w<k>.jsonl`,
///     `memo.jsonl`) — strict-prefix semantics: every record up to the
///     first torn/corrupt line is trusted, everything at and after it is a
///     torn tail (`RunJournal::load` silently recomputes those tasks);
///   * the append-only lease log (`leases.jsonl`) — an event log whose
///     readers skip corrupt lines *anywhere* and tolerate an incomplete
///     final line (a writer caught mid-append).
///
/// Both recovery behaviors already exist implicitly inside `--resume`;
/// fsck makes them an explicit, non-destructive report — and, with
/// `fix = true`, rewrites each damaged file down to its valid content
/// through AtomicFile, so the damage is acknowledged once instead of
/// re-tolerated on every future open.  Files fsck does not recognize are
/// left untouched and unreported.

#include <cstddef>
#include <string>
#include <vector>

namespace tacos {

/// Findings for one durable file.
struct FsckFile {
  std::string name;             ///< filename within the run dir
  bool event_log = false;       ///< lease-log semantics (vs strict prefix)
  /// Telemetry artifact (trace/metrics shard): validated and reported,
  /// but damage never fails the run — a torn shard only loses
  /// observability, never results (trace-merge tolerates it too).
  bool advisory = false;
  std::size_t valid = 0;        ///< intact records
  std::size_t corrupt = 0;      ///< damaged/torn lines (dropped on read)
  bool torn_tail = false;       ///< damage includes the end of the file
  bool fixed = false;           ///< rewritten to valid content (fix mode)
};

/// Findings for a whole run directory.
struct FsckReport {
  std::vector<FsckFile> files;

  /// Total damaged lines across every file.
  std::size_t total_corrupt() const {
    std::size_t n = 0;
    for (const FsckFile& f : files) n += f.corrupt;
    return n;
  }
  /// True when every file is intact (or was repaired in fix mode).
  /// Advisory files (telemetry artifacts) never fail a run.
  bool clean() const {
    for (const FsckFile& f : files)
      if (f.corrupt > 0 && !f.fixed && !f.advisory) return false;
    return true;
  }
};

/// Validate one journal-format file (strict-prefix semantics).  With
/// `fix`, a damaged file is atomically rewritten to its valid prefix.
FsckFile fsck_journal_file(const std::string& path, bool fix);

/// Validate one lease-log file (corrupt lines skippable anywhere).  With
/// `fix`, a damaged file is atomically rewritten to its valid lines only.
FsckFile fsck_lease_file(const std::string& path, bool fix);

/// Validate one telemetry artifact (`trace*.json` / `metrics*.json`):
/// counts complete event/metric lines and flags a missing terminator as a
/// torn tail.  Always advisory — damage is reported, never fatal, and
/// `fix` is ignored (shards are merged tolerantly, not repaired).
FsckFile fsck_telemetry_file(const std::string& path);

/// Validate every recognized durable file in `dir`: the canonical journal,
/// every `shard-w*.jsonl`, the memo cache, the lease log, and — advisory
/// only — the telemetry shards.  Throws tacos::Error when `dir` does not
/// exist.
FsckReport fsck_run_dir(const std::string& dir, bool fix);

}  // namespace tacos
