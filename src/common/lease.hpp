#pragma once
/// \file lease.hpp
/// \brief Journal-leased work sharding for the multi-process sweep fabric.
///
/// Worker processes of a `--workers=N` sweep coordinate through one
/// append-only file, `<run-dir>/leases.jsonl`.  Each record is a single
/// line in the run journal's checksummed format (`{"task":...,"crc":...,
/// "data":...}`) appended with a single O_APPEND `write(2)` — atomic on
/// POSIX for these short lines — so concurrent appenders never tear each
/// other's records and the file's byte order is a total order of events.
/// Unlike `journal.jsonl`, ids repeat: the file is an event log, and the
/// per-task state is *resolved* by replaying it:
///
///   claim   <worker> <epoch> <deadline_ms>   — lease until deadline
///   done    <worker> <epoch>                 — result durably journaled
///   release <worker> <epoch>                 — claim given back early
///   crash   <count-marker>                   — a worker died holding it
///   poison  —                                — quarantined by supervisor
///
/// Claim protocol (optimistic, first-writer-wins): a worker resolves the
/// task's current epoch E, appends `claim` with epoch E+1, then re-reads
/// the file; the *first* claim record for (task, E+1) in file order owns
/// the lease, later same-epoch claims lost the race.  A lease is
/// reclaimable once its deadline passes or it was released (the
/// supervisor releases the leases of a worker it reaped), and every
/// reclaim bumps the epoch.
///
/// Epoch fencing: `publish_done` re-reads the log and refuses when the
/// task's lease is no longer (worker, epoch) — so a zombie worker that
/// stalls past its deadline and wakes after a reclaim can never commit
/// over the newer worker's row.  On replay, the `done` record with the
/// highest epoch wins (`state().done_epoch`), so even a fenced record
/// that raced onto disk is ignored deterministically.
///
/// A reader may catch the last line mid-write: `refresh()` only advances
/// past complete (newline-terminated) records and re-reads the tail on
/// the next call; a complete-but-corrupt line (bad CRC) is skipped and
/// counted, never fatal.  See docs/ROBUSTNESS.md ("The sweep fabric").

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tacos {

/// One event of the lease log.
///
/// `trace_id`/`span_id` carry the appender's distributed-trace context so a
/// merged timeline can attribute every claim to the span that made it.  A
/// zero trace id means untraced and the codec omits both tokens — untraced
/// lease logs are byte-identical to pre-trace-context builds, and old logs
/// (without the tokens) decode with a zero context.
struct LeaseRecord {
  enum class Kind { kClaim, kDone, kRelease, kCrash, kPoison };
  Kind kind = Kind::kClaim;
  std::string task;             ///< journal task id, e.g. "optimize:canneal"
  std::string worker;           ///< worker name, e.g. "w0.1" (empty: crash/poison)
  std::uint64_t epoch = 0;      ///< fencing epoch (claim/done/release)
  std::uint64_t deadline_ms = 0;///< wall-clock expiry (claim only)
  std::uint64_t trace_id = 0;   ///< appender's trace id (0 = untraced)
  std::uint64_t span_id = 0;    ///< appender's span id
};

/// One line of leases.jsonl (checksummed, newline-terminated).
std::string encode_lease_record(const LeaseRecord& rec);
/// Strict inverse; false on any malformed or checksum-failing line.
bool decode_lease_record(const std::string& line, LeaseRecord* rec);

/// Wall-clock milliseconds (CLOCK_REALTIME) — the shared lease clock.
/// Coarse by design: it only gates expiry, never result content.
std::uint64_t lease_now_ms();

/// Resolved per-task state after replaying the log.
struct LeaseState {
  enum class Phase {
    kFree,      ///< never claimed, expired, or released — claimable
    kHeld,      ///< live unexpired lease
    kDone,      ///< a result was committed (done_worker/done_epoch)
    kPoisoned,  ///< quarantined by the supervisor; never claimable again
  };
  Phase phase = Phase::kFree;
  std::string holder;            ///< current lease owner (kHeld)
  std::uint64_t epoch = 0;       ///< highest epoch ever claimed
  std::uint64_t deadline_ms = 0; ///< current lease expiry (kHeld)
  std::string done_worker;       ///< committer of the winning result
  std::uint64_t done_epoch = 0;  ///< fencing epoch of the winning result
  std::size_t crashes = 0;       ///< workers that died holding this task
};

/// The lease log of one run directory.  One instance per process (each
/// fabric worker owns its own, coordinating purely through the file);
/// methods are safe to call from one thread at a time.
class LeaseTable {
 public:
  /// Opens (creating if needed) `<dir>/leases.jsonl` for O_APPEND writes.
  /// With `read_only` the log is never created or opened for writing —
  /// the mode the live-run `status` view uses, which must not perturb a
  /// run directory it inspects; any append in this mode is a fatal bug.
  explicit LeaseTable(std::string dir, bool read_only = false);
  ~LeaseTable();
  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  std::string path() const;

  /// Read and apply any records appended since the last refresh (by this
  /// or any other process).  Returns the number of records applied.
  std::size_t refresh();

  /// Resolved state of `task` as of the last refresh().
  LeaseState state(const std::string& task) const;

  /// Attempt to claim `task` for `worker` with a `ttl_ms` lease.  Returns
  /// the fencing epoch on success, nullopt when the task is done,
  /// poisoned, validly held by someone else, or the claim race was lost.
  /// Refreshes before and after the append (see file comment).  The
  /// optional trace context is stamped into the claim record (passed as
  /// raw ids — common/ must not depend on obs/).
  std::optional<std::uint64_t> try_claim(const std::string& task,
                                         const std::string& worker,
                                         std::uint64_t ttl_ms,
                                         std::uint64_t trace_id = 0,
                                         std::uint64_t span_id = 0);

  /// Extend an owned lease's deadline by `ttl_ms` from now (same epoch —
  /// renewal never re-fences).  False if the lease is no longer ours.
  bool renew(const std::string& task, const std::string& worker,
             std::uint64_t epoch, std::uint64_t ttl_ms);

  /// Epoch-fenced commit: true (and a durable `done` record) only when
  /// the task's lease still belongs to (worker, epoch) and no newer-epoch
  /// result exists.  A false return means the publish was fenced off —
  /// the caller's result must be discarded, not journaled.
  bool publish_done(const std::string& task, const std::string& worker,
                    std::uint64_t epoch);

  /// Give a claim back (graceful shutdown, or the supervisor reaping a
  /// dead worker's leases so they are reclaimable before expiry).
  void release(const std::string& task, const std::string& worker,
               std::uint64_t epoch);

  /// Supervisor bookkeeping: `task` was in flight when its worker died.
  void record_crash(const std::string& task);
  /// Supervisor verdict: quarantine `task` (terminal; workers skip it).
  void poison(const std::string& task);

  /// True when every id in `tasks` is done or poisoned.
  bool all_settled(const std::vector<std::string>& tasks) const;

  /// Every task id the replayed log has seen, in sorted order — the
  /// enumeration the `status` view iterates.
  std::vector<std::string> task_ids() const;

  /// Claims that bumped a previously used epoch (expired/released lease
  /// taken over) — the run-level `leases_reclaimed` feed.
  std::size_t reclaims() const { return reclaims_; }
  /// Log-wide reclaim count resolved from replay (claimed epochs beyond
  /// each task's first): unlike reclaims(), this sees takeovers performed
  /// by *other* processes — the supervisor's view of the whole run.
  std::size_t replay_reclaims() const;
  /// Commits refused by the epoch fence (zombie publishes).
  std::size_t stale_publishes() const { return stale_publishes_; }
  /// Complete-but-corrupt lines skipped during refresh.
  std::size_t corrupt_records() const { return corrupt_records_; }

 private:
  struct TaskEvents;
  void append_record(const LeaseRecord& rec);
  const TaskEvents* events(const std::string& task) const;

  std::string dir_;
  bool read_only_ = false;
  int fd_ = -1;
  std::uint64_t read_offset_ = 0;
  std::string tail_;  ///< incomplete trailing line carried across refreshes
  std::map<std::string, TaskEvents> tasks_;
  std::size_t reclaims_ = 0;
  std::size_t stale_publishes_ = 0;
  std::size_t corrupt_records_ = 0;
};

}  // namespace tacos
