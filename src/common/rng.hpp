#pragma once
/// \file rng.hpp
/// \brief Deterministic random-number utilities.
///
/// All stochastic components of the library (the multi-start greedy
/// optimizer's random starting points and random neighbor selection) draw
/// from an explicitly seeded std::mt19937_64 so every experiment is
/// bit-for-bit reproducible.

#include <cstdint>
#include <limits>
#include <random>

namespace tacos {

/// Thin wrapper around std::mt19937_64 with the handful of draws the
/// library needs.  Passing the engine explicitly (rather than using a
/// global) keeps parallel experiment runners independent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  /// Uniform long in [lo, hi] (inclusive).  When the range fits in int the
  /// draw delegates to uniform_int, consuming the engine identically — a
  /// caller that widens from uniform_int keeps its historical sequences —
  /// and only genuinely wide ranges pay for the 64-bit distribution.
  long uniform_long(long lo, long hi) {
    constexpr long int_lo = std::numeric_limits<int>::min();
    constexpr long int_hi = std::numeric_limits<int>::max();
    if (lo >= int_lo && hi <= int_hi)
      return uniform_int(static_cast<int>(lo), static_cast<int>(hi));
    std::uniform_int_distribution<long> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Access to the raw engine (e.g. for std::shuffle).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tacos
