#include "common/atomic_file.hpp"

#include <cstddef>
#include <cstdio>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.hpp"

namespace tacos {

namespace {

#ifndef _WIN32
/// fsync the file or directory at `path`; returns false on any failure.
bool sync_path(const char* path, int oflags) {
  const int fd = ::open(path, oflags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  // Truncate any stale temp from a previous crash; the target itself is
  // only touched by the rename in commit().
  out_.open(tmp_path_, std::ios::out | std::ios::trunc);
  TACOS_CHECK(out_.good(), "cannot open " << tmp_path_ << " for writing");
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::commit() {
  TACOS_CHECK(!committed_, "AtomicFile already committed: " << path_);
  out_.flush();
  // The stream-state check is the whole point: a full disk or an I/O error
  // anywhere since open() surfaces here instead of producing a truncated
  // file that looks complete.
  TACOS_CHECK(out_.good(), "write failed (disk full or I/O error): "
                               << tmp_path_);
  out_.close();
  TACOS_CHECK(!out_.fail(), "close failed: " << tmp_path_);
#ifndef _WIN32
  // Power-loss safety: the data must reach stable storage before the
  // rename publishes it, or a crash could publish an empty/partial file.
  TACOS_CHECK(sync_path(tmp_path_.c_str(), O_RDONLY),
              "fsync failed: " << tmp_path_);
#endif
  TACOS_CHECK(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
              "rename failed: " << tmp_path_ << " -> " << path_);
#ifndef _WIN32
  // Make the rename itself durable.  Best-effort: some filesystems reject
  // fsync on a directory fd, and the file contents are already safe.
  const std::size_t slash = path_.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path_.substr(0, slash);
  sync_path(dir.c_str(), O_RDONLY | O_DIRECTORY);
#endif
  committed_ = true;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  AtomicFile out(path);
  out.stream() << content;
  out.commit();
}

}  // namespace tacos
