#include "common/atomic_file.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace tacos {

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  // Truncate any stale temp from a previous crash; the target itself is
  // only touched by the rename in commit().
  out_.open(tmp_path_, std::ios::out | std::ios::trunc);
  TACOS_CHECK(out_.good(), "cannot open " << tmp_path_ << " for writing");
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::commit() {
  TACOS_CHECK(!committed_, "AtomicFile already committed: " << path_);
  out_.flush();
  // The stream-state check is the whole point: a full disk or an I/O error
  // anywhere since open() surfaces here instead of producing a truncated
  // file that looks complete.
  TACOS_CHECK(out_.good(), "write failed (disk full or I/O error): "
                               << tmp_path_);
  out_.close();
  TACOS_CHECK(!out_.fail(), "close failed: " << tmp_path_);
  TACOS_CHECK(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
              "rename failed: " << tmp_path_ << " -> " << path_);
  committed_ = true;
}

void write_file_atomic(const std::string& path, const std::string& content) {
  AtomicFile out(path);
  out.stream() << content;
  out.commit();
}

}  // namespace tacos
