#pragma once
/// \file backoff.hpp
/// \brief Capped exponential backoff with deterministic jitter.
///
/// One retry-delay policy for every supervisor/client in the tree: the
/// sweep fabric's worker-restart schedule (src/core/fabric.cpp) and the
/// evaluation-service client's request retries (src/service/client.hpp)
/// both compute
///
///   delay(n) = min(base * 2^n, cap) - jitter(n)
///
/// where `jitter(n)` deterministically shaves up to `jitter_frac` of the
/// delay.  Jitter de-synchronizes a fleet of clients hammering a just-
/// restarted server (the thundering-herd problem) but stays a pure
/// function of (seed, attempt) — two runs with the same seed retry at the
/// same instants, so timing-sensitive tests and reproductions never see a
/// random schedule.  `jitter_frac = 0` recovers the fabric's historical
/// un-jittered sequence bit-exactly.
///
/// The jitter hash is SplitMix64 (Steele et al., "Fast splittable
/// pseudorandom number generators") — one multiply-xor round per query, no
/// state beyond the seed.

#include <cstdint>

namespace tacos {

/// Stateless delay schedule: query `delay_ms(n)` for the nth retry.
struct BackoffPolicy {
  std::uint64_t base_ms = 200;   ///< first delay
  std::uint64_t max_ms = 2'000;  ///< cap on the exponential growth
  double jitter_frac = 0.0;      ///< fraction of the delay jitter may shave
  std::uint64_t seed = 0;        ///< jitter stream identity

  /// SplitMix64 mix of (seed, n): the deterministic jitter source.
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (n + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Delay before retry `attempt` (0-based).  Monotone-capped exponential,
  /// minus deterministic jitter in [0, jitter_frac * delay).
  std::uint64_t delay_ms(std::uint64_t attempt) const {
    // Shift-safe doubling: past 63 doublings everything is capped anyway.
    std::uint64_t raw = attempt >= 63 ? max_ms : base_ms << attempt;
    if (raw > max_ms || raw < base_ms) raw = max_ms;  // overflow ⇒ capped
    if (jitter_frac <= 0.0 || raw == 0) return raw;
    const std::uint64_t span =
        static_cast<std::uint64_t>(static_cast<double>(raw) * jitter_frac);
    if (span == 0) return raw;
    return raw - mix(seed, attempt) % span;
  }
};

/// Counting wrapper: next() returns the delay for the current attempt and
/// advances; reset() rewinds after a success so the next failure starts
/// from `base_ms` again.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy) : policy_(policy) {}
  Backoff(std::uint64_t base_ms, std::uint64_t max_ms)
      : policy_{base_ms, max_ms, 0.0, 0} {}

  /// Delay before the upcoming retry; advances the attempt counter.
  std::uint64_t next_ms() { return policy_.delay_ms(attempt_++); }

  /// Attempts consumed since construction or the last reset().
  std::uint64_t attempts() const { return attempt_; }

  /// Success observed: the next failure backs off from base_ms again.
  void reset() { attempt_ = 0; }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  std::uint64_t attempt_ = 0;
};

}  // namespace tacos
