#include "common/lease.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/check.hpp"
#include "common/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tacos {

namespace {

const char* kind_name(LeaseRecord::Kind k) {
  switch (k) {
    case LeaseRecord::Kind::kClaim: return "claim";
    case LeaseRecord::Kind::kDone: return "done";
    case LeaseRecord::Kind::kRelease: return "release";
    case LeaseRecord::Kind::kCrash: return "crash";
    case LeaseRecord::Kind::kPoison: return "poison";
  }
  return "?";
}

bool kind_from(const std::string& s, LeaseRecord::Kind* k) {
  if (s == "claim") *k = LeaseRecord::Kind::kClaim;
  else if (s == "done") *k = LeaseRecord::Kind::kDone;
  else if (s == "release") *k = LeaseRecord::Kind::kRelease;
  else if (s == "crash") *k = LeaseRecord::Kind::kCrash;
  else if (s == "poison") *k = LeaseRecord::Kind::kPoison;
  else return false;
  return true;
}

constexpr char kIdPrefix[] = "lease:";

}  // namespace

std::string encode_lease_record(const LeaseRecord& rec) {
  std::ostringstream payload;
  payload << kind_name(rec.kind) << ' '
          << (rec.worker.empty() ? "-" : rec.worker) << ' ' << rec.epoch
          << ' ' << rec.deadline_ms;
  // Trace tokens only when traced: untraced logs keep their old bytes.
  if (rec.trace_id != 0)
    payload << ' ' << rec.trace_id << ' ' << rec.span_id;
  return format_journal_line(kIdPrefix + rec.task, payload.str()) + "\n";
}

bool decode_lease_record(const std::string& line, LeaseRecord* rec) {
  std::string id, payload;
  if (!parse_journal_line(line, &id, &payload)) return false;
  if (id.rfind(kIdPrefix, 0) != 0) return false;
  rec->task = id.substr(sizeof kIdPrefix - 1);
  std::istringstream in(payload);
  std::string kind, worker;
  if (!(in >> kind >> worker >> rec->epoch >> rec->deadline_ms)) return false;
  if (!kind_from(kind, &rec->kind)) return false;
  rec->worker = worker == "-" ? std::string() : worker;
  // Optional trailing trace context (absent in pre-trace-context logs).
  rec->trace_id = 0;
  rec->span_id = 0;
  std::uint64_t trace = 0, span = 0;
  if (in >> trace >> span) {
    rec->trace_id = trace;
    rec->span_id = span;
  }
  return true;
}

std::uint64_t lease_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Replayed event state of one task (applied in file order).
struct LeaseTable::TaskEvents {
  struct Claim {
    std::string owner;             ///< first claimant of this epoch (wins)
    std::uint64_t deadline_ms = 0; ///< owner's latest (renewed) deadline
    bool released = false;
  };
  std::map<std::uint64_t, Claim> claims;
  std::uint64_t max_epoch = 0;
  std::string done_worker;
  std::uint64_t done_epoch = 0;
  std::size_t crashes = 0;
  bool poisoned = false;

  void apply(const LeaseRecord& rec) {
    switch (rec.kind) {
      case LeaseRecord::Kind::kClaim: {
        Claim& c = claims[rec.epoch];
        if (c.owner.empty()) {
          c.owner = rec.worker;  // first claim in file order wins the epoch
          c.deadline_ms = rec.deadline_ms;
        } else if (c.owner == rec.worker) {
          c.deadline_ms = rec.deadline_ms;  // renewal: same epoch, no re-fence
        }
        if (rec.epoch > max_epoch) max_epoch = rec.epoch;
        break;
      }
      case LeaseRecord::Kind::kDone:
        if (rec.epoch > done_epoch) {  // last-valid-epoch wins on replay
          done_epoch = rec.epoch;
          done_worker = rec.worker;
        }
        break;
      case LeaseRecord::Kind::kRelease: {
        const auto it = claims.find(rec.epoch);
        if (it != claims.end() && it->second.owner == rec.worker)
          it->second.released = true;
        break;
      }
      case LeaseRecord::Kind::kCrash: ++crashes; break;
      case LeaseRecord::Kind::kPoison: poisoned = true; break;
    }
  }
};

LeaseTable::LeaseTable(std::string dir, bool read_only)
    : dir_(std::move(dir)), read_only_(read_only) {
  TACOS_CHECK(!dir_.empty(), "lease directory must not be empty");
  if (read_only_) return;  // never create or open for writing
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // first opener wins; races
                                                  // with peers are benign
#if defined(__unix__) || defined(__APPLE__)
  fd_ = ::open(path().c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  TACOS_CHECK(fd_ >= 0, "cannot open lease log " << path());
#endif
}

LeaseTable::~LeaseTable() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
}

std::string LeaseTable::path() const { return dir_ + "/leases.jsonl"; }

void LeaseTable::append_record(const LeaseRecord& rec) {
  TACOS_CHECK(!read_only_, "append to read-only lease table " << path());
  const std::string line = encode_lease_record(rec);
#if defined(__unix__) || defined(__APPLE__)
  // One write(2) per record: O_APPEND makes concurrent appenders from
  // different processes interleave at record granularity, never mid-line.
  ssize_t n = ::write(fd_, line.data(), line.size());
  TACOS_CHECK(n == static_cast<ssize_t>(line.size()),
              "short write to lease log " << path());
  ::fsync(fd_);
#else
  std::ofstream out(path(), std::ios::binary | std::ios::app);
  out << line;
#endif
}

std::size_t LeaseTable::refresh() {
  std::ifstream in(path(), std::ios::binary);
  if (!in.good()) return 0;
  in.seekg(static_cast<std::streamoff>(read_offset_));
  std::string chunk((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  read_offset_ += chunk.size();
  tail_ += chunk;
  std::size_t applied = 0;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t eol = tail_.find('\n', pos);
    if (eol == std::string::npos) break;  // incomplete line: retry next time
    const std::string line = tail_.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    LeaseRecord rec;
    if (!decode_lease_record(line, &rec)) {
      ++corrupt_records_;  // complete but corrupt: skip, never fatal
      continue;
    }
    tasks_[rec.task].apply(rec);
    ++applied;
  }
  tail_.erase(0, pos);
  return applied;
}

const LeaseTable::TaskEvents* LeaseTable::events(
    const std::string& task) const {
  const auto it = tasks_.find(task);
  return it == tasks_.end() ? nullptr : &it->second;
}

LeaseState LeaseTable::state(const std::string& task) const {
  LeaseState s;
  const TaskEvents* ev = events(task);
  if (!ev) return s;
  s.epoch = ev->max_epoch;
  s.done_worker = ev->done_worker;
  s.done_epoch = ev->done_epoch;
  s.crashes = ev->crashes;
  if (ev->poisoned) {
    s.phase = LeaseState::Phase::kPoisoned;
  } else if (ev->done_epoch > 0) {
    s.phase = LeaseState::Phase::kDone;
  } else if (ev->max_epoch > 0) {
    const TaskEvents::Claim& c = ev->claims.at(ev->max_epoch);
    if (!c.released && lease_now_ms() < c.deadline_ms) {
      s.phase = LeaseState::Phase::kHeld;
      s.holder = c.owner;
      s.deadline_ms = c.deadline_ms;
    }
  }
  return s;
}

std::optional<std::uint64_t> LeaseTable::try_claim(const std::string& task,
                                                   const std::string& worker,
                                                   std::uint64_t ttl_ms,
                                                   std::uint64_t trace_id,
                                                   std::uint64_t span_id) {
  refresh();
  const LeaseState before = state(task);
  if (before.phase != LeaseState::Phase::kFree) return std::nullopt;
  const std::uint64_t epoch = before.epoch + 1;
  append_record({LeaseRecord::Kind::kClaim, task, worker, epoch,
                 lease_now_ms() + ttl_ms, trace_id, span_id});
  // Re-read and let file order arbitrate: the first claim record for this
  // epoch owns the lease; everyone else lost the race.
  refresh();
  const TaskEvents* ev = events(task);
  if (!ev || ev->poisoned || ev->done_epoch > 0) return std::nullopt;
  const auto it = ev->claims.find(epoch);
  if (it == ev->claims.end() || it->second.owner != worker) return std::nullopt;
  if (ev->max_epoch > epoch) return std::nullopt;  // superseded already
  if (before.epoch > 0) ++reclaims_;  // took over an expired/released lease
  return epoch;
}

bool LeaseTable::renew(const std::string& task, const std::string& worker,
                       std::uint64_t epoch, std::uint64_t ttl_ms) {
  refresh();
  const TaskEvents* ev = events(task);
  if (!ev || ev->poisoned || ev->done_epoch > 0 || ev->max_epoch != epoch)
    return false;
  const auto it = ev->claims.find(epoch);
  if (it == ev->claims.end() || it->second.owner != worker ||
      it->second.released)
    return false;
  append_record({LeaseRecord::Kind::kClaim, task, worker, epoch,
                 lease_now_ms() + ttl_ms});
  return true;
}

bool LeaseTable::publish_done(const std::string& task,
                              const std::string& worker,
                              std::uint64_t epoch) {
  refresh();
  const TaskEvents* ev = events(task);
  const auto fenced = [&] {
    ++stale_publishes_;
    return false;
  };
  if (!ev) return fenced();
  if (ev->done_worker == worker && ev->done_epoch == epoch)
    return true;  // idempotent re-publish of our own commit
  if (ev->poisoned || ev->done_epoch > 0) return fenced();
  const auto it = ev->claims.find(epoch);
  // The fence: our claim must still be the newest epoch and unreleased.
  // (An expired-but-unsuperseded lease may still publish — nobody else
  // committed, so the result is unique; reclaim is what re-fences.)
  if (it == ev->claims.end() || it->second.owner != worker ||
      it->second.released || ev->max_epoch != epoch)
    return fenced();
  append_record({LeaseRecord::Kind::kDone, task, worker, epoch, 0});
  // A racing commit can still have appended first; file order decides.
  refresh();
  const LeaseState after = state(task);
  if (after.done_worker == worker && after.done_epoch == epoch) return true;
  return fenced();
}

void LeaseTable::release(const std::string& task, const std::string& worker,
                         std::uint64_t epoch) {
  append_record({LeaseRecord::Kind::kRelease, task, worker, epoch, 0});
  refresh();
}

void LeaseTable::record_crash(const std::string& task) {
  append_record({LeaseRecord::Kind::kCrash, task, std::string(), 0, 0});
  refresh();
}

void LeaseTable::poison(const std::string& task) {
  append_record({LeaseRecord::Kind::kPoison, task, std::string(), 0, 0});
  refresh();
}

std::size_t LeaseTable::replay_reclaims() const {
  std::size_t n = 0;
  for (const auto& [task, ev] : tasks_) {
    (void)task;
    std::size_t owned = 0;
    for (const auto& [epoch, claim] : ev.claims) {
      (void)epoch;
      if (!claim.owner.empty()) ++owned;
    }
    if (owned > 1) n += owned - 1;
  }
  return n;
}

std::vector<std::string> LeaseTable::task_ids() const {
  std::vector<std::string> ids;
  ids.reserve(tasks_.size());
  for (const auto& [task, ev] : tasks_) {
    (void)ev;
    ids.push_back(task);
  }
  return ids;  // std::map iteration order: already sorted
}

bool LeaseTable::all_settled(const std::vector<std::string>& tasks) const {
  for (const std::string& t : tasks) {
    const LeaseState s = state(t);
    if (s.phase != LeaseState::Phase::kDone &&
        s.phase != LeaseState::Phase::kPoisoned)
      return false;
  }
  return true;
}

}  // namespace tacos
