#pragma once
/// \file power_model.hpp
/// \brief Core power model — the repository's McPAT substitute — with the
///        paper's temperature-dependent leakage model (§IV).
///
/// Each benchmark defines its total chip power P256 with all 256 cores
/// active at the nominal DVFS level and the leakage reference temperature
/// (60 °C).  Per the paper, 30% of that power is leakage at 60 °C.  An
/// active core at DVFS level (f, V) and temperature T dissipates
///
///   P_core(f, V, T) = q_dyn * (V/V0)^2 * (f/f0)
///                   + q_leak * (V/V0) * (1 + lambda * (T - 60°C))
///
/// where q_dyn = 0.7 * P256/256 and q_leak = 0.3 * P256/256.  The linear
/// temperature coefficient lambda is extracted from published 22nm
/// power/temperature data [20].  Idle cores enter sleep mode and dissipate
/// ~0 W (paper §IV).
///
/// build_power_map() combines per-core power with the mesh network power
/// (spread uniformly over the chiplet silicon) into the heat-source map
/// the thermal solver consumes.  Passing per-tile temperatures lets the
/// caller iterate the leakage fixed point (power → temperature → leakage).

#include <optional>
#include <vector>

#include "alloc/policy.hpp"
#include "floorplan/layout.hpp"
#include "noc/mesh.hpp"
#include "perf/benchmark.hpp"
#include "power/dvfs.hpp"
#include "thermal/power_map.hpp"

namespace tacos {

/// Parameters of the leakage model.
struct PowerModelParams {
  double leakage_fraction = 0.30;  ///< leakage share of power at T_ref
  double t_ref_c = 60.0;           ///< leakage reference temperature
  double lambda_per_k = 0.012;     ///< linear leakage slope (1/K) [20]
  MeshParams mesh;                 ///< network power parameters
  /// Total power of the 8 memory controllers distributed along two
  /// opposite edges of the system (paper §III-A).  Off (0 W) by default:
  /// the benchmark power calibration folds MC power into the core
  /// budget; enable to study MC hot spots explicitly.
  double mc_power_total_w = 0.0;
};

/// Logical tile positions of the 8 memory controllers: four along the
/// left edge and four along the right edge of the tile grid (§III-A).
std::vector<int> memory_controller_tiles(const SystemSpec& spec = {});

/// Dynamic power of one active core (W) at DVFS level `lvl`.
double core_dynamic_power_w(const BenchmarkProfile& bench,
                            const DvfsLevel& lvl,
                            const PowerModelParams& p = {});

/// Leakage power of one active core (W) at level `lvl`, temperature `t_c`.
double core_leakage_power_w(const BenchmarkProfile& bench,
                            const DvfsLevel& lvl, double t_c,
                            const PowerModelParams& p = {});

/// Total chip power (W) if all cores run at `lvl` and temperature `t_c`
/// (excluding network) — convenience for synthetic studies and tests.
double chip_power_w(const BenchmarkProfile& bench, const DvfsLevel& lvl,
                    double t_c, int active_cores,
                    const PowerModelParams& p = {});

/// Build the heat-source map for `bench` running on `layout` at DVFS level
/// `lvl` with the given active tile set.  `tile_temps_c` supplies the
/// temperature used for each tile's leakage (size 256, logical tile order);
/// pass std::nullopt for the first leakage iteration (uses t_ref).
/// Network power is computed from the layout's mesh structure and spread
/// uniformly over the chiplets.
/// `dyn_activity` scales dynamic (switching) power and NoC traffic to
/// model execution phases (perf/phases.hpp); leakage is unaffected by
/// pipeline stalls.
/// `source_chiplet`, when non-null, receives one entry per emitted heat
/// source: the index (layout chiplet order) of the chiplet the source
/// rect rides on.  The adjoint spacing gradient uses this to translate
/// sources rigidly with their chiplet (frozen watts) when spacings move.
PowerMap build_power_map(const ChipletLayout& layout,
                         const BenchmarkProfile& bench, const DvfsLevel& lvl,
                         const std::vector<int>& active_tiles,
                         const std::optional<std::vector<double>>& tile_temps_c,
                         const PowerModelParams& p = {},
                         double dyn_activity = 1.0,
                         std::vector<int>* source_chiplet = nullptr);

/// Network power for this layout/benchmark/level (W) — exposed separately
/// for reporting (paper §III-A: ≈3.9 W single chip, up to ≈8.4 W 2.5D).
double mesh_power_w(const ChipletLayout& layout, const BenchmarkProfile& bench,
                    const DvfsLevel& lvl, const PowerModelParams& p = {});

}  // namespace tacos
