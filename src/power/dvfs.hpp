#pragma once
/// \file dvfs.hpp
/// \brief DVFS operating points of the example system (Table II).
///
/// F = {1000, 800, 533, 400, 320} MHz with corresponding
/// V = {0.90, 0.87, 0.71, 0.63, 0.63} V.  Index 0 is the nominal
/// (highest) level.  Note the two lowest frequencies share a voltage —
/// taken verbatim from the paper.

#include <array>
#include <cstddef>

#include "common/check.hpp"

namespace tacos {

/// One voltage/frequency operating point.
struct DvfsLevel {
  double freq_mhz;
  double vdd;
};

/// Number of DVFS levels.
inline constexpr std::size_t kDvfsLevelCount = 5;

/// The paper's five operating points, fastest first.
inline constexpr std::array<DvfsLevel, kDvfsLevelCount> kDvfsLevels = {{
    {1000.0, 0.90},
    {800.0, 0.87},
    {533.0, 0.71},
    {400.0, 0.63},
    {320.0, 0.63},
}};

/// Nominal (fastest) level.
inline constexpr DvfsLevel kNominalLevel = kDvfsLevels[0];

/// Bounds-checked level access.
inline const DvfsLevel& dvfs_level(std::size_t idx) {
  TACOS_CHECK(idx < kDvfsLevelCount, "DVFS level " << idx << " out of range");
  return kDvfsLevels[idx];
}

/// The paper's candidate active-core counts: {32, 64, ..., 256}.
inline constexpr std::array<int, 8> kActiveCoreChoices = {32,  64,  96,  128,
                                                          160, 192, 224, 256};

}  // namespace tacos
