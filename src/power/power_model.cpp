#include "power/power_model.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "perf/ips_model.hpp"

namespace tacos {

double core_dynamic_power_w(const BenchmarkProfile& bench,
                            const DvfsLevel& lvl, const PowerModelParams& p) {
  const double q = bench.power_256_w / 256.0;
  const double v = lvl.vdd / kNominalLevel.vdd;
  const double f = lvl.freq_mhz / kNominalLevel.freq_mhz;
  return q * (1.0 - p.leakage_fraction) * v * v * f;
}

double core_leakage_power_w(const BenchmarkProfile& bench,
                            const DvfsLevel& lvl, double t_c,
                            const PowerModelParams& p) {
  const double q = bench.power_256_w / 256.0;
  const double v = lvl.vdd / kNominalLevel.vdd;
  // The linear leakage model is extracted from 22nm data in the normal
  // operating range [20]; clamp the temperature so grossly infeasible
  // configurations (which the optimizer probes routinely) saturate instead
  // of producing an unphysical runaway.  150 °C is far above every
  // threshold studied, so the clamp never affects feasible designs.
  const double t = std::clamp(t_c, 0.0, 150.0);
  const double scale = 1.0 + p.lambda_per_k * (t - p.t_ref_c);
  // Leakage cannot go negative even for very cold (sub-reference) parts.
  return q * p.leakage_fraction * v * std::max(0.0, scale);
}

double chip_power_w(const BenchmarkProfile& bench, const DvfsLevel& lvl,
                    double t_c, int active_cores, const PowerModelParams& p) {
  TACOS_CHECK(active_cores >= 0 && active_cores <= 256,
              "active core count out of range");
  return active_cores * (core_dynamic_power_w(bench, lvl, p) +
                         core_leakage_power_w(bench, lvl, t_c, p));
}

double mesh_power_w(const ChipletLayout& layout, const BenchmarkProfile& bench,
                    const DvfsLevel& lvl, const PowerModelParams& p) {
  return network_power_w(layout, bench, lvl.freq_mhz, lvl.vdd, p.mesh);
}

PowerMap build_power_map(const ChipletLayout& layout,
                         const BenchmarkProfile& bench, const DvfsLevel& lvl,
                         const std::vector<int>& active,
                         const std::optional<std::vector<double>>& tile_temps_c,
                         const PowerModelParams& p, double dyn_activity,
                         std::vector<int>* source_chiplet) {
  TACOS_CHECK(layout.has_tiles(), "power map needs a tiled layout");
  TACOS_CHECK(dyn_activity >= 0.0 && dyn_activity <= 1.0,
              "activity must be in [0, 1], got " << dyn_activity);
  const int n = layout.spec().tiles_per_side;
  if (tile_temps_c) {
    TACOS_CHECK(tile_temps_c->size() ==
                    static_cast<std::size_t>(layout.spec().core_count()),
                "tile temperature vector has wrong size");
  }

  PowerMap map;
  if (source_chiplet) source_chiplet->clear();
  // Entries stay parallel to map.sources: one owner record per add().
  const auto owner = [&](std::size_t chiplet_idx) {
    if (source_chiplet)
      source_chiplet->push_back(static_cast<int>(chiplet_idx));
  };
  const double p_dyn = dyn_activity * core_dynamic_power_w(bench, lvl, p);
  for (int id : active) {
    TACOS_CHECK(id >= 0 && id < layout.spec().core_count(),
                "active tile id " << id << " out of range");
    const int tx = id % n, ty = id / n;
    const double t = tile_temps_c ? (*tile_temps_c)[id] : p.t_ref_c;
    const double watts = p_dyn + core_leakage_power_w(bench, lvl, t, p);
    map.add(layout.tile_rect(tx, ty), watts);
    owner(layout.chiplet_of_tile(tx, ty));
  }

  // Network power: uniform over the chiplet silicon (routers and links are
  // distributed across every tile).
  const double p_net = dyn_activity * mesh_power_w(layout, bench, lvl, p);
  const double total_area = layout.total_chiplet_area();
  for (std::size_t ci = 0; ci < layout.chiplets().size(); ++ci) {
    const auto& c = layout.chiplets()[ci];
    map.add(c.rect, p_net * c.rect.area() / total_area);
    owner(ci);
  }

  // Optional explicit memory-controller sources along the system edges.
  if (p.mc_power_total_w > 0) {
    const std::vector<int> mcs = memory_controller_tiles(layout.spec());
    for (int id : mcs) {
      map.add(layout.tile_rect(id % n, id / n),
              p.mc_power_total_w / static_cast<double>(mcs.size()));
      owner(layout.chiplet_of_tile(id % n, id / n));
    }
  }
  return map;
}

std::vector<int> memory_controller_tiles(const SystemSpec& spec) {
  const int n = spec.tiles_per_side;
  TACOS_CHECK(n >= 4, "tile grid too small for 8 memory controllers");
  // Four per edge, evenly spread: rows at ~1/8, 3/8, 5/8, 7/8 of the edge.
  std::vector<int> out;
  for (int k = 0; k < 4; ++k) {
    const int row = (2 * k + 1) * n / 8;
    out.push_back(row * n + 0);        // left edge
    out.push_back(row * n + (n - 1));  // right edge
  }
  return out;
}

}  // namespace tacos
