#pragma once
/// \file protocol.hpp
/// \brief Wire protocol of the persistent evaluation service: framed,
///        checksummed, versioned request/response messages.
///
/// Transport framing (binary, little-endian, 16-byte header):
///
///   magic   u32  0x54434F53 ("TCOS") — rejects cross-talk on a socket
///   version u16  kProtocolVersion — a mismatched peer errors, never
///                misparses
///   type    u16  frame type (request / response)
///   length  u32  payload byte count, bounded by kMaxFramePayload
///   crc     u32  CRC-32 (IEEE 802.3) of the payload bytes
///
/// Every field is validated on decode; any violation — wrong magic, alien
/// version, oversized length, checksum mismatch, short payload — raises
/// `ServiceError(kProtocol)`: a corrupted or truncated frame is a typed,
/// reportable failure, never a crash or a silently misread request.
///
/// Payloads are the repo's line-oriented key/value text (the journal
/// codecs' idiom): human-debuggable with `xxd`, strict to parse, and
/// byte-stable — which matters because the *bytes* of an optimize response
/// are exactly what the client journals, and byte-identity with a local
/// run is the service's core contract (docs/ROBUSTNESS.md).
///
/// Idempotency: a request's `idem` key is the FNV-1a hash of its
/// canonical content (params line + kind + task identity), so a retry of
/// the same logical request carries the same key and resolves to the same
/// memo-cache slot server-side — a request that completed just before the
/// connection died is answered from cache on retry, not recomputed.

#include <cstdint>
#include <string>

#include "common/errors.hpp"
#include "core/optimizer.hpp"
#include "core/organization.hpp"

namespace tacos {

inline constexpr std::uint32_t kFrameMagic = 0x54434F53u;  // "TCOS"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// One framed message.
struct Frame {
  enum class Type : std::uint16_t { kRequest = 1, kResponse = 2 };
  Type type = Type::kRequest;
  std::string payload;
};

/// Serialize `frame` (header + payload) into wire bytes.  Throws
/// ServiceError(kProtocol) when the payload exceeds kMaxFramePayload.
std::string encode_frame(const Frame& frame);

/// Header-only encode/decode (the transport reads the header first, then
/// exactly `length` payload bytes).  decode throws ServiceError(kProtocol)
/// on any field violation.
struct FrameHeader {
  Frame::Type type = Frame::Type::kRequest;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};
std::string encode_frame_header(const FrameHeader& h);
FrameHeader decode_frame_header(const char* bytes, std::size_t len);

/// Validate `payload` against the header's length/crc; throws
/// ServiceError(kProtocol) on mismatch.
void check_frame_payload(const FrameHeader& h, const std::string& payload);

/// Whole-buffer decode (tests and in-memory paths): header + payload in
/// one contiguous byte string.  Throws ServiceError(kProtocol) on any
/// corruption or truncation.
Frame decode_frame(const std::string& bytes);

// --- Messages ----------------------------------------------------------

/// One request.  `params` is the canonical eval-params line (below): the
/// complete result-affecting configuration, which doubles as the memo-key
/// material.  `deadline_ms` bounds this request end to end (0 = none);
/// `task_deadline_s` is the *semantic* per-task budget (`--task-deadline`)
/// that produces the same journaled `timeout:` rows a local run would.
///
/// `trace_id`/`parent_span` carry the caller's distributed-trace context
/// (obs::TraceContext) so server-side spans chain to the requesting span in
/// a merged timeline.  A zero trace id means untraced; the codec then omits
/// the `trace` line entirely, so untraced request bytes are identical to
/// pre-trace-context builds (same kProtocolVersion, same idem keys).
struct EvalRequest {
  enum class Kind { kPing, kOptimize, kEvaluate, kStats };
  Kind kind = Kind::kPing;
  std::uint64_t idem = 0;
  std::uint64_t deadline_ms = 0;
  double task_deadline_s = 0.0;
  std::uint64_t trace_id = 0;     ///< caller's trace id (0 = untraced)
  std::uint64_t parent_span = 0;  ///< caller's span id
  std::string params;
  std::string bench;
  Organization org;  ///< kEvaluate only
};

/// One response.  `ok` carries `payload` (the result bytes — for
/// kOptimize exactly the journal payload `encode_opt_result` produced);
/// otherwise `error_kind` is a ServiceError kind tag (or an evaluation
/// error class) with `retryable` telling the client whether backing off
/// and retrying can succeed.
struct EvalResponse {
  bool ok = false;
  std::uint64_t idem = 0;
  bool memo_hit = false;
  std::string payload;
  std::string error_kind;
  std::string detail;
  bool retryable = false;
};

std::string encode_request(const EvalRequest& req);
bool decode_request(const std::string& payload, EvalRequest* req);
std::string encode_response(const EvalResponse& resp);
bool decode_response(const std::string& payload, EvalResponse* resp);

/// Throw the ServiceError a failed response describes (client side).
[[noreturn]] void throw_response_error(const EvalResponse& resp);

// --- Configuration canonicalization ------------------------------------

/// Canonical one-line rendering of every knob that changes evaluation
/// results (EvalConfig + OptimizerOptions as the CLI can set them).  The
/// server rebuilds its evaluation config from this line, so a remote task
/// runs under bit-identical settings — and the line's hash keys the memo
/// cache, so two sweeps agree on a cache slot iff they agree on every
/// result-affecting knob.
std::string encode_eval_params(const EvalConfig& config,
                               const OptimizerOptions& opts);
/// Strict inverse onto defaulted structs; false on any malformed field.
bool decode_eval_params(const std::string& line, EvalConfig* config,
                        OptimizerOptions* opts);

/// Canonical organization identity at the Evaluator's own quantization
/// (0.01 mm on spacings): two organizations the evaluation stack cannot
/// distinguish hash to the same memo key.
std::string canonical_org_key(const Organization& org);

/// Memo-cache keys (stable across runs, builds and platforms).
std::string memo_key_optimize(const std::string& params,
                              const std::string& bench);
std::string memo_key_evaluate(const std::string& params,
                              const std::string& bench,
                              const Organization& org);

/// The idempotency key of a request: FNV-1a of its canonical identity.
/// Trace context is deliberately excluded — a traced retry must resolve to
/// the same memo slot as an untraced (or differently-traced) attempt.
std::uint64_t request_idem_key(const EvalRequest& req);

}  // namespace tacos
