#pragma once
/// \file transport.hpp
/// \brief Socket transport of the evaluation service: a Unix-domain (or
///        TCP) byte stream carrying the framed protocol of protocol.hpp.
///
/// Everything here is deliberately boring POSIX: blocking sockets driven
/// through poll() so every receive honors a millisecond budget, MSG_NOSIGNAL
/// sends so a dying peer yields an error return instead of SIGPIPE, and
/// EINTR retried everywhere.  All failures are typed:
///
///   * connect/accept/read/write failures, EOF mid-frame, refused or
///     vanished peers → ServiceError(kConnection) — retryable;
///   * a receive budget expiring               → ServiceError(kDeadline);
///   * anything wrong with the bytes themselves → ServiceError(kProtocol)
///     from the protocol layer.
///
/// The default transport is a Unix-domain socket (`--socket=PATH`): no
/// network exposure, filesystem permissions for access control.  TCP
/// (`--port=N`, loopback) exists behind the same Endpoint interface for
/// setups where workers cannot share a filesystem.

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hpp"

namespace tacos {

/// Where a server listens / a client connects.  `parse_endpoint` accepts
/// a Unix socket path (the default) or `tcp:<host>:<port>`.
struct Endpoint {
  bool tcp = false;
  std::string path;              ///< unix: socket path
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string describe() const;
};

/// Parse `--remote=ADDR` / serve addresses.  Throws ServiceError
/// (kConnection) on a malformed address.
Endpoint parse_endpoint(const std::string& addr);

/// One connected byte stream (move-only; closes on destruction).
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  Conn(Conn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Conn& operator=(Conn&& o) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;
  ~Conn() { close(); }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send one frame (header + payload), whole or error.  `timeout_ms`
  /// bounds the send (0 = no bound).
  void send_frame(const Frame& frame, std::uint64_t timeout_ms = 0);

  /// Receive one frame.  `timeout_ms` bounds the whole receive (0 = no
  /// bound); expiry throws ServiceError(kDeadline).  A cleanly closed
  /// peer *before any byte* of the frame returns nullopt; EOF mid-frame
  /// is a torn frame and throws ServiceError(kConnection).
  std::optional<Frame> recv_frame(std::uint64_t timeout_ms = 0);

  /// True when a byte (or EOF) is waiting within `timeout_ms`.  The idle
  /// tick of a server worker: polling readability first keeps a timeout
  /// from ever landing mid-frame and desynchronizing the stream.
  bool wait_readable(std::uint64_t timeout_ms);

 private:
  int fd_ = -1;
};

/// A listening socket (Unix or TCP per the endpoint).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen.  For Unix endpoints a stale socket file left by a
  /// crashed server is unlinked first.  Throws ServiceError(kConnection).
  void open(const Endpoint& ep);

  /// Accept one connection, waiting at most `timeout_ms` (0 = forever).
  /// nullopt on timeout (the server's shutdown-poll tick).
  std::optional<Conn> accept(std::uint64_t timeout_ms);

  bool ok() const { return fd_ >= 0; }
  const Endpoint& endpoint() const { return endpoint_; }
  /// For `--port=0` (tests): the port the kernel actually assigned.
  std::uint16_t bound_port() const { return bound_port_; }
  void close();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
  std::uint16_t bound_port_ = 0;
};

/// Connect to `ep`, waiting at most `timeout_ms` (0 = OS default).
/// Throws ServiceError(kConnection) on refusal/timeout.
Conn connect_endpoint(const Endpoint& ep, std::uint64_t timeout_ms);

}  // namespace tacos
