#include "service/protocol.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/hash.hpp"
#include "common/journal.hpp"

namespace tacos {

namespace {

std::string fmt_g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

bool read_double_tok(const std::string& tok, double* out) {
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size() && !tok.empty();
}

void put_u16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[noreturn]] void protocol_error(const std::string& detail) {
  throw ServiceError(ServiceError::Kind::kProtocol, detail);
}

}  // namespace

std::string encode_frame_header(const FrameHeader& h) {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  put_u32(&out, kFrameMagic);
  put_u16(&out, kProtocolVersion);
  put_u16(&out, static_cast<std::uint16_t>(h.type));
  put_u32(&out, h.length);
  put_u32(&out, h.crc);
  return out;
}

FrameHeader decode_frame_header(const char* bytes, std::size_t len) {
  if (len < kFrameHeaderBytes)
    protocol_error("short frame header (" + std::to_string(len) + " of " +
                   std::to_string(kFrameHeaderBytes) + " bytes)");
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes);
  const std::uint32_t magic = get_u32(p);
  if (magic != kFrameMagic) {
    std::ostringstream os;
    os << "bad frame magic 0x" << std::hex << magic;
    protocol_error(os.str());
  }
  const std::uint16_t version = get_u16(p + 4);
  if (version != kProtocolVersion)
    protocol_error("protocol version " + std::to_string(version) +
                   " (this build speaks " + std::to_string(kProtocolVersion) +
                   ")");
  FrameHeader h;
  const std::uint16_t type = get_u16(p + 6);
  if (type != static_cast<std::uint16_t>(Frame::Type::kRequest) &&
      type != static_cast<std::uint16_t>(Frame::Type::kResponse))
    protocol_error("unknown frame type " + std::to_string(type));
  h.type = static_cast<Frame::Type>(type);
  h.length = get_u32(p + 8);
  if (h.length > kMaxFramePayload)
    protocol_error("frame payload length " + std::to_string(h.length) +
                   " exceeds the " + std::to_string(kMaxFramePayload) +
                   "-byte bound");
  h.crc = get_u32(p + 12);
  return h;
}

void check_frame_payload(const FrameHeader& h, const std::string& payload) {
  if (payload.size() != h.length)
    protocol_error("frame payload truncated (" +
                   std::to_string(payload.size()) + " of " +
                   std::to_string(h.length) + " bytes)");
  const std::uint32_t crc = crc32(payload);
  if (crc != h.crc)
    protocol_error("frame checksum mismatch");
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload)
    protocol_error("frame payload too large to encode");
  FrameHeader h;
  h.type = frame.type;
  h.length = static_cast<std::uint32_t>(frame.payload.size());
  h.crc = crc32(frame.payload);
  return encode_frame_header(h) + frame.payload;
}

Frame decode_frame(const std::string& bytes) {
  const FrameHeader h = decode_frame_header(bytes.data(), bytes.size());
  if (bytes.size() != kFrameHeaderBytes + h.length)
    protocol_error("frame length mismatch (" + std::to_string(bytes.size()) +
                   " bytes for a " +
                   std::to_string(kFrameHeaderBytes + h.length) +
                   "-byte frame)");
  Frame f;
  f.type = h.type;
  f.payload = bytes.substr(kFrameHeaderBytes);
  check_frame_payload(h, f.payload);
  return f;
}

// --- Messages ----------------------------------------------------------

namespace {

const char* request_kind_name(EvalRequest::Kind k) {
  switch (k) {
    case EvalRequest::Kind::kPing: return "ping";
    case EvalRequest::Kind::kOptimize: return "optimize";
    case EvalRequest::Kind::kEvaluate: return "evaluate";
    case EvalRequest::Kind::kStats: return "stats";
  }
  return "ping";
}

bool request_kind_from(const std::string& s, EvalRequest::Kind* out) {
  if (s == "ping") *out = EvalRequest::Kind::kPing;
  else if (s == "optimize") *out = EvalRequest::Kind::kOptimize;
  else if (s == "evaluate") *out = EvalRequest::Kind::kEvaluate;
  else if (s == "stats") *out = EvalRequest::Kind::kStats;
  else return false;
  return true;
}

}  // namespace

std::string encode_request(const EvalRequest& req) {
  std::ostringstream os;
  os << "kind " << request_kind_name(req.kind) << '\n'
     << "idem " << req.idem << '\n'
     << "deadline_ms " << req.deadline_ms << '\n'
     << "task_deadline " << fmt_g17(req.task_deadline_s) << '\n';
  // Emitted only when traced: untraced request bytes stay identical to
  // builds that predate trace-context propagation.
  if (req.trace_id != 0)
    os << "trace " << req.trace_id << ' ' << req.parent_span << '\n';
  if (!req.params.empty()) os << "params " << escape_field(req.params) << '\n';
  if (!req.bench.empty()) os << "bench " << req.bench << '\n';
  if (req.kind == EvalRequest::Kind::kEvaluate)
    os << "org " << req.org.n_chiplets << ' ' << fmt_g17(req.org.spacing.s1)
       << ' ' << fmt_g17(req.org.spacing.s2) << ' '
       << fmt_g17(req.org.spacing.s3) << ' ' << req.org.dvfs_idx << ' '
       << req.org.active_cores << '\n';
  return os.str();
}

bool decode_request(const std::string& payload, EvalRequest* req) {
  *req = EvalRequest{};
  bool saw_kind = false;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "kind") {
      std::string k;
      if (!(ls >> k) || !request_kind_from(k, &req->kind)) return false;
      saw_kind = true;
    } else if (key == "idem") {
      if (!(ls >> req->idem)) return false;
    } else if (key == "deadline_ms") {
      if (!(ls >> req->deadline_ms)) return false;
    } else if (key == "task_deadline") {
      std::string tok;
      if (!(ls >> tok) || !read_double_tok(tok, &req->task_deadline_s))
        return false;
    } else if (key == "trace") {
      if (!(ls >> req->trace_id >> req->parent_span)) return false;
    } else if (key == "params") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      req->params = unescape_field(rest);
    } else if (key == "bench") {
      if (!(ls >> req->bench)) return false;
    } else if (key == "org") {
      std::string s1, s2, s3;
      if (!(ls >> req->org.n_chiplets >> s1 >> s2 >> s3 >>
            req->org.dvfs_idx >> req->org.active_cores))
        return false;
      if (!read_double_tok(s1, &req->org.spacing.s1) ||
          !read_double_tok(s2, &req->org.spacing.s2) ||
          !read_double_tok(s3, &req->org.spacing.s3))
        return false;
    } else {
      return false;  // strict: we only ever parse our own output
    }
  }
  return saw_kind;
}

std::string encode_response(const EvalResponse& resp) {
  std::ostringstream os;
  os << "status " << (resp.ok ? "ok" : "error") << '\n'
     << "idem " << resp.idem << '\n';
  if (resp.ok) {
    os << "memo " << (resp.memo_hit ? 1 : 0) << '\n'
       << "payload " << escape_field(resp.payload) << '\n';
  } else {
    os << "error_kind " << resp.error_kind << '\n'
       << "retryable " << (resp.retryable ? 1 : 0) << '\n'
       << "detail " << escape_field(resp.detail) << '\n';
  }
  return os.str();
}

bool decode_response(const std::string& payload, EvalResponse* resp) {
  *resp = EvalResponse{};
  bool saw_status = false;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    const auto rest_of = [&ls]() {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      return unescape_field(rest);
    };
    if (key == "status") {
      std::string s;
      if (!(ls >> s)) return false;
      if (s != "ok" && s != "error") return false;
      resp->ok = s == "ok";
      saw_status = true;
    } else if (key == "idem") {
      if (!(ls >> resp->idem)) return false;
    } else if (key == "memo") {
      int v = 0;
      if (!(ls >> v)) return false;
      resp->memo_hit = v != 0;
    } else if (key == "payload") {
      resp->payload = rest_of();
    } else if (key == "error_kind") {
      if (!(ls >> resp->error_kind)) return false;
    } else if (key == "retryable") {
      int v = 0;
      if (!(ls >> v)) return false;
      resp->retryable = v != 0;
    } else if (key == "detail") {
      resp->detail = rest_of();
    } else {
      return false;
    }
  }
  return saw_status;
}

void throw_response_error(const EvalResponse& resp) {
  ServiceError::Kind kind = ServiceError::Kind::kRemote;
  for (const ServiceError::Kind k :
       {ServiceError::Kind::kConnection, ServiceError::Kind::kProtocol,
        ServiceError::Kind::kOverloaded, ServiceError::Kind::kDeadline,
        ServiceError::Kind::kShutdown, ServiceError::Kind::kRemote})
    if (resp.error_kind == ServiceError::kind_name(k)) kind = k;
  throw ServiceError(kind, resp.detail.empty()
                               ? "server reported '" + resp.error_kind + "'"
                               : resp.detail);
}

// --- Configuration canonicalization ------------------------------------

std::string encode_eval_params(const EvalConfig& config,
                               const OptimizerOptions& opts) {
  std::ostringstream os;
  os << "v1 grid=" << config.thermal.grid_nx << 'x' << config.thermal.grid_ny
     << " precond=" << precond_name(config.thermal.solve.precond)
     << " mg_mixed=" << (config.thermal.solve.mg_mixed_precision ? 1 : 0)
     << " leak_tol=" << fmt_g17(config.leak_tol_c)
     << " max_leak_iters=" << config.max_leak_iters
     << " frontier_margin=" << fmt_g17(config.frontier_margin_c)
     << " fidelity=" << fidelity_mode_name(config.ladder.mode)
     << " keep_frac=" << fmt_g17(config.ladder.keep_frac)
     << " min_calib=" << config.ladder.min_calibration
     << " ladder_margin=" << fmt_g17(config.ladder.safety_margin_c)
     << " surrogate_min=" << config.ladder.surrogate_min_samples
     << " medium_min=" << config.ladder.medium_grid_min
     << " medium_leak_tol=" << fmt_g17(config.ladder.medium_leak_tol_c)
     << " alpha=" << fmt_g17(opts.alpha) << " beta=" << fmt_g17(opts.beta)
     << " threshold=" << fmt_g17(opts.threshold_c)
     << " step=" << fmt_g17(opts.step_mm) << " starts=" << opts.starts
     << " max_moves=" << opts.max_moves << " seed=" << opts.seed
     << " prune=" << fmt_g17(opts.prune_margin_c);
  // Refinement knobs are emitted only when refinement is on: grid-only
  // requests keep their historical canonical form (and memo keys).
  if (opts.refine)
    os << " refine=1 refine_tol=" << fmt_g17(opts.refine_tol_mm)
       << " refine_max_steps=" << opts.refine_max_steps;
  os << " n=";
  for (std::size_t i = 0; i < opts.chiplet_counts.size(); ++i)
    os << (i ? "," : "") << opts.chiplet_counts[i];
  return os.str();
}

bool decode_eval_params(const std::string& line, EvalConfig* config,
                        OptimizerOptions* opts) {
  *config = EvalConfig{};
  *opts = OptimizerOptions{};
  std::istringstream in(line);
  std::string tok;
  if (!(in >> tok) || tok != "v1") return false;
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "grid") {
      std::size_t nx = 0, ny = 0;
      char x = 0;
      std::istringstream gs(val);
      if (!(gs >> nx >> x >> ny) || x != 'x' || nx == 0 || ny == 0)
        return false;
      config->thermal.grid_nx = nx;
      config->thermal.grid_ny = ny;
    } else if (key == "precond") {
      if (!parse_precond_name(val, &config->thermal.solve.precond))
        return false;
    } else if (key == "mg_mixed") {
      config->thermal.solve.mg_mixed_precision = val == "1";
      if (val != "0" && val != "1") return false;
    } else if (key == "leak_tol") {
      if (!read_double_tok(val, &config->leak_tol_c)) return false;
    } else if (key == "max_leak_iters") {
      config->max_leak_iters = std::atoi(val.c_str());
      if (config->max_leak_iters <= 0) return false;
    } else if (key == "frontier_margin") {
      if (!read_double_tok(val, &config->frontier_margin_c)) return false;
    } else if (key == "fidelity") {
      const std::optional<FidelityMode> m = parse_fidelity_mode(val);
      if (!m) return false;
      config->ladder.mode = *m;
    } else if (key == "keep_frac") {
      if (!read_double_tok(val, &config->ladder.keep_frac)) return false;
    } else if (key == "min_calib") {
      config->ladder.min_calibration = std::atoi(val.c_str());
    } else if (key == "ladder_margin") {
      if (!read_double_tok(val, &config->ladder.safety_margin_c))
        return false;
    } else if (key == "surrogate_min") {
      config->ladder.surrogate_min_samples =
          static_cast<std::size_t>(std::atol(val.c_str()));
    } else if (key == "medium_min") {
      config->ladder.medium_grid_min =
          static_cast<std::size_t>(std::atol(val.c_str()));
    } else if (key == "medium_leak_tol") {
      if (!read_double_tok(val, &config->ladder.medium_leak_tol_c))
        return false;
    } else if (key == "alpha") {
      if (!read_double_tok(val, &opts->alpha)) return false;
    } else if (key == "beta") {
      if (!read_double_tok(val, &opts->beta)) return false;
    } else if (key == "threshold") {
      if (!read_double_tok(val, &opts->threshold_c)) return false;
    } else if (key == "step") {
      if (!read_double_tok(val, &opts->step_mm)) return false;
    } else if (key == "starts") {
      opts->starts = std::atoi(val.c_str());
      if (opts->starts <= 0) return false;
    } else if (key == "max_moves") {
      opts->max_moves = std::atoi(val.c_str());
      if (opts->max_moves <= 0) return false;
    } else if (key == "seed") {
      char* end = nullptr;
      opts->seed = std::strtoull(val.c_str(), &end, 10);
      if (end != val.c_str() + val.size()) return false;
    } else if (key == "prune") {
      if (!read_double_tok(val, &opts->prune_margin_c)) return false;
    } else if (key == "refine") {
      opts->refine = val == "1";
      if (val != "0" && val != "1") return false;
    } else if (key == "refine_tol") {
      if (!read_double_tok(val, &opts->refine_tol_mm)) return false;
    } else if (key == "refine_max_steps") {
      opts->refine_max_steps = std::atoi(val.c_str());
      if (opts->refine_max_steps <= 0) return false;
    } else if (key == "n") {
      opts->chiplet_counts.clear();
      std::istringstream ns(val);
      std::string piece;
      while (std::getline(ns, piece, ','))
        opts->chiplet_counts.push_back(std::atoi(piece.c_str()));
      if (opts->chiplet_counts.empty()) return false;
    } else {
      return false;  // strict: an unknown knob must not be silently dropped
    }
  }
  return true;
}

std::string canonical_org_key(const Organization& org) {
  // Quantize spacings at 1 nm — the Evaluator's own LayoutKey resolution —
  // so keys identify what the stack can distinguish.  (0.01 mm used to be
  // enough for grid-stepped sweeps, but gradient-refined spacings land at
  // arbitrary off-grid points and would collide at that resolution.)
  const auto q = [](double v) { return std::lround(v * 1e6); };
  std::ostringstream os;
  os << "n=" << org.n_chiplets << " s=" << q(org.spacing.s1) << ','
     << q(org.spacing.s2) << ',' << q(org.spacing.s3)
     << " f=" << org.dvfs_idx << " p=" << org.active_cores;
  return os.str();
}

std::string memo_key_optimize(const std::string& params,
                              const std::string& bench) {
  return "opt:" + hash_hex(fnv1a64(params)) + ":" + bench;
}

std::string memo_key_evaluate(const std::string& params,
                              const std::string& bench,
                              const Organization& org) {
  const std::string key = canonical_org_key(org);
  return "eval:" + hash_hex(fnv1a64(params)) + ":" + bench + ":" +
         hash_hex(fnv1a64(key));
}

std::uint64_t request_idem_key(const EvalRequest& req) {
  std::string id = request_kind_name(req.kind);
  id += '\x1f';
  id += req.params;
  id += '\x1f';
  id += req.bench;
  id += '\x1f';
  id += fmt_g17(req.task_deadline_s);
  if (req.kind == EvalRequest::Kind::kEvaluate) {
    id += '\x1f';
    id += canonical_org_key(req.org);
  }
  return fnv1a64(id);
}

}  // namespace tacos
