#include "service/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace tacos {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void conn_error(const std::string& what) {
  throw ServiceError(ServiceError::Kind::kConnection,
                     what + ": " + std::strerror(errno));
}

/// Millisecond budget tracker: 0 = unbounded.
struct Budget {
  explicit Budget(std::uint64_t timeout_ms)
      : bounded(timeout_ms != 0),
        deadline(Clock::now() + std::chrono::milliseconds(timeout_ms)) {}
  bool bounded;
  Clock::time_point deadline;

  /// Remaining milliseconds for poll(): -1 = wait forever, 0 = expired.
  int poll_ms() const {
    if (!bounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) return 0;
    return static_cast<int>(left > 60'000 ? 60'000 : left);
  }
  bool expired() const { return bounded && Clock::now() >= deadline; }
};

/// poll() one fd for `events`, honoring the budget.  Returns false on
/// budget expiry; throws ServiceError(kConnection) on poll failure.
bool wait_fd(int fd, short events, const Budget& budget) {
  for (;;) {
    if (budget.expired()) return false;
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, budget.poll_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      conn_error("poll");
    }
    if (rc == 0) {
      if (budget.expired()) return false;
      continue;  // periodic tick of an unbounded wait
    }
    return true;  // readable/writable (or error/hup — the I/O call reports)
  }
}

void send_all(int fd, const char* data, std::size_t len,
              const Budget& budget) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, budget))
        throw ServiceError(ServiceError::Kind::kDeadline,
                           "send budget expired mid-frame");
      continue;
    }
    conn_error("send");
  }
}

/// Read exactly `len` bytes.  Returns false iff the peer closed cleanly
/// *before the first byte* and `eof_ok`; EOF later is a torn frame.
bool recv_exact(int fd, char* out, std::size_t len, const Budget& budget,
                bool eof_ok) {
  std::size_t off = 0;
  while (off < len) {
    if (!wait_fd(fd, POLLIN, budget))
      throw ServiceError(ServiceError::Kind::kDeadline,
                         "receive budget expired");
    const ssize_t n = ::recv(fd, out + off, len - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (off == 0 && eof_ok) return false;
      throw ServiceError(ServiceError::Kind::kConnection,
                         "peer closed mid-frame (" + std::to_string(off) +
                             " of " + std::to_string(len) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    conn_error("recv");
  }
  return true;
}

int make_socket(bool tcp) {
  const int fd = ::socket(tcp ? AF_INET : AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) conn_error("socket");
  return fd;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "bad IPv4 host '" + ep.host + "'");
  return addr;
}

}  // namespace

std::string Endpoint::describe() const {
  if (tcp) return "tcp:" + host + ":" + std::to_string(port);
  return path;
}

Endpoint parse_endpoint(const std::string& addr) {
  Endpoint ep;
  if (addr.rfind("tcp:", 0) == 0) {
    ep.tcp = true;
    const std::string rest = addr.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 >= rest.size())
      throw ServiceError(ServiceError::Kind::kConnection,
                         "bad tcp address '" + addr +
                             "' (expected tcp:<host>:<port>)");
    ep.host = rest.substr(0, colon);
    const long port = std::atol(rest.c_str() + colon + 1);
    if (port <= 0 || port > 65535)
      throw ServiceError(ServiceError::Kind::kConnection,
                         "bad tcp port in '" + addr + "'");
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  if (addr.empty())
    throw ServiceError(ServiceError::Kind::kConnection,
                       "empty service address");
  ep.path = addr.rfind("unix:", 0) == 0 ? addr.substr(5) : addr;
  return ep;
}

Conn& Conn::operator=(Conn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::send_frame(const Frame& frame, std::uint64_t timeout_ms) {
  if (fd_ < 0)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "send on a closed connection");
  const std::string bytes = encode_frame(frame);
  const Budget budget(timeout_ms);
  send_all(fd_, bytes.data(), bytes.size(), budget);
}

std::optional<Frame> Conn::recv_frame(std::uint64_t timeout_ms) {
  if (fd_ < 0)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "receive on a closed connection");
  const Budget budget(timeout_ms);
  char header[kFrameHeaderBytes];
  if (!recv_exact(fd_, header, sizeof header, budget, /*eof_ok=*/true))
    return std::nullopt;
  const FrameHeader h = decode_frame_header(header, sizeof header);
  Frame f;
  f.type = h.type;
  f.payload.resize(h.length);
  if (h.length > 0)
    recv_exact(fd_, f.payload.data(), h.length, budget, /*eof_ok=*/false);
  check_frame_payload(h, f.payload);
  return f;
}

bool Conn::wait_readable(std::uint64_t timeout_ms) {
  if (fd_ < 0)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "wait on a closed connection");
  const Budget budget(timeout_ms == 0 ? 1 : timeout_ms);
  return wait_fd(fd_, POLLIN, budget);
}

Listener::~Listener() { close(); }

void Listener::open(const Endpoint& ep) {
  close();
  endpoint_ = ep;
  const int fd = make_socket(ep.tcp);
  if (ep.tcp) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = tcp_addr(ep);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      conn_error("bind " + ep.describe());
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      bound_port_ = ntohs(addr.sin_port);
  } else {
    // A crashed server leaves its socket file behind; a bound path would
    // refuse EADDRINUSE forever, so unlink the stale file first.  (A
    // *live* server is protected by its own lockfile, not by this path.)
    ::unlink(ep.path.c_str());
    sockaddr_un addr = unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      conn_error("bind " + ep.describe());
    }
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    conn_error("listen " + ep.describe());
  }
  fd_ = fd;
}

std::optional<Conn> Listener::accept(std::uint64_t timeout_ms) {
  if (fd_ < 0)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "accept on a closed listener");
  const Budget budget(timeout_ms);
  if (!wait_fd(fd_, POLLIN, budget)) return std::nullopt;
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) return Conn(cfd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    conn_error("accept");
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!endpoint_.tcp && !endpoint_.path.empty())
      ::unlink(endpoint_.path.c_str());
  }
}

Conn connect_endpoint(const Endpoint& ep, std::uint64_t timeout_ms) {
  const int fd = make_socket(ep.tcp);
  // Non-blocking connect so the budget applies to connection establishment
  // too (a wedged server must not hang the client past its deadline).
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc;
  if (ep.tcp) {
    sockaddr_in addr = tcp_addr(ep);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } else {
    sockaddr_un addr = unix_addr(ep.path);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }
  if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    conn_error("connect " + ep.describe());
  }
  if (rc < 0) {
    const Budget budget(timeout_ms);
    bool ready = false;
    try {
      ready = wait_fd(fd, POLLOUT, budget);
    } catch (...) {
      ::close(fd);
      throw;
    }
    if (!ready) {
      ::close(fd);
      throw ServiceError(ServiceError::Kind::kConnection,
                         "connect " + ep.describe() + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      errno = err != 0 ? err : errno;
      conn_error("connect " + ep.describe());
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O is poll-driven
  return Conn(fd);
}

}  // namespace tacos
