#include "service/client.hpp"

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tacos {

namespace {

/// Client-side receive budget for one attempt: the request deadline plus
/// slack for queueing and the response bytes, or a generous fallback so
/// even a deadline-less request cannot hang on a wedged server forever.
std::uint64_t recv_budget_ms(const ClientOptions& options) {
  if (options.request_deadline_ms > 0)
    return options.request_deadline_ms + 5'000;
  return 10 * 60 * 1'000;  // 10 min: longer than any sane evaluation
}

}  // namespace

EvalResponse EvalClient::attempt(const EvalRequest& req) {
  static obs::SpanSite attempt_site("service.client.attempt", "service");
  obs::TraceSpan attempt_span(attempt_site);
  if (!conn_.ok())
    conn_ = connect_endpoint(options_.endpoint, options_.connect_timeout_ms);
  conn_.send_frame({Frame::Type::kRequest, encode_request(req)}, 10'000);
  const std::optional<Frame> frame = conn_.recv_frame(recv_budget_ms(options_));
  if (!frame)
    throw ServiceError(ServiceError::Kind::kConnection,
                       "server closed the connection before responding");
  if (frame->type != Frame::Type::kResponse)
    throw ServiceError(ServiceError::Kind::kProtocol,
                       "expected a response frame");
  EvalResponse resp;
  if (!decode_response(frame->payload, &resp))
    throw ServiceError(ServiceError::Kind::kProtocol,
                       "malformed response payload");
  // A shed frame is answered before the server reads the request, so its
  // idem echo may be 0; any *other* mismatch means the stream delivered
  // somebody else's answer.
  if (resp.idem != req.idem && resp.idem != 0)
    throw ServiceError(ServiceError::Kind::kProtocol,
                       "response idempotency key mismatch");
  if (!resp.ok) throw_response_error(resp);
  return resp;
}

EvalResponse EvalClient::call(EvalRequest req) {
  req.idem = request_idem_key(req);
  req.deadline_ms = options_.request_deadline_ms;
  static obs::SpanSite call_site("service.client.call", "service");
  obs::TraceSpan call_span(call_site);
  if (!req.bench.empty()) call_span.arg("bench", req.bench);
  // Stamp the caller's trace context into the request so server-side spans
  // chain to this one.  The span above is the natural parent; when tracing
  // is off the context is zero and the request bytes stay pre-trace-ctx.
  {
    obs::TraceContext ctx = call_span.context();
    if (!ctx.valid()) ctx = obs::current_trace_context();
    req.trace_id = ctx.trace_id;
    req.parent_span = ctx.span_id;
  }
  static obs::Counter retry_metric =
      obs::MetricsRegistry::global().counter("service.client_retries");
  Backoff backoff(options_.backoff);
  last_attempts_ = 0;
  for (;;) {
    if (options_.cancel) options_.cancel->poll();
    ++last_attempts_;
    try {
      return attempt(req);
    } catch (const ServiceError& e) {
      conn_.close();  // reconnect fresh: the stream state is suspect
      if (!e.retryable() || last_attempts_ >= options_.max_attempts) throw;
      retry_metric.add();
      const std::uint64_t delay = backoff.next_ms();
      // Sleep in short slices so a cancel (Ctrl-C) interrupts the backoff
      // within ~50 ms instead of after a full capped delay.
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(delay);
      while (std::chrono::steady_clock::now() < until) {
        if (options_.cancel) options_.cancel->poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
  }
}

bool EvalClient::ping() {
  EvalRequest req;
  req.kind = EvalRequest::Kind::kPing;
  req.idem = request_idem_key(req);
  req.deadline_ms = options_.request_deadline_ms;
  try {
    const EvalResponse resp = attempt(req);
    return resp.payload == "pong";
  } catch (const ServiceError&) {
    conn_.close();
    return false;
  }
}

std::optional<std::string> EvalClient::stats() {
  EvalRequest req;
  req.kind = EvalRequest::Kind::kStats;
  req.idem = request_idem_key(req);
  req.deadline_ms = options_.request_deadline_ms;
  try {
    const EvalResponse resp = attempt(req);
    return resp.payload;
  } catch (const ServiceError&) {
    conn_.close();
    return std::nullopt;
  }
}

std::string EvalClient::optimize(const EvalConfig& config,
                                 const OptimizerOptions& opts,
                                 const std::string& bench,
                                 double task_deadline_s, bool* memo_hit) {
  EvalRequest req;
  req.kind = EvalRequest::Kind::kOptimize;
  req.task_deadline_s = task_deadline_s;
  req.params = encode_eval_params(config, opts);
  req.bench = bench;
  const EvalResponse resp = call(std::move(req));
  if (memo_hit) *memo_hit = resp.memo_hit;
  return resp.payload;
}

std::string EvalClient::evaluate(const EvalConfig& config,
                                 const OptimizerOptions& opts,
                                 const std::string& bench,
                                 const Organization& org, bool* memo_hit) {
  EvalRequest req;
  req.kind = EvalRequest::Kind::kEvaluate;
  req.params = encode_eval_params(config, opts);
  req.bench = bench;
  req.org = org;
  const EvalResponse resp = call(std::move(req));
  if (memo_hit) *memo_hit = resp.memo_hit;
  return resp.payload;
}

}  // namespace tacos
