#pragma once
/// \file memo.hpp
/// \brief Cross-run memoization cache of the evaluation service.
///
/// The cache is a RunJournal (`memo.jsonl`): checksummed JSONL, atomic
/// whole-file publication, a lockfile against unrelated writers, and
/// torn-tail tolerance on load — the same crash-safety contract every
/// other durable file in a run directory already honors, so `tacos_cli
/// fsck` validates it with zero new code.
///
/// Keys are canonical content hashes (protocol.hpp): the eval-params line
/// hash + benchmark (+ the quantized organization key for point
/// evaluations).  Two runs — or one run and its retry after a dropped
/// connection — agree on a slot iff they agree on every result-affecting
/// knob, which makes the cache double as the service's idempotency table:
/// a retried request whose first attempt completed is answered from the
/// cache bit-identically, never recomputed.  Values are the exact response
/// payload bytes, so a warm hit reproduces the cold result to the byte.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>

#include "common/journal.hpp"

namespace tacos {

/// Durable response cache (thread-safe; one per server).
class MemoStore {
 public:
  /// Opens `<dir>/memo.jsonl`, replaying whatever a previous server —
  /// including one that crashed mid-write — left behind.  Throws
  /// tacos::Error when another live process holds the store.
  explicit MemoStore(const std::string& dir);

  /// Cached response payload for `key`, or nullopt.
  std::optional<std::string> lookup(const std::string& key);

  /// Durably record `payload` under `key` (idempotent: first write wins,
  /// matching the byte-identity contract — a slot's bytes never change).
  void store(const std::string& key, const std::string& payload);

  std::size_t entries() const { return journal_.task_count(); }
  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t replayed() const { return replayed_; }  ///< loaded from disk
  std::size_t dropped() const { return dropped_; }    ///< torn-tail lines

 private:
  RunJournal journal_;
  std::size_t replayed_ = 0;
  std::size_t dropped_ = 0;
  mutable std::mutex mu_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace tacos
