#pragma once
/// \file client.hpp
/// \brief Retrying client of the evaluation service.
///
/// The client owns the unreliable half of the contract: connections drop,
/// servers restart, admission queues fill.  Its job is to convert all of
/// that into either a correct response or a typed ServiceError — never a
/// hang, never a silently wrong answer:
///
///   * every request carries its idempotency key; the response must echo
///     it (a mismatch is a protocol error, not a quietly misattributed
///     result);
///   * retryable failures — refused/dropped connections, `overloaded`
///     shed frames, expired request deadlines, a draining server — are
///     retried up to `max_attempts` with capped exponential backoff and
///     deterministic jitter (common/backoff.hpp), reconnecting each time;
///   * retrying is *safe* because completed work is memoized server-side
///     under the same canonical key: a request whose first attempt
///     finished just before the connection died is answered from cache,
///     bit-identically, not recomputed;
///   * non-retryable failures (malformed requests, evaluation errors)
///     and exhausted retries throw ServiceError — which derives from
///     tacos::Error, so a batch driver quarantines that one task and the
///     sweep survives.

#include <cstdint>
#include <optional>
#include <string>

#include "common/backoff.hpp"
#include "common/cancel.hpp"
#include "service/transport.hpp"

namespace tacos {

/// Client configuration (CLI: `--remote=ADDR` and friends).
struct ClientOptions {
  Endpoint endpoint;
  int max_attempts = 5;
  /// Attempt backoff: 100 ms doubling to a 5 s cap, 25% deterministic
  /// jitter (seeded per client so a worker fleet doesn't retry in
  /// lockstep).
  BackoffPolicy backoff{100, 5'000, 0.25, 0};
  std::uint64_t connect_timeout_ms = 2'000;
  /// Per-attempt transport deadline (ms; 0 = none).  Sent to the server —
  /// which enforces it with its watchdog — and used client-side (plus
  /// slack for the response to travel) so a wedged server cannot hold a
  /// request past its budget.
  std::uint64_t request_deadline_ms = 0;
  /// Polled between attempts: a tripped token aborts the retry loop with
  /// CancelledError so Ctrl-C interrupts a client stuck in backoff.
  const CancelToken* cancel = nullptr;
};

/// One connection to the evaluation service, transparently re-established
/// across retries.  Not thread-safe: one client per worker thread.
class EvalClient {
 public:
  explicit EvalClient(ClientOptions options) : options_(options) {}

  /// Issue `req` (the idempotency key is filled in from its canonical
  /// content), retrying per the options.  Returns the successful
  /// response; throws ServiceError after exhausted retries or on any
  /// non-retryable failure, CancelledError when `cancel` trips mid-retry.
  EvalResponse call(EvalRequest req);

  /// True when the server answers a ping within the options' budget
  /// (single attempt, no retries — the "is it up yet" probe).
  bool ping();

  /// Scrape the server's live request metrics (the `stats` verb): the
  /// line-oriented counters + histogram payload, or nullopt when the
  /// server is unreachable or predates the verb.  Single attempt.
  std::optional<std::string> stats();

  /// Remote optimize round-trip: returns the response payload — byte-for-
  /// byte what a local run would journal for this task.
  std::string optimize(const EvalConfig& config, const OptimizerOptions& opts,
                       const std::string& bench, double task_deadline_s,
                       bool* memo_hit = nullptr);

  /// Remote point evaluation of one organization.
  std::string evaluate(const EvalConfig& config, const OptimizerOptions& opts,
                       const std::string& bench, const Organization& org,
                       bool* memo_hit = nullptr);

  /// Attempts consumed by the last call (observability / tests).
  int last_attempts() const { return last_attempts_; }

 private:
  EvalResponse attempt(const EvalRequest& req);

  ClientOptions options_;
  Conn conn_;
  int last_attempts_ = 0;
};

}  // namespace tacos
