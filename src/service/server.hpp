#pragma once
/// \file server.hpp
/// \brief The persistent evaluation server behind `tacos_cli serve`.
///
/// One process owns the expensive state — warmed caches, the durable memo
/// store — and serves evaluation requests over the framed protocol.  Its
/// robustness posture, in order of importance:
///
///   1. **Bounded admission.**  Connections queue into a fixed-capacity
///      admission queue drained by a fixed worker pool.  A full queue is
///      answered *immediately* with a distinct, retryable `overloaded`
///      error frame — load is shed explicitly, never absorbed as an
///      unbounded backlog or an unexplained hang.
///   2. **Deadlines.**  A request's transport budget (`deadline_ms`) is
///      enforced server-side by a watchdog thread that trips the
///      request's CancelToken — the solver abandons the task within
///      milliseconds (kInterrupt, so the abandoned attempt is *not*
///      memoized) and the client gets a retryable `deadline` error.  The
///      semantic per-task budget (`task_deadline_s`) instead flows into
///      RunControl, producing the same journalable `timeout:` rows a
///      local run would — two different promises, kept separately.
///   3. **Idempotency via memoization.**  Completed responses are stored
///      durably in the MemoStore before they are sent; a retry of the
///      same canonical request — same params hash, same bench — is a
///      cache hit answered bit-identically.  Wall-clock-dependent
///      outcomes (task-deadline timeouts) are deliberately never cached.
///   4. **Graceful drain.**  When the stop token trips (SIGINT/SIGTERM),
///      the listener closes, in-flight requests run to completion and
///      are memoized, queued-but-idle connections are released, and
///      serve() returns its final statistics.  The CLI exits 75, the
///      repo-wide "interrupted but resumable" code.
///
/// The server computes through `optimize_one_guarded` — the *same*
/// guarded task body every local batch driver uses — with a fresh
/// Evaluator shard per task, so a response's payload bytes are exactly
/// what a local run would journal for that task.

#include <cstdint>
#include <string>

#include "common/cancel.hpp"
#include "service/transport.hpp"

namespace tacos {

/// Server configuration (CLI: `tacos_cli serve`).
struct ServerOptions {
  Endpoint endpoint;
  std::string memo_dir;           ///< run dir holding memo.jsonl (required)
  std::size_t threads = 2;        ///< evaluation worker pool size
  std::size_t queue_capacity = 8; ///< admission queue bound (connections)
  /// Fault-injection hold (ms) applied to every request before it is
  /// computed (`--fault-serve-hold-ms`): makes overload deterministic in
  /// tests — hold the workers, flood the queue, assert the shed frames.
  std::uint64_t fault_hold_ms = 0;
};

/// Counters serve() reports on drain (and prints as the drain summary).
struct ServerStats {
  std::size_t connections = 0;      ///< accepted into the queue
  std::size_t requests = 0;         ///< frames decoded as requests
  std::size_t served_ok = 0;        ///< ok responses (computed or memoized)
  std::size_t memo_hits = 0;        ///< ok responses answered from cache
  std::size_t shed = 0;             ///< connections refused `overloaded`
  std::size_t deadline_expired = 0; ///< requests killed by the watchdog
  std::size_t eval_errors = 0;      ///< typed evaluation failures returned
  std::size_t protocol_errors = 0;  ///< corrupt frames / requests rejected
  std::size_t memo_replayed = 0;    ///< cache entries loaded from disk
  std::size_t memo_dropped = 0;     ///< torn-tail cache lines dropped
};

/// Run the evaluation server until `stop` trips.  Binds the endpoint and
/// opens the memo store (throws ServiceError / tacos::Error on either
/// failing), then serves; returns the drain statistics.
ServerStats serve_forever(const ServerOptions& options,
                          const CancelToken* stop);

/// One-line drain summary (stderr + CI's measurable record):
/// `[serve] drained requests=... ok=... memo_hits=... shed=... ...`.
std::string format_drain_summary(const ServerStats& s);

}  // namespace tacos
