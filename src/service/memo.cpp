#include "service/memo.hpp"

namespace tacos {

MemoStore::MemoStore(const std::string& dir) : journal_(dir, "memo.jsonl") {
  const RunJournal::LoadStats stats = journal_.load();
  replayed_ = stats.loaded;
  dropped_ = stats.dropped;
}

std::optional<std::string> MemoStore::lookup(const std::string& key) {
  std::optional<std::string> hit = journal_.find(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (hit)
      ++hits_;
    else
      ++misses_;
  }
  return hit;
}

void MemoStore::store(const std::string& key, const std::string& payload) {
  journal_.append(key, payload);  // idempotent: an existing slot is kept
}

std::size_t MemoStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t MemoStore::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace tacos
