#include "service/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <list>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "perf/benchmark.hpp"
#include "service/memo.hpp"
#include "service/protocol.hpp"

namespace tacos {

namespace {

using Clock = std::chrono::steady_clock;

std::string fmt_g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Cancels a request's token when its transport deadline passes.  One
/// thread watches every armed request: workers are busy *computing* when
/// the deadline matters, so they cannot watch themselves — and CancelToken
/// deadline expiry does not propagate to the child tokens the solver
/// polls, only the cancel() flag does.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog() : thread_([this] { run(); }) {}
  ~DeadlineWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Arm `token` to be cancelled `after_ms` from now.  `*fired` is set
  /// (under the watchdog lock) iff the deadline actually tripped.
  std::uint64_t arm(CancelToken* token, std::uint64_t after_ms, bool* fired) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = ++next_id_;
    entries_.push_back(
        {id, Clock::now() + std::chrono::milliseconds(after_ms), token,
         fired});
    cv_.notify_all();
    return id;
  }

  /// Disarm after the request completes.  Returns whether it had fired.
  bool disarm(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->id == id) {
        entries_.erase(it);
        return false;
      }
    }
    return true;  // already fired (and removed) by the watchdog
  }

 private:
  struct Entry {
    std::uint64_t id;
    Clock::time_point when;
    CancelToken* token;
    bool* fired;
  };

  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      Clock::time_point next = Clock::time_point::max();
      const Clock::time_point now = Clock::now();
      for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->when <= now) {
          it->token->cancel();
          if (it->fired) *it->fired = true;
          it = entries_.erase(it);
        } else {
          next = std::min(next, it->when);
          ++it;
        }
      }
      if (next == Clock::time_point::max())
        cv_.wait(lock);
      else
        cv_.wait_until(lock, next);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::list<Entry> entries_;
  std::uint64_t next_id_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

struct Counters {
  std::atomic<std::size_t> connections{0}, requests{0}, served_ok{0},
      memo_hits{0}, memo_misses{0}, shed{0}, deadline_expired{0},
      eval_errors{0}, protocol_errors{0};
};

/// One fixed-bucket latency histogram (milliseconds, power-of-two edges
/// from 0.25 ms).  Always on — unlike the obs registry this feeds the
/// live `stats` verb even when `--metrics` is off — and cheap: one
/// uncontended mutex per observation, a handful of longs of state.
class LatencyHist {
 public:
  static constexpr std::size_t kBuckets = 20;  // last bucket = overflow
  static double edge(std::size_t b) {
    return 0.25 * static_cast<double>(1u << b);
  }

  void observe(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t b = 0;
    while (b < kBuckets - 1 && ms > edge(b)) ++b;
    ++counts_[b];
    sum_ += ms;
    ++count_;
    if (ms > max_) max_ = ms;
  }

  /// One stats-verb line: `hist <name> count=N sum=S p50=E p90=E p99=E
  /// max=M` where quantiles report the upper edge of the covering bucket.
  std::string render(const char* name) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "hist " << name << " count=" << count_ << " sum=" << fmt_g17(sum_);
    const auto quantile = [this](double q) {
      const std::uint64_t target = static_cast<std::uint64_t>(
          q * static_cast<double>(count_) + 0.5);
      std::uint64_t seen = 0;
      for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += counts_[b];
        if (seen >= target && seen > 0) return edge(b);
      }
      return edge(kBuckets - 1);
    };
    if (count_ > 0) {
      os << " p50=" << fmt_g17(quantile(0.50)) << " p90="
         << fmt_g17(quantile(0.90)) << " p99=" << fmt_g17(quantile(0.99))
         << " max=" << fmt_g17(max_);
    }
    return os.str();
  }

 private:
  mutable std::mutex mu_;
  std::uint64_t counts_[kBuckets] = {};
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
  double max_ = 0.0;
};

/// Per-request service metrics: the three quantile histograms (end-to-end
/// handling latency, admission-queue wait, solve time) mirrored into the
/// obs registry (no-op there unless `--metrics`) and scrapeable live via
/// the `stats` protocol verb.
struct ServiceMetrics {
  Clock::time_point start = Clock::now();
  LatencyHist latency, queue_wait, solve;
  obs::Histogram obs_latency, obs_queue_wait, obs_solve;

  ServiceMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const std::vector<double> edges = obs::pow2_edges(0.25, 65536.0);
    obs_latency = reg.histogram("service.request_latency_ms", edges);
    obs_queue_wait = reg.histogram("service.queue_wait_ms", edges);
    obs_solve = reg.histogram("service.solve_ms", edges);
  }

  void observe_latency(double ms) {
    latency.observe(ms);
    obs_latency.observe(ms);
  }
  void observe_queue_wait(double ms) {
    queue_wait.observe(ms);
    obs_queue_wait.observe(ms);
  }
  void observe_solve(double ms) {
    solve.observe(ms);
    obs_solve.observe(ms);
  }
};

EvalResponse error_response(std::uint64_t idem, ServiceError::Kind kind,
                            const std::string& detail, bool retryable) {
  EvalResponse resp;
  resp.ok = false;
  resp.idem = idem;
  resp.error_kind = ServiceError::kind_name(kind);
  resp.detail = detail;
  resp.retryable = retryable;
  return resp;
}

/// The whole-server context one worker needs.
struct ServerCtx {
  const ServerOptions* options;
  MemoStore* memo;
  DeadlineWatchdog* watchdog;
  Counters* counters;
  ServiceMetrics* metrics;
  std::atomic<bool>* draining;
};

/// The `stats` verb's payload: every counter plus the three histograms,
/// line-oriented like the rest of the protocol.  Scraped live — the
/// counters are relaxed atomics, so a snapshot is approximate under load
/// but each value is itself consistent.
std::string render_stats(const ServerCtx& ctx) {
  std::ostringstream os;
  const auto uptime_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - ctx.metrics->start);
  os << "uptime_ms " << uptime_ms.count() << '\n'
     << "connections " << ctx.counters->connections.load() << '\n'
     << "requests " << ctx.counters->requests.load() << '\n'
     << "served_ok " << ctx.counters->served_ok.load() << '\n'
     << "memo_hits " << ctx.counters->memo_hits.load() << '\n'
     << "memo_misses " << ctx.counters->memo_misses.load() << '\n'
     << "shed " << ctx.counters->shed.load() << '\n'
     << "deadline_trips " << ctx.counters->deadline_expired.load() << '\n'
     << "eval_errors " << ctx.counters->eval_errors.load() << '\n'
     << "protocol_errors " << ctx.counters->protocol_errors.load() << '\n'
     << "memo_replayed " << ctx.memo->replayed() << '\n'
     << ctx.metrics->latency.render("latency_ms") << '\n'
     << ctx.metrics->queue_wait.render("queue_wait_ms") << '\n'
     << ctx.metrics->solve.render("solve_ms") << '\n';
  return os.str();
}

/// Compute (or replay) one optimize request.  Never throws: every failure
/// becomes a typed error response.
EvalResponse handle_optimize(const ServerCtx& ctx, const EvalRequest& req) {
  EvalConfig config;
  OptimizerOptions opts;
  if (!decode_eval_params(req.params, &config, &opts))
    return error_response(req.idem, ServiceError::Kind::kProtocol,
                          "malformed eval-params line", false);
  const std::string key = memo_key_optimize(req.params, req.bench);
  {
    static obs::SpanSite lookup_site("service.memo_lookup", "service");
    obs::TraceSpan lookup_span(lookup_site);
    std::optional<std::string> hit = ctx.memo->lookup(key);
    lookup_span.arg("hit", hit ? "1" : "0");
    if (hit) {
      ctx.counters->memo_hits.fetch_add(1, std::memory_order_relaxed);
      EvalResponse resp;
      resp.ok = true;
      resp.idem = req.idem;
      resp.memo_hit = true;
      resp.payload = std::move(*hit);
      return resp;
    }
  }
  ctx.counters->memo_misses.fetch_add(1, std::memory_order_relaxed);
  // Request-scoped token: the watchdog trips it when the transport
  // deadline passes; optimize_one_guarded chains the task token off it.
  CancelToken request_token;
  bool fired = false;
  std::uint64_t watch_id = 0;
  if (req.deadline_ms > 0)
    watch_id = ctx.watchdog->arm(&request_token, req.deadline_ms, &fired);
  RunControl run;
  run.cancel = &request_token;
  run.task_deadline_s = req.task_deadline_s;
  TaskOutcome out;
  const Clock::time_point solve_t0 = Clock::now();
  try {
    static obs::SpanSite solve_site("service.solve", "service");
    obs::TraceSpan solve_span(solve_site);
    solve_span.arg("bench", req.bench);
    out = optimize_one_guarded(config, req.bench, opts, &run);
  } catch (const Error& e) {
    if (watch_id) ctx.watchdog->disarm(watch_id);
    return error_response(req.idem, ServiceError::Kind::kRemote, e.what(),
                          false);
  }
  if (watch_id) ctx.watchdog->disarm(watch_id);
  ctx.metrics->observe_solve(
      std::chrono::duration<double, std::milli>(Clock::now() - solve_t0)
          .count());
  if (!out.completed) {
    // kInterrupt path: either our watchdog fired or the server is
    // draining.  Nothing was journaled locally and nothing is memoized —
    // a retry recomputes from scratch, byte-identical.
    if (fired) {
      ctx.counters->deadline_expired.fetch_add(1, std::memory_order_relaxed);
      return error_response(
          req.idem, ServiceError::Kind::kDeadline,
          "request exceeded its " + std::to_string(req.deadline_ms) +
              " ms transport deadline",
          true);
    }
    return error_response(req.idem, ServiceError::Kind::kShutdown,
                          "server draining", true);
  }
  static obs::SpanSite serialize_site("service.serialize", "service");
  obs::TraceSpan serialize_span(serialize_site);
  const std::string payload = encode_opt_result(out.result, out.stats);
  // Durable-before-visible, except wall-clock timeouts: a task-deadline
  // row depends on this machine's speed, so caching it would let one slow
  // moment masquerade as a deterministic result forever.
  const bool timed_out = out.stats.health.timeouts != 0;
  if (!timed_out) ctx.memo->store(key, payload);
  EvalResponse resp;
  resp.ok = true;
  resp.idem = req.idem;
  resp.payload = payload;
  return resp;
}

/// Compute (or replay) one point-evaluation request.
EvalResponse handle_evaluate(const ServerCtx& ctx, const EvalRequest& req) {
  EvalConfig config;
  OptimizerOptions opts;
  if (!decode_eval_params(req.params, &config, &opts))
    return error_response(req.idem, ServiceError::Kind::kProtocol,
                          "malformed eval-params line", false);
  const std::string key = memo_key_evaluate(req.params, req.bench, req.org);
  {
    static obs::SpanSite lookup_site("service.memo_lookup", "service");
    obs::TraceSpan lookup_span(lookup_site);
    std::optional<std::string> hit = ctx.memo->lookup(key);
    lookup_span.arg("hit", hit ? "1" : "0");
    if (hit) {
      ctx.counters->memo_hits.fetch_add(1, std::memory_order_relaxed);
      EvalResponse resp;
      resp.ok = true;
      resp.idem = req.idem;
      resp.memo_hit = true;
      resp.payload = std::move(*hit);
      return resp;
    }
  }
  ctx.counters->memo_misses.fetch_add(1, std::memory_order_relaxed);
  CancelToken request_token;
  bool fired = false;
  std::uint64_t watch_id = 0;
  if (req.deadline_ms > 0)
    watch_id = ctx.watchdog->arm(&request_token, req.deadline_ms, &fired);
  config.thermal.solve.cancel = &request_token;
  EvalResponse resp;
  const Clock::time_point solve_t0 = Clock::now();
  try {
    static obs::SpanSite solve_site("service.solve", "service");
    obs::TraceSpan solve_span(solve_site);
    solve_span.arg("bench", req.bench);
    Evaluator eval(config);
    const ThermalEval& ev =
        eval.thermal_eval(req.org, benchmark_by_name(req.bench));
    std::ostringstream os;
    os << "peak " << fmt_g17(ev.peak_c) << '\n'
       << "power " << fmt_g17(ev.total_power_w) << '\n'
       << "leak_iters " << ev.leak_iterations << '\n'
       << "solves " << ev.solves << '\n'
       << "converged " << (ev.leak_converged ? 1 : 0) << '\n';
    resp.ok = true;
    resp.idem = req.idem;
    resp.payload = os.str();
  } catch (const CancelledError&) {
    if (watch_id) ctx.watchdog->disarm(watch_id);
    ctx.counters->deadline_expired.fetch_add(1, std::memory_order_relaxed);
    return error_response(req.idem, ServiceError::Kind::kDeadline,
                          "evaluation cancelled by the request deadline",
                          true);
  } catch (const Error& e) {
    if (watch_id) ctx.watchdog->disarm(watch_id);
    return error_response(req.idem, ServiceError::Kind::kRemote, e.what(),
                          false);
  }
  if (watch_id) ctx.watchdog->disarm(watch_id);
  ctx.metrics->observe_solve(
      std::chrono::duration<double, std::milli>(Clock::now() - solve_t0)
          .count());
  ctx.memo->store(key, resp.payload);
  return resp;
}

EvalResponse handle_request(const ServerCtx& ctx, const EvalRequest& req) {
  if (ctx.options->fault_hold_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(ctx.options->fault_hold_ms));
  switch (req.kind) {
    case EvalRequest::Kind::kPing: {
      EvalResponse resp;
      resp.ok = true;
      resp.idem = req.idem;
      resp.payload = "pong";
      return resp;
    }
    case EvalRequest::Kind::kStats: {
      EvalResponse resp;
      resp.ok = true;
      resp.idem = req.idem;
      resp.payload = render_stats(ctx);
      return resp;
    }
    case EvalRequest::Kind::kOptimize:
      return handle_optimize(ctx, req);
    case EvalRequest::Kind::kEvaluate:
      return handle_evaluate(ctx, req);
  }
  return error_response(req.idem, ServiceError::Kind::kProtocol,
                        "unknown request kind", false);
}

/// Serve every request of one connection until the peer closes or the
/// server drains.  Never throws.
void handle_conn(const ServerCtx& ctx, Conn conn) {
  static obs::SpanSite conn_site("service.conn", "service");
  obs::TraceSpan conn_span(conn_site);
  std::size_t served = 0;
  for (;;) {
    if (ctx.draining->load(std::memory_order_relaxed)) break;
    try {
      if (!conn.wait_readable(200)) continue;  // idle tick (drain check)
      const std::optional<Frame> frame = conn.recv_frame();
      if (!frame) break;  // peer finished cleanly
      if (frame->type != Frame::Type::kRequest) {
        ctx.counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conn.send_frame(
            {Frame::Type::kResponse,
             encode_response(error_response(
                 0, ServiceError::Kind::kProtocol,
                 "expected a request frame", false))},
            2'000);
        break;  // stream integrity is in doubt: drop the connection
      }
      EvalRequest req;
      if (!decode_request(frame->payload, &req)) {
        ctx.counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conn.send_frame(
            {Frame::Type::kResponse,
             encode_response(error_response(
                 0, ServiceError::Kind::kProtocol,
                 "malformed request payload", false))},
            2'000);
        break;
      }
      ctx.counters->requests.fetch_add(1, std::memory_order_relaxed);
      const Clock::time_point req_t0 = Clock::now();
      EvalResponse resp;
      {
        // Adopt the caller's trace context (no-op when untraced) so this
        // request's spans chain to the client span across processes.
        obs::ScopedTraceContext adopt({req.trace_id, req.parent_span});
        static obs::SpanSite req_site("service.request", "service");
        obs::TraceSpan req_span(req_site);
        req_span.arg("kind", static_cast<std::int64_t>(req.kind));
        if (!req.bench.empty()) req_span.arg("bench", req.bench);
        resp = handle_request(ctx, req);
        req_span.arg("ok", resp.ok ? "1" : "0");
        if (resp.memo_hit) req_span.arg("memo", "1");
      }
      if (resp.ok)
        ctx.counters->served_ok.fetch_add(1, std::memory_order_relaxed);
      else if (resp.error_kind ==
               ServiceError::kind_name(ServiceError::Kind::kRemote))
        ctx.counters->eval_errors.fetch_add(1, std::memory_order_relaxed);
      else if (resp.error_kind ==
               ServiceError::kind_name(ServiceError::Kind::kProtocol))
        ctx.counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn.send_frame({Frame::Type::kResponse, encode_response(resp)},
                      10'000);
      ctx.metrics->observe_latency(
          std::chrono::duration<double, std::milli>(Clock::now() - req_t0)
              .count());
      ++served;
    } catch (const ServiceError& e) {
      // A corrupt frame still gets its typed refusal when the stream can
      // carry one; either way the connection is done.
      if (e.kind() == ServiceError::Kind::kProtocol) {
        ctx.counters->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        try {
          conn.send_frame({Frame::Type::kResponse,
                           encode_response(error_response(
                               0, e.kind(), e.what(), false))},
                          2'000);
        } catch (const ServiceError&) {
        }
      }
      break;
    }
  }
  conn_span.arg("served", static_cast<std::int64_t>(served));
}

/// Shed one over-admission connection: answer its first request with the
/// distinct `overloaded` frame, bounded so the accept loop never hangs.
void shed_conn(Conn conn, Counters* counters) {
  counters->shed.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter shed_metric =
      obs::MetricsRegistry::global().counter("service.shed");
  shed_metric.add();
  std::uint64_t idem = 0;
  try {
    if (conn.wait_readable(500)) {
      const std::optional<Frame> frame = conn.recv_frame(500);
      EvalRequest req;
      if (frame && frame->type == Frame::Type::kRequest &&
          decode_request(frame->payload, &req))
        idem = req.idem;
    }
    conn.send_frame(
        {Frame::Type::kResponse,
         encode_response(error_response(
             idem, ServiceError::Kind::kOverloaded,
             "admission queue full (server at capacity); back off and retry",
             true))},
        500);
  } catch (const ServiceError&) {
    // The refused peer vanished first; shedding is best-effort by design.
  }
}

}  // namespace

ServerStats serve_forever(const ServerOptions& options,
                          const CancelToken* stop) {
  Listener listener;
  listener.open(options.endpoint);
  MemoStore memo(options.memo_dir);
  DeadlineWatchdog watchdog;
  Counters counters;
  ServiceMetrics metrics;
  std::atomic<bool> draining{false};
  ServerCtx ctx{&options, &memo, &watchdog, &counters, &metrics, &draining};

  static obs::Counter requests_metric =
      obs::MetricsRegistry::global().counter("service.requests");
  static obs::Counter memo_hits_metric =
      obs::MetricsRegistry::global().counter("service.memo_hits");
  static obs::Counter memo_misses_metric =
      obs::MetricsRegistry::global().counter("service.memo_misses");
  static obs::Counter deadline_trips_metric =
      obs::MetricsRegistry::global().counter("service.deadline_trips");

  // Admission queue: accepted connections awaiting a worker, each stamped
  // with its admission time so the dequeue measures queue wait.
  struct Queued {
    Conn conn;
    Clock::time_point admitted;
  };
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<Queued> queue;
  bool closed = false;

  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (std::size_t i = 0; i < options.threads; ++i) {
    workers.emplace_back([&] {
      for (;;) {
        Conn conn;
        {
          std::unique_lock<std::mutex> lock(qmu);
          qcv.wait(lock, [&] { return closed || !queue.empty(); });
          if (queue.empty()) return;  // closed and drained
          Queued q = std::move(queue.front());
          queue.pop_front();
          lock.unlock();
          metrics.observe_queue_wait(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        q.admitted)
                  .count());
          conn = std::move(q.conn);
        }
        handle_conn(ctx, std::move(conn));
      }
    });
  }

  std::fprintf(stderr,
               "[serve] listening on %s (threads=%zu queue=%zu memo=%zu "
               "replayed)\n",
               listener.endpoint().describe().c_str(), options.threads,
               options.queue_capacity, memo.replayed());

  while (!(stop && stop->interrupted())) {
    std::optional<Conn> conn;
    try {
      conn = listener.accept(200);
    } catch (const ServiceError&) {
      break;  // listener torn down underneath us
    }
    if (!conn) continue;  // accept tick: re-check the stop token
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(qmu);
      if (queue.size() < options.queue_capacity) {
        queue.push_back({std::move(*conn), Clock::now()});
        admitted = true;
      }
    }
    if (admitted) {
      counters.connections.fetch_add(1, std::memory_order_relaxed);
      qcv.notify_one();
    } else {
      shed_conn(std::move(*conn), &counters);
    }
  }

  // Graceful drain: stop accepting, let queued connections' in-flight
  // requests finish (each worker sees `draining` at its next idle tick),
  // then join.  In-flight computations run to completion and are memoized
  // before their workers observe the flag.
  listener.close();
  draining.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(qmu);
    closed = true;
  }
  qcv.notify_all();
  for (std::thread& w : workers) w.join();
  {
    // Connections admitted but never picked up: released unanswered (the
    // retrying client treats the EOF as a retryable connection error).
    std::lock_guard<std::mutex> lock(qmu);
    queue.clear();
  }

  ServerStats stats;
  stats.connections = counters.connections.load();
  stats.requests = counters.requests.load();
  stats.served_ok = counters.served_ok.load();
  stats.memo_hits = counters.memo_hits.load();
  stats.shed = counters.shed.load();
  stats.deadline_expired = counters.deadline_expired.load();
  stats.eval_errors = counters.eval_errors.load();
  stats.protocol_errors = counters.protocol_errors.load();
  stats.memo_replayed = memo.replayed();
  stats.memo_dropped = memo.dropped();
  requests_metric.add(static_cast<double>(stats.requests));
  memo_hits_metric.add(static_cast<double>(stats.memo_hits));
  memo_misses_metric.add(static_cast<double>(counters.memo_misses.load()));
  deadline_trips_metric.add(static_cast<double>(stats.deadline_expired));
  return stats;
}

std::string format_drain_summary(const ServerStats& s) {
  std::ostringstream os;
  os << "[serve] drained requests=" << s.requests << " ok=" << s.served_ok
     << " memo_hits=" << s.memo_hits << " shed=" << s.shed
     << " deadline=" << s.deadline_expired << " eval_errors=" << s.eval_errors
     << " protocol_errors=" << s.protocol_errors
     << " memo_replayed=" << s.memo_replayed
     << " memo_dropped=" << s.memo_dropped;
  return os.str();
}

}  // namespace tacos
