#pragma once
/// \file fabric.hpp
/// \brief The fault-tolerant multi-process sweep fabric: journal-leased
///        sharding, worker crash recovery, and a supervised coordinator.
///
/// A `batch --workers=N` sweep forks N worker processes over one shared
/// `--run-dir`.  Coordination is entirely file-based, so any worker (or
/// the supervisor itself) can die at any instruction and the run still
/// converges to the same bytes:
///
///   * `leases.jsonl` — the append-only lease log (src/common/lease.hpp).
///     Workers claim tasks through epoch-fenced leases; the first claim
///     record per epoch in file order owns it.
///   * `shard-w<k>.jsonl` — worker k's private write-ahead journal (the
///     whole-file-rewrite RunJournal cannot be shared across processes).
///     A task's row is durable in its worker's shard *before* the lease
///     log's `done` record: publish-then-crash loses nothing, and
///     crash-then-publish just recomputes deterministically.
///   * `journal.jsonl` — the canonical journal, written only by the
///     supervisor: after every task settles, the winning rows are merged
///     in input order (meta record first), which is exactly the byte
///     order a 1-thread single-process run produces.  The CLI then
///     replays the merged journal through optimize_greedy_batch, so
///     stdout is byte-identical too — at any worker count, with any
///     injected crashes.
///
/// Supervision: the coordinator heartbeats workers with waitpid(WNOHANG).
/// A crashed worker's held leases are released immediately (no TTL wait)
/// and the worker is respawned with capped exponential backoff; a task
/// that kills two workers is poisoned — quarantined with a deterministic
/// placeholder row — so one poison task cannot grind the fleet down.
/// When every slot has exhausted its restarts the supervisor degrades to
/// running the worker loop inline.  Lease TTLs are a backstop for
/// zombies (a stalled worker that never crashed): choose a TTL longer
/// than the slowest task; expiry lets another worker reclaim at a higher
/// epoch, and the zombie's eventual publish is fenced off.
///
/// SIGINT/SIGTERM keep the exit-75 contract: the supervisor TERMs its
/// workers, workers release their held leases, nothing is merged, and a
/// `--resume` run picks up from the shards and lease log.
///
/// See docs/ROBUSTNESS.md ("The sweep fabric").

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/fault_plan.hpp"
#include "common/journal.hpp"
#include "common/run_health.hpp"
#include "core/optimizer.hpp"

namespace tacos {

/// Fabric knobs (CLI: --workers / --lease-ttl-ms; the rest are tuned for
/// tests via this struct).
struct FabricOptions {
  int workers = 0;                      ///< worker process count (0 = off)
  std::uint64_t lease_ttl_ms = 30'000;  ///< lease TTL; must exceed the
                                        ///< slowest task (zombie backstop)
  double task_deadline_s = 0.0;         ///< per-task budget (--task-deadline)
  std::uint64_t backoff_base_ms = 200;  ///< restart backoff (BackoffPolicy,
  std::uint64_t backoff_max_ms = 2'000; ///< jitterless): min(base*2^n, max)
  int max_restarts = 3;                 ///< per worker slot, then degraded
  std::uint64_t poll_ms = 20;           ///< heartbeat / idle-claim poll
  /// Testing hook for in-process workers (threads cannot SIGKILL
  /// themselves): an injected crash abandons the loop — lease live,
  /// result unpublished — instead of raising SIGKILL.
  bool crash_via_abandon = false;
};

/// Lease-log identity of worker slot k's incarnation i, e.g. "w2.1".
/// Incarnations are distinct owners on purpose: a restarted worker must
/// never be mistaken for its dead (or zombie) predecessor by the fence.
std::string fabric_worker_name(int worker_index, int incarnation);

/// Shard journal filename of worker slot k (stable across incarnations:
/// a restarted worker resumes — replays — its predecessor's shard).
std::string shard_journal_file(int worker_index);

/// Deterministic placeholder row for a poisoned task: a quarantined
/// result whose bytes depend only on the crash count, never on pids or
/// timestamps.
std::string poison_placeholder_payload(std::size_t crashes);

/// What one worker (process or in-process test thread) did.
struct WorkerReport {
  std::size_t claimed = 0;    ///< leases won
  std::size_t published = 0;  ///< epoch-fenced commits accepted
  std::size_t fenced = 0;     ///< commits refused (stale epoch)
  std::size_t reclaims = 0;   ///< expired/released leases taken over
  bool crashed = false;       ///< injected crash fired (abandon mode)
  bool interrupted = false;   ///< stopped by cancel → exit 75
};

/// The claim → run → publish loop of one fabric worker.  Walks
/// `bench_names` in input order, claims free tasks through the run dir's
/// lease log, runs each through optimize_one_guarded (journaling into
/// this slot's shard), and commits with an epoch-fenced publish.  Honors
/// the worker-level FaultPlan knobs (crash-after-K, crash-on-task,
/// lease-stall zombie).  Safe to run from threads of one process (each
/// call owns its LeaseTable and shard journal) — the in-process fabric
/// tests do exactly that.
WorkerReport run_fabric_worker(const EvalConfig& config,
                               const std::vector<std::string>& bench_names,
                               const OptimizerOptions& opts,
                               const std::string& run_dir, int worker_index,
                               int incarnation, const FabricOptions& fab,
                               const FaultPlan& faults,
                               const CancelToken* cancel);

/// Supervisor outcome.
struct FabricReport {
  RunHealth health;           ///< leases_reclaimed / worker_restarts /
                              ///< poison_tasks (run-level; never journaled
                              ///< into task rows)
  std::size_t merged = 0;     ///< task rows in the canonical journal
  bool interrupted = false;   ///< shutdown signal: not merged, resumable
};

/// Supervisor: spawns `fab.workers` worker processes (re-exec'ing
/// `worker_argv` with `--fabric-worker=k --fabric-incarnation=i`
/// inserted; first-incarnation-only fault flags are stripped from restart
/// command lines), heartbeats them, restarts crashes with capped
/// exponential backoff, poisons two-strike tasks, degrades to an inline
/// worker when slots are exhausted, and finally merges the winning shard
/// rows into `journal` in input order.  `journal` must be the already
/// opened (locked) canonical journal; its meta record is bound here so
/// the merged file starts exactly like a single-process one.
FabricReport run_fabric_sweep(const EvalConfig& config,
                              const std::vector<std::string>& bench_names,
                              const OptimizerOptions& opts,
                              RunJournal& journal, const std::string& run_dir,
                              const FabricOptions& fab,
                              const std::vector<std::string>& worker_argv,
                              const CancelToken* cancel);

/// The merge step alone (exposed for the in-process fabric tests): for
/// every task, append the row committed by the lease log's winning
/// (worker, epoch) — or the poison placeholder — to `journal`, in input
/// order.  Idempotent: rows already present are kept.  Returns the number
/// of settled tasks.  Throws tacos::Error when a task is unsettled or a
/// winner's shard lacks its row (a broken WAL ordering — never expected).
std::size_t merge_fabric_shards(RunJournal& journal,
                                const std::string& run_dir,
                                const std::vector<std::string>& bench_names);

}  // namespace tacos
