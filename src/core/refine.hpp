#pragma once
/// \file refine.hpp
/// \brief Continuous spacing refinement: projected gradient descent on the
///        Eq. 9 manifold from a grid-search winner.
///
/// The greedy/exhaustive searches optimize placements on a `step_mm` grid.
/// This stage descends from the winning n=16 placement using the *exact*
/// adjoint gradient dT_peak/d(s1, s2) (Evaluator::peak_gradient — one
/// extra PCG solve per gradient), with a backtracking line search whose
/// every accepted step is re-verified by a full-fidelity evaluation
/// (thermal_eval: leakage fixed point, memoization, frontier and health
/// accounting all live).  The combination (f, p, n, W) is frozen, so Eq. 5
/// objective, IPS and cost are untouched — refinement can only lower the
/// winner's peak temperature, never change which combination wins.
///
/// Manifold and constraints: at fixed interposer size the spacing budget
/// B = W − 4w_c − 2l_g pins s3 = B − 2·s1 (Eq. 9), leaving (s1, s2) in the
/// box [0, B/2]² (Eq. 10 bounds s2 by exactly B/2).  Steps are projected
/// onto the box before evaluation.
///
/// Determinism: the descent consumes no RNG and evaluates candidates
/// strictly sequentially, so a refined sweep is bit-identical at any
/// thread count (the solver's chunked reductions already are).

#include "common/cancel.hpp"
#include "core/evaluator.hpp"

namespace tacos {

/// Outcome of one spacing refinement (refine_spacing).
struct RefineResult {
  Organization org;      ///< refined organization (== input when steps == 0)
  double peak_c = 0.0;   ///< full-fidelity peak at `org`
  int steps = 0;         ///< accepted (re-verified) descent steps
};

/// Refine `org` (n = 16) at spacing budget `budget_mm`, accepting only
/// full-fidelity-verified strict improvements of the peak temperature.
/// `step_mm` seeds the line search (the first trial displacement is half a
/// grid step — the grid winner is within one step of the continuous
/// optimum); descent stops when the projected step falls below
/// `refine_tol_mm`, after `max_steps` accepted steps, or when 8 halvings
/// find no improvement.  Ticks Evaluator::refine_stats and polls `cancel`
/// once per gradient.
RefineResult refine_spacing(Evaluator& eval, const BenchmarkProfile& bench,
                            const Organization& org, double budget_mm,
                            double step_mm, double refine_tol_mm,
                            int max_steps,
                            const CancelToken* cancel = nullptr);

}  // namespace tacos
