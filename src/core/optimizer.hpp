#pragma once
/// \file optimizer.hpp
/// \brief Chiplet-organization optimization (§III-D): objective Eq. (5),
///        the three-step multi-start greedy algorithm, and the exhaustive
///        search baseline used to validate it.
///
/// Step 1 computes IPS(f, p) for all 40 operating points (the Sniper
/// substitute) and C_2.5D for all discretized interposer sizes (Eqs. 1–4).
/// Step 2 forms every (f, p, n, W) combination, scores it with
///   alpha * IPS_2D / IPS(f, p) + beta * C_2.5D(n, W) / C_2D        (Eq. 5)
/// and sorts ascending.  Step 3 walks the sorted list and, for each
/// combination, searches the placement manifold for a layout meeting the
/// temperature threshold (Eq. 6):
///
///   * n = 4: s1 = s2 = 0 and Eq. (9) pins s3 = W - 2 w_c - 2 l_g — a
///     single placement per interposer size;
///   * n = 16: Eq. (9) pins 2 s1 + s3 = B := W - 4 w_c - 2 l_g, leaving a
///     two-parameter manifold (s1, s2) ∈ [0, B/2]^2 on a `step_mm` grid
///     (Eq. 10 bounds s2 by exactly B/2).  The greedy random-neighbor
///     descent of the paper's pseudocode explores this manifold from m
///     random starting points; the exhaustive baseline enumerates it.
///
/// The first combination with a feasible placement is the optimum, since
/// combinations are visited in ascending objective order.

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/journal.hpp"
#include "common/rng.hpp"
#include "core/evaluator.hpp"

namespace tacos {

/// One (f, p, n, W) combination of step 2, with its Eq. (5) score.
struct Combo {
  std::size_t dvfs_idx = 0;
  int active_cores = 0;
  int n_chiplets = 0;         ///< 4 or 16
  double interposer_mm = 0.0; ///< W (= H; square interposers)
  double ips = 0.0;
  double cost = 0.0;          ///< $, Eq. (4)
  double objective = 0.0;     ///< Eq. (5) value
};

/// Search options shared by greedy and exhaustive placement search.
struct OptimizerOptions {
  double alpha = 1.0;          ///< performance weight in Eq. (5)
  double beta = 0.0;           ///< cost weight in Eq. (5)
  double threshold_c = 85.0;   ///< Eq. (6) temperature threshold
  double step_mm = 0.5;        ///< spacing / interposer granularity
  int starts = 10;             ///< m random starting points (paper uses 10)
  int max_moves = 400;         ///< descent step budget per start
  std::uint64_t seed = 2018;   ///< RNG seed (deterministic runs)
  /// Pruning heuristic: the deterministic first start probes the uniform
  /// matrix placement, which is within a few °C of the best placement on
  /// the manifold.  If it misses the threshold by more than this margin,
  /// the combination is declared infeasible without exploring further
  /// (one simulation instead of ~m descents).  Set to 0 to disable —
  /// the greedy-vs-exhaustive validation does.
  double prune_margin_c = 6.0;
  std::vector<int> chiplet_counts = {4, 16};
  /// Continuous spacing refinement (`--refine`): after the grid search
  /// converges, descend from the winning n=16 placement with exact adjoint
  /// gradients dT_peak/d(s1, s2) (projected gradient descent with
  /// backtracking on the Eq. 9 manifold; see src/core/refine.hpp).  Every
  /// accepted step is re-verified with a full-fidelity evaluation, so the
  /// refined winner is exactly evaluated and never hotter than the grid
  /// one.  The combination (f, p, n, W) is fixed — Eq. (5) objective, IPS
  /// and cost are unchanged; only the spacings move off the grid.
  bool refine = false;
  /// Refinement stops when the projected step shrinks below this (mm).
  double refine_tol_mm = 1e-3;
  /// Hard cap on accepted descent steps per refinement.
  int refine_max_steps = 20;
  /// Cooperative cancellation (nullptr = never cancelled), polled once per
  /// combination and per descent move; pair it with
  /// `EvalConfig::thermal.solve.cancel` for solver-granularity response.
  const CancelToken* cancel = nullptr;
};

/// Optimization outcome.  A quarantined result is one whose task failed
/// even after the thermal stack's recovery ladder: it is reported as
/// infeasible (`found == false`) with the failure's structured diagnostic,
/// and the rest of the batch is unaffected.
struct OptResult {
  bool found = false;
  Organization org;            ///< chosen organization (valid if found)
  double ips = 0.0;
  double cost = 0.0;
  double objective = 0.0;
  double peak_c = 0.0;
  std::size_t combos_tried = 0;
  std::size_t thermal_solves = 0;  ///< solver invocations consumed
  /// Continuous refinement outcome (OptimizerOptions::refine): when the
  /// gradient descent accepted at least one step, `refined` is set, `org`
  /// carries the off-grid spacings, and the pre-refinement grid winner is
  /// preserved here (peak_c then holds the refined peak).
  bool refined = false;
  Spacing grid_spacing;        ///< grid winner's spacings (valid if refined)
  double peak_grid_c = 0.0;    ///< grid winner's peak (valid if refined)
  int refine_steps = 0;        ///< accepted descent steps
  bool quarantined = false;        ///< task isolated after an eval failure
  std::string diagnostic;          ///< failure context (when quarantined)
  /// The batch run was interrupted before (or while) this task ran; the
  /// result carries no data and the task was NOT journaled — a resumed run
  /// recomputes it from scratch, reproducing the uninterrupted output.
  bool interrupted = false;
};

/// Largest grid index on the n=16 spacing manifold: the (s1, s2) grid at
/// `step_mm` granularity spans indices 0..grid_points (inclusive), i.e.
/// floor(budget / 2 / step) with an epsilon guard against representation
/// error in step multiples.  This single helper is shared by the greedy
/// walk, the exhaustive enumeration and the design-space-size estimator,
/// so search-cost claims and the actual loops can never disagree.
long spacing_grid_max(double budget_mm, double step_mm);

/// Deterministic first-start grid indices (i1, i2) of the greedy descent:
/// the uniform matrix placement s1 = s3 = B/3, s2 = s3/2, snapped to the
/// nearest grid points and then rounded *down* onto the Eq. 9/10 manifold
/// whenever nearest overshoots it (possible for budgets that are not step
/// multiples: negative s3, or s2 past the Eq. 10 bound).  Historical
/// (step-divisible) starts are unchanged.
std::pair<long, long> greedy_smart_start(double budget_mm, double step_mm);

/// Step 1 + 2: enumerate and sort all combinations by Eq. (5).
/// `ips_2d` and `cost_2d` normalize the two objective terms.
std::vector<Combo> enumerate_combos(const Evaluator& eval,
                                    const BenchmarkProfile& bench,
                                    double ips_2d, double cost_2d,
                                    const OptimizerOptions& opts);

/// Placement search for one combination at fixed interposer size, using
/// the paper's multi-start greedy random-neighbor descent.  Returns the
/// feasible organization if one is found.
std::optional<Organization> find_placement_greedy(
    Evaluator& eval, const BenchmarkProfile& bench, const Combo& combo,
    const OptimizerOptions& opts, Rng& rng);

/// Placement search by exhaustive enumeration of the (s1, s2) grid.
std::optional<Organization> find_placement_exhaustive(
    Evaluator& eval, const BenchmarkProfile& bench, const Combo& combo,
    const OptimizerOptions& opts);

/// Full three-step optimization with greedy placement search.
OptResult optimize_greedy(Evaluator& eval, const BenchmarkProfile& bench,
                          const OptimizerOptions& opts);

/// Runs optimize_greedy for every benchmark in `bench_names` on the global
/// ThreadPool.  Each benchmark gets its own freshly-constructed Evaluator
/// shard (the Evaluator caches are not thread-safe, and sharing a frontier
/// across benchmarks would make results depend on completion order) and
/// its own Rng seeded from opts.seed, so the returned results — including
/// every chosen organization and objective value — are byte-identical at
/// any thread count, and identical to running the benchmarks serially in
/// order.  A task whose evaluation fails even after the thermal stack's
/// recovery ladder is quarantined: its row is returned infeasible with the
/// diagnostic attached (and counted in the merged RunHealth) while every
/// other task completes normally — surviving rows are identical at any
/// thread count.  Results align with `bench_names`; if `merged` is
/// non-null the per-shard solver/eval/health counters are summed into it
/// at join.
///
/// Durability (`run`, optional): with a journal, each completed task —
/// including quarantined and timed-out ones, which are terminal results —
/// is appended as one checksummed record, and journaled tasks are replayed
/// instead of recomputed (rows AND merged stats reproduce the
/// uninterrupted run byte-for-byte).  With a cancel token, tasks not yet
/// dispatched when it trips return `interrupted` (unjournaled, so a
/// `--resume` run recomputes them); with a deadline, an over-budget task
/// becomes a quarantined row with a `timeout:` diagnostic and counts in
/// `RunHealth::timeouts`.  See docs/ROBUSTNESS.md.
std::vector<OptResult> optimize_greedy_batch(
    const EvalConfig& config, const std::vector<std::string>& bench_names,
    const OptimizerOptions& opts, EvalStats* merged = nullptr,
    const RunControl* run = nullptr);

/// One task's outcome from the guarded per-task driver.
struct TaskOutcome {
  OptResult result;
  EvalStats stats;
  bool completed = true;  ///< terminal result (journalable)
};

/// Remote-offload hook consulted by optimize_one_guarded: when installed
/// (by the CLI under `--remote=ADDR`; the core never depends on the
/// service layer), a task is executed by the evaluation service instead of
/// locally, and the returned string is the response payload — byte-for-
/// byte the `encode_opt_result` line a local run would journal, so remote
/// and local sweeps produce identical journals and identical merged stats.
/// The hook may throw: CancelledError marks the task interrupted
/// (unjournaled, recomputed on resume); any tacos::Error — e.g. a
/// ServiceError after exhausted retries — quarantines the one task while
/// the rest of the sweep survives.  Remote-failure quarantines are *not*
/// journaled: the failure is environmental (a down server), not a property
/// of the task, so a resume against a healthy server recomputes it.
/// Install before spawning batch threads; empty function uninstalls.
using RemoteOptimizeFn = std::function<std::string(
    const EvalConfig& config, const std::string& bench,
    const OptimizerOptions& opts, double task_deadline_s)>;
void set_remote_optimize_hook(RemoteOptimizeFn fn);
/// The installed hook (empty when local).
const RemoteOptimizeFn& remote_optimize_hook();

/// The per-task body of optimize_greedy_batch, exposed so the sweep
/// fabric's worker loop (src/core/fabric.cpp) runs the *same* code path:
/// journal replay, per-task cancel/deadline token, quarantine containment,
/// health accounting, span annotation and journal append — which is what
/// makes an N-worker fabric journal byte-identical to the single-process
/// one.  `run` (and its journal) may be null.
TaskOutcome optimize_one_guarded(const EvalConfig& config,
                                 const std::string& name,
                                 const OptimizerOptions& opts,
                                 const RunControl* run);

/// Configuration fingerprint pinned into a run directory (the value bound
/// under `meta:optimize_greedy_batch`): any knob that changes task results
/// makes a resume with a mismatched journal an error.  Exposed so the
/// sweep fabric binds the *same* fingerprint into shard journals and the
/// merged canonical journal.
std::string batch_meta(const EvalConfig& config,
                       const std::vector<std::string>& bench_names,
                       const OptimizerOptions& opts);

/// Journal payload codec for one batch task (exposed for durability
/// tests).  encode → decode round-trips every field bit-exactly (doubles
/// rendered with %.17g).
std::string encode_opt_result(const OptResult& result, const EvalStats& stats);
bool decode_opt_result(const std::string& payload, OptResult* result,
                       EvalStats* stats);

/// Journal payload of a "refine:<bench>" row — the continuous-refinement
/// record optimize_one_guarded appends immediately *before* its
/// "optimize:<bench>" row whenever refinement accepted a step.  Derived
/// deterministically from the result, so replays, remote offloads and
/// fabric shard merges all reproduce the same bytes.
std::string encode_refine_row(const OptResult& result);

/// Full optimization with exhaustive placement search (validation only).
OptResult optimize_exhaustive(Evaluator& eval, const BenchmarkProfile& bench,
                              const OptimizerOptions& opts);

/// Best achievable IPS at a fixed interposer size `w_mm` and chiplet count
/// `n` under the temperature threshold (drives Figs. 6 and 7): walks the
/// (f, p) pairs in descending-IPS order and returns the first that has a
/// feasible placement.
struct MaxIpsResult {
  bool found = false;
  Organization org;
  double ips = 0.0;
};
MaxIpsResult max_ips_at_interposer(Evaluator& eval,
                                   const BenchmarkProfile& bench, int n,
                                   double w_mm, const OptimizerOptions& opts,
                                   Rng& rng);

/// Size of the full per-benchmark design space at the options' granularity:
/// every (f, p, n, W, placement) organization an exhaustive sweep would
/// have to simulate (the paper counts ~680k at 0.5 mm granularity).  Used
/// by the E9 validation to report the greedy's simulation savings.
std::size_t design_space_size(const Evaluator& eval,
                              const OptimizerOptions& opts);

}  // namespace tacos
