#include "core/reliability.hpp"

#include <cmath>

namespace tacos {

namespace {
double to_kelvin(double c) { return c + 273.15; }
}  // namespace

double mttf_factor(double temp_c, double ref_c, double ea_ev) {
  TACOS_CHECK(ea_ev > 0, "activation energy must be positive");
  TACOS_CHECK(to_kelvin(temp_c) > 0 && to_kelvin(ref_c) > 0,
              "temperatures below absolute zero");
  return std::exp(ea_ev / kBoltzmannEvPerK *
                  (1.0 / to_kelvin(temp_c) - 1.0 / to_kelvin(ref_c)));
}

double mttf_per_10c(double around_c, double ea_ev) {
  return mttf_factor(around_c, around_c + 10.0, ea_ev);
}

}  // namespace tacos
