#pragma once
/// \file reliability.hpp
/// \brief Temperature-driven lifetime (MTTF) estimation.
///
/// The paper (§V-B) notes that even when 2.5D integration buys no
/// performance (lu.cont), the lower operating temperature "improves
/// transistor lifetime and reliability".  This extension quantifies that
/// with the standard Arrhenius acceleration model used for
/// electromigration / TDDB-style wear-out (Black's equation temperature
/// term):
///
///   MTTF(T) ∝ exp(Ea / (k · T))     with T in kelvin,
///
/// so the lifetime of a design running at T relative to one at T_ref is
///   AF = exp(Ea/k * (1/T - 1/T_ref)).
///
/// The default activation energy Ea = 0.7 eV is the JEDEC-typical value
/// for electromigration in copper interconnect.

#include "common/check.hpp"

namespace tacos {

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmannEvPerK = 8.617333262e-5;

/// Relative lifetime of silicon operating at `temp_c` versus `ref_c`:
/// > 1 means the part at `temp_c` lives longer.  Ea in eV.
double mttf_factor(double temp_c, double ref_c, double ea_ev = 0.7);

/// Convenience: per-10-°C rule of thumb implied by Ea at `around_c` — the
/// classic "every 10 °C roughly halves lifetime" check.
double mttf_per_10c(double around_c, double ea_ev = 0.7);

}  // namespace tacos
