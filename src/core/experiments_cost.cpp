#include "cost/cost_model.hpp"
#include "core/experiments.hpp"
#include "floorplan/system_spec.hpp"

namespace tacos {

TextTable fig3a_cost_table(double w_step_mm) {
  const SystemSpec spec;
  const double chip_area = spec.chip_edge_mm() * spec.chip_edge_mm();
  TextTable t({"interposer_mm", "D0_cm2", "n_chiplets", "cost_usd",
               "cost_norm_to_2D"});
  for (double d0 : {0.20, 0.25, 0.30}) {
    CostParams p;
    p.defect_density_cm2 = d0;
    const double c2d = single_chip_cost(chip_area, p);
    for (int n : {4, 16}) {
      const double chiplet_edge = spec.chip_edge_mm() / (n == 4 ? 2 : 4);
      const double chiplet_area = chiplet_edge * chiplet_edge;
      for (double w = 20.0; w <= spec.max_interposer_mm + 1e-9;
           w += w_step_mm) {
        const double c = system_cost_25d(n, chiplet_area, w * w, p);
        t.add_row({TextTable::fmt(w, 1), TextTable::fmt(d0, 2),
                   std::to_string(n), TextTable::fmt(c, 2),
                   TextTable::fmt(c / c2d, 4)});
      }
    }
  }
  return t;
}

TextTable cost_claims_table() {
  const SystemSpec spec;
  const CostParams p;  // D0 = 0.25/cm² (Table II)
  TextTable t({"claim", "paper", "model"});

  // Claim 1 (§III-C): growing a single chip from 20×20 to 40×40 costs 27×.
  const double c20 = single_chip_cost(20.0 * 20.0, p);
  const double c40 = single_chip_cost(40.0 * 40.0, p);
  t.add_row({"single-chip cost ratio 40mm vs 20mm", "27x",
             TextTable::fmt(c40 / c20, 1) + "x"});

  // Claim 2 (§III-C): 4 chiplets (10mm each) + 40×40 interposer is 27%
  // cheaper than the 20×20 single chip.
  const CostBreakdown b4 = cost_breakdown_25d(4, 10.0 * 10.0, 40.0 * 40.0, p);
  t.add_row({"4-chiplet+40mm-interposer vs 20mm chip", "-27%",
             TextTable::fmt((1.0 - b4.total / c20) * 100.0, 1) + "%"});

  // Claim 3 (§III-C): the interposer is ~30% of that 2.5D system's cost.
  t.add_row({"interposer share of 2.5D cost", "30%",
             TextTable::fmt(b4.interposer / b4.total * 100.0, 1) + "%"});

  // Claim 4 (§III-B / §V-B): minimal-interposer 2.5D systems save 30-42%
  // across D0 = 0.20..0.30 (36% at D0 = 0.25 with 16 chiplets).
  const double chip_area = spec.chip_edge_mm() * spec.chip_edge_mm();
  const double w_min = spec.chip_edge_mm() + 2 * spec.guard_band_mm;
  double save_min = 1e9, save_max = -1e9;
  for (double d0 : {0.20, 0.25, 0.30}) {
    CostParams pd = p;
    pd.defect_density_cm2 = d0;
    const double c2d = single_chip_cost(chip_area, pd);
    for (int n : {4, 16}) {
      const double edge = spec.chip_edge_mm() / (n == 4 ? 2 : 4);
      const double c = system_cost_25d(n, edge * edge, w_min * w_min, pd);
      const double save = (1.0 - c / c2d) * 100.0;
      save_min = std::min(save_min, save);
      save_max = std::max(save_max, save);
    }
  }
  t.add_row({"min-interposer cost saving range", "30-42%",
             TextTable::fmt(save_min, 1) + "-" + TextTable::fmt(save_max, 1) +
                 "%"});

  // The specific 36% number (16 chiplets, D0 = 0.25, minimal interposer).
  const double c2d = single_chip_cost(chip_area, p);
  const double edge16 = spec.chip_edge_mm() / 4;
  const double c16 = system_cost_25d(16, edge16 * edge16, w_min * w_min, p);
  t.add_row({"16-chiplet min-interposer saving (D0=0.25)", "36%",
             TextTable::fmt((1.0 - c16 / c2d) * 100.0, 1) + "%"});
  return t;
}

}  // namespace tacos
