#include "core/optimizer.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>

#include "common/thread_pool.hpp"
#include "core/refine.hpp"
#include "obs/trace.hpp"

namespace tacos {

long spacing_grid_max(double budget_mm, double step_mm) {
  return std::lround(std::floor(budget_mm / 2.0 / step_mm + 1e-9));
}

std::pair<long, long> greedy_smart_start(double budget_mm, double step_mm) {
  const long grid_max = spacing_grid_max(budget_mm, step_mm);
  // Uniform matrix placement s1 = s3 = B/3, s2 = s3/2, snapped to the
  // nearest grid points (the historical rounding, which every recorded
  // journal and frontier winner depends on).  Nearest rounding alone can
  // leave the Eq. 9/10 manifold when the budget is not a step multiple:
  // i1 <= grid_max keeps s3 >= 0 only up to the epsilon the grid_max
  // guard admits, and a nearest-rounded i2 at the top of the grid can
  // overshoot the Eq. 10 bound (2*s2 <= budget) by the same epsilon —
  // which the layout factory's strict checks reject.  So the start is
  // rounded *down* onto the manifold whenever nearest overshoots it: the
  // strict comparison never fires for step-divisible budgets (historical
  // starts are bit-identical) and only demotes the genuinely off-manifold
  // ones.
  long i1 = std::lround(budget_mm / 3.0 / step_mm);
  i1 = std::clamp(i1, 0L, grid_max);
  long i2 = std::lround((budget_mm - 2 * i1 * step_mm) / 2.0 / step_mm);
  i2 = std::clamp(i2, 0L, grid_max);
  while (i1 > 0 && 2 * i1 * step_mm > budget_mm) --i1;          // s3 >= 0
  while (i2 > 0 && 2 * i2 * step_mm > budget_mm) --i2;          // Eq. 10
  return {i1, i2};
}

namespace {

/// Smallest interposer edge for n chiplets (fully packed, Eq. 9).
double min_interposer(const SystemSpec& spec) {
  return spec.chip_edge_mm() + 2 * spec.guard_band_mm;
}


/// The spacing-budget of a combo: total gap along one axis (Eq. 9).
double spacing_budget(const Combo& combo, const SystemSpec& spec) {
  return combo.interposer_mm - min_interposer(spec);
}

Organization make_org(const Combo& combo, const Spacing& s) {
  return Organization{combo.n_chiplets, s, combo.dvfs_idx,
                      combo.active_cores};
}

/// Spacing for the n=16 manifold point (s1, s2) at budget B.  The clamps
/// absorb representation error at the top of the grid: budgets are
/// accumulated in step_mm increments, so a budget sitting epsilon below an
/// exact step multiple lets spacing_grid_max's epsilon guard round up and
/// 2 * s1 (or 2 * s2) overshoot the budget by ~1e-9 mm — which the layout
/// factory's strict s3 >= 0 and Eq. 10 checks would reject.  Both clamps
/// bind only in that epsilon band (s2 <= grid_max * step <= B/2 + eps), so
/// every historically reachable point is unchanged.
Spacing spacing16(double s1, double s2, double budget) {
  const double s3 = std::max(0.0, budget - 2 * s1);
  return Spacing{s1, std::min(s2, s1 + s3 / 2.0), s3};
}

/// IPS fallback normalizer when no 2D point is thermally feasible: the
/// weakest operating point (Eq. (5) still needs a positive IPS_2D).
double ips_2d_or_fallback(const Evaluator& eval, const BenchmarkProfile& bench,
                          const BaselinePoint& base) {
  if (base.feasible) return base.ips;
  Organization weakest{1, {}, kDvfsLevelCount - 1, kActiveCoreChoices.front()};
  return eval.ips(weakest, bench);
}

}  // namespace

std::vector<Combo> enumerate_combos(const Evaluator& eval,
                                    const BenchmarkProfile& bench,
                                    double ips_2d, double cost_2d,
                                    const OptimizerOptions& opts) {
  TACOS_CHECK(ips_2d > 0 && cost_2d > 0, "normalizers must be positive");
  TACOS_CHECK(opts.step_mm > 0, "granularity must be positive");
  const SystemSpec& spec = eval.config().spec;
  // Interposer sizes start at the packed minimum and advance by the grid
  // step, so every combination's spacing budget is step-aligned.
  const double w_min = min_interposer(spec);

  std::vector<Combo> combos;
  for (int n : opts.chiplet_counts) {
    TACOS_CHECK(n == 4 || n == 16, "chiplet count must be 4 or 16, got " << n);
    const double chiplet_edge = spec.chip_edge_mm() / (n == 4 ? 2 : 4);
    for (double w = w_min; w <= spec.max_interposer_mm + 1e-9;
         w += opts.step_mm) {
      const double cost = system_cost_25d(n, chiplet_edge * chiplet_edge,
                                          w * w, eval.config().cost);
      for (std::size_t f = 0; f < kDvfsLevelCount; ++f) {
        for (int p : kActiveCoreChoices) {
          Combo c;
          c.dvfs_idx = f;
          c.active_cores = p;
          c.n_chiplets = n;
          c.interposer_mm = w;
          c.ips = system_ips(bench, kDvfsLevels[f].freq_mhz, p);
          c.cost = cost;
          c.objective =
              opts.alpha * ips_2d / c.ips + opts.beta * c.cost / cost_2d;
          combos.push_back(c);
        }
      }
    }
  }
  std::sort(combos.begin(), combos.end(), [](const Combo& a, const Combo& b) {
    if (a.objective != b.objective) return a.objective < b.objective;
    // Deterministic tie-breaks: cheaper, then smaller, then faster.
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.n_chiplets != b.n_chiplets) return a.n_chiplets < b.n_chiplets;
    if (a.dvfs_idx != b.dvfs_idx) return a.dvfs_idx < b.dvfs_idx;
    return a.active_cores < b.active_cores;
  });
  return combos;
}

std::optional<Organization> find_placement_greedy(
    Evaluator& eval, const BenchmarkProfile& bench, const Combo& combo,
    const OptimizerOptions& opts, Rng& rng) {
  const SystemSpec& spec = eval.config().spec;
  const double budget = spacing_budget(combo, spec);
  TACOS_CHECK(budget >= -1e-9, "combo interposer below the packed minimum");

  if (combo.n_chiplets == 4) {
    // Eq. (9) pins the single spacing; nothing to search.
    const Organization org = make_org(combo, Spacing{0, 0, budget});
    // Fidelity ladder: a calibrated low-fidelity reject stands in for the
    // full infeasibility verdict.  No RNG is consumed on either path, so
    // the decision is placement-for-placement identical when the screen
    // promotes (see Evaluator::screen_infeasible).
    if (opts.prune_margin_c > 0 &&
        eval.screen_infeasible(org, bench, opts.threshold_c))
      return std::nullopt;
    if (eval.feasible(org, bench, opts.threshold_c)) return org;
    return std::nullopt;
  }

  // n = 16: search the (s1, s2) manifold.
  const double step = opts.step_mm;
  const long grid_max = spacing_grid_max(budget, step);
  const auto org_at = [&](long i1, long i2) {
    return make_org(combo, spacing16(i1 * step, i2 * step, budget));
  };

  // One walk-candidate verdict.  Full mode: the historical
  // feasible()-then-thermal_eval pair (exact peaks, frontier shortcut
  // intact).  Ladder mode: Evaluator::walk_eval, which substitutes a
  // calibrated medium-rung estimate for candidates it is sure are
  // infeasible and clear of `prune_above`, and promotes every ambiguous
  // one to the identical exact evaluation.
  const auto cand_eval = [&](const Organization& o,
                             double prune_above) -> Evaluator::WalkEval {
    if (eval.ladder_active())
      return eval.walk_eval(o, bench, opts.threshold_c, prune_above);
    Evaluator::WalkEval w;
    if (eval.feasible(o, bench, opts.threshold_c)) {
      w.feasible = true;
      return w;
    }
    w.peak_c = eval.thermal_eval(o, bench).peak_c;
    return w;
  };
  constexpr double kNoPrune = std::numeric_limits<double>::quiet_NaN();

  // Neighbour shuffles draw from a child stream seeded per (combo, start),
  // not from the shared per-benchmark Rng: the number of move rounds a
  // walk takes (and hence its draw count) depends on evaluation fidelity,
  // and letting it advance the shared stream would make every later
  // combo's random starts — and so the chosen organization — depend on
  // how early previous walks happened to terminate.  With the fork, the
  // shared stream advances exactly two draws per random start in every
  // fidelity mode.
  const auto walk_rng_for = [&](int start) {
    std::uint64_t h = opts.seed;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(combo.dvfs_idx));
    mix(static_cast<std::uint64_t>(combo.active_cores));
    mix(static_cast<std::uint64_t>(combo.n_chiplets));
    mix(static_cast<std::uint64_t>(std::llround(combo.interposer_mm * 100)));
    mix(static_cast<std::uint64_t>(start));
    return Rng(h);
  };

  for (int start = 0; start < opts.starts; ++start) {
    if (opts.cancel) opts.cancel->poll();
    long i1, i2;
    if (start == 0) {
      // Deterministic first start: the uniform matrix placement
      // (s1 = s3 = B/3, s2 = s3/2), usually the best heat spreader.
      std::tie(i1, i2) = greedy_smart_start(budget, step);
    } else {
      // uniform_long: grid_max does not fit in int at fine steps on large
      // interposers, and the old int cast truncated (implementation-
      // defined wrap biasing the starts).  In-int-range draws consume the
      // engine identically to the historical uniform_int path.
      i1 = rng.uniform_long(0, grid_max);
      i2 = rng.uniform_long(0, grid_max);
    }

    Organization cur = org_at(i1, i2);
    // Fidelity ladder: screen the deterministic uniform probe against the
    // prune bound before paying for the full evaluation.  A reject takes
    // exactly the branch the full path's prune would have taken (before
    // any RNG draw); a promote falls through to the unchanged full path.
    if (start == 0 && opts.prune_margin_c > 0 &&
        eval.screen_infeasible(cur, bench,
                               opts.threshold_c + opts.prune_margin_c)) {
      return std::nullopt;  // screened: uniform probe far too hot
    }
    Evaluator::WalkEval cur_e =
        cand_eval(cur, start == 0 && opts.prune_margin_c > 0
                           ? opts.threshold_c + opts.prune_margin_c
                           : kNoPrune);
    if (cur_e.feasible) return cur;
    if (start == 0 && opts.prune_margin_c > 0 &&
        cur_e.peak_c > opts.threshold_c + opts.prune_margin_c) {
      return std::nullopt;  // uniform probe far too hot: prune this combo
    }

    Rng walk_rng = walk_rng_for(start);
    for (int move = 0; move < opts.max_moves; ++move) {
      if (opts.cancel) opts.cancel->poll();
      // The four ±step neighbours on the manifold, in random order (the
      // paper picks neighbours randomly to avoid ordering bias).
      std::array<std::pair<long, long>, 4> nbs = {
          {{i1 + 1, i2}, {i1 - 1, i2}, {i1, i2 + 1}, {i1, i2 - 1}}};
      std::shuffle(nbs.begin(), nbs.end(), walk_rng.engine());
      bool moved = false;
      for (const auto& [n1, n2] : nbs) {
        if (n1 < 0 || n1 > grid_max || n2 < 0 || n2 > grid_max) continue;
        const Organization nb = org_at(n1, n2);
        Evaluator::WalkEval nb_e = cand_eval(nb, kNoPrune);
        if (nb_e.feasible) return nb;
        if (nb_e.peak_c < cur_e.peak_c) {
          i1 = n1;
          i2 = n2;
          cur_e = nb_e;
          moved = true;
          break;  // S_neighbor becomes S_current
        }
      }
      if (!moved) break;  // local minimum: try the next starting point
    }
  }
  return std::nullopt;
}

std::optional<Organization> find_placement_exhaustive(
    Evaluator& eval, const BenchmarkProfile& bench, const Combo& combo,
    const OptimizerOptions& opts) {
  const SystemSpec& spec = eval.config().spec;
  const double budget = spacing_budget(combo, spec);
  if (combo.n_chiplets == 4) {
    const Organization org = make_org(combo, Spacing{0, 0, budget});
    if (eval.thermal_eval(org, bench).peak_c <= opts.threshold_c) return org;
    return std::nullopt;
  }
  const double step = opts.step_mm;
  const long grid_max = spacing_grid_max(budget, step);
  std::optional<Organization> found;
  // True exhaustive semantics: evaluate every placement in the manifold
  // (this is what makes the paper's exhaustive baseline cost 180k CPU
  // hours), then report the feasible one with the lowest peak.
  double best_peak = 1e300;
  for (long i1 = 0; i1 <= grid_max; ++i1) {
    if (opts.cancel) opts.cancel->poll();
    for (long i2 = 0; i2 <= grid_max; ++i2) {
      const Organization org =
          make_org(combo, spacing16(i1 * step, i2 * step, budget));
      const double peak = eval.thermal_eval(org, bench).peak_c;
      if (peak <= opts.threshold_c && peak < best_peak) {
        best_peak = peak;
        found = org;
      }
    }
  }
  return found;
}

namespace {

template <typename PlacementFn>
OptResult optimize_impl(Evaluator& eval, const BenchmarkProfile& bench,
                        const OptimizerOptions& opts, PlacementFn&& placer) {
  const std::size_t solves_before = eval.solve_count();
  const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
  const double ips_2d = ips_2d_or_fallback(eval, bench, base);
  const std::vector<Combo> combos =
      enumerate_combos(eval, bench, ips_2d, eval.cost_2d(), opts);

  OptResult res;
  for (const Combo& combo : combos) {
    if (opts.cancel) opts.cancel->poll();
    ++res.combos_tried;
    const std::optional<Organization> org = placer(combo);
    if (org) {
      res.found = true;
      res.org = *org;
      res.ips = combo.ips;
      res.cost = eval.cost(*org);
      res.objective = combo.objective;
      res.peak_c = eval.thermal_eval(*org, bench).peak_c;
      // Continuous refinement: descend off the grid from the winner with
      // exact adjoint gradients.  The combination is frozen, so objective,
      // IPS and cost stand; only spacings (and the peak) can improve.
      if (opts.refine && res.org.n_chiplets == 16) {
        const RefineResult rr = refine_spacing(
            eval, bench, res.org, spacing_budget(combo, eval.config().spec),
            opts.step_mm, opts.refine_tol_mm, opts.refine_max_steps,
            opts.cancel);
        if (rr.steps > 0) {
          res.refined = true;
          res.grid_spacing = res.org.spacing;
          res.peak_grid_c = res.peak_c;
          res.refine_steps = rr.steps;
          res.org = rr.org;
          res.peak_c = rr.peak_c;
          res.cost = eval.cost(res.org);  // area-only: unchanged by spacing
        }
      }
      break;
    }
  }
  res.thermal_solves = eval.solve_count() - solves_before;
  return res;
}

}  // namespace

OptResult optimize_greedy(Evaluator& eval, const BenchmarkProfile& bench,
                          const OptimizerOptions& opts) {
  Rng rng(opts.seed);
  return optimize_impl(eval, bench, opts, [&](const Combo& c) {
    return find_placement_greedy(eval, bench, c, opts, rng);
  });
}

namespace {

/// Exact (round-trippable) rendering for journal payloads.
std::string fmt_g17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Reads one whitespace-delimited token as a double via strtod, which —
/// unlike istream extraction — accepts the "inf"/"nan" spellings that
/// %.17g emits for non-finite values.
bool read_double(std::istream& in, double* out) {
  std::string tok;
  if (!(in >> tok)) return false;
  char* end = nullptr;
  *out = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

}  // namespace

std::string batch_meta(const EvalConfig& config,
                       const std::vector<std::string>& bench_names,
                       const OptimizerOptions& opts) {
  std::ostringstream m;
  m << "grid=" << config.thermal.grid_nx << 'x' << config.thermal.grid_ny
    << " alpha=" << fmt_g17(opts.alpha) << " beta=" << fmt_g17(opts.beta)
    << " threshold=" << fmt_g17(opts.threshold_c)
    << " step=" << fmt_g17(opts.step_mm) << " starts=" << opts.starts
    << " max_moves=" << opts.max_moves << " seed=" << opts.seed
    << " prune=" << fmt_g17(opts.prune_margin_c)
    << " fidelity=" << fidelity_mode_name(config.ladder.mode)
    << " keep_frac=" << fmt_g17(config.ladder.keep_frac)
    << " min_calib=" << config.ladder.min_calibration
    << " ladder_margin=" << fmt_g17(config.ladder.safety_margin_c);
  // Refinement knobs enter the fingerprint only when the stage is on, so
  // journals of non-refined sweeps stay byte-identical to prior releases.
  if (opts.refine)
    m << " refine=1 refine_tol=" << fmt_g17(opts.refine_tol_mm)
      << " refine_max_steps=" << opts.refine_max_steps;
  m << " n=";
  for (std::size_t i = 0; i < opts.chiplet_counts.size(); ++i)
    m << (i ? "," : "") << opts.chiplet_counts[i];
  m << " benches=";
  for (std::size_t i = 0; i < bench_names.size(); ++i)
    m << (i ? "," : "") << bench_names[i];
  return m.str();
}

std::string encode_opt_result(const OptResult& result,
                              const EvalStats& stats) {
  std::ostringstream os;
  os << "found " << (result.found ? 1 : 0) << '\n'
     << "org " << result.org.n_chiplets << ' ' << fmt_g17(result.org.spacing.s1)
     << ' ' << fmt_g17(result.org.spacing.s2) << ' '
     << fmt_g17(result.org.spacing.s3) << ' ' << result.org.dvfs_idx << ' '
     << result.org.active_cores << '\n'
     << "metrics " << fmt_g17(result.ips) << ' ' << fmt_g17(result.cost) << ' '
     << fmt_g17(result.objective) << ' ' << fmt_g17(result.peak_c) << '\n'
     << "counts " << result.combos_tried << ' ' << result.thermal_solves
     << '\n'
     << "quarantined " << (result.quarantined ? 1 : 0) << '\n';
  // The pre-refinement grid winner travels with the row (emitted only when
  // refinement accepted a step: grid-only payloads stay byte-identical to
  // earlier releases, and older decoders skip the unknown key).
  if (result.refined)
    os << "refined " << fmt_g17(result.peak_grid_c) << ' '
       << fmt_g17(result.grid_spacing.s1) << ' '
       << fmt_g17(result.grid_spacing.s2) << ' '
       << fmt_g17(result.grid_spacing.s3) << ' ' << result.refine_steps
       << '\n';
  if (!result.diagnostic.empty())
    os << "diagnostic " << escape_field(result.diagnostic) << '\n';
  const RunHealth& h = stats.health;
  os << "stats " << stats.solves << ' ' << stats.evals << '\n'
     << "health " << h.cold_restarts << ' ' << h.cap_retries << ' '
     << h.gs_fallbacks << ' ' << h.solve_failures << ' ' << h.nonfinite_inputs
     << ' ' << h.leak_nonconverged << ' ' << h.quarantined << ' ' << h.timeouts
     << ' ' << h.cancelled << '\n';
  // Rung metadata travels with the row so a resumed ladder sweep replays
  // its screening counters identically.  Emitted only when the ladder ran:
  // full-mode payloads stay byte-identical to earlier releases, and older
  // decoders skip the unknown key.
  const LadderStats& l = stats.ladder;
  if (l.any())
    os << "ladder " << l.screened << ' ' << l.rejected << ' ' << l.promoted
       << ' ' << l.audits << ' ' << l.surrogate_scores << ' '
       << l.surrogate_fits << ' ' << l.coarse_solves << ' '
       << l.coarse_failures << ' ' << l.medium_solves << ' '
       << l.medium_failures << '\n';
  const RefineStats& r = stats.refine;
  if (r.any())
    os << "refine " << r.attempted << ' ' << r.steps << ' ' << r.trials
       << ' ' << r.adjoint_solves << '\n';
  return os.str();
}

std::string encode_refine_row(const OptResult& result) {
  TACOS_CHECK(result.refined, "refine row encodes a refined result only");
  std::ostringstream os;
  os << "steps " << result.refine_steps << '\n'
     << "grid " << fmt_g17(result.grid_spacing.s1) << ' '
     << fmt_g17(result.grid_spacing.s2) << ' '
     << fmt_g17(result.grid_spacing.s3) << ' '
     << fmt_g17(result.peak_grid_c) << '\n'
     << "refined " << fmt_g17(result.org.spacing.s1) << ' '
     << fmt_g17(result.org.spacing.s2) << ' '
     << fmt_g17(result.org.spacing.s3) << ' ' << fmt_g17(result.peak_c)
     << '\n';
  return os.str();
}

bool decode_opt_result(const std::string& payload, OptResult* result,
                       EvalStats* stats) {
  *result = OptResult{};
  *stats = EvalStats{};
  bool saw_found = false, saw_health = false;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "found") {
      int v = 0;
      if (!(ls >> v)) return false;
      result->found = v != 0;
      saw_found = true;
    } else if (key == "org") {
      if (!(ls >> result->org.n_chiplets)) return false;
      if (!read_double(ls, &result->org.spacing.s1) ||
          !read_double(ls, &result->org.spacing.s2) ||
          !read_double(ls, &result->org.spacing.s3))
        return false;
      if (!(ls >> result->org.dvfs_idx >> result->org.active_cores))
        return false;
    } else if (key == "metrics") {
      if (!read_double(ls, &result->ips) || !read_double(ls, &result->cost) ||
          !read_double(ls, &result->objective) ||
          !read_double(ls, &result->peak_c))
        return false;
    } else if (key == "counts") {
      if (!(ls >> result->combos_tried >> result->thermal_solves))
        return false;
    } else if (key == "quarantined") {
      int v = 0;
      if (!(ls >> v)) return false;
      result->quarantined = v != 0;
    } else if (key == "diagnostic") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      result->diagnostic = unescape_field(rest);
    } else if (key == "stats") {
      if (!(ls >> stats->solves >> stats->evals)) return false;
    } else if (key == "health") {
      RunHealth& h = stats->health;
      if (!(ls >> h.cold_restarts >> h.cap_retries >> h.gs_fallbacks >>
            h.solve_failures >> h.nonfinite_inputs >> h.leak_nonconverged >>
            h.quarantined >> h.timeouts >> h.cancelled))
        return false;
      saw_health = true;
    } else if (key == "ladder") {
      LadderStats& l = stats->ladder;
      if (!(ls >> l.screened >> l.rejected >> l.promoted >> l.audits >>
            l.surrogate_scores >> l.surrogate_fits >> l.coarse_solves >>
            l.coarse_failures >> l.medium_solves >> l.medium_failures))
        return false;
    } else if (key == "refined") {
      if (!read_double(ls, &result->peak_grid_c) ||
          !read_double(ls, &result->grid_spacing.s1) ||
          !read_double(ls, &result->grid_spacing.s2) ||
          !read_double(ls, &result->grid_spacing.s3))
        return false;
      if (!(ls >> result->refine_steps)) return false;
      result->refined = true;
    } else if (key == "refine") {
      RefineStats& r = stats->refine;
      if (!(ls >> r.attempted >> r.steps >> r.trials >> r.adjoint_solves))
        return false;
    }
    // Unknown keys are skipped: older journals stay readable (a pre-ladder
    // row simply decodes with zero LadderStats).
  }
  return saw_found && saw_health;
}

namespace {
RemoteOptimizeFn& remote_hook_slot() {
  static RemoteOptimizeFn hook;
  return hook;
}
}  // namespace

void set_remote_optimize_hook(RemoteOptimizeFn fn) {
  remote_hook_slot() = std::move(fn);
}

const RemoteOptimizeFn& remote_optimize_hook() { return remote_hook_slot(); }

TaskOutcome optimize_one_guarded(const EvalConfig& config,
                                 const std::string& name,
                                 const OptimizerOptions& opts,
                                 const RunControl* run) {
  RunJournal* const journal = run ? run->journal : nullptr;
  static obs::SpanSite task_site("opt.task", "opt");
  obs::TraceSpan task_span(task_site);
  task_span.arg("bench", name);
  TaskOutcome out;
  const std::string task_id = "optimize:" + name;
  if (journal) {
    if (const std::optional<std::string> payload = journal->find(task_id)) {
      // Checkpoint replay: the journaled row and its shard stats
      // stand in for the recomputation, so a resumed run's output —
      // including the merged counters — is byte-identical to an
      // uninterrupted one.  An undecodable payload (hand-edited
      // journal) falls through to recomputation.
      if (decode_opt_result(*payload, &out.result, &out.stats)) {
        task_span.arg("outcome", "replayed");
        return out;
      }
    }
  }
  if (run && run->cancel && run->cancel->cancelled()) {
    // Graceful shutdown: stop dispatching new tasks; in-flight ones
    // drain via their own tokens.  Not journaled → recomputed on
    // resume.
    out.result.interrupted = true;
    out.completed = false;
    ++out.stats.health.cancelled;
    task_span.arg("outcome", "interrupted");
    return out;
  }
  if (const RemoteOptimizeFn& remote = remote_optimize_hook()) {
    // Offload to the evaluation service.  The payload that comes back is
    // the exact encode_opt_result line a local execution would have
    // journaled, so the journal (and the merged stats decoded from it)
    // stays byte-identical to a local run.
    try {
      const std::string payload =
          remote(config, name, opts, run ? run->task_deadline_s : 0.0);
      TACOS_CHECK(decode_opt_result(payload, &out.result, &out.stats),
                  "remote response payload for '" << name
                                                  << "' is undecodable");
      task_span.arg("outcome", "remote");
      if (journal) {
        // Refinement rows ride ahead of their optimize row, in the order a
        // local run appends them, so the journal stays byte-identical.
        if (out.result.refined)
          journal->append("refine:" + name, encode_refine_row(out.result));
        journal->append(task_id, payload);
      }
      return out;
    } catch (const CancelledError&) {
      out = TaskOutcome{};
      out.result.interrupted = true;
      out.completed = false;
      ++out.stats.health.cancelled;
      task_span.arg("outcome", "interrupted");
      return out;
    } catch (const Error& e) {
      // Exhausted retries (or a server-side failure): quarantine this
      // task, let the sweep survive.  Deliberately NOT journaled — the
      // failure is environmental, so a resume against a healthy server
      // recomputes instead of replaying the outage.
      out = TaskOutcome{};
      out.result.quarantined = true;
      out.result.diagnostic = e.what();
      ++out.stats.health.quarantined;
      task_span.arg("outcome", "quarantined");
      return out;
    }
  }
  // Per-task token: chains the run-level cancel and carries this
  // task's wall-clock budget.
  CancelToken task_cancel(run ? run->cancel : nullptr);
  if (run && run->task_deadline_s > 0)
    task_cancel.set_deadline(run->task_deadline_s);
  EvalConfig task_config = config;
  task_config.thermal.solve.cancel = &task_cancel;
  OptimizerOptions task_opts = opts;
  task_opts.cancel = &task_cancel;

  Evaluator eval(task_config);  // per-task shard: caches never shared
  bool timed_out = false;
  try {
    out.result = optimize_greedy(eval, benchmark_by_name(name), task_opts);
  } catch (const CancelledError& c) {
    if (c.reason() == CancelledError::Reason::kDeadline) {
      // Over budget: a terminal, journalable outcome — the paper
      // workload must never hang on one pathological layout.
      out.result = OptResult{};
      out.result.quarantined = true;
      out.result.diagnostic = c.what();
      timed_out = true;
    } else {
      out.result = OptResult{};
      out.result.interrupted = true;
      out.completed = false;
    }
  } catch (const Error& e) {
    // Containment: this task failed even after the recovery ladder.
    // Quarantine it (infeasible row + diagnostic) so the rest of the
    // batch survives; the catch is inside the task body, so results
    // stay deterministic at any thread count.
    out.result = OptResult{};
    out.result.quarantined = true;
    out.result.diagnostic = e.what();
  }
  out.stats = eval.stats();
  if (timed_out)
    ++out.stats.health.timeouts;
  else if (out.result.quarantined)
    ++out.stats.health.quarantined;
  else if (out.result.interrupted)
    ++out.stats.health.cancelled;
  task_span.arg("outcome", timed_out ? "timeout"
                : out.result.quarantined
                    ? "quarantined"
                    : out.result.interrupted ? "interrupted" : "ok");
  task_span.arg("solves", static_cast<std::int64_t>(out.stats.solves));
  if (out.completed && journal) {
    // The refine: row precedes its optimize: row so a journal truncated at
    // any byte is still a clean prefix of the canonical sequence.
    if (out.result.refined)
      journal->append("refine:" + name, encode_refine_row(out.result));
    journal->append(task_id, encode_opt_result(out.result, out.stats));
  }
  return out;
}

std::vector<OptResult> optimize_greedy_batch(
    const EvalConfig& config, const std::vector<std::string>& bench_names,
    const OptimizerOptions& opts, EvalStats* merged, const RunControl* run) {
  if (run && run->journal)
    run->journal->bind_meta("optimize_greedy_batch",
                            batch_meta(config, bench_names, opts));
  const std::vector<TaskOutcome> outs = ThreadPool::global().parallel_map(
      bench_names, [&](const std::string& name) {
        return optimize_one_guarded(config, name, opts, run);
      });
  std::vector<OptResult> results;
  results.reserve(outs.size());
  for (const TaskOutcome& o : outs) {
    results.push_back(o.result);
    if (merged) *merged += o.stats;
  }
  return results;
}

OptResult optimize_exhaustive(Evaluator& eval, const BenchmarkProfile& bench,
                              const OptimizerOptions& opts) {
  return optimize_impl(eval, bench, opts, [&](const Combo& c) {
    return find_placement_exhaustive(eval, bench, c, opts);
  });
}

std::size_t design_space_size(const Evaluator& eval,
                              const OptimizerOptions& opts) {
  const SystemSpec& spec = eval.config().spec;
  std::size_t placements = 0;
  for (int n : opts.chiplet_counts) {
    for (double w = min_interposer(spec); w <= spec.max_interposer_mm + 1e-9;
         w += opts.step_mm) {
      if (n == 4) {
        placements += 1;  // Eq. (9) pins the single spacing
      } else {
        const double budget = w - min_interposer(spec);
        const long grid_max = spacing_grid_max(budget, opts.step_mm);
        placements += static_cast<std::size_t>(grid_max + 1) *
                      static_cast<std::size_t>(grid_max + 1);
      }
    }
  }
  return placements * kDvfsLevelCount * kActiveCoreChoices.size();
}

MaxIpsResult max_ips_at_interposer(Evaluator& eval,
                                   const BenchmarkProfile& bench, int n,
                                   double w_mm, const OptimizerOptions& opts,
                                   Rng& rng) {
  struct Cand {
    std::size_t f;
    int p;
    double ips;
  };
  std::vector<Cand> cands;
  for (std::size_t f = 0; f < kDvfsLevelCount; ++f)
    for (int p : kActiveCoreChoices)
      cands.push_back({f, p, system_ips(bench, kDvfsLevels[f].freq_mhz, p)});
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.ips > b.ips; });

  const double chiplet_edge =
      eval.config().spec.chip_edge_mm() / (n == 4 ? 2 : 4);
  MaxIpsResult out;
  for (const Cand& c : cands) {
    Combo combo;
    combo.dvfs_idx = c.f;
    combo.active_cores = c.p;
    combo.n_chiplets = n;
    combo.interposer_mm = w_mm;
    combo.ips = c.ips;
    combo.cost = system_cost_25d(n, chiplet_edge * chiplet_edge, w_mm * w_mm,
                                 eval.config().cost);
    const std::optional<Organization> org =
        find_placement_greedy(eval, bench, combo, opts, rng);
    if (org) {
      out.found = true;
      out.org = *org;
      out.ips = c.ips;
      return out;
    }
  }
  return out;
}

}  // namespace tacos
