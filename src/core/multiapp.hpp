#pragma once
/// \file multiapp.hpp
/// \brief Multi-application chiplet organization (paper §IV, final ¶).
///
/// A real system runs many applications, but a chiplet organization is
/// fixed at design time.  The paper describes three designer strategies:
///
///   * worst-case      — pick the design with the largest interposer that
///                       ensures best performance for all applications;
///   * average-case    — equal-weight mix;
///   * weighted-average — Eq. (5) becomes
///       alpha * sum_i (IPS_2D^i / IPS_2.5D^i * u_i) + beta * C_2.5D/C_2D
///     where u_i is how frequently application i runs.
///
/// Here an organization is the *placement* (n, s1, s2, s3); each
/// application then runs at its own best thermally-feasible (f, p) on
/// that placement, which is how a DVFS-governed system would behave.

#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/optimizer.hpp"

namespace tacos {

/// One application of the mix with its run-frequency weight u_i.
struct AppWeight {
  std::string benchmark;
  double weight = 1.0;
};

/// Designer strategy (§IV).
enum class MultiAppStrategy {
  kWeighted,   ///< weights as given
  kAverage,    ///< equal weights (ignores the given weights)
  kWorstCase,  ///< max over apps of the per-app objective term
};

/// Result of a multi-application optimization.
struct MultiAppResult {
  bool found = false;
  int n_chiplets = 0;
  Spacing spacing;
  double interposer_mm = 0.0;
  double objective = 0.0;
  double cost_norm = 0.0;
  /// Per-app best operating point on the chosen placement.
  struct PerApp {
    std::string benchmark;
    std::size_t dvfs_idx = 0;
    int active_cores = 0;
    double ips = 0.0;
    double ips_vs_2d = 0.0;  ///< IPS / that app's 2D-baseline IPS
  };
  std::vector<PerApp> apps;
  std::size_t thermal_solves = 0;
};

/// Optimize the placement for an application mix.  Placements are
/// enumerated on the opts.step_mm grid (uniform probe plus opts.starts
/// random manifold points per interposer size, as in the single-app
/// greedy); each candidate is scored by the strategy's objective with
/// each app at its best feasible (f, p).
MultiAppResult optimize_multiapp(Evaluator& eval,
                                 const std::vector<AppWeight>& mix,
                                 MultiAppStrategy strategy,
                                 const OptimizerOptions& opts);

}  // namespace tacos
