#include "core/fabric.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/backoff.hpp"
#include "common/check.hpp"
#include "common/errors.hpp"
#include "common/lease.hpp"
#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace tacos {

namespace {

/// "w<k>.<i>" → k, or -1 for names the fabric did not mint.
int worker_index_of(const std::string& worker_name) {
  if (worker_name.size() < 2 || worker_name[0] != 'w' ||
      !std::isdigit(static_cast<unsigned char>(worker_name[1])))
    return -1;
  return std::atoi(worker_name.c_str() + 1);
}

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

std::string fabric_worker_name(int worker_index, int incarnation) {
  std::ostringstream os;
  os << 'w' << worker_index << '.' << incarnation;
  return os.str();
}

std::string shard_journal_file(int worker_index) {
  std::ostringstream os;
  os << "shard-w" << worker_index << ".jsonl";
  return os.str();
}

std::string poison_placeholder_payload(std::size_t crashes) {
  OptResult r;
  r.quarantined = true;
  std::ostringstream d;
  d << "poison-task: crashed " << crashes
    << " worker(s); quarantined by supervisor";
  r.diagnostic = d.str();
  EvalStats stats;
  stats.health.quarantined = 1;
  return encode_opt_result(r, stats);
}

WorkerReport run_fabric_worker(const EvalConfig& config,
                               const std::vector<std::string>& bench_names,
                               const OptimizerOptions& opts,
                               const std::string& run_dir, int worker_index,
                               int incarnation, const FabricOptions& fab,
                               const FaultPlan& faults,
                               const CancelToken* cancel) {
  static obs::SpanSite claim_site("fabric.lease.claim", "fabric");
  static obs::SpanSite reclaim_site("fabric.lease.reclaim", "fabric");
  static obs::SpanSite task_site("fabric.task", "fabric");
  WorkerReport rep;
  const std::string me = fabric_worker_name(worker_index, incarnation);
  LeaseTable leases(run_dir);
  RunJournal shard(run_dir, shard_journal_file(worker_index));
  shard.load();
  shard.bind_meta("optimize_greedy_batch",
                  batch_meta(config, bench_names, opts));
  const RunControl run{&shard, cancel, fab.task_deadline_s};
  std::vector<std::string> ids;
  ids.reserve(bench_names.size());
  for (const std::string& n : bench_names) ids.push_back("optimize:" + n);

  bool stalled = false;
  for (;;) {
    if (cancel && cancel->cancelled()) {
      rep.interrupted = true;
      break;
    }
    leases.refresh();
    bool all_settled = true;
    bool progressed = false;
    for (std::size_t i = 0; i < ids.size() && !rep.interrupted; ++i) {
      const std::string& id = ids[i];
      const LeaseState before = leases.state(id);
      if (before.phase == LeaseState::Phase::kDone ||
          before.phase == LeaseState::Phase::kPoisoned)
        continue;
      all_settled = false;
      if (before.phase == LeaseState::Phase::kHeld) continue;
      const bool is_reclaim = before.epoch > 0;
      obs::TraceSpan span(is_reclaim ? reclaim_site : claim_site);
      span.arg("task", id);
      span.arg("worker", me);
      // Stamp the claim span's context into the lease record so the lease
      // log links back to the timeline (zeros — and pre-PR bytes — when
      // tracing is off).
      obs::TraceContext claim_ctx = span.context();
      if (!claim_ctx.valid()) claim_ctx = obs::current_trace_context();
      const std::optional<std::uint64_t> epoch =
          leases.try_claim(id, me, fab.lease_ttl_ms, claim_ctx.trace_id,
                           claim_ctx.span_id);
      if (!epoch) {
        span.arg("outcome", "lost");
        continue;
      }
      span.arg("epoch", static_cast<std::int64_t>(*epoch));
      ++rep.claimed;
      progressed = true;
      // Injected worker faults.  crash-after-K arms only in incarnation 0
      // (and the supervisor strips the flag from restart command lines,
      // the way a transient OOM-kill fires once); crash-on-task re-arms on
      // every claim of the named task, so successive incarnations die on
      // it and the supervisor's two-strike poison detection trips.
      const bool crash_kth = incarnation == 0 &&
                             faults.worker_crash_after > 0 &&
                             rep.claimed >= faults.worker_crash_after;
      const bool crash_named = !faults.worker_crash_task.empty() &&
                               bench_names[i] == faults.worker_crash_task;
      if (crash_kth || crash_named) {
        span.arg("outcome", "crash-fault");
        rep.crashed = true;
        if (!fab.crash_via_abandon) {
#if defined(__unix__) || defined(__APPLE__)
          // The real crash window: lease live, result unpublished.
          ::kill(::getpid(), SIGKILL);
#endif
        }
        return rep;
      }
      if (worker_index == 0 && incarnation == 0 &&
          faults.lease_stall_ms > 0 && !stalled) {
        // Deterministic zombie: with a TTL shorter than the stall, the
        // lease expires mid-sleep, another worker reclaims at a higher
        // epoch, and the publish below must be fenced off.
        stalled = true;
        sleep_ms(faults.lease_stall_ms);
      }
      const TaskOutcome out = [&] {
        obs::TraceSpan task_span(task_site);
        task_span.arg("task", id);
        task_span.arg("worker", me);
        task_span.arg("epoch", static_cast<std::int64_t>(*epoch));
        return optimize_one_guarded(config, bench_names[i], opts, &run);
      }();
      if (!out.completed) {
        // Interrupted mid-task: hand the lease back so a resume reclaims
        // immediately instead of waiting out the TTL.
        leases.release(id, me, *epoch);
        rep.interrupted = true;
        span.arg("outcome", "interrupted");
        break;
      }
      // WAL ordering: optimize_one_guarded made the row durable in our
      // shard before this `done` record — publish-then-crash loses
      // nothing, crash-then-publish recomputes deterministically.
      if (leases.publish_done(id, me, *epoch)) {
        ++rep.published;
        span.arg("outcome", "published");
      } else {
        span.arg("outcome", "fenced");
      }
    }
    if (rep.interrupted || all_settled) break;
    if (!progressed) sleep_ms(fab.poll_ms);  // others hold the rest
  }
  rep.fenced = leases.stale_publishes();
  rep.reclaims = leases.reclaims();
  return rep;
}

#if defined(__unix__) || defined(__APPLE__)
namespace {

/// Re-exec this binary as worker slot k, incarnation i.  The fabric flags
/// are inserted right after argv[0] (global flags must precede the
/// subcommand); first-incarnation-only fault flags are stripped from
/// restart command lines.
pid_t spawn_worker_process(const std::vector<std::string>& base_argv, int k,
                           int incarnation) {
  std::vector<std::string> argv = base_argv;
  if (incarnation > 0) {
    const auto once_only = [](const std::string& a) {
      return a.rfind("--fault-worker-crash-after=", 0) == 0 ||
             a.rfind("--fault-lease-stall-ms=", 0) == 0;
    };
    argv.erase(std::remove_if(argv.begin() + 1, argv.end(), once_only),
               argv.end());
  }
  argv.insert(argv.begin() + 1,
              {"--fabric-worker=" + std::to_string(k),
               "--fabric-incarnation=" + std::to_string(incarnation)});
  // Hand the child our trace context (the open spawn/restart span) so its
  // spans land on the supervisor's trace.  Absent when tracing is off, so
  // command lines — and worker behavior — are byte-identical to pre-trace
  // runs.
  const obs::TraceContext ctx = obs::current_trace_context();
  if (ctx.valid())
    argv.insert(argv.begin() + 1,
                "--trace-ctx=" + obs::trace_context_string(ctx));
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& a : argv) cargv.push_back(a.data());
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  TACOS_CHECK(pid >= 0, "sweep fabric: fork failed");
  if (pid == 0) {
    ::execvp(cargv[0], cargv.data());
    std::perror("tacos fabric execvp");
    std::_Exit(127);
  }
  return pid;
}

}  // namespace
#endif

std::size_t merge_fabric_shards(RunJournal& journal,
                                const std::string& run_dir,
                                const std::vector<std::string>& bench_names) {
  LeaseTable leases(run_dir);
  leases.refresh();
  std::map<int, std::map<std::string, std::string>> shards;
  const auto shard_rows =
      [&](int widx) -> const std::map<std::string, std::string>& {
    const auto it = shards.find(widx);
    if (it != shards.end()) return it->second;
    std::vector<std::pair<std::string, std::string>> recs;
    RunJournal::read_records(run_dir + "/" + shard_journal_file(widx), &recs);
    std::map<std::string, std::string>& rows = shards[widx];
    for (auto& [id, payload] : recs) rows.emplace(id, std::move(payload));
    return rows;
  };
  std::size_t merged = 0;
  for (const std::string& name : bench_names) {
    const std::string id = "optimize:" + name;
    if (journal.has(id)) {
      ++merged;  // resumed row (or an idempotent re-merge)
      continue;
    }
    const LeaseState s = leases.state(id);
    if (s.phase == LeaseState::Phase::kPoisoned) {
      journal.append(id, poison_placeholder_payload(s.crashes));
      std::ostringstream q;
      q << "poison crashes=" << s.crashes;
      journal.append("quarantine:" + name, q.str());
      ++merged;
      continue;
    }
    TACOS_CHECK(s.phase == LeaseState::Phase::kDone,
                "sweep fabric merge: task " << id << " is not settled");
    const int widx = worker_index_of(s.done_worker);
    TACOS_CHECK(widx >= 0, "sweep fabric merge: unparsable winner '"
                               << s.done_worker << "' for " << id);
    const std::map<std::string, std::string>& rows = shard_rows(widx);
    const auto row = rows.find(id);
    TACOS_CHECK(row != rows.end(),
                "sweep fabric merge: " << s.done_worker << " committed " << id
                                       << " without a journaled shard row");
    // Refinement rows ride ahead of their optimize row (the order a local
    // run appends them in), so a merged canonical journal is byte-identical
    // to a single-process one.
    if (const auto rrow = rows.find("refine:" + name); rrow != rows.end())
      journal.append(rrow->first, rrow->second);
    journal.append(id, row->second);
    ++merged;
  }
  return merged;
}

FabricReport run_fabric_sweep(const EvalConfig& config,
                              const std::vector<std::string>& bench_names,
                              const OptimizerOptions& opts,
                              RunJournal& journal, const std::string& run_dir,
                              const FabricOptions& fab,
                              const std::vector<std::string>& worker_argv,
                              const CancelToken* cancel) {
  static obs::SpanSite spawn_site("fabric.worker.spawn", "fabric");
  static obs::SpanSite restart_site("fabric.worker.restart", "fabric");
  FabricReport out;
  // Bind the meta record first: the merged canonical journal must start
  // with the same bytes a single-process run writes.
  journal.bind_meta("optimize_greedy_batch",
                    batch_meta(config, bench_names, opts));
  LeaseTable leases(run_dir);
  leases.refresh();
  const std::size_t reclaim_base = leases.replay_reclaims();
  std::vector<std::string> ids;
  ids.reserve(bench_names.size());
  for (const std::string& n : bench_names) ids.push_back("optimize:" + n);
  // Seed: tasks already in the canonical journal (a single-process run
  // resumed with --workers) are marked done through the normal claim →
  // publish protocol, so workers skip them instead of recomputing.
  for (const std::string& id : ids) {
    if (!journal.has(id)) continue;
    const LeaseState s = leases.state(id);
    if (s.phase == LeaseState::Phase::kDone ||
        s.phase == LeaseState::Phase::kPoisoned)
      continue;
    if (const std::optional<std::uint64_t> e =
            leases.try_claim(id, "sup.0", fab.lease_ttl_ms))
      leases.publish_done(id, "sup.0", *e);
  }

  struct Slot {
    long pid = -1;
    int incarnation = 0;
    int restarts = 0;
    bool done = false;   ///< exited cleanly (0 or 75)
    bool dead = false;   ///< restart budget exhausted
    std::uint64_t respawn_at_ms = 0;
  };
  std::vector<Slot> slots(
      static_cast<std::size_t>(std::max(1, fab.workers)));

#if defined(__unix__) || defined(__APPLE__)
  for (std::size_t k = 0; k < slots.size(); ++k) {
    obs::TraceSpan span(spawn_site);
    span.arg("worker", fabric_worker_name(static_cast<int>(k), 0));
    slots[k].pid = spawn_worker_process(worker_argv, static_cast<int>(k), 0);
    span.arg("pid", static_cast<std::int64_t>(slots[k].pid));
  }
  for (;;) {
    if (cancel && cancel->cancelled()) {
      // Graceful shutdown: TERM the fleet, reap it, merge nothing — the
      // shards and lease log are the resume state.
      for (Slot& s : slots)
        if (s.pid > 0) ::kill(static_cast<pid_t>(s.pid), SIGTERM);
      for (Slot& s : slots) {
        if (s.pid <= 0) continue;
        int st = 0;
        ::waitpid(static_cast<pid_t>(s.pid), &st, 0);
        s.pid = -1;
      }
      out.interrupted = true;
      break;
    }
    leases.refresh();
    bool any_live = false;
    for (std::size_t k = 0; k < slots.size(); ++k) {
      Slot& s = slots[k];
      if (s.pid > 0) {
        int st = 0;
        const pid_t r = ::waitpid(static_cast<pid_t>(s.pid), &st, WNOHANG);
        if (r == 0) {
          any_live = true;
          continue;
        }
        s.pid = -1;
        if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
          s.done = true;
          continue;
        }
        if (WIFEXITED(st) && WEXITSTATUS(st) == exit_code::kInterrupted) {
          s.done = true;  // honored the shutdown contract; run is resumable
          out.interrupted = true;
          continue;
        }
        // Crash (signal or unexpected exit): release the dead
        // incarnation's leases now — reclaim must not wait out the TTL —
        // and count a strike toward poisoning.
        const std::string name =
            fabric_worker_name(static_cast<int>(k), s.incarnation);
        for (const std::string& id : ids) {
          const LeaseState held = leases.state(id);
          if (held.phase != LeaseState::Phase::kHeld || held.holder != name)
            continue;
          leases.record_crash(id);
          if (leases.state(id).crashes >= 2)
            leases.poison(id);  // two strikes: quarantine, stop the bleeding
          else
            leases.release(id, name, held.epoch);
        }
        if (s.restarts >= fab.max_restarts) {
          s.dead = true;
          std::cerr << "[fabric] worker w" << k << " exhausted its "
                    << fab.max_restarts << " restart(s); degrading\n";
          continue;
        }
        const BackoffPolicy restart_backoff{fab.backoff_base_ms,
                                            fab.backoff_max_ms,
                                            /*jitter_frac=*/0.0, /*seed=*/0};
        const std::uint64_t delay =
            restart_backoff.delay_ms(static_cast<unsigned>(s.restarts));
        ++s.restarts;
        ++s.incarnation;
        ++out.health.worker_restarts;
        s.respawn_at_ms = lease_now_ms() + delay;
        any_live = true;  // pending respawn
      } else if (!s.done && !s.dead) {
        if (lease_now_ms() >= s.respawn_at_ms) {
          obs::TraceSpan span(restart_site);
          span.arg("worker",
                   fabric_worker_name(static_cast<int>(k), s.incarnation));
          span.arg("restarts", static_cast<std::int64_t>(s.restarts));
          s.pid = spawn_worker_process(worker_argv, static_cast<int>(k),
                                       s.incarnation);
          span.arg("pid", static_cast<std::int64_t>(s.pid));
        }
        any_live = true;
      }
    }
    if (!any_live) {
      leases.refresh();
      if (leases.all_settled(ids)) break;
      if (out.interrupted) break;  // partial fleet honored a shutdown
      // Degraded mode: every slot is finished or exhausted but tasks
      // remain (the last live worker crashed holding them).  Run the
      // worker loop inline under a fresh slot id — worker faults off,
      // solver-level faults still ride inside `config`.
      std::cerr << "[fabric] no live workers; running remaining tasks"
                   " inline\n";
      const WorkerReport inline_rep =
          run_fabric_worker(config, bench_names, opts, run_dir, fab.workers,
                            0, fab, FaultPlan{}, cancel);
      if (inline_rep.interrupted) {
        out.interrupted = true;
        break;
      }
      leases.refresh();
      TACOS_CHECK(leases.all_settled(ids),
                  "sweep fabric stalled: tasks unsettled with no runnable"
                  " workers");
      break;
    }
    sleep_ms(fab.poll_ms);
  }
#else
  // No fork/exec on this platform: the fabric degrades to one inline
  // worker (still lease-coordinated, still byte-identical).
  const WorkerReport inline_rep = run_fabric_worker(
      config, bench_names, opts, run_dir, 0, 0, fab, FaultPlan{}, cancel);
  out.interrupted = inline_rep.interrupted;
#endif

  if (!out.interrupted) {
    out.merged = merge_fabric_shards(journal, run_dir, bench_names);
    leases.refresh();
    for (const std::string& id : ids)
      if (leases.state(id).phase == LeaseState::Phase::kPoisoned)
        ++out.health.poison_tasks;
    out.health.leases_reclaimed = leases.replay_reclaims() - reclaim_base;
  }
  return out;
}

}  // namespace tacos
