#include "core/leakage.hpp"

#include <cmath>
#include <limits>
#include <optional>

#include "obs/trace.hpp"

namespace tacos {

LeakageResult run_leakage_fixed_point(ThermalModel& model,
                                      const ChipletLayout& layout,
                                      const BenchmarkProfile& bench,
                                      const DvfsLevel& lvl,
                                      const std::vector<int>& active,
                                      const PowerModelParams& params,
                                      double tol_c, int max_iters,
                                      bool fault_nonconverge) {
  TACOS_CHECK(max_iters >= 1, "need at least one iteration");
  static obs::SpanSite leak_site("eval.leakage", "eval");
  static obs::SpanSite iter_site("leakage.iter", "eval");
  static obs::SpanSite pmap_site("power.build_map", "eval");
  obs::TraceSpan span(leak_site);

  const auto record = [](const LeakageResult& r) {
    if (!obs::metrics_enabled()) return;
    static obs::Histogram iters = obs::MetricsRegistry::global().histogram(
        "leakage.iterations", obs::pow2_edges(1, 64));
    iters.observe(static_cast<double>(r.iterations));
  };

  LeakageResult out;
  std::optional<std::vector<double>> temps;  // first pass at T_ref
  for (int it = 0; it < max_iters; ++it) {
    obs::TraceSpan iter_span(iter_site);
    iter_span.arg("iter", static_cast<std::int64_t>(it));
    const PowerMap pmap = [&] {
      obs::TraceSpan pmap_span(pmap_site);
      return build_power_map(layout, bench, lvl, active, temps, params);
    }();
    const ThermalResult res = model.solve(pmap);
    out.peak_c = res.peak_c;
    out.total_power_w = pmap.total();
    out.iterations = it + 1;
    // The leakage clamp (power_model.cpp) bounds the fixed point, so any
    // finite temperature is a valid answer — grossly infeasible designs
    // simply report a very high peak.  Non-finite values indicate a
    // genuine modeling bug.
    TACOS_CHECK(std::isfinite(res.peak_c),
                "leakage fixed point produced a non-finite temperature");
    // Convergence is judged on the *whole* tile-temperature field, not
    // just the peak: when the leakage clamp saturates the hottest tiles
    // their temperatures settle immediately while cooler secondary
    // hotspots are still drifting, and a peak-only test declares victory
    // with the off-peak field (and hence total power) still moving.
    std::vector<double> new_temps = model.tile_temperatures();
    double delta_c = std::numeric_limits<double>::infinity();
    if (temps) {
      delta_c = 0.0;
      for (std::size_t i = 0; i < new_temps.size(); ++i)
        delta_c = std::max(delta_c, std::abs(new_temps[i] - (*temps)[i]));
    }
    temps = std::move(new_temps);
    if (!fault_nonconverge && delta_c < tol_c) {
      out.converged = true;
      record(out);
      span.arg("iters", static_cast<std::int64_t>(out.iterations));
      return out;
    }
  }
  // Ran out of iterations: report the last state, flagged unconverged.
  // The power map the loop last solved with was built from the *previous*
  // iterate's temperatures; rebuild it from the final field so peak_c and
  // total_power_w describe the same state.
  out.converged = false;
  {
    obs::TraceSpan pmap_span(pmap_site);
    out.total_power_w =
        build_power_map(layout, bench, lvl, active, temps, params).total();
  }
  record(out);
  span.arg("iters", static_cast<std::int64_t>(out.iterations));
  span.arg("converged", "false");
  return out;
}

}  // namespace tacos
