#include "core/leakage.hpp"

#include <cmath>
#include <optional>

#include "obs/trace.hpp"

namespace tacos {

LeakageResult run_leakage_fixed_point(ThermalModel& model,
                                      const ChipletLayout& layout,
                                      const BenchmarkProfile& bench,
                                      const DvfsLevel& lvl,
                                      const std::vector<int>& active,
                                      const PowerModelParams& params,
                                      double tol_c, int max_iters,
                                      bool fault_nonconverge) {
  TACOS_CHECK(max_iters >= 1, "need at least one iteration");
  static obs::SpanSite leak_site("eval.leakage", "eval");
  static obs::SpanSite iter_site("leakage.iter", "eval");
  static obs::SpanSite pmap_site("power.build_map", "eval");
  obs::TraceSpan span(leak_site);

  const auto record = [](const LeakageResult& r) {
    if (!obs::metrics_enabled()) return;
    static obs::Histogram iters = obs::MetricsRegistry::global().histogram(
        "leakage.iterations", obs::pow2_edges(1, 64));
    iters.observe(static_cast<double>(r.iterations));
  };

  LeakageResult out;
  std::optional<std::vector<double>> temps;  // first pass at T_ref
  double prev_peak = -1e300;
  for (int it = 0; it < max_iters; ++it) {
    obs::TraceSpan iter_span(iter_site);
    iter_span.arg("iter", static_cast<std::int64_t>(it));
    const PowerMap pmap = [&] {
      obs::TraceSpan pmap_span(pmap_site);
      return build_power_map(layout, bench, lvl, active, temps, params);
    }();
    const ThermalResult res = model.solve(pmap);
    out.peak_c = res.peak_c;
    out.total_power_w = pmap.total();
    out.iterations = it + 1;
    // The leakage clamp (power_model.cpp) bounds the fixed point, so any
    // finite temperature is a valid answer — grossly infeasible designs
    // simply report a very high peak.  Non-finite values indicate a
    // genuine modeling bug.
    TACOS_CHECK(std::isfinite(res.peak_c),
                "leakage fixed point produced a non-finite temperature");
    if (!fault_nonconverge && std::abs(res.peak_c - prev_peak) < tol_c) {
      out.converged = true;
      record(out);
      span.arg("iters", static_cast<std::int64_t>(out.iterations));
      return out;
    }
    prev_peak = res.peak_c;
    temps = model.tile_temperatures();
  }
  // Ran out of iterations: report the last state, flagged unconverged.
  out.converged = false;
  record(out);
  span.arg("iters", static_cast<std::int64_t>(out.iterations));
  span.arg("converged", "false");
  return out;
}

}  // namespace tacos
