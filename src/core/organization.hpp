#pragma once
/// \file organization.hpp
/// \brief A chiplet organization: the decision variables of Eq. (5).
///
/// An Organization bundles everything the optimizer chooses: chiplet count
/// n ∈ {1, 4, 16} (1 = the monolithic 2D baseline), the chiplet spacings
/// (s1, s2, s3) of Fig. 4(a), the DVFS level index, and the active core
/// count p.  The physical layout and the interposer size follow from
/// Eq. (9).

#include "floorplan/layout.hpp"
#include "power/dvfs.hpp"

namespace tacos {

/// Decision variables of the optimization problem (§III-D).
struct Organization {
  int n_chiplets = 16;       ///< 1 (2D baseline), 4, or 16
  Spacing spacing;           ///< Fig. 4(a) spacings; ignored for n = 1
  std::size_t dvfs_idx = 0;  ///< index into kDvfsLevels
  int active_cores = 256;    ///< p ∈ kActiveCoreChoices

  bool operator==(const Organization&) const = default;
};

/// Build the physical layout for `org` (throws on invalid spacings).
inline ChipletLayout layout_for(const Organization& org,
                                const SystemSpec& spec = {}) {
  switch (org.n_chiplets) {
    case 1: return make_single_chip_layout(spec);
    case 4: return make_org4_layout(org.spacing.s3, spec);
    case 16: return make_org16_layout(org.spacing, spec);
    default:
      TACOS_CHECK(false, "unsupported chiplet count " << org.n_chiplets
                                                      << " (use 1, 4 or 16)");
  }
  return make_single_chip_layout(spec);  // unreachable
}

/// Interposer edge implied by Eq. (9) (chip edge for the 2D baseline).
inline double interposer_edge_of(const Organization& org,
                                 const SystemSpec& spec = {}) {
  if (org.n_chiplets == 1) return spec.chip_edge_mm();
  const int r = org.n_chiplets == 4 ? 2 : 4;
  return interposer_edge_for(r, org.spacing, spec);
}

/// DVFS level of this organization.
inline const DvfsLevel& level_of(const Organization& org) {
  return dvfs_level(org.dvfs_idx);
}

}  // namespace tacos
