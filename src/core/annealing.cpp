#include "core/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace tacos {

namespace {

/// Clamp an organization's spacings to the valid manifold: non-negative,
/// Eq. (10), Eq. (7) interposer bound.
bool is_valid(const Organization& org, const SystemSpec& spec) {
  if (org.n_chiplets == 4) {
    if (org.spacing.s1 != 0 || org.spacing.s2 != 0) return false;
    if (org.spacing.s3 < 0) return false;
  } else {
    const Spacing& s = org.spacing;
    if (s.s1 < 0 || s.s2 < 0 || s.s3 < 0) return false;
    if (2 * s.s1 + s.s3 - 2 * s.s2 < -1e-9) return false;
  }
  return interposer_edge_of(org, spec) <= spec.max_interposer_mm + 1e-9;
}

}  // namespace

OptResult optimize_annealing(Evaluator& eval, const BenchmarkProfile& bench,
                             const AnnealOptions& opts) {
  TACOS_CHECK(opts.iterations >= 1, "need at least one annealing move");
  TACOS_CHECK(opts.t_start >= opts.t_end && opts.t_end > 0,
              "bad annealing schedule");
  const SystemSpec& spec = eval.config().spec;
  const std::size_t solves_before = eval.solve_count();
  Rng rng(opts.seed);

  const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
  const double ips_2d =
      base.feasible
          ? base.ips
          : eval.ips(Organization{1, {}, kDvfsLevelCount - 1, 32}, bench);

  const auto energy = [&](const Organization& org, double peak) {
    const double obj = opts.alpha * ips_2d / eval.ips(org, bench) +
                       opts.beta * eval.cost(org) / eval.cost_2d();
    return obj +
           opts.penalty_per_c * std::max(0.0, peak - opts.threshold_c);
  };

  // Start from the packed 16-chiplet system at a mid DVFS level.
  Organization cur{opts.chiplet_counts.back(), {0, 0, 0}, 2, 128};
  double cur_peak = eval.thermal_eval(cur, bench).peak_c;
  double cur_e = energy(cur, cur_peak);

  OptResult best;
  const auto consider_best = [&](const Organization& org, double peak) {
    if (peak > opts.threshold_c) return;
    const double obj = opts.alpha * ips_2d / eval.ips(org, bench) +
                       opts.beta * eval.cost(org) / eval.cost_2d();
    if (!best.found || obj < best.objective) {
      best.found = true;
      best.org = org;
      best.objective = obj;
      best.ips = eval.ips(org, bench);
      best.cost = eval.cost(org);
      best.peak_c = peak;
    }
  };
  consider_best(cur, cur_peak);

  for (int it = 0; it < opts.iterations; ++it) {
    const double frac = static_cast<double>(it) / opts.iterations;
    const double temp =
        opts.t_start * std::pow(opts.t_end / opts.t_start, frac);

    // Propose a random neighbouring organization.
    Organization nb = cur;
    const int kind = rng.uniform_int(0, 5);
    const double dir = rng.uniform_int(0, 1) == 0 ? -1.0 : 1.0;
    switch (kind) {
      case 0:
        if (nb.n_chiplets == 16) nb.spacing.s1 += dir * opts.step_mm;
        break;
      case 1:
        if (nb.n_chiplets == 16) nb.spacing.s2 += dir * opts.step_mm;
        break;
      case 2:
        nb.spacing.s3 += dir * opts.step_mm;
        break;
      case 3: {
        const long f = static_cast<long>(nb.dvfs_idx) + (dir > 0 ? 1 : -1);
        if (f < 0 || f >= static_cast<long>(kDvfsLevelCount)) continue;
        nb.dvfs_idx = static_cast<std::size_t>(f);
        break;
      }
      case 4: {
        const int p = nb.active_cores + (dir > 0 ? 32 : -32);
        if (p < kActiveCoreChoices.front() || p > kActiveCoreChoices.back())
          continue;
        nb.active_cores = p;
        break;
      }
      case 5: {
        // Toggle chiplet count, projecting the spacing onto the new
        // manifold (4-chiplet layouts only use s3).
        nb.n_chiplets = nb.n_chiplets == 4 ? 16 : 4;
        if (nb.n_chiplets == 4) {
          nb.spacing = Spacing{0, 0, 2 * cur.spacing.s1 + cur.spacing.s3};
        } else {
          nb.spacing = Spacing{0, cur.spacing.s3 / 2, cur.spacing.s3};
          nb.spacing.s2 = std::floor(nb.spacing.s2 / opts.step_mm) *
                          opts.step_mm;
        }
        break;
      }
    }
    if (!is_valid(nb, spec)) continue;

    const double nb_peak = eval.thermal_eval(nb, bench).peak_c;
    const double nb_e = energy(nb, nb_peak);
    consider_best(nb, nb_peak);
    const double delta = nb_e - cur_e;
    if (delta <= 0 ||
        rng.uniform_real(0.0, 1.0) < std::exp(-delta / temp)) {
      cur = nb;
      cur_peak = nb_peak;
      cur_e = nb_e;
    }
  }

  best.thermal_solves = eval.solve_count() - solves_before;
  return best;
}

}  // namespace tacos
