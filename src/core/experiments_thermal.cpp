#include <string>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "core/durable.hpp"
#include "core/experiments.hpp"
#include "core/leakage.hpp"
#include "materials/stack.hpp"

namespace tacos {

namespace {

/// A monolithic chip of arbitrary edge (for Fig. 3(b)'s "new 2D single
/// chip" series): reuse the tile machinery with a scaled tile edge.
ChipletLayout grown_single_chip(double edge_mm) {
  SystemSpec spec;
  spec.tile_edge_mm = edge_mm / spec.tiles_per_side;
  spec.max_interposer_mm = std::max(spec.max_interposer_mm, edge_mm);
  return make_single_chip_layout(spec);
}

PowerMap uniform_power(const ChipletLayout& l, double total_w) {
  PowerMap p;
  for (const auto& c : l.chiplets())
    p.add(c.rect, total_w * c.rect.area() / l.total_chiplet_area());
  return p;
}

// GuardedRows / quarantine_cell / durable_rows_map come from
// core/durable.hpp: the catch sits inside each task body, so surviving
// rows stay deterministic at any thread count, and the durability layer
// (journal replay, deadlines, interrupts) wraps the body.

}  // namespace

TextTable fig3b_thermal_table(const ExperimentOptions& opts,
                              RunHealth* health) {
  const SystemSpec spec;
  const double chip_area = spec.chip_edge_mm() * spec.chip_edge_mm();
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = opts.grid;

  TextTable t({"series", "interposer_mm", "power_density_w_mm2", "peak_c"});
  const std::vector<double> densities = {0.5, 1.0, 1.5, 2.0};

  // One parallel task per series (r = 2..10 chiplet grids, plus the grown
  // single chip as r = 0); each task owns its models, and the join emits
  // rows in series order, so the table is identical at any thread count.
  std::vector<int> series;
  for (int r = 2; r <= 10; ++r) series.push_back(r);
  series.push_back(0);  // "new-2D"

  const auto series_label = [](int r) {
    return r == 0 ? std::string("new-2D")
                  : std::to_string(r) + "x" + std::to_string(r);
  };
  const std::vector<GuardedRows> blocks = durable_rows_map(
      series, opts.run, "fig3b", opts.fingerprint(),
      [&](int r) { return "fig3b:" + series_label(r); },
      [&](int r, const CancelToken* cancel) {
        GuardedRows out;
        SolveLedger led;  // one fault/health clock per series task
        const std::string label = series_label(r);
        ThermalConfig task_cfg = cfg;
        task_cfg.solve.cancel = cancel;
        try {
          for (double w = 20.0; w <= spec.max_interposer_mm + 1e-9;
               w += 1.0) {
            const ChipletLayout l =
                r == 0 ? grown_single_chip(w)
                       : make_uniform_layout_for_interposer(r, w, spec);
            ThermalModel model(l, r == 0 ? make_2d_stack() : make_25d_stack(),
                               task_cfg);
            model.set_ledger(&led);
            for (double pd : densities) {
              const ThermalResult res =
                  model.solve(uniform_power(l, pd * chip_area));
              out.rows.push_back({label, TextTable::fmt(w, 0),
                                  TextTable::fmt(pd, 1),
                                  TextTable::fmt(res.peak_c, 2)});
            }
          }
        } catch (const Error& e) {
          out.rows = {{label, "-", "-", quarantine_cell(e)}};
          out.health.quarantined = 1;
        }
        out.health += led.health;
        return out;
      },
      [&](int r, const CancelledError& c) {
        GuardedRows g;
        g.rows = {{series_label(r), "-", "-", c.what()}};
        return g;
      });
  RunHealth h = merge_guarded(t, blocks);
  if (health) *health = h;
  return t;
}

TextTable fig5_spacing_table(const ExperimentOptions& opts,
                             RunHealth* health) {
  const SystemSpec spec;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = opts.grid;
  const PowerModelParams pm;
  const DvfsLevel& nominal = kDvfsLevels[0];
  std::vector<int> all_cores(static_cast<std::size_t>(spec.core_count()));
  for (int i = 0; i < spec.core_count(); ++i)
    all_cores[static_cast<std::size_t>(i)] = i;

  TextTable t({"benchmark", "chiplets", "spacing_mm", "interposer_mm",
               "power_w", "peak_c"});
  // One parallel task per benchmark; each task owns its thermal models and
  // returns its rows, appended at the join in benchmark order.
  std::vector<std::string> names;
  for (const BenchmarkProfile& bench : benchmarks())
    names.emplace_back(bench.name);
  const std::vector<GuardedRows> blocks = durable_rows_map(
      names, opts.run, "fig5", opts.fingerprint(),
      [](const std::string& name) { return "fig5:" + name; },
      [&](const std::string& name, const CancelToken* cancel) {
        GuardedRows out;
        SolveLedger led;  // one fault/health clock per benchmark task
        ThermalConfig task_cfg = cfg;
        task_cfg.solve.cancel = cancel;
        try {
          const BenchmarkProfile& bench = benchmark_by_name(name);
          const auto note_leak = [&led](const LeakageResult& lr) {
            if (!lr.converged) ++led.health.leak_nonconverged;
          };
          // 0 mm: the single-chip system.
          {
            const ChipletLayout chip = make_single_chip_layout(spec);
            ThermalModel model(chip, make_2d_stack(), task_cfg);
            model.set_ledger(&led);
            const LeakageResult lr = run_leakage_fixed_point(
                model, chip, bench, nominal, all_cores, pm);
            note_leak(lr);
            out.rows.push_back({name, "1", "0.0",
                                TextTable::fmt(chip.interposer_edge(), 1),
                                TextTable::fmt(lr.total_power_w, 1),
                                TextTable::fmt(lr.peak_c, 2)});
          }
          // 2.5D: r x r chiplets, uniform spacing 0.5..10 mm within Eq. (7).
          for (int r : {2, 4, 8, 16}) {
            const double g_max = max_uniform_spacing(r, spec);
            for (double g = 0.5; g <= 10.0 + 1e-9; g += 0.5) {
              if (g > g_max + 1e-9) break;
              const ChipletLayout l = make_uniform_layout(r, g, spec);
              ThermalModel model(l, make_25d_stack(), task_cfg);
              model.set_ledger(&led);
              const LeakageResult lr = run_leakage_fixed_point(
                  model, l, bench, nominal, all_cores, pm);
              note_leak(lr);
              out.rows.push_back(
                  {name, std::to_string(r * r), TextTable::fmt(g, 1),
                   TextTable::fmt(l.interposer_edge(), 1),
                   TextTable::fmt(lr.total_power_w, 1),
                   TextTable::fmt(lr.peak_c, 2)});
            }
          }
        } catch (const Error& e) {
          out.rows = {{name, "-", "-", "-", "-", quarantine_cell(e)}};
          out.health.quarantined = 1;
        }
        out.health += led.health;
        return out;
      },
      [](const std::string& name, const CancelledError& c) {
        GuardedRows g;
        g.rows = {{name, "-", "-", "-", "-", c.what()}};
        return g;
      });
  RunHealth h = merge_guarded(t, blocks);
  if (health) *health = h;
  return t;
}

TextTable network_power_table(const ExperimentOptions&) {
  const SystemSpec spec;
  const MeshParams mesh;
  TextTable t({"layout", "onchip_links", "interposer_links",
               "avg_ilink_mm", "driver_size_15mm", "delay_ps_15mm",
               "power_w_peak", "power_w_avg_bench"});

  // Average network activity across the benchmark set.
  double avg_act = 0.0;
  for (const auto& b : benchmarks()) avg_act += b.net_activity;
  avg_act /= static_cast<double>(benchmarks().size());
  BenchmarkProfile peak_traffic = benchmark_by_name("shock");
  peak_traffic.net_activity = 1.0;
  BenchmarkProfile avg_traffic = peak_traffic;
  avg_traffic.net_activity = avg_act;

  const LinkDesign d15 = design_link(15.0, kNominalFreqMhz, mesh.link);

  const auto add = [&](const std::string& name, const ChipletLayout& l) {
    const MeshStructure s = analyze_mesh(l, mesh);
    t.add_row({name, std::to_string(s.onchip_links),
               std::to_string(s.interposer_links),
               TextTable::fmt(s.avg_interposer_link_mm, 2),
               std::to_string(d15.driver_size),
               TextTable::fmt(d15.delay_ps, 0),
               TextTable::fmt(network_power_w(l, peak_traffic, 1000.0, 0.9,
                                              mesh),
                              2),
               TextTable::fmt(network_power_w(l, avg_traffic, 1000.0, 0.9,
                                              mesh),
                              2)});
  };
  add("single-chip", make_single_chip_layout(spec));
  add("4-chiplet g=2mm", make_uniform_layout(2, 2.0, spec));
  add("4-chiplet g=8mm", make_uniform_layout(2, 8.0, spec));
  add("16-chiplet g=2mm", make_uniform_layout(4, 2.0, spec));
  add("16-chiplet g=10mm", make_uniform_layout(4, 10.0, spec));
  return t;
}

}  // namespace tacos
