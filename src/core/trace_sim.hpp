#pragma once
/// \file trace_sim.hpp
/// \brief Transient simulation of a phase trace (perf/phases.hpp).
///
/// Drives the backward-Euler transient engine with a time-varying
/// activity trace: each phase scales the dynamic power, leakage follows
/// the evolving per-tile temperatures.  Answers the question the paper's
/// steady-state methodology leaves open: is sizing the organization for
/// the all-phases-active steady state conservative for real, bursty
/// execution?  (It is: the trace peak is bounded by the steady-state peak
/// at full activity, and the margin quantifies the headroom phases leave
/// on the table.)

#include "perf/phases.hpp"
#include "thermal/grid_model.hpp"
#include "power/power_model.hpp"

namespace tacos {

/// Statistics of one trace simulation.
struct TraceStats {
  double max_peak_c = 0.0;          ///< hottest instant over the trace
  double mean_peak_c = 0.0;         ///< time-weighted mean of the peak
  double time_above_threshold_s = 0.0;
  double final_peak_c = 0.0;
  int steps = 0;
};

/// Run `trace` on `model` (starting from its current thermal state) for
/// `bench` at DVFS level `lvl` with the given active tiles.  Each phase is
/// one backward-Euler step of its duration.
TraceStats simulate_trace(ThermalModel& model, const ChipletLayout& layout,
                          const BenchmarkProfile& bench, const DvfsLevel& lvl,
                          const std::vector<int>& active,
                          const PowerModelParams& params,
                          const std::vector<Phase>& trace,
                          double threshold_c = 85.0);

}  // namespace tacos
