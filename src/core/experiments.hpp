#pragma once
/// \file experiments.hpp
/// \brief Reproduction runners for every table and figure in the paper's
///        evaluation (see DESIGN.md §3 for the experiment index).
///
/// Each function regenerates one artifact and returns a TextTable whose
/// rows are the series the paper plots; the bench binaries print both the
/// aligned table and CSV.  All runners are deterministic (seeded RNG).

#include <sstream>
#include <vector>

#include "common/run_health.hpp"
#include "common/table.hpp"
#include "core/evaluator.hpp"
#include "core/optimizer.hpp"

namespace tacos {

/// Common knobs for the experiment runners.  The defaults trade a little
/// resolution for run time on a small machine; the paper-scale settings
/// (64×64 grid, 0.5 mm sweeps) are a constructor call away.
struct ExperimentOptions {
  std::size_t grid = 32;       ///< thermal grid resolution per layer
  double w_step_mm = 1.0;      ///< interposer sweep granularity (Figs. 6/7)
  double opt_step_mm = 0.5;    ///< spacing granularity for the optimizer
  int starts = 10;             ///< greedy starting points (paper uses 10)
  double threshold_c = 85.0;   ///< temperature threshold (Eq. 6)
  std::uint64_t seed = 2018;
  /// Steady-state PCG preconditioner (`--precond={auto,jacobi,mg}`): auto
  /// picks multigrid above ThermalModel's size threshold.
  PrecondKind precond = PrecondKind::kAuto;
  /// Continuous adjoint-gradient spacing refinement of each 16-chiplet
  /// grid winner (`--refine`, `--refine-tol-mm=T`); off by default so the
  /// recorded paper tables keep their grid-resolution numbers.
  bool refine = false;
  double refine_tol_mm = 1e-3;
  /// Durable-execution control (write-ahead journal, cancel token, per-task
  /// deadline); all off by default.  See docs/ROBUSTNESS.md.
  RunControl run;

  /// Evaluator configuration implied by these options.  `cancel`, when
  /// given, is polled by the solvers (per-task deadline / interrupt hook).
  EvalConfig eval_config(const CancelToken* cancel = nullptr) const {
    EvalConfig c;
    c.thermal.grid_nx = c.thermal.grid_ny = grid;
    c.thermal.solve.cancel = cancel;
    c.thermal.solve.precond = precond;
    return c;
  }
  /// Optimizer options implied by these options.
  OptimizerOptions optimizer_options(double alpha, double beta,
                                     const CancelToken* cancel = nullptr) const {
    OptimizerOptions o;
    o.alpha = alpha;
    o.beta = beta;
    o.threshold_c = threshold_c;
    o.step_mm = opt_step_mm;
    o.starts = starts;
    o.seed = seed;
    o.refine = refine;
    o.refine_tol_mm = refine_tol_mm;
    o.cancel = cancel;
    return o;
  }
  /// Result-shaping knobs, rendered for `RunJournal::bind_meta`: resuming
  /// a run directory with any of these changed is an error.
  std::string fingerprint() const {
    std::ostringstream os;
    os << "grid=" << grid << " w_step=" << w_step_mm
       << " opt_step=" << opt_step_mm << " starts=" << starts
       << " threshold=" << threshold_c << " seed=" << seed
       << " precond=" << precond_name(precond);
    // Appended only when refinement is on: journals recorded before the
    // refinement stage existed keep their exact fingerprint.
    if (refine) os << " refine=1 refine_tol=" << refine_tol_mm;
    return os.str();
  }
};

// --- E1 / Fig. 3(a): manufacturing cost vs interposer size. -------------
/// Normalized 2.5D cost for 4/16 chiplets across interposer sizes
/// 20..50 mm and defect densities {0.20, 0.25, 0.30}/cm².
TextTable fig3a_cost_table(double w_step_mm = 1.0);

// --- E3: in-text cost-model claims (§III-B/C). ---------------------------
/// The four quantitative cost statements in the text, model vs paper.
TextTable cost_claims_table();

// Fault tolerance: every runner below isolates failures per parallel task
// — a task whose evaluation fails past the thermal recovery ladder
// contributes a single "quarantined: <diagnostic>" row instead of
// aborting the table, and the surviving rows are identical at any thread
// count.  When `health` is non-null it receives the run's merged
// RunHealth (recoveries, degradations, quarantines) for the caller to
// print alongside the results.  See docs/ROBUSTNESS.md.

// --- E2 / Fig. 3(b): synthetic thermal design-space exploration. ---------
/// Peak temperature for r×r chiplets (r = 2..10) and a grown single chip
/// across interposer sizes and power densities 0.5..2.0 W/mm².
TextTable fig3b_thermal_table(const ExperimentOptions& opts = {},
                              RunHealth* health = nullptr);

// --- E4 / Fig. 5: per-benchmark uniform spacing sweep. --------------------
/// Peak temperature with all 256 cores at 1 GHz, for 4/16/64/256 chiplets
/// and uniform spacings 0.5..10 mm (0 mm = single chip), all benchmarks.
TextTable fig5_spacing_table(const ExperimentOptions& opts = {},
                             RunHealth* health = nullptr);

// --- E11: network power (§III-A). ----------------------------------------
/// Mesh structure and power for the single chip and representative 2.5D
/// layouts, plus the Fig. 2 link designs (driver sizing and energy).
TextTable network_power_table(const ExperimentOptions& opts = {});

// --- E5 / Fig. 6: max IPS and cost vs interposer size. --------------------
/// For each benchmark in `bench_names` and n ∈ {4, 16}: normalized max IPS
/// under the threshold and normalized cost, per interposer size.
TextTable fig6_perf_cost_table(const ExperimentOptions& opts,
                               const std::vector<std::string>& bench_names,
                               RunHealth* health = nullptr);

// --- E6 / Fig. 7: objective value vs interposer size. ---------------------
/// Minimum Eq. (5) value for (alpha, beta) ∈ {(0,1), (1,0), (0.5,0.5)}.
TextTable fig7_objective_table(const ExperimentOptions& opts,
                               const std::vector<std::string>& bench_names,
                               RunHealth* health = nullptr);

// --- E7 / Fig. 8: chosen organizations (alpha = 1, beta = 0). -------------
/// Optimal organization per benchmark: 2D baseline vs 2.5D (n, W,
/// spacings, f, p), improvement and cost ratio.
TextTable fig8_chosen_orgs_table(const ExperimentOptions& opts = {},
                                 RunHealth* health = nullptr);

// --- E8: headline improvement summary. ------------------------------------
/// Per-benchmark performance improvement at iso-cost for temperature
/// thresholds {75, 85, 95, 105} °C, with the average row the conclusion
/// quotes (41/41/27/16 %).
TextTable improvement_summary_table(const ExperimentOptions& opts = {},
                                    RunHealth* health = nullptr);

/// Iso-performance cost reduction at the default threshold (the paper's
/// "36% cheaper without performance loss").
TextTable iso_performance_cost_table(const ExperimentOptions& opts = {},
                                     RunHealth* health = nullptr);

// --- E9: greedy vs exhaustive validation (§III-D). -------------------------
/// Agreement of the multi-start greedy with exhaustive search and the
/// thermal-simulation savings, across benchmarks.
TextTable greedy_validation_table(const ExperimentOptions& opts = {},
                                  RunHealth* health = nullptr);

}  // namespace tacos
