#pragma once
/// \file annealing.hpp
/// \brief Simulated-annealing organization search — an ablation baseline
///        for the paper's multi-start greedy (§III-D design choice).
///
/// The paper chose a sorted-combination greedy because the objective
/// (Eq. 5) is known exactly for every combination without simulation —
/// only the temperature constraint needs thermal solves.  A natural
/// alternative is to anneal over the *joint* space (n, s1, s2, s3, f, p)
/// with a penalized objective
///
///   E(org) = alpha * IPS_2D/IPS + beta * C/C_2D
///          + penalty * max(0, T_peak - T_threshold)
///
/// which spends a thermal solve on every move.  `bench/ext_annealing`
/// compares both search strategies at equal simulation budgets,
/// reproducing the rationale for the paper's choice.

#include "core/evaluator.hpp"
#include "core/optimizer.hpp"

namespace tacos {

/// Simulated-annealing search options.
struct AnnealOptions {
  double alpha = 1.0;
  double beta = 0.0;
  double threshold_c = 85.0;
  double step_mm = 0.5;        ///< spacing move granularity
  int iterations = 400;        ///< annealing moves (≈ thermal solves)
  double t_start = 0.5;        ///< initial Metropolis temperature
  double t_end = 0.005;        ///< final Metropolis temperature
  double penalty_per_c = 0.05; ///< objective penalty per °C of violation
  std::uint64_t seed = 2018;
  std::vector<int> chiplet_counts = {4, 16};
};

/// Anneal over the joint organization space; returns the best *feasible*
/// organization seen (found = false if every visited state violated the
/// threshold).  Uses the same Evaluator (and caches) as the greedy.
OptResult optimize_annealing(Evaluator& eval, const BenchmarkProfile& bench,
                             const AnnealOptions& opts);

}  // namespace tacos
