#pragma once
/// \file evaluator.hpp
/// \brief The closed evaluation loop of Fig. 4(b): chiplet organizer →
///        floorplan generator → power model → thermal simulation, with the
///        temperature-dependent leakage fixed point of §IV.
///
/// The Evaluator is the single entry point the optimizers use.  It owns
/// three caches that make the optimization tractable on one machine:
///
///   1. a layout-keyed LRU of assembled ThermalModel instances (matrix
///      assembly is geometry-only and reusable across power maps);
///   2. an exact evaluation memo keyed by (layout, benchmark, f, p);
///   3. a monotone "thermal frontier" per (layout, p): peak temperature is
///      monotone in the injected reference power for a fixed layout and
///      active-core pattern, so previously solved points bound the
///      feasibility of new (benchmark, f) queries without running the
///      solver.  A safety margin avoids wrong conclusions near the
///      threshold (power-map *shape* varies slightly between benchmarks
///      because of the network-power share).
///
/// Statistics of thermal-solver invocations are tracked to reproduce the
/// paper's greedy-vs-exhaustive cost comparison (§III-D: 400× fewer
/// simulations).

#include <list>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "alloc/policy.hpp"
#include "common/run_health.hpp"
#include "core/organization.hpp"
#include "cost/cost_model.hpp"
#include "materials/stack.hpp"
#include "perf/ips_model.hpp"
#include "power/power_model.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {

/// Evaluator configuration (every model parameter in one place).
struct EvalConfig {
  SystemSpec spec;
  ThermalConfig thermal;
  CostParams cost;
  PowerModelParams power;
  AllocPolicy policy = AllocPolicy::kMinTemp;
  double leak_tol_c = 0.05;  ///< leakage fixed-point convergence (°C)
  int max_leak_iters = 12;
  /// Frontier safety margin (°C): conclusions from the monotone cache are
  /// only drawn when the bounding peak is at least this far from the
  /// threshold; otherwise an exact simulation is run.
  double frontier_margin_c = 1.0;
  std::size_t model_cache_capacity = 48;
};

/// Result of a thermal evaluation.  `leak_converged == false` flags a
/// leakage fixed point that ran out of iterations: the fields are the last
/// iterate, honest but not fully settled (also counted in RunHealth).
struct ThermalEval {
  double peak_c = 0.0;         ///< converged peak silicon temperature
  double total_power_w = 0.0;  ///< converged total power (incl. leakage, net)
  int leak_iterations = 0;
  std::size_t solves = 0;      ///< linear solves used
  bool leak_converged = true;  ///< leakage fixed point met its tolerance
};

/// The 2D baseline operating point (best (f, p) under a threshold).
/// When no (f, p) pair meets the threshold, `feasible` is false and the
/// remaining fields are meaningless placeholders (zeros) — callers must
/// check `feasible` before using them (baseline_2d() documents this).
struct BaselinePoint {
  std::size_t dvfs_idx = 0;
  int active_cores = 0;
  double ips = 0.0;
  double peak_c = 0.0;
  bool feasible = false;  ///< false if no (f, p) meets the threshold
};

/// Mergeable evaluation counters.  Parallel drivers give every task its
/// own Evaluator shard (the caches are not thread-safe) and combine the
/// shards' counters at join time with operator+=.
struct EvalStats {
  std::size_t solves = 0;  ///< linear-solver invocations
  std::size_t evals = 0;   ///< full organization evaluations simulated
  RunHealth health;        ///< recoveries / degradations / quarantines
  EvalStats& operator+=(const EvalStats& o) {
    solves += o.solves;
    evals += o.evals;
    health += o.health;
    return *this;
  }
};

class Evaluator {
 public:
  explicit Evaluator(EvalConfig config);

  const EvalConfig& config() const { return config_; }

  /// Full thermal evaluation (leakage fixed point); memoized.
  const ThermalEval& thermal_eval(const Organization& org,
                                  const BenchmarkProfile& bench);

  /// Peak-temperature feasibility against `threshold_c`, using the
  /// monotone frontier to avoid simulations where possible.
  bool feasible(const Organization& org, const BenchmarkProfile& bench,
                double threshold_c);

  /// System performance of `org` for `bench` (no thermal check).
  double ips(const Organization& org, const BenchmarkProfile& bench) const;

  /// Manufacturing cost of `org` ($; Eq. (4), or Eq. (3) for n = 1).
  double cost(const Organization& org) const;

  /// Cost of the 2D baseline chip ($).
  double cost_2d() const { return cost_2d_; }

  /// Best 2D operating point under `threshold_c` (memoized per threshold).
  /// If no (f, p) pair is thermally feasible, the returned point has
  /// `feasible == false` (explicitly marked, and memoized as such) and its
  /// other fields must not be interpreted.
  const BaselinePoint& baseline_2d(const BenchmarkProfile& bench,
                                   double threshold_c);

  /// Thermal-solver invocation counter (for the E9 validation experiment).
  std::size_t solve_count() const { return solve_count_; }
  /// Number of full organization evaluations actually simulated.
  std::size_t eval_count() const { return eval_count_; }
  /// Health counters aggregated across every model this shard built
  /// (recovery-ladder escalations, leakage non-convergence, failures).
  const RunHealth& health() const { return ledger_.health; }
  /// Counters as a mergeable snapshot (parallel shard join).
  EvalStats stats() const {
    return EvalStats{solve_count_, eval_count_, ledger_.health};
  }
  void reset_stats() {
    solve_count_ = 0;
    eval_count_ = 0;
    ledger_.health = RunHealth{};
  }

 private:
  /// Quantized layout identity (0.01mm resolution on spacings).
  struct LayoutKey {
    int n;
    long s1, s2, s3;
    auto operator<=>(const LayoutKey&) const = default;
    static LayoutKey of(const Organization& org);
  };
  struct EvalKey {
    LayoutKey layout;
    int bench_idx;
    std::size_t dvfs_idx;
    int p;
    auto operator<=>(const EvalKey&) const = default;
  };
  struct FrontierKey {
    LayoutKey layout;
    int p;
    auto operator<=>(const FrontierKey&) const = default;
  };

  struct ModelEntry {
    std::unique_ptr<ChipletLayout> layout;
    std::unique_ptr<ThermalModel> model;
  };

  /// Fetch (or build) the model for `org`'s layout.  Returns a shared
  /// handle: callers hold it across the whole solve, so an LRU eviction —
  /// including the degenerate capacity-0 case, where the entry is evicted
  /// on the very call that built it — can never destroy a model (and its
  /// cached multigrid hierarchy) out from under an in-flight evaluation.
  std::shared_ptr<ModelEntry> model_for(const Organization& org);
  int bench_index(const BenchmarkProfile& bench) const;
  /// Total power at the leakage reference temperature (frontier abscissa).
  double reference_power(const Organization& org,
                         const BenchmarkProfile& bench) const;

  EvalConfig config_;
  double cost_2d_ = 0.0;

  // LRU model cache (shared_ptr entries: see model_for on eviction safety).
  std::list<std::pair<LayoutKey, std::shared_ptr<ModelEntry>>> model_lru_;
  std::map<LayoutKey,
           std::list<std::pair<LayoutKey, std::shared_ptr<ModelEntry>>>::
               iterator>
      model_index_;

  std::map<EvalKey, ThermalEval> eval_memo_;
  std::map<FrontierKey, std::vector<std::pair<double, double>>> frontier_;
  std::map<std::pair<int, long>, BaselinePoint> baseline_memo_;

  std::size_t solve_count_ = 0;
  std::size_t eval_count_ = 0;
  /// Shared solve clock + health for every model this shard builds; keeps
  /// fault-plan indices stable across model-cache churn (see run_health.hpp).
  SolveLedger ledger_;
};

}  // namespace tacos
