#pragma once
/// \file evaluator.hpp
/// \brief The closed evaluation loop of Fig. 4(b): chiplet organizer →
///        floorplan generator → power model → thermal simulation, with the
///        temperature-dependent leakage fixed point of §IV.
///
/// The Evaluator is the single entry point the optimizers use.  It owns
/// three caches that make the optimization tractable on one machine:
///
///   1. a layout-keyed LRU of assembled ThermalModel instances (matrix
///      assembly is geometry-only and reusable across power maps);
///   2. an exact evaluation memo keyed by (layout, benchmark, f, p);
///   3. a monotone "thermal frontier" per (layout, p): peak temperature is
///      monotone in the injected reference power for a fixed layout and
///      active-core pattern, so previously solved points bound the
///      feasibility of new (benchmark, f) queries without running the
///      solver.  A safety margin avoids wrong conclusions near the
///      threshold (power-map *shape* varies slightly between benchmarks
///      because of the network-power share).
///
/// Statistics of thermal-solver invocations are tracked to reproduce the
/// paper's greedy-vs-exhaustive cost comparison (§III-D: 400× fewer
/// simulations).

#include <array>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "alloc/policy.hpp"
#include "common/run_health.hpp"
#include "core/organization.hpp"
#include "core/surrogate.hpp"
#include "cost/cost_model.hpp"
#include "materials/stack.hpp"
#include "perf/ips_model.hpp"
#include "power/power_model.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {

/// Evaluation fidelity selector (CLI `--fidelity=`).  kFull evaluates
/// every candidate with the full leakage fixed point (the historical
/// behavior).  kLadder screens candidates through the multi-fidelity
/// ladder first (surrogate → coarse Galerkin solve → medium grid → full);
/// kAuto resolves at Evaluator construction to kLadder when the grid is
/// large enough for coarse screening to pay off (nx ≥ 16), else kFull.
enum class FidelityMode { kAuto, kFull, kLadder };

const char* fidelity_mode_name(FidelityMode m);
std::optional<FidelityMode> parse_fidelity_mode(std::string_view s);

/// Fidelity-ladder knobs (EvalConfig::ladder).  The ladder is a *screen*:
/// it may only reject candidates the full path would also reject, and any
/// doubt promotes the candidate to the next rung (ultimately the full
/// solve).  Confidence is empirical: a rung's estimate only rejects once
/// `min_calibration` (estimate, full) pairs have been observed for that
/// (rung, benchmark, chiplet count) and the *most optimistic* observed
/// residual, minus `safety_margin_c`, still puts the candidate above the
/// rejection threshold.  Cold start (no calibration data, no trained
/// surrogate) therefore promotes everything — bit-identical to kFull.
struct LadderOptions {
  FidelityMode mode = FidelityMode::kFull;
  /// Fraction of confident rejects promoted anyway (deterministic integer
  /// schedule, no RNG) as a continuing audit of the calibration bounds.
  double keep_frac = 0.0;
  /// (estimate, full-result) pairs required per (rung, bench, n) before a
  /// rung's estimates may reject.
  int min_calibration = 5;
  /// Extra headroom (°C) on top of the calibrated residual bound.
  double safety_margin_c = 1.0;
  /// Training samples before the rung-0 surrogate scores candidates.
  std::size_t surrogate_min_samples = 8;
  /// Rung 2 uses a half-resolution model; below this edge it is skipped.
  std::size_t medium_grid_min = 8;
  /// Leakage fixed-point tolerance (°C) for rung-2 estimates.  Looser than
  /// the full path's: the unconverged tail is a smooth bias the residual
  /// calibration absorbs, and it saves ~2 medium solves per estimate.
  double medium_leak_tol_c = 0.25;
};

/// Mergeable fidelity-ladder counters (EvalStats::ladder; journal line
/// "ladder").  screened = candidates entering the ladder; each one ends
/// as exactly one of rejected / promoted (audited rejects count as
/// promoted, plus audits).
struct LadderStats {
  std::size_t screened = 0;          ///< candidates entering the ladder
  std::size_t rejected = 0;          ///< screened out (no full evaluation)
  std::size_t promoted = 0;          ///< passed through to the full path
  std::size_t audits = 0;            ///< keep-frac audits (subset of promoted)
  std::size_t surrogate_scores = 0;  ///< rung-0 predictions made
  std::size_t surrogate_fits = 0;    ///< rung-0 model refits
  std::size_t coarse_solves = 0;     ///< rung-1 coarse Galerkin solves
  std::size_t coarse_failures = 0;   ///< rung-1 failures (promoted past)
  std::size_t medium_solves = 0;     ///< rung-2 medium-grid solves
  std::size_t medium_failures = 0;   ///< rung-2 failures (promoted past)

  bool any() const { return screened != 0; }

  LadderStats& operator+=(const LadderStats& o) {
    screened += o.screened;
    rejected += o.rejected;
    promoted += o.promoted;
    audits += o.audits;
    surrogate_scores += o.surrogate_scores;
    surrogate_fits += o.surrogate_fits;
    coarse_solves += o.coarse_solves;
    coarse_failures += o.coarse_failures;
    medium_solves += o.medium_solves;
    medium_failures += o.medium_failures;
    return *this;
  }
};

/// Mergeable counters of the continuous spacing refinement stage
/// (EvalStats::refine; journal line "refine").  `attempted` counts
/// frontier winners entering refinement, `steps` accepted descent steps,
/// `trials` candidate evaluations tried by the line search (accepted or
/// not), `adjoint_solves` extra adjoint linear solves paid for gradients.
struct RefineStats {
  std::size_t attempted = 0;       ///< winners entering refinement
  std::size_t steps = 0;           ///< accepted (re-verified) descent steps
  std::size_t trials = 0;          ///< line-search candidates evaluated
  std::size_t adjoint_solves = 0;  ///< adjoint solves for gradients

  bool any() const { return attempted != 0; }

  RefineStats& operator+=(const RefineStats& o) {
    attempted += o.attempted;
    steps += o.steps;
    trials += o.trials;
    adjoint_solves += o.adjoint_solves;
    return *this;
  }
};

/// Evaluator configuration (every model parameter in one place).
struct EvalConfig {
  SystemSpec spec;
  ThermalConfig thermal;
  CostParams cost;
  PowerModelParams power;
  AllocPolicy policy = AllocPolicy::kMinTemp;
  double leak_tol_c = 0.05;  ///< leakage fixed-point convergence (°C)
  int max_leak_iters = 12;
  /// Frontier safety margin (°C): conclusions from the monotone cache are
  /// only drawn when the bounding peak is at least this far from the
  /// threshold; otherwise an exact simulation is run.
  double frontier_margin_c = 1.0;
  std::size_t model_cache_capacity = 48;
  /// Multi-fidelity evaluation ladder (off — kFull — by default).
  LadderOptions ladder;
};

/// Result of a thermal evaluation.  `leak_converged == false` flags a
/// leakage fixed point that ran out of iterations: the fields are the last
/// iterate, honest but not fully settled (also counted in RunHealth).
struct ThermalEval {
  double peak_c = 0.0;         ///< converged peak silicon temperature
  double total_power_w = 0.0;  ///< converged total power (incl. leakage, net)
  int leak_iterations = 0;
  std::size_t solves = 0;      ///< linear solves used
  bool leak_converged = true;  ///< leakage fixed point met its tolerance
};

/// The 2D baseline operating point (best (f, p) under a threshold).
/// When no (f, p) pair meets the threshold, `feasible` is false and the
/// remaining fields are meaningless placeholders (zeros) — callers must
/// check `feasible` before using them (baseline_2d() documents this).
struct BaselinePoint {
  std::size_t dvfs_idx = 0;
  int active_cores = 0;
  double ips = 0.0;
  double peak_c = 0.0;
  bool feasible = false;  ///< false if no (f, p) meets the threshold
};

/// Mergeable evaluation counters.  Parallel drivers give every task its
/// own Evaluator shard (the caches are not thread-safe) and combine the
/// shards' counters at join time with operator+=.
struct EvalStats {
  std::size_t solves = 0;  ///< linear-solver invocations
  std::size_t evals = 0;   ///< full organization evaluations simulated
  RunHealth health;        ///< recoveries / degradations / quarantines
  LadderStats ladder;      ///< fidelity-ladder screening counters
  RefineStats refine;      ///< continuous spacing-refinement counters
  EvalStats& operator+=(const EvalStats& o) {
    solves += o.solves;
    evals += o.evals;
    health += o.health;
    ladder += o.ladder;
    refine += o.refine;
    return *this;
  }
};

class Evaluator {
 public:
  explicit Evaluator(EvalConfig config);

  const EvalConfig& config() const { return config_; }

  /// Full thermal evaluation (leakage fixed point); memoized.
  const ThermalEval& thermal_eval(const Organization& org,
                                  const BenchmarkProfile& bench);

  /// Peak-temperature feasibility against `threshold_c`, using the
  /// monotone frontier to avoid simulations where possible.
  bool feasible(const Organization& org, const BenchmarkProfile& bench,
                double threshold_c);

  /// System performance of `org` for `bench` (no thermal check).
  double ips(const Organization& org, const BenchmarkProfile& bench) const;

  /// Manufacturing cost of `org` ($; Eq. (4), or Eq. (3) for n = 1).
  double cost(const Organization& org) const;

  /// Cost of the 2D baseline chip ($).
  double cost_2d() const { return cost_2d_; }

  /// Best 2D operating point under `threshold_c` (memoized per threshold).
  /// If no (f, p) pair is thermally feasible, the returned point has
  /// `feasible == false` (explicitly marked, and memoized as such) and its
  /// other fields must not be interpreted.
  const BaselinePoint& baseline_2d(const BenchmarkProfile& bench,
                                   double threshold_c);

  /// Fidelity-ladder screen: true when the ladder is on and a calibrated
  /// lower-fidelity rung concludes — with margin — that `org`'s peak
  /// exceeds `reject_above_c`, so the caller may skip the candidate
  /// without a full evaluation.  False means "not confidently rejectable":
  /// callers MUST then take exactly the path they would have taken without
  /// the ladder (same solves, same RNG draws) — that promotion discipline
  /// is what makes the ladder winner-invariant.  In kFull mode (and for
  /// memoized candidates the full path already rejected exactly) this is
  /// a no-op returning the exact verdict.  Never throws for rung failures:
  /// a failed coarse or medium solve just promotes.
  bool screen_infeasible(const Organization& org,
                         const BenchmarkProfile& bench,
                         double reject_above_c);

  /// True when config().ladder resolves to the ladder being active.
  bool ladder_active() const {
    return config_.ladder.mode == FidelityMode::kLadder;
  }

  /// One walk-candidate verdict from walk_eval (and the shape the greedy
  /// walk consumes in full mode too).  `feasible == true` means "commit:
  /// return this organization" — in ladder mode that verdict is always
  /// backed by an exact full evaluation or a margin-guarded frontier
  /// deduction, never by an estimate alone.  When `exact == false`,
  /// `peak_c` is a bias-corrected medium-rung estimate and `band_c` the
  /// calibrated residual half-spread at this operating point — the walk
  /// orders such candidates by the estimate (ordering noise in the hot
  /// region only perturbs the descent path, never the committed winner).
  struct WalkEval {
    double peak_c = 0.0;
    double band_c = 0.0;
    bool exact = true;
    bool feasible = false;
  };

  /// Ladder-mode walk evaluation: returns a calibrated medium-rung
  /// estimate when the rung is confident the placement is infeasible (and,
  /// if `prune_above_c` is finite, confident on which side of that second
  /// boundary the true peak lies); in every ambiguous case — cold start,
  /// estimate near a decision boundary, medium rung unavailable or failed
  /// — it falls through to the exact full evaluation, which also closes
  /// the calibration loop.  In kFull mode this is exactly thermal_eval.
  WalkEval walk_eval(const Organization& org, const BenchmarkProfile& bench,
                     double threshold_c,
                     double prune_above_c =
                         std::numeric_limits<double>::quiet_NaN());

  /// Exact adjoint spacing gradient of the converged peak temperature.
  /// Runs the leakage fixed point to convergence, re-solves once at the
  /// converged power map for a consistent (q, T) pair, then pays one
  /// extra adjoint solve; d_s1/d_s2 are dT_peak/ds along the fixed-
  /// interposer Eq. 9 manifold (ds3 = −2·ds1) at frozen source watts
  /// (see thermal/adjoint.hpp).  Requires n == 16.  Not memoized: the
  /// refinement loop visits each off-grid point once.
  struct PeakGradient {
    double peak_c = 0.0;  ///< converged peak at the evaluated point
    double d_s1 = 0.0;    ///< dT_peak/ds1 (°C/mm) along the manifold
    double d_s2 = 0.0;    ///< dT_peak/ds2 (°C/mm)
  };
  PeakGradient peak_gradient(const Organization& org,
                             const BenchmarkProfile& bench);

  /// Fidelity-ladder counters for this shard.
  const LadderStats& ladder_stats() const { return ladder_stats_; }

  /// Refinement counters for this shard (mutable: the refinement driver in
  /// core/refine.cpp ticks attempted/steps/trials; peak_gradient ticks
  /// adjoint_solves itself).
  RefineStats& refine_stats() { return refine_stats_; }

  /// Thermal-solver invocation counter (for the E9 validation experiment).
  std::size_t solve_count() const { return solve_count_; }
  /// Number of full organization evaluations actually simulated.
  std::size_t eval_count() const { return eval_count_; }
  /// Health counters aggregated across every model this shard built
  /// (recovery-ladder escalations, leakage non-convergence, failures).
  const RunHealth& health() const { return ledger_.health; }
  /// Counters as a mergeable snapshot (parallel shard join).
  EvalStats stats() const {
    return EvalStats{solve_count_, eval_count_, ledger_.health, ladder_stats_,
                     refine_stats_};
  }
  void reset_stats() {
    solve_count_ = 0;
    eval_count_ = 0;
    ledger_.health = RunHealth{};
    ladder_stats_ = LadderStats{};
    refine_stats_ = RefineStats{};
  }

 private:
  /// Quantized layout identity (1 nm resolution on spacings — fine enough
  /// that the refinement stage's off-grid spacings never collide).
  struct LayoutKey {
    int n;
    long s1, s2, s3;
    auto operator<=>(const LayoutKey&) const = default;
    static LayoutKey of(const Organization& org);
  };
  struct EvalKey {
    LayoutKey layout;
    int bench_idx;
    std::size_t dvfs_idx;
    int p;
    auto operator<=>(const EvalKey&) const = default;
  };
  struct FrontierKey {
    LayoutKey layout;
    int p;
    auto operator<=>(const FrontierKey&) const = default;
  };

  struct ModelEntry {
    std::unique_ptr<ChipletLayout> layout;
    std::unique_ptr<ThermalModel> model;
  };

  /// Fetch (or build) the model for `org`'s layout.  Returns a shared
  /// handle: callers hold it across the whole solve, so an LRU eviction —
  /// including the degenerate capacity-0 case, where the entry is evicted
  /// on the very call that built it — can never destroy a model (and its
  /// cached multigrid hierarchy) out from under an in-flight evaluation.
  std::shared_ptr<ModelEntry> model_for(const Organization& org);
  int bench_index(const BenchmarkProfile& bench) const;
  /// Monotone-frontier deduction for feasibility at `threshold_c`:
  /// true/false when a margin-guarded bound decides it, nullopt otherwise.
  std::optional<bool> frontier_verdict(const EvalKey& key,
                                       const Organization& org,
                                       const BenchmarkProfile& bench,
                                       double threshold_c) const;
  /// Total power at the leakage reference temperature (frontier abscissa).
  double reference_power(const Organization& org,
                         const BenchmarkProfile& bench) const;

  // --- Fidelity ladder (see LadderOptions) ----------------------------
  /// Calibration identity: residual bounds are tracked independently per
  /// (rung, benchmark, chiplet count) — the rungs' bias differs across
  /// all three axes.
  struct RungKey {
    int rung;
    int bench_idx;
    int n;
    auto operator<=>(const RungKey&) const = default;
  };
  /// Out-of-sample residual record of one rung: count observed pairs, the
  /// extremes of full − estimate, and the band of estimates the pairs
  /// covered.  A rung's bias drifts with operating point (e.g. the coarse
  /// rung under-estimates hot layouts by more °C than warm ones), so the
  /// additive *rejection* bound of the statistical rungs (surrogate,
  /// coarse) is only trusted for estimates inside the calibrated band —
  /// extrapolation promotes.  The medium rung is the same physics at half
  /// resolution with a small, stable discretization bias; its rejection
  /// bound is trusted globally.  Early promotion (est + max_resid still
  /// clearly below the threshold) is winner-safe in any direction — a
  /// missed reject only costs time — so it never needs the band.
  struct ResidBound {
    int count = 0;
    double min_resid = 0.0;
    double max_resid = 0.0;
    double est_lo = 0.0;
    double est_hi = 0.0;
  };

  /// Surrogate feature vector for `org` under `bench`.
  std::array<double, kSurrogateFeatures> features_of(
      const Organization& org, const BenchmarkProfile& bench) const;
  /// Calibrated three-way verdict for one rung's estimate: +1 reject,
  /// -1 promote immediately (skip higher rungs), 0 no opinion (continue).
  int rung_verdict(int rung, const EvalKey& key, double est_c,
                   double reject_above_c) const;
  /// Rung 2 availability (lazy medium-config construction).
  bool medium_available();
  /// Medium-resolution twin of model_for (separate LRU + ledger).
  std::shared_ptr<ModelEntry> medium_model_for(const Organization& org);
  /// Memoized rung-2 estimate (converged medium-grid leakage fixed point);
  /// registers the pending calibration pair.  nullopt when the medium rung
  /// is unavailable, failed, or did not converge — callers promote.
  /// `*fresh` reports whether this call paid for a new medium solve.
  std::optional<double> medium_estimate(const EvalKey& key,
                                        const Organization& org,
                                        const BenchmarkProfile& bench,
                                        bool* fresh);
  /// Deterministic keep-frac audit schedule: true when this confident
  /// reject is the one in 1/keep_frac that must be promoted anyway.
  bool audit_due();
  /// Record the calibration pairs + surrogate sample of a completed full
  /// evaluation (called from thermal_eval).
  void record_full_result(const EvalKey& key, const Organization& org,
                          const BenchmarkProfile& bench, const ThermalEval& ev,
                          bool converged);

  EvalConfig config_;
  double cost_2d_ = 0.0;

  // LRU model cache (shared_ptr entries: see model_for on eviction safety).
  std::list<std::pair<LayoutKey, std::shared_ptr<ModelEntry>>> model_lru_;
  std::map<LayoutKey,
           std::list<std::pair<LayoutKey, std::shared_ptr<ModelEntry>>>::
               iterator>
      model_index_;

  std::map<EvalKey, ThermalEval> eval_memo_;
  std::map<FrontierKey, std::vector<std::pair<double, double>>> frontier_;
  std::map<std::pair<int, long>, BaselinePoint> baseline_memo_;

  std::size_t solve_count_ = 0;
  std::size_t eval_count_ = 0;
  /// Shared solve clock + health for every model this shard builds; keeps
  /// fault-plan indices stable across model-cache churn (see run_health.hpp).
  SolveLedger ledger_;

  // --- Fidelity-ladder state (all insertion-ordered / deterministic) ---
  LadderStats ladder_stats_;
  RefineStats refine_stats_;
  /// One online surrogate per benchmark (rung 0).
  std::map<int, PeakSurrogate> surrogates_;
  /// Calibrated residual bounds per (rung, bench, n).
  std::map<RungKey, ResidBound> calib_;
  /// Walk-grade rung-2 residual bounds, keyed per (bench, n, f, p): the
  /// candidates of one placement walk share the operating point, so the
  /// medium rung's residual varies only with placement there — a much
  /// tighter band than the pooled one, which is what keeps walk
  /// comparisons from degenerating into all-ties.
  struct WalkKey {
    int bench_idx;
    int n;
    std::size_t dvfs_idx;
    int p;
    auto operator<=>(const WalkKey&) const = default;
  };
  std::map<WalkKey, ResidBound> walk_calib_;
  /// Rung estimates awaiting their full result (NaN = rung not run).
  std::map<EvalKey, std::array<double, 3>> pending_est_;
  /// Memoized rung-2 estimates (mirrors eval_memo_ for the medium grid).
  std::map<EvalKey, double> medium_memo_;
  /// Confident-reject counter driving the deterministic keep-frac audit.
  std::size_t confident_rejects_ = 0;
  /// Rung-2 medium-grid models: separate LRU and ledger so screening
  /// solves never tick the full path's solve clock or health counters.
  bool medium_init_ = false;
  std::optional<ThermalConfig> medium_thermal_;
  std::list<std::pair<LayoutKey, std::shared_ptr<ModelEntry>>> medium_lru_;
  std::map<LayoutKey,
           std::list<std::pair<LayoutKey, std::shared_ptr<ModelEntry>>>::
               iterator>
      medium_index_;
  SolveLedger medium_ledger_;
};

}  // namespace tacos
