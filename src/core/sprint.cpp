#include "core/sprint.hpp"

#include <cmath>
#include <optional>

namespace tacos {

SprintResult measure_sprint(ThermalModel& model, const ChipletLayout& layout,
                            const BenchmarkProfile& bench,
                            const DvfsLevel& lvl,
                            const std::vector<int>& active,
                            const PowerModelParams& params,
                            double threshold_c, double dt_s, double max_s) {
  TACOS_CHECK(dt_s > 0 && max_s > dt_s, "bad sprint time parameters");
  SprintResult out;
  double prev_peak = model.current_peak_c();
  if (prev_peak > threshold_c) {
    // Already above threshold: zero-length sprint.
    out.final_peak_c = prev_peak;
    return out;
  }
  std::optional<std::vector<double>> tile_temps;
  const double settle_tol_c = 1e-3;
  for (double t = dt_s; t <= max_s + 1e-12; t += dt_s) {
    const PowerMap pmap =
        build_power_map(layout, bench, lvl, active, tile_temps, params);
    const ThermalResult res = model.step_transient(pmap, dt_s);
    tile_temps = model.tile_temperatures();
    out.final_peak_c = res.peak_c;
    if (res.peak_c >= threshold_c) {
      // Linear interpolation of the crossing instant within the step.
      const double f =
          (threshold_c - prev_peak) / (res.peak_c - prev_peak);
      out.duration_s = t - dt_s + f * dt_s;
      return out;
    }
    if (std::abs(res.peak_c - prev_peak) < settle_tol_c) {
      out.sustainable = true;
      out.duration_s = max_s;
      return out;
    }
    prev_peak = res.peak_c;
  }
  // Survived the whole horizon without settling — report it sustainable
  // for the studied window.
  out.sustainable = true;
  out.duration_s = max_s;
  return out;
}

}  // namespace tacos
