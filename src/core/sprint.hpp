#pragma once
/// \file sprint.hpp
/// \brief Computational-sprinting analysis on the transient thermal model.
///
/// Computational sprinting [7] (paper §II) briefly runs more cores than
/// the steady-state thermal budget allows, exploiting thermal capacitance.
/// The paper positions thermally-aware chiplet organization as a
/// *complementary* technique; this extension quantifies that: spacing the
/// chiplets both raises the sustainable budget and lengthens the sprint
/// before the threshold is hit.
///
/// measure_sprint() steps the transient model from its current state
/// under a sprint power map until the peak silicon temperature crosses
/// the threshold (returning the crossing time by linear interpolation)
/// or the field settles below it (the sprint is sustainable).

#include "core/leakage.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {

/// Outcome of a sprint experiment.
struct SprintResult {
  bool sustainable = false;   ///< steady state stays below the threshold
  double duration_s = 0.0;    ///< time to threshold (if not sustainable)
  double final_peak_c = 0.0;  ///< peak at the end of the experiment
};

/// Step `model` under the (temperature-refreshed) power of `bench` at
/// `lvl` with `active` cores until the peak crosses `threshold_c` or the
/// transient settles.  The model's current temperature field is the
/// sprint's starting state (call model.reset_to_ambient() for a cold
/// start or pre-heat it with a steady solve).  Leakage follows the tile
/// temperatures of the previous step.
SprintResult measure_sprint(ThermalModel& model, const ChipletLayout& layout,
                            const BenchmarkProfile& bench,
                            const DvfsLevel& lvl,
                            const std::vector<int>& active,
                            const PowerModelParams& params,
                            double threshold_c, double dt_s = 0.05,
                            double max_s = 60.0);

}  // namespace tacos
