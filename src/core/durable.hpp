#pragma once
/// \file durable.hpp
/// \brief Durable parallel-task scaffolding shared by the experiment
///        drivers (Figs. 3(b)/5/6/7/8, E8/E9): journal replay, per-task
///        deadlines, and graceful-interrupt handling around the
///        GuardedRows pattern.
///
/// Each driver decomposes its table into independent units, runs them on
/// the global ThreadPool, and appends the per-unit row blocks in input
/// order — so tables are byte-identical at any thread count.  This header
/// adds the durability layer around that pattern (see docs/ROBUSTNESS.md):
///
///  * with a RunJournal, every completed unit — including quarantined and
///    timed-out ones, which are terminal — is appended as one checksummed
///    record, and journaled units are *replayed* instead of recomputed, so
///    a resumed run reproduces rows, extras, and merged health counters
///    byte-for-byte;
///  * with a CancelToken, units not yet dispatched when it trips come back
///    `interrupted` (never journaled — a `--resume` run recomputes them);
///  * with a per-task deadline, an over-budget unit becomes a quarantine-
///    style row carrying the `timeout:` diagnostic and counts in
///    `RunHealth::timeouts`.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/journal.hpp"
#include "common/run_health.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"

namespace tacos {

/// Rows of one experiment-table block.
using Rows = std::vector<std::vector<std::string>>;

/// Per-task output of a guarded durable unit: its rows, its shard's health
/// counters, and any driver-specific scalars (journaled alongside the rows
/// so replay reproduces derived summary rows too).
struct GuardedRows {
  Rows rows;
  RunHealth health;
  std::vector<std::string> extra;
  /// The run was interrupted before (or while) this unit ran; it carries
  /// no data and was NOT journaled — a resumed run recomputes it.
  bool interrupted = false;
};

/// Exact (round-trippable) rendering for `extra` scalars.
inline std::string extra_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}
inline double extra_to_double(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

/// Journal payload codec for one GuardedRows block.  Line-tagged format:
/// `h` carries the nine RunHealth counters, each `x` one extra scalar,
/// each `r` one row as `r <n_cells> <tab-joined cells>` (cells
/// field-escaped; the explicit count makes a zero-cell row round-trip
/// exactly instead of decoding as one empty cell).
inline std::string encode_guarded_rows(const GuardedRows& g) {
  std::string out = "h";
  const RunHealth& h = g.health;
  for (std::size_t c : {h.cold_restarts, h.cap_retries, h.gs_fallbacks,
                        h.solve_failures, h.nonfinite_inputs,
                        h.leak_nonconverged, h.quarantined, h.timeouts,
                        h.cancelled})
    out += ' ' + std::to_string(c);
  out += '\n';
  for (const std::string& x : g.extra) out += "x " + escape_field(x) + '\n';
  for (const auto& row : g.rows) {
    out += "r " + std::to_string(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += i ? '\t' : ' ';  // escape_field escapes tabs inside cells
      out += escape_field(row[i]);
    }
    out += '\n';
  }
  return out;
}

inline bool decode_guarded_rows(const std::string& payload, GuardedRows* g) {
  *g = GuardedRows{};
  bool saw_health = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) eol = payload.size();
    const std::string line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const char tag = line[0];
    const std::string rest = line.size() > 2 ? line.substr(2) : std::string();
    if (tag == 'h') {
      RunHealth& h = g->health;
      std::size_t* slots[] = {&h.cold_restarts,     &h.cap_retries,
                              &h.gs_fallbacks,      &h.solve_failures,
                              &h.nonfinite_inputs,  &h.leak_nonconverged,
                              &h.quarantined,       &h.timeouts,
                              &h.cancelled};
      std::size_t field = 0, at = 0;
      while (field < 9 && at < rest.size()) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(rest.c_str() + at, &end, 10);
        if (end == rest.c_str() + at) return false;
        *slots[field++] = static_cast<std::size_t>(v);
        at = static_cast<std::size_t>(end - rest.c_str());
        while (at < rest.size() && rest[at] == ' ') ++at;
      }
      if (field != 9) return false;
      saw_health = true;
    } else if (tag == 'x') {
      g->extra.push_back(unescape_field(rest));
    } else if (tag == 'r') {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) return false;
      std::size_t at = static_cast<std::size_t>(end - rest.c_str());
      std::vector<std::string> row;
      if (n > 0) {
        if (at >= rest.size() || rest[at] != ' ') return false;
        ++at;
        while (row.size() < n && at <= rest.size()) {
          std::size_t sep = rest.find('\t', at);
          if (sep == std::string::npos) sep = rest.size();
          row.push_back(unescape_field(rest.substr(at, sep - at)));
          at = sep + 1;
        }
        if (row.size() != n) return false;
      }
      g->rows.push_back(std::move(row));
    }
    // Unknown tags are skipped: older journals stay readable.
  }
  return saw_health;
}

/// Marker cell for a quarantined unit's row.
inline std::string quarantine_cell(const Error& e) {
  return std::string("quarantined: ") + e.what();
}

/// Append guarded blocks in input order and merge their health counters.
/// Interrupted blocks contribute no rows (the run is exiting resumable).
inline RunHealth merge_guarded(TextTable& t,
                               const std::vector<GuardedRows>& blocks) {
  RunHealth h;
  for (const GuardedRows& block : blocks) {
    for (const auto& row : block.rows) t.add_row(row);
    h += block.health;
  }
  return h;
}

/// Durable parallel map over experiment units.
///
///  * `id_fn(task)` → stable journal id (e.g. "fig6:blackscholes:16");
///  * `body(task, cancel)` → GuardedRows; the token (nullptr when no run
///    control is active) must be threaded into the unit's EvalConfig /
///    OptimizerOptions.  The body keeps its own `catch (const Error&)`
///    quarantine — CancelledError deliberately escapes it and is handled
///    here;
///  * `timeout_out(task, err)` → the GuardedRows a deadline overrun should
///    contribute (typically one quarantine-style row whose last cell is
///    `err.what()`, which starts with "timeout:").  Its health is replaced
///    with a single `timeouts` count.
template <typename Task, typename IdFn, typename Body, typename TimeoutFn>
std::vector<GuardedRows> durable_rows_map(const std::vector<Task>& tasks,
                                          const RunControl& run,
                                          const std::string& meta_key,
                                          const std::string& meta_value,
                                          IdFn&& id_fn, Body&& body,
                                          TimeoutFn&& timeout_out) {
  RunJournal* const journal = run.journal;
  if (journal) journal->bind_meta(meta_key, meta_value);
  return ThreadPool::global().parallel_map(tasks, [&](const Task& t) {
    // One span per experiment unit: every driver built on this scaffold
    // shows up in a trace as run.task rows tagged with id + outcome.
    static obs::SpanSite task_site("run.task", "run");
    obs::TraceSpan task_span(task_site);
    GuardedRows out;
    const std::string task_id = id_fn(t);
    task_span.arg("id", task_id);
    if (journal) {
      if (const std::optional<std::string> payload = journal->find(task_id)) {
        // Checkpoint replay: the journaled block stands in for the
        // recomputation.  An undecodable payload (hand-edited journal)
        // falls through to recomputation.
        if (decode_guarded_rows(*payload, &out)) {
          task_span.arg("outcome", "replayed");
          return out;
        }
        out = GuardedRows{};
      }
    }
    if (run.cancel && run.cancel->cancelled()) {
      // Graceful shutdown: stop dispatching; in-flight units drain via
      // their own tokens.
      out.interrupted = true;
      out.health.cancelled = 1;
      task_span.arg("outcome", "interrupted");
      return out;
    }
    // Per-task token: chains the run-level cancel and carries this unit's
    // wall-clock budget.
    CancelToken task_cancel(run.cancel);
    if (run.task_deadline_s > 0) task_cancel.set_deadline(run.task_deadline_s);
    const bool active = run.cancel != nullptr || run.task_deadline_s > 0;
    try {
      out = body(t, active ? &task_cancel : nullptr);
      task_span.arg("outcome", out.health.quarantined > 0 ? "quarantined"
                                                          : "ok");
    } catch (const CancelledError& c) {
      if (c.reason() == CancelledError::Reason::kDeadline) {
        out = timeout_out(t, c);
        out.health = RunHealth{};
        out.health.timeouts = 1;
        out.interrupted = false;
        task_span.arg("outcome", "timeout");
      } else {
        out = GuardedRows{};
        out.interrupted = true;
        out.health.cancelled = 1;
        task_span.arg("outcome", "interrupted");
        return out;  // never journaled — resume recomputes it
      }
    }
    if (journal) journal->append(task_id, encode_guarded_rows(out));
    return out;
  });
}

}  // namespace tacos
