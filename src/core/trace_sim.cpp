#include "core/trace_sim.hpp"

#include <algorithm>
#include <optional>

namespace tacos {

TraceStats simulate_trace(ThermalModel& model, const ChipletLayout& layout,
                          const BenchmarkProfile& bench, const DvfsLevel& lvl,
                          const std::vector<int>& active,
                          const PowerModelParams& params,
                          const std::vector<Phase>& trace,
                          double threshold_c) {
  TACOS_CHECK(!trace.empty(), "empty phase trace");
  TraceStats out;
  std::optional<std::vector<double>> tile_temps;
  double total_s = 0.0, weighted_peak = 0.0;
  for (const Phase& ph : trace) {
    TACOS_CHECK(ph.duration_s > 0, "phase with non-positive duration");
    const PowerMap pmap = build_power_map(layout, bench, lvl, active,
                                          tile_temps, params, ph.activity);
    const ThermalResult res = model.step_transient(pmap, ph.duration_s);
    tile_temps = model.tile_temperatures();
    ++out.steps;
    out.final_peak_c = res.peak_c;
    out.max_peak_c = std::max(out.max_peak_c, res.peak_c);
    weighted_peak += res.peak_c * ph.duration_s;
    if (res.peak_c > threshold_c) out.time_above_threshold_s += ph.duration_s;
    total_s += ph.duration_s;
  }
  out.mean_peak_c = weighted_peak / total_s;
  return out;
}

}  // namespace tacos
