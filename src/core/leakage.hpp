#pragma once
/// \file leakage.hpp
/// \brief Temperature-dependent leakage fixed point (paper §IV).
///
/// The paper: "We adjust the leakage power of each core based on its
/// initial temperature obtained from HotSpot, and re-run HotSpot to update
/// the thermal profile until the temperature converges."  This module
/// implements exactly that loop for an arbitrary tiled layout, so both the
/// Evaluator (4/16-chiplet organizations, 2D baseline) and the Fig. 5
/// sweep (64/256-chiplet layouts) share one implementation.
///
/// Convergence: with the linear leakage model P_leak ∝ (1 + λ(T − T_ref)),
/// the iteration is a linear fixed point with spectral radius
/// ≈ λ · leak_share · R_thermal · P, far below 1 for every configuration
/// in this design space; divergence (temperature runaway) is detected and
/// reported as an error.

#include <vector>

#include "floorplan/layout.hpp"
#include "perf/benchmark.hpp"
#include "power/power_model.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {

/// Converged result of the power ↔ temperature loop.
struct LeakageResult {
  double peak_c = 0.0;         ///< converged peak silicon temperature (°C)
  double total_power_w = 0.0;  ///< converged total power (W)
  int iterations = 0;          ///< thermal solves used
  bool converged = false;
};

/// Run the leakage fixed point for `bench` at DVFS level `lvl` with the
/// given active tiles on `model` (which must be built for `layout`).
/// `tol_c` bounds the max-norm of the tile-temperature change between
/// consecutive iterations — the whole field must settle, not just the
/// peak (a clamped peak goes quiet while secondary hotspots still drift).
/// Running out of iterations is not an error: the last state is returned
/// with `converged == false` and `total_power_w` recomputed from the
/// final temperatures (self-consistent with `peak_c`), and callers
/// (Evaluator) surface it through ThermalEval::leak_converged and
/// RunHealth instead of hiding it.
/// `fault_nonconverge` (FaultPlan::leak_force_nonconverge) skips the
/// convergence test so the non-convergence path is testable on demand.
LeakageResult run_leakage_fixed_point(ThermalModel& model,
                                      const ChipletLayout& layout,
                                      const BenchmarkProfile& bench,
                                      const DvfsLevel& lvl,
                                      const std::vector<int>& active,
                                      const PowerModelParams& params,
                                      double tol_c = 0.05,
                                      int max_iters = 12,
                                      bool fault_nonconverge = false);

}  // namespace tacos
