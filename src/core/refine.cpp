#include "core/refine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tacos {

namespace {

/// Organization at manifold point (s1, s2): s3 pinned by Eq. 9.
Organization at(const Organization& base, double s1, double s2,
                double budget) {
  Organization o = base;
  o.spacing = Spacing{s1, s2, std::max(0.0, budget - 2.0 * s1)};
  return o;
}

}  // namespace

RefineResult refine_spacing(Evaluator& eval, const BenchmarkProfile& bench,
                            const Organization& org, double budget_mm,
                            double step_mm, double refine_tol_mm,
                            int max_steps, const CancelToken* cancel) {
  TACOS_CHECK(org.n_chiplets == 16,
              "spacing refinement is defined for n=16 organizations");
  TACOS_CHECK(budget_mm >= 0.0 && step_mm > 0.0 && refine_tol_mm > 0.0,
              "refinement needs budget >= 0, step > 0, tol > 0");
  static obs::SpanSite refine_site("refine.descent", "refine");
  obs::TraceSpan span(refine_site);
  if (span.active()) {
    span.arg("bench", std::string(bench.name));
    span.arg("budget_mm", budget_mm);
  }

  RefineStats& rs = eval.refine_stats();
  ++rs.attempted;

  const double hi = budget_mm / 2.0;  // box bound for both s1 and s2
  const auto clamp01 = [&](double v) { return std::clamp(v, 0.0, hi); };

  RefineResult out;
  out.org = org;
  // Project the grid winner itself into the box: grid indices can sit an
  // epsilon above B/2 (spacing_grid_max's representation guard), and the
  // descent invariant is that every visited point is interior-or-boundary.
  out.org = at(org, clamp01(org.spacing.s1), clamp01(org.spacing.s2),
               budget_mm);
  out.peak_c = eval.thermal_eval(out.org, bench).peak_c;

  constexpr int kMaxHalvings = 8;
  constexpr double kDescentEps = 1e-9;  // strict-improvement margin (°C)

  while (out.steps < max_steps) {
    if (cancel) cancel->poll();
    const Evaluator::PeakGradient g = eval.peak_gradient(out.org, bench);
    const double gnorm = std::max(std::abs(g.d_s1), std::abs(g.d_s2));
    if (!(gnorm > 0.0) || !std::isfinite(gnorm)) break;  // flat (or NaN)

    // Backtracking line search: the first trial moves the steepest
    // coordinate half a grid step (the grid winner is within one step of
    // the continuous optimum), halving on rejection.  Every candidate is
    // verified with the full-fidelity evaluation before acceptance.
    bool accepted = false;
    bool converged = false;
    for (int halving = 0; halving < kMaxHalvings; ++halving) {
      const double disp = step_mm / 2.0 / static_cast<double>(1 << halving);
      const double s1 = clamp01(out.org.spacing.s1 - disp * g.d_s1 / gnorm);
      const double s2 = clamp01(out.org.spacing.s2 - disp * g.d_s2 / gnorm);
      const double moved = std::max(std::abs(s1 - out.org.spacing.s1),
                                    std::abs(s2 - out.org.spacing.s2));
      if (moved < refine_tol_mm) {
        // The projected step collapsed below the resolution target —
        // either the descent converged or the gradient points out of the
        // box; further halvings only shrink it.
        converged = true;
        break;
      }
      const Organization cand = at(out.org, s1, s2, budget_mm);
      ++rs.trials;
      const double trial_peak = eval.thermal_eval(cand, bench).peak_c;
      if (trial_peak < out.peak_c - kDescentEps) {
        out.org = cand;
        out.peak_c = trial_peak;
        ++out.steps;
        ++rs.steps;
        if (obs::metrics_enabled()) {
          static obs::Counter steps_ctr =
              obs::MetricsRegistry::global().counter("refine.steps");
          steps_ctr.add();
        }
        accepted = true;
        break;
      }
    }
    if (converged || !accepted) break;
  }

  if (span.active()) {
    span.arg("steps", static_cast<std::int64_t>(out.steps));
    span.arg("peak_c", out.peak_c);
  }
  return out;
}

}  // namespace tacos
