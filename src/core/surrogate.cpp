#include "core/surrogate.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tacos {

std::array<double, kSurrogateFeatures> PeakSurrogate::features(
    int n_chiplets, double s1, double s2, double s3, double freq_mhz,
    int active_cores, double ref_power_w) {
  // Chiplet-count one-hots (n = 1 is the all-zeros base case), raw
  // spacings plus their sum (the interposer slack, a strong univariate
  // predictor of heat spreading), frequency in GHz, active-core fraction,
  // and the reference power in hundreds of watts.  All O(1)-magnitude
  // after standardization; the explicit scaling just keeps the
  // pre-standardization moments well-conditioned.
  return {n_chiplets == 4 ? 1.0 : 0.0,
          n_chiplets == 16 ? 1.0 : 0.0,
          s1,
          s2,
          s3,
          s1 + s2 + s3,
          freq_mhz * 1e-3,
          static_cast<double>(active_cores) / 256.0,
          ref_power_w * 1e-2};
}

void PeakSurrogate::add(const std::array<double, kSurrogateFeatures>& x,
                        double peak_c) {
  samples_.push_back(Sample{x, peak_c});
}

void PeakSurrogate::fit() {
  static obs::SpanSite fit_site("surrogate.fit", "surrogate");
  obs::TraceSpan span(fit_site);
  span.arg("samples", static_cast<std::int64_t>(samples_.size()));

  const std::size_t m = samples_.size();
  constexpr std::size_t K = kSurrogateFeatures;
  // Standardize each feature column; a constant column (e.g. the n = 16
  // one-hot while only 16-chiplet layouts were seen) gets scale 1 and is
  // absorbed by the intercept.
  for (std::size_t j = 0; j < K; ++j) {
    double mean = 0.0;
    for (const Sample& s : samples_) mean += s.x[j];
    mean /= static_cast<double>(m);
    double var = 0.0;
    for (const Sample& s : samples_) {
      const double d = s.x[j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(m);
    mean_[j] = mean;
    scale_[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  // Normal equations on [1 | standardized X]: N = XᵀX + m·lambda·I (the
  // intercept is not regularized), b = Xᵀy.  K + 1 = 10 unknowns — the
  // dense Cholesky below is microseconds.
  constexpr std::size_t D = K + 1;
  double N[D][D] = {};
  double b[D] = {};
  for (const Sample& s : samples_) {
    double row[D];
    row[0] = 1.0;
    for (std::size_t j = 0; j < K; ++j)
      row[j + 1] = (s.x[j] - mean_[j]) / scale_[j];
    for (std::size_t i = 0; i < D; ++i) {
      for (std::size_t j = i; j < D; ++j) N[i][j] += row[i] * row[j];
      b[i] += row[i] * s.y;
    }
  }
  const double ridge = lambda_ * static_cast<double>(m);
  for (std::size_t i = 1; i < D; ++i) N[i][i] += ridge;
  for (std::size_t i = 0; i < D; ++i)
    for (std::size_t j = 0; j < i; ++j) N[i][j] = N[j][i];

  // In-place LLᵀ; the ridge keeps N positive definite even with
  // duplicated or constant columns.
  double L[D][D] = {};
  for (std::size_t j = 0; j < D; ++j) {
    double d = N[j][j];
    for (std::size_t k = 0; k < j; ++k) d -= L[j][k] * L[j][k];
    TACOS_CHECK(d > 0.0, "surrogate normal matrix lost definiteness");
    L[j][j] = std::sqrt(d);
    for (std::size_t i = j + 1; i < D; ++i) {
      double s = N[i][j];
      for (std::size_t k = 0; k < j; ++k) s -= L[i][k] * L[j][k];
      L[i][j] = s / L[j][j];
    }
  }
  double y[D];
  for (std::size_t i = 0; i < D; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= L[i][k] * y[k];
    y[i] = s / L[i][i];
  }
  for (std::size_t ii = D; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < D; ++k) s -= L[k][ii] * weights_[k];
    weights_[ii] = s / L[ii][ii];
  }

  fitted_samples_ = m;
  ++fit_count_;
  if (obs::metrics_enabled()) {
    static obs::Counter fits =
        obs::MetricsRegistry::global().counter("surrogate.fits");
    fits.add();
  }
}

double PeakSurrogate::predict(
    const std::array<double, kSurrogateFeatures>& x) {
  TACOS_CHECK(ready(), "surrogate predict() before enough samples");
  if (fitted_samples_ != samples_.size()) fit();
  static obs::SpanSite score_site("surrogate.score", "surrogate");
  obs::TraceSpan span(score_site);
  double y = weights_[0];
  for (std::size_t j = 0; j < kSurrogateFeatures; ++j)
    y += weights_[j + 1] * (x[j] - mean_[j]) / scale_[j];
  return y;
}

}  // namespace tacos
