#include <cmath>
#include <map>
#include <sstream>

#include "common/thread_pool.hpp"
#include "core/durable.hpp"
#include "core/experiments.hpp"

namespace tacos {

namespace {

/// Minimum (packed) interposer edge.
double min_interposer(const SystemSpec& spec) {
  return spec.chip_edge_mm() + 2 * spec.guard_band_mm;
}

/// Chiplet area for n ∈ {4, 16}.
double chiplet_area(const SystemSpec& spec, int n) {
  const double e = spec.chip_edge_mm() / (n == 4 ? 2 : 4);
  return e * e;
}

/// Largest interposer edge (on the w_step grid) whose n-chiplet system
/// costs no more than the 2D baseline; 0 if even the minimum exceeds it.
double iso_cost_interposer(const Evaluator& eval, int n, double w_step) {
  const SystemSpec& spec = eval.config().spec;
  double best = 0.0;
  for (double w = min_interposer(spec); w <= spec.max_interposer_mm + 1e-9;
       w += w_step) {
    const double c =
        system_cost_25d(n, chiplet_area(spec, n), w * w, eval.config().cost);
    if (c <= eval.cost_2d()) best = w;
  }
  return best;
}

/// Max-IPS curve over interposer sizes for one benchmark and chiplet count.
std::map<double, MaxIpsResult> max_ips_curve(Evaluator& eval,
                                             const BenchmarkProfile& bench,
                                             int n,
                                             const ExperimentOptions& opts,
                                             const CancelToken* cancel) {
  const SystemSpec& spec = eval.config().spec;
  OptimizerOptions oo = opts.optimizer_options(1.0, 0.0, cancel);
  Rng rng(opts.seed);
  std::map<double, MaxIpsResult> curve;
  for (double w = min_interposer(spec); w <= spec.max_interposer_mm + 1e-9;
       w += opts.w_step_mm) {
    curve[w] = max_ips_at_interposer(eval, bench, n, w, oo, rng);
  }
  return curve;
}

std::string fmt_org(const Organization& org) {
  std::ostringstream os;
  // Space-separated spacings keep the CSV output comma-free.
  os << org.n_chiplets << "c s=(" << org.spacing.s1 << " " << org.spacing.s2
     << " " << org.spacing.s3 << ") " << level_of(org).freq_mhz << "MHz p="
     << org.active_cores;
  return os.str();
}

/// bind_meta value for a driver: result-shaping knobs plus the bench list.
std::string driver_meta(const ExperimentOptions& opts,
                        const std::vector<std::string>& bench_names) {
  std::string m = opts.fingerprint() + " benches=";
  for (std::size_t i = 0; i < bench_names.size(); ++i)
    m += (i ? "," : "") + bench_names[i];
  return m;
}

std::vector<std::string> all_benchmark_names() {
  std::vector<std::string> names;
  for (const BenchmarkProfile& bench : benchmarks())
    names.emplace_back(bench.name);
  return names;
}

// The experiment drivers below fan their outer loops out over the global
// ThreadPool via durable_rows_map (core/durable.hpp): one task per
// (benchmark[, chiplet count / threshold]) unit, each with its own
// Evaluator shard (the caches are not thread-safe, and a frontier shared
// across tasks would make results depend on completion order).  Every task
// returns its rows; the join appends them in input order, so tables are
// byte-identical at any thread count.
//
// Containment: each task body catches tacos::Error — an evaluation that
// failed even after the thermal recovery ladder — and contributes a
// single "quarantined:" row instead of aborting the table.  The catch
// sits inside the task, so surviving rows stay deterministic at any
// thread count; the per-shard RunHealth counters are merged at the join.
// Durability (journal replay, deadlines → "timeout:" rows, interrupt
// draining) is handled by durable_rows_map around the body.

}  // namespace

TextTable fig6_perf_cost_table(const ExperimentOptions& opts,
                               const std::vector<std::string>& bench_names,
                               RunHealth* health) {
  struct Unit {
    std::string bench;
    int n = 0;
  };
  std::vector<Unit> units;
  for (const auto& name : bench_names)
    for (int n : {4, 16}) units.push_back({name, n});

  const std::vector<GuardedRows> blocks = durable_rows_map(
      units, opts.run, "fig6", driver_meta(opts, bench_names),
      [](const Unit& u) {
        return "fig6:" + u.bench + ":" + std::to_string(u.n);
      },
      [&](const Unit& u, const CancelToken* cancel) {
        Evaluator eval(opts.eval_config(cancel));
        GuardedRows out;
        try {
          const BenchmarkProfile& bench = benchmark_by_name(u.bench);
          const BaselinePoint& base =
              eval.baseline_2d(bench, opts.threshold_c);
          const auto curve = max_ips_curve(eval, bench, u.n, opts, cancel);
          for (const auto& [w, r] : curve) {
            const double cost =
                system_cost_25d(u.n, chiplet_area(eval.config().spec, u.n),
                                w * w, eval.config().cost);
            out.rows.push_back(
                {u.bench, std::to_string(u.n), TextTable::fmt(w, 1),
                 r.found && base.feasible
                     ? TextTable::fmt(r.ips / base.ips, 3)
                     : "n/a",
                 TextTable::fmt(cost / eval.cost_2d(), 3),
                 r.found ? fmt_org(r.org) : "infeasible"});
          }
        } catch (const Error& e) {
          out.rows = {{u.bench, std::to_string(u.n), "-", "n/a", "n/a",
                       quarantine_cell(e)}};
          out.health.quarantined = 1;
        }
        out.health += eval.health();
        return out;
      },
      [](const Unit& u, const CancelledError& c) {
        GuardedRows g;
        g.rows = {{u.bench, std::to_string(u.n), "-", "n/a", "n/a", c.what()}};
        return g;
      });

  TextTable t({"benchmark", "n_chiplets", "interposer_mm", "max_ips_norm",
               "cost_norm", "org"});
  const RunHealth h = merge_guarded(t, blocks);
  if (health) *health = h;
  return t;
}

TextTable fig7_objective_table(const ExperimentOptions& opts,
                               const std::vector<std::string>& bench_names,
                               RunHealth* health) {
  struct Unit {
    std::string bench;
    int n = 0;
  };
  std::vector<Unit> units;
  for (const auto& name : bench_names)
    for (int n : {4, 16}) units.push_back({name, n});
  const std::vector<std::pair<double, double>> weights = {
      {0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5}};

  const std::vector<GuardedRows> blocks = durable_rows_map(
      units, opts.run, "fig7", driver_meta(opts, bench_names),
      [](const Unit& u) {
        return "fig7:" + u.bench + ":" + std::to_string(u.n);
      },
      [&](const Unit& u, const CancelToken* cancel) {
        Evaluator eval(opts.eval_config(cancel));
        GuardedRows out;
        try {
          const BenchmarkProfile& bench = benchmark_by_name(u.bench);
          const BaselinePoint& base =
              eval.baseline_2d(bench, opts.threshold_c);
          const auto curve = max_ips_curve(eval, bench, u.n, opts, cancel);
          for (const auto& [w, r] : curve) {
            const double cost_norm =
                system_cost_25d(u.n, chiplet_area(eval.config().spec, u.n),
                                w * w, eval.config().cost) /
                eval.cost_2d();
            for (const auto& [alpha, beta] : weights) {
              double obj = std::numeric_limits<double>::quiet_NaN();
              if (r.found && base.feasible)
                obj = alpha * base.ips / r.ips + beta * cost_norm;
              else if (r.found)
                obj = beta * cost_norm;  // no feasible 2D point to normalize
              out.rows.push_back(
                  {u.bench, std::to_string(u.n), TextTable::fmt(w, 1),
                   TextTable::fmt(alpha, 1), TextTable::fmt(beta, 1),
                   std::isnan(obj) ? "inf" : TextTable::fmt(obj, 4)});
            }
          }
        } catch (const Error& e) {
          out.rows = {{u.bench, std::to_string(u.n), "-", "-", "-",
                       quarantine_cell(e)}};
          out.health.quarantined = 1;
        }
        out.health += eval.health();
        return out;
      },
      [](const Unit& u, const CancelledError& c) {
        GuardedRows g;
        g.rows = {{u.bench, std::to_string(u.n), "-", "-", "-", c.what()}};
        return g;
      });

  TextTable t({"benchmark", "n_chiplets", "interposer_mm", "alpha", "beta",
               "objective"});
  const RunHealth h = merge_guarded(t, blocks);
  if (health) *health = h;
  return t;
}

TextTable fig8_chosen_orgs_table(const ExperimentOptions& opts,
                                 RunHealth* health) {
  const std::vector<std::string> names = all_benchmark_names();

  const std::vector<GuardedRows> blocks = durable_rows_map(
      names, opts.run, "fig8", driver_meta(opts, names),
      [](const std::string& name) { return "fig8:" + name; },
      [&](const std::string& name, const CancelToken* cancel) {
        Evaluator eval(opts.eval_config(cancel));
        GuardedRows out;
        try {
          const BenchmarkProfile& bench = benchmark_by_name(name);
          const BaselinePoint& base =
              eval.baseline_2d(bench, opts.threshold_c);
          const OptResult res = optimize_greedy(
              eval, bench, opts.optimizer_options(1.0, 0.0, cancel));
          std::ostringstream b2d;
          if (base.feasible)
            b2d << kDvfsLevels[base.dvfs_idx].freq_mhz << "MHz p="
                << base.active_cores;
          else
            b2d << "infeasible";
          out.rows = {
              {name, b2d.str(),
               base.feasible ? TextTable::fmt(base.peak_c, 1) : "n/a",
               res.found ? fmt_org(res.org) : "none",
               res.found
                   ? TextTable::fmt(
                         interposer_edge_of(res.org, eval.config().spec), 1)
                   : "n/a",
               res.found ? TextTable::fmt(res.peak_c, 1) : "n/a",
               res.found && base.feasible
                   ? TextTable::fmt((res.ips / base.ips - 1.0) * 100.0, 1)
                   : "n/a",
               res.found ? TextTable::fmt(
                               (res.cost / eval.cost_2d() - 1.0) * 100.0, 1)
                         : "n/a"}};
        } catch (const Error& e) {
          out.rows = {{name, "-", "n/a", quarantine_cell(e), "n/a", "n/a",
                       "n/a", "n/a"}};
          out.health.quarantined = 1;
        }
        out.health += eval.health();
        return out;
      },
      [](const std::string& name, const CancelledError& c) {
        GuardedRows g;
        g.rows = {{name, "-", "n/a", c.what(), "n/a", "n/a", "n/a", "n/a"}};
        return g;
      });

  TextTable t({"benchmark", "2D_best", "2D_peak_c", "25D_org",
               "interposer_mm", "25D_peak_c", "ips_gain_pct",
               "cost_vs_2D_pct"});
  const RunHealth h = merge_guarded(t, blocks);
  if (health) *health = h;
  return t;
}

TextTable improvement_summary_table(const ExperimentOptions& opts,
                                    RunHealth* health) {
  struct Unit {
    double threshold = 0.0;
    std::string bench;
  };
  std::vector<Unit> units;
  for (double th : {75.0, 85.0, 95.0, 105.0})
    for (const BenchmarkProfile& bench : benchmarks())
      units.push_back({th, std::string(bench.name)});

  // extra[0] carries the unit's finite gain contribution to the
  // per-threshold AVERAGE row, so journal replay reproduces it exactly.
  const std::vector<GuardedRows> outs = durable_rows_map(
      units, opts.run, "improvement_summary",
      driver_meta(opts, all_benchmark_names()),
      [](const Unit& u) {
        return "impr:" + u.bench + ":" + TextTable::fmt(u.threshold, 0);
      },
      [&](const Unit& u, const CancelToken* cancel) {
        Evaluator eval(opts.eval_config(cancel));
        GuardedRows out;
        try {
          ExperimentOptions o = opts;
          o.threshold_c = u.threshold;
          const BenchmarkProfile& bench = benchmark_by_name(u.bench);
          const BaselinePoint& base = eval.baseline_2d(bench, u.threshold);
          // Iso-cost constraint: the largest interposer whose cost does not
          // exceed the single chip's, per chiplet count; take the better n.
          OptimizerOptions oo = o.optimizer_options(1.0, 0.0, cancel);
          Rng rng(opts.seed);
          MaxIpsResult best;
          for (int n : {4, 16}) {
            const double w_eq = iso_cost_interposer(eval, n, opts.w_step_mm);
            if (w_eq <= 0) continue;
            const MaxIpsResult r =
                max_ips_at_interposer(eval, bench, n, w_eq, oo, rng);
            if (r.found && (!best.found || r.ips > best.ips)) best = r;
          }
          double gain = 0.0;
          if (base.feasible && best.found)
            gain = (best.ips / base.ips - 1.0) * 100.0;
          else if (!base.feasible && best.found)
            gain = std::numeric_limits<double>::infinity();
          std::ostringstream b2d;
          if (base.feasible)
            b2d << kDvfsLevels[base.dvfs_idx].freq_mhz << "MHz p="
                << base.active_cores;
          else
            b2d << "infeasible";
          out.extra = {extra_double(std::isfinite(gain) ? gain : 0.0)};
          out.rows.push_back(
              {u.bench, TextTable::fmt(u.threshold, 0), b2d.str(),
               base.feasible ? TextTable::fmt(base.ips, 0) : "n/a",
               best.found ? fmt_org(best.org) : "none",
               best.found ? TextTable::fmt(best.ips, 0) : "n/a",
               TextTable::fmt(gain, 1)});
        } catch (const Error& e) {
          // A quarantined unit contributes gain 0 — the same value an
          // infeasible unit contributes — so the AVERAGE row stays defined.
          out.extra = {extra_double(0.0)};
          out.rows = {{u.bench, TextTable::fmt(u.threshold, 0), "-", "n/a",
                       quarantine_cell(e), "n/a", "n/a"}};
          out.health.quarantined = 1;
        }
        out.health += eval.health();
        return out;
      },
      [](const Unit& u, const CancelledError& c) {
        GuardedRows g;
        g.extra = {extra_double(0.0)};  // timed out ⇒ gain 0, like quarantine
        g.rows = {{u.bench, TextTable::fmt(u.threshold, 0), "-", "n/a",
                   c.what(), "n/a", "n/a"}};
        return g;
      });

  TextTable t({"benchmark", "threshold_c", "2D_best", "2D_ips", "25D_org",
               "25D_ips", "improvement_pct"});
  RunHealth h;
  const int per_th = static_cast<int>(benchmarks().size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (!outs[i].rows.empty()) t.add_row(outs[i].rows.front());
    h += outs[i].health;
    if ((i + 1) % static_cast<std::size_t>(per_th) == 0) {
      double sum_gain = 0.0;
      for (std::size_t j = i + 1 - static_cast<std::size_t>(per_th); j <= i;
           ++j)
        sum_gain += outs[j].extra.empty() ? 0.0
                                          : extra_to_double(outs[j].extra[0]);
      t.add_row({"AVERAGE", TextTable::fmt(units[i].threshold, 0), "", "", "",
                 "", TextTable::fmt(sum_gain / std::max(per_th, 1), 1)});
    }
  }
  if (health) *health = h;
  return t;
}

TextTable iso_performance_cost_table(const ExperimentOptions& opts,
                                     RunHealth* health) {
  const std::vector<std::string> names = all_benchmark_names();

  const std::vector<GuardedRows> blocks = durable_rows_map(
      names, opts.run, "iso_performance", driver_meta(opts, names),
      [](const std::string& name) { return "iso:" + name; },
      [&](const std::string& name, const CancelToken* cancel) {
        Evaluator eval(opts.eval_config(cancel));
        GuardedRows out;
        try {
          const BenchmarkProfile& bench = benchmark_by_name(name);
          OptimizerOptions oo = opts.optimizer_options(1.0, 0.0, cancel);
          const BaselinePoint& base =
              eval.baseline_2d(bench, opts.threshold_c);
          if (!base.feasible) {
            out.rows = {{name, "n/a", "2D infeasible", "", "", ""}};
          } else {
            // Smallest interposer (over n) where some (f, p) with IPS >=
            // IPS_2D is thermally feasible; cost is monotone in W, so scan
            // W ascending.
            bool found = false;
            Organization chosen;
            double chosen_cost = 0.0, chosen_w = 0.0;
            const SystemSpec& spec = eval.config().spec;
            for (double w = min_interposer(spec);
                 w <= spec.max_interposer_mm + 1e-9 && !found;
                 w += opts.w_step_mm) {
              for (int n : {4, 16}) {
                Rng rng(opts.seed);
                const MaxIpsResult r =
                    max_ips_at_interposer(eval, bench, n, w, oo, rng);
                if (r.found && r.ips >= base.ips - 1e-9) {
                  const double c = system_cost_25d(n, chiplet_area(spec, n),
                                                   w * w, eval.config().cost);
                  if (!found || c < chosen_cost) {
                    found = true;
                    chosen = r.org;
                    chosen_cost = c;
                    chosen_w = w;
                  }
                }
              }
            }
            out.rows = {
                {name, TextTable::fmt(base.ips, 0),
                 found ? fmt_org(chosen) : "none",
                 found ? TextTable::fmt(chosen_w, 1) : "n/a",
                 found ? TextTable::fmt(chosen_cost / eval.cost_2d(), 3)
                       : "n/a",
                 found ? TextTable::fmt(
                             (1.0 - chosen_cost / eval.cost_2d()) * 100.0, 1)
                       : "n/a"}};
          }
        } catch (const Error& e) {
          out.rows = {{name, "n/a", quarantine_cell(e), "n/a", "n/a", "n/a"}};
          out.health.quarantined = 1;
        }
        out.health += eval.health();
        return out;
      },
      [](const std::string& name, const CancelledError& c) {
        GuardedRows g;
        g.rows = {{name, "n/a", c.what(), "n/a", "n/a", "n/a"}};
        return g;
      });

  TextTable t({"benchmark", "2D_ips", "min_cost_org", "interposer_mm",
               "cost_norm", "cost_saving_pct"});
  const RunHealth h = merge_guarded(t, blocks);
  if (health) *health = h;
  return t;
}

TextTable greedy_validation_table(const ExperimentOptions& opts,
                                  RunHealth* health) {
  // Two comparisons, following §III-D:
  //  * correctness: the greedy must find the same optimum as exhaustive
  //    search.  Because combinations are scanned in ascending objective
  //    order, an exhaustive search that stops at the first combination
  //    with a feasible placement provably returns the global optimum, so
  //    the (cheap) early-stopping exhaustive is an exact oracle;
  //  * cost: the paper's 400x compares the greedy's simulations against
  //    sweeping the whole design space (~680k organizations per benchmark
  //    at 0.5 mm granularity), so the savings column uses the full space
  //    size at this run's granularity.
  const std::vector<std::string> names = all_benchmark_names();

  // extra = {agree, excluded, greedy_evals, space}: the TOTAL row's inputs,
  // journaled so replay reproduces it.  `excluded` marks units that do not
  // enter the agreement totals (quarantined or timed out).
  const std::vector<GuardedRows> outs = durable_rows_map(
      names, opts.run, "greedy_validation", driver_meta(opts, names),
      [](const std::string& name) { return "e9:" + name; },
      [&](const std::string& name, const CancelToken* cancel) {
        // Separate evaluators so shared caches do not distort the counts.
        Evaluator eval_g(opts.eval_config(cancel));
        Evaluator eval_e(opts.eval_config(cancel));
        GuardedRows out;
        try {
          const BenchmarkProfile& bench = benchmark_by_name(name);
          OptimizerOptions oo = opts.optimizer_options(1.0, 0.0, cancel);
          oo.prune_margin_c = 0.0;  // exact greedy semantics for comparison
          const OptResult g = optimize_greedy(eval_g, bench, oo);
          const OptResult e = optimize_exhaustive(eval_e, bench, oo);
          const std::size_t space = design_space_size(eval_g, oo);
          const bool agree =
              g.found == e.found &&
              (!g.found || std::abs(g.objective - e.objective) < 1e-9);
          const std::size_t g_evals = eval_g.eval_count();
          out.extra = {agree ? "1" : "0", "0", std::to_string(g_evals),
                       std::to_string(space)};
          out.rows = {
              {name, g.found ? TextTable::fmt(g.objective, 4) : "none",
               e.found ? TextTable::fmt(e.objective, 4) : "none",
               agree ? "yes" : "NO", std::to_string(g_evals),
               std::to_string(space),
               g_evals > 0
                   ? TextTable::fmt(static_cast<double>(space) /
                                        static_cast<double>(g_evals),
                                    0) +
                         "x"
                   : "n/a"}};
        } catch (const Error& e) {
          out.extra = {"0", "1", "0", "0"};
          out.rows = {{name, "none", "none", quarantine_cell(e), "0", "0",
                       "n/a"}};
          out.health.quarantined = 1;
        }
        out.health += eval_g.health();
        out.health += eval_e.health();
        return out;
      },
      [](const std::string& name, const CancelledError& c) {
        GuardedRows g;
        g.extra = {"0", "1", "0", "0"};
        g.rows = {{name, "none", "none", c.what(), "0", "0", "n/a"}};
        return g;
      });

  TextTable t({"benchmark", "greedy_obj", "oracle_obj", "agree",
               "greedy_evals", "full_space_evals", "savings"});
  RunHealth h;
  int agree_count = 0, total = 0;
  std::size_t g_evals_sum = 0;
  std::size_t space = 0;
  for (const GuardedRows& o : outs) {
    h += o.health;
    if (o.rows.empty()) continue;  // interrupted — the run is exiting
    t.add_row(o.rows.front());
    if (o.extra.size() != 4 || o.extra[1] == "1")
      continue;  // excluded from the agreement totals
    agree_count += o.extra[0] == "1" ? 1 : 0;
    ++total;
    g_evals_sum += static_cast<std::size_t>(std::stoull(o.extra[2]));
    space = static_cast<std::size_t>(std::stoull(o.extra[3]));
  }
  t.add_row({"TOTAL",
             TextTable::fmt(100.0 * agree_count / std::max(total, 1), 0) +
                 "% agree",
             "", "", std::to_string(g_evals_sum),
             std::to_string(space * static_cast<std::size_t>(total)),
             g_evals_sum > 0
                 ? TextTable::fmt(static_cast<double>(space) *
                                      static_cast<double>(total) /
                                      static_cast<double>(g_evals_sum),
                                  0) +
                       "x"
                 : "n/a"});
  if (health) *health = h;
  return t;
}

}  // namespace tacos
