#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/errors.hpp"
#include "core/leakage.hpp"
#include "obs/trace.hpp"

namespace tacos {

Evaluator::LayoutKey Evaluator::LayoutKey::of(const Organization& org) {
  const auto q = [](double v) { return std::lround(v * 100.0); };
  if (org.n_chiplets == 1) return LayoutKey{1, 0, 0, 0};
  return LayoutKey{org.n_chiplets, q(org.spacing.s1), q(org.spacing.s2),
                   q(org.spacing.s3)};
}

Evaluator::Evaluator(EvalConfig config) : config_(std::move(config)) {
  config_.spec.validate();
  config_.cost.validate();
  const double chip_area =
      config_.spec.chip_edge_mm() * config_.spec.chip_edge_mm();
  cost_2d_ = single_chip_cost(chip_area, config_.cost);
}

int Evaluator::bench_index(const BenchmarkProfile& bench) const {
  const auto& all = benchmarks();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i].name == bench.name) return static_cast<int>(i);
  TACOS_CHECK(false, "benchmark " << bench.name
                                  << " is not in the registered set");
  return -1;  // unreachable
}

std::shared_ptr<Evaluator::ModelEntry> Evaluator::model_for(
    const Organization& org) {
  const LayoutKey key = LayoutKey::of(org);
  if (auto it = model_index_.find(key); it != model_index_.end()) {
    model_lru_.splice(model_lru_.begin(), model_lru_, it->second);
    return model_lru_.front().second;
  }
  auto entry = std::make_shared<ModelEntry>();
  entry->layout =
      std::make_unique<ChipletLayout>(layout_for(org, config_.spec));
  const LayerStack stack =
      org.n_chiplets == 1 ? make_2d_stack() : make_25d_stack();
  entry->model =
      std::make_unique<ThermalModel>(*entry->layout, stack, config_.thermal);
  // All models of this shard share one ledger: the fault plan's solve
  // clock keeps ticking across model-cache evictions, and the health
  // counters survive them.
  entry->model->set_ledger(&ledger_);
  model_lru_.emplace_front(key, entry);
  model_index_[key] = model_lru_.begin();
  // Eviction only drops the cache's reference; the shared handle we are
  // about to return keeps the new entry alive for the caller even when
  // capacity is 0 and the entry is evicted immediately.
  while (model_lru_.size() > config_.model_cache_capacity) {
    model_index_.erase(model_lru_.back().first);
    model_lru_.pop_back();
  }
  return entry;
}

double Evaluator::reference_power(const Organization& org,
                                  const BenchmarkProfile& bench) const {
  const DvfsLevel& lvl = level_of(org);
  const double per_core =
      core_dynamic_power_w(bench, lvl, config_.power) +
      core_leakage_power_w(bench, lvl, config_.power.t_ref_c, config_.power);
  // Mesh power is computed per layout; for the frontier abscissa a
  // layout-independent estimate suffices (it shifts all entries equally
  // for a given benchmark/level; the safety margin absorbs the rest).
  return org.active_cores * per_core;
}

const ThermalEval& Evaluator::thermal_eval(const Organization& org,
                                           const BenchmarkProfile& bench) {
  const EvalKey key{LayoutKey::of(org), bench_index(bench), org.dvfs_idx,
                    org.active_cores};
  if (auto it = eval_memo_.find(key); it != eval_memo_.end())
    return it->second;

  // Cache misses only: a memo hit costs nothing and traces nothing.
  static obs::SpanSite eval_site("eval.thermal", "eval");
  obs::TraceSpan span(eval_site);
  if (span.active()) {
    span.arg("n", static_cast<std::int64_t>(org.n_chiplets));
    span.arg("bench", std::string(bench.name));
    span.arg("f", static_cast<std::int64_t>(org.dvfs_idx));
    span.arg("p", static_cast<std::int64_t>(org.active_cores));
  }

  const std::shared_ptr<ModelEntry> entry = model_for(org);
  const DvfsLevel& lvl = level_of(org);
  const std::vector<int> active =
      active_tiles(config_.policy, org.active_cores, config_.spec);

  LeakageResult lr;
  try {
    lr = run_leakage_fixed_point(
        *entry->model, *entry->layout, bench, lvl, active, config_.power,
        config_.leak_tol_c, config_.max_leak_iters,
        config_.thermal.solve.fault.leak_force_nonconverge);
  } catch (const Error& e) {
    // The thermal stack already exhausted its recovery ladder (or rejected
    // a non-finite input); add the organization context for quarantine
    // diagnostics and rethrow as an evaluation failure.
    std::ostringstream key_os;
    key_os << "n=" << org.n_chiplets << " s=(" << org.spacing.s1 << " "
           << org.spacing.s2 << " " << org.spacing.s3 << ")";
    throw EvalError(key_os.str(), std::string(bench.name), org.dvfs_idx,
                    org.active_cores, e.what());
  }
  ThermalEval ev;
  ev.peak_c = lr.peak_c;
  ev.total_power_w = lr.total_power_w;
  ev.leak_iterations = lr.iterations;
  ev.solves = static_cast<std::size_t>(lr.iterations);
  ev.leak_converged = lr.converged;
  if (!lr.converged) ++ledger_.health.leak_nonconverged;
  solve_count_ += ev.solves;
  ++eval_count_;

  // Record in the monotone frontier — converged evaluations only.  An
  // unconverged peak is the last iterate of an unsettled fixed point, not
  // a trustworthy monotone bound; letting it into the frontier would have
  // feasible() short-circuit later queries off a bad number.  (The memo
  // above still records it, explicitly flagged via leak_converged.  A
  // quarantined evaluation — EvalError above — records nothing at all.)
  if (lr.converged)
    frontier_[FrontierKey{key.layout, org.active_cores}].emplace_back(
        reference_power(org, bench), ev.peak_c);

  return eval_memo_.emplace(key, ev).first->second;
}

bool Evaluator::feasible(const Organization& org,
                         const BenchmarkProfile& bench, double threshold_c) {
  const EvalKey key{LayoutKey::of(org), bench_index(bench), org.dvfs_idx,
                    org.active_cores};
  if (auto it = eval_memo_.find(key); it != eval_memo_.end())
    return it->second.peak_c <= threshold_c;

  // Monotone frontier: for the same layout and active-core pattern, peak
  // temperature grows with injected power.
  if (auto it = frontier_.find(FrontierKey{key.layout, org.active_cores});
      it != frontier_.end()) {
    const double p_ref = reference_power(org, bench);
    const double margin = config_.frontier_margin_c;
    for (const auto& [p_known, peak_known] : it->second) {
      if (p_known >= p_ref && peak_known <= threshold_c - margin)
        return true;  // even more power stayed comfortably below
      if (p_known <= p_ref && peak_known > threshold_c + margin)
        return false;  // even less power was clearly above
    }
  }
  return thermal_eval(org, bench).peak_c <= threshold_c;
}

double Evaluator::ips(const Organization& org,
                      const BenchmarkProfile& bench) const {
  static obs::SpanSite perf_site("eval.perf", "eval");
  obs::TraceSpan span(perf_site);
  return system_ips(bench, level_of(org).freq_mhz, org.active_cores);
}

double Evaluator::cost(const Organization& org) const {
  static obs::SpanSite cost_site("eval.cost", "eval");
  obs::TraceSpan span(cost_site);
  if (org.n_chiplets == 1) return cost_2d_;
  const double edge = interposer_edge_of(org, config_.spec);
  const double chiplet_edge =
      config_.spec.chip_edge_mm() / (org.n_chiplets == 4 ? 2 : 4);
  return system_cost_25d(org.n_chiplets, chiplet_edge * chiplet_edge,
                         edge * edge, config_.cost);
}

const BaselinePoint& Evaluator::baseline_2d(const BenchmarkProfile& bench,
                                            double threshold_c) {
  const auto key = std::make_pair(bench_index(bench),
                                  std::lround(threshold_c * 100.0));
  if (auto it = baseline_memo_.find(key); it != baseline_memo_.end())
    return it->second;

  static obs::SpanSite baseline_site("eval.baseline", "eval");
  obs::TraceSpan span(baseline_site);
  span.arg("bench", std::string(bench.name));

  // Enumerate the 40 (f, p) pairs in descending IPS order and return the
  // first thermally feasible one.
  struct Cand {
    std::size_t f;
    int p;
    double ips;
  };
  std::vector<Cand> cands;
  for (std::size_t f = 0; f < kDvfsLevelCount; ++f)
    for (int p : kActiveCoreChoices)
      cands.push_back({f, p, system_ips(bench, kDvfsLevels[f].freq_mhz, p)});
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.ips > b.ips; });

  BaselinePoint best;
  best.feasible = false;  // explicit: stays infeasible if nothing fits
  for (const Cand& c : cands) {
    Organization org{1, {}, c.f, c.p};
    if (feasible(org, bench, threshold_c)) {
      best.dvfs_idx = c.f;
      best.active_cores = c.p;
      best.ips = c.ips;
      best.peak_c = thermal_eval(org, bench).peak_c;
      best.feasible = true;
      break;
    }
  }
  // Memoized either way: an infeasible threshold is a legitimate, stable
  // answer (feasible == false), not a cache miss to retry.
  return baseline_memo_.emplace(key, best).first->second;
}

}  // namespace tacos
