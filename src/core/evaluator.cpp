#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/errors.hpp"
#include "core/leakage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "thermal/adjoint.hpp"

namespace tacos {

const char* fidelity_mode_name(FidelityMode m) {
  switch (m) {
    case FidelityMode::kAuto:
      return "auto";
    case FidelityMode::kFull:
      return "full";
    case FidelityMode::kLadder:
      return "ladder";
  }
  return "?";
}

std::optional<FidelityMode> parse_fidelity_mode(std::string_view s) {
  if (s == "auto") return FidelityMode::kAuto;
  if (s == "full") return FidelityMode::kFull;
  if (s == "ladder") return FidelityMode::kLadder;
  return std::nullopt;
}

Evaluator::LayoutKey Evaluator::LayoutKey::of(const Organization& org) {
  // 1 nm quantization: coarser keys (the historical 0.01 mm) collide for
  // the off-grid spacings the continuous refinement stage produces, which
  // would alias distinct layouts onto one cached model/memo entry.
  const auto q = [](double v) { return std::lround(v * 1e6); };
  if (org.n_chiplets == 1) return LayoutKey{1, 0, 0, 0};
  return LayoutKey{org.n_chiplets, q(org.spacing.s1), q(org.spacing.s2),
                   q(org.spacing.s3)};
}

Evaluator::Evaluator(EvalConfig config) : config_(std::move(config)) {
  config_.spec.validate();
  config_.cost.validate();
  const double chip_area =
      config_.spec.chip_edge_mm() * config_.spec.chip_edge_mm();
  cost_2d_ = single_chip_cost(chip_area, config_.cost);
  // Resolve kAuto once, at construction: the ladder needs a grid with a
  // meaningful Galerkin coarse level for rung 1 to pay off.
  if (config_.ladder.mode == FidelityMode::kAuto)
    config_.ladder.mode = config_.thermal.grid_nx >= 16
                              ? FidelityMode::kLadder
                              : FidelityMode::kFull;
}

int Evaluator::bench_index(const BenchmarkProfile& bench) const {
  const auto& all = benchmarks();
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i].name == bench.name) return static_cast<int>(i);
  TACOS_CHECK(false, "benchmark " << bench.name
                                  << " is not in the registered set");
  return -1;  // unreachable
}

std::shared_ptr<Evaluator::ModelEntry> Evaluator::model_for(
    const Organization& org) {
  const LayoutKey key = LayoutKey::of(org);
  if (auto it = model_index_.find(key); it != model_index_.end()) {
    model_lru_.splice(model_lru_.begin(), model_lru_, it->second);
    return model_lru_.front().second;
  }
  auto entry = std::make_shared<ModelEntry>();
  entry->layout =
      std::make_unique<ChipletLayout>(layout_for(org, config_.spec));
  const LayerStack stack =
      org.n_chiplets == 1 ? make_2d_stack() : make_25d_stack();
  entry->model =
      std::make_unique<ThermalModel>(*entry->layout, stack, config_.thermal);
  // All models of this shard share one ledger: the fault plan's solve
  // clock keeps ticking across model-cache evictions, and the health
  // counters survive them.
  entry->model->set_ledger(&ledger_);
  model_lru_.emplace_front(key, entry);
  model_index_[key] = model_lru_.begin();
  // Eviction only drops the cache's reference; the shared handle we are
  // about to return keeps the new entry alive for the caller even when
  // capacity is 0 and the entry is evicted immediately.
  while (model_lru_.size() > config_.model_cache_capacity) {
    model_index_.erase(model_lru_.back().first);
    model_lru_.pop_back();
  }
  return entry;
}

double Evaluator::reference_power(const Organization& org,
                                  const BenchmarkProfile& bench) const {
  const DvfsLevel& lvl = level_of(org);
  const double per_core =
      core_dynamic_power_w(bench, lvl, config_.power) +
      core_leakage_power_w(bench, lvl, config_.power.t_ref_c, config_.power);
  // Mesh power is computed per layout; for the frontier abscissa a
  // layout-independent estimate suffices (it shifts all entries equally
  // for a given benchmark/level; the safety margin absorbs the rest).
  return org.active_cores * per_core;
}

const ThermalEval& Evaluator::thermal_eval(const Organization& org,
                                           const BenchmarkProfile& bench) {
  const EvalKey key{LayoutKey::of(org), bench_index(bench), org.dvfs_idx,
                    org.active_cores};
  if (auto it = eval_memo_.find(key); it != eval_memo_.end())
    return it->second;

  // Cache misses only: a memo hit costs nothing and traces nothing.
  static obs::SpanSite eval_site("eval.thermal", "eval");
  obs::TraceSpan span(eval_site);
  if (span.active()) {
    span.arg("n", static_cast<std::int64_t>(org.n_chiplets));
    span.arg("bench", std::string(bench.name));
    span.arg("f", static_cast<std::int64_t>(org.dvfs_idx));
    span.arg("p", static_cast<std::int64_t>(org.active_cores));
  }

  const std::shared_ptr<ModelEntry> entry = model_for(org);
  const DvfsLevel& lvl = level_of(org);
  const std::vector<int> active =
      active_tiles(config_.policy, org.active_cores, config_.spec);

  LeakageResult lr;
  try {
    lr = run_leakage_fixed_point(
        *entry->model, *entry->layout, bench, lvl, active, config_.power,
        config_.leak_tol_c, config_.max_leak_iters,
        config_.thermal.solve.fault.leak_force_nonconverge);
  } catch (const Error& e) {
    // The thermal stack already exhausted its recovery ladder (or rejected
    // a non-finite input); add the organization context for quarantine
    // diagnostics and rethrow as an evaluation failure.
    std::ostringstream key_os;
    key_os << "n=" << org.n_chiplets << " s=(" << org.spacing.s1 << " "
           << org.spacing.s2 << " " << org.spacing.s3 << ")";
    throw EvalError(key_os.str(), std::string(bench.name), org.dvfs_idx,
                    org.active_cores, e.what());
  }
  ThermalEval ev;
  ev.peak_c = lr.peak_c;
  ev.total_power_w = lr.total_power_w;
  ev.leak_iterations = lr.iterations;
  ev.solves = static_cast<std::size_t>(lr.iterations);
  ev.leak_converged = lr.converged;
  if (!lr.converged) ++ledger_.health.leak_nonconverged;
  solve_count_ += ev.solves;
  ++eval_count_;

  // Record in the monotone frontier — converged evaluations only.  An
  // unconverged peak is the last iterate of an unsettled fixed point, not
  // a trustworthy monotone bound; letting it into the frontier would have
  // feasible() short-circuit later queries off a bad number.  (The memo
  // above still records it, explicitly flagged via leak_converged.  A
  // quarantined evaluation — EvalError above — records nothing at all.)
  if (lr.converged)
    frontier_[FrontierKey{key.layout, org.active_cores}].emplace_back(
        reference_power(org, bench), ev.peak_c);

  // Ladder bookkeeping: close out any pending rung estimates for this
  // candidate (they calibrate the rungs' residual bounds) and feed the
  // rung-0 surrogate one training sample.
  if (ladder_active()) record_full_result(key, org, bench, ev, lr.converged);

  return eval_memo_.emplace(key, ev).first->second;
}

Evaluator::PeakGradient Evaluator::peak_gradient(
    const Organization& org, const BenchmarkProfile& bench) {
  TACOS_CHECK(org.n_chiplets == 16,
              "spacing gradients are defined for the 16-chiplet "
              "organization only (got n="
                  << org.n_chiplets << ")");
  static obs::SpanSite grad_site("refine.gradient", "refine");
  obs::TraceSpan span(grad_site);
  if (span.active()) {
    span.arg("bench", std::string(bench.name));
    span.arg("f", static_cast<std::int64_t>(org.dvfs_idx));
    span.arg("p", static_cast<std::int64_t>(org.active_cores));
  }

  const std::shared_ptr<ModelEntry> entry = model_for(org);
  const DvfsLevel& lvl = level_of(org);
  const std::vector<int> active =
      active_tiles(config_.policy, org.active_cores, config_.spec);

  const auto rethrow = [&](const Error& e) {
    std::ostringstream key_os;
    key_os << "n=" << org.n_chiplets << " s=(" << org.spacing.s1 << " "
           << org.spacing.s2 << " " << org.spacing.s3 << ")";
    throw EvalError(key_os.str(), std::string(bench.name), org.dvfs_idx,
                    org.active_cores, e.what());
  };

  // The adjoint identity needs a consistent (q, T) pair.  On fixed-point
  // convergence the model's field was solved against the *previous*
  // iterate's power map, so converge the loop, rebuild the map from the
  // final tile temperatures (recording source ownership for the rigid-
  // translation geometry), and pay one more forward solve.
  LeakageResult lr;
  try {
    lr = run_leakage_fixed_point(
        *entry->model, *entry->layout, bench, lvl, active, config_.power,
        config_.leak_tol_c, config_.max_leak_iters,
        config_.thermal.solve.fault.leak_force_nonconverge);
  } catch (const Error& e) {
    rethrow(e);
  }
  const std::vector<double> tile_temps = entry->model->tile_temperatures();
  std::vector<int> source_chiplet;
  const PowerMap pm =
      build_power_map(*entry->layout, bench, lvl, active, tile_temps,
                      config_.power, 1.0, &source_chiplet);
  ThermalResult tr;
  try {
    tr = entry->model->solve(pm);
  } catch (const Error& e) {
    rethrow(e);
  }
  solve_count_ += static_cast<std::size_t>(lr.iterations) + 1;

  ThermalModel::AdjointInfo ainfo;
  const std::vector<double>& lambda = entry->model->adjoint_peak(&ainfo);
  ++refine_stats_.adjoint_solves;
  if (obs::metrics_enabled()) {
    static obs::Counter adjoints =
        obs::MetricsRegistry::global().counter("refine.adjoint_solves");
    adjoints.add();
  }
  if (span.active())
    span.arg("adjoint_iters", static_cast<std::int64_t>(ainfo.iterations));

  PeakGradient g;
  g.peak_c = tr.peak_c;
  for (int param = 0; param < 2; ++param) {
    const std::vector<ChipletVelocity> vel =
        org16_spacing_velocities(*entry->layout, param);
    const double d = peak_spacing_gradient(*entry->model, lambda, pm,
                                           source_chiplet, *entry->layout,
                                           vel);
    (param == 0 ? g.d_s1 : g.d_s2) = d;
  }
  return g;
}

std::optional<bool> Evaluator::frontier_verdict(const EvalKey& key,
                                                const Organization& org,
                                                const BenchmarkProfile& bench,
                                                double threshold_c) const {
  // Monotone frontier: for the same layout and active-core pattern, peak
  // temperature grows with injected power.
  const auto it = frontier_.find(FrontierKey{key.layout, org.active_cores});
  if (it == frontier_.end()) return std::nullopt;
  const double p_ref = reference_power(org, bench);
  const double margin = config_.frontier_margin_c;
  for (const auto& [p_known, peak_known] : it->second) {
    if (p_known >= p_ref && peak_known <= threshold_c - margin)
      return true;  // even more power stayed comfortably below
    if (p_known <= p_ref && peak_known > threshold_c + margin)
      return false;  // even less power was clearly above
  }
  return std::nullopt;
}

bool Evaluator::feasible(const Organization& org,
                         const BenchmarkProfile& bench, double threshold_c) {
  const EvalKey key{LayoutKey::of(org), bench_index(bench), org.dvfs_idx,
                    org.active_cores};
  if (auto it = eval_memo_.find(key); it != eval_memo_.end())
    return it->second.peak_c <= threshold_c;
  if (const auto v = frontier_verdict(key, org, bench, threshold_c)) return *v;
  return thermal_eval(org, bench).peak_c <= threshold_c;
}

double Evaluator::ips(const Organization& org,
                      const BenchmarkProfile& bench) const {
  static obs::SpanSite perf_site("eval.perf", "eval");
  obs::TraceSpan span(perf_site);
  return system_ips(bench, level_of(org).freq_mhz, org.active_cores);
}

double Evaluator::cost(const Organization& org) const {
  static obs::SpanSite cost_site("eval.cost", "eval");
  obs::TraceSpan span(cost_site);
  if (org.n_chiplets == 1) return cost_2d_;
  const double edge = interposer_edge_of(org, config_.spec);
  const double chiplet_edge =
      config_.spec.chip_edge_mm() / (org.n_chiplets == 4 ? 2 : 4);
  return system_cost_25d(org.n_chiplets, chiplet_edge * chiplet_edge,
                         edge * edge, config_.cost);
}

const BaselinePoint& Evaluator::baseline_2d(const BenchmarkProfile& bench,
                                            double threshold_c) {
  const auto key = std::make_pair(bench_index(bench),
                                  std::lround(threshold_c * 100.0));
  if (auto it = baseline_memo_.find(key); it != baseline_memo_.end())
    return it->second;

  static obs::SpanSite baseline_site("eval.baseline", "eval");
  obs::TraceSpan span(baseline_site);
  span.arg("bench", std::string(bench.name));

  // Enumerate the 40 (f, p) pairs in descending IPS order and return the
  // first thermally feasible one.
  struct Cand {
    std::size_t f;
    int p;
    double ips;
  };
  std::vector<Cand> cands;
  for (std::size_t f = 0; f < kDvfsLevelCount; ++f)
    for (int p : kActiveCoreChoices)
      cands.push_back({f, p, system_ips(bench, kDvfsLevels[f].freq_mhz, p)});
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.ips > b.ips; });

  BaselinePoint best;
  best.feasible = false;  // explicit: stays infeasible if nothing fits
  for (const Cand& c : cands) {
    Organization org{1, {}, c.f, c.p};
    // Fidelity ladder: skip candidates a calibrated rung confidently puts
    // above the threshold — the same verdict (infeasible → next candidate)
    // the full walk would reach, minus the leakage fixed point.
    if (screen_infeasible(org, bench, threshold_c)) continue;
    if (feasible(org, bench, threshold_c)) {
      best.dvfs_idx = c.f;
      best.active_cores = c.p;
      best.ips = c.ips;
      best.peak_c = thermal_eval(org, bench).peak_c;
      best.feasible = true;
      break;
    }
  }
  // Memoized either way: an infeasible threshold is a legitimate, stable
  // answer (feasible == false), not a cache miss to retry.
  return baseline_memo_.emplace(key, best).first->second;
}

// --- Fidelity ladder ---------------------------------------------------

std::array<double, kSurrogateFeatures> Evaluator::features_of(
    const Organization& org, const BenchmarkProfile& bench) const {
  return PeakSurrogate::features(org.n_chiplets, org.spacing.s1,
                                 org.spacing.s2, org.spacing.s3,
                                 level_of(org).freq_mhz, org.active_cores,
                                 reference_power(org, bench));
}

int Evaluator::rung_verdict(int rung, const EvalKey& key, double est_c,
                            double reject_above_c) const {
  const auto it = calib_.find(RungKey{rung, key.bench_idx, key.layout.n});
  if (it == calib_.end() || it->second.count < config_.ladder.min_calibration)
    return 0;  // uncalibrated: this rung has no opinion yet
  const ResidBound& b = it->second;
  const double margin = config_.ladder.safety_margin_c;
  // Early promotion: even the most pessimistic calibrated residual keeps
  // the candidate clear of the rejection threshold, so no higher rung
  // could reject it — skip them.  This direction is winner-safe even when
  // extrapolated (a missed reject costs time, never correctness), so the
  // global max_resid suffices.
  if (est_c + b.max_resid + margin <= reject_above_c) return -1;
  // Rejection: min_resid is the most optimistic full − estimate seen
  // out-of-sample; even if this estimate errs as far low as any before
  // it, the candidate still clears the threshold by the safety margin.
  // The statistical rungs (surrogate, coarse) additionally require the
  // estimate to sit inside the calibrated band — their bias drifts with
  // operating point, and extrapolating the bound is how feasible
  // candidates get wrongly screened out.  The medium rung's
  // discretization bias is small and stable, so it rejects globally.
  const bool in_band = est_c >= b.est_lo && est_c <= b.est_hi;
  if ((rung == 2 || in_band) &&
      est_c + b.min_resid - margin > reject_above_c)
    return 1;
  return 0;
}

bool Evaluator::medium_available() {
  if (!medium_init_) {
    medium_init_ = true;
    const std::size_t nx = config_.thermal.grid_nx / 2;
    const std::size_t ny = config_.thermal.grid_ny / 2;
    if (nx >= config_.ladder.medium_grid_min &&
        ny >= config_.ladder.medium_grid_min) {
      medium_thermal_ = config_.thermal;
      medium_thermal_->grid_nx = nx;
      medium_thermal_->grid_ny = ny;
      // Screening solves keep their own clean fault clock: the plan's
      // pcg_fail_* indices target the full path, coarse_fail_* targets
      // rung 1.  (The cancel token is inherited — screening must stay
      // responsive to batch shutdown.)
      medium_thermal_->solve.fault = FaultPlan{};
    }
  }
  return medium_thermal_.has_value();
}

std::shared_ptr<Evaluator::ModelEntry> Evaluator::medium_model_for(
    const Organization& org) {
  const LayoutKey key = LayoutKey::of(org);
  if (auto it = medium_index_.find(key); it != medium_index_.end()) {
    medium_lru_.splice(medium_lru_.begin(), medium_lru_, it->second);
    return medium_lru_.front().second;
  }
  auto entry = std::make_shared<ModelEntry>();
  entry->layout =
      std::make_unique<ChipletLayout>(layout_for(org, config_.spec));
  const LayerStack stack =
      org.n_chiplets == 1 ? make_2d_stack() : make_25d_stack();
  entry->model =
      std::make_unique<ThermalModel>(*entry->layout, stack, *medium_thermal_);
  entry->model->set_ledger(&medium_ledger_);
  medium_lru_.emplace_front(key, entry);
  medium_index_[key] = medium_lru_.begin();
  while (medium_lru_.size() > config_.model_cache_capacity) {
    medium_index_.erase(medium_lru_.back().first);
    medium_lru_.pop_back();
  }
  return entry;
}

bool Evaluator::audit_due() {
  ++confident_rejects_;
  const double f = config_.ladder.keep_frac;
  return f > 0.0 &&
         static_cast<std::size_t>(static_cast<double>(confident_rejects_) *
                                  f) >
             static_cast<std::size_t>(
                 static_cast<double>(confident_rejects_ - 1) * f);
}

std::optional<double> Evaluator::medium_estimate(const EvalKey& key,
                                                 const Organization& org,
                                                 const BenchmarkProfile& bench,
                                                 bool* fresh) {
  *fresh = false;
  if (!medium_available()) return std::nullopt;
  if (auto it = medium_memo_.find(key); it != medium_memo_.end())
    return it->second;
  *fresh = true;
  static obs::SpanSite r2_site("eval.rung2", "eval");
  obs::TraceSpan span(r2_site);
  try {
    const std::shared_ptr<ModelEntry> entry = medium_model_for(org);
    const std::vector<int> active =
        active_tiles(config_.policy, org.active_cores, config_.spec);
    const LeakageResult lr = run_leakage_fixed_point(
        *entry->model, *entry->layout, bench, level_of(org), active,
        config_.power,
        std::max(config_.leak_tol_c, config_.ladder.medium_leak_tol_c),
        config_.max_leak_iters);
    ladder_stats_.medium_solves += static_cast<std::size_t>(lr.iterations);
    if (span.active()) span.arg("est_c", lr.peak_c);
    if (!lr.converged) return std::nullopt;
    medium_memo_.emplace(key, lr.peak_c);
    constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
    pending_est_
        .try_emplace(key, std::array<double, 3>{kNaN, kNaN, kNaN})
        .first->second[2] = lr.peak_c;
    return lr.peak_c;
  } catch (const Error&) {
    ++ladder_stats_.medium_failures;
    return std::nullopt;
  }
}

bool Evaluator::screen_infeasible(const Organization& org,
                                  const BenchmarkProfile& bench,
                                  double reject_above_c) {
  if (!ladder_active()) return false;
  const EvalKey key{LayoutKey::of(org), bench_index(bench), org.dvfs_idx,
                    org.active_cores};
  // An exact memoized answer beats every rung (and costs nothing).  Only
  // converged results reject — same discipline as the frontier.
  if (auto it = eval_memo_.find(key); it != eval_memo_.end())
    return it->second.leak_converged && it->second.peak_c > reject_above_c;

  ++ladder_stats_.screened;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const auto pit =
      pending_est_.try_emplace(key, std::array<double, 3>{kNaN, kNaN, kNaN})
          .first;

  // A confident reject at any rung lands here; the keep-frac audit
  // promotes a deterministic fraction of rejects anyway so the
  // calibration bounds keep being tested against full results.
  const auto reject_verdict = [&]() {
    if (audit_due()) {
      ++ladder_stats_.audits;
      ++ladder_stats_.promoted;
      return false;  // pending estimates stay; the full eval closes them
    }
    ++ladder_stats_.rejected;
    return true;
  };

  // Rung 0: trained surrogate (sub-microsecond).
  if (auto sit = surrogates_.find(key.bench_idx);
      sit != surrogates_.end() && sit->second.ready()) {
    static obs::SpanSite r0_site("eval.rung0", "eval");
    obs::TraceSpan span(r0_site);
    const std::size_t fits_before = sit->second.fit_count();
    const double est = sit->second.predict(features_of(org, bench));
    ladder_stats_.surrogate_fits += sit->second.fit_count() - fits_before;
    ++ladder_stats_.surrogate_scores;
    if (span.active()) span.arg("est_c", est);
    pit->second[0] = est;
    const int v = rung_verdict(0, key, est, reject_above_c);
    if (v > 0) return reject_verdict();
    if (v < 0) {
      ++ladder_stats_.promoted;
      return false;  // clearly cool: skip the solve rungs entirely
    }
  }

  // Rung 1: one Jacobi-PCG solve on the multigrid hierarchy's first
  // Galerkin coarse operator (reuses the full model's assembly).  Any
  // failure — including an injected FaultPlan::coarse_fail_* — promotes.
  {
    static obs::SpanSite r1_site("eval.rung1", "eval");
    obs::TraceSpan span(r1_site);
    try {
      const std::shared_ptr<ModelEntry> entry = model_for(org);
      const std::vector<int> active =
          active_tiles(config_.policy, org.active_cores, config_.spec);
      const PowerMap pm =
          build_power_map(*entry->layout, bench, level_of(org), active,
                          std::nullopt, config_.power);
      const double est = entry->model->coarse_peak_estimate(pm);
      ++ladder_stats_.coarse_solves;
      if (span.active()) span.arg("est_c", est);
      pit->second[1] = est;
      const int v = rung_verdict(1, key, est, reject_above_c);
      if (v > 0) return reject_verdict();
      if (v < 0) {
        ++ladder_stats_.promoted;
        return false;  // clearly cool: the medium rung cannot reject it
      }
    } catch (const Error&) {
      ++ladder_stats_.coarse_failures;
    }
  }

  // Rung 2: full leakage fixed point on a half-resolution model (separate
  // cache and ledger; never ticks the full path's solve clock).
  {
    bool fresh = false;
    if (const auto est = medium_estimate(key, org, bench, &fresh);
        est && rung_verdict(2, key, *est, reject_above_c) > 0)
      return reject_verdict();
  }

  ++ladder_stats_.promoted;
  return false;
}

Evaluator::WalkEval Evaluator::walk_eval(const Organization& org,
                                         const BenchmarkProfile& bench,
                                         double threshold_c,
                                         double prune_above_c) {
  const auto exact_of = [&]() -> WalkEval {
    const double peak = thermal_eval(org, bench).peak_c;
    return WalkEval{peak, 0.0, true, peak <= threshold_c};
  };
  if (!ladder_active()) return exact_of();
  const EvalKey key{LayoutKey::of(org), bench_index(bench), org.dvfs_idx,
                    org.active_cores};
  if (auto it = eval_memo_.find(key); it != eval_memo_.end())
    return WalkEval{it->second.peak_c, 0.0, true,
                    it->second.peak_c <= threshold_c};
  // The same margin-guarded frontier shortcut the full path's feasible()
  // takes.  A deduced-feasible verdict commits without a solve in either
  // mode; a deduced-infeasible one settles feasibility but not the peak.
  const std::optional<bool> fv = frontier_verdict(key, org, bench,
                                                  threshold_c);
  if (fv == true) return WalkEval{threshold_c, 0.0, false, true};

  bool fresh = false;
  const std::optional<double> est = medium_estimate(key, org, bench, &fresh);
  if (fresh) ++ladder_stats_.screened;
  const auto promote = [&]() -> WalkEval {
    if (fresh) ++ladder_stats_.promoted;
    return exact_of();
  };
  if (!est) return promote();  // rung unavailable / failed / unconverged

  // Prefer the walk-grade bound (same operating point, placement-only
  // residuals); fall back to the pooled per-(bench, n) bound while the
  // combo's own walk is still warming up.
  const ResidBound* bp = nullptr;
  if (const auto wit = walk_calib_.find(
          WalkKey{key.bench_idx, key.layout.n, key.dvfs_idx, key.p});
      wit != walk_calib_.end() &&
      wit->second.count >= config_.ladder.min_calibration)
    bp = &wit->second;
  else if (const auto cit =
               calib_.find(RungKey{2, key.bench_idx, key.layout.n});
           cit != calib_.end() &&
           cit->second.count >= config_.ladder.min_calibration)
    bp = &cit->second;
  if (!bp) return promote();  // cold start: exact, which also calibrates
  const ResidBound& b = *bp;
  const double sm = config_.ladder.safety_margin_c;
  // Absolute verdicts (feasibility, prune boundary) are walk-fatal when
  // wrong, so they demand the full safety margin on the calibrated
  // residual extremes.  Any boundary the interval straddles → exact.
  const bool infeasible_sure =
      fv == false || *est + b.min_resid - sm > threshold_c;
  const bool prune_sure =
      !std::isfinite(prune_above_c) ||
      *est + b.min_resid - sm > prune_above_c ||
      *est + b.max_resid + sm <= prune_above_c;
  if (!infeasible_sure || !prune_sure) return promote();
  if (audit_due()) {
    ++ladder_stats_.audits;
    if (fresh) ++ladder_stats_.promoted;
    return exact_of();
  }
  if (fresh) ++ladder_stats_.rejected;
  // Bias-corrected estimate for peak ordering; the band is the residual
  // half-spread, reported so callers (and tests) can see how tight the
  // calibration is at this operating point.
  return WalkEval{*est + 0.5 * (b.min_resid + b.max_resid),
                  0.5 * (b.max_resid - b.min_resid), false, false};
}

void Evaluator::record_full_result(const EvalKey& key, const Organization& org,
                                   const BenchmarkProfile& bench,
                                   const ThermalEval& ev, bool converged) {
  if (const auto pit = pending_est_.find(key); pit != pending_est_.end()) {
    if (converged) {
      for (int rung = 0; rung < 3; ++rung) {
        const double est = pit->second[static_cast<std::size_t>(rung)];
        if (!std::isfinite(est)) continue;
        const double resid = ev.peak_c - est;
        const auto absorb = [&](ResidBound& cb) {
          cb.min_resid = cb.count == 0 ? resid : std::min(cb.min_resid, resid);
          cb.max_resid = cb.count == 0 ? resid : std::max(cb.max_resid, resid);
          cb.est_lo = cb.count == 0 ? est : std::min(cb.est_lo, est);
          cb.est_hi = cb.count == 0 ? est : std::max(cb.est_hi, est);
          ++cb.count;
        };
        absorb(calib_[RungKey{rung, key.bench_idx, key.layout.n}]);
        if (rung == 2)
          absorb(walk_calib_[WalkKey{key.bench_idx, key.layout.n,
                                     key.dvfs_idx, key.p}]);
        if (rung == 0 && obs::metrics_enabled()) {
          static obs::Histogram err = obs::MetricsRegistry::global().histogram(
              "ladder.surrogate_error_c", obs::pow2_edges(0.25, 16.0));
          err.observe(std::abs(resid));
        }
      }
    }
    pending_est_.erase(pit);
  }
  if (converged)
    surrogates_
        .try_emplace(key.bench_idx, 1e-3, config_.ladder.surrogate_min_samples)
        .first->second.add(features_of(org, bench), ev.peak_c);
}

}  // namespace tacos
