#include "core/multiapp.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace tacos {

namespace {

/// Best feasible (f, p) for one benchmark on a fixed placement.
struct BestPoint {
  bool found = false;
  std::size_t f = 0;
  int p = 0;
  double ips = 0.0;
};

BestPoint best_point_on(Evaluator& eval, const BenchmarkProfile& bench,
                        const Organization& placement, double threshold_c) {
  struct Cand {
    std::size_t f;
    int p;
    double ips;
  };
  std::vector<Cand> cands;
  for (std::size_t f = 0; f < kDvfsLevelCount; ++f)
    for (int p : kActiveCoreChoices)
      cands.push_back({f, p, system_ips(bench, kDvfsLevels[f].freq_mhz, p)});
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.ips > b.ips; });
  for (const Cand& c : cands) {
    Organization org = placement;
    org.dvfs_idx = c.f;
    org.active_cores = c.p;
    if (eval.feasible(org, bench, threshold_c))
      return BestPoint{true, c.f, c.p, c.ips};
  }
  return {};
}

}  // namespace

MultiAppResult optimize_multiapp(Evaluator& eval,
                                 const std::vector<AppWeight>& mix,
                                 MultiAppStrategy strategy,
                                 const OptimizerOptions& opts) {
  TACOS_CHECK(!mix.empty(), "application mix is empty");
  const SystemSpec& spec = eval.config().spec;
  const std::size_t solves_before = eval.solve_count();
  Rng rng(opts.seed);

  // Normalized weights and per-app 2D baselines.
  std::vector<double> weights;
  std::vector<const BenchmarkProfile*> benches;
  std::vector<double> ips_2d;
  double wsum = 0.0;
  for (const auto& aw : mix) {
    TACOS_CHECK(aw.weight > 0, "weights must be positive");
    benches.push_back(&benchmark_by_name(aw.benchmark));
    weights.push_back(strategy == MultiAppStrategy::kAverage ? 1.0
                                                             : aw.weight);
    wsum += weights.back();
    const BaselinePoint& base =
        eval.baseline_2d(*benches.back(), opts.threshold_c);
    ips_2d.push_back(base.feasible
                         ? base.ips
                         : system_ips(*benches.back(),
                                      kDvfsLevels.back().freq_mhz,
                                      kActiveCoreChoices.front()));
  }
  for (double& w : weights) w /= wsum;

  MultiAppResult best;
  const double w_min = spec.chip_edge_mm() + 2 * spec.guard_band_mm;

  const auto consider = [&](int n, const Spacing& s) {
    Organization placement{n, s, 0, 256};
    const double edge = interposer_edge_of(placement, spec);
    if (edge > spec.max_interposer_mm + 1e-9) return;
    const double chiplet_edge = spec.chip_edge_mm() / (n == 4 ? 2 : 4);
    const double cost_norm =
        system_cost_25d(n, chiplet_edge * chiplet_edge, edge * edge,
                        eval.config().cost) /
        eval.cost_2d();

    double perf_term = 0.0;
    std::vector<MultiAppResult::PerApp> apps;
    for (std::size_t i = 0; i < benches.size(); ++i) {
      const BestPoint bp =
          best_point_on(eval, *benches[i], placement, opts.threshold_c);
      if (!bp.found) return;  // placement must serve every application
      MultiAppResult::PerApp pa;
      pa.benchmark = std::string(benches[i]->name);
      pa.dvfs_idx = bp.f;
      pa.active_cores = bp.p;
      pa.ips = bp.ips;
      pa.ips_vs_2d = bp.ips / ips_2d[i];
      apps.push_back(pa);
      const double term = ips_2d[i] / bp.ips;
      if (strategy == MultiAppStrategy::kWorstCase)
        perf_term = std::max(perf_term, term);
      else
        perf_term += weights[i] * term;
    }
    const double obj = opts.alpha * perf_term + opts.beta * cost_norm;
    if (!best.found || obj < best.objective - 1e-12) {
      best.found = true;
      best.n_chiplets = n;
      best.spacing = s;
      best.interposer_mm = edge;
      best.objective = obj;
      best.cost_norm = cost_norm;
      best.apps = std::move(apps);
    }
  };

  for (int n : opts.chiplet_counts) {
    for (double w = w_min; w <= spec.max_interposer_mm + 1e-9;
         w += opts.step_mm) {
      const double budget = w - w_min;
      if (n == 4) {
        consider(4, Spacing{0, 0, budget});
        continue;
      }
      const double step = opts.step_mm;
      const long grid_max =
          std::lround(std::floor(budget / 2.0 / step + 1e-9));
      // Uniform probe first (usually the best spreader), then random
      // manifold points — mirroring the single-application greedy.
      const long u1 = std::clamp(std::lround(budget / 3.0 / step), 0L,
                                 grid_max);
      const long u2 = std::clamp(
          std::lround((budget - 2 * u1 * step) / 2.0 / step), 0L, grid_max);
      consider(16, Spacing{u1 * step, u2 * step, budget - 2 * u1 * step});
      for (int k = 1; k < opts.starts; ++k) {
        const long i1 = rng.uniform_int(0, static_cast<int>(grid_max));
        const long i2 = rng.uniform_int(0, static_cast<int>(grid_max));
        consider(16, Spacing{i1 * step, i2 * step, budget - 2 * i1 * step});
      }
    }
  }

  best.thermal_solves = eval.solve_count() - solves_before;
  return best;
}

}  // namespace tacos
