#pragma once
/// \file surrogate.hpp
/// \brief Rung 0 of the fidelity ladder: a regularized ridge-regression
///        peak-temperature surrogate trained online from completed full
///        evaluations.
///
/// Every full thermal evaluation the Evaluator completes contributes one
/// training sample `(features(org), peak_c)`; candidate organizations are
/// then scored for a few hundred nanoseconds instead of a full leakage
/// fixed point.  The feature vector spans the paper's organization space
/// `(r, s1..s3, p, f)` plus the reference power (which folds the
/// benchmark's power class and the DVFS level's V²f scaling into one
/// physical abscissa); one independent model is kept per benchmark, so no
/// benchmark one-hots are needed.
///
/// The fit is exact least squares on the normal equations with Tikhonov
/// regularization (features standardized first, so one lambda fits all
/// columns), solved by dense Cholesky — a K×K system with K = 9, refit
/// lazily whenever new samples arrived since the last fit.  Everything is
/// serial and insertion-ordered: predictions are bit-identical for the
/// same training history at any thread count.
///
/// The surrogate never decides feasibility on its own.  The Evaluator
/// wraps every rung's estimate in calibrated out-of-sample residual
/// bounds (see LadderOptions) and only screens out candidates whose
/// bounded prediction clears the threshold with margin; anything within
/// the current error bound is promoted to a higher-fidelity rung.

#include <array>
#include <cstddef>
#include <vector>

namespace tacos {

/// Feature-vector width (see PeakSurrogate::features).
inline constexpr std::size_t kSurrogateFeatures = 9;

class PeakSurrogate {
 public:
  /// Lambda scales the identity added to the standardized normal matrix;
  /// min_samples gates ready() (below it, predictions are refused and the
  /// ladder promotes everything — the cold-start contract).
  explicit PeakSurrogate(double lambda = 1e-3, std::size_t min_samples = 8)
      : lambda_(lambda), min_samples_(min_samples) {}

  /// Feature map for one organization: chiplet-count one-hots, spacings,
  /// frequency, active-core fraction, reference power (W).
  static std::array<double, kSurrogateFeatures> features(
      int n_chiplets, double s1, double s2, double s3, double freq_mhz,
      int active_cores, double ref_power_w);

  /// Record one completed full evaluation.  O(1); the model refits lazily
  /// on the next predict().
  void add(const std::array<double, kSurrogateFeatures>& x, double peak_c);

  /// Enough training data to score candidates?
  bool ready() const { return samples_.size() >= min_samples_; }

  std::size_t sample_count() const { return samples_.size(); }
  /// Normal-equation refits performed so far (each emits surrogate.fit).
  std::size_t fit_count() const { return fit_count_; }

  /// Predicted peak temperature (°C).  Requires ready(); refits first if
  /// samples were added since the last fit (emits a surrogate.fit span),
  /// then scores under a surrogate.score span.
  double predict(const std::array<double, kSurrogateFeatures>& x);

 private:
  void fit();

  struct Sample {
    std::array<double, kSurrogateFeatures> x;
    double y;
  };

  double lambda_;
  std::size_t min_samples_;
  std::vector<Sample> samples_;
  std::size_t fitted_samples_ = 0;  ///< samples_ size at the last fit
  std::size_t fit_count_ = 0;
  // Standardization + weights of the last fit (weights include the
  // intercept at index 0; feature j uses weights_[j + 1]).
  std::array<double, kSurrogateFeatures> mean_{};
  std::array<double, kSurrogateFeatures> scale_{};
  std::array<double, kSurrogateFeatures + 1> weights_{};
};

}  // namespace tacos
