#include "linalg/multigrid.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "common/check.hpp"
#include "common/errors.hpp"
#include "linalg/chunked.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tacos {

/// One level of the hierarchy.  Level 0 references the caller's matrix;
/// every coarser level owns its Galerkin product.  `agg` maps this
/// level's nodes to the next-coarser level's (empty on the coarsest).
/// z/tmp/rbuf are the per-apply workspaces, preallocated so a V-cycle
/// never allocates.
struct MultigridPreconditioner::Level {
  const CsrMatrix* A = nullptr;
  std::unique_ptr<CsrMatrix> owned;
  std::size_t nx = 0, ny = 0;
  std::vector<double> inv_diag;
  std::vector<std::size_t> agg;
  std::vector<double> z, tmp, rbuf;
  // Mixed-precision smoother state (empty unless opts.mixed_precision):
  // an f32 mirror of A plus float workspaces.  Smoothing sweeps read and
  // write these; the double z is synced once per smooth() call.
  std::unique_ptr<CsrF32> Af;
  std::vector<float> inv_diag_f, zf, tmpf, rf;
};

MultigridPreconditioner::~MultigridPreconditioner() = default;

MultigridPreconditioner::MultigridPreconditioner(const CsrMatrix& A,
                                                 const MultigridGeometry& geom,
                                                 const MultigridOptions& opts)
    : opts_(opts) {
  if (geom.nx == 0 || geom.ny == 0 || geom.layers == 0 ||
      geom.nx * geom.ny * geom.layers + geom.lumped != A.rows())
    throw SolverError("pcg", 0, 0.0,
                      "multigrid geometry does not match matrix: " +
                          std::to_string(geom.nx) + "x" +
                          std::to_string(geom.ny) + "x" +
                          std::to_string(geom.layers) + "+" +
                          std::to_string(geom.lumped) + " vs " +
                          std::to_string(A.rows()) + " rows");
  // R = Pᵀ plus an equal pre/post smoothing count is what makes the
  // V-cycle a symmetric operator; CG silently diverges otherwise.
  if (opts_.pre_sweeps != opts_.post_sweeps || opts_.pre_sweeps == 0)
    throw SolverError("pcg", 0, 0.0,
                      "multigrid requires pre_sweeps == post_sweeps >= 1");
  if (opts_.max_levels == 0) opts_.max_levels = 1;

  {
    Level fine;
    fine.A = &A;
    fine.nx = geom.nx;
    fine.ny = geom.ny;
    levels_.push_back(std::move(fine));
  }

  // Coarsen serially: 2x aggregation in x and y per layer, layers and
  // lumped nodes carried through, Galerkin coarse operator by summing
  // each fine conductance into its aggregate pair (CsrBuilder sums
  // duplicate triplets).
  while (levels_.size() < opts_.max_levels) {
    Level& f = levels_.back();
    const std::size_t nf = f.A->rows();
    if (nf <= opts_.coarsest_max_unknowns) break;
    const std::size_t cnx = (f.nx + 1) / 2;
    const std::size_t cny = (f.ny + 1) / 2;
    if (cnx == f.nx && cny == f.ny) break;  // 1x1 per layer: cannot halve

    const std::size_t ncell = f.nx * f.ny;
    const std::size_t ccell = cnx * cny;
    const std::size_t nc = geom.layers * ccell + geom.lumped;

    f.agg.resize(nf);
    for (std::size_t l = 0; l < geom.layers; ++l)
      for (std::size_t iy = 0; iy < f.ny; ++iy)
        for (std::size_t ix = 0; ix < f.nx; ++ix)
          f.agg[l * ncell + iy * f.nx + ix] =
              l * ccell + (iy / 2) * cnx + (ix / 2);
    for (std::size_t k = 0; k < geom.lumped; ++k)
      f.agg[geom.layers * ncell + k] = geom.layers * ccell + k;

    CsrBuilder cb(nc);
    const auto& rp = f.A->row_ptr();
    const auto& ci = f.A->col_idx();
    const auto& va = f.A->values();
    for (std::size_t i = 0; i < nf; ++i)
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k)
        cb.add(f.agg[i], f.agg[ci[k]], va[k]);

    Level c;
    c.owned = std::make_unique<CsrMatrix>(cb.build());
    c.A = c.owned.get();
    c.nx = cnx;
    c.ny = cny;
    levels_.push_back(std::move(c));
  }

  // Smoother diagonals (all but the coarsest) and workspaces.
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    Level& lv = levels_[l];
    const std::size_t n = lv.A->rows();
    lv.z.assign(n, 0.0);
    lv.tmp.assign(n, 0.0);
    lv.rbuf.assign(n, 0.0);
    if (l + 1 == levels_.size()) continue;
    const std::vector<double> diag = lv.A->diagonal();
    lv.inv_diag.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (diag[i] <= 0.0)
        throw SolverError("pcg", 0, 0.0,
                          "multigrid level " + std::to_string(l) +
                              ": non-positive diagonal at row " +
                              std::to_string(i));
      lv.inv_diag[i] = 1.0 / diag[i];
    }
    if (opts_.mixed_precision) {
      lv.Af = std::make_unique<CsrF32>(*lv.A);
      lv.inv_diag_f.assign(lv.inv_diag.begin(), lv.inv_diag.end());
      lv.zf.assign(n, 0.0f);
      lv.tmpf.assign(n, 0.0f);
      lv.rf.assign(n, 0.0f);
    }
  }

  // Coarsest level: dense Cholesky, factored once.  The loop above only
  // stops early on rows <= coarsest_max_unknowns or a 1x1-per-layer grid
  // (a few dozen rows); anything larger means the geometry cannot be
  // coarsened and a dense factor would blow up memory.
  const CsrMatrix& C = *levels_.back().A;
  coarse_n_ = C.rows();
  if (coarse_n_ > 5000)
    throw SolverError("pcg", 0, 0.0,
                      "multigrid coarsest level has " +
                          std::to_string(coarse_n_) +
                          " rows — geometry not coarsenable to a direct "
                          "solve (raise max_levels?)");
  coarse_chol_.assign(coarse_n_ * coarse_n_, 0.0);
  {
    const auto& rp = C.row_ptr();
    const auto& ci = C.col_idx();
    const auto& va = C.values();
    for (std::size_t i = 0; i < coarse_n_; ++i)
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k)
        coarse_chol_[i * coarse_n_ + ci[k]] = va[k];
  }
  // In-place LL^T on the lower triangle.
  double* a = coarse_chol_.data();
  const std::size_t n = coarse_n_;
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0)
      throw SolverError("pcg", 0, 0.0,
                        "multigrid coarse Cholesky breakdown at row " +
                            std::to_string(j) +
                            " — matrix not SPD-assembled");
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
}

std::size_t MultigridPreconditioner::level_count() const {
  return levels_.size();
}

std::size_t MultigridPreconditioner::unknowns(std::size_t level) const {
  return levels_[level].A->rows();
}

const CsrMatrix& MultigridPreconditioner::level_matrix(
    std::size_t level) const {
  return *levels_[level].A;
}

const std::vector<std::size_t>& MultigridPreconditioner::aggregates(
    std::size_t level) const {
  TACOS_CHECK(level + 1 < levels_.size(),
              "aggregates(" << level << "): level has no coarser neighbor");
  return levels_[level].agg;
}

std::size_t MultigridPreconditioner::level_nx(std::size_t level) const {
  return levels_[level].nx;
}

std::size_t MultigridPreconditioner::level_ny(std::size_t level) const {
  return levels_[level].ny;
}

/// Weighted-Jacobi sweeps: z <- z + omega D^{-1} (r - A z).  When the
/// incoming z is logically zero the first sweep skips the SpMV.  Each
/// sweep is two chunked passes with a barrier between them (tmp = A z
/// reads all of z, so z updates must not overlap it); all writes are
/// per-row, so the result is trivially thread-count independent.
///
/// Mixed precision (opts.mixed_precision): the SpMV — the memory-bound
/// part of a sweep — runs on the f32 mirror (float values, 32-bit
/// columns, float iterate copy), while z itself and the Jacobi update
/// stay double.  The smoother only steers the V-cycle's error reduction,
/// so solution accuracy is governed by the outer PCG tolerance either
/// way; the float path stays bit-identical across thread counts because
/// every float op is row-local inside fixed chunks.
void MultigridPreconditioner::smooth(Level& lv, const std::vector<double>& r,
                                     std::vector<double>& z,
                                     std::size_t sweeps, bool z_is_zero) {
  const std::size_t n = lv.A->rows();
  ThreadPool* const pool = chunk_pool(n);
  const double omega = opts_.omega;
  std::size_t s = 0;
  if (z_is_zero && sweeps > 0) {
    for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        z[i] = omega * lv.inv_diag[i] * r[i];
    });
    s = 1;
  }
  const bool mixed = opts_.mixed_precision && lv.Af != nullptr;
  for (; s < sweeps; ++s) {
    if (mixed) {
      for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          lv.zf[i] = static_cast<float>(z[i]);
      });
      for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
        spmv_rows_f32(*lv.A, *lv.Af, lv.zf, lv.tmpf, lo, hi);
      });
      for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          z[i] += omega * lv.inv_diag[i] *
                  (r[i] - static_cast<double>(lv.tmpf[i]));
      });
    } else {
      for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
        spmv_rows(*lv.A, z, lv.tmp, lo, hi);
      });
      for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          z[i] += omega * lv.inv_diag[i] * (r[i] - lv.tmp[i]);
      });
    }
  }
}

void MultigridPreconditioner::coarse_solve(const std::vector<double>& r,
                                           std::vector<double>& z) {
  static obs::SpanSite site("thermal.mg.coarse", "thermal");
  obs::TraceSpan span(site);
  const std::size_t n = coarse_n_;
  const double* L = coarse_chol_.data();
  // Forward substitution L y = r (y in z), then back substitution
  // L^T z = y.  Serial and order-fixed: deterministic by construction.
  for (std::size_t i = 0; i < n; ++i) {
    double s = r[i];
    for (std::size_t k = 0; k < i; ++k) s -= L[i * n + k] * z[k];
    z[i] = s / L[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= L[k * n + ii] * z[k];
    z[ii] = s / L[ii * n + ii];
  }
}

void MultigridPreconditioner::vcycle(std::size_t l,
                                     const std::vector<double>& r,
                                     std::vector<double>& z) {
  Level& lv = levels_[l];
  const std::size_t n = lv.A->rows();
  static obs::SpanSite site("thermal.mg.level", "thermal");
  obs::TraceSpan span(site);
  span.arg("level", static_cast<std::int64_t>(l));
  span.arg("rows", static_cast<std::int64_t>(n));

  if (l + 1 == levels_.size()) {
    coarse_solve(r, z);
    return;
  }

  smooth(lv, r, z, opts_.pre_sweeps, /*z_is_zero=*/true);

  // Residual tmp = r - A z (fused kernel, always double: the coarse-grid
  // correction hinges on an accurate residual), then restrict into the
  // next level's rbuf.
  ThreadPool* const pool = chunk_pool(n);
  for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
    residual_rows(*lv.A, z, r, lv.tmp, lo, hi);
  });
  Level& cv = levels_[l + 1];
  // Restriction is a scatter-add over aggregates; parallelizing it would
  // race, so it stays serial (coarse vectors are small).
  std::fill(cv.rbuf.begin(), cv.rbuf.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) cv.rbuf[lv.agg[i]] += lv.tmp[i];

  vcycle(l + 1, cv.rbuf, cv.z);

  // Prolongation: z += P zc (piecewise constant — gather, safe to chunk).
  for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) z[i] += cv.z[lv.agg[i]];
  });

  smooth(lv, r, z, opts_.post_sweeps, /*z_is_zero=*/false);
}

double MultigridPreconditioner::apply_dot(const std::vector<double>& r,
                                          std::vector<double>& z) {
  static obs::SpanSite site("thermal.mg.cycle", "thermal");
  obs::TraceSpan span(site);
  span.arg("levels", static_cast<std::int64_t>(levels_.size()));
  if (obs::metrics_enabled()) {
    static obs::Counter cycles =
        obs::MetricsRegistry::global().counter("thermal.mg.cycles");
    cycles.add();
  }
  vcycle(0, r, z);
  const std::size_t n = levels_[0].A->rows();
  return reduce_chunks(n, chunk_pool(n), dot_partials_,
                       [&](std::size_t lo, std::size_t hi) {
                         double acc = 0.0;
                         for (std::size_t i = lo; i < hi; ++i)
                           acc += r[i] * z[i];
                         return acc;
                       });
}

}  // namespace tacos
