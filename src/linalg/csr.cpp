#include "linalg/csr.hpp"

#include <algorithm>
#include <numeric>

namespace tacos {

CsrMatrix CsrBuilder::build() const {
  // Counting sort by row, then sort-and-merge columns within each row.
  std::vector<std::size_t> row_count(n_ + 1, 0);
  for (const auto& t : triplets_) ++row_count[t.i + 1];
  std::vector<std::size_t> row_start(n_ + 1, 0);
  std::partial_sum(row_count.begin(), row_count.end(), row_start.begin());

  std::vector<std::size_t> cols(triplets_.size());
  std::vector<double> vals(triplets_.size());
  {
    std::vector<std::size_t> cursor(row_start.begin(), row_start.end() - 1);
    for (const auto& t : triplets_) {
      const std::size_t k = cursor[t.i]++;
      cols[k] = t.j;
      vals[k] = t.v;
    }
  }

  std::vector<std::size_t> row_ptr(n_ + 1, 0);
  std::vector<std::size_t> out_cols;
  std::vector<double> out_vals;
  out_cols.reserve(triplets_.size());
  out_vals.reserve(triplets_.size());

  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t b = row_start[i], e = row_start[i + 1];
    order.resize(e - b);
    std::iota(order.begin(), order.end(), b);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t c) { return cols[a] < cols[c]; });
    for (std::size_t k = 0; k < order.size();) {
      const std::size_t col = cols[order[k]];
      double acc = 0.0;
      while (k < order.size() && cols[order[k]] == col) acc += vals[order[k++]];
      out_cols.push_back(col);
      out_vals.push_back(acc);
    }
    row_ptr[i + 1] = out_cols.size();
  }
  return CsrMatrix(n_, std::move(row_ptr), std::move(out_cols),
                   std::move(out_vals));
}

}  // namespace tacos
