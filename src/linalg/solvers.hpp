#pragma once
/// \file solvers.hpp
/// \brief Iterative linear solvers for the SPD thermal conductance system.
///
/// The production path is a Jacobi-preconditioned conjugate-gradient
/// solver; Gauss-Seidel is kept as an independent reference implementation
/// used by the test suite to cross-check CG on small systems.  Both solvers
/// support warm starts, which the sweep harnesses exploit heavily (adjacent
/// sweep points have nearly identical temperature fields).
///
/// Performance & determinism
/// -------------------------
/// PCG is the evaluation engine's hot path.  Its vector passes are fused
/// (SpMV with p·Ap, the x/r axpy pair with ||r||², the Jacobi apply with
/// r·z) to cut memory traffic, and large systems row-partition the SpMV
/// across the global ThreadPool.  Every reduction is computed as fixed-
/// size per-chunk partials combined in chunk order, so solve results are
/// **bit-identical regardless of thread count** — the determinism the
/// parallel optimizer runs rely on (see docs/PERFORMANCE.md).

#include <vector>

#include "common/cancel.hpp"
#include "common/fault_plan.hpp"
#include "linalg/csr.hpp"

namespace tacos {

/// Outcome of an iterative solve.
struct SolveResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax|| / ||b||
};

/// Options shared by the iterative solvers.
struct SolveOptions {
  double rel_tolerance = 1e-8;  ///< convergence: ||r|| <= rel_tolerance*||b||
  std::size_t max_iterations = 20000;
  /// Gauss-Seidel only: the explicit residual (a full SpMV) is evaluated
  /// every this many sweeps (and always on the final sweep), so detected
  /// convergence can be up to interval-1 sweeps late.  PCG tracks the
  /// recursive residual every iteration and ignores this field.
  std::size_t residual_check_interval = 8;
  /// Deterministic fault injection (off by default).  The solvers never
  /// consult this themselves — ThermalModel's recovery ladder does; the
  /// plan rides here so it reaches every layer through one config path
  /// (SolveOptions → ThermalConfig → EvalConfig).
  FaultPlan fault;
  /// Cooperative cancellation (nullptr = never cancelled).  Both solvers
  /// poll it once per iteration/sweep and abandon the solve by throwing
  /// CancelledError — the hook that bounds a batch task's wall time at
  /// solver granularity.  Rides the same config path as `fault`.
  const CancelToken* cancel = nullptr;
};

/// Jacobi-preconditioned conjugate gradient for SPD systems.
/// `x` is both the initial guess (warm start) and the solution output; it
/// must be sized A.rows() (zero-fill for a cold start).
SolveResult solve_pcg(const CsrMatrix& A, const std::vector<double>& b,
                      std::vector<double>& x, const SolveOptions& opts = {});

/// Gauss-Seidel reference solver (slow; tests only).
SolveResult solve_gauss_seidel(const CsrMatrix& A, const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& opts = {});

/// Euclidean norm helper shared by solvers and tests.
double norm2(const std::vector<double>& v);

}  // namespace tacos
