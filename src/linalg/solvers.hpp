#pragma once
/// \file solvers.hpp
/// \brief Iterative linear solvers for the SPD thermal conductance system.
///
/// The production path is a preconditioned conjugate-gradient solver with
/// a pluggable SPD preconditioner: Jacobi by default, or the geometric
/// multigrid V-cycle (linalg/multigrid.hpp) that ThermalModel injects for
/// large systems.  Gauss-Seidel is kept as an independent reference
/// implementation used by the test suite to cross-check CG on small
/// systems.  Both solvers support warm starts, which the sweep harnesses
/// exploit heavily (adjacent sweep points have nearly identical
/// temperature fields).
///
/// Performance & determinism
/// -------------------------
/// PCG is the evaluation engine's hot path.  Its vector passes are fused
/// (SpMV with p·Ap, the x/r axpy pair with ||r||², the preconditioner
/// apply with r·z) to cut memory traffic, and large systems row-partition
/// the SpMV across the global ThreadPool.  Every reduction is computed as
/// fixed-size per-chunk partials combined in chunk order (linalg/
/// chunked.hpp), so solve results are **bit-identical regardless of
/// thread count** — the determinism the parallel optimizer runs rely on
/// (see docs/PERFORMANCE.md).

#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/fault_plan.hpp"
#include "linalg/csr.hpp"

namespace tacos {

/// Pluggable SPD preconditioner for solve_pcg.  Implementations must be
/// symmetric positive definite as operators (CG requires it) and must use
/// the deterministic chunked kernels for any parallel work so solves stay
/// bit-identical at every thread count.  An instance serves one matrix and
/// one solve at a time (internal workspaces are not thread-safe); sharing
/// across sequential solves on the same matrix is the intended use.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M⁻¹ r, returning r·z computed with the chunk-ordered reduction.
  /// r and z are sized to the system; z is overwritten (no initial-guess
  /// semantics).
  virtual double apply_dot(const std::vector<double>& r,
                           std::vector<double>& z) = 0;
  /// Short identifier for diagnostics ("jacobi", "mg").
  virtual const char* name() const = 0;
};

/// The default preconditioner: z = D⁻¹ r fused with the r·z reduction in
/// a single vector pass.
class JacobiPreconditioner final : public Preconditioner {
 public:
  /// Throws SolverError if any diagonal entry is non-positive (the matrix
  /// is then not SPD-assembled).
  explicit JacobiPreconditioner(const CsrMatrix& A);
  double apply_dot(const std::vector<double>& r,
                   std::vector<double>& z) override;
  const char* name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
  std::vector<double> partials_;
};

/// Preconditioner selection, carried through the one config path
/// (SolveOptions → ThermalConfig → EvalConfig) so `--precond=jacobi|mg`
/// reaches every layer.  kAuto lets the owner of the system choose:
/// ThermalModel picks multigrid above a size threshold and Jacobi below
/// it.  solve_pcg itself never consults this field — it only looks at
/// SolveOptions::preconditioner.
enum class PrecondKind { kAuto, kJacobi, kMultigrid };

/// Flag-value parsing for --precond= ("auto", "jacobi", "mg").
inline bool parse_precond_name(const std::string& s, PrecondKind* out) {
  if (s == "auto") *out = PrecondKind::kAuto;
  else if (s == "jacobi") *out = PrecondKind::kJacobi;
  else if (s == "mg") *out = PrecondKind::kMultigrid;
  else return false;
  return true;
}

inline const char* precond_name(PrecondKind k) {
  switch (k) {
    case PrecondKind::kJacobi: return "jacobi";
    case PrecondKind::kMultigrid: return "mg";
    case PrecondKind::kAuto: break;
  }
  return "auto";
}

/// Outcome of an iterative solve.
struct SolveResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax|| / ||b||
};

/// Options shared by the iterative solvers.
struct SolveOptions {
  double rel_tolerance = 1e-8;  ///< convergence: ||r|| <= rel_tolerance*||b||
  std::size_t max_iterations = 20000;
  /// Gauss-Seidel only: the explicit residual (a full SpMV) is evaluated
  /// every this many sweeps (and always on the final sweep), so detected
  /// convergence can be up to interval-1 sweeps late.  PCG tracks the
  /// recursive residual every iteration and ignores this field.
  std::size_t residual_check_interval = 8;
  /// Deterministic fault injection (off by default).  The solvers never
  /// consult this themselves — ThermalModel's recovery ladder does; the
  /// plan rides here so it reaches every layer through one config path
  /// (SolveOptions → ThermalConfig → EvalConfig).
  FaultPlan fault;
  /// Cooperative cancellation (nullptr = never cancelled).  Both solvers
  /// poll it once per iteration/sweep and abandon the solve by throwing
  /// CancelledError — the hook that bounds a batch task's wall time at
  /// solver granularity.  Rides the same config path as `fault`.
  const CancelToken* cancel = nullptr;
  /// Preconditioner *selection* riding the config path (see PrecondKind).
  /// Resolved by ThermalModel, not by solve_pcg.
  PrecondKind precond = PrecondKind::kAuto;
  /// Build the multigrid hierarchy with single-precision smoothing sweeps
  /// (MultigridOptions::mixed_precision) — `--mg-mixed` on the CLI.
  /// Solution accuracy is still set by `rel_tolerance` (the outer PCG
  /// runs in double); results stay bit-identical across thread counts but
  /// differ bitwise from the all-double cycle, so the determinism tests
  /// leave this off.  Consulted by ThermalModel, not by solve_pcg.
  bool mg_mixed_precision = false;
  /// Externally-owned preconditioner instance for solve_pcg (nullptr =
  /// build a Jacobi preconditioner internally).  Not owned; must outlive
  /// the solve and match the matrix being solved — ThermalModel injects
  /// its cached multigrid hierarchy here for steady-state solves only
  /// (the transient matrix G + C/dt has a different operator).
  Preconditioner* preconditioner = nullptr;
};

/// Jacobi-preconditioned conjugate gradient for SPD systems.
/// `x` is both the initial guess (warm start) and the solution output; it
/// must be sized A.rows() (zero-fill for a cold start).
SolveResult solve_pcg(const CsrMatrix& A, const std::vector<double>& b,
                      std::vector<double>& x, const SolveOptions& opts = {});

/// Gauss-Seidel reference solver (slow; tests only).
SolveResult solve_gauss_seidel(const CsrMatrix& A, const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& opts = {});

/// Adjoint solve Aᵀ λ = b.  The thermal conductance matrix is symmetric,
/// so the adjoint system IS the forward system and this entry point
/// delegates to solve_pcg — same fused chunked kernels, same
/// preconditioner, bit-identical at any thread count.  Kept as a named
/// entry so adjoint consumers (ThermalModel::adjoint_peak) state their
/// intent and a future non-symmetric operator has one place to grow a
/// transpose path.  `lambda` warm-starts and receives the solution.
SolveResult solve_adjoint(const CsrMatrix& A, const std::vector<double>& b,
                          std::vector<double>& lambda,
                          const SolveOptions& opts = {});

/// Euclidean norm helper shared by solvers and tests.
double norm2(const std::vector<double>& v);

}  // namespace tacos
