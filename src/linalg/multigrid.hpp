#pragma once
/// \file multigrid.hpp
/// \brief Deterministic geometric multigrid V-cycle preconditioner for the
///        steady-state thermal conductance system.
///
/// The thermal grid (thermal/grid_model.hpp) stacks `layers` identical
/// nx × ny conduction grids and appends a handful of lumped periphery
/// nodes.  That geometry makes a textbook aggregation hierarchy cheap and
/// exact to build: each level coarsens 2× in x and y per layer
/// (piecewise-constant aggregation — every fine cell maps to the coarse
/// cell covering it), layers are never merged, and lumped nodes carry
/// through unchanged.  Coarse operators are Galerkin products
/// A_c = Pᵀ A P, which for piecewise-constant P simply sums the fine
/// conductances between aggregates — the coarse system is itself a
/// conductance network, so it stays symmetric positive definite and
/// diagonally dominant all the way down.
///
/// The V-cycle applies an equal number of pre- and post-smoothing sweeps
/// of weighted Jacobi on every level and a dense Cholesky solve on the
/// coarsest.  With R = Pᵀ and a symmetric smoother, the cycle is a
/// symmetric operator; weighted Jacobi with ω < 1 on a diagonally
/// dominant matrix is convergent, making the cycle positive definite —
/// the contract solve_pcg's Preconditioner interface requires.
///
/// Determinism: the hierarchy is built serially, restriction is serial
/// (scatter-adds would race), and every smoothing sweep / prolongation /
/// reduction runs through the chunk-ordered kernels in linalg/chunked.hpp.
/// Results are bit-identical at any thread count; coarse levels fall
/// below kParallelMinRows and run serially with the same chunk
/// boundaries.
///
/// Observability: each apply emits a `thermal.mg.cycle` span with nested
/// `thermal.mg.level` / `thermal.mg.coarse` spans, plus a
/// `thermal.mg.cycles` counter (see docs/OBSERVABILITY.md).

#include <cstddef>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/solvers.hpp"

namespace tacos {

/// Grid geometry the hierarchy is derived from.  Node numbering must be
/// `layer * nx * ny + iy * nx + ix` for the gridded nodes followed by
/// `lumped` trailing nodes — exactly ThermalModel's layout.
struct MultigridGeometry {
  std::size_t nx = 0;      ///< grid cells in x (per layer)
  std::size_t ny = 0;      ///< grid cells in y (per layer)
  std::size_t layers = 0;  ///< gridded layers (stack + spreader + sink)
  std::size_t lumped = 0;  ///< trailing lumped nodes (kept uncoarsened)
};

/// Tuning knobs.  Defaults are what the thermal systems want; tests
/// override `coarsest_max_unknowns` to exercise deeper hierarchies.
struct MultigridOptions {
  /// Stop coarsening once a level has at most this many unknowns; that
  /// level is solved directly by dense Cholesky (bounded at ~600² doubles
  /// of factor storage).
  std::size_t coarsest_max_unknowns = 600;
  std::size_t max_levels = 16;
  std::size_t pre_sweeps = 1;   ///< weighted-Jacobi sweeps before descent
  std::size_t post_sweeps = 1;  ///< must equal pre_sweeps for symmetry
  double omega = 0.7;           ///< Jacobi damping (< 1 for SPD safety)
  /// Run the weighted-Jacobi smoothing sweeps in single precision (float
  /// matrix values, 32-bit column indices) while residuals, restriction,
  /// prolongation and the coarse direct solve stay double.  The smoother
  /// only needs a rough error reduction, so the outer PCG tolerance — and
  /// therefore the solution accuracy — is unaffected; only the iteration
  /// count may shift by ±1.  Results remain bit-identical at any thread
  /// count (all float work is row-local and chunk-ordered) but differ
  /// bitwise from the all-double cycle, so the flag defaults to off and is
  /// excluded from the determinism tests (see docs/PERFORMANCE.md).
  bool mixed_precision = false;
};

/// Geometric multigrid V-cycle implementing solve_pcg's Preconditioner
/// interface.  Construction builds the full hierarchy (aggregation maps,
/// Galerkin coarse operators, smoother diagonals, coarsest Cholesky
/// factor) and preallocates every per-apply workspace, so apply_dot never
/// allocates.  Level 0 *references* the caller's matrix — the instance
/// must not outlive it.  Throws SolverError if the matrix is not
/// SPD-assembled (non-positive diagonal or Cholesky breakdown).
class MultigridPreconditioner final : public Preconditioner {
 public:
  MultigridPreconditioner(const CsrMatrix& A, const MultigridGeometry& geom,
                          const MultigridOptions& opts = {});
  ~MultigridPreconditioner() override;

  /// One V-cycle: z = MG(r), returning r·z via the chunk-ordered
  /// reduction.  Deterministic at any thread count.
  double apply_dot(const std::vector<double>& r,
                   std::vector<double>& z) override;
  const char* name() const override { return "mg"; }

  std::size_t level_count() const;
  /// Unknowns on a level (0 = finest).
  std::size_t unknowns(std::size_t level) const;

  // --- Hierarchy introspection (the fidelity ladder's coarse rung) -----
  //
  // The Galerkin coarse operators are themselves conductance networks, so
  // a cheap screening solve can run directly on level 1 with no new
  // assembly.  ThermalModel::coarse_peak_estimate restricts its RHS
  // through `aggregates(0)` and solves `level_matrix(1)`.

  /// The operator of a level (0 = the caller's fine matrix).
  const CsrMatrix& level_matrix(std::size_t level) const;
  /// Aggregation map from `level`'s nodes to `level + 1`'s (piecewise-
  /// constant restriction: coarse value = sum over fine nodes mapping to
  /// it).  Only valid for level < level_count() - 1.
  const std::vector<std::size_t>& aggregates(std::size_t level) const;
  /// Per-layer grid extent of a level (nx, ny).
  std::size_t level_nx(std::size_t level) const;
  std::size_t level_ny(std::size_t level) const;

 private:
  struct Level;
  void vcycle(std::size_t l, const std::vector<double>& r,
              std::vector<double>& z);
  void smooth(Level& lv, const std::vector<double>& r,
              std::vector<double>& z, std::size_t sweeps, bool z_is_zero);
  void coarse_solve(const std::vector<double>& r, std::vector<double>& z);

  std::vector<Level> levels_;
  MultigridOptions opts_;
  // Dense Cholesky factor of the coarsest operator (row-major lower
  // triangle, factored once at construction).
  std::vector<double> coarse_chol_;
  std::size_t coarse_n_ = 0;
  std::vector<double> dot_partials_;
};

}  // namespace tacos
