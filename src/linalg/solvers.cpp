#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/errors.hpp"
#include "common/thread_pool.hpp"

namespace tacos {

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

namespace {

/// Reduction chunk size (rows).  Chunk boundaries — and therefore the
/// floating-point summation order — depend only on this constant and the
/// problem size, never on the thread count, so every reduction below is
/// bit-identical at 1, 2, or N threads.
constexpr std::size_t kChunkRows = 2048;

/// Row count below which the kernels skip the pool entirely (the serial
/// path uses the same chunk boundaries, so results do not change — only
/// the dispatch overhead is avoided).  Thermal systems at grid 32+ are
/// above this; the small test matrices are below it.
constexpr std::size_t kParallelMinRows = 8192;

/// Runs `body(lo, hi)` over every kChunkRows-sized chunk of [0, n), on
/// `pool` when given (nullptr = serial).  `body` must be data-parallel
/// across chunks (each chunk touches only its own rows / partial slot).
template <typename Body>
void for_chunks(std::size_t n, ThreadPool* pool, Body&& body) {
  if (pool) {
    pool->parallel_for(n, kChunkRows, body);
  } else {
    for (std::size_t lo = 0; lo < n; lo += kChunkRows)
      body(lo, std::min(n, lo + kChunkRows));
  }
}

/// Deterministic reduction: `chunk_fn(lo, hi)` returns one partial sum per
/// chunk; partials are combined sequentially in chunk order.
template <typename ChunkFn>
double reduce_chunks(std::size_t n, ThreadPool* pool,
                     std::vector<double>& partials, ChunkFn&& chunk_fn) {
  const std::size_t n_chunks = (n + kChunkRows - 1) / kChunkRows;
  partials.assign(n_chunks, 0.0);
  for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
    partials[lo / kChunkRows] = chunk_fn(lo, hi);
  });
  double acc = 0.0;
  for (double v : partials) acc += v;
  return acc;
}

/// Row range of a sparse matrix-vector product: y[lo..hi) = (A x)[lo..hi).
inline void spmv_rows(const CsrMatrix& A, const std::vector<double>& x,
                      std::vector<double>& y, std::size_t lo, std::size_t hi) {
  const auto& rp = A.row_ptr();
  const auto& ci = A.col_idx();
  const auto& va = A.values();
  for (std::size_t i = lo; i < hi; ++i) {
    double acc = 0.0;
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) acc += va[k] * x[ci[k]];
    y[i] = acc;
  }
}

}  // namespace

SolveResult solve_pcg(const CsrMatrix& A, const std::vector<double>& b,
                      std::vector<double>& x, const SolveOptions& opts) {
  const std::size_t n = A.rows();
  if (b.size() != n || x.size() != n)
    throw SolverError("pcg", 0, 0.0, "dimension mismatch: matrix has " +
                                         std::to_string(n) + " rows, b " +
                                         std::to_string(b.size()) + ", x " +
                                         std::to_string(x.size()));

  ThreadPool& global_pool = ThreadPool::global();
  ThreadPool* const par =
      (n >= kParallelMinRows && global_pool.thread_count() > 1) ? &global_pool
                                                                : nullptr;

  const std::vector<double> diag = A.diagonal();
  std::vector<double> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (diag[i] <= 0.0)
      throw SolverError("pcg", 0, 0.0,
                        "non-positive diagonal at row " + std::to_string(i) +
                            " — matrix not SPD-assembled");
    inv_diag[i] = 1.0 / diag[i];
  }

  std::vector<double> r(n), z(n), p(n), Ap(n);
  std::vector<double> partials;

  // r = b - A x, with ||r||^2 in the same pass.
  double rr = reduce_chunks(n, par, partials, [&](std::size_t lo,
                                                  std::size_t hi) {
    spmv_rows(A, x, Ap, lo, hi);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      r[i] = b[i] - Ap[i];
      acc += r[i] * r[i];
    }
    return acc;
  });

  const double b_norm = std::sqrt(reduce_chunks(
      n, par, partials, [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += b[i] * b[i];
        return acc;
      }));
  const double threshold = opts.rel_tolerance * (b_norm > 0 ? b_norm : 1.0);

  SolveResult res;
  double r_norm = std::sqrt(rr);
  if (r_norm <= threshold) {
    res.converged = true;
    res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
    return res;
  }

  // z = M^{-1} r and rz = r·z, fused.
  double rz =
      reduce_chunks(n, par, partials, [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          z[i] = inv_diag[i] * r[i];
          acc += r[i] * z[i];
        }
        return acc;
      });
  p = z;

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    if (opts.cancel) opts.cancel->poll();
    // Ap = A p and pAp = p·Ap in one pass over the matrix.
    const double pAp =
        reduce_chunks(n, par, partials, [&](std::size_t lo, std::size_t hi) {
          spmv_rows(A, p, Ap, lo, hi);
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) acc += p[i] * Ap[i];
          return acc;
        });
    if (!(pAp > 0.0)) {
      std::ostringstream os;
      os << "matrix is not positive definite (pAp=" << pAp << ")";
      throw SolverError("pcg", it, b_norm > 0 ? r_norm / b_norm : r_norm,
                        os.str());
    }
    const double alpha = rz / pAp;

    // x += alpha p, r -= alpha Ap, and ||r||^2 fused into one pass.
    rr = reduce_chunks(n, par, partials,
                       [&](std::size_t lo, std::size_t hi) {
                         double acc = 0.0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           x[i] += alpha * p[i];
                           r[i] -= alpha * Ap[i];
                           acc += r[i] * r[i];
                         }
                         return acc;
                       });
    r_norm = std::sqrt(rr);
    if (r_norm <= threshold) {
      res.converged = true;
      res.iterations = it;
      res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
      return res;
    }

    // z = M^{-1} r and rz_new = r·z, fused.
    const double rz_new =
        reduce_chunks(n, par, partials, [&](std::size_t lo, std::size_t hi) {
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            z[i] = inv_diag[i] * r[i];
            acc += r[i] * z[i];
          }
          return acc;
        });
    const double beta = rz_new / rz;
    rz = rz_new;
    for_chunks(n, par, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) p[i] = z[i] + beta * p[i];
    });
  }
  res.converged = false;
  res.iterations = opts.max_iterations;
  res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
  return res;
}

SolveResult solve_gauss_seidel(const CsrMatrix& A, const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& opts) {
  const std::size_t n = A.rows();
  if (b.size() != n || x.size() != n)
    throw SolverError("gauss-seidel", 0, 0.0, "dimension mismatch");
  TACOS_CHECK(opts.residual_check_interval >= 1,
              "residual_check_interval must be >= 1");
  const auto& rp = A.row_ptr();
  const auto& ci = A.col_idx();
  const auto& v = A.values();

  const double b_norm = norm2(b);
  const double threshold = opts.rel_tolerance * (b_norm > 0 ? b_norm : 1.0);

  SolveResult res;
  std::vector<double> r(n);
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    if (opts.cancel) opts.cancel->poll();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      double diag = 0.0;
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (ci[k] == i)
          diag = v[k];
        else
          acc -= v[k] * x[ci[k]];
      }
      if (diag == 0.0)
        throw SolverError("gauss-seidel", it, 0.0,
                          "zero diagonal at row " + std::to_string(i));
      x[i] = acc / diag;
    }
    // GS is tests-only, but the full residual (an extra SpMV) every sweep
    // dominated its runtime; check it only every residual_check_interval
    // sweeps and on the final sweep.  Convergence may thus be detected up
    // to interval-1 sweeps late; the reported state is still converged.
    if (it % opts.residual_check_interval != 0 && it != opts.max_iterations)
      continue;
    A.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double r_norm = norm2(r);
    if (r_norm <= threshold) {
      res.converged = true;
      res.iterations = it;
      res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
      return res;
    }
  }
  res.converged = false;
  res.iterations = opts.max_iterations;
  A.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  res.residual_norm = b_norm > 0 ? norm2(r) / b_norm : norm2(r);
  return res;
}

}  // namespace tacos
