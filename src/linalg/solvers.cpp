#include "linalg/solvers.hpp"

#include <cmath>

#include "common/check.hpp"

namespace tacos {

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

SolveResult solve_pcg(const CsrMatrix& A, const std::vector<double>& b,
                      std::vector<double>& x, const SolveOptions& opts) {
  const std::size_t n = A.rows();
  TACOS_CHECK(b.size() == n && x.size() == n, "dimension mismatch in PCG");

  const std::vector<double> diag = A.diagonal();
  std::vector<double> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    TACOS_CHECK(diag[i] > 0.0, "non-positive diagonal at row "
                                   << i << " — matrix not SPD-assembled");
    inv_diag[i] = 1.0 / diag[i];
  }

  std::vector<double> r(n), z(n), p(n), Ap(n);
  A.multiply(x, Ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];

  const double b_norm = norm2(b);
  const double threshold = opts.rel_tolerance * (b_norm > 0 ? b_norm : 1.0);

  SolveResult res;
  double r_norm = norm2(r);
  if (r_norm <= threshold) {
    res.converged = true;
    res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
    return res;
  }

  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    A.multiply(p, Ap);
    const double pAp = dot(p, Ap);
    TACOS_ASSERT(pAp > 0.0, "matrix is not positive definite (pAp=" << pAp
                                                                    << ")");
    const double alpha = rz / pAp;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    r_norm = norm2(r);
    if (r_norm <= threshold) {
      res.converged = true;
      res.iterations = it;
      res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  res.converged = false;
  res.iterations = opts.max_iterations;
  res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
  return res;
}

SolveResult solve_gauss_seidel(const CsrMatrix& A, const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& opts) {
  const std::size_t n = A.rows();
  TACOS_CHECK(b.size() == n && x.size() == n,
              "dimension mismatch in Gauss-Seidel");
  const auto& rp = A.row_ptr();
  const auto& ci = A.col_idx();
  const auto& v = A.values();

  const double b_norm = norm2(b);
  const double threshold = opts.rel_tolerance * (b_norm > 0 ? b_norm : 1.0);

  SolveResult res;
  std::vector<double> r(n);
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      double diag = 0.0;
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (ci[k] == i)
          diag = v[k];
        else
          acc -= v[k] * x[ci[k]];
      }
      TACOS_CHECK(diag != 0.0, "zero diagonal at row " << i);
      x[i] = acc / diag;
    }
    // Residual check every iteration (GS is tests-only; clarity > speed).
    A.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double r_norm = norm2(r);
    if (r_norm <= threshold) {
      res.converged = true;
      res.iterations = it;
      res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
      return res;
    }
  }
  res.converged = false;
  res.iterations = opts.max_iterations;
  A.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  res.residual_norm = b_norm > 0 ? norm2(r) / b_norm : norm2(r);
  return res;
}

}  // namespace tacos
