#include "linalg/solvers.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.hpp"
#include "common/errors.hpp"
#include "linalg/chunked.hpp"
#include "obs/metrics.hpp"

namespace tacos {

double norm2(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& A) {
  const std::vector<double> diag = A.diagonal();
  inv_diag_.resize(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) {
    if (diag[i] <= 0.0)
      throw SolverError("pcg", 0, 0.0,
                        "non-positive diagonal at row " + std::to_string(i) +
                            " — matrix not SPD-assembled");
    inv_diag_[i] = 1.0 / diag[i];
  }
}

double JacobiPreconditioner::apply_dot(const std::vector<double>& r,
                                       std::vector<double>& z) {
  const std::size_t n = inv_diag_.size();
  return reduce_chunks(n, chunk_pool(n), partials_,
                       [&](std::size_t lo, std::size_t hi) {
                         double acc = 0.0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           z[i] = inv_diag_[i] * r[i];
                           acc += r[i] * z[i];
                         }
                         return acc;
                       });
}

namespace {

/// One histogram across every PCG invocation: the preconditioner A/B
/// story (`--precond=jacobi|mg`) reads directly off this distribution.
void record_pcg_iterations(const SolveResult& res) {
  if (!obs::metrics_enabled()) return;
  static obs::Histogram iters = obs::MetricsRegistry::global().histogram(
      "pcg.iterations", obs::pow2_edges(1, 4096));
  iters.observe(static_cast<double>(res.iterations));
}

}  // namespace

SolveResult solve_pcg(const CsrMatrix& A, const std::vector<double>& b,
                      std::vector<double>& x, const SolveOptions& opts) {
  const std::size_t n = A.rows();
  if (b.size() != n || x.size() != n)
    throw SolverError("pcg", 0, 0.0, "dimension mismatch: matrix has " +
                                         std::to_string(n) + " rows, b " +
                                         std::to_string(b.size()) + ", x " +
                                         std::to_string(x.size()));

  ThreadPool* const par = chunk_pool(n);

  // The preconditioner: injected (ThermalModel's multigrid hierarchy) or
  // the built-in Jacobi fallback.  Jacobi reproduces the historical fused
  // D⁻¹-apply pass exactly, so existing results are bit-identical.
  std::unique_ptr<JacobiPreconditioner> own_jacobi;
  Preconditioner* precond = opts.preconditioner;
  if (!precond) {
    own_jacobi = std::make_unique<JacobiPreconditioner>(A);
    precond = own_jacobi.get();
  }

  std::vector<double> r(n), z(n), p(n), Ap(n);
  std::vector<double> partials;

  // r = b - A x, with ||r||^2 in the same pass.
  double rr = reduce_chunks(n, par, partials, [&](std::size_t lo,
                                                  std::size_t hi) {
    spmv_rows(A, x, Ap, lo, hi);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      r[i] = b[i] - Ap[i];
      acc += r[i] * r[i];
    }
    return acc;
  });

  const double b_norm = std::sqrt(reduce_chunks(
      n, par, partials, [&](std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += b[i] * b[i];
        return acc;
      }));
  const double threshold = opts.rel_tolerance * (b_norm > 0 ? b_norm : 1.0);

  SolveResult res;
  double r_norm = std::sqrt(rr);
  if (r_norm <= threshold) {
    res.converged = true;
    res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
    record_pcg_iterations(res);
    return res;
  }

  // z = M^{-1} r with rz = r·z fused inside the preconditioner apply.
  double rz = precond->apply_dot(r, z);
  p = z;

  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    if (opts.cancel) opts.cancel->poll();
    // Ap = A p and pAp = p·Ap in one pass over the matrix.
    const double pAp =
        reduce_chunks(n, par, partials, [&](std::size_t lo, std::size_t hi) {
          spmv_rows(A, p, Ap, lo, hi);
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) acc += p[i] * Ap[i];
          return acc;
        });
    if (!(pAp > 0.0)) {
      std::ostringstream os;
      os << "matrix is not positive definite (pAp=" << pAp << ")";
      throw SolverError("pcg", it, b_norm > 0 ? r_norm / b_norm : r_norm,
                        os.str());
    }
    const double alpha = rz / pAp;

    // x += alpha p, r -= alpha Ap, and ||r||^2 fused into one pass.
    rr = reduce_chunks(n, par, partials,
                       [&](std::size_t lo, std::size_t hi) {
                         double acc = 0.0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           x[i] += alpha * p[i];
                           r[i] -= alpha * Ap[i];
                           acc += r[i] * r[i];
                         }
                         return acc;
                       });
    r_norm = std::sqrt(rr);
    if (r_norm <= threshold) {
      res.converged = true;
      res.iterations = it;
      res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
      record_pcg_iterations(res);
      return res;
    }

    // z = M^{-1} r with rz_new = r·z fused inside the preconditioner apply.
    const double rz_new = precond->apply_dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for_chunks(n, par, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) p[i] = z[i] + beta * p[i];
    });
  }
  res.converged = false;
  res.iterations = opts.max_iterations;
  res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
  record_pcg_iterations(res);
  return res;
}

SolveResult solve_gauss_seidel(const CsrMatrix& A, const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& opts) {
  const std::size_t n = A.rows();
  if (b.size() != n || x.size() != n)
    throw SolverError("gauss-seidel", 0, 0.0, "dimension mismatch");
  TACOS_CHECK(opts.residual_check_interval >= 1,
              "residual_check_interval must be >= 1");
  const auto& rp = A.row_ptr();
  const auto& ci = A.col_idx();
  const auto& v = A.values();

  const double b_norm = norm2(b);
  const double threshold = opts.rel_tolerance * (b_norm > 0 ? b_norm : 1.0);

  SolveResult res;
  std::vector<double> r(n);
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    if (opts.cancel) opts.cancel->poll();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      double diag = 0.0;
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (ci[k] == i)
          diag = v[k];
        else
          acc -= v[k] * x[ci[k]];
      }
      if (diag == 0.0)
        throw SolverError("gauss-seidel", it, 0.0,
                          "zero diagonal at row " + std::to_string(i));
      x[i] = acc / diag;
    }
    // GS is tests-only, but the full residual (an extra SpMV) every sweep
    // dominated its runtime; check it only every residual_check_interval
    // sweeps and on the final sweep.  Convergence may thus be detected up
    // to interval-1 sweeps late; the reported state is still converged.
    if (it % opts.residual_check_interval != 0 && it != opts.max_iterations)
      continue;
    A.multiply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double r_norm = norm2(r);
    if (r_norm <= threshold) {
      res.converged = true;
      res.iterations = it;
      res.residual_norm = b_norm > 0 ? r_norm / b_norm : r_norm;
      return res;
    }
  }
  res.converged = false;
  res.iterations = opts.max_iterations;
  A.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  res.residual_norm = b_norm > 0 ? norm2(r) / b_norm : norm2(r);
  return res;
}

SolveResult solve_adjoint(const CsrMatrix& A, const std::vector<double>& b,
                          std::vector<double>& lambda,
                          const SolveOptions& opts) {
  // A is SPD (asserted structurally by the preconditioners): Aᵀ = A, so
  // the adjoint solve is a plain forward solve.
  return solve_pcg(A, b, lambda, opts);
}

}  // namespace tacos
