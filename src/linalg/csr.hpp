#pragma once
/// \file csr.hpp
/// \brief Compressed-sparse-row matrix and a triplet-based builder.
///
/// The thermal grid model assembles a symmetric positive-definite
/// conductance matrix G (units W/K) from pairwise conductances.  The
/// builder accepts duplicate (i, j) insertions and sums them, which lets
/// the assembly code add one conductance per resistor without bookkeeping.

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace tacos {

/// Immutable CSR matrix (square, double precision).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
            std::vector<std::size_t> col_idx, std::vector<double> values)
      : n_(n),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {
    TACOS_CHECK(row_ptr_.size() == n_ + 1, "row_ptr size mismatch");
    TACOS_CHECK(col_idx_.size() == values_.size(), "col/val size mismatch");
  }

  std::size_t rows() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  /// y = A * x.  x and y must have size rows(); y is overwritten.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const {
    TACOS_CHECK(x.size() == n_ && y.size() == n_, "dimension mismatch");
    for (std::size_t i = 0; i < n_; ++i) {
      double acc = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        acc += values_[k] * x[col_idx_[k]];
      y[i] = acc;
    }
  }

  /// Diagonal entries (0 where a row has no stored diagonal).
  std::vector<double> diagonal() const {
    std::vector<double> d(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        if (col_idx_[k] == i) d[i] += values_[k];
    return d;
  }

  /// Raw access for solvers.
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Accumulating triplet builder.  add(i, j, v) may be called repeatedly for
/// the same (i, j); values are summed on build().
class CsrBuilder {
 public:
  explicit CsrBuilder(std::size_t n) : n_(n) {}

  std::size_t rows() const { return n_; }

  /// Accumulate A(i, j) += v.
  void add(std::size_t i, std::size_t j, double v) {
    TACOS_ASSERT(i < n_ && j < n_,
                 "triplet index out of range: (" << i << "," << j << ")");
    triplets_.push_back({i, j, v});
  }

  /// Convenience for resistive networks: add conductance g between nodes
  /// i and j (off-diagonals -g, diagonals +g), keeping the matrix SPD.
  void add_conductance(std::size_t i, std::size_t j, double g) {
    TACOS_ASSERT(g >= 0.0, "negative conductance " << g);
    if (g == 0.0) return;
    add(i, i, g);
    add(j, j, g);
    add(i, j, -g);
    add(j, i, -g);
  }

  /// Add conductance g from node i to a fixed-temperature reference (the
  /// reference node is eliminated: only the diagonal term remains; the
  /// caller adds g * T_ref to the right-hand side).
  void add_conductance_to_reference(std::size_t i, double g) {
    TACOS_ASSERT(g >= 0.0, "negative conductance " << g);
    if (g == 0.0) return;
    add(i, i, g);
  }

  /// Build the CSR matrix, summing duplicate entries.
  CsrMatrix build() const;

 private:
  struct Triplet {
    std::size_t i, j;
    double v;
  };
  std::size_t n_;
  std::vector<Triplet> triplets_;
};

}  // namespace tacos
