#pragma once
/// \file chunked.hpp
/// \brief Deterministic chunked vector kernels shared by the solvers and
///        the multigrid preconditioner.
///
/// Every parallel loop and reduction in the linear-algebra hot path runs
/// over fixed-size row chunks whose boundaries depend only on the problem
/// size — never on the thread count — and reductions combine the per-chunk
/// partial sums **in chunk order** on the calling thread.  The serial path
/// uses the same boundaries, so results are bit-identical at 1, 2, or N
/// threads (the contract docs/PERFORMANCE.md describes and
/// tests/parallel_determinism_test.cpp pins down).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "linalg/csr.hpp"

namespace tacos {

/// Reduction chunk size (rows).  Chunk boundaries — and therefore the
/// floating-point summation order — depend only on this constant and the
/// problem size, never on the thread count.
inline constexpr std::size_t kChunkRows = 2048;

/// Row count below which the kernels skip the pool entirely (the serial
/// path uses the same chunk boundaries, so results do not change — only
/// the dispatch overhead is avoided).  Thermal systems at grid 32+ are
/// above this; the small test matrices and coarse multigrid levels are
/// below it.
inline constexpr std::size_t kParallelMinRows = 8192;

/// The pool to hand the chunked kernels for an n-row system: the global
/// pool when the system is large enough to amortize dispatch and the pool
/// has workers, nullptr (serial, same chunk boundaries) otherwise.
inline ThreadPool* chunk_pool(std::size_t n) {
  ThreadPool& pool = ThreadPool::global();
  return (n >= kParallelMinRows && pool.thread_count() > 1) ? &pool : nullptr;
}

/// Runs `body(lo, hi)` over every kChunkRows-sized chunk of [0, n), on
/// `pool` when given (nullptr = serial).  `body` must be data-parallel
/// across chunks (each chunk touches only its own rows / partial slot).
template <typename Body>
void for_chunks(std::size_t n, ThreadPool* pool, Body&& body) {
  if (pool) {
    pool->parallel_for(n, kChunkRows, body);
  } else {
    for (std::size_t lo = 0; lo < n; lo += kChunkRows)
      body(lo, std::min(n, lo + kChunkRows));
  }
}

/// Deterministic reduction: `chunk_fn(lo, hi)` returns one partial sum per
/// chunk; partials are combined sequentially in chunk order.
template <typename ChunkFn>
double reduce_chunks(std::size_t n, ThreadPool* pool,
                     std::vector<double>& partials, ChunkFn&& chunk_fn) {
  const std::size_t n_chunks = (n + kChunkRows - 1) / kChunkRows;
  partials.assign(n_chunks, 0.0);
  for_chunks(n, pool, [&](std::size_t lo, std::size_t hi) {
    partials[lo / kChunkRows] = chunk_fn(lo, hi);
  });
  double acc = 0.0;
  for (double v : partials) acc += v;
  return acc;
}

/// Row range of a sparse matrix-vector product: y[lo..hi) = (A x)[lo..hi).
///
/// The inner loop walks raw pointers over a contiguous [begin, end) slice
/// of the value/column arrays — no per-iteration bounds re-derivation —
/// which lets the compiler unroll and vectorize the gather+FMA.  The
/// left-to-right summation order per row is unchanged from the canonical
/// loop, so results are bit-identical to it.
inline void spmv_rows(const CsrMatrix& A, const std::vector<double>& x,
                      std::vector<double>& y, std::size_t lo, std::size_t hi) {
  const std::size_t* const rp = A.row_ptr().data();
  const std::size_t* const ci = A.col_idx().data();
  const double* const va = A.values().data();
  const double* const xv = x.data();
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t b = rp[i], e = rp[i + 1];
    double acc = 0.0;
    for (std::size_t k = b; k < e; ++k) acc += va[k] * xv[ci[k]];
    y[i] = acc;
  }
}

/// Fused residual row range: out[lo..hi) = (r - A x)[lo..hi).  One pass
/// over the matrix slice instead of an SpMV followed by a subtraction —
/// same per-row summation order as spmv_rows, so bit-compatible with the
/// two-pass formulation.
inline void residual_rows(const CsrMatrix& A, const std::vector<double>& x,
                          const std::vector<double>& r, std::vector<double>& out,
                          std::size_t lo, std::size_t hi) {
  const std::size_t* const rp = A.row_ptr().data();
  const std::size_t* const ci = A.col_idx().data();
  const double* const va = A.values().data();
  const double* const xv = x.data();
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t b = rp[i], e = rp[i + 1];
    double acc = 0.0;
    for (std::size_t k = b; k < e; ++k) acc += va[k] * xv[ci[k]];
    out[i] = r[i] - acc;
  }
}

/// Single-precision CSR slice for the mixed-precision multigrid smoother:
/// float values and 32-bit column indices halve the memory traffic of a
/// smoothing sweep (the smoother only needs a rough error reduction; the
/// V-cycle's residuals and corrections stay double).
struct CsrF32 {
  std::vector<std::uint32_t> col_idx;
  std::vector<float> values;
  explicit CsrF32(const CsrMatrix& A) {
    col_idx.reserve(A.nnz());
    values.reserve(A.nnz());
    for (std::size_t c : A.col_idx())
      col_idx.push_back(static_cast<std::uint32_t>(c));
    for (double v : A.values()) values.push_back(static_cast<float>(v));
  }
};

/// Float SpMV row range over the f32 mirror (row_ptr shared with `A`).
inline void spmv_rows_f32(const CsrMatrix& A, const CsrF32& Af,
                          const std::vector<float>& x, std::vector<float>& y,
                          std::size_t lo, std::size_t hi) {
  const std::size_t* const rp = A.row_ptr().data();
  const std::uint32_t* const ci = Af.col_idx.data();
  const float* const va = Af.values.data();
  const float* const xv = x.data();
  for (std::size_t i = lo; i < hi; ++i) {
    const std::size_t b = rp[i], e = rp[i + 1];
    float acc = 0.0f;
    for (std::size_t k = b; k < e; ++k) acc += va[k] * xv[ci[k]];
    y[i] = acc;
  }
}

}  // namespace tacos
