#pragma once
/// \file hotspot_export.hpp
/// \brief Export layouts, layer stacks and power maps as HotSpot 6.0
///        input files (.flp floorplans, .lcf layer configuration, .ptrace
///        power trace, plus a config snippet).
///
/// The paper runs its thermal simulations in HotSpot [28]; this library
/// replaces HotSpot with its own solver, but anyone with a HotSpot
/// checkout can cross-validate any tacos configuration by exporting it:
///
///   export_hotspot("out/", "org16", layout, make_25d_stack(), power);
///   hotspot -f out/org16_l4.flp -p out/org16.ptrace [...]
///           -grid_layer_file out/org16.lcf -model_type grid
///
/// Conventions (HotSpot file formats):
///   * .flp lines: `<unit> <width_m> <height_m> <left_m> <bottom_m>`,
///     all in metres; each layer's floorplan must tile its bounding box,
///     so inter-chiplet gaps are emitted as `FILLER*` epoxy blocks;
///   * .lcf stanzas: layer number, lateral heat flow flag, power flag,
///     specific heat (J/(m^3·K)), resistivity (m·K/W), thickness (m),
///     floorplan file;
///   * .ptrace: unit-name header plus one row of watts (steady state).

#include <string>
#include <vector>

#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "thermal/power_map.hpp"

namespace tacos::hotspot {

/// Files produced by one export.
struct ExportResult {
  std::vector<std::string> floorplan_files;  ///< one .flp per layer
  std::string lcf_file;
  std::string ptrace_file;
  std::string config_file;
};

/// A named rectangle in a HotSpot floorplan (mm here; written as metres).
struct FlpBlock {
  std::string name;
  Rect rect;
};

/// Decompose `domain` minus `holes` into axis-aligned rectangles (the
/// filler blocks HotSpot floorplans require).  Exposed for testing.
std::vector<Rect> complement_rectangles(const Rect& domain,
                                        const std::vector<Rect>& holes);

/// Build the floorplan blocks for one layer of the stack: chiplet-extent
/// layers get one block per chiplet (or per tile on the source layer when
/// `per_tile_source` is set) plus epoxy fillers; full-extent layers get a
/// single block.  Exposed for testing.
std::vector<FlpBlock> layer_blocks(const ChipletLayout& layout,
                                   const Layer& layer, bool source_per_tile);

/// Write the full HotSpot input set into `dir` with file prefix `name`.
/// The power trace assigns each source-layer block its power from `power`
/// by area overlap.  Throws tacos::Error on I/O failure.
ExportResult export_hotspot(const std::string& dir, const std::string& name,
                            const ChipletLayout& layout,
                            const LayerStack& stack, const PowerMap& power,
                            const PackageConvention& package = {});

/// Parse a HotSpot .flp file back into blocks (metres converted to mm) —
/// used by the round-trip tests and handy for importing real floorplans.
std::vector<FlpBlock> parse_flp(const std::string& path);

}  // namespace tacos::hotspot
