#include "io/hotspot_export.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/check.hpp"

namespace tacos::hotspot {

namespace {

constexpr double kMmToM = 1e-3;

/// All export files publish atomically (temp file + rename, stream state
/// checked after flush — see common/atomic_file.hpp): a crash or full
/// disk mid-export never leaves a truncated file at the target path.
AtomicFile open_out(const std::string& path) {
  AtomicFile out(path);
  out.stream() << std::setprecision(9);
  return out;
}

void write_flp(const std::string& path, const std::vector<FlpBlock>& blocks) {
  AtomicFile file = open_out(path);
  std::ostream& out = file.stream();
  out << "# HotSpot floorplan exported by tacos (units: metres)\n"
      << "# <unit-name> <width> <height> <left-x> <bottom-y>\n";
  for (const auto& b : blocks) {
    out << b.name << '\t' << b.rect.w * kMmToM << '\t' << b.rect.h * kMmToM
        << '\t' << b.rect.x * kMmToM << '\t' << b.rect.y * kMmToM << '\n';
  }
  file.commit();
}

}  // namespace

std::vector<Rect> complement_rectangles(const Rect& domain,
                                        const std::vector<Rect>& holes) {
  // Slab decomposition: cut the domain into horizontal slabs at every
  // hole boundary, then emit the uncovered x-intervals of each slab.
  std::set<double> ys = {domain.y, domain.y2()};
  for (const auto& h : holes) {
    if (h.y > domain.y && h.y < domain.y2()) ys.insert(h.y);
    if (h.y2() > domain.y && h.y2() < domain.y2()) ys.insert(h.y2());
  }
  std::vector<Rect> out;
  auto it = ys.begin();
  double y0 = *it;
  for (++it; it != ys.end(); ++it) {
    const double y1 = *it;
    const double ymid = (y0 + y1) / 2;
    // Collect x-intervals of holes spanning this slab.
    std::vector<std::pair<double, double>> spans;
    for (const auto& h : holes) {
      if (h.y <= ymid && h.y2() >= ymid) {
        spans.emplace_back(std::max(h.x, domain.x),
                           std::min(h.x2(), domain.x2()));
      }
    }
    std::sort(spans.begin(), spans.end());
    double x = domain.x;
    for (const auto& [sx, ex] : spans) {
      if (sx > x + 1e-12)
        out.push_back(Rect::make(x, y0, sx - x, y1 - y0));
      x = std::max(x, ex);
    }
    if (domain.x2() > x + 1e-12)
      out.push_back(Rect::make(x, y0, domain.x2() - x, y1 - y0));
    y0 = y1;
  }
  return out;
}

std::vector<FlpBlock> layer_blocks(const ChipletLayout& layout,
                                   const Layer& layer, bool source_per_tile) {
  std::vector<FlpBlock> blocks;
  if (layer.extent == LayerExtent::kFull) {
    blocks.push_back({layer.name + "_slab", layout.interposer()});
    return blocks;
  }
  std::vector<Rect> holes;
  if (source_per_tile && layer.heat_source && layout.has_tiles()) {
    const int n = layout.spec().tiles_per_side;
    for (int ty = 0; ty < n; ++ty) {
      for (int tx = 0; tx < n; ++tx) {
        std::ostringstream name;
        name << "tile_" << tx << '_' << ty;
        blocks.push_back({name.str(), layout.tile_rect(tx, ty)});
      }
    }
    for (const auto& c : layout.chiplets()) holes.push_back(c.rect);
  } else {
    for (std::size_t i = 0; i < layout.chiplets().size(); ++i) {
      std::ostringstream name;
      name << layer.name << "_chiplet" << i;
      blocks.push_back({name.str(), layout.chiplets()[i].rect});
      holes.push_back(layout.chiplets()[i].rect);
    }
  }
  const std::vector<Rect> fills =
      complement_rectangles(layout.interposer(), holes);
  for (std::size_t i = 0; i < fills.size(); ++i) {
    std::ostringstream name;
    name << layer.name << "_FILLER" << i;
    blocks.push_back({name.str(), fills[i]});
  }
  return blocks;
}

ExportResult export_hotspot(const std::string& dir, const std::string& name,
                            const ChipletLayout& layout,
                            const LayerStack& stack, const PowerMap& power,
                            const PackageConvention& package) {
  TACOS_CHECK(!stack.layers.empty(), "empty layer stack");
  ExportResult res;
  const std::string prefix = dir.empty() ? name : dir + "/" + name;

  // Per-layer floorplans; the heat-source layer is exported per tile so
  // the power trace carries per-core powers.
  std::vector<std::vector<FlpBlock>> per_layer;
  for (const auto& layer : stack.layers) {
    per_layer.push_back(layer_blocks(layout, layer, true));
  }
  for (std::size_t l = 0; l < stack.layers.size(); ++l) {
    std::ostringstream path;
    path << prefix << "_l" << l << ".flp";
    write_flp(path.str(), per_layer[l]);
    res.floorplan_files.push_back(path.str());
  }

  // Layer configuration file (bottom layer first, HotSpot numbering).
  res.lcf_file = prefix + ".lcf";
  {
    AtomicFile file = open_out(res.lcf_file);
    std::ostream& out = file.stream();
    out << "# HotSpot layer configuration exported by tacos\n";
    for (std::size_t l = 0; l < stack.layers.size(); ++l) {
      const Layer& layer = stack.layers[l];
      // Use the occupied material's properties; HotSpot grid mode reads
      // per-block properties from the floorplan if given, but the common
      // usage is homogeneous layer properties.
      const double resistivity = 1.0 / layer.occupied.k_vertical;  // m·K/W
      out << "# layer " << l << ": " << layer.name << '\n'
          << l << '\n'
          << "Y\n"                                      // lateral heat flow
          << (layer.heat_source ? "Y" : "N") << '\n'    // dissipates power
          << layer.occupied.vol_heat_cap << '\n'        // J/(m^3·K)
          << resistivity << '\n'
          << layer.thickness_mm * kMmToM << '\n'
          << res.floorplan_files[l] << '\n';
    }
    file.commit();
  }

  // Power trace: one row, power per source-layer block by area overlap.
  res.ptrace_file = prefix + ".ptrace";
  {
    const std::size_t src = stack.source_layer();
    const auto& blocks = per_layer[src];
    AtomicFile file = open_out(res.ptrace_file);
    std::ostream& out = file.stream();
    for (std::size_t i = 0; i < blocks.size(); ++i)
      out << blocks[i].name << (i + 1 < blocks.size() ? '\t' : '\n');
    double exported = 0.0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      double watts = 0.0;
      for (const auto& s : power.sources) {
        const double ov = s.rect.overlap_area(blocks[i].rect);
        if (ov > 0) watts += s.watts * ov / s.rect.area();
      }
      exported += watts;
      out << watts << (i + 1 < blocks.size() ? '\t' : '\n');
    }
    TACOS_CHECK(exported > 0.999 * power.total(),
                "power map extends beyond the source layer blocks ("
                    << exported << " of " << power.total() << " W exported)");
    file.commit();
  }

  // Config snippet matching our package model.
  res.config_file = prefix + ".config";
  {
    const double w_sink =
        layout.interposer().w * package.spreader_scale * package.sink_scale;
    const double a_sink_m2 = w_sink * w_sink * 1e-6;
    AtomicFile file = open_out(res.config_file);
    std::ostream& out = file.stream();
    out << "# HotSpot config snippet exported by tacos\n"
        << "-ambient " << package.ambient_c + 273.15 << '\n'
        << "-s_sink " << w_sink * kMmToM << '\n'
        << "-t_sink " << package.sink_thickness_mm * kMmToM << '\n'
        << "-s_spreader "
        << layout.interposer().w * package.spreader_scale * kMmToM << '\n'
        << "-t_spreader " << package.spreader_thickness_mm * kMmToM << '\n'
        << "-r_convec " << 1.0 / (package.h_convection * a_sink_m2) << '\n';
    file.commit();
  }
  return res;
}

std::vector<FlpBlock> parse_flp(const std::string& path) {
  std::ifstream in(path);
  TACOS_CHECK(in.good(), "cannot open " << path);
  std::vector<FlpBlock> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string name;
    double w, h, x, y;
    if (is >> name >> w >> h >> x >> y) {
      out.push_back({name, Rect::make(x / kMmToM, y / kMmToM, w / kMmToM,
                                      h / kMmToM)});
    }
  }
  return out;
}

}  // namespace tacos::hotspot
