#pragma once
/// \file policy.hpp
/// \brief Workload (thread-to-core) allocation policies.
///
/// The paper uses the MinTemp policy of Zhang et al. [20]: threads are
/// assigned "starting from outer rows or columns and then moving to inner
/// rows or columns of the whole system in a chessboard manner", which
/// minimizes the operating temperature by spreading active cores toward
/// the system boundary and interleaving them.  We implement MinTemp plus
/// three baseline policies used for ablation studies:
///
///   * kRowMajor     — naive packing from one corner, row by row;
///   * kCenterFirst  — adversarial: fills the thermal worst-case center;
///   * kCheckerboard — global parity interleave without ring ordering.
///
/// A policy produces a deterministic activation order over the logical
/// tile grid; activating `p` cores means powering the first `p` tiles of
/// that order.

#include <string_view>
#include <vector>

#include "floorplan/system_spec.hpp"

namespace tacos {

/// Available allocation policies.
enum class AllocPolicy { kMinTemp, kRowMajor, kCenterFirst, kCheckerboard };

/// Human-readable policy name (for reports).
std::string_view alloc_policy_name(AllocPolicy p);

/// Full activation order of all tiles under `policy`.  Returned indices
/// are flat logical tile ids (ty * tiles_per_side + tx).
std::vector<int> activation_order(AllocPolicy policy,
                                  const SystemSpec& spec = {});

/// Convenience: the set of active tile ids when `active_cores` threads are
/// allocated under `policy` (the first `active_cores` entries of the
/// activation order).
std::vector<int> active_tiles(AllocPolicy policy, int active_cores,
                              const SystemSpec& spec = {});

}  // namespace tacos
