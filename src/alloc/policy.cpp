#include "alloc/policy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tacos {

std::string_view alloc_policy_name(AllocPolicy p) {
  switch (p) {
    case AllocPolicy::kMinTemp: return "MinTemp";
    case AllocPolicy::kRowMajor: return "RowMajor";
    case AllocPolicy::kCenterFirst: return "CenterFirst";
    case AllocPolicy::kCheckerboard: return "Checkerboard";
  }
  TACOS_ASSERT(false, "unknown policy");
  return "";
}

namespace {

/// Ring index of a tile: 0 on the outermost rows/columns, growing inward.
int ring_of(int tx, int ty, int n) {
  return std::min(std::min(tx, ty), std::min(n - 1 - tx, n - 1 - ty));
}

}  // namespace

std::vector<int> activation_order(AllocPolicy policy, const SystemSpec& spec) {
  const int n = spec.tiles_per_side;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n) * n);
  for (int ty = 0; ty < n; ++ty)
    for (int tx = 0; tx < n; ++tx) order.push_back(ty * n + tx);

  const auto tx_of = [n](int id) { return id % n; };
  const auto ty_of = [n](int id) { return id / n; };

  switch (policy) {
    case AllocPolicy::kRowMajor:
      break;  // already row-major
    case AllocPolicy::kMinTemp:
      // Outer rings first; within a ring, chessboard parity (even tiles
      // before odd) so neighbours of an active core stay dark as long as
      // possible; ties broken by (ty, tx) for determinism.
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        const int ra = ring_of(tx_of(a), ty_of(a), n);
        const int rb = ring_of(tx_of(b), ty_of(b), n);
        if (ra != rb) return ra < rb;
        const int pa = (tx_of(a) + ty_of(a)) % 2;
        const int pb = (tx_of(b) + ty_of(b)) % 2;
        return pa < pb;
      });
      break;
    case AllocPolicy::kCenterFirst:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return ring_of(tx_of(a), ty_of(a), n) >
               ring_of(tx_of(b), ty_of(b), n);
      });
      break;
    case AllocPolicy::kCheckerboard:
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return (tx_of(a) + ty_of(a)) % 2 < (tx_of(b) + ty_of(b)) % 2;
      });
      break;
  }
  return order;
}

std::vector<int> active_tiles(AllocPolicy policy, int active_cores,
                              const SystemSpec& spec) {
  TACOS_CHECK(active_cores >= 1 && active_cores <= spec.core_count(),
              "active core count " << active_cores << " out of range [1, "
                                   << spec.core_count() << "]");
  std::vector<int> order = activation_order(policy, spec);
  order.resize(static_cast<std::size_t>(active_cores));
  return order;
}

}  // namespace tacos
