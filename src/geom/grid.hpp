#pragma once
/// \file grid.hpp
/// \brief Uniform 2D grid over a rectangular domain (the thermal mesh).
///
/// The thermal solver discretizes every layer of the package onto the same
/// N×M grid covering the interposer footprint.  GridSpec maps between grid
/// indices and physical cell rectangles and rasterizes arbitrary rectangles
/// onto cells with exact area weights.

#include <cstddef>
#include <functional>
#include <vector>

#include "common/check.hpp"
#include "geom/rect.hpp"

namespace tacos {

/// A uniform nx × ny grid covering `domain`.  Cell (ix, iy) has its
/// lower-left corner at (domain.x + ix*dx, domain.y + iy*dy).
class GridSpec {
 public:
  GridSpec(Rect domain, std::size_t nx, std::size_t ny)
      : domain_(domain), nx_(nx), ny_(ny) {
    TACOS_CHECK(nx >= 1 && ny >= 1, "grid must have at least one cell");
    TACOS_CHECK(domain.w > 0 && domain.h > 0,
                "grid domain must have positive area");
    dx_ = domain.w / static_cast<double>(nx);
    dy_ = domain.h / static_cast<double>(ny);
  }

  const Rect& domain() const { return domain_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t cell_count() const { return nx_ * ny_; }
  double dx() const { return dx_; }  ///< cell width (mm)
  double dy() const { return dy_; }  ///< cell height (mm)
  double cell_area() const { return dx_ * dy_; }

  /// Flat index of cell (ix, iy); row-major with x fastest.
  std::size_t index(std::size_t ix, std::size_t iy) const {
    TACOS_ASSERT(ix < nx_ && iy < ny_, "cell index out of range");
    return iy * nx_ + ix;
  }

  /// Physical rectangle of cell (ix, iy).
  Rect cell_rect(std::size_t ix, std::size_t iy) const {
    return Rect{domain_.x + static_cast<double>(ix) * dx_,
                domain_.y + static_cast<double>(iy) * dy_, dx_, dy_};
  }

  /// Invoke fn(ix, iy, overlap_area_fraction_of_cell) for every cell that
  /// `r` overlaps.  Fractions are exact (ratio of intersection area to cell
  /// area), so rasterizing a block and summing fraction*cell_area recovers
  /// the block's clipped area to machine precision.
  void rasterize(const Rect& r,
                 const std::function<void(std::size_t, std::size_t, double)>&
                     fn) const {
    if (r.w <= 0 || r.h <= 0) return;
    // Clip to domain and find the index range of touched cells.
    const double x0 = std::max(r.x, domain_.x);
    const double y0 = std::max(r.y, domain_.y);
    const double x1 = std::min(r.x2(), domain_.x2());
    const double y1 = std::min(r.y2(), domain_.y2());
    if (x1 <= x0 || y1 <= y0) return;
    const auto clamp_idx = [](double v, std::size_t n) {
      if (v < 0) return std::size_t{0};
      const auto i = static_cast<std::size_t>(v);
      return std::min(i, n - 1);
    };
    const std::size_t ix0 = clamp_idx((x0 - domain_.x) / dx_, nx_);
    const std::size_t iy0 = clamp_idx((y0 - domain_.y) / dy_, ny_);
    const std::size_t ix1 = clamp_idx((x1 - domain_.x) / dx_ - 1e-12, nx_);
    const std::size_t iy1 = clamp_idx((y1 - domain_.y) / dy_ - 1e-12, ny_);
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
      for (std::size_t ix = ix0; ix <= ix1; ++ix) {
        const double a = cell_rect(ix, iy).overlap_area(r);
        if (a > 0) fn(ix, iy, a / cell_area());
      }
    }
  }

 private:
  Rect domain_;
  std::size_t nx_, ny_;
  double dx_, dy_;
};

}  // namespace tacos
