#pragma once
/// \file rect.hpp
/// \brief Axis-aligned rectangle geometry for floorplans (units: mm).
///
/// Floorplan blocks, chiplets, interposer outlines, spreader and sink
/// extents are all axis-aligned rectangles.  The thermal grid builder uses
/// overlap_area() to rasterize blocks onto grid cells, so the intersection
/// math here is the geometric foundation of the whole thermal model.

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tacos {

/// 2D point in mm.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Axis-aligned rectangle: origin (lower-left corner) plus size, in mm.
/// Invariant: w >= 0 and h >= 0 (enforced by the named constructor).
struct Rect {
  double x = 0.0;  ///< lower-left corner x (mm)
  double y = 0.0;  ///< lower-left corner y (mm)
  double w = 0.0;  ///< width (mm)
  double h = 0.0;  ///< height (mm)

  /// Named constructor validating non-negative dimensions.
  static Rect make(double x, double y, double w, double h) {
    TACOS_CHECK(w >= 0.0 && h >= 0.0,
                "rectangle dimensions must be non-negative: w=" << w
                                                                << " h=" << h);
    return Rect{x, y, w, h};
  }

  /// Rectangle centered at (cx, cy).
  static Rect centered(double cx, double cy, double w, double h) {
    return make(cx - w / 2.0, cy - h / 2.0, w, h);
  }

  double x2() const { return x + w; }  ///< right edge
  double y2() const { return y + h; }  ///< top edge
  double area() const { return w * h; }
  Point center() const { return {x + w / 2.0, y + h / 2.0}; }

  /// True if (px, py) lies inside or on the boundary.
  bool contains(double px, double py) const {
    return px >= x && px <= x2() && py >= y && py <= y2();
  }

  /// True if `other` lies entirely inside (or on the boundary of) *this.
  /// `tol` absorbs floating-point noise from accumulating spacings.
  bool contains(const Rect& other, double tol = 1e-9) const {
    return other.x >= x - tol && other.y >= y - tol &&
           other.x2() <= x2() + tol && other.y2() <= y2() + tol;
  }

  /// Area of intersection with `other` (0 if disjoint).
  double overlap_area(const Rect& other) const {
    const double ox = std::max(0.0, std::min(x2(), other.x2()) -
                                        std::max(x, other.x));
    const double oy = std::max(0.0, std::min(y2(), other.y2()) -
                                        std::max(y, other.y));
    return ox * oy;
  }

  /// True if the interiors overlap (touching edges do not count).
  /// `tol` treats sub-tolerance overlaps as touching, to be robust against
  /// floating-point accumulation when chiplets abut exactly.
  bool overlaps_interior(const Rect& other, double tol = 1e-9) const {
    const double ox = std::min(x2(), other.x2()) - std::max(x, other.x);
    const double oy = std::min(y2(), other.y2()) - std::max(y, other.y);
    return ox > tol && oy > tol;
  }

  /// This rectangle translated by (dx, dy).
  Rect translated(double dx, double dy) const {
    return Rect{x + dx, y + dy, w, h};
  }

  /// Smallest rectangle containing both *this and `other`.
  Rect united(const Rect& other) const {
    const double nx = std::min(x, other.x);
    const double ny = std::min(y, other.y);
    return Rect{nx, ny, std::max(x2(), other.x2()) - nx,
                std::max(y2(), other.y2()) - ny};
  }
};

/// Exact equality is rarely wanted for geometry; use approx_equal in tests.
inline bool approx_equal(const Rect& a, const Rect& b, double tol = 1e-9) {
  return std::abs(a.x - b.x) <= tol && std::abs(a.y - b.y) <= tol &&
         std::abs(a.w - b.w) <= tol && std::abs(a.h - b.h) <= tol;
}

}  // namespace tacos
