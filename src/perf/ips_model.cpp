#include "perf/ips_model.hpp"

#include <algorithm>

namespace tacos {

double parallel_speedup(const BenchmarkProfile& bench, int active_cores) {
  TACOS_CHECK(active_cores >= 1, "need at least one active core");
  const int p = std::min(active_cores, bench.sat_cores);
  return p / (1.0 + bench.sigma * (p - 1));
}

double effective_frequency(const BenchmarkProfile& bench, double freq_mhz) {
  TACOS_CHECK(freq_mhz > 0, "frequency must be positive");
  const double m = bench.mem_fraction;
  return 1.0 / ((1.0 - m) / freq_mhz + m / kNominalFreqMhz);
}

double system_ips(const BenchmarkProfile& bench, double freq_mhz,
                  int active_cores) {
  return bench.base_ipc * effective_frequency(bench, freq_mhz) *
         parallel_speedup(bench, active_cores);
}

}  // namespace tacos
