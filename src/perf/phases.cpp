#include "perf/phases.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numbers>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace tacos {

std::vector<Phase> synthetic_trace(const BenchmarkProfile& bench,
                                   double total_s, double dt_s,
                                   std::uint64_t seed) {
  TACOS_CHECK(total_s > 0 && dt_s > 0 && dt_s <= total_s,
              "bad trace duration: total=" << total_s << " dt=" << dt_s);
  // Structure parameters derived from the profile:
  //  * mean activity tracks (1 - mem_fraction): stalls idle the pipeline;
  //  * swing amplitude grows with memory-boundedness;
  //  * phase period: solvers with strong Amdahl overhead (sigma) have
  //    pronounced barrier phases -> longer periods.
  const double mean = 0.55 + 0.45 * (1.0 - bench.mem_fraction);
  const double swing = 0.10 + 0.55 * bench.mem_fraction;
  const double period_s = 0.05 + 400.0 * bench.sigma;  // 0.05 .. ~3.3 s

  Rng rng(seed ^ std::hash<std::string_view>{}(bench.name));
  std::vector<Phase> trace;
  const auto n = static_cast<std::size_t>(std::ceil(total_s / dt_s));
  trace.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = std::min(dt_s, total_s - t);
    // Square-ish wave (phases) + jitter.
    const double phase_pos =
        std::sin(2.0 * std::numbers::pi * t / period_s);
    const double square = phase_pos >= 0 ? 1.0 : -1.0;
    const double jitter = rng.uniform_real(-0.06, 0.06);
    const double a = mean + swing * 0.5 * square + jitter;
    trace.push_back({dt, std::clamp(a, 0.05, 1.0)});
    t += dt;
  }
  return trace;
}

double mean_activity(const std::vector<Phase>& trace) {
  double asum = 0.0, tsum = 0.0;
  for (const auto& p : trace) {
    asum += p.activity * p.duration_s;
    tsum += p.duration_s;
  }
  TACOS_CHECK(tsum > 0, "empty trace");
  return asum / tsum;
}

}  // namespace tacos
