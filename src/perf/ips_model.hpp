#pragma once
/// \file ips_model.hpp
/// \brief System performance (IPS) as a function of frequency and active
///        core count, per benchmark.
///
/// IPS(f, p) = base_ipc * f_eff(f) * S(min(p, sat_cores)) where:
///   * f_eff models memory-boundedness: core-time scales with 1/f but
///     memory time is frequency independent, so with memory fraction m
///     (measured at the nominal 1000 MHz),
///       f_eff(f) = 1 / ((1 - m)/f + m/f_nom);
///     at f = f_nom this is exactly f_nom.
///   * S(p) = p / (1 + sigma * (p - 1)) is Amdahl-style sublinear scaling,
///     clamped at the benchmark's saturation core count.
///
/// Units: "IPS" values are in millions of instructions per second (the
/// frequency unit is MHz); only ratios of IPS values matter to the
/// optimizer (Eq. (5) normalizes by the 2D baseline's IPS).

#include "perf/benchmark.hpp"

namespace tacos {

/// Nominal frequency at which mem_fraction and base_ipc are defined (MHz).
inline constexpr double kNominalFreqMhz = 1000.0;

/// Parallel speedup S(p) for `bench` on p active cores.
double parallel_speedup(const BenchmarkProfile& bench, int active_cores);

/// Effective frequency (MHz) after accounting for memory-bound time.
double effective_frequency(const BenchmarkProfile& bench, double freq_mhz);

/// System throughput (million instructions per second) for `bench` at
/// `freq_mhz` with `active_cores` threads.
double system_ips(const BenchmarkProfile& bench, double freq_mhz,
                  int active_cores);

}  // namespace tacos
