#include "perf/benchmark.hpp"

namespace tacos {

const std::array<BenchmarkProfile, kBenchmarkCount>& benchmarks() {
  // Calibration notes (per paper §V):
  //  - shock, blackscholes, cholesky are the high-power benchmarks needing
  //    the largest chiplet spacing (Fig. 5) and seeing the largest gains
  //    (87%, 75%, 80%);
  //  - hpccg is medium power, gains by raising the active core count from
  //    160 to 256 (+40%);
  //  - swaptions (+24%) and streamcluster (+14%) are medium/low;
  //  - canneal saturates at 192 cores (+7%), lu.cont at 96 cores (0%).
  static const std::array<BenchmarkProfile, kBenchmarkCount> table = {{
      //  name          suite      class              P256    sigma  sat  mem   net   ipc
      {"shock",         "UHPC",    PowerClass::kHigh,   390.0, 0.0005, 256, 0.05, 1.00, 1.00},
      {"blackscholes",  "PARSEC",  PowerClass::kHigh,   375.0, 0.0008, 256, 0.08, 0.60, 0.95},
      {"cholesky",      "SPLASH-2",PowerClass::kHigh,   360.0, 0.0010, 256, 0.10, 0.80, 0.90},
      {"hpccg",         "HPCCG",   PowerClass::kMedium, 330.0, 0.0020, 256, 0.15, 0.70, 0.75},
      {"swaptions",     "PARSEC",  PowerClass::kMedium, 282.0, 0.0020, 256, 0.10, 0.40, 0.85},
      {"streamcluster", "PARSEC",  PowerClass::kMedium, 295.0, 0.0040, 224, 0.45, 0.90, 0.60},
      {"canneal",       "PARSEC",  PowerClass::kLow,    300.0, 0.0080, 192, 0.50, 0.95, 0.50},
      {"lu.cont",       "SPLASH-2",PowerClass::kLow,    280.0, 0.0060,  96, 0.20, 0.70, 0.70},
  }};
  return table;
}

const BenchmarkProfile& benchmark_by_name(std::string_view name) {
  for (const auto& b : benchmarks())
    if (b.name == name) return b;
  TACOS_CHECK(false, "unknown benchmark: " << name);
  return benchmarks()[0];  // unreachable
}

const std::array<std::string_view, 3>& representative_benchmarks() {
  static const std::array<std::string_view, 3> reps = {"canneal", "hpccg",
                                                       "cholesky"};
  return reps;
}

}  // namespace tacos
