#pragma once
/// \file phases.hpp
/// \brief Synthetic execution-phase traces (time-varying activity).
///
/// The paper collects performance statistics "for each core every 1 ms"
/// from Sniper (§IV) — real workloads are not flat; they alternate
/// compute bursts, memory stalls and synchronization lulls.  This module
/// generates deterministic per-benchmark activity traces with the
/// qualitative structure of each suite's behaviour:
///
///   * compute-bound benchmarks (shock, blackscholes): high mean activity
///     with shallow, short dips;
///   * phase-structured solvers (cholesky, lu.cont, hpccg): alternating
///     factorization/communication phases — square-wave-like swings;
///   * memory-bound benchmarks (canneal, streamcluster): lower mean with
///     large oscillations (cache-miss bursts).
///
/// An activity value a ∈ [0, 1] scales *dynamic* power (leakage does not
/// pause when the pipeline stalls).  The traces drive the transient
/// thermal engine (core/trace_sim.hpp) to ask whether the steady-state
/// analysis of the paper is conservative for real phase behaviour.

#include <vector>

#include "perf/benchmark.hpp"

namespace tacos {

/// One execution phase: constant activity for a duration.
struct Phase {
  double duration_s = 0.0;
  double activity = 1.0;  ///< dynamic-power scale in [0, 1]
};

/// Deterministic synthetic trace for `bench` of total length `total_s`
/// sampled in `dt_s` phases.  Same (bench, seed) → identical trace.
std::vector<Phase> synthetic_trace(const BenchmarkProfile& bench,
                                   double total_s, double dt_s,
                                   std::uint64_t seed = 2018);

/// Time-weighted mean activity of a trace.
double mean_activity(const std::vector<Phase>& trace);

}  // namespace tacos
