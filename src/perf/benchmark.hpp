#pragma once
/// \file benchmark.hpp
/// \brief Benchmark workload profiles — the repository's Sniper substitute.
///
/// The paper evaluates eight multi-threaded benchmarks (SPLASH-2 cholesky
/// and lu.cont; PARSEC blackscholes, swaptions, streamcluster, canneal;
/// HPCCG hpccg; UHPC shock) with Sniper and feeds the optimizer a table of
/// IPS(f, p) values plus McPAT-derived power.  We cannot run Sniper here,
/// so each benchmark is modeled by four architecture-level parameters:
///
///   * power_256_w   — total chip power with all 256 cores active at 1 GHz
///                     and 60 °C (the leakage reference temperature);
///   * sigma         — Amdahl-style parallelization overhead: the speedup
///                     on p cores is S(p) = p / (1 + sigma * (p - 1));
///   * sat_cores     — hard parallelism saturation: threads beyond this
///                     count add no performance (canneal saturates at 192
///                     cores, lu.cont at 96 — paper §V-B);
///   * mem_fraction  — fraction of execution time that is memory-bound at
///                     1 GHz; memory time does not shrink when the core
///                     frequency drops, so IPS(f) = 1 / ((1-m)/f + m/f0).
///
/// The values are calibrated so the qualitative behaviors the paper
/// reports emerge from the evaluation flow (which benchmarks are
/// high/medium/low power, where the 2D baseline lands, which benchmarks
/// saturate early); see the table in benchmark.cpp and EXPERIMENTS.md.

#include <array>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace tacos {

/// Power/performance class labels the paper uses in Figs. 5–7.
enum class PowerClass { kLow, kMedium, kHigh };

/// Architecture-level profile of one benchmark.
struct BenchmarkProfile {
  std::string_view name;
  std::string_view suite;      ///< originating benchmark suite
  PowerClass power_class;
  double power_256_w;          ///< total power @ 1 GHz, 256 cores, 60 °C (W)
  double sigma;                ///< Amdahl overhead per extra core
  int sat_cores;               ///< parallelism saturation (<= 256)
  double mem_fraction;         ///< memory-bound time fraction at 1 GHz
  double net_activity;         ///< NoC activity factor in [0, 1]
  double base_ipc;             ///< per-core IPC at 1 GHz (IPS scale factor)
};

/// Number of benchmarks in the paper's evaluation.
inline constexpr std::size_t kBenchmarkCount = 8;

/// The eight evaluated benchmarks (§IV).
const std::array<BenchmarkProfile, kBenchmarkCount>& benchmarks();

/// Look up one benchmark by name; throws tacos::Error if unknown.
const BenchmarkProfile& benchmark_by_name(std::string_view name);

/// Representative benchmarks used in Figs. 6 and 7 (one per power class):
/// canneal (low), hpccg (medium), cholesky (high).
const std::array<std::string_view, 3>& representative_benchmarks();

}  // namespace tacos
