#pragma once
/// \file layout.hpp
/// \brief Chiplet layouts: the single-chip baseline, uniform r x r grids,
///        and the paper's non-uniform (s1, s2, s3) organizations (Fig. 4a).
///
/// Geometry conventions
/// --------------------
/// The interposer occupies [0, W] x [0, H] (square in this work, W == H).
/// Chiplets must stay at least `guard_band_mm` away from every interposer
/// edge (Eq. (9)'s l_g term) and must not overlap.
///
/// The (s1, s2, s3) parameterization for the 16-chiplet (4 x 4) case:
///   - the 12 *outer-ring* chiplets sit on a symmetric 4-column grid with
///     outer gap s1 (between columns 1-2 and 3-4) and center gap s3
///     (between columns 2-3); same for rows;
///   - the 4 *center* chiplets form their own 2x2 cluster, each offset by
///     s2 from the interposer center lines (so the gap between the two
///     center chiplets along each axis is 2*s2).
/// This reproduces Eq. (9), w_int = 4*w_c + 2*s1 + s3 + 2*l_g, and Eq. (10),
/// 2*s1 + s3 - 2*s2 >= 0, which is exactly the condition that the center
/// cluster fits into the hole left by the outer ring.  The uniform matrix
/// placement with gap g corresponds to (s1, s2, s3) = (g, g/2, g).
///
/// For the 4-chiplet (2 x 2) case the paper fixes s1 = s2 = 0 and only the
/// center gap s3 varies: w_int = 2*w_c + s3 + 2*l_g.
///
/// Tile bookkeeping: when r divides tiles_per_side, each chiplet carries a
/// block of the logical 16 x 16 core-tile grid, and tile_rect() maps a
/// logical tile to its physical rectangle.  Layouts with r not dividing 16
/// (used only by the synthetic power-density studies of Fig. 3(b)) carry no
/// tiles; their chiplets are uniform heat sources.

#include <optional>
#include <vector>

#include "floorplan/system_spec.hpp"
#include "geom/rect.hpp"

namespace tacos {

/// The three independent chiplet spacings of Fig. 4(a), in mm.
struct Spacing {
  double s1 = 0.0;  ///< outer-ring gap (16-chiplet case; 0 for 4-chiplet)
  double s2 = 0.0;  ///< center-chiplet offset from the interposer center line
  double s3 = 0.0;  ///< central gap between the two halves of the system

  bool operator==(const Spacing&) const = default;
};

/// One chiplet: its physical rectangle plus (optionally) the block of
/// logical core tiles it carries.
struct Chiplet {
  Rect rect;          ///< physical extent on the interposer (mm)
  int grid_i = 0;     ///< column in the r x r chiplet grid
  int grid_j = 0;     ///< row in the r x r chiplet grid
  int tile_x0 = 0;    ///< first logical tile column carried (if any)
  int tile_y0 = 0;    ///< first logical tile row carried (if any)
  int tiles_x = 0;    ///< tiles per row carried (0 = no tile mapping)
  int tiles_y = 0;    ///< tile rows carried
};

/// A complete chiplet placement on an interposer.
class ChipletLayout {
 public:
  /// Construct and validate.  Throws tacos::Error if any chiplet violates
  /// the guard band, overlaps another chiplet, or the interposer exceeds
  /// the Eq. (7) bound.
  ChipletLayout(SystemSpec spec, Rect interposer, std::vector<Chiplet> chiplets,
                int grid_r, Spacing spacing);

  const SystemSpec& spec() const { return spec_; }
  const Rect& interposer() const { return interposer_; }
  double interposer_edge() const { return interposer_.w; }
  const std::vector<Chiplet>& chiplets() const { return chiplets_; }
  int grid_r() const { return grid_r_; }
  int chiplet_count() const { return static_cast<int>(chiplets_.size()); }
  const Spacing& spacing() const { return spacing_; }

  /// True if chiplets carry logical core tiles (r divides tiles_per_side).
  bool has_tiles() const { return has_tiles_; }

  /// Physical rectangle of logical tile (tx, ty); requires has_tiles().
  Rect tile_rect(int tx, int ty) const;

  /// Index into chiplets() of the chiplet carrying logical tile (tx, ty).
  std::size_t chiplet_of_tile(int tx, int ty) const;

  /// Total silicon (chiplet) area in mm^2.
  double total_chiplet_area() const;

  /// Area of one chiplet in mm^2 (all chiplets are identical).
  double chiplet_area() const { return chiplets_.front().rect.area(); }

 private:
  void validate() const;

  SystemSpec spec_;
  Rect interposer_;
  std::vector<Chiplet> chiplets_;
  int grid_r_;
  Spacing spacing_;
  bool has_tiles_ = false;
};

/// The monolithic 2D baseline: one "chiplet" (the chip) covering the whole
/// tile grid; the layout's "interposer" rectangle is the chip outline
/// itself (no guard band — there is no interposer in the 2D system).
ChipletLayout make_single_chip_layout(const SystemSpec& spec = {});

/// Uniform r x r matrix placement with gap `spacing_mm` between adjacent
/// chiplets and the guard band along the edges (used by Fig. 5 and by the
/// synthetic study of Fig. 3(b); also the generic n-chiplet building block).
/// Tiles are attached when r divides spec.tiles_per_side.
ChipletLayout make_uniform_layout(int r, double spacing_mm,
                                  const SystemSpec& spec = {});

/// Uniform r x r placement stretched to an exact interposer edge
/// `interposer_mm`: the gap is (interposer_mm - 2*guard - r*w_c)/(r-1).
ChipletLayout make_uniform_layout_for_interposer(int r, double interposer_mm,
                                                 const SystemSpec& spec = {});

/// The paper's 4-chiplet organization (2 x 2, central gap s3).
ChipletLayout make_org4_layout(double s3, const SystemSpec& spec = {});

/// The paper's 16-chiplet organization (4 x 4 with independent s1, s2, s3).
ChipletLayout make_org16_layout(const Spacing& s, const SystemSpec& spec = {});

/// Interposer edge implied by Eq. (9) for the n-chiplet organization
/// (r = 2 -> uses s3 only; r = 4 -> 2*s1 + s3).
double interposer_edge_for(int r, const Spacing& s, const SystemSpec& spec = {});

/// Largest uniform spacing representable for r x r chiplets within the
/// Eq. (7) interposer bound.
double max_uniform_spacing(int r, const SystemSpec& spec = {});

/// Free-form layout: arbitrary chiplet rectangles on a square interposer
/// of edge `interposer_mm`.  Carries no logical tile mapping (drive it
/// with explicit PowerMaps).  Intended for heterogeneous systems — e.g. a
/// CPU chiplet next to HBM-style memory stacks — which the thermal model
/// handles exactly like the paper's homogeneous layouts.  All chiplets
/// must respect the guard band and must not overlap (validated).
ChipletLayout make_custom_layout(const std::vector<Rect>& chiplets,
                                 double interposer_mm,
                                 const SystemSpec& spec = {});

}  // namespace tacos
