#include "floorplan/layout.hpp"

#include <cmath>

namespace tacos {

ChipletLayout::ChipletLayout(SystemSpec spec, Rect interposer,
                             std::vector<Chiplet> chiplets, int grid_r,
                             Spacing spacing)
    : spec_(spec),
      interposer_(interposer),
      chiplets_(std::move(chiplets)),
      grid_r_(grid_r),
      spacing_(spacing) {
  TACOS_CHECK(!chiplets_.empty(), "layout needs at least one chiplet");
  has_tiles_ = chiplets_.front().tiles_x > 0;
  validate();
}

void ChipletLayout::validate() const {
  spec_.validate();
  TACOS_CHECK(interposer_.w <= spec_.max_interposer_mm + 1e-9 &&
                  interposer_.h <= spec_.max_interposer_mm + 1e-9,
              "interposer " << interposer_.w << "mm exceeds the "
                            << spec_.max_interposer_mm << "mm bound (Eq. 7)");
  // Guard band region chiplets must stay inside.  The single-chip baseline
  // constructs itself with a zero guard band via a modified spec.
  const Rect allowed = Rect::make(
      interposer_.x + spec_.guard_band_mm, interposer_.y + spec_.guard_band_mm,
      interposer_.w - 2 * spec_.guard_band_mm,
      interposer_.h - 2 * spec_.guard_band_mm);
  for (const auto& c : chiplets_) {
    TACOS_CHECK(allowed.contains(c.rect, 1e-6),
                "chiplet (" << c.grid_i << "," << c.grid_j
                            << ") violates the guard band");
  }
  for (std::size_t a = 0; a < chiplets_.size(); ++a) {
    for (std::size_t b = a + 1; b < chiplets_.size(); ++b) {
      TACOS_CHECK(!chiplets_[a].rect.overlaps_interior(chiplets_[b].rect, 1e-6),
                  "chiplets " << a << " and " << b << " overlap");
    }
  }
  if (has_tiles_) {
    int total_tiles = 0;
    for (const auto& c : chiplets_) total_tiles += c.tiles_x * c.tiles_y;
    TACOS_CHECK(total_tiles == spec_.core_count(),
                "tile mapping covers " << total_tiles << " tiles, expected "
                                       << spec_.core_count());
  }
}

Rect ChipletLayout::tile_rect(int tx, int ty) const {
  const auto& c = chiplets_[chiplet_of_tile(tx, ty)];
  const double e = spec_.tile_edge_mm;
  return Rect::make(c.rect.x + (tx - c.tile_x0) * e,
                    c.rect.y + (ty - c.tile_y0) * e, e, e);
}

std::size_t ChipletLayout::chiplet_of_tile(int tx, int ty) const {
  TACOS_CHECK(has_tiles_, "layout has no tile mapping");
  TACOS_CHECK(tx >= 0 && tx < spec_.tiles_per_side && ty >= 0 &&
                  ty < spec_.tiles_per_side,
              "tile (" << tx << "," << ty << ") out of range");
  for (std::size_t i = 0; i < chiplets_.size(); ++i) {
    const auto& c = chiplets_[i];
    if (tx >= c.tile_x0 && tx < c.tile_x0 + c.tiles_x && ty >= c.tile_y0 &&
        ty < c.tile_y0 + c.tiles_y)
      return i;
  }
  TACOS_ASSERT(false, "tile (" << tx << "," << ty << ") not mapped");
  return 0;  // unreachable
}

double ChipletLayout::total_chiplet_area() const {
  double a = 0.0;
  for (const auto& c : chiplets_) a += c.rect.area();
  return a;
}

ChipletLayout make_single_chip_layout(const SystemSpec& spec) {
  SystemSpec s2d = spec;
  s2d.guard_band_mm = 0.0;  // no interposer, no guard band
  const double edge = spec.chip_edge_mm();
  Chiplet chip;
  chip.rect = Rect::make(0, 0, edge, edge);
  chip.tiles_x = chip.tiles_y = spec.tiles_per_side;
  return ChipletLayout(s2d, Rect::make(0, 0, edge, edge), {chip}, 1, {});
}

namespace {

/// Shared builder: place r x r chiplets with per-axis positions `pos`
/// (lower-left corners), chiplet edge `wc`; attach tiles when possible.
std::vector<Chiplet> build_grid_chiplets(int r, double wc,
                                         const std::vector<double>& pos_x,
                                         const std::vector<double>& pos_y,
                                         const SystemSpec& spec) {
  const bool tiles = (spec.tiles_per_side % r) == 0;
  const int m = tiles ? spec.tiles_per_side / r : 0;
  std::vector<Chiplet> out;
  out.reserve(static_cast<std::size_t>(r) * r);
  for (int j = 0; j < r; ++j) {
    for (int i = 0; i < r; ++i) {
      Chiplet c;
      c.rect = Rect::make(pos_x[i], pos_y[j], wc, wc);
      c.grid_i = i;
      c.grid_j = j;
      if (tiles) {
        c.tile_x0 = i * m;
        c.tile_y0 = j * m;
        c.tiles_x = c.tiles_y = m;
      }
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

ChipletLayout make_uniform_layout(int r, double spacing_mm,
                                  const SystemSpec& spec) {
  TACOS_CHECK(r >= 2, "uniform layout needs r >= 2 (got " << r << ")");
  TACOS_CHECK(spacing_mm >= 0, "spacing cannot be negative");
  const double wc = spec.chip_edge_mm() / r;
  const double edge =
      r * wc + (r - 1) * spacing_mm + 2 * spec.guard_band_mm;
  std::vector<double> pos(r);
  for (int i = 0; i < r; ++i)
    pos[i] = spec.guard_band_mm + i * (wc + spacing_mm);
  // Uniform gap g maps onto (s1, s2, s3) = (g, g/2, g) for r == 4 and
  // (0, 0, g) for r == 2; other r values have no (s1,s2,s3) equivalent.
  Spacing sp;
  if (r == 2) {
    sp = Spacing{0.0, 0.0, spacing_mm};
  } else if (r == 4) {
    sp = Spacing{spacing_mm, spacing_mm / 2.0, spacing_mm};
  }
  return ChipletLayout(spec, Rect::make(0, 0, edge, edge),
                       build_grid_chiplets(r, wc, pos, pos, spec), r, sp);
}

ChipletLayout make_uniform_layout_for_interposer(int r, double interposer_mm,
                                                 const SystemSpec& spec) {
  TACOS_CHECK(r >= 2, "uniform layout needs r >= 2");
  const double wc = spec.chip_edge_mm() / r;
  const double gap_total =
      interposer_mm - 2 * spec.guard_band_mm - r * wc;
  TACOS_CHECK(gap_total >= -1e-9, "interposer " << interposer_mm
                                                << "mm too small for " << r
                                                << "x" << r << " chiplets");
  return make_uniform_layout(r, std::max(0.0, gap_total / (r - 1)), spec);
}

double interposer_edge_for(int r, const Spacing& s, const SystemSpec& spec) {
  const double wc = spec.chip_edge_mm() / r;
  if (r == 2) return 2 * wc + s.s3 + 2 * spec.guard_band_mm;
  if (r == 4) return 4 * wc + 2 * s.s1 + s.s3 + 2 * spec.guard_band_mm;
  TACOS_CHECK(false, "Eq. (9) is defined for r in {2, 4}; got r=" << r);
  return 0.0;  // unreachable
}

double max_uniform_spacing(int r, const SystemSpec& spec) {
  const double wc = spec.chip_edge_mm() / r;
  const double budget =
      spec.max_interposer_mm - 2 * spec.guard_band_mm - r * wc;
  return budget / (r - 1);
}

ChipletLayout make_custom_layout(const std::vector<Rect>& chiplets,
                                 double interposer_mm,
                                 const SystemSpec& spec) {
  TACOS_CHECK(!chiplets.empty(), "custom layout needs at least one chiplet");
  std::vector<Chiplet> out;
  out.reserve(chiplets.size());
  for (std::size_t i = 0; i < chiplets.size(); ++i) {
    Chiplet c;
    c.rect = chiplets[i];
    c.grid_i = static_cast<int>(i);  // positional identity only
    out.push_back(c);
  }
  return ChipletLayout(spec, Rect::make(0, 0, interposer_mm, interposer_mm),
                       std::move(out), 0, {});
}

ChipletLayout make_org4_layout(double s3, const SystemSpec& spec) {
  TACOS_CHECK(s3 >= 0, "s3 cannot be negative");
  return make_uniform_layout(2, s3, spec);
}

ChipletLayout make_org16_layout(const Spacing& s, const SystemSpec& spec) {
  TACOS_CHECK(s.s1 >= 0 && s.s2 >= 0 && s.s3 >= 0,
              "spacings cannot be negative: s1=" << s.s1 << " s2=" << s.s2
                                                 << " s3=" << s.s3);
  TACOS_CHECK(2 * s.s1 + s.s3 - 2 * s.s2 >= -1e-9,
              "Eq. (10) violated: 2*s1 + s3 - 2*s2 = "
                  << (2 * s.s1 + s.s3 - 2 * s.s2));
  constexpr int r = 4;
  const double wc = spec.chip_edge_mm() / r;
  const double lg = spec.guard_band_mm;
  const double edge = interposer_edge_for(r, s, spec);
  const double mid = edge / 2.0;

  // Outer-ring column positions (Eq. (9) decomposition).
  const std::vector<double> ring = {
      lg, lg + wc + s.s1, lg + 2 * wc + s.s1 + s.s3,
      lg + 3 * wc + 2 * s.s1 + s.s3};
  // Center-cluster positions: offset s2 from the interposer center lines.
  const double center_lo = mid - s.s2 - wc;
  const double center_hi = mid + s.s2;

  const bool tiles = (spec.tiles_per_side % r) == 0;
  const int m = tiles ? spec.tiles_per_side / r : 0;
  std::vector<Chiplet> chiplets;
  chiplets.reserve(16);
  for (int j = 0; j < r; ++j) {
    for (int i = 0; i < r; ++i) {
      const bool center = (i == 1 || i == 2) && (j == 1 || j == 2);
      const double x = center ? (i == 1 ? center_lo : center_hi) : ring[i];
      const double y = center ? (j == 1 ? center_lo : center_hi) : ring[j];
      Chiplet c;
      c.rect = Rect::make(x, y, wc, wc);
      c.grid_i = i;
      c.grid_j = j;
      if (tiles) {
        c.tile_x0 = i * m;
        c.tile_y0 = j * m;
        c.tiles_x = c.tiles_y = m;
      }
      chiplets.push_back(c);
    }
  }
  return ChipletLayout(spec, Rect::make(0, 0, edge, edge), std::move(chiplets),
                       r, s);
}

}  // namespace tacos
