#pragma once
/// \file system_spec.hpp
/// \brief Constants of the paper's example 256-core manycore system.
///
/// Paper §III-A: 256 IA-32-style cores at 22nm, each core+L2 tile is
/// square, 1.13mm x 1.13mm (1.28mm^2).  The logical system is a 16x16 grid
/// of tiles; the monolithic baseline chip is therefore 18mm x 18mm (16 × 1.125mm)
/// (the paper rounds to "18mm x 18mm").  2.5D layouts split the tile grid
/// into r x r chiplets placed on a passive interposer with a 1mm guard
/// band along each interposer edge and a 50mm maximum interposer edge
/// (single-exposure lithography limit, Eq. (7)).

#include "common/check.hpp"

namespace tacos {

/// Global geometry of the example system.  All lengths in mm.
struct SystemSpec {
  int tiles_per_side = 16;        ///< 16x16 = 256 core+L2 tiles
  double tile_edge_mm = 1.125;    ///< square tile edge (the paper rounds 1.13)
  double guard_band_mm = 1.0;     ///< l_g: chiplet-free rim of the interposer
  double max_interposer_mm = 50.0;///< Eq. (7) upper bound on w_int, h_int

  /// Edge of the monolithic 2D baseline chip (and of the merged tile grid).
  double chip_edge_mm() const {
    return tiles_per_side * tile_edge_mm;
  }
  /// Total core count.
  int core_count() const { return tiles_per_side * tiles_per_side; }

  /// Validate internal consistency (useful when callers customize fields).
  void validate() const {
    TACOS_CHECK(tiles_per_side >= 1, "need at least one tile per side");
    TACOS_CHECK(tile_edge_mm > 0, "tile edge must be positive");
    TACOS_CHECK(guard_band_mm >= 0, "guard band cannot be negative");
    TACOS_CHECK(max_interposer_mm >= chip_edge_mm() + 2 * guard_band_mm,
                "interposer bound cannot even fit the packed system");
  }
};

}  // namespace tacos
