/// \file quickstart.cpp
/// \brief Five-minute tour of the tacos library.
///
/// Builds the paper's example 256-core system three ways — the monolithic
/// 2D chip, a packed 16-chiplet 2.5D system, and a thermally-aware spaced
/// organization — and compares peak temperature, performance and
/// manufacturing cost for one benchmark.
///
///   ./quickstart [benchmark]      (default: cholesky)

#include <iostream>

#include "core/evaluator.hpp"
#include "core/organization.hpp"

using namespace tacos;

int main(int argc, char** argv) {
  const std::string bench_name = argc > 1 ? argv[1] : "cholesky";
  const BenchmarkProfile& bench = benchmark_by_name(bench_name);

  EvalConfig config;                       // all defaults from the paper
  config.thermal.grid_nx = config.thermal.grid_ny = 32;
  Evaluator eval(config);

  std::cout << "benchmark: " << bench.name << " (" << bench.suite << ", "
            << bench.power_256_w << " W at 1 GHz / 256 cores / 60 C)\n\n";

  const auto report = [&](const char* label, const Organization& org) {
    const ThermalEval& te = eval.thermal_eval(org, bench);
    std::cout << label << "\n"
              << "  chiplets:    " << org.n_chiplets << "  spacing (s1,s2,s3) = ("
              << org.spacing.s1 << ", " << org.spacing.s2 << ", "
              << org.spacing.s3 << ") mm\n"
              << "  interposer:  " << interposer_edge_of(org) << " mm\n"
              << "  operating:   " << level_of(org).freq_mhz << " MHz, "
              << org.active_cores << " active cores\n"
              << "  peak temp:   " << te.peak_c << " C  (power "
              << te.total_power_w << " W)\n"
              << "  IPS (norm):  " << eval.ips(org, bench) << "\n"
              << "  cost:        $" << eval.cost(org) << "  ("
              << eval.cost(org) / eval.cost_2d() << "x the 2D chip)\n\n";
  };

  // 1. The 2D baseline at its best thermally-safe operating point (85 C).
  const BaselinePoint& base = eval.baseline_2d(bench, 85.0);
  Organization chip{1, {}, base.dvfs_idx, base.active_cores};
  report("2D single chip (best feasible operating point @85C)", chip);

  // 2. A packed 2.5D system: cheaper (higher chiplet yield), same layout.
  Organization packed{16, Spacing{0, 0, 0}, base.dvfs_idx, base.active_cores};
  report("packed 16-chiplet 2.5D system (same operating point)", packed);

  // 3. A thermally-aware organization: insert spacing, raise f and p.
  Organization spaced{16, Spacing{5.0, 5.5, 1.0}, 0, 256};
  report("thermally-aware 16-chiplet organization (1 GHz, all cores)",
         spaced);

  std::cout << "Spacing the chiplets lets the system run all 256 cores at "
               "1 GHz\nwithin the same 85 C budget — that is the reclaimed "
               "dark silicon.\n";
  return 0;
}
