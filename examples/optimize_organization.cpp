/// \file optimize_organization.cpp
/// \brief Run the paper's multi-start greedy optimizer end to end.
///
/// Finds the chiplet organization minimizing Eq. (5) for a benchmark,
/// temperature threshold and (alpha, beta) trade-off of your choice:
///
///   ./optimize_organization [benchmark] [alpha] [beta] [threshold_c]
///
/// Examples:
///   ./optimize_organization cholesky 1 0        # pure performance
///   ./optimize_organization cholesky 0 1        # pure cost
///   ./optimize_organization canneal 0.5 0.5 95  # balanced, 95 C

#include <iostream>

#include "core/optimizer.hpp"

using namespace tacos;

int main(int argc, char** argv) {
  const std::string bench_name = argc > 1 ? argv[1] : "cholesky";
  OptimizerOptions opts;
  opts.alpha = argc > 2 ? std::stod(argv[2]) : 1.0;
  opts.beta = argc > 3 ? std::stod(argv[3]) : 0.0;
  opts.threshold_c = argc > 4 ? std::stod(argv[4]) : 85.0;

  const BenchmarkProfile& bench = benchmark_by_name(bench_name);
  EvalConfig config;
  config.thermal.grid_nx = config.thermal.grid_ny = 32;
  Evaluator eval(config);

  std::cout << "optimizing " << bench.name << " with alpha=" << opts.alpha
            << " beta=" << opts.beta << " under " << opts.threshold_c
            << " C...\n";

  const BaselinePoint& base = eval.baseline_2d(bench, opts.threshold_c);
  if (base.feasible) {
    std::cout << "2D baseline: " << kDvfsLevels[base.dvfs_idx].freq_mhz
              << " MHz, " << base.active_cores << " cores, peak "
              << base.peak_c << " C, IPS " << base.ips << ", cost $"
              << eval.cost_2d() << "\n";
  } else {
    std::cout << "2D baseline: no feasible operating point!\n";
  }

  const OptResult res = optimize_greedy(eval, bench, opts);
  if (!res.found) {
    std::cout << "no feasible 2.5D organization under " << opts.threshold_c
              << " C\n";
    return 1;
  }
  std::cout << "\nchosen organization (objective " << res.objective << "):\n"
            << "  chiplets:   " << res.org.n_chiplets << "\n"
            << "  spacings:   s1=" << res.org.spacing.s1
            << "  s2=" << res.org.spacing.s2 << "  s3=" << res.org.spacing.s3
            << " (mm)\n"
            << "  interposer: " << interposer_edge_of(res.org) << " mm\n"
            << "  operating:  " << level_of(res.org).freq_mhz << " MHz, "
            << res.org.active_cores << " cores\n"
            << "  peak temp:  " << res.peak_c << " C\n"
            << "  IPS:        " << res.ips
            << (base.feasible
                    ? "  (" + std::to_string((res.ips / base.ips - 1) * 100) +
                          "% vs 2D)"
                    : "")
            << "\n"
            << "  cost:       $" << res.cost << "  ("
            << res.cost / eval.cost_2d() << "x the 2D chip)\n"
            << "\nsearch statistics: " << res.combos_tried
            << " combinations tried, " << res.thermal_solves
            << " thermal solves\n";
  return 0;
}
