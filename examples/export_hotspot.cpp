/// \file export_hotspot.cpp
/// \brief Export a tacos organization as HotSpot 6.0 input files for
///        cross-validation against the original thermal simulator.
///
///   ./export_hotspot [out_dir] [benchmark] [n(1|4|16)] [spacing_mm]
///
/// Writes <out_dir>/tacos_l*.flp, tacos.lcf, tacos.ptrace, tacos.config
/// and prints the tacos solver's own prediction for comparison.

#include <filesystem>
#include <iostream>

#include "core/leakage.hpp"
#include "io/hotspot_export.hpp"
#include "materials/stack.hpp"

using namespace tacos;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "hotspot_export";
  const std::string bench_name = argc > 2 ? argv[2] : "cholesky";
  const int n = argc > 3 ? std::stoi(argv[3]) : 16;
  const double spacing = argc > 4 ? std::stod(argv[4]) : 4.0;

  std::filesystem::create_directories(out_dir);
  const SystemSpec spec;
  const ChipletLayout layout =
      n == 1 ? make_single_chip_layout(spec)
             : make_uniform_layout(n == 4 ? 2 : 4, spacing, spec);
  const LayerStack stack = n == 1 ? make_2d_stack() : make_25d_stack();
  const BenchmarkProfile& bench = benchmark_by_name(bench_name);

  // All cores at 1 GHz, leakage-converged power map.
  std::vector<int> all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = i;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 64;  // paper-resolution prediction
  ThermalModel model(layout, stack, cfg);
  const PowerModelParams pm;
  const LeakageResult lr = run_leakage_fixed_point(
      model, layout, bench, kDvfsLevels[0], all, pm);
  const std::vector<double> temps = model.tile_temperatures();
  const PowerMap power = build_power_map(layout, bench, kDvfsLevels[0], all,
                                         temps, pm);

  const auto res =
      hotspot::export_hotspot(out_dir, "tacos", layout, stack, power);

  std::cout << "exported " << res.floorplan_files.size()
            << " floorplans + lcf + ptrace + config to " << out_dir << "\n"
            << "  lcf:    " << res.lcf_file << "\n"
            << "  ptrace: " << res.ptrace_file << " (total "
            << power.total() << " W)\n"
            << "  config: " << res.config_file << "\n\n"
            << "tacos prediction for this configuration: peak "
            << lr.peak_c << " C (64x64 grid, leakage converged in "
            << lr.iterations << " iterations)\n"
            << "Run HotSpot in grid mode with the exported files to "
               "cross-validate.\n";
  return 0;
}
