/// \file cost_explorer.cpp
/// \brief Explore the Stow-et-al. manufacturing cost model (Eqs. 1-4).
///
/// Prints yield/cost breakdowns for a chosen die size and the full 2.5D
/// assembly economics:
///
///   ./cost_explorer [chip_edge_mm] [defect_density_cm2]

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "cost/cost_model.hpp"
#include "floorplan/system_spec.hpp"

using namespace tacos;

int main(int argc, char** argv) {
  const double chip_edge = argc > 1 ? std::stod(argv[1]) : 18.0;
  CostParams params;
  if (argc > 2) params.defect_density_cm2 = std::stod(argv[2]);

  const double chip_area = chip_edge * chip_edge;
  std::cout << "single chip " << chip_edge << " x " << chip_edge << " mm, D0="
            << params.defect_density_cm2 << "/cm^2\n"
            << "  dies/wafer: " << dies_per_wafer(chip_area, 300.0) << "\n"
            << "  yield:      " << cmos_yield(chip_area, params) * 100 << "%\n"
            << "  cost:       $" << single_chip_cost(chip_area, params)
            << "\n\n";

  TextTable t({"n_chiplets", "interposer_mm", "chiplet_$", "interposer_$",
               "bonding_$", "Ybond^n", "total_$", "vs_2D"});
  const double c2d = single_chip_cost(chip_area, params);
  for (int n : {4, 16}) {
    const double chiplet_edge = chip_edge / (n == 4 ? 2 : 4);
    for (double w : {chip_edge + 2.0, 30.0, 40.0, 50.0}) {
      const CostBreakdown b = cost_breakdown_25d(
          n, chiplet_edge * chiplet_edge, w * w, params);
      t.add_row({std::to_string(n), TextTable::fmt(w, 0),
                 TextTable::fmt(b.chiplets_total, 2),
                 TextTable::fmt(b.interposer, 2),
                 TextTable::fmt(b.bonding, 2),
                 TextTable::fmt(b.bond_yield_factor, 3),
                 TextTable::fmt(b.total, 2),
                 TextTable::fmt(b.total / c2d, 3) + "x"});
    }
  }
  t.print("2.5D assembly cost breakdown");
  return 0;
}
