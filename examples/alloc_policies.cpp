/// \file alloc_policies.cpp
/// \brief Ablation of workload-allocation policies (§III-D uses MinTemp).
///
/// Activates the same number of cores under each policy and compares the
/// resulting peak temperature, demonstrating why the paper adopts the
/// MinTemp chessboard-ring policy:
///
///   ./alloc_policies [benchmark] [active_cores] [chiplets(1|4|16)]

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/leakage.hpp"
#include "materials/stack.hpp"

using namespace tacos;

int main(int argc, char** argv) {
  const std::string bench_name = argc > 1 ? argv[1] : "cholesky";
  const int p = argc > 2 ? std::stoi(argv[2]) : 160;
  const int n = argc > 3 ? std::stoi(argv[3]) : 16;

  const BenchmarkProfile& bench = benchmark_by_name(bench_name);
  const SystemSpec spec;
  const ChipletLayout layout =
      n == 1 ? make_single_chip_layout(spec)
             : make_uniform_layout(n == 4 ? 2 : 4, 2.0, spec);
  const LayerStack stack = n == 1 ? make_2d_stack() : make_25d_stack();
  const PowerModelParams pm;

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;

  std::cout << bench.name << ", " << p << " active cores at 1 GHz on "
            << (n == 1 ? 1 : n) << " chiplet(s)\n";
  TextTable t({"policy", "peak_c", "power_w"});
  for (AllocPolicy policy :
       {AllocPolicy::kMinTemp, AllocPolicy::kCheckerboard,
        AllocPolicy::kRowMajor, AllocPolicy::kCenterFirst}) {
    ThermalModel model(layout, stack, cfg);
    const LeakageResult r = run_leakage_fixed_point(
        model, layout, bench, kDvfsLevels[0],
        active_tiles(policy, p, spec), pm);
    t.add_row({std::string(alloc_policy_name(policy)),
               TextTable::fmt(r.peak_c, 2),
               TextTable::fmt(r.total_power_w, 1)});
  }
  t.print("allocation policy comparison");
  std::cout << "MinTemp spreads threads outward in a chessboard pattern and "
               "should be coolest;\nCenterFirst is the adversarial bound.\n";
  return 0;
}
