/// \file thermal_explorer.cpp
/// \brief Interactive thermal what-if tool with an ASCII heat map.
///
/// Places r x r chiplets with a chosen uniform spacing, applies a chosen
/// power density, runs the steady-state thermal model and renders the
/// CMOS-layer temperature field:
///
///   ./thermal_explorer [r] [spacing_mm] [power_density_w_mm2]
///
/// e.g. `./thermal_explorer 4 6 1.2` shows how a 16-chiplet system with
/// 6 mm spacing spreads a 1.2 W/mm^2 workload.

#include <iostream>
#include <string>

#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "thermal/grid_model.hpp"

using namespace tacos;

namespace {

/// Map a temperature to a density character for the ASCII heat map.
char shade(double t, double lo, double hi) {
  static const std::string ramp = " .:-=+*#%@";
  if (hi <= lo) return ramp.front();
  const double x = (t - lo) / (hi - lo);
  const auto idx = static_cast<std::size_t>(
      std::min(0.999, std::max(0.0, x)) * static_cast<double>(ramp.size()));
  return ramp[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const int r = argc > 1 ? std::stoi(argv[1]) : 4;
  const double spacing = argc > 2 ? std::stod(argv[2]) : 4.0;
  const double density = argc > 3 ? std::stod(argv[3]) : 1.0;

  const SystemSpec spec;
  const ChipletLayout layout =
      r == 1 ? make_single_chip_layout(spec)
             : make_uniform_layout(r, spacing, spec);
  const double chip_area = spec.chip_edge_mm() * spec.chip_edge_mm();

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 48;
  ThermalModel model(layout,
                     r == 1 ? make_2d_stack() : make_25d_stack(), cfg);

  PowerMap power;
  for (const auto& c : layout.chiplets())
    power.add(c.rect, density * chip_area / layout.chiplet_count());

  const ThermalResult res = model.solve(power);
  const auto field = model.layer_field(model.source_layer());

  std::cout << (r == 1 ? 1 : r * r) << " chiplet(s), spacing " << spacing
            << " mm, interposer " << layout.interposer_edge() << " mm, power "
            << power.total() << " W (" << density << " W/mm^2 of silicon)\n"
            << "peak " << res.peak_c << " C   (ambient 45 C, threshold 85 C: "
            << (res.peak_c <= 85.0 ? "MEETS" : "VIOLATES") << ")\n\n";

  // Render the CMOS-layer field top row first (y grows upward).
  double lo = 1e300, hi = -1e300;
  for (double t : field) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  const std::size_t n = cfg.grid_nx;
  for (std::size_t row = n; row-- > 0;) {
    for (std::size_t col = 0; col < n; ++col)
      std::cout << shade(field[row * n + col], lo, hi);
    std::cout << '\n';
  }
  std::cout << "\nscale: ' ' = " << lo << " C ... '@' = " << hi << " C\n"
            << "energy balance error: "
            << model.energy_balance_error(power) << "\n";
  return 0;
}
