/// \file heterogeneous_system.cpp
/// \brief Thermally-aware placement for a heterogeneous 2.5D system.
///
/// The paper studies homogeneous chiplets, but its thermal machinery (and
/// the follow-on chiplet-placement literature) applies directly to
/// heterogeneous systems.  This example places a hot compute chiplet next
/// to four HBM-style memory stacks — the canonical GPU+HBM interposer —
/// and compares a packed placement with a spaced one: the memory stacks,
/// whose retention limit is stricter than the logic limit, sit in the
/// compute die's thermal shadow unless spacing is inserted.
///
///   ./heterogeneous_system [compute_watts] [hbm_watts_each]

#include <algorithm>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "thermal/grid_model.hpp"

using namespace tacos;

namespace {

struct Placement {
  std::string name;
  ChipletLayout layout;
};

/// Compute die (12x12) with a 2x2 field of 6x8 HBM stacks beside it; the
/// die-to-HBM gap is `gap` mm, HBM-to-HBM gaps are 1 mm.
Placement make_gpu_hbm(double gap, double interposer) {
  const double cy = interposer / 2.0;
  std::vector<Rect> rects;
  const double die_x = 2.0;  // against the guard band on the left
  rects.push_back(Rect::centered(die_x + 6.0, cy, 12.0, 12.0));
  const double hbm_x = die_x + 12.0 + gap;
  interposer = std::max(interposer, hbm_x + 13.0 + 1.0);  // keep guard band
  for (int col = 0; col < 2; ++col) {
    for (int row = 0; row < 2; ++row) {
      rects.push_back(Rect::make(hbm_x + col * 7.0,
                                 cy - 8.5 + row * 9.0, 6.0, 8.0));
    }
  }
  SystemSpec spec;  // reuse guard band / interposer bound conventions
  return Placement{gap <= 0.5 ? "packed" : "spaced",
                   make_custom_layout(rects, interposer, spec)};
}

}  // namespace

int main(int argc, char** argv) {
  const double compute_w = argc > 1 ? std::stod(argv[1]) : 180.0;
  const double hbm_w = argc > 2 ? std::stod(argv[2]) : 8.0;

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 48;

  TextTable t({"placement", "gap_mm", "interposer_mm", "compute_peak_c",
               "hottest_hbm_c", "hbm_limit_95c"});
  for (double gap : {0.5, 4.0, 8.0}) {
    const Placement p = make_gpu_hbm(gap, 34.0);
    ThermalModel model(p.layout, make_25d_stack(), cfg);
    PowerMap power;
    power.add(p.layout.chiplets()[0].rect, compute_w);
    for (std::size_t i = 1; i < p.layout.chiplets().size(); ++i)
      power.add(p.layout.chiplets()[i].rect, hbm_w);
    model.solve(power);
    const auto temps = model.chiplet_temperatures();
    double hbm_max = 0.0;
    for (std::size_t i = 1; i < temps.size(); ++i)
      hbm_max = std::max(hbm_max, temps[i]);
    t.add_row({gap <= 0.5 ? "packed" : "spaced",
               TextTable::fmt(gap, 1),
               TextTable::fmt(p.layout.interposer_edge(), 0),
               TextTable::fmt(temps[0], 1), TextTable::fmt(hbm_max, 1),
               hbm_max <= 95.0 ? "OK" : "VIOLATED"});
  }
  t.print("GPU + 4x HBM placement study (" + std::to_string(compute_w) +
          " W compute, " + std::to_string(hbm_w) + " W per stack)");
  std::cout << "Inserting spacing pulls the memory stacks out of the "
               "compute die's thermal shadow\n— the heterogeneous version "
               "of the paper's dark-silicon argument.\n";
  return 0;
}
