#include "common/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tacos {
namespace {

// The contract (common/backoff.hpp): delay(n) = min(base * 2^n, cap) minus
// a deterministic jitter of at most jitter_frac of the delay.  Jitterless
// policies must reproduce the sweep fabric's historical restart schedule
// bit-exactly; jittered ones must be pure functions of (seed, attempt).

TEST(BackoffPolicy, JitterlessMatchesHistoricalFabricSchedule) {
  // The fabric's original expression was min(base << n, max) with
  // base = 200, max = 2000.
  const BackoffPolicy p{200, 2'000, 0.0, 0};
  const std::vector<std::uint64_t> expected{200, 400, 800, 1600,
                                            2000, 2000, 2000};
  for (std::size_t n = 0; n < expected.size(); ++n)
    EXPECT_EQ(p.delay_ms(n), expected[n]) << "attempt " << n;
}

TEST(BackoffPolicy, CapsForever) {
  const BackoffPolicy p{100, 3'000, 0.0, 0};
  for (std::uint64_t n = 5; n < 200; n += 13) EXPECT_EQ(p.delay_ms(n), 3'000);
  // Shift-overflow territory: 1 << 64 is UB if computed naively; the
  // policy must stay capped, not wrap to tiny delays.
  EXPECT_EQ(p.delay_ms(62), 3'000u);
  EXPECT_EQ(p.delay_ms(63), 3'000u);
  EXPECT_EQ(p.delay_ms(64), 3'000u);
  EXPECT_EQ(p.delay_ms(std::uint64_t(1) << 40), 3'000u);
}

TEST(BackoffPolicy, JitterIsDeterministicAndBounded) {
  const BackoffPolicy a{200, 5'000, 0.25, 42};
  const BackoffPolicy b{200, 5'000, 0.25, 42};
  const BackoffPolicy c{200, 5'000, 0.25, 43};
  bool any_different_seed_diverged = false;
  for (std::uint64_t n = 0; n < 16; ++n) {
    const std::uint64_t raw = BackoffPolicy{200, 5'000, 0.0, 0}.delay_ms(n);
    const std::uint64_t d = a.delay_ms(n);
    // Same (seed, attempt) → same delay, every time.
    EXPECT_EQ(d, b.delay_ms(n));
    // Jitter only shaves: raw * (1 - frac) < delay <= raw.
    EXPECT_LE(d, raw);
    EXPECT_GT(d, raw - raw / 4 - 1);
    if (c.delay_ms(n) != d) any_different_seed_diverged = true;
  }
  EXPECT_TRUE(any_different_seed_diverged)
      << "two seeds produced identical 16-delay schedules";
}

TEST(Backoff, CountsAndResets) {
  Backoff b(BackoffPolicy{100, 1'000, 0.0, 0});
  EXPECT_EQ(b.attempts(), 0u);
  EXPECT_EQ(b.next_ms(), 100u);
  EXPECT_EQ(b.next_ms(), 200u);
  EXPECT_EQ(b.next_ms(), 400u);
  EXPECT_EQ(b.attempts(), 3u);
  b.reset();
  EXPECT_EQ(b.attempts(), 0u);
  EXPECT_EQ(b.next_ms(), 100u);  // a success rewinds to the base delay
}

TEST(Backoff, TwoArgConvenienceIsJitterless) {
  Backoff b(150, 500);
  EXPECT_EQ(b.next_ms(), 150u);
  EXPECT_EQ(b.next_ms(), 300u);
  EXPECT_EQ(b.next_ms(), 500u);
  EXPECT_EQ(b.next_ms(), 500u);
}

}  // namespace
}  // namespace tacos
