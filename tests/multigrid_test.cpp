#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/errors.hpp"
#include "core/organization.hpp"
#include "floorplan/layout.hpp"
#include "linalg/multigrid.hpp"
#include "linalg/solvers.hpp"
#include "materials/stack.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {
namespace {

// The multigrid preconditioner contract: the hierarchy matches the
// thermal grid geometry and coarsens to a direct solve; the V-cycle is a
// symmetric positive-definite operator (CG requires it); preconditioned
// solves land on the same temperatures as Jacobi in >= 3x fewer
// iterations on production-sized systems; and the recovery ladder /
// fault-injection machinery is preconditioner-agnostic.

PowerMap uniform_power(const ChipletLayout& l, double total_w) {
  PowerMap p;
  for (const auto& c : l.chiplets()) p.add(c.rect, total_w / l.chiplet_count());
  return p;
}

ThermalConfig config_for(std::size_t grid, PrecondKind precond) {
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = grid;
  cfg.solve.precond = precond;
  return cfg;
}

/// Hand-built two-layer conduction grid (nx*ny cells per layer, 5-point
/// lateral coupling, vertical coupling between layers, every node tied to
/// ambient so the matrix is strictly diagonally dominant → SPD).
CsrMatrix make_grid_matrix(std::size_t nx, std::size_t ny,
                           std::size_t layers) {
  const std::size_t ncell = nx * ny;
  CsrBuilder cb(ncell * layers);
  const auto id = [&](std::size_t l, std::size_t ix, std::size_t iy) {
    return l * ncell + iy * nx + ix;
  };
  for (std::size_t l = 0; l < layers; ++l)
    for (std::size_t iy = 0; iy < ny; ++iy)
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = id(l, ix, iy);
        cb.add_conductance_to_reference(i, 0.05);  // ambient tie
        if (ix + 1 < nx) cb.add_conductance(i, id(l, ix + 1, iy), 1.0);
        if (iy + 1 < ny) cb.add_conductance(i, id(l, ix, iy + 1), 1.0);
        if (l + 1 < layers) cb.add_conductance(i, id(l + 1, ix, iy), 0.5);
      }
  return cb.build();
}

// --- Hierarchy construction ---------------------------------------------

TEST(Multigrid, HierarchyCoarsensGeometricallyToDirectLevel) {
  const CsrMatrix A = make_grid_matrix(16, 16, 2);
  MultigridOptions mo;
  mo.coarsest_max_unknowns = 40;
  MultigridPreconditioner mg(A, {16, 16, 2, 0}, mo);
  ASSERT_GE(mg.level_count(), 3u);
  EXPECT_EQ(mg.unknowns(0), A.rows());
  for (std::size_t l = 1; l < mg.level_count(); ++l) {
    EXPECT_LT(mg.unknowns(l), mg.unknowns(l - 1)) << "level " << l;
    // 2x coarsening in x and y only: each level shrinks ~4x per layer.
    EXPECT_GE(mg.unknowns(l - 1), 3 * mg.unknowns(l)) << "level " << l;
  }
  EXPECT_LE(mg.unknowns(mg.level_count() - 1), 40u);
}

TEST(Multigrid, GeometryMismatchThrows) {
  const CsrMatrix A = make_grid_matrix(4, 4, 2);
  EXPECT_THROW(MultigridPreconditioner(A, {5, 4, 2, 0}), SolverError);
  EXPECT_THROW(MultigridPreconditioner(A, {4, 4, 2, 3}), SolverError);
  EXPECT_THROW(MultigridPreconditioner(A, {0, 0, 0, 0}), SolverError);
}

TEST(Multigrid, AsymmetricSmoothingIsRejected) {
  const CsrMatrix A = make_grid_matrix(8, 8, 1);
  MultigridOptions mo;
  mo.pre_sweeps = 2;
  mo.post_sweeps = 1;  // would silently break CG's symmetry requirement
  EXPECT_THROW(MultigridPreconditioner(A, {8, 8, 1, 0}, mo), SolverError);
}

// --- Operator properties -------------------------------------------------

TEST(Multigrid, VCycleIsSymmetricPositiveDefinite) {
  const CsrMatrix A = make_grid_matrix(12, 12, 2);
  MultigridOptions mo;
  mo.coarsest_max_unknowns = 40;
  MultigridPreconditioner mg(A, {12, 12, 2, 0}, mo);
  const std::size_t n = A.rows();
  // Deterministic pseudo-random probe vectors.
  std::vector<double> r1(n), r2(n), z(n);
  std::uint64_t s = 12345;
  const auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(s >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t i = 0; i < n; ++i) r1[i] = next();
  for (std::size_t i = 0; i < n; ++i) r2[i] = next();

  // Positive definite: r·M⁻¹r > 0 for nonzero r.
  EXPECT_GT(mg.apply_dot(r1, z), 0.0);
  EXPECT_GT(mg.apply_dot(r2, z), 0.0);

  // Symmetric: r2·(M⁻¹ r1) == r1·(M⁻¹ r2) up to rounding.
  mg.apply_dot(r1, z);
  double a = 0.0;
  for (std::size_t i = 0; i < n; ++i) a += r2[i] * z[i];
  mg.apply_dot(r2, z);
  double b = 0.0;
  for (std::size_t i = 0; i < n; ++i) b += r1[i] * z[i];
  EXPECT_NEAR(a, b, 1e-9 * (std::abs(a) + 1.0));
}

TEST(Multigrid, InjectedPreconditionerCutsPcgIterations) {
  const CsrMatrix A = make_grid_matrix(24, 24, 3);
  const std::size_t n = A.rows();
  std::vector<double> b(n, 0.0);
  b[n / 2] = 3.0;
  b[7] = 1.0;

  std::vector<double> x_j(n, 0.0);
  const SolveResult rj = solve_pcg(A, b, x_j);

  MultigridOptions mo;
  mo.coarsest_max_unknowns = 60;
  MultigridPreconditioner mg(A, {24, 24, 3, 0}, mo);
  SolveOptions so;
  so.preconditioner = &mg;
  std::vector<double> x_m(n, 0.0);
  const SolveResult rm = solve_pcg(A, b, x_m, so);

  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(rm.converged);
  EXPECT_LT(rm.iterations, rj.iterations);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x_j[i], x_m[i], 1e-6) << "row " << i;
}

// --- Thermal-model integration ------------------------------------------

TEST(Multigrid, ThermalModelBuildsHierarchyOncePerLayout) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  ThermalModel model(l, make_25d_stack(),
                     config_for(32, PrecondKind::kMultigrid));
  EXPECT_EQ(model.multigrid(), nullptr);  // lazy: nothing built yet
  model.solve(uniform_power(l, 300.0));
  const MultigridPreconditioner* mg = model.multigrid();
  ASSERT_NE(mg, nullptr);
  EXPECT_GE(mg->level_count(), 2u);
  EXPECT_EQ(mg->unknowns(0), model.node_count());
  EXPECT_LE(mg->unknowns(mg->level_count() - 1), 600u);
  // A second solve reuses the same hierarchy instance.
  model.solve(uniform_power(l, 303.0));
  EXPECT_EQ(model.multigrid(), mg);
}

TEST(Multigrid, AutoSelectsMultigridAboveThresholdOnly) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  // Grid 32 → 8204 unknowns ≥ 8192: auto engages multigrid.
  ThermalModel big(l, make_25d_stack(), config_for(32, PrecondKind::kAuto));
  big.solve(uniform_power(l, 300.0));
  EXPECT_NE(big.multigrid(), nullptr);
  // Grid 16 → ~2k unknowns: auto stays on Jacobi.
  ThermalModel small(l, make_25d_stack(), config_for(16, PrecondKind::kAuto));
  small.solve(uniform_power(l, 300.0));
  EXPECT_EQ(small.multigrid(), nullptr);
}

TEST(Multigrid, AtLeastThreeTimesFewerIterationsAtGrid48) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const PowerMap p = uniform_power(l, 300.0);
  ThermalModel jacobi(l, make_25d_stack(),
                      config_for(48, PrecondKind::kJacobi));
  ThermalModel mg(l, make_25d_stack(),
                  config_for(48, PrecondKind::kMultigrid));
  const SolveResult rj = jacobi.solve(p).solve_info;
  const SolveResult rm = mg.solve(p).solve_info;
  ASSERT_TRUE(rj.converged);
  ASSERT_TRUE(rm.converged);
  EXPECT_GE(rj.iterations, 3 * rm.iterations)
      << "jacobi=" << rj.iterations << " mg=" << rm.iterations;
  const std::vector<double> tj = jacobi.tile_temperatures();
  const std::vector<double> tm = mg.tile_temperatures();
  for (std::size_t i = 0; i < tj.size(); ++i)
    EXPECT_NEAR(tj[i], tm[i], 1e-4) << "tile " << i;
}

TEST(Multigrid, JacobiAgreementOnEveryPaperLayout) {
  // Every paper organization shape (2D baseline, 4- and 16-chiplet) at the
  // production evaluation resolution: the preconditioner must not change
  // what the Evaluator computes, only how fast.
  const Organization orgs[] = {
      {1, {}, 0, 256},
      {4, {0.0, 0.0, 2.0}, 1, 192},
      {16, {1.0, 0.5, 1.0}, 0, 256},
  };
  for (const Organization& org : orgs) {
    const ChipletLayout layout = layout_for(org);
    const LayerStack stack =
        org.n_chiplets == 1 ? make_2d_stack() : make_25d_stack();
    ThermalModel jacobi(layout, stack, config_for(32, PrecondKind::kJacobi));
    ThermalModel mg(layout, stack, config_for(32, PrecondKind::kMultigrid));
    const PowerMap p = uniform_power(layout, 250.0);
    const ThermalResult rj = jacobi.solve(p);
    const ThermalResult rm = mg.solve(p);
    ASSERT_TRUE(rj.solve_info.converged) << "n=" << org.n_chiplets;
    ASSERT_TRUE(rm.solve_info.converged) << "n=" << org.n_chiplets;
    EXPECT_NEAR(rj.peak_c, rm.peak_c, 1e-4) << "n=" << org.n_chiplets;
    const std::vector<double> tj = jacobi.tile_temperatures();
    const std::vector<double> tm = mg.tile_temperatures();
    ASSERT_EQ(tj.size(), tm.size());
    for (std::size_t i = 0; i < tj.size(); ++i)
      EXPECT_NEAR(tj[i], tm[i], 1e-4)
          << "n=" << org.n_chiplets << " tile " << i;
  }
}

TEST(Multigrid, ColdSolvesAreReproducibleBitForBit) {
  const ChipletLayout l = make_uniform_layout(4, 4.0);
  const PowerMap p = uniform_power(l, 300.0);
  ThermalModel a(l, make_25d_stack(), config_for(32, PrecondKind::kMultigrid));
  ThermalModel b(l, make_25d_stack(), config_for(32, PrecondKind::kMultigrid));
  a.solve(p);
  b.solve(p);
  EXPECT_EQ(a.tile_temperatures(), b.tile_temperatures());
}

// --- Recovery ladder under fault injection -------------------------------

/// Grid 12 is far below the auto threshold, so these force kMultigrid
/// explicitly: the ladder must behave identically for either
/// preconditioner (same rungs, same counters, same restored state).

TEST(Multigrid, ColdRestartRungRecoversUnderMultigrid) {
  ThermalConfig cfg = config_for(12, PrecondKind::kMultigrid);
  cfg.solve.fault.pcg_fail_at = 0;
  cfg.solve.fault.pcg_fail_rungs = 1;
  const ChipletLayout l = make_uniform_layout(2, 4.0);
  ThermalModel faulted(l, make_25d_stack(), cfg);
  ThermalModel clean(l, make_25d_stack(),
                     config_for(12, PrecondKind::kMultigrid));
  const PowerMap power = uniform_power(l, 200.0);

  const ThermalResult fr = faulted.solve(power);
  const ThermalResult cr = clean.solve(power);
  EXPECT_TRUE(fr.solve_info.converged);
  EXPECT_EQ(faulted.health().cold_restarts, 1u);
  EXPECT_EQ(faulted.health().solve_failures, 0u);
  // The cold-restart rung re-runs the same multigrid-preconditioned solve
  // from ambient — exactly the clean model's first solve.
  EXPECT_EQ(fr.peak_c, cr.peak_c);
  EXPECT_EQ(faulted.tile_temperatures(), clean.tile_temperatures());
}

TEST(Multigrid, ExhaustedLadderRestoresFieldUnderMultigrid) {
  ThermalConfig cfg = config_for(12, PrecondKind::kMultigrid);
  cfg.solve.fault.pcg_fail_at = 1;  // second solve fails every rung
  cfg.solve.fault.pcg_fail_rungs = 4;
  const ChipletLayout l = make_uniform_layout(2, 4.0);
  ThermalModel model(l, make_25d_stack(), cfg);
  const PowerMap power = uniform_power(l, 200.0);

  ASSERT_TRUE(model.solve(power).solve_info.converged);
  const std::vector<double> good = model.tile_temperatures();
  EXPECT_THROW(model.solve(uniform_power(l, 210.0)), ThermalError);
  EXPECT_EQ(model.health().solve_failures, 1u);
  // No warm-start poisoning: the failed attempt's iterate is discarded.
  EXPECT_EQ(model.tile_temperatures(), good);
}

}  // namespace
}  // namespace tacos
