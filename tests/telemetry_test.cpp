/// Tests for the distributed-telemetry layer: the trace-context codecs
/// (string form, service protocol, lease records — including byte-compat
/// with pre-trace-context artifacts), deterministic cross-process shard
/// merging (1/2/8 workers, stable pids, epoch alignment, torn shards),
/// metrics-shard summation, the service `stats` scrape verb, and
/// end-to-end trace adoption: a client call and the server spans it
/// triggers land on one distributed trace id.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/errors.hpp"
#include "common/journal.hpp"
#include "common/lease.hpp"
#include "core/optimizer.hpp"
#include "obs/merge.hpp"
#include "obs/obs.hpp"
#include "perf/benchmark.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace tacos {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "tacos_telemetry_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Enable chosen backends for one test body; always restore "off" (the
/// process default every other test in this binary relies on).
struct ObsGuard {
  ObsGuard(bool metrics, bool trace) {
    obs::set_metrics_enabled(metrics);
    obs::set_trace_enabled(trace);
  }
  ~ObsGuard() {
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
  }
};

// ------------------------------------------------- trace-context codec

TEST(TraceContextCodec, StringFormRoundTrips) {
  const obs::TraceContext ctx{0x00000000deadbeefull, 0x0123456789abcdefull};
  const std::string s = obs::trace_context_string(ctx);
  EXPECT_EQ(s, "00000000deadbeef:0123456789abcdef");
  obs::TraceContext back;
  ASSERT_TRUE(obs::parse_trace_context(s, &back));
  EXPECT_EQ(back, ctx);

  // The zero (untraced) context survives the round trip too: a worker
  // spawned by an untraced supervisor must not invent a trace.
  obs::TraceContext zero;
  ASSERT_TRUE(
      obs::parse_trace_context(obs::trace_context_string(zero), &back));
  EXPECT_EQ(back, zero);
  EXPECT_FALSE(back.valid());
}

TEST(TraceContextCodec, RejectsMalformedStrings) {
  obs::TraceContext out;
  for (const char* bad :
       {"", ":", "12", "12:", ":34", "xyzw:0000000000000012",
        "00000000deadbeef:0123456789abcdefg",
        "00000000deadbeef 0123456789abcdef",
        "00000000deadbeef:0123456789abcdef:1"}) {
    EXPECT_FALSE(obs::parse_trace_context(bad, &out)) << "accepted: " << bad;
  }
}

TEST(TraceContextCodec, ScopedAmbientChainsNewSpans) {
  ObsGuard on(false, true);
  const obs::TraceContext ctx{0x1234, 0x5678};
  obs::ScopedTraceContext scoped(ctx);
  EXPECT_EQ(obs::current_trace_context(), ctx);
  {
    static obs::SpanSite site("telemetry.test.child", "test");
    obs::TraceSpan span(site);
    // The span joins the ambient trace with its own span id, and while
    // open it (not the ambient) is what outgoing work chains from.
    EXPECT_EQ(span.context().trace_id, ctx.trace_id);
    EXPECT_NE(span.context().span_id, ctx.span_id);
    EXPECT_EQ(obs::current_trace_context(), span.context());
  }
}

// -------------------------------------------- service protocol carrier

EvalRequest traced_ping(std::uint64_t trace, std::uint64_t span) {
  EvalRequest req;
  req.kind = EvalRequest::Kind::kPing;
  req.trace_id = trace;
  req.parent_span = span;
  req.idem = request_idem_key(req);
  return req;
}

TEST(ProtocolTraceContext, RequestRoundTripsContext) {
  const EvalRequest req = traced_ping(0xfeedfaceull, 0xba5eba11ull);
  EvalRequest back;
  ASSERT_TRUE(decode_request(encode_request(req), &back));
  EXPECT_EQ(back.trace_id, req.trace_id);
  EXPECT_EQ(back.parent_span, req.parent_span);
  EXPECT_EQ(back.idem, req.idem);
}

TEST(ProtocolTraceContext, UntracedRequestKeepsPreTraceBytes) {
  // A zero trace id must leave no mark on the wire: the payload carries
  // no `trace` line, so untraced request bytes are identical to what a
  // pre-trace-context build emits (same kProtocolVersion too).
  const std::string payload = encode_request(traced_ping(0, 0));
  EXPECT_EQ(payload.find("trace"), std::string::npos) << payload;

  // And a pre-trace-context payload (no `trace` line by construction)
  // decodes to the zero context rather than erroring.
  EvalRequest back;
  ASSERT_TRUE(decode_request(payload, &back));
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.parent_span, 0u);
}

TEST(ProtocolTraceContext, IdemKeyIgnoresTraceContext) {
  // A traced retry must hit the same memo slot as an untraced attempt:
  // the idempotency key is blind to the trace context.
  const EvalRequest untraced = traced_ping(0, 0);
  const EvalRequest traced = traced_ping(0x1111, 0x2222);
  EXPECT_EQ(request_idem_key(untraced), request_idem_key(traced));
}

// ------------------------------------------------- lease-record carrier

TEST(LeaseTraceContext, RecordRoundTripsContext) {
  LeaseRecord rec;
  rec.kind = LeaseRecord::Kind::kClaim;
  rec.task = "optimize:canneal";
  rec.worker = "w0.1";
  rec.epoch = 7;
  rec.deadline_ms = 123456;
  rec.trace_id = 0xabcdefull;
  rec.span_id = 0x123456ull;
  // encode emits the newline-terminated on-disk line; decode takes the
  // line as the log replay splits it, without the terminator.
  std::string line = encode_lease_record(rec);
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  LeaseRecord back;
  ASSERT_TRUE(decode_lease_record(line, &back));
  EXPECT_EQ(back.task, rec.task);
  EXPECT_EQ(back.worker, rec.worker);
  EXPECT_EQ(back.epoch, rec.epoch);
  EXPECT_EQ(back.deadline_ms, rec.deadline_ms);
  EXPECT_EQ(back.trace_id, rec.trace_id);
  EXPECT_EQ(back.span_id, rec.span_id);
}

TEST(LeaseTraceContext, UntracedRecordKeepsOldFormat) {
  LeaseRecord rec;
  rec.kind = LeaseRecord::Kind::kDone;
  rec.task = "optimize:dedup";
  rec.worker = "w1.2";
  rec.epoch = 3;
  rec.deadline_ms = 0;
  const std::string line = encode_lease_record(rec);
  // The untraced encoding is exactly the pre-trace-context four-token
  // payload — resumed runs append to old logs without changing format.
  const std::string oldline =
      format_journal_line("lease:optimize:dedup", "done w1.2 3 0");
  EXPECT_EQ(line, oldline + "\n");

  // And an old-log line decodes with a zero context.
  LeaseRecord back;
  ASSERT_TRUE(decode_lease_record(oldline, &back));
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.span_id, 0u);
}

// ------------------------------------------------------- shard merging

/// One complete trace-event line in the exporters' strict format.
std::string ev_line(const std::string& name, std::uint64_t ts,
                    std::uint64_t dur) {
  std::ostringstream os;
  os << "{\"name\":\"" << name << "\",\"cat\":\"t\",\"ph\":\"X\",\"ts\":" << ts
     << ",\"dur\":" << dur << ",\"pid\":0,\"tid\":0,\"args\":{}}";
  return os.str();
}

void write_shard(const std::string& dir, const std::string& file,
                 std::uint64_t epoch_ms,
                 const std::vector<std::string>& lines) {
  std::ofstream out(dir + "/" + file, std::ios::binary);
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":0,"
      << "\"epochMs\":" << epoch_ms << "},\n\"traceEvents\":[\n";
  for (std::size_t i = 0; i < lines.size(); ++i)
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  out << "]}\n";
}

TEST(TraceMerge, DeterministicAcrossWorkerCounts) {
  for (const int workers : {1, 2, 8}) {
    const std::string dir =
        fresh_dir("merge" + std::to_string(workers));
    write_shard(dir, "trace.json", 1000, {ev_line("run.main", 0, 1000)});
    for (int k = 0; k < workers; ++k) {
      write_shard(dir, "trace-w" + std::to_string(k) + ".json", 1000,
                  {ev_line("fabric.task", 5, 20), ev_line("solve", 8, 10)});
    }
    const obs::TraceMergeResult a = obs::merge_trace_shards(dir);
    const obs::TraceMergeResult b = obs::merge_trace_shards(dir);
    // The merge is a pure function of the shard bytes: re-running it
    // yields identical output, byte for byte.
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.events, static_cast<std::size_t>(1 + 2 * workers));
    ASSERT_EQ(a.shards.size(), static_cast<std::size_t>(1 + workers));
    EXPECT_EQ(a.shards[0].pid, 0u);  // supervisor first
    for (int k = 0; k < workers; ++k) {
      EXPECT_EQ(a.shards[static_cast<std::size_t>(1 + k)].pid,
                static_cast<std::uint32_t>(2 + k));
      EXPECT_FALSE(a.shards[static_cast<std::size_t>(1 + k)].torn);
    }
  }
}

TEST(TraceMerge, WorkerPidsAreStableUnderShardSubsets) {
  // Worker k owns pid 2+k no matter which other shards exist, so a
  // resumed or partially-crashed run names processes consistently.
  const std::string dir = fresh_dir("subset");
  write_shard(dir, "trace-w3.json", 1000, {ev_line("fabric.task", 1, 2)});
  const obs::TraceMergeResult r = obs::merge_trace_shards(dir);
  ASSERT_EQ(r.shards.size(), 1u);
  EXPECT_EQ(r.shards[0].pid, 5u);
  EXPECT_EQ(r.shards[0].label, "worker w3");
  EXPECT_NE(r.json.find("\"pid\":5"), std::string::npos);
}

TEST(TraceMerge, AlignsShardsOnWallClockEpochs) {
  // The worker started 250 ms after the supervisor (per their exported
  // epochMs); its events shift by 250'000 us onto the common timeline.
  const std::string dir = fresh_dir("epochs");
  write_shard(dir, "trace.json", 1000, {ev_line("run.main", 0, 500000)});
  write_shard(dir, "trace-w0.json", 1250, {ev_line("fabric.task", 10, 20)});
  const obs::TraceMergeResult r = obs::merge_trace_shards(dir);
  EXPECT_NE(r.json.find("\"ts\":250010"), std::string::npos) << r.json;
  EXPECT_NE(r.json.find("\"epochMs\":1000"), std::string::npos);
}

TEST(TraceMerge, ToleratesTornShard) {
  // A worker killed mid-write leaves a shard without its "]}" terminator
  // and with a half-written final line; the merge keeps every complete
  // line, flags the shard torn, and still emits a valid document.
  const std::string dir = fresh_dir("torn");
  write_shard(dir, "trace.json", 1000, {ev_line("run.main", 0, 100)});
  {
    std::ofstream out(dir + "/trace-w0.json", std::ios::binary);
    out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":0,"
        << "\"epochMs\":1000},\n\"traceEvents\":[\n"
        << ev_line("fabric.task", 5, 10) << ",\n"
        << "{\"name\":\"half";  // torn mid-line, no terminator
  }
  const obs::TraceMergeResult r = obs::merge_trace_shards(dir);
  ASSERT_EQ(r.shards.size(), 2u);
  EXPECT_FALSE(r.shards[0].torn);
  EXPECT_TRUE(r.shards[1].torn);
  EXPECT_EQ(r.shards[1].events, 1u);  // the complete line survived
  EXPECT_EQ(r.events, 2u);
  EXPECT_EQ(r.json.substr(r.json.size() - 4), "\n]}\n");
  EXPECT_EQ(r.json.find("half"), std::string::npos);
}

TEST(MetricsMerge, SumsCountersAcrossShards) {
  const std::string dir = fresh_dir("metrics");
  const auto write = [&](const std::string& file, const std::string& name,
                         double value) {
    std::ofstream out(dir + "/" + file, std::ios::binary);
    out << "{\"metrics\":[\n{\"name\":\"" << name
        << "\",\"type\":\"counter\",\"value\":" << value << "}\n]}\n";
  };
  write("metrics-w0.json", "service.requests", 3);
  write("metrics-w1.json", "service.requests", 4);
  write("metrics.json", "thermal.solves", 2);

  const std::map<std::string, double> counters = obs::merged_counters(dir);
  ASSERT_TRUE(counters.count("service.requests"));
  EXPECT_DOUBLE_EQ(counters.at("service.requests"), 7.0);
  EXPECT_DOUBLE_EQ(counters.at("thermal.solves"), 2.0);

  const obs::MetricsMergeResult merged = obs::merge_metrics_shards(dir);
  EXPECT_EQ(merged.shards.size(), 3u);
  EXPECT_EQ(merged.series, 3u);
  EXPECT_NE(merged.json.find("service.requests"), std::string::npos);
}

// ------------------------------------------------ service-level checks

/// An in-process server on a Unix socket under its own run dir.
struct TestServer {
  ServerOptions options;
  CancelToken stop;
  std::thread thread;
  ServerStats stats;

  explicit TestServer(const std::string& dir) {
    options.endpoint = parse_endpoint(dir + "/svc.sock");
    options.memo_dir = dir;
  }
  ~TestServer() { shutdown(); }

  void start() {
    thread = std::thread([this] { stats = serve_forever(options, &stop); });
    for (int i = 0; i < 500; ++i) {
      try {
        Conn probe = connect_endpoint(options.endpoint, 200);
        if (probe.ok()) return;
      } catch (const ServiceError&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "server never came up on "
                  << options.endpoint.describe();
  }

  void shutdown() {
    stop.cancel();
    if (thread.joinable()) thread.join();
  }
};

ClientOptions client_options(const Endpoint& ep, int attempts = 5) {
  ClientOptions o;
  o.endpoint = ep;
  o.max_attempts = attempts;
  o.backoff = BackoffPolicy{20, 200, 0.0, 0};  // fast retries for tests
  return o;
}

EvalConfig small_config() {
  EvalConfig c;
  c.thermal.grid_nx = c.thermal.grid_ny = 12;
  return c;
}

OptimizerOptions small_options() {
  OptimizerOptions o;
  o.step_mm = 4.0;
  o.starts = 3;
  return o;
}

TEST(StatsVerb, ScrapesLiveRequestMetrics) {
  const std::string dir = fresh_dir("stats");
  TestServer server(dir);
  server.start();
  EvalClient client(client_options(server.options.endpoint));
  ASSERT_TRUE(client.ping());

  const std::optional<std::string> payload = client.stats();
  ASSERT_TRUE(payload.has_value()) << "stats verb not answered";
  // The scrape works with --metrics off on the server: per-request
  // accounting is always on.  Spot-check the counter lines and all three
  // quantile histograms.
  for (const char* key :
       {"uptime_ms", "requests", "served_ok", "memo_hits", "shed",
        "hist latency_ms", "hist queue_wait_ms", "hist solve_ms", "p99"}) {
    EXPECT_NE(payload->find(key), std::string::npos)
        << "stats payload lacks '" << key << "':\n" << *payload;
  }
}

/// Distributed trace ids (the "trace" arg) of every span named `name` in
/// a tracer JSON export.
std::set<std::string> trace_ids_for(const std::string& json,
                                    const std::string& name) {
  std::set<std::string> out;
  const std::string needle = "\"name\":\"" + name + "\"";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    const std::string tr = "\"trace\":\"";
    const std::size_t t = line.find(tr);
    if (t != std::string::npos) {
      const std::size_t begin = t + tr.size();
      out.insert(line.substr(begin, line.find('"', begin) - begin));
    }
    pos = eol;
  }
  return out;
}

TEST(DistributedTrace, ServerSpansChainToClientCall) {
  ObsGuard on(false, true);
  obs::Tracer::global().reset();

  const std::string dir = fresh_dir("adopt");
  TestServer server(dir);
  server.start();
  EvalClient client(client_options(server.options.endpoint));
  const std::string payload = client.optimize(
      small_config(), small_options(),
      std::string(representative_benchmarks()[0]), 0.0);
  EXPECT_FALSE(payload.empty());
  server.shutdown();

  // Server and client share this process's tracer, so the export holds
  // both sides.  The acceptance bar: one distributed trace id runs from
  // the client call through the server's request handling into the solve.
  const std::string json = obs::Tracer::global().to_json();
  const std::set<std::string> call = trace_ids_for(json, "service.client.call");
  const std::set<std::string> request = trace_ids_for(json, "service.request");
  const std::set<std::string> solve = trace_ids_for(json, "service.solve");
  ASSERT_FALSE(call.empty());
  ASSERT_FALSE(request.empty());
  ASSERT_FALSE(solve.empty());
  bool shared = false;
  for (const std::string& id : call)
    if (request.count(id) && solve.count(id)) shared = true;
  EXPECT_TRUE(shared) << "no trace id runs client -> server -> solve";
}

}  // namespace
}  // namespace tacos
