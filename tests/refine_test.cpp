#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "alloc/policy.hpp"
#include "common/rng.hpp"
#include "core/evaluator.hpp"
#include "core/leakage.hpp"
#include "core/optimizer.hpp"
#include "core/organization.hpp"
#include "core/refine.hpp"
#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "power/dvfs.hpp"
#include "power/power_model.hpp"
#include "thermal/adjoint.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {
namespace {

// Central-difference step for the spacing gradients: large enough that the
// O(tol·T/h) solver noise stays below the 1e-5 relative target at
// rel_tolerance 1e-12, small enough that no chiplet edge crosses a grid
// cell boundary (the layouts below use off-grid spacings, so every edge
// sits well inside a cell).
constexpr double kFdStep = 3e-4;

ThermalConfig tight_config(std::size_t n) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = n;
  c.solve.rel_tolerance = 1e-12;
  return c;
}

/// Exact adjoint gradient dT_peak/dθ of the frozen-watts chain at `l`.
double adjoint_gradient(const ChipletLayout& l, const PowerMap& pm,
                        const std::vector<int>& src,
                        const std::vector<ChipletVelocity>& vel,
                        std::size_t grid) {
  ThermalModel m(l, make_25d_stack(), tight_config(grid));
  m.solve(pm);
  const std::vector<double>& lambda = m.adjoint_peak();
  return peak_spacing_gradient(m, lambda, pm, src, l, vel);
}

double solve_peak(const ChipletLayout& l, const PowerMap& pm,
                  std::size_t grid) {
  ThermalModel m(l, make_25d_stack(), tight_config(grid));
  return m.solve(pm).peak_c;
}

/// Asymmetric per-chiplet heat sources: a unique, well-separated hottest
/// cell keeps the max() in T_peak smooth across the FD stencil.
PowerMap chiplet_power(const ChipletLayout& l, std::vector<int>* src) {
  PowerMap pm;
  for (std::size_t i = 0; i < l.chiplets().size(); ++i) {
    pm.add(l.chiplets()[i].rect, 6.0 + 2.3 * static_cast<double>(i % 7) +
                                     0.4 * static_cast<double>(i));
    src->push_back(static_cast<int>(i));
  }
  return pm;
}

void expect_rel_near(double grad, double fd, double rel) {
  EXPECT_NEAR(grad, fd, rel * std::max(1.0, std::abs(fd)))
      << "adjoint " << grad << " vs central FD " << fd;
}

// --- d_overlap_area geometry --------------------------------------------

TEST(AdjointGeometry, OverlapDerivativeAnalyticCases) {
  const Rect cell = Rect::make(0.0, 0.0, 1.0, 1.0);
  // r's left edge is binding inside the cell: growing x shrinks overlap.
  EXPECT_DOUBLE_EQ(
      d_overlap_area(cell, Rect::make(0.5, 0.0, 1.0, 1.0), 1.0, 0.0), -1.0);
  // r's right edge is binding: growing x grows overlap.
  EXPECT_DOUBLE_EQ(
      d_overlap_area(cell, Rect::make(-0.5, 0.0, 1.0, 1.0), 1.0, 0.0), 1.0);
  // r strictly contains the cell: both binding edges are the cell's.
  EXPECT_DOUBLE_EQ(
      d_overlap_area(cell, Rect::make(-1.0, -1.0, 3.0, 3.0), 1.0, 1.0), 0.0);
  // Disjoint rectangles contribute nothing.
  EXPECT_DOUBLE_EQ(
      d_overlap_area(cell, Rect::make(2.0, 0.0, 1.0, 1.0), 1.0, 0.0), 0.0);
  // Mixed axes: overlap = (1-0.25)*(1-0.5); d/dθ with v=(1,1) is
  // -oy - ox = -(0.5 + 0.75).
  EXPECT_DOUBLE_EQ(
      d_overlap_area(cell, Rect::make(0.25, 0.5, 2.0, 2.0), 1.0, 1.0),
      -(0.5 + 0.75));
}

TEST(AdjointGeometry, OverlapDerivativeMatchesFiniteDifference) {
  const Rect cell = Rect::make(1.25, 2.5, 1.25, 1.25);
  const Rect r = Rect::make(0.83, 2.91, 2.2, 1.7);
  const double vx = 0.7, vy = -0.4;
  const auto overlap = [&](double t) {
    const Rect rt =
        Rect::make(r.x + t * vx, r.y + t * vy, r.w, r.h);
    const double ox = std::min(cell.x2(), rt.x2()) - std::max(cell.x, rt.x);
    const double oy = std::min(cell.y2(), rt.y2()) - std::max(cell.y, rt.y);
    return (ox > 0 && oy > 0) ? ox * oy : 0.0;
  };
  const double fd = (overlap(kFdStep) - overlap(-kFdStep)) / (2 * kFdStep);
  EXPECT_NEAR(d_overlap_area(cell, r, vx, vy), fd, 1e-9);
}

// --- Full-chain gradient vs central differences -------------------------

// Layout 1: a free-form 2-chiplet system (no tiles, hand-built power),
// one chiplet translating diagonally.
TEST(AdjointGradient, MatchesFiniteDifferenceOnCustomLayout) {
  const double vx = 1.0, vy = 0.4;
  const auto layout_at = [&](double t) {
    return make_custom_layout({Rect::make(4.1 + t * vx, 6.3 + t * vy, 8, 8),
                               Rect::make(17.3, 9.1, 8, 8)},
                              30.0);
  };
  const ChipletLayout base = layout_at(0.0);
  PowerMap pm;
  pm.add(base.chiplets()[0].rect, 34.0);
  pm.add(base.chiplets()[1].rect, 21.0);
  const std::vector<int> src = {0, 1};
  const std::vector<ChipletVelocity> vel = {{vx, vy}, {0.0, 0.0}};

  const double grad = adjoint_gradient(base, pm, src, vel, 24);
  const ChipletLayout lp = layout_at(kFdStep), lm = layout_at(-kFdStep);
  const double fd = (solve_peak(lp, translate_power_map(pm, src, base, lp),
                                24) -
                     solve_peak(lm, translate_power_map(pm, src, base, lm),
                                24)) /
                    (2 * kFdStep);
  EXPECT_NE(fd, 0.0);
  expect_rel_near(grad, fd, 1e-5);
}

// Layout 2: the paper's 16-chiplet organization at off-grid spacings,
// both manifold parameters (s1 along the fixed-interposer manifold, s2).
TEST(AdjointGradient, MatchesFiniteDifferenceOnOrg16) {
  const double s1 = 0.73, s2 = 0.41, s3 = 1.9;
  const ChipletLayout base = make_org16_layout({s1, s2, s3});
  std::vector<int> src;
  const PowerMap pm = chiplet_power(base, &src);

  // param 0: s1 moves along Eq. 9 (s3 compensates; interposer fixed).
  {
    const std::vector<ChipletVelocity> vel =
        org16_spacing_velocities(base, 0);
    const double grad = adjoint_gradient(base, pm, src, vel, 24);
    const ChipletLayout lp =
        make_org16_layout({s1 + kFdStep, s2, s3 - 2 * kFdStep});
    const ChipletLayout lm =
        make_org16_layout({s1 - kFdStep, s2, s3 + 2 * kFdStep});
    const double fd =
        (solve_peak(lp, translate_power_map(pm, src, base, lp), 24) -
         solve_peak(lm, translate_power_map(pm, src, base, lm), 24)) /
        (2 * kFdStep);
    EXPECT_NE(fd, 0.0);
    expect_rel_near(grad, fd, 1e-5);
  }
  // param 1: the center cluster spreads from the interposer midlines.
  {
    const std::vector<ChipletVelocity> vel =
        org16_spacing_velocities(base, 1);
    const double grad = adjoint_gradient(base, pm, src, vel, 24);
    const ChipletLayout lp = make_org16_layout({s1, s2 + kFdStep, s3});
    const ChipletLayout lm = make_org16_layout({s1, s2 - kFdStep, s3});
    const double fd =
        (solve_peak(lp, translate_power_map(pm, src, base, lp), 24) -
         solve_peak(lm, translate_power_map(pm, src, base, lm), 24)) /
        (2 * kFdStep);
    EXPECT_NE(fd, 0.0);
    expect_rel_near(grad, fd, 1e-5);
  }
}

// Layout 3: the paper-resolution 64×64 grid (multigrid preconditioner
// path), one manifold parameter.
TEST(AdjointGradient, MatchesFiniteDifferenceOnPaperGrid) {
  const double s1 = 0.73, s2 = 0.41, s3 = 1.9;
  const ChipletLayout base = make_org16_layout({s1, s2, s3});
  std::vector<int> src;
  const PowerMap pm = chiplet_power(base, &src);
  const std::vector<ChipletVelocity> vel = org16_spacing_velocities(base, 0);
  const double grad = adjoint_gradient(base, pm, src, vel, 64);
  const ChipletLayout lp =
      make_org16_layout({s1 + kFdStep, s2, s3 - 2 * kFdStep});
  const ChipletLayout lm =
      make_org16_layout({s1 - kFdStep, s2, s3 + 2 * kFdStep});
  const double fd =
      (solve_peak(lp, translate_power_map(pm, src, base, lp), 64) -
       solve_peak(lm, translate_power_map(pm, src, base, lm), 64)) /
      (2 * kFdStep);
  EXPECT_NE(fd, 0.0);
  expect_rel_near(grad, fd, 1e-5);
}

// --- Evaluator::peak_gradient -------------------------------------------

// The Evaluator's gradient entry point must agree with a central
// difference of its own frozen-watts pipeline: converge the leakage fixed
// point, rebuild the power map from the final tile temperatures, then
// translate the sources rigidly with their chiplets.
TEST(AdjointGradient, EvaluatorPeakGradientMatchesFiniteDifference) {
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = 24;
  cfg.thermal.solve.rel_tolerance = 1e-12;
  Evaluator eval(cfg);
  const BenchmarkProfile& bench = benchmark_by_name("cholesky");
  const Organization org{16, {0.73, 0.41, 1.9}, 2, 256};

  const Evaluator::PeakGradient g = eval.peak_gradient(org, bench);
  EXPECT_GT(g.peak_c, 45.0);
  EXPECT_EQ(eval.stats().refine.adjoint_solves, 1u);

  // Reproduce the pipeline outside the Evaluator.
  const ChipletLayout base = layout_for(org, cfg.spec);
  ThermalModel model(base, make_25d_stack(), cfg.thermal);
  const std::vector<int> active =
      active_tiles(cfg.policy, org.active_cores, cfg.spec);
  run_leakage_fixed_point(model, base, bench, level_of(org), active,
                          cfg.power, cfg.leak_tol_c, cfg.max_leak_iters);
  const std::vector<double> temps = model.tile_temperatures();
  std::vector<int> src;
  const PowerMap pm = build_power_map(base, bench, level_of(org), active,
                                      temps, cfg.power, 1.0, &src);

  const auto frozen_peak = [&](const Spacing& s) {
    const ChipletLayout l = make_org16_layout(s, cfg.spec);
    ThermalModel m(l, make_25d_stack(), cfg.thermal);
    return m.solve(translate_power_map(pm, src, base, l)).peak_c;
  };
  const Spacing& s = org.spacing;
  const double fd1 =
      (frozen_peak({s.s1 + kFdStep, s.s2, s.s3 - 2 * kFdStep}) -
       frozen_peak({s.s1 - kFdStep, s.s2, s.s3 + 2 * kFdStep})) /
      (2 * kFdStep);
  const double fd2 = (frozen_peak({s.s1, s.s2 + kFdStep, s.s3}) -
                      frozen_peak({s.s1, s.s2 - kFdStep, s.s3})) /
                     (2 * kFdStep);
  expect_rel_near(g.d_s1, fd1, 1e-5);
  expect_rel_near(g.d_s2, fd2, 1e-5);
}

// --- Refinement driver ---------------------------------------------------

// Refinement never reports a hotter point than the grid winner it started
// from, keeps the frozen combination's objective untouched, and records
// its work in the mergeable counters.
TEST(Refine, RefinedWinnerNeverWorseAndCombinationFrozen) {
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = 24;
  const BenchmarkProfile& bench = benchmark_by_name("lu.cont");

  OptimizerOptions grid_opts;
  grid_opts.step_mm = 2.0;
  grid_opts.starts = 4;
  grid_opts.chiplet_counts = {16};
  Evaluator grid_eval(cfg);
  const OptResult grid = optimize_greedy(grid_eval, bench, grid_opts);
  ASSERT_TRUE(grid.found);
  EXPECT_FALSE(grid.refined);

  OptimizerOptions opts = grid_opts;
  opts.refine = true;
  Evaluator eval(cfg);
  const OptResult r = optimize_greedy(eval, bench, opts);
  ASSERT_TRUE(r.found);
  // The frozen combination: refinement moves spacings only.
  EXPECT_EQ(r.org.n_chiplets, grid.org.n_chiplets);
  EXPECT_EQ(r.org.dvfs_idx, grid.org.dvfs_idx);
  EXPECT_EQ(r.org.active_cores, grid.org.active_cores);
  EXPECT_EQ(r.objective, grid.objective);
  EXPECT_EQ(r.ips, grid.ips);
  EXPECT_EQ(r.cost, grid.cost);
  EXPECT_LE(r.peak_c, grid.peak_c + 1e-9);

  const RefineStats& rs = eval.stats().refine;
  EXPECT_EQ(rs.attempted, 1u);
  EXPECT_GT(rs.adjoint_solves, 0u);
  if (r.refined) {
    EXPECT_EQ(r.grid_spacing, grid.org.spacing);
    EXPECT_EQ(r.peak_grid_c, grid.peak_c);
    EXPECT_GT(r.refine_steps, 0);
    EXPECT_LT(r.peak_c, r.peak_grid_c);
    // Off the grid: at least one spacing is no longer a step multiple.
    EXPECT_NE(r.org.spacing, grid.org.spacing);
    EXPECT_EQ(static_cast<std::size_t>(r.refine_steps), rs.steps);
  } else {
    EXPECT_EQ(r.peak_c, grid.peak_c);
    EXPECT_EQ(r.org.spacing, grid.org.spacing);
  }
}

TEST(Refine, DriverImprovesSeededOffOptimumPoint) {
  // Drive refine_spacing directly from a deliberately bad manifold point:
  // the descent must strictly reduce the exact re-verified peak.
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = 16;
  Evaluator eval(cfg);
  const BenchmarkProfile& bench = benchmark_by_name("canneal");
  const double budget = 4.0;
  Organization org{16, {2.0, 0.0, 0.0}, 1, 192};  // everything in s1
  const double start_peak = eval.thermal_eval(org, bench).peak_c;
  const RefineResult rr =
      refine_spacing(eval, bench, org, budget, 1.0, 1e-3, 20);
  EXPECT_LE(rr.peak_c, start_peak + 1e-9);
  if (rr.steps > 0) {
    EXPECT_LT(rr.peak_c, start_peak);
  }
  // Every visited point stayed on the manifold.
  EXPECT_NEAR(rr.org.spacing.s3,
              std::max(0.0, budget - 2 * rr.org.spacing.s1), 1e-12);
  EXPECT_GE(rr.org.spacing.s1, 0.0);
  EXPECT_LE(rr.org.spacing.s1, budget / 2 + 1e-12);
  // The refined point re-evaluates to exactly the reported peak.
  EXPECT_EQ(eval.thermal_eval(rr.org, bench).peak_c, rr.peak_c);
}

// --- Spacing-manifold satellites ----------------------------------------

TEST(SmartStart, StaysOnManifoldForNonDivisibleBudgets) {
  const double steps[] = {0.5, 0.3, 0.7, 1.0};
  const double budgets[] = {0.3,  0.7, 1.1, 2.3, 3.7,
                            5.9,  6.2, 9.999999999, 0.0};
  for (const double step : steps) {
    for (const double budget : budgets) {
      const auto [i1, i2] = greedy_smart_start(budget, step);
      const long grid_max = spacing_grid_max(budget, step);
      EXPECT_GE(i1, 0L);
      EXPECT_GE(i2, 0L);
      EXPECT_LE(i1, grid_max);
      EXPECT_LE(i2, grid_max);
      // The Eq. 9 manifold: s3 = budget − 2 s1 must not go negative.
      EXPECT_LE(2 * static_cast<double>(i1) * step, budget + 1e-9)
          << "budget " << budget << " step " << step;
      // Eq. 10: s2 ≤ s1 + s3/2 = budget/2.
      EXPECT_LE(2 * static_cast<double>(i2) * step, budget + 1e-9)
          << "budget " << budget << " step " << step;
      const double s1 = static_cast<double>(i1) * step;
      const double s3 = std::max(0.0, budget - 2 * s1);
      const double s2 =
          std::min(static_cast<double>(i2) * step, s1 + s3 / 2);
      EXPECT_NO_THROW(make_org16_layout({s1, s2, s3}))
          << "budget " << budget << " step " << step;
    }
  }
}

TEST(SmartStart, HistoricalStartsUnchangedOnDivisibleBudgets) {
  // Every journaled sweep depends on these exact starts (the ladder-mode
  // winner is path-dependent): for step-divisible budgets the start is the
  // nearest-rounded uniform placement, unchanged since the first release.
  for (const double step : {0.5, 2.0}) {
    for (long k = 0; k <= 12; ++k) {
      const double budget = static_cast<double>(k) * step;
      const long grid_max = spacing_grid_max(budget, step);
      const long want_i1 = std::min(std::lround(budget / 3.0 / step),
                                    grid_max);
      const long want_i2 = std::min(
          std::lround((budget - 2 * static_cast<double>(want_i1) * step) /
                      2.0 / step),
          grid_max);
      const auto [i1, i2] = greedy_smart_start(budget, step);
      EXPECT_EQ(i1, want_i1) << "budget " << budget << " step " << step;
      EXPECT_EQ(i2, want_i2) << "budget " << budget << " step " << step;
    }
  }
}

TEST(SpacingGrid, KnifeEdgeBudgetsRoundUpAndStillBuildValidLayouts) {
  // A budget an epsilon below a step multiple must round up (the intent of
  // spacing_grid_max's 1e-9 guard) — and the resulting extreme grid point,
  // which overshoots the budget by O(1e-9), must still pass
  // make_org16_layout's manifold checks after the optimizer's clamps.
  const double step = 0.5;
  for (long m = 1; m <= 8; ++m) {
    const double budget = 2 * step * static_cast<double>(m) * (1.0 - 5e-13);
    const long gm = spacing_grid_max(budget, step);
    EXPECT_EQ(gm, m) << "budget " << budget;
    const double s1 = static_cast<double>(gm) * step;
    const double s3 = std::max(0.0, budget - 2 * s1);
    const double s2 = std::min(static_cast<double>(gm) * step, s1 + s3 / 2);
    EXPECT_NO_THROW(make_org16_layout({s1, s2, s3})) << "budget " << budget;
  }
}

TEST(SpacingGrid, EstimatorMatchesEnumerationLoopBounds) {
  // design_space_size and the exhaustive-placement loop share
  // spacing_grid_max; recompute the estimator from the public pieces and
  // require exact agreement (the paper's search-cost claims rest on this).
  EvalConfig cfg;
  cfg.thermal.grid_nx = cfg.thermal.grid_ny = 12;
  Evaluator eval(cfg);
  OptimizerOptions opts;
  opts.step_mm = 0.5;
  opts.chiplet_counts = {16};
  const SystemSpec& spec = eval.config().spec;
  const double min_w = interposer_edge_for(4, Spacing{}, spec);
  std::size_t placements = 0;
  for (double w = min_w; w <= spec.max_interposer_mm + 1e-9;
       w += opts.step_mm) {
    const long gm = spacing_grid_max(w - min_w, opts.step_mm);
    placements += static_cast<std::size_t>(gm + 1) *
                  static_cast<std::size_t>(gm + 1);
  }
  EXPECT_EQ(design_space_size(eval, opts),
            placements * kDvfsLevelCount * kActiveCoreChoices.size());
}

TEST(Rng, UniformLongMatchesUniformIntSequenceOnNarrowRanges) {
  Rng a(99), b(99);
  for (int i = 0; i < 256; ++i)
    EXPECT_EQ(a.uniform_long(0, 17), static_cast<long>(b.uniform_int(0, 17)));
}

TEST(Rng, UniformLongCoversWideRangesWithoutTruncation) {
  Rng r(7);
  const long hi = 3'000'000'000L;  // would wrap negative as an int
  for (int i = 0; i < 256; ++i) {
    const long v = r.uniform_long(0, hi);
    EXPECT_GE(v, 0L);
    EXPECT_LE(v, hi);
  }
}

// --- Journal codec -------------------------------------------------------

TEST(RefineJournal, OptResultRoundTripsRefinedFields) {
  OptResult r;
  r.found = true;
  r.org = {16, {0.6180339887498949, 0.3, 1.25}, 3, 224};
  r.ips = 1.5e11;
  r.cost = 42.0;
  r.objective = 1.9;
  r.peak_c = 83.4567890123456789;
  r.refined = true;
  r.grid_spacing = {0.5, 0.5, 1.5};
  r.peak_grid_c = 84.01;
  r.refine_steps = 3;
  EvalStats s;
  s.solves = 12;
  s.evals = 5;
  s.refine.attempted = 1;
  s.refine.steps = 3;
  s.refine.trials = 7;
  s.refine.adjoint_solves = 4;

  OptResult r2;
  EvalStats s2;
  ASSERT_TRUE(decode_opt_result(encode_opt_result(r, s), &r2, &s2));
  EXPECT_TRUE(r2.refined);
  EXPECT_EQ(r2.org.spacing, r.org.spacing);
  EXPECT_EQ(r2.grid_spacing, r.grid_spacing);
  EXPECT_EQ(r2.peak_grid_c, r.peak_grid_c);
  EXPECT_EQ(r2.peak_c, r.peak_c);
  EXPECT_EQ(r2.refine_steps, r.refine_steps);
  EXPECT_EQ(s2.refine.attempted, s.refine.attempted);
  EXPECT_EQ(s2.refine.steps, s.refine.steps);
  EXPECT_EQ(s2.refine.trials, s.refine.trials);
  EXPECT_EQ(s2.refine.adjoint_solves, s.refine.adjoint_solves);
  // Re-encoding reproduces the payload byte-for-byte (the resume
  // fingerprint property).
  EXPECT_EQ(encode_opt_result(r2, s2), encode_opt_result(r, s));
  // The standalone refine row is deterministic too.
  EXPECT_EQ(encode_refine_row(r), encode_refine_row(r2));
  // %.17g keeps every significant digit of the off-grid spacing.
  EXPECT_NE(encode_refine_row(r).find("0.6180339887498949"),
            std::string::npos);
}

TEST(RefineJournal, GridOnlyPayloadsCarryNoRefineLines) {
  OptResult r;
  r.found = true;
  r.org = {16, {0.5, 0.5, 1.0}, 0, 256};
  const std::string payload = encode_opt_result(r, EvalStats{});
  EXPECT_EQ(payload.find("refine"), std::string::npos);
  OptResult r2;
  EvalStats s2;
  ASSERT_TRUE(decode_opt_result(payload, &r2, &s2));
  EXPECT_FALSE(r2.refined);
  EXPECT_FALSE(s2.refine.any());
}

}  // namespace
}  // namespace tacos
