#include <gtest/gtest.h>

#include <random>

#include "geom/grid.hpp"
#include "geom/rect.hpp"

namespace tacos {
namespace {

TEST(Rect, BasicAccessors) {
  const Rect r = Rect::make(1.0, 2.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(r.x2(), 4.0);
  EXPECT_DOUBLE_EQ(r.y2(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center().x, 2.5);
  EXPECT_DOUBLE_EQ(r.center().y, 4.0);
}

TEST(Rect, MakeRejectsNegativeDimensions) {
  EXPECT_THROW(Rect::make(0, 0, -1, 1), Error);
  EXPECT_THROW(Rect::make(0, 0, 1, -1), Error);
}

TEST(Rect, CenteredPlacesCenterCorrectly) {
  const Rect r = Rect::centered(10.0, 20.0, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(r.x, 8.0);
  EXPECT_DOUBLE_EQ(r.y, 17.0);
  EXPECT_DOUBLE_EQ(r.center().x, 10.0);
  EXPECT_DOUBLE_EQ(r.center().y, 20.0);
}

TEST(Rect, ContainsPoint) {
  const Rect r = Rect::make(0, 0, 2, 2);
  EXPECT_TRUE(r.contains(1.0, 1.0));
  EXPECT_TRUE(r.contains(0.0, 0.0));   // boundary counts
  EXPECT_TRUE(r.contains(2.0, 2.0));   // boundary counts
  EXPECT_FALSE(r.contains(2.1, 1.0));
  EXPECT_FALSE(r.contains(1.0, -0.1));
}

TEST(Rect, ContainsRect) {
  const Rect outer = Rect::make(0, 0, 10, 10);
  EXPECT_TRUE(outer.contains(Rect::make(1, 1, 2, 2)));
  EXPECT_TRUE(outer.contains(outer));  // itself (boundary)
  EXPECT_FALSE(outer.contains(Rect::make(9, 9, 2, 2)));
}

TEST(Rect, OverlapArea) {
  const Rect a = Rect::make(0, 0, 4, 4);
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect::make(2, 2, 4, 4)), 4.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect::make(4, 0, 4, 4)), 0.0);  // touching
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect::make(5, 5, 1, 1)), 0.0);  // disjoint
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect::make(1, 1, 2, 2)), 4.0);  // inside
}

TEST(Rect, OverlapsInteriorIgnoresTouching) {
  const Rect a = Rect::make(0, 0, 4, 4);
  EXPECT_FALSE(a.overlaps_interior(Rect::make(4, 0, 4, 4)));
  EXPECT_TRUE(a.overlaps_interior(Rect::make(3.9, 0, 4, 4)));
  // Sub-tolerance overlap counts as touching.
  EXPECT_FALSE(a.overlaps_interior(Rect::make(4.0 - 1e-12, 0, 4, 4)));
}

TEST(Rect, United) {
  const Rect u = Rect::make(0, 0, 1, 1).united(Rect::make(3, 4, 1, 1));
  EXPECT_TRUE(approx_equal(u, Rect::make(0, 0, 4, 5)));
}

TEST(Grid, CellGeometry) {
  const GridSpec g(Rect::make(0, 0, 10, 20), 5, 4);
  EXPECT_DOUBLE_EQ(g.dx(), 2.0);
  EXPECT_DOUBLE_EQ(g.dy(), 5.0);
  EXPECT_EQ(g.cell_count(), 20u);
  EXPECT_TRUE(approx_equal(g.cell_rect(1, 2), Rect::make(2, 10, 2, 5)));
  EXPECT_EQ(g.index(4, 3), 19u);
}

TEST(Grid, RasterizeFullDomainSumsToOne) {
  const GridSpec g(Rect::make(0, 0, 7, 3), 13, 9);
  double covered_area = 0.0;
  g.rasterize(g.domain(), [&](std::size_t, std::size_t, double f) {
    covered_area += f * g.cell_area();
  });
  EXPECT_NEAR(covered_area, 21.0, 1e-12);
}

TEST(Grid, RasterizePartialRectExactArea) {
  const GridSpec g(Rect::make(0, 0, 8, 8), 8, 8);
  const Rect r = Rect::make(1.25, 2.5, 3.5, 2.25);  // off-grid alignment
  double area = 0.0;
  std::size_t cells = 0;
  g.rasterize(r, [&](std::size_t, std::size_t, double f) {
    area += f * g.cell_area();
    ++cells;
  });
  EXPECT_NEAR(area, r.area(), 1e-12);
  EXPECT_GT(cells, 0u);
}

TEST(Grid, RasterizeClipsToDomain) {
  const GridSpec g(Rect::make(0, 0, 4, 4), 4, 4);
  const Rect r = Rect::make(3, 3, 5, 5);  // sticks out
  double area = 0.0;
  g.rasterize(r, [&](std::size_t, std::size_t, double f) {
    area += f * g.cell_area();
  });
  EXPECT_NEAR(area, 1.0, 1e-12);  // only the 1x1 corner inside
}

TEST(Grid, RasterizeDisjointRectTouchesNothing) {
  const GridSpec g(Rect::make(0, 0, 4, 4), 4, 4);
  bool touched = false;
  g.rasterize(Rect::make(10, 10, 1, 1),
              [&](std::size_t, std::size_t, double) { touched = true; });
  EXPECT_FALSE(touched);
}

// Property: for random rectangles, rasterized area equals clipped area.
class GridRasterizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(GridRasterizeProperty, AreaIsExact) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> u(-2.0, 12.0);
  std::uniform_real_distribution<double> s(0.01, 8.0);
  const GridSpec g(Rect::make(0, 0, 10, 10), 16, 16);
  for (int i = 0; i < 50; ++i) {
    const Rect r = Rect::make(u(rng), u(rng), s(rng), s(rng));
    double area = 0.0;
    g.rasterize(r, [&](std::size_t, std::size_t, double f) {
      area += f * g.cell_area();
    });
    EXPECT_NEAR(area, r.overlap_area(g.domain()), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridRasterizeProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tacos
