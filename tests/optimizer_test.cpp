#include <gtest/gtest.h>

#include "core/optimizer.hpp"

namespace tacos {
namespace {

EvalConfig fast_config(std::size_t grid = 16) {
  EvalConfig c;
  c.thermal.grid_nx = c.thermal.grid_ny = grid;
  return c;
}

OptimizerOptions fast_options(double alpha, double beta) {
  OptimizerOptions o;
  o.alpha = alpha;
  o.beta = beta;
  o.step_mm = 2.0;  // coarse grids keep the tests quick
  o.starts = 4;
  return o;
}

const BenchmarkProfile& cholesky() { return benchmark_by_name("cholesky"); }
const BenchmarkProfile& lu() { return benchmark_by_name("lu.cont"); }

TEST(Combos, SortedAscendingByObjective) {
  Evaluator eval(fast_config());
  const auto combos =
      enumerate_combos(eval, cholesky(), 1000.0, eval.cost_2d(),
                       fast_options(0.5, 0.5));
  ASSERT_FALSE(combos.empty());
  for (std::size_t i = 1; i < combos.size(); ++i)
    EXPECT_LE(combos[i - 1].objective, combos[i].objective);
}

TEST(Combos, CountMatchesDesignDimensions) {
  Evaluator eval(fast_config());
  const OptimizerOptions opts = fast_options(1, 0);
  const auto combos =
      enumerate_combos(eval, cholesky(), 1000.0, eval.cost_2d(), opts);
  // W in {20, 22, ..., 50} = 16 sizes, x 2 chiplet counts x 5 f x 8 p.
  EXPECT_EQ(combos.size(), 16u * 2u * 5u * 8u);
}

TEST(Combos, ObjectiveMatchesEquation5) {
  Evaluator eval(fast_config());
  const double ips2d = 1234.0;
  const auto combos = enumerate_combos(eval, cholesky(), ips2d,
                                       eval.cost_2d(), fast_options(0.3, 0.7));
  for (const auto& c : combos) {
    EXPECT_NEAR(c.objective,
                0.3 * ips2d / c.ips + 0.7 * c.cost / eval.cost_2d(), 1e-9);
  }
}

TEST(Combos, PureCostObjectiveIsMinimizedByPackedSystem) {
  Evaluator eval(fast_config());
  const auto combos = enumerate_combos(eval, cholesky(), 1000.0,
                                       eval.cost_2d(), fast_options(0, 1));
  // With beta = 1 the best combination must use the minimal interposer.
  EXPECT_NEAR(combos.front().interposer_mm, 20.0, 1e-9);
}

TEST(Placement, FourChipletIsDeterministic) {
  Evaluator eval(fast_config());
  Rng rng(1);
  Combo combo{0, 256, 4, 30.0, 1.0, 40.0, 0.0};
  const OptimizerOptions opts = fast_options(1, 0);
  const auto org = find_placement_greedy(eval, lu(), combo, opts, rng);
  // lu.cont at 1 GHz / 256 cores may or may not fit — but if it does, the
  // spacing must be exactly the Eq. (9)-pinned budget.
  if (org) {
    EXPECT_DOUBLE_EQ(org->spacing.s1, 0.0);
    EXPECT_NEAR(org->spacing.s3, 10.0, 1e-9);
  }
}

TEST(Placement, SixteenChipletRespectsBudget) {
  Evaluator eval(fast_config());
  Rng rng(7);
  Combo combo{4, 96, 16, 34.0, 1.0, 40.0, 0.0};  // weak point: feasible
  OptimizerOptions opts = fast_options(1, 0);
  opts.threshold_c = 95.0;
  const auto org = find_placement_greedy(eval, lu(), combo, opts, rng);
  ASSERT_TRUE(org.has_value());
  // Eq. (9): 2*s1 + s3 equals the spacing budget of a 34 mm interposer.
  EXPECT_NEAR(2 * org->spacing.s1 + org->spacing.s3, 14.0, 1e-9);
  // Eq. (10) holds.
  EXPECT_GE(2 * org->spacing.s1 + org->spacing.s3 - 2 * org->spacing.s2,
            -1e-9);
  // The found organization is genuinely feasible.
  EXPECT_LE(eval.thermal_eval(*org, lu()).peak_c, opts.threshold_c);
}

TEST(Optimize, GreedyFindsFeasibleOrganization) {
  Evaluator eval(fast_config(24));
  const OptResult res = optimize_greedy(eval, lu(), fast_options(1, 0));
  ASSERT_TRUE(res.found);
  EXPECT_LE(res.peak_c, 85.0);
  EXPECT_GT(res.ips, 0.0);
  EXPECT_GT(res.thermal_solves, 0u);
}

TEST(Optimize, PureCostPicksMinimalInterposer) {
  Evaluator eval(fast_config(24));
  const OptResult res = optimize_greedy(eval, lu(), fast_options(0, 1));
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(interposer_edge_of(res.org), 20.0, 1e-9);
  // Minimal interposer = the paper's ~36% cost saving.
  EXPECT_NEAR(res.cost / eval.cost_2d(), 0.64, 0.01);
}

TEST(Optimize, GreedyMatchesExhaustiveOnCoarseSpace) {
  Evaluator eval_g(fast_config(16));
  Evaluator eval_e(fast_config(16));
  OptimizerOptions opts = fast_options(1, 0);
  opts.step_mm = 4.0;
  opts.prune_margin_c = 0.0;
  const OptResult g = optimize_greedy(eval_g, cholesky(), opts);
  const OptResult e = optimize_exhaustive(eval_e, cholesky(), opts);
  ASSERT_EQ(g.found, e.found);
  if (g.found) EXPECT_NEAR(g.objective, e.objective, 1e-12);
}

TEST(Optimize, DeterministicAcrossRuns) {
  const OptimizerOptions opts = fast_options(1, 0);
  Evaluator e1(fast_config(16));
  Evaluator e2(fast_config(16));
  const OptResult a = optimize_greedy(e1, cholesky(), opts);
  const OptResult b = optimize_greedy(e2, cholesky(), opts);
  ASSERT_EQ(a.found, b.found);
  EXPECT_EQ(a.org, b.org);
}

TEST(Optimize, TighterThresholdNeverImprovesPerformance) {
  // With alpha = 1, beta = 0 the optimizer maximizes IPS; relaxing the
  // temperature threshold can only enlarge the feasible set.
  Evaluator eval(fast_config(16));
  OptimizerOptions hot = fast_options(1, 0);
  hot.threshold_c = 105.0;
  OptimizerOptions cold = fast_options(1, 0);
  cold.threshold_c = 75.0;
  const OptResult rh = optimize_greedy(eval, cholesky(), hot);
  const OptResult rc = optimize_greedy(eval, cholesky(), cold);
  ASSERT_TRUE(rh.found);
  if (rc.found) EXPECT_GE(rh.ips, rc.ips - 1e-9);
}

TEST(Optimize, MaxIpsGrowsWithInterposer) {
  Evaluator eval(fast_config(24));
  OptimizerOptions opts = fast_options(1, 0);
  Rng rng(3);
  const MaxIpsResult small =
      max_ips_at_interposer(eval, cholesky(), 16, 22.0, opts, rng);
  const MaxIpsResult large =
      max_ips_at_interposer(eval, cholesky(), 16, 42.0, opts, rng);
  ASSERT_TRUE(small.found);
  ASSERT_TRUE(large.found);
  EXPECT_GE(large.ips, small.ips);
  EXPECT_GT(large.ips, 1.2 * small.ips);  // spacing reclaims dark silicon
}

TEST(DesignSpace, SizeFormula) {
  Evaluator eval(fast_config());
  OptimizerOptions opts = fast_options(1, 0);
  opts.step_mm = 10.0;
  // W in {20, 30, 40, 50}; n=4 contributes 1 placement each; n=16 budgets
  // {0,10,20,30} -> grid_max {0,0,1,1} -> {1,1,4,4} placements.
  const std::size_t expected = (4u + 10u) * 5u * 8u;
  EXPECT_EQ(design_space_size(eval, opts), expected);
}

TEST(DesignSpace, PaperScaleGranularity) {
  // At the paper's 0.5 mm granularity the per-benchmark space has the
  // same order of magnitude as the paper's 680k organizations.
  Evaluator eval(fast_config());
  OptimizerOptions opts = fast_options(1, 0);
  opts.step_mm = 0.5;
  const std::size_t space = design_space_size(eval, opts);
  EXPECT_GT(space, 300000u);
  EXPECT_LT(space, 5000000u);
}

}  // namespace
}  // namespace tacos
