#include <gtest/gtest.h>

#include "power/power_model.hpp"

namespace tacos {
namespace {

const BenchmarkProfile& shock() { return benchmark_by_name("shock"); }

TEST(PowerModel, NominalPowerSplitsSeventyThirty) {
  // At the nominal level and reference temperature the paper's 70/30
  // dynamic/leakage split must hold exactly.
  const PowerModelParams p;
  const double q = shock().power_256_w / 256.0;
  EXPECT_NEAR(core_dynamic_power_w(shock(), kDvfsLevels[0], p), 0.7 * q,
              1e-12);
  EXPECT_NEAR(core_leakage_power_w(shock(), kDvfsLevels[0], 60.0, p), 0.3 * q,
              1e-12);
  EXPECT_NEAR(chip_power_w(shock(), kDvfsLevels[0], 60.0, 256, p),
              shock().power_256_w, 1e-9);
}

TEST(PowerModel, DynamicPowerScalesAsV2F) {
  const DvfsLevel& lo = kDvfsLevels[2];  // 533 MHz / 0.71 V
  const double ratio = core_dynamic_power_w(shock(), lo) /
                       core_dynamic_power_w(shock(), kDvfsLevels[0]);
  const double expect =
      (0.71 / 0.90) * (0.71 / 0.90) * (533.0 / 1000.0);
  EXPECT_NEAR(ratio, expect, 1e-12);
}

TEST(PowerModel, LeakageGrowsLinearlyWithTemperature) {
  const PowerModelParams p;
  const double l60 = core_leakage_power_w(shock(), kDvfsLevels[0], 60.0, p);
  const double l85 = core_leakage_power_w(shock(), kDvfsLevels[0], 85.0, p);
  const double l110 = core_leakage_power_w(shock(), kDvfsLevels[0], 110.0, p);
  EXPECT_NEAR(l85 / l60, 1.0 + p.lambda_per_k * 25.0, 1e-12);
  // Linearity: equal increments in T give equal increments in leakage.
  EXPECT_NEAR(l110 - l85, l85 - l60, 1e-12);
}

TEST(PowerModel, LeakageClampsAtModelBounds) {
  const PowerModelParams p;
  // Above 150 °C the linear extrapolation saturates (runaway guard).
  EXPECT_NEAR(core_leakage_power_w(shock(), kDvfsLevels[0], 200.0, p),
              core_leakage_power_w(shock(), kDvfsLevels[0], 150.0, p), 1e-12);
  // Never negative even at absurdly low temperature.
  EXPECT_GE(core_leakage_power_w(shock(), kDvfsLevels[0], -500.0, p), 0.0);
}

TEST(PowerModel, LeakageScalesWithVoltage) {
  const double nominal =
      core_leakage_power_w(shock(), kDvfsLevels[0], 60.0);
  const double low = core_leakage_power_w(shock(), kDvfsLevels[3], 60.0);
  EXPECT_NEAR(low / nominal, 0.63 / 0.90, 1e-12);
}

TEST(PowerModel, BuildPowerMapSumsCorrectly) {
  const ChipletLayout l = make_uniform_layout(4, 2.0);
  const std::vector<int> active = active_tiles(AllocPolicy::kMinTemp, 128);
  const PowerModelParams p;
  const PowerMap map =
      build_power_map(l, shock(), kDvfsLevels[0], active, std::nullopt, p);
  const double expected_cores =
      chip_power_w(shock(), kDvfsLevels[0], p.t_ref_c, 128, p);
  const double net = mesh_power_w(l, shock(), kDvfsLevels[0], p);
  EXPECT_NEAR(map.total(), expected_cores + net, 1e-9);
  // One source per active core plus one per chiplet for the network.
  EXPECT_EQ(map.sources.size(), 128u + 16u);
}

TEST(PowerModel, PerTileTemperaturesDriveLeakage) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  const std::vector<int> active = active_tiles(AllocPolicy::kRowMajor, 64);
  std::vector<double> hot(256, 95.0), cool(256, 55.0);
  const double p_hot =
      build_power_map(l, shock(), kDvfsLevels[0], active, hot).total();
  const double p_cool =
      build_power_map(l, shock(), kDvfsLevels[0], active, cool).total();
  EXPECT_GT(p_hot, p_cool);
}

TEST(PowerModel, IdleCoresConsumeNothing) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  const PowerModelParams p;
  const PowerMap map32 = build_power_map(l, shock(), kDvfsLevels[0],
                                         active_tiles(AllocPolicy::kMinTemp, 32),
                                         std::nullopt, p);
  const PowerMap map256 =
      build_power_map(l, shock(), kDvfsLevels[0],
                      active_tiles(AllocPolicy::kMinTemp, 256), std::nullopt,
                      p);
  const double net = mesh_power_w(l, shock(), kDvfsLevels[0], p);
  EXPECT_NEAR((map256.total() - net) / (map32.total() - net), 8.0, 1e-9);
}

TEST(PowerModel, InvalidInputsThrow) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  EXPECT_THROW(chip_power_w(shock(), kDvfsLevels[0], 60.0, 300), Error);
  std::vector<double> short_temps(10, 60.0);
  EXPECT_THROW(build_power_map(l, shock(), kDvfsLevels[0], {0, 1},
                               short_temps),
               Error);
  EXPECT_THROW(build_power_map(l, shock(), kDvfsLevels[0], {999},
                               std::nullopt),
               Error);
}

TEST(PowerModel, MemoryControllersAddEdgeSources) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  PowerModelParams p;
  p.mc_power_total_w = 8.0;
  const auto active = active_tiles(AllocPolicy::kMinTemp, 64);
  const PowerMap with_mc =
      build_power_map(l, shock(), kDvfsLevels[0], active, std::nullopt, p);
  PowerModelParams p0;
  const PowerMap without =
      build_power_map(l, shock(), kDvfsLevels[0], active, std::nullopt, p0);
  EXPECT_NEAR(with_mc.total() - without.total(), 8.0, 1e-9);
  EXPECT_EQ(with_mc.sources.size(), without.sources.size() + 8);
}

TEST(PowerModel, MemoryControllerTilesSitOnOppositeEdges) {
  const auto mcs = memory_controller_tiles();
  ASSERT_EQ(mcs.size(), 8u);
  int left = 0, right = 0;
  for (int id : mcs) {
    const int tx = id % 16;
    if (tx == 0) ++left;
    if (tx == 15) ++right;
  }
  EXPECT_EQ(left, 4);
  EXPECT_EQ(right, 4);
}

// Property: for every benchmark and DVFS level, chip power decreases
// monotonically with the level index (lower f and V -> less power).
class PowerMonotoneProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PowerMonotoneProperty, PowerDropsWithDvfsLevel) {
  const BenchmarkProfile& b = benchmarks()[GetParam()];
  double prev = 1e300;
  for (std::size_t f = 0; f < kDvfsLevelCount; ++f) {
    const double p = chip_power_w(b, kDvfsLevels[f], 60.0, 256);
    EXPECT_LT(p, prev) << b.name << " level " << f;
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PowerMonotoneProperty,
                         ::testing::Range<std::size_t>(0, kBenchmarkCount));

}  // namespace
}  // namespace tacos
