#include <gtest/gtest.h>

#include "core/multiapp.hpp"
#include "core/reliability.hpp"

namespace tacos {
namespace {

EvalConfig fast_config() {
  EvalConfig c;
  c.thermal.grid_nx = c.thermal.grid_ny = 16;
  return c;
}

OptimizerOptions fast_options(double alpha, double beta) {
  OptimizerOptions o;
  o.alpha = alpha;
  o.beta = beta;
  o.step_mm = 4.0;
  o.starts = 2;
  return o;
}

TEST(MultiApp, FindsAPlacementServingAllApps) {
  Evaluator eval(fast_config());
  const std::vector<AppWeight> mix = {{"canneal", 0.5}, {"lu.cont", 0.5}};
  const MultiAppResult r = optimize_multiapp(
      eval, mix, MultiAppStrategy::kWeighted, fast_options(1, 0));
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.apps.size(), 2u);
  for (const auto& a : r.apps) {
    EXPECT_GT(a.ips, 0.0);
    EXPECT_GT(a.ips_vs_2d, 0.5);
  }
}

TEST(MultiApp, PureCostPrefersSmallInterposer) {
  Evaluator eval(fast_config());
  const std::vector<AppWeight> mix = {{"lu.cont", 1.0}};
  const MultiAppResult r = optimize_multiapp(
      eval, mix, MultiAppStrategy::kWeighted, fast_options(0, 1));
  ASSERT_TRUE(r.found);
  EXPECT_NEAR(r.interposer_mm, 20.0, 1e-9);
  EXPECT_NEAR(r.cost_norm, 0.64, 0.01);
}

TEST(MultiApp, WorstCaseObjectiveIsAtLeastWeighted) {
  // max_i(term_i) >= sum_i w_i term_i for any weights — the worst-case
  // design can only be judged worse or equal under its own objective.
  Evaluator eval(fast_config());
  const std::vector<AppWeight> mix = {{"cholesky", 0.7}, {"canneal", 0.3}};
  const MultiAppResult ww = optimize_multiapp(
      eval, mix, MultiAppStrategy::kWeighted, fast_options(1, 0));
  const MultiAppResult wc = optimize_multiapp(
      eval, mix, MultiAppStrategy::kWorstCase, fast_options(1, 0));
  ASSERT_TRUE(ww.found);
  ASSERT_TRUE(wc.found);
  EXPECT_GE(wc.objective, ww.objective - 1e-9);
}

TEST(MultiApp, AverageIgnoresWeights) {
  Evaluator eval(fast_config());
  const std::vector<AppWeight> skewed = {{"cholesky", 0.99},
                                         {"lu.cont", 0.01}};
  const std::vector<AppWeight> flat = {{"cholesky", 0.5}, {"lu.cont", 0.5}};
  const MultiAppResult a = optimize_multiapp(
      eval, skewed, MultiAppStrategy::kAverage, fast_options(1, 0));
  const MultiAppResult b = optimize_multiapp(
      eval, flat, MultiAppStrategy::kAverage, fast_options(1, 0));
  ASSERT_EQ(a.found, b.found);
  if (a.found) EXPECT_NEAR(a.objective, b.objective, 1e-12);
}

TEST(MultiApp, EmptyOrInvalidMixRejected) {
  Evaluator eval(fast_config());
  EXPECT_THROW(optimize_multiapp(eval, {}, MultiAppStrategy::kWeighted,
                                 fast_options(1, 0)),
               Error);
  EXPECT_THROW(optimize_multiapp(eval, {{"cholesky", -1.0}},
                                 MultiAppStrategy::kWeighted,
                                 fast_options(1, 0)),
               Error);
  EXPECT_THROW(optimize_multiapp(eval, {{"nonexistent", 1.0}},
                                 MultiAppStrategy::kWeighted,
                                 fast_options(1, 0)),
               Error);
}

TEST(Reliability, ColderSiliconLivesLonger) {
  EXPECT_GT(mttf_factor(65.0, 85.0), 1.0);
  EXPECT_LT(mttf_factor(105.0, 85.0), 1.0);
  EXPECT_DOUBLE_EQ(mttf_factor(85.0, 85.0), 1.0);
}

TEST(Reliability, TenDegreeRuleOfThumb) {
  // Around 85 °C with Ea = 0.7 eV, +10 °C costs roughly half the life
  // (the classic reliability rule of thumb).
  const double factor = mttf_per_10c(85.0);
  EXPECT_GT(factor, 1.5);
  EXPECT_LT(factor, 2.3);
}

TEST(Reliability, ArrheniusComposition) {
  // AF(a→c) == AF(a→b) * AF(b→c).
  const double ab = mttf_factor(65.0, 75.0);
  const double bc = mttf_factor(75.0, 85.0);
  const double ac = mttf_factor(65.0, 85.0);
  EXPECT_NEAR(ac, ab * bc, 1e-12);
}

TEST(Reliability, InvalidInputsThrow) {
  EXPECT_THROW(mttf_factor(65.0, 85.0, 0.0), Error);
  EXPECT_THROW(mttf_factor(-300.0, 85.0), Error);
}

}  // namespace
}  // namespace tacos
