#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "common/thread_pool.hpp"

namespace tacos {
namespace {

TEST(ThreadPool, SingleLaneSpawnsNoThreadsAndRuns) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hit(100, 0);
  pool.parallel_for(100, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hit[i] += 1;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hit(1000);
  pool.parallel_for(1000, 13, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      hit[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  const auto boundaries_at = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(10000, 256, [&](std::size_t lo, std::size_t hi) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.emplace(lo, hi);
    });
    return chunks;
  };
  const auto c1 = boundaries_at(1);
  EXPECT_EQ(c1, boundaries_at(2));
  EXPECT_EQ(c1, boundaries_at(8));
  EXPECT_EQ(c1.size(), (10000u + 255u) / 256u);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool(8);
  std::vector<int> items(500);
  for (int i = 0; i < 500; ++i) items[static_cast<std::size_t>(i)] = i;
  const std::vector<int> out =
      pool.parallel_map(items, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), 500u);
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [&](std::size_t lo, std::size_t) {
                          if (lo == 57) throw std::runtime_error("chunk 57");
                        }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A parallel_for issued from inside a worker task must not deadlock
  // (the caller lane drains its own chunks).  This is exactly the shape
  // of an optimizer task invoking the parallel solver.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hit(64 * 64);
  pool.parallel_for(64, 1, [&](std::size_t olo, std::size_t ohi) {
    for (std::size_t o = olo; o < ohi; ++o)
      pool.parallel_for(64, 8, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          hit[o * 64 + i].fetch_add(1, std::memory_order_relaxed);
      });
  });
  for (const auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolResizing) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().thread_count(), 1u);
  ThreadPool::set_global_threads(ThreadPool::default_thread_count());
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace tacos
