#include <gtest/gtest.h>

#include "core/annealing.hpp"

namespace tacos {
namespace {

EvalConfig fast_config() {
  EvalConfig c;
  c.thermal.grid_nx = c.thermal.grid_ny = 16;
  return c;
}

AnnealOptions fast_options() {
  AnnealOptions o;
  o.step_mm = 2.0;
  o.iterations = 80;
  return o;
}

TEST(Annealing, FindsAFeasibleOrganization) {
  Evaluator eval(fast_config());
  const OptResult r =
      optimize_annealing(eval, benchmark_by_name("lu.cont"), fast_options());
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.peak_c, 85.0);
  EXPECT_GT(r.ips, 0.0);
  EXPECT_GT(r.thermal_solves, 0u);
}

TEST(Annealing, ResultRespectsManifoldConstraints) {
  Evaluator eval(fast_config());
  const OptResult r =
      optimize_annealing(eval, benchmark_by_name("canneal"), fast_options());
  ASSERT_TRUE(r.found);
  const Spacing& s = r.org.spacing;
  EXPECT_GE(s.s1, 0.0);
  EXPECT_GE(s.s2, 0.0);
  EXPECT_GE(s.s3, 0.0);
  EXPECT_GE(2 * s.s1 + s.s3 - 2 * s.s2, -1e-9);  // Eq. (10)
  EXPECT_LE(interposer_edge_of(r.org), 50.0 + 1e-9);  // Eq. (7)
}

TEST(Annealing, DeterministicForFixedSeed) {
  Evaluator e1(fast_config());
  Evaluator e2(fast_config());
  const OptResult a =
      optimize_annealing(e1, benchmark_by_name("hpccg"), fast_options());
  const OptResult b =
      optimize_annealing(e2, benchmark_by_name("hpccg"), fast_options());
  ASSERT_EQ(a.found, b.found);
  if (a.found) {
    EXPECT_EQ(a.org, b.org);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
  }
}

TEST(Annealing, NeverBeatsSortedGreedyOptimum) {
  // The greedy provably returns the global optimum of the discretized
  // space (ascending-objective scan), so annealing on the same grid can
  // at best tie.
  Evaluator eg(fast_config());
  Evaluator ea(fast_config());
  OptimizerOptions go;
  go.alpha = 1.0;
  go.beta = 0.0;
  go.step_mm = 2.0;
  go.starts = 6;
  const OptResult g = optimize_greedy(eg, benchmark_by_name("cholesky"), go);
  AnnealOptions ao = fast_options();
  ao.iterations = 150;
  const OptResult a =
      optimize_annealing(ea, benchmark_by_name("cholesky"), ao);
  ASSERT_TRUE(g.found);
  if (a.found) EXPECT_GE(a.objective, g.objective - 1e-9);
}

TEST(Annealing, RejectsBadSchedule) {
  Evaluator eval(fast_config());
  AnnealOptions o = fast_options();
  o.iterations = 0;
  EXPECT_THROW(optimize_annealing(eval, benchmark_by_name("hpccg"), o),
               Error);
  o = fast_options();
  o.t_end = 0.0;
  EXPECT_THROW(optimize_annealing(eval, benchmark_by_name("hpccg"), o),
               Error);
}

}  // namespace
}  // namespace tacos
