#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/experiments.hpp"

namespace tacos {
namespace {

// Structural tests of the experiment runners at tiny grid resolutions —
// these guard the bench binaries' outputs (row counts, required series,
// headline invariants) without paying full-resolution runtimes.

ExperimentOptions tiny() {
  ExperimentOptions o;
  o.grid = 12;
  o.w_step_mm = 4.0;
  o.opt_step_mm = 4.0;
  o.starts = 3;
  return o;
}

/// Parse a CSV table into rows of strings (header skipped).
std::vector<std::vector<std::string>> rows_of(const TextTable& t) {
  std::istringstream is(t.to_csv());
  std::string line;
  std::vector<std::vector<std::string>> out;
  bool header = true;
  while (std::getline(is, line)) {
    if (header) {
      header = false;
      continue;
    }
    std::vector<std::string> cells;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    out.push_back(cells);
  }
  return out;
}

TEST(Experiments, Fig3aCoversAllSeries) {
  const auto rows = rows_of(fig3a_cost_table(5.0));
  // 3 defect densities x 2 chiplet counts x 7 interposer sizes.
  EXPECT_EQ(rows.size(), 3u * 2u * 7u);
  // Normalized cost at the minimum interposer is < 1 for every D0.
  for (const auto& r : rows)
    if (r[0] == "20.0") EXPECT_LT(std::stod(r[4]), 1.0);
}

TEST(Experiments, CostClaimsHasFiveRows) {
  EXPECT_EQ(cost_claims_table().row_count(), 5u);
}

TEST(Experiments, Fig3bShowsTheFourTrends) {
  ExperimentOptions o = tiny();
  const auto rows = rows_of(fig3b_thermal_table(o));
  // series, interposer, density, peak. Index by (series, W, pd).
  std::map<std::tuple<std::string, double, double>, double> peak;
  for (const auto& r : rows)
    peak[{r[0], std::stod(r[1]), std::stod(r[2])}] = std::stod(r[3]);
  // Density ↑ -> temperature ↑.
  EXPECT_LT(peak.at({"2x2", 30.0, 0.5}), peak.at({"2x2", 30.0, 2.0}));
  // Interposer ↑ -> temperature ↓.
  EXPECT_GT(peak.at({"4x4", 20.0, 1.0}), peak.at({"4x4", 46.0, 1.0}));
  // Chiplet count ↑ -> temperature ↓ at fixed size/power.
  EXPECT_GT(peak.at({"2x2", 36.0, 1.5}), peak.at({"6x6", 36.0, 1.5}));
  // The grown 2D chip tracks the 2.5D system within a few degrees.
  EXPECT_NEAR(peak.at({"new-2D", 40.0, 1.0}), peak.at({"8x8", 40.0, 1.0}),
              6.0);
}

TEST(Experiments, NetworkPowerMatchesPaperNumbers) {
  const auto rows = rows_of(network_power_table(tiny()));
  ASSERT_EQ(rows.size(), 5u);
  // Single chip ~3.9 W peak; 16c @ 10mm <= ~8.4 W.
  EXPECT_NEAR(std::stod(rows[0][6]), 3.9, 0.2);
  EXPECT_NEAR(std::stod(rows[4][6]), 8.4, 0.5);
}

TEST(Experiments, IsoPerformanceSaves36Percent) {
  ExperimentOptions o = tiny();
  const auto rows = rows_of(iso_performance_cost_table(o));
  ASSERT_EQ(rows.size(), kBenchmarkCount);
  for (const auto& r : rows) {
    ASSERT_EQ(r.size(), 6u);
    // Every benchmark keeps its 2D performance at the minimal interposer.
    EXPECT_NEAR(std::stod(r[5]), 36.4, 0.5) << r[0];
  }
}

}  // namespace
}  // namespace tacos
