#include <gtest/gtest.h>

#include "materials/material.hpp"
#include "materials/stack.hpp"

namespace tacos {
namespace {

TEST(Material, IsoRejectsNonPositiveConductivity) {
  EXPECT_THROW(Material::iso("bad", 0.0), Error);
  EXPECT_THROW(Material::iso("bad", -1.0), Error);
}

TEST(Material, PillarAreaFraction) {
  // Microbumps: 25um diameter on 50um pitch -> pi/16 ≈ 0.19635.
  EXPECT_NEAR(pillar_area_fraction(0.025, 0.050), 0.19635, 1e-4);
  // TSVs: 10um on 50um pitch -> pi/100.
  EXPECT_NEAR(pillar_area_fraction(0.010, 0.050), 0.031416, 1e-5);
}

TEST(Material, PillarAreaFractionRejectsBadGeometry) {
  EXPECT_THROW(pillar_area_fraction(0.06, 0.05), Error);  // d > pitch
  EXPECT_THROW(pillar_area_fraction(0.0, 0.05), Error);
}

TEST(Material, CompositeBounds) {
  const Material cu = materials::copper();
  const Material ep = materials::epoxy();
  const Material mix = pillar_composite("mix", cu, ep, 0.2);
  // Vertical (parallel) mix is the arithmetic mean — dominated by copper.
  EXPECT_NEAR(mix.k_vertical, 0.2 * 385.0 + 0.8 * 0.9, 1e-9);
  // Lateral (series) mix is dominated by the epoxy matrix.
  EXPECT_LT(mix.k_lateral, 2.0);
  EXPECT_GT(mix.k_lateral, ep.k_lateral);
  // Fraction 0 and 1 recover the pure materials.
  EXPECT_NEAR(pillar_composite("m", cu, ep, 0.0).k_vertical, ep.k_vertical,
              1e-12);
  EXPECT_NEAR(pillar_composite("m", cu, ep, 1.0).k_vertical, cu.k_vertical,
              1e-12);
}

TEST(Stack, Table1Structure25D) {
  const LayerStack s = make_25d_stack();
  ASSERT_EQ(s.layers.size(), 6u);
  EXPECT_EQ(s.layers[0].name, "substrate");
  EXPECT_EQ(s.layers[1].name, "C4");
  EXPECT_EQ(s.layers[2].name, "interposer");
  EXPECT_EQ(s.layers[3].name, "microbump");
  EXPECT_EQ(s.layers[4].name, "chiplet");
  EXPECT_EQ(s.layers[5].name, "TIM");
  // Table I thicknesses.
  EXPECT_NEAR(s.layers[0].thickness_mm, 0.200, 1e-12);
  EXPECT_NEAR(s.layers[1].thickness_mm, 0.070, 1e-12);
  EXPECT_NEAR(s.layers[2].thickness_mm, 0.110, 1e-12);
  EXPECT_NEAR(s.layers[3].thickness_mm, 0.010, 1e-12);
  EXPECT_NEAR(s.layers[4].thickness_mm, 0.150, 1e-12);
  EXPECT_NEAR(s.layers[5].thickness_mm, 0.020, 1e-12);
  EXPECT_EQ(s.source_layer(), 4u);
  EXPECT_TRUE(s.layers[4].heat_source);
  // Chiplet and microbump layers only exist under chiplets.
  EXPECT_EQ(s.layers[4].extent, LayerExtent::kChiplets);
  EXPECT_EQ(s.layers[3].extent, LayerExtent::kChiplets);
  // Gaps between chiplets are filled with epoxy (paper §III-A).
  EXPECT_EQ(s.layers[4].fill.name, "epoxy");
}

TEST(Stack, Baseline2DStructure) {
  const LayerStack s = make_2d_stack();
  ASSERT_EQ(s.layers.size(), 4u);
  EXPECT_EQ(s.layers[2].name, "chip");
  EXPECT_EQ(s.source_layer(), 2u);
  // No interposer / microbump layers in the 2D baseline.
  for (const auto& l : s.layers) {
    EXPECT_NE(l.name, "interposer");
    EXPECT_NE(l.name, "microbump");
  }
}

TEST(Stack, BumpGeometriesMatchTable1) {
  EXPECT_NEAR(microbump_geometry().diameter_mm, 0.025, 1e-12);
  EXPECT_NEAR(microbump_geometry().pitch_mm, 0.050, 1e-12);
  EXPECT_NEAR(tsv_geometry().diameter_mm, 0.010, 1e-12);
  EXPECT_NEAR(tsv_geometry().height_mm, 0.100, 1e-12);
  EXPECT_NEAR(c4_geometry().diameter_mm, 0.250, 1e-12);
  EXPECT_NEAR(c4_geometry().pitch_mm, 0.600, 1e-12);
}

TEST(Stack, TotalThickness) {
  EXPECT_NEAR(make_25d_stack().total_thickness(), 0.560, 1e-9);
  EXPECT_NEAR(make_2d_stack().total_thickness(), 0.440, 1e-9);
}

TEST(Stack, InterposerIsMostlySilicon) {
  const LayerStack s = make_25d_stack();
  const Material& interposer = s.layers[2].occupied;
  // TSV fraction is ~3%, so vertical conductivity is close to silicon's
  // but slightly raised by the copper vias.
  EXPECT_GT(interposer.k_vertical, 110.0);
  EXPECT_LT(interposer.k_vertical, 130.0);
}

}  // namespace
}  // namespace tacos
