#include <gtest/gtest.h>

#include <random>

#include "floorplan/layout.hpp"
#include "materials/stack.hpp"
#include "thermal/grid_model.hpp"

namespace tacos {
namespace {

ThermalConfig coarse_config(std::size_t n = 24) {
  ThermalConfig c;
  c.grid_nx = c.grid_ny = n;
  return c;
}

/// Uniform power over the whole chip of the 2D baseline.
PowerMap uniform_chip_power(const ChipletLayout& l, double watts) {
  PowerMap p;
  for (const auto& c : l.chiplets()) p.add(c.rect, watts / l.chiplet_count());
  return p;
}

TEST(ThermalModel, EnergyBalance2D) {
  const ChipletLayout chip = make_single_chip_layout();
  ThermalModel model(chip, make_2d_stack(), coarse_config());
  const PowerMap p = uniform_chip_power(chip, 150.0);
  const ThermalResult r = model.solve(p);
  EXPECT_TRUE(r.solve_info.converged);
  EXPECT_LT(model.energy_balance_error(p), 1e-5);
  EXPECT_GT(r.peak_c, 45.0);  // hotter than ambient
}

TEST(ThermalModel, EnergyBalance25D) {
  const ChipletLayout l = make_uniform_layout(4, 2.0);
  ThermalModel model(l, make_25d_stack(), coarse_config());
  const PowerMap p = uniform_chip_power(l, 200.0);
  const ThermalResult r = model.solve(p);
  EXPECT_TRUE(r.solve_info.converged);
  EXPECT_LT(model.energy_balance_error(p), 1e-5);
  EXPECT_GT(r.peak_c, 45.0);
}

TEST(ThermalModel, ZeroPowerGivesAmbientEverywhere) {
  const ChipletLayout chip = make_single_chip_layout();
  ThermalModel model(chip, make_2d_stack(), coarse_config(16));
  const ThermalResult r = model.solve(PowerMap{});
  EXPECT_NEAR(r.peak_c, 45.0, 1e-6);
  EXPECT_NEAR(r.peak_anywhere_c, 45.0, 1e-6);
}

TEST(ThermalModel, TemperatureScalesLinearlyWithPower) {
  // Steady-state conduction is linear: T(2P) - Tamb == 2 (T(P) - Tamb).
  const ChipletLayout chip = make_single_chip_layout();
  ThermalModel model(chip, make_2d_stack(), coarse_config(16));
  const double t1 =
      model.solve(uniform_chip_power(chip, 100.0)).peak_c - 45.0;
  const double t2 =
      model.solve(uniform_chip_power(chip, 200.0)).peak_c - 45.0;
  EXPECT_NEAR(t2, 2.0 * t1, 1e-3 * t2);
}

TEST(ThermalModel, MorePowerIsHotter) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  ThermalModel model(l, make_25d_stack(), coarse_config(16));
  const double t_low = model.solve(uniform_chip_power(l, 100.0)).peak_c;
  const double t_high = model.solve(uniform_chip_power(l, 260.0)).peak_c;
  EXPECT_GT(t_high, t_low + 1.0);
}

TEST(ThermalModel, SpacingReducesPeakTemperature) {
  // The paper's central observation (Fig. 5): larger chiplet spacing →
  // lower peak temperature at equal power.
  double prev = 1e9;
  for (double g : {0.0, 2.0, 6.0, 10.0}) {
    const ChipletLayout l = make_uniform_layout(2, g);
    ThermalModel model(l, make_25d_stack(), coarse_config());
    const double t = model.solve(uniform_chip_power(l, 250.0)).peak_c;
    EXPECT_LT(t, prev) << "spacing " << g << "mm did not reduce temperature";
    prev = t;
  }
}

TEST(ThermalModel, MoreChipletsRunCoolerAtSameInterposerSize) {
  // Fig. 3(b): at fixed interposer size and power, higher chiplet count
  // (finer power subdivision) lowers the peak temperature.
  const double interposer = 36.0;
  const double watts = 300.0;
  double prev = 1e9;
  for (int r : {2, 4, 8}) {
    const ChipletLayout l = make_uniform_layout_for_interposer(r, interposer);
    ThermalModel model(l, make_25d_stack(), coarse_config());
    const double t = model.solve(uniform_chip_power(l, watts)).peak_c;
    EXPECT_LT(t, prev) << r << "x" << r << " should be cooler";
    prev = t;
  }
}

TEST(ThermalModel, HotspotIsUnderTheActiveChiplet) {
  // Power only the south-west chiplet; the peak must sit inside it.
  const ChipletLayout l = make_uniform_layout(2, 4.0);
  ThermalModel model(l, make_25d_stack(), coarse_config());
  PowerMap p;
  p.add(l.chiplets()[0].rect, 120.0);
  const ThermalResult r = model.solve(p);
  const auto chiplet_t = model.chiplet_temperatures();
  ASSERT_EQ(chiplet_t.size(), 4u);
  // Chiplet 0 is the hottest; the diagonal one (index 3) the coolest.
  EXPECT_GT(chiplet_t[0], chiplet_t[1]);
  EXPECT_GT(chiplet_t[0], chiplet_t[2]);
  EXPECT_GT(chiplet_t[1], chiplet_t[3]);
  EXPECT_NEAR(r.peak_c, chiplet_t[0], (r.peak_c - 45.0));  // same region
}

TEST(ThermalModel, SymmetricLayoutGivesSymmetricField) {
  const ChipletLayout l = make_uniform_layout(2, 3.0);
  ThermalModel model(l, make_25d_stack(), coarse_config(16));
  model.solve(uniform_chip_power(l, 200.0));
  const auto t = model.chiplet_temperatures();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_NEAR(t[0], t[1], 0.05);
  EXPECT_NEAR(t[0], t[2], 0.05);
  EXPECT_NEAR(t[0], t[3], 0.05);
}

TEST(ThermalModel, TileTemperaturesAvailableForTiledLayouts) {
  const ChipletLayout l = make_uniform_layout(4, 1.0);
  ThermalModel model(l, make_25d_stack(), coarse_config());
  model.solve(uniform_chip_power(l, 180.0));
  const auto tiles = model.tile_temperatures();
  ASSERT_EQ(tiles.size(), 256u);
  for (double t : tiles) {
    EXPECT_GT(t, 45.0);
    EXPECT_LT(t, 200.0);
  }
  // Centre tiles are hotter than corner tiles for uniform power.
  const double corner = tiles[0];
  const double center = tiles[8 * 16 + 8];
  EXPECT_GT(center, corner);
}

TEST(ThermalModel, QueriesBeforeSolveThrow) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  ThermalModel model(l, make_25d_stack(), coarse_config(8));
  EXPECT_THROW(model.tile_temperatures(), Error);
  EXPECT_THROW(model.chiplet_temperatures(), Error);
  EXPECT_THROW(model.layer_field(0), Error);
}

TEST(ThermalModel, SourceOutsideDomainThrows) {
  const ChipletLayout l = make_uniform_layout(2, 1.0);
  ThermalModel model(l, make_25d_stack(), coarse_config(8));
  PowerMap p;
  p.add(Rect::make(100.0, 100.0, 5.0, 5.0), 50.0);
  EXPECT_THROW(model.solve(p), Error);
}

TEST(ThermalModel, LargerSinkRunsCooler) {
  // Same layout and power, bigger sink scale → lower peak (constant h).
  const ChipletLayout l = make_uniform_layout(2, 2.0);
  ThermalConfig small = coarse_config(16);
  ThermalConfig big = coarse_config(16);
  big.package.sink_scale = 3.0;
  const double t_small =
      ThermalModel(l, make_25d_stack(), small)
          .solve(uniform_chip_power(l, 200.0))
          .peak_c;
  const double t_big = ThermalModel(l, make_25d_stack(), big)
                           .solve(uniform_chip_power(l, 200.0))
                           .peak_c;
  EXPECT_LT(t_big, t_small);
}

TEST(ThermalModel, GridRefinementConverges) {
  // Peak temperature should change little between 24- and 32-cell grids.
  const ChipletLayout l = make_uniform_layout(2, 4.0);
  const PowerMap p = uniform_chip_power(l, 220.0);
  const double t24 =
      ThermalModel(l, make_25d_stack(), coarse_config(24)).solve(p).peak_c;
  const double t32 =
      ThermalModel(l, make_25d_stack(), coarse_config(32)).solve(p).peak_c;
  EXPECT_NEAR(t24, t32, 0.05 * (t32 - 45.0));
}

TEST(ThermalModel, ReciprocityHolds) {
  // The conductance network is symmetric, so the temperature rise at
  // chiplet j due to unit power on chiplet i equals the rise at i due to
  // unit power on j — a structural property no amount of parameter
  // tweaking can fake.
  const ChipletLayout l = make_uniform_layout(4, 3.0);
  ThermalModel model(l, make_25d_stack(), coarse_config());
  const auto rise = [&](std::size_t src, std::size_t probe) {
    PowerMap p;
    p.add(l.chiplets()[src].rect, 50.0);
    model.solve(p);
    return model.chiplet_temperatures()[probe] - 45.0;
  };
  // Corner (0) vs center (5), and two unrelated chiplets.
  EXPECT_NEAR(rise(0, 5), rise(5, 0), 1e-5);
  EXPECT_NEAR(rise(3, 12), rise(12, 3), 1e-5);
}

TEST(ThermalModel, SuperpositionHolds) {
  // Steady-state conduction is linear: the field of P1+P2 equals the sum
  // of the individual excess fields.
  const ChipletLayout l = make_uniform_layout(2, 4.0);
  ThermalModel model(l, make_25d_stack(), coarse_config(16));
  PowerMap p1, p2, p12;
  p1.add(l.chiplets()[0].rect, 80.0);
  p2.add(l.chiplets()[3].rect, 120.0);
  p12.add(l.chiplets()[0].rect, 80.0);
  p12.add(l.chiplets()[3].rect, 120.0);
  model.solve(p1);
  const auto t1 = model.chiplet_temperatures();
  model.solve(p2);
  const auto t2 = model.chiplet_temperatures();
  model.solve(p12);
  const auto t12 = model.chiplet_temperatures();
  for (std::size_t i = 0; i < t12.size(); ++i)
    EXPECT_NEAR(t12[i] - 45.0, (t1[i] - 45.0) + (t2[i] - 45.0), 1e-4);
}

TEST(ThermalModel, Matches1DAnalyticSolution) {
  // With spreader_scale = sink_scale = 1 and uniform power the package is
  // a pure 1D stack: no lateral gradients, so the peak temperature equals
  // ambient + P * R_1D exactly, with
  //   R_1D = R(chip half -> TIM mid) + R(TIM mid -> spreader mid)
  //        + R(spreader mid -> sink mid) + R_convection.
  const ChipletLayout chip = make_single_chip_layout();
  ThermalConfig cfg = coarse_config(16);
  cfg.package.spreader_scale = 1.0;
  cfg.package.sink_scale = 1.0;
  ThermalModel model(chip, make_2d_stack(), cfg);
  const double watts = 100.0;
  const ThermalResult r = model.solve(uniform_chip_power(chip, watts));

  const double area = 18.0 * 18.0;  // mm^2
  const double k_si = 110.0, k_tim = 4.0, k_cu = 385.0;
  auto slab = [&](double k, double len_mm) { return len_mm / (k * area) * 1e3; };
  const double r_1d = slab(k_si, 0.150 / 2) + slab(k_tim, 0.020 / 2)  // chip->TIM
                      + slab(k_tim, 0.020 / 2) + slab(k_cu, 1.0 / 2)  // TIM->spr
                      + slab(k_cu, 1.0 / 2) + slab(k_cu, 6.9 / 2)     // spr->sink
                      + 1.0 / (cfg.package.h_convection * area * 1e-6);
  const double expected = 45.0 + watts * r_1d;
  EXPECT_NEAR(r.peak_c, expected, 0.005 * (expected - 45.0));
  // And the field is laterally uniform: chiplet mean equals the peak.
  EXPECT_NEAR(model.chiplet_temperatures()[0], r.peak_c,
              1e-6 * (expected - 45.0));
}

TEST(ThermalModel, ConvectionDominatedLimit) {
  // Doubling h at scale-1 package nearly halves the convective part of
  // the 1D resistance — a second closed-form consistency check.
  const ChipletLayout chip = make_single_chip_layout();
  ThermalConfig c1 = coarse_config(12);
  c1.package.spreader_scale = c1.package.sink_scale = 1.0;
  ThermalConfig c2 = c1;
  c2.package.h_convection = 2 * c1.package.h_convection;
  const double watts = 200.0;
  const double t1 = ThermalModel(chip, make_2d_stack(), c1)
                        .solve(uniform_chip_power(chip, watts))
                        .peak_c;
  const double t2 = ThermalModel(chip, make_2d_stack(), c2)
                        .solve(uniform_chip_power(chip, watts))
                        .peak_c;
  const double area_m2 = 18.0 * 18.0 * 1e-6;
  const double dr = 0.5 / (c1.package.h_convection * area_m2);
  EXPECT_NEAR(t1 - t2, watts * dr, 0.01 * watts * dr);
}

// Parameterized sweep: energy balance holds across chiplet counts.
class EnergyBalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnergyBalanceProperty, Holds) {
  const int r = GetParam();
  const ChipletLayout l = make_uniform_layout(r, 1.5);
  ThermalModel model(l, make_25d_stack(), coarse_config(16));
  const PowerMap p = uniform_chip_power(l, 175.0);
  model.solve(p);
  EXPECT_LT(model.energy_balance_error(p), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(ChipletCounts, EnergyBalanceProperty,
                         ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace tacos
