#include <gtest/gtest.h>

#include "core/experiments.hpp"

namespace tacos {
namespace {

// End-to-end behaviours the paper's evaluation depends on, exercised
// through the full stack (floorplan -> power -> thermal -> optimizer) at
// reduced resolution so the suite stays fast.

EvalConfig itest_config() {
  EvalConfig c;
  c.thermal.grid_nx = c.thermal.grid_ny = 24;
  return c;
}

TEST(Integration, DarkSiliconIsReclaimedForHighPowerBenchmarks) {
  // Fig. 5 / Fig. 6 in one assertion: shock cannot run all cores at 1 GHz
  // on the single chip, but can on a spaced 16-chiplet interposer.
  Evaluator eval(itest_config());
  const BenchmarkProfile& shock = benchmark_by_name("shock");
  const Organization all_on_2d{1, {}, 0, 256};
  EXPECT_GT(eval.thermal_eval(all_on_2d, shock).peak_c, 85.0);
  const Organization spaced{16, {7.0, 3.5, 7.0}, 0, 256};
  EXPECT_LE(eval.thermal_eval(spaced, shock).peak_c, 85.0);
}

TEST(Integration, SaturatedBenchmarkGainsNothing) {
  // lu.cont reaches peak IPS at 96 cores, already feasible on the single
  // chip, so 2.5D integration buys no performance (only cost/temp).
  Evaluator eval(itest_config());
  const BenchmarkProfile& lu = benchmark_by_name("lu.cont");
  const BaselinePoint& base = eval.baseline_2d(lu, 85.0);
  ASSERT_TRUE(base.feasible);
  EXPECT_EQ(base.active_cores, 96);
  EXPECT_EQ(base.dvfs_idx, 0u);  // 1 GHz
  OptimizerOptions opts;
  opts.alpha = 1.0;
  opts.beta = 0.0;
  opts.step_mm = 2.0;
  opts.starts = 4;
  const OptResult res = optimize_greedy(eval, lu, opts);
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(res.ips, base.ips, 1e-9);
}

TEST(Integration, LowerTemperatureEvenWithoutPerformanceGain) {
  // §V-B: "Although 2.5D systems do not bring performance benefits for
  // lu.cont, thermally-aware organization still lowers the operating
  // temperature" (reliability benefit).
  Evaluator eval(itest_config());
  const BenchmarkProfile& lu = benchmark_by_name("lu.cont");
  const BaselinePoint& base = eval.baseline_2d(lu, 85.0);
  const Organization same_point_25d{16, {2.0, 1.0, 2.0}, base.dvfs_idx,
                                    base.active_cores};
  EXPECT_LT(eval.thermal_eval(same_point_25d, lu).peak_c, base.peak_c);
}

TEST(Integration, PackedSystemSavesCostWithoutPerformanceLoss) {
  // The "36% cheaper at equal performance" claim, end to end: the packed
  // 16-chiplet system runs the 2D baseline's operating point within the
  // same threshold at ~0.64x the cost.
  Evaluator eval(itest_config());
  for (const char* name : {"canneal", "streamcluster", "lu.cont"}) {
    const BenchmarkProfile& bench = benchmark_by_name(name);
    const BaselinePoint& base = eval.baseline_2d(bench, 85.0);
    ASSERT_TRUE(base.feasible) << name;
    const Organization packed{16, {0, 0, 0}, base.dvfs_idx,
                              base.active_cores};
    EXPECT_LE(eval.thermal_eval(packed, bench).peak_c, 85.0) << name;
    EXPECT_NEAR(eval.cost(packed) / eval.cost_2d(), 0.64, 0.01);
  }
}

TEST(Integration, NonUniformPlacementCanBeatUniform) {
  // The motivation for optimizing (s1, s2, s3) independently: at some
  // budgets a non-uniform placement is strictly cooler than the uniform
  // matrix with the same interposer size.
  Evaluator eval(itest_config());
  const BenchmarkProfile& bench = benchmark_by_name("blackscholes");
  const double budget = 12.0;  // 32 mm interposer
  const Organization uniform{16, {4.0, 2.0, 4.0}, 0, 256};
  double best_other = 1e300;
  for (double s1 : {2.0, 3.0, 5.0, 6.0}) {
    for (double s2 : {1.0, 3.0, 5.0}) {
      const Spacing s{s1, s2, budget - 2 * s1};
      if (s.s3 < 0 || 2 * s.s1 + s.s3 - 2 * s.s2 < 0) continue;
      const Organization org{16, s, 0, 256};
      best_other =
          std::min(best_other, eval.thermal_eval(org, bench).peak_c);
    }
  }
  const double uniform_peak = eval.thermal_eval(uniform, bench).peak_c;
  // At minimum, the optimizer's manifold contains nothing catastrophically
  // worse, and often something better.
  EXPECT_LT(best_other, uniform_peak + 0.5);
}

TEST(Integration, CostClaimsTableAgreesWithPaper) {
  // E3 as an automated regression: all five claims within tolerance.
  const TextTable t = cost_claims_table();
  EXPECT_EQ(t.row_count(), 5u);
  // Spot checks via the model directly.
  EXPECT_NEAR(single_chip_cost(1600.0) / single_chip_cost(400.0), 27.0, 2.0);
}

TEST(Integration, ExperimentTablesProduceRows) {
  // Smoke tests of the cheap experiment runners.
  EXPECT_GT(fig3a_cost_table(5.0).row_count(), 0u);
  ExperimentOptions opts;
  opts.grid = 12;
  EXPECT_EQ(network_power_table(opts).row_count(), 5u);
}

TEST(Integration, ThresholdSensitivityIsMonotone) {
  // §V-B: higher thresholds leave less room for improvement.  Check via
  // baselines: the 2D baseline IPS is monotone in the threshold for every
  // benchmark.
  Evaluator eval(itest_config());
  for (const BenchmarkProfile& bench : benchmarks()) {
    double prev = 0.0;
    for (double th : {75.0, 85.0, 95.0, 105.0}) {
      const BaselinePoint& b = eval.baseline_2d(bench, th);
      if (!b.feasible) continue;
      EXPECT_GE(b.ips, prev) << bench.name << " at " << th;
      prev = b.ips;
    }
  }
}

}  // namespace
}  // namespace tacos
