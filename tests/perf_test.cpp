#include <gtest/gtest.h>

#include "perf/benchmark.hpp"
#include "perf/ips_model.hpp"
#include "power/dvfs.hpp"

namespace tacos {
namespace {

TEST(Benchmarks, AllEightArePresent) {
  const auto& all = benchmarks();
  ASSERT_EQ(all.size(), 8u);
  for (const char* name :
       {"shock", "blackscholes", "cholesky", "hpccg", "swaptions",
        "streamcluster", "canneal", "lu.cont"}) {
    EXPECT_NO_THROW(benchmark_by_name(name)) << name;
  }
  EXPECT_THROW(benchmark_by_name("doom"), Error);
}

TEST(Benchmarks, PaperCalibrationFacts) {
  // §V-B: canneal saturates at 192 active cores, lu.cont at 96.
  EXPECT_EQ(benchmark_by_name("canneal").sat_cores, 192);
  EXPECT_EQ(benchmark_by_name("lu.cont").sat_cores, 96);
  // shock, blackscholes, cholesky are the high-power benchmarks.
  for (const char* name : {"shock", "blackscholes", "cholesky"}) {
    EXPECT_EQ(benchmark_by_name(name).power_class, PowerClass::kHigh) << name;
  }
  // High-power benchmarks dissipate more than the others.
  const double p_high = benchmark_by_name("cholesky").power_256_w;
  EXPECT_GT(p_high, benchmark_by_name("swaptions").power_256_w);
}

TEST(Benchmarks, RepresentativesCoverAllClasses) {
  const auto& reps = representative_benchmarks();
  EXPECT_EQ(benchmark_by_name(reps[0]).power_class, PowerClass::kLow);
  EXPECT_EQ(benchmark_by_name(reps[1]).power_class, PowerClass::kMedium);
  EXPECT_EQ(benchmark_by_name(reps[2]).power_class, PowerClass::kHigh);
}

TEST(IpsModel, SpeedupIsMonotoneUntilSaturation) {
  const BenchmarkProfile& canneal = benchmark_by_name("canneal");
  double prev = 0.0;
  for (int p : {32, 64, 96, 128, 160, 192}) {
    const double s = parallel_speedup(canneal, p);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // Beyond the 192-core saturation point, no further gain.
  EXPECT_DOUBLE_EQ(parallel_speedup(canneal, 224),
                   parallel_speedup(canneal, 192));
  EXPECT_DOUBLE_EQ(parallel_speedup(canneal, 256),
                   parallel_speedup(canneal, 192));
}

TEST(IpsModel, SpeedupIsSublinear) {
  const BenchmarkProfile& b = benchmark_by_name("cholesky");
  EXPECT_LT(parallel_speedup(b, 256), 256.0);
  EXPECT_GT(parallel_speedup(b, 256), parallel_speedup(b, 128));
  // One core gives exactly 1 regardless of sigma.
  EXPECT_DOUBLE_EQ(parallel_speedup(b, 1), 1.0);
}

TEST(IpsModel, EffectiveFrequencyAtNominalIsExact) {
  for (const auto& b : benchmarks())
    EXPECT_NEAR(effective_frequency(b, kNominalFreqMhz), kNominalFreqMhz,
                1e-9);
}

TEST(IpsModel, MemoryBoundBenchmarksLoseLessAtLowFrequency) {
  // canneal (mem_fraction 0.5) keeps more of its performance at 533 MHz
  // than shock (mem_fraction 0.05).
  const BenchmarkProfile& canneal = benchmark_by_name("canneal");
  const BenchmarkProfile& shock = benchmark_by_name("shock");
  const double canneal_ratio =
      effective_frequency(canneal, 533.0) / kNominalFreqMhz;
  const double shock_ratio =
      effective_frequency(shock, 533.0) / kNominalFreqMhz;
  EXPECT_GT(canneal_ratio, shock_ratio);
  EXPECT_GT(canneal_ratio, 0.6);  // far better than the naive 0.533
  EXPECT_LT(shock_ratio, 0.60);
}

TEST(IpsModel, SystemIpsComposes) {
  const BenchmarkProfile& b = benchmark_by_name("hpccg");
  const double ips = system_ips(b, 800.0, 128);
  EXPECT_NEAR(ips,
              b.base_ipc * effective_frequency(b, 800.0) *
                  parallel_speedup(b, 128),
              1e-9);
}

TEST(IpsModel, InvalidInputsThrow) {
  const BenchmarkProfile& b = benchmark_by_name("hpccg");
  EXPECT_THROW(parallel_speedup(b, 0), Error);
  EXPECT_THROW(effective_frequency(b, 0.0), Error);
  EXPECT_THROW(effective_frequency(b, -100.0), Error);
}

TEST(Dvfs, TableMatchesPaper) {
  ASSERT_EQ(kDvfsLevelCount, 5u);
  EXPECT_DOUBLE_EQ(kDvfsLevels[0].freq_mhz, 1000.0);
  EXPECT_DOUBLE_EQ(kDvfsLevels[0].vdd, 0.90);
  EXPECT_DOUBLE_EQ(kDvfsLevels[2].freq_mhz, 533.0);
  EXPECT_DOUBLE_EQ(kDvfsLevels[2].vdd, 0.71);
  // The two lowest levels share 0.63 V (Table II).
  EXPECT_DOUBLE_EQ(kDvfsLevels[3].vdd, kDvfsLevels[4].vdd);
  EXPECT_THROW(dvfs_level(5), Error);
  // Active-core choices are 32..256 step 32.
  ASSERT_EQ(kActiveCoreChoices.size(), 8u);
  EXPECT_EQ(kActiveCoreChoices.front(), 32);
  EXPECT_EQ(kActiveCoreChoices.back(), 256);
}

// Property: IPS is monotone in both frequency and core count (up to
// saturation) for every benchmark.
class IpsMonotoneProperty
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IpsMonotoneProperty, InFrequencyAndCores) {
  const BenchmarkProfile& b = benchmarks()[GetParam()];
  for (int p : kActiveCoreChoices) {
    double prev = 0.0;
    for (auto it = kDvfsLevels.rbegin(); it != kDvfsLevels.rend(); ++it) {
      const double ips = system_ips(b, it->freq_mhz, p);
      EXPECT_GT(ips, prev) << b.name << " f=" << it->freq_mhz << " p=" << p;
      prev = ips;
    }
  }
  for (std::size_t f = 0; f < kDvfsLevelCount; ++f) {
    double prev = 0.0;
    for (int p : kActiveCoreChoices) {
      const double ips = system_ips(b, kDvfsLevels[f].freq_mhz, p);
      EXPECT_GE(ips, prev);
      prev = ips;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, IpsMonotoneProperty,
                         ::testing::Range<std::size_t>(0, kBenchmarkCount));

}  // namespace
}  // namespace tacos
